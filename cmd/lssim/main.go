// Command lssim runs a full mobility simulation against an in-process
// deployment of the location service: objects move according to a chosen
// mobility model and report via the distance-based update protocol while a
// query load runs concurrently. It prints the system-level statistics the
// paper's future-work section asks about — handover rates, update volume,
// query latencies — for a given hierarchy shape and movement pattern.
//
//	lssim -objects 500 -duration 60s -model waypoint -speed 15
//	lssim -objects 200 -model manhattan -depth 2 -fanout 2
//	lssim -objects 300 -model hotspot -queries 50
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/metrics"
	"locsvc/internal/mobility"
	"locsvc/internal/msg"
	"locsvc/internal/object"
	"locsvc/internal/server"
	"locsvc/internal/transport"
)

func main() {
	var (
		numObjects = flag.Int("objects", 200, "number of tracked objects")
		duration   = flag.Duration("duration", 30*time.Second, "simulated time span")
		tick       = flag.Duration("tick", time.Second, "simulation tick")
		model      = flag.String("model", "waypoint", "mobility model: waypoint, manhattan, hotspot, stationary")
		speed      = flag.Float64("speed", 10, "object speed in m/s")
		area       = flag.Float64("area", 1500, "side of the square service area (m)")
		depth      = flag.Int("depth", 1, "hierarchy levels below the root")
		fanout     = flag.Int("fanout", 2, "grid fan-out per level")
		queries    = flag.Int("queries", 20, "position+range queries per simulated second")
		seed       = flag.Int64("seed", 1, "random seed")
		caches     = flag.Bool("caches", false, "enable Section 6.5 caches")
	)
	flag.Parse()

	var levels []hierarchy.Level
	for i := 0; i < *depth; i++ {
		levels = append(levels, hierarchy.Level{Rows: *fanout, Cols: *fanout})
	}
	spec := hierarchy.Spec{RootArea: geo.R(0, 0, *area, *area), Levels: levels}

	var delivered atomic.Int64
	net := transport.NewInproc(transport.InprocOptions{
		OnDeliver: func(_, _ msg.NodeID, _ msg.Message) { delivered.Add(1) },
	})
	reg := metrics.NewRegistry()
	dep, err := hierarchy.Deploy(net, spec, server.Options{
		AchievableAcc:    10,
		Metrics:          reg,
		EnableAreaCache:  *caches,
		EnableAgentCache: *caches,
		EnablePosCache:   *caches,
	})
	if err != nil {
		fatal(err)
	}
	defer func() {
		dep.Close()
		net.Close()
	}()

	fmt.Printf("lssim: %d servers (%d leaves), %d objects, model=%s, %.0f m/s, %v simulated\n",
		spec.NumServers(), len(dep.Leaves()), *numObjects, *model, *speed, *duration)

	// Spawn the objects.
	ctx := context.Background()
	start := time.Date(2026, 6, 12, 8, 0, 0, 0, time.UTC)
	movement := geo.R(5, 5, *area-5, *area-5)
	sims := make([]*object.Sim, 0, *numObjects)
	for i := 0; i < *numObjects; i++ {
		m := makeModel(*model, movement, *speed, *seed+int64(i))
		entry, ok := dep.LeafFor(m.Pos())
		if !ok {
			fatal(fmt.Errorf("no leaf for %v", m.Pos()))
		}
		c, cerr := client.New(net, msg.NodeID(fmt.Sprintf("obj-node-%d", i)), entry, client.Options{})
		if cerr != nil {
			fatal(cerr)
		}
		s, serr := object.NewSim(ctx, c, core.OID(fmt.Sprintf("obj-%d", i)),
			m, &object.DistanceBased{}, 5, 25, 100, *speed, *seed+int64(i), start)
		if serr != nil {
			fatal(serr)
		}
		sims = append(sims, s)
	}

	// Query load: one client per leaf; queries are issued inline per
	// simulated second so the load scales with simulated (not wall)
	// time.
	qreg := metrics.NewRegistry()
	var qClients []*client.Client
	for i, leaf := range dep.Leaves() {
		cl, cerr := client.New(net, msg.NodeID(fmt.Sprintf("query-%d", i)), leaf, client.Options{})
		if cerr != nil {
			fatal(cerr)
		}
		defer cl.Close()
		qClients = append(qClients, cl)
	}
	qrng := rand.New(rand.NewSource(*seed + 999))

	// Drive the simulation.
	ticks := int(*duration / *tick)
	updates := 0
	for t := 0; t < ticks; t++ {
		for _, s := range sims {
			sent, err := s.Tick(ctx, *tick)
			if err != nil {
				fatal(err)
			}
			if sent {
				updates++
			}
		}
		perTick := int(float64(*queries) * tick.Seconds())
		for q := 0; q < perTick; q++ {
			cl := qClients[qrng.Intn(len(qClients))]
			issueQuery(ctx, cl, qrng, *numObjects, movement, qreg)
		}
	}

	// Gather statistics.
	handovers := reg.Counter("handover_initiated").Value()
	direct := reg.Counter("handover_direct").Value()
	expired := reg.Counter("soft_state_expired").Value()

	var meanDev, maxDev float64
	for _, s := range sims {
		st := s.Stats()
		meanDev += st.MeanDev
		if st.MaxDev > maxDev {
			maxDev = st.MaxDev
		}
	}
	meanDev /= float64(len(sims))

	fmt.Printf("\nsimulated %d s of movement\n", ticks)
	fmt.Printf("  updates sent:          %d (%.2f per object-minute)\n",
		updates, float64(updates)/float64(*numObjects)/(float64(ticks)/60))
	if updates == 0 {
		updates = 1
	}
	fmt.Printf("  handovers:             %d (%.1f%% of updates; %d via area cache)\n",
		handovers, 100*float64(handovers)/float64(updates), direct)
	fmt.Printf("  soft-state expiries:   %d\n", expired)
	fmt.Printf("  position deviation:    mean %.1f m, max %.1f m\n", meanDev, maxDev)
	fmt.Printf("  transport messages:    %d\n", delivered.Load())
	if h := qreg.Histogram("pos"); h.Count() > 0 {
		fmt.Printf("  position queries:      %d, mean %.2f ms, p99 %.2f ms\n",
			h.Count(), h.Mean()*1000, h.Percentile(0.99)*1000)
	}
	if h := qreg.Histogram("range"); h.Count() > 0 {
		fmt.Printf("  range queries:         %d, mean %.2f ms, p99 %.2f ms\n",
			h.Count(), h.Mean()*1000, h.Percentile(0.99)*1000)
	}
	if errs := qreg.Counter("query_errors").Value(); errs > 0 {
		fmt.Printf("  query errors:          %d (transient, during handovers)\n", errs)
	}
}

func makeModel(name string, area geo.Rect, speed float64, seed int64) mobility.Model {
	switch name {
	case "manhattan":
		return mobility.NewManhattanGrid(area, 100, speed, seed)
	case "hotspot":
		centers := []geo.Point{
			{X: area.Min.X + area.Width()*0.25, Y: area.Min.Y + area.Height()*0.25},
			{X: area.Min.X + area.Width()*0.75, Y: area.Min.Y + area.Height()*0.75},
		}
		return mobility.NewHotspot(area, centers, area.Width()/20, speed, 0.05, seed)
	case "stationary":
		rng := rand.New(rand.NewSource(seed))
		return mobility.NewStationary(geo.Pt(
			area.Min.X+rng.Float64()*area.Width(),
			area.Min.Y+rng.Float64()*area.Height()))
	default:
		return mobility.NewRandomWaypoint(area, speed/2, speed, 5, seed)
	}
}

func issueQuery(ctx context.Context, cl *client.Client, rng *rand.Rand, numObjects int, area geo.Rect, reg *metrics.Registry) {
	start := time.Now()
	var err error
	var kind string
	if rng.Intn(2) == 0 {
		kind = "pos"
		oid := core.OID(fmt.Sprintf("obj-%d", rng.Intn(numObjects)))
		_, err = cl.PosQuery(ctx, oid)
	} else {
		kind = "range"
		x := area.Min.X + rng.Float64()*(area.Width()-100)
		y := area.Min.Y + rng.Float64()*(area.Height()-100)
		_, err = cl.RangeQueryRect(ctx, geo.R(x, y, x+100, y+100), 100, 0.5)
	}
	reg.Histogram(kind).ObserveDuration(time.Since(start))
	if err != nil {
		reg.Counter("query_errors").Inc()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lssim:", err)
	os.Exit(1)
}
