// Command lsctl is a command-line client for a UDP deployment started with
// lsd. It speaks to an entry server named in the shared topology file.
//
//	lsctl -topology ls.json -entry r.0 register -oid taxi-1 -x 100 -y 100
//	lsctl -topology ls.json -entry r.0 update   -oid taxi-1 -x 140 -y 100
//	lsctl -topology ls.json -entry r.3 pos      -oid taxi-1
//	lsctl -topology ls.json -entry r.0 range    -x0 0 -y0 0 -x1 400 -y1 400
//	lsctl -topology ls.json -entry r.0 nearest  -x 120 -y 100
//	lsctl -topology ls.json -entry r.0 dereg    -oid taxi-1
//	lsctl -topology ls.json -entry r.0 stats
//
// stats prints the entry server's diagnostic snapshot: visitor and
// sighting counts, the sighting store's shard layout (occupancy and
// lock-contention counters per shard, resize epoch — what the -autoshard
// policy feeds on) and the metrics registry. Servers started by lsd share
// one registry between the server and its UDP transport, so the snapshot
// includes the wire-level series (wire_bytes_in/out, wire_datagrams_in/out,
// wire_decode_errors, wire_oversize_dropped) next to the protocol counters.
// A leaf in a replication pair (lsd -repl-peer / -standby-of) adds a
// replication block: role, peer, fencing epoch, stream lag (records sent
// but unacked), fenced stale appends, and catch-up activity (run files
// fetched, snapshot resyncs).
//
// register keeps the process alive with -keep to continue serving accuracy
// notifications and recovery update requests; otherwise it exits after the
// acknowledgement (the soft-state TTL eventually removes silent objects).
//
// -retries > 1 arms a client-side retry budget for every operation: a
// timed-out request is re-sent with exponential backoff and full jitter
// (seeded by -retry-backoff, capped at -retry-max-backoff), each attempt
// bounded by -retry-timeout. Registrations and updates carry a per-client
// sequence number, so a retried duplicate is applied exactly once by the
// receiving leaf. Range and nearest queries may come back partial when part
// of the hierarchy is unreachable; lsctl prints the degraded marking and
// the dark servers so "no results" and "servers were down" stay
// distinguishable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
	"locsvc/internal/transport"
)

func main() {
	var (
		topoPath    = flag.String("topology", "ls.json", "topology file of the deployment")
		entry       = flag.String("entry", "", "entry server id (e.g. r.0)")
		host        = flag.String("host", "127.0.0.1", "local host to bind the client socket on")
		timeout     = flag.Duration("timeout", 5*time.Second, "operation timeout")
		batchMax    = flag.Int("batch-max", 1, "coalesce up to this many outbound envelopes per destination into one datagram (≥ 2 enables batching)")
		batchLinger = flag.Duration("batch-linger", time.Millisecond, "how long a lone envelope waits for batch company before it is flushed (with -batch-max ≥ 2)")
		retries     = flag.Int("retries", 1, "total attempts per operation (> 1 enables retries with backoff; duplicates are deduplicated server-side)")
		retryBase   = flag.Duration("retry-backoff", 20*time.Millisecond, "base of the exponential retry backoff (full jitter)")
		retryMax    = flag.Duration("retry-max-backoff", time.Second, "cap on one retry backoff draw")
		retryTry    = flag.Duration("retry-timeout", 0, "per-attempt deadline (0 leaves the operation timeout in charge)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	if *entry == "" {
		fatal(fmt.Errorf("-entry is required"))
	}

	nodes, err := loadNodes(*topoPath)
	if err != nil {
		fatal(err)
	}
	network := transport.NewUDPWithOptions(transport.UDPOptions{
		BatchMax:    *batchMax,
		BatchLinger: *batchLinger,
		CallTimeout: *timeout,
	})
	defer network.Close()
	for nid, addr := range nodes {
		if err := network.AddRoute(msg.NodeID(nid), addr); err != nil {
			fatal(err)
		}
	}
	// The client's node id is its own socket address, so every server in
	// the deployment can answer it without directory distribution.
	cl, err := client.New(autoNet{network, *host}, "", msg.NodeID(*entry), client.Options{
		Timeout: *timeout,
		Retry: transport.RetryPolicy{
			MaxAttempts:   *retries,
			BaseBackoff:   *retryBase,
			MaxBackoff:    *retryMax,
			PerTryTimeout: *retryTry,
		},
		OnAccChange: func(oid core.OID, acc float64) {
			fmt.Printf("notification: accuracy for %s is now %.1f m\n", oid, acc)
		},
	})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout+time.Second)
	defer cancel()

	cmd := flag.Arg(0)
	sub := flag.NewFlagSet(cmd, flag.ExitOnError)
	oid := sub.String("oid", "", "object id")
	x := sub.Float64("x", 0, "x coordinate (m)")
	y := sub.Float64("y", 0, "y coordinate (m)")
	x0 := sub.Float64("x0", 0, "area min x")
	y0 := sub.Float64("y0", 0, "area min y")
	x1 := sub.Float64("x1", 0, "area max x")
	y1 := sub.Float64("y1", 0, "area max y")
	desAcc := sub.Float64("desacc", 10, "desired accuracy (m)")
	minAcc := sub.Float64("minacc", 100, "minimal acceptable accuracy (m)")
	reqAcc := sub.Float64("reqacc", 100, "required accuracy for queries (m)")
	overlap := sub.Float64("overlap", 0.5, "required overlap degree (0,1]")
	nearQual := sub.Float64("nearqual", 0, "near-neighbor qualification distance (m)")
	speed := sub.Float64("speed", 3, "object max speed (m/s)")
	keep := sub.Bool("keep", false, "register: keep running to serve notifications")
	if err := sub.Parse(flag.Args()[1:]); err != nil {
		fatal(err)
	}

	switch cmd {
	case "register":
		need(*oid, "-oid")
		obj, err := cl.Register(ctx, sight(*oid, *x, *y), *desAcc, *minAcc, *speed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("registered %s: agent=%s offeredAcc=%.1f m\n", *oid, obj.Agent(), obj.OfferedAcc())
		if *keep {
			fmt.Println("serving notifications; ctrl-c to exit")
			select {}
		}
	case "update":
		need(*oid, "-oid")
		// A fresh handle: re-register is idempotent for an existing
		// object (records are replaced), then update.
		obj, err := cl.Register(ctx, sight(*oid, *x, *y), *desAcc, *minAcc, *speed)
		if err != nil {
			fatal(err)
		}
		if err := obj.Update(ctx, sight(*oid, *x, *y)); err != nil {
			fatal(err)
		}
		fmt.Printf("updated %s to (%.1f, %.1f); agent=%s\n", *oid, *x, *y, obj.Agent())
	case "pos":
		need(*oid, "-oid")
		ld, err := cl.PosQuery(ctx, core.OID(*oid))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: pos=(%.1f, %.1f) acc=%.1f m\n", *oid, ld.Pos.X, ld.Pos.Y, ld.Acc)
	case "range":
		res, err := cl.RangeQueryFull(ctx, core.AreaFromRect(geo.R(*x0, *y0, *x1, *y1)), *reqAcc, *overlap)
		if err != nil {
			fatal(err)
		}
		if res.Partial {
			fmt.Printf("PARTIAL result — unreachable: %v\n", res.Unreachable)
		}
		fmt.Printf("%d object(s):\n", len(res.Objs))
		for _, e := range res.Objs {
			fmt.Printf("  %s: pos=(%.1f, %.1f) acc=%.1f m\n", e.OID, e.LD.Pos.X, e.LD.Pos.Y, e.LD.Acc)
		}
	case "nearest":
		res, err := cl.NeighborQuery(ctx, geo.Pt(*x, *y), *reqAcc, *nearQual)
		if err != nil {
			fatal(err)
		}
		if res.Partial {
			fmt.Printf("PARTIAL result — unreachable: %v\n", res.Unreachable)
		}
		fmt.Printf("nearest: %s at (%.1f, %.1f), guaranteed min distance %.1f m\n",
			res.Nearest.OID, res.Nearest.LD.Pos.X, res.Nearest.LD.Pos.Y, res.GuaranteedMinDist)
		for _, e := range res.Near {
			fmt.Printf("  near: %s at (%.1f, %.1f)\n", e.OID, e.LD.Pos.X, e.LD.Pos.Y)
		}
	case "stats":
		res, err := cl.Diag(ctx)
		if err != nil {
			fatal(err)
		}
		role := "inner"
		if res.IsLeaf {
			role = "leaf"
		}
		fmt.Printf("server %s (%s): %d visitors, %d sightings\n", res.Server, role, res.Visitors, res.Sightings)
		if len(res.Shards) > 0 {
			fmt.Printf("sighting shards: %d (epoch %d)\n", len(res.Shards), res.Epoch)
			fmt.Printf("  %-6s %10s %12s %12s\n", "shard", "records", "writeops", "contended")
			for i, sh := range res.Shards {
				fmt.Printf("  %-6d %10d %12d %12d\n", i, sh.Len, sh.Ops, sh.Contended)
			}
			fmt.Printf("pipeline: %d updates, %d handoffs (queued behind a lane leader)\n",
				res.PipelineOps, res.PipelineHandoffs)
		}
		if t := res.Tier; t != nil {
			state := "warming (WAL tail replaying)"
			if t.Warm {
				state = "warm"
			}
			fmt.Printf("tiered storage: %s\n", state)
			fmt.Printf("  memtables: %d bytes resident\n", t.MemtableBytes)
			fmt.Printf("  runs: %d files, %d bytes on disk, %d bytes run metadata resident\n",
				t.Runs, t.RunBytes, t.MetaBytes)
			fmt.Printf("  disk records: %d (%d live)\n", t.DiskRecords, t.DiskLive)
			fmt.Printf("  flushes: %d, compactions: %d (backlog %d shard(s))\n",
				t.Flushes, t.Compactions, t.Backlog)
			fmt.Printf("  bloom probes: %d admitted, %d skipped\n", t.BloomHits, t.BloomMisses)
		}
		if r := res.Repl; r != nil {
			fmt.Printf("replication: %s, paired with %s (epoch %d)\n", r.Role, r.Peer, r.Epoch)
			fmt.Printf("  stream: %d records acked, %d pending (lag), %d fenced stale appends\n",
				r.Acked, r.Pending, r.Fenced)
			fmt.Printf("  catch-up: %d runs fetched, %d snapshot resyncs\n",
				r.RunsInstalled, r.Resyncs)
		}
		if res.EventSubs > 0 || res.EventCoordSubs > 0 {
			fmt.Printf("event subscriptions: %d installed, %d coordinated\n",
				res.EventSubs, res.EventCoordSubs)
		}
		if res.Metrics != "" {
			fmt.Printf("metrics:\n")
			for _, line := range strings.Split(strings.TrimRight(res.Metrics, "\n"), "\n") {
				fmt.Printf("  %s\n", line)
			}
		}
	case "dereg":
		need(*oid, "-oid")
		obj, err := cl.Register(ctx, sight(*oid, *x, *y), *desAcc, *minAcc, *speed)
		if err != nil {
			fatal(err)
		}
		if err := obj.Deregister(ctx); err != nil {
			fatal(err)
		}
		fmt.Printf("deregistered %s\n", *oid)
	default:
		usage()
	}
}

// autoNet attaches clients under their own socket address as node id.
type autoNet struct {
	udp  *transport.UDP
	host string
}

// Attach implements transport.Network, ignoring the suggested id.
func (a autoNet) Attach(_ msg.NodeID, h transport.Handler) (transport.Node, error) {
	return a.udp.AttachAuto(a.host, h)
}

// Close implements transport.Network.
func (a autoNet) Close() error { return a.udp.Close() }

func sight(oid string, x, y float64) core.Sighting {
	return core.Sighting{OID: core.OID(oid), T: time.Now(), Pos: geo.Pt(x, y), SensAcc: 5}
}

func need(v, flagName string) {
	if v == "" {
		fatal(fmt.Errorf("%s is required", flagName))
	}
}

func loadNodes(path string) (map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading topology: %w", err)
	}
	var t struct {
		Nodes map[string]string `json:"nodes"`
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("parsing topology: %w", err)
	}
	return t.Nodes, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lsctl -topology ls.json -entry <server> <register|update|pos|range|nearest|dereg|stats> [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsctl:", err)
	os.Exit(1)
}
