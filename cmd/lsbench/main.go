// Command lsbench regenerates the paper's evaluation tables and the
// ablation studies listed in DESIGN.md.
//
// Usage:
//
//	lsbench -table 1      # Table 1: data-storage throughput
//	lsbench -table 2      # Table 2: distributed response time / throughput
//	lsbench -table A1     # spatial-index ablation
//	lsbench -table A2     # caching ablation
//	lsbench -table A3     # hierarchy height/fan-out sweep
//	lsbench -table A4     # update-protocol comparison
//	lsbench -table A5     # query-locality sweep
//	lsbench -table A8     # live shard-resize cost (epoch map overhead, stall bounds)
//	lsbench -table W      # wire codec: binary vs gob envelope round trips
//	lsbench -table B      # datagram batching + async client over real UDP
//	lsbench -table R      # resilience: retry/breaker overhead, degraded queries, recovery time
//	lsbench -table E      # event pipeline: indexed delta evaluation vs evaluate-all
//	lsbench -table L      # tiered (LSM) sighting storage: bigger-than-RAM leaves, tail-only recovery
//	lsbench -table F      # hot-standby replication: steady-state overhead, failover-to-first-query latency
//	lsbench -table all    # everything
//	lsbench -quick        # smaller populations, faster runs
//
// Numbers are produced on the in-process testbed (goroutine servers with a
// synthetic per-hop latency); compare shapes, not absolute values, against
// the paper (EXPERIMENTS.md records both).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/metrics"
	"locsvc/internal/mobility"
	"locsvc/internal/msg"
	"locsvc/internal/object"
	"locsvc/internal/server"
	"locsvc/internal/sim"
	"locsvc/internal/spatial"
	"locsvc/internal/store"
	"locsvc/internal/transport"
	"locsvc/internal/wire"
)

func main() {
	table := flag.String("table", "all", "which table to run: 1, 2, A1 … A8, W or all")
	quick := flag.Bool("quick", false, "reduced populations for a fast smoke run")
	flag.Parse()

	run := func(name string, f func(bool)) {
		if *table == "all" || *table == name {
			f(*quick)
		}
	}
	run("1", table1)
	run("2", table2)
	run("A1", ablationIndex)
	run("A2", ablationCache)
	run("A3", ablationHierarchy)
	run("A4", ablationUpdateProtocols)
	run("A5", ablationLocality)
	run("A6", ablationRootPartitions)
	run("A7", ablationShardedStore)
	run("A8", ablationResize)
	run("W", tableWire)
	run("B", tableBatch)
	run("R", tableResilience)
	run("E", tableEvents)
	run("L", tableLSM)
	run("F", tableRepl)

	switch *table {
	case "1", "2", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "W", "B", "R", "E", "L", "F", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(1)
	}
}

// ---------------------------------------------------------------------------
// Table 1.

func table1(quick bool) {
	objects := 25_000
	if quick {
		objects = 5_000
	}
	const side = 10_000.0
	fmt.Printf("\nTable 1: throughput of the data storage component\n")
	fmt.Printf("(service area %.0f km x %.0f km, %d tracked objects; paper values in parentheses)\n\n",
		side/1000, side/1000, objects)
	fmt.Printf("%-28s %16s\n", "operation", "operations/s")

	rng := rand.New(rand.NewSource(1))
	sightings := make([]core.Sighting, objects)
	now := time.Now()
	for i := range sightings {
		sightings[i] = core.Sighting{
			OID: core.OID(fmt.Sprintf("obj-%d", i)), T: now,
			Pos:     geo.Pt(rng.Float64()*side, rng.Float64()*side),
			SensAcc: 10,
		}
	}

	// Creating index.
	start := time.Now()
	db := store.NewSightingDB()
	for _, s := range sightings {
		db.Put(s)
	}
	rate := float64(objects) / time.Since(start).Seconds()
	fmt.Printf("%-28s %16.0f   (paper: 24,015)\n", "creating index", rate)

	// Position updates.
	const updateOps = 200_000
	ops := updateOps
	if quick {
		ops = 40_000
	}
	start = time.Now()
	for i := 0; i < ops; i++ {
		s := sightings[rng.Intn(objects)]
		s.Pos = geo.Pt(rng.Float64()*side, rng.Float64()*side)
		db.Put(s)
	}
	fmt.Printf("%-28s %16.0f   (paper: 41,494)\n", "position updates", float64(ops)/time.Since(start).Seconds())

	// Position queries.
	start = time.Now()
	for i := 0; i < ops; i++ {
		db.Get(sightings[rng.Intn(objects)].OID)
	}
	fmt.Printf("%-28s %16.0f   (paper: 384,615)\n", "position query", float64(ops)/time.Since(start).Seconds())

	// Range queries at the paper's three sizes.
	for _, rq := range []struct {
		label string
		side  float64
		paper string
	}{
		{"range query (10 m x 10 m)", 10, "21,834"},
		{"range query (100 m x 100 m)", 100, "18,450"},
		{"range query (1 km x 1 km)", 1000, "1,813"},
	} {
		n := 20_000
		if rq.side >= 1000 {
			n = 2_000
		}
		if quick {
			n /= 10
		}
		start = time.Now()
		for i := 0; i < n; i++ {
			x := rng.Float64() * (side - rq.side)
			y := rng.Float64() * (side - rq.side)
			area := core.AreaFromRect(geo.R(x, y, x+rq.side, y+rq.side))
			enlarged := area.Bounds().Enlarge(25)
			db.SearchArea(enlarged, func(s core.Sighting) bool {
				ld := core.LocationDescriptor{Pos: s.Pos, Acc: s.SensAcc}
				area.RangeQualifies(ld, 25, 0.5)
				return true
			})
		}
		fmt.Printf("%-28s %16.0f   (paper: %s)\n", rq.label, float64(n)/time.Since(start).Seconds(), rq.paper)
	}
}

// ---------------------------------------------------------------------------
// Table 2.

func table2(quick bool) {
	numObjects := 10_000
	if quick {
		numObjects = 1_000
	}
	fmt.Printf("\nTable 2: response time and overall throughput, distributed configuration\n")
	fmt.Printf("(1.5 km x 1.5 km, 1 root + 4 leaf servers, %d objects, 200 us per message hop)\n\n", numObjects)

	w, err := sim.NewWorld(sim.Config{
		NumObjects: numObjects,
		HopLatency: 200 * time.Microsecond,
		Seed:       1,
	})
	if err != nil {
		fatal(err)
	}
	defer w.Close()

	fmt.Printf("%-32s %14s %18s\n", "operation", "resp. time", "throughput (1/s)")
	row := func(label, paper string, mean float64, tput float64) {
		fmt.Printf("%-32s %11.2f ms %18.0f   (paper: %s)\n", label, mean, tput, paper)
	}

	ctxb := context.Background()
	seqOps := 400
	parWorkers := 24
	parOps := 100
	if quick {
		seqOps, parOps = 100, 40
	}

	// Updates (always local).
	mean := measureSeq(seqOps, func(rng *rand.Rand) error { return w.UpdateRandomLocal(ctxb, rng) })
	tput := measurePar(parWorkers, parOps, func(rng *rand.Rand) error { return w.UpdateRandomLocal(ctxb, rng) })
	row("position updates (with ACK)", "1.2 ms / 4,954", mean, tput)

	// Local / remote position queries.
	mean = measureSeq(seqOps, func(rng *rand.Rand) error { return w.PosQueryFrom(ctxb, rng, true) })
	tput = measurePar(parWorkers, parOps, func(rng *rand.Rand) error { return w.PosQueryFrom(ctxb, rng, true) })
	row("local position query", "2.0 ms / 2,809", mean, tput)

	mean = measureSeq(seqOps, func(rng *rand.Rand) error { return w.PosQueryFrom(ctxb, rng, false) })
	tput = measurePar(parWorkers, parOps, func(rng *rand.Rand) error { return w.PosQueryFrom(ctxb, rng, false) })
	row("remote position query", "6.3 ms / 728", mean, tput)

	// Local range query (50 m, inside the entry leaf).
	mean = measureSeq(seqOps, func(rng *rand.Rand) error { return w.RangeQueryServers(ctxb, rng, 0) })
	tput = measurePar(parWorkers, parOps, func(rng *rand.Rand) error { return w.RangeQueryServers(ctxb, rng, 0) })
	row("local range query", "5.1 ms / 1,927", mean, tput)

	for servers, paper := range map[int]string{1: "13.0 ms / 588", 2: "14.6 ms / 364", 4: "13.8 ms / 284"} {
		s := servers
		mean = measureSeq(seqOps, func(rng *rand.Rand) error { return w.RangeQueryServers(ctxb, rng, s) })
		tput = measurePar(parWorkers, parOps, func(rng *rand.Rand) error { return w.RangeQueryServers(ctxb, rng, s) })
		row(fmt.Sprintf("remote range query (%d server)", servers), paper, mean, tput)
	}
}

// measureSeq runs op sequentially and returns the mean latency in ms.
func measureSeq(n int, op func(*rand.Rand) error) float64 {
	rng := rand.New(rand.NewSource(2))
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := op(rng); err != nil {
			fatal(err)
		}
	}
	return time.Since(start).Seconds() * 1000 / float64(n)
}

// measurePar runs op from workers goroutines and returns aggregate
// throughput in operations per second.
func measurePar(workers, opsPerWorker int, op func(*rand.Rand) error) float64 {
	var wg sync.WaitGroup
	var failures atomic.Int64
	start := time.Now()
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerWorker; i++ {
				if err := op(rng); err != nil {
					failures.Add(1)
				}
			}
		}(int64(wkr) + 100)
	}
	wg.Wait()
	total := workers * opsPerWorker
	if f := failures.Load(); f > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d/%d parallel ops failed\n", f, total)
	}
	return float64(total) / time.Since(start).Seconds()
}

// ---------------------------------------------------------------------------
// Ablation A1: spatial index.

func ablationIndex(quick bool) {
	objects := 25_000
	ops := 20_000
	if quick {
		objects, ops = 5_000, 4_000
	}
	const side = 10_000.0
	fmt.Printf("\nAblation A1: spatial index choice (%d objects)\n\n", objects)
	fmt.Printf("%-10s %14s %14s %14s\n", "index", "updates/s", "range100m/s", "knn5/s")

	for _, kind := range []spatial.Kind{spatial.KindQuadtree, spatial.KindRTree, spatial.KindLinear} {
		db := store.NewSightingDB(store.WithIndex(kind))
		rng := rand.New(rand.NewSource(1))
		sightings := make([]core.Sighting, objects)
		now := time.Now()
		for i := range sightings {
			sightings[i] = core.Sighting{
				OID: core.OID(fmt.Sprintf("o-%d", i)), T: now,
				Pos: geo.Pt(rng.Float64()*side, rng.Float64()*side), SensAcc: 10,
			}
			db.Put(sightings[i])
		}
		start := time.Now()
		for i := 0; i < ops; i++ {
			s := sightings[rng.Intn(objects)]
			s.Pos = geo.Pt(rng.Float64()*side, rng.Float64()*side)
			db.Put(s)
		}
		updates := float64(ops) / time.Since(start).Seconds()

		rangeOps := ops / 4
		start = time.Now()
		for i := 0; i < rangeOps; i++ {
			x, y := rng.Float64()*(side-100), rng.Float64()*(side-100)
			db.SearchArea(geo.R(x, y, x+100, y+100).Enlarge(25), func(core.Sighting) bool { return true })
		}
		ranges := float64(rangeOps) / time.Since(start).Seconds()

		knnOps := ops / 4
		if kind == spatial.KindLinear {
			knnOps /= 20 // linear knn sorts everything; keep runtime sane
		}
		start = time.Now()
		for i := 0; i < knnOps; i++ {
			p := geo.Pt(rng.Float64()*side, rng.Float64()*side)
			n := 0
			db.NearestFunc(p, func(core.Sighting, float64) bool { n++; return n < 5 })
		}
		knn := float64(knnOps) / time.Since(start).Seconds()

		fmt.Printf("%-10s %14.0f %14.0f %14.0f\n", kind, updates, ranges, knn)
	}
}

// ---------------------------------------------------------------------------
// Ablation A2: caching.

func ablationCache(quick bool) {
	fmt.Printf("\nAblation A2: Section 6.5 leaf caches, remote position queries\n\n")
	fmt.Printf("%-10s %14s %16s %12s\n", "caches", "mean resp.", "tree traversals", "msgs/query")
	ops := 300
	if quick {
		ops = 80
	}
	for _, enabled := range []bool{false, true} {
		var delivered atomic.Int64
		net := transport.NewInproc(transport.InprocOptions{
			Latency:   func(_, _ msg.NodeID) time.Duration { return 200 * time.Microsecond },
			OnDeliver: func(_, _ msg.NodeID, _ msg.Message) { delivered.Add(1) },
		})
		dep, err := hierarchy.Deploy(net, hierarchy.Spec{
			RootArea: geo.R(0, 0, 1500, 1500),
			Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
		}, server.Options{
			EnableAreaCache:  enabled,
			EnableAgentCache: enabled,
			EnablePosCache:   enabled,
		})
		if err != nil {
			fatal(err)
		}
		ctx := context.Background()
		owner, err := client.New(net, "owner", "r.0", client.Options{})
		if err != nil {
			fatal(err)
		}
		const n = 64
		for i := 0; i < n; i++ {
			if _, err := owner.Register(ctx, core.Sighting{
				OID: core.OID(fmt.Sprintf("a-%d", i)), T: time.Now(),
				Pos: geo.Pt(10+float64(i), 10), SensAcc: 5,
			}, 25, 100, 3); err != nil {
				fatal(err)
			}
		}
		time.Sleep(200 * time.Millisecond)
		remote, err := client.New(net, "remote", "r.3", client.Options{})
		if err != nil {
			fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		before := delivered.Load()
		start := time.Now()
		for i := 0; i < ops; i++ {
			if _, err := remote.PosQuery(ctx, core.OID(fmt.Sprintf("a-%d", rng.Intn(n)))); err != nil {
				fatal(err)
			}
		}
		mean := time.Since(start).Seconds() * 1000 / float64(ops)
		msgs := float64(delivered.Load()-before) / float64(ops)
		entry, _ := dep.Server("r.3")
		traversals := entry.Metrics().Counter("pos_query_remote").Value()
		label := "off"
		if enabled {
			label = "on"
		}
		fmt.Printf("%-10s %11.2f ms %16d %12.1f\n", label, mean, traversals, msgs)
		owner.Close()
		remote.Close()
		dep.Close()
		net.Close()
	}
}

// ---------------------------------------------------------------------------
// Ablation A3: hierarchy shape.

func ablationHierarchy(quick bool) {
	numObjects := 2_000
	ops := 200
	if quick {
		numObjects, ops = 500, 60
	}
	fmt.Printf("\nAblation A3: hierarchy height and fan-out (%d objects, mixed load)\n\n", numObjects)
	fmt.Printf("%-22s %8s %10s %14s %14s\n", "shape", "servers", "leaves", "remote pos ms", "msgs/op")

	shapes := []struct {
		name   string
		levels []hierarchy.Level
	}{
		{"flat 1x(2x2)", []hierarchy.Level{{Rows: 2, Cols: 2}}},
		{"flat 1x(4x4)", []hierarchy.Level{{Rows: 4, Cols: 4}}},
		{"deep 2x(2x2)", []hierarchy.Level{{Rows: 2, Cols: 2}, {Rows: 2, Cols: 2}}},
		{"deep 3x(2x2)", []hierarchy.Level{{Rows: 2, Cols: 2}, {Rows: 2, Cols: 2}, {Rows: 2, Cols: 2}}},
	}
	for _, shape := range shapes {
		spec := hierarchy.Spec{RootArea: geo.R(0, 0, 1600, 1600), Levels: shape.levels}
		w, err := sim.NewWorld(sim.Config{
			Spec:       spec,
			NumObjects: numObjects,
			HopLatency: 200 * time.Microsecond,
			Seed:       4,
		})
		if err != nil {
			fatal(err)
		}
		msgsBefore := w.Messages()
		res, err := w.Run(context.Background(), sim.Load{
			Workers:      8,
			OpsPerWorker: ops,
			Mix:          sim.Mix{PosQueries: 1},
			Locality:     0,
			Seed:         5,
		})
		if err != nil {
			fatal(err)
		}
		totalOps := int64(0)
		for _, st := range res.PerOp {
			totalOps += st.Count
		}
		msgs := float64(w.Messages()-msgsBefore) / float64(totalOps)
		remote := res.PerOp["pos_remote"]
		fmt.Printf("%-22s %8d %10d %14.2f %14.1f\n",
			shape.name, spec.NumServers(), len(w.Dep.Leaves()), remote.MeanMs, msgs)
		w.Close()
	}
}

// ---------------------------------------------------------------------------
// Ablation A4: update protocols (the "[15]" comparison).

func ablationUpdateProtocols(quick bool) {
	numObjects := 100
	ticks := 300
	if quick {
		numObjects, ticks = 30, 100
	}
	fmt.Printf("\nAblation A4: update protocols (%d random-waypoint objects, %d s simulated)\n\n", numObjects, ticks)
	fmt.Printf("%-16s %12s %14s %14s\n", "protocol", "updates", "mean dev (m)", "max dev (m)")

	policies := []func() object.Policy{
		func() object.Policy { return &object.DistanceBased{} },
		func() object.Policy { return &object.TimeBased{Interval: 10 * time.Second} },
		func() object.Policy { return &object.DeadReckoning{} },
	}
	for _, mk := range policies {
		net := transport.NewInproc(transport.InprocOptions{})
		dep, err := hierarchy.Deploy(net, hierarchy.Spec{
			RootArea: geo.R(0, 0, 1500, 1500),
			Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
		}, server.Options{AchievableAcc: 10})
		if err != nil {
			fatal(err)
		}
		ctx := context.Background()
		start := time.Date(2026, 6, 12, 8, 0, 0, 0, time.UTC)
		var sims []*object.Sim
		var name string
		for i := 0; i < numObjects; i++ {
			model := mobility.NewRandomWaypoint(geo.R(5, 5, 1495, 1495), 1, 15, 5, int64(i))
			entry, _ := dep.LeafFor(model.Pos())
			c, cerr := client.New(net, msg.NodeID(fmt.Sprintf("obj-node-%d", i)), entry, client.Options{})
			if cerr != nil {
				fatal(cerr)
			}
			pol := mk()
			name = pol.Name()
			s, serr := object.NewSim(ctx, c, core.OID(fmt.Sprintf("obj-%d", i)), model, pol, 5, 25, 100, 15, int64(i), start)
			if serr != nil {
				fatal(serr)
			}
			sims = append(sims, s)
		}
		for tick := 0; tick < ticks; tick++ {
			for _, s := range sims {
				if _, err := s.Tick(ctx, time.Second); err != nil {
					fatal(err)
				}
			}
		}
		var updates int
		var meanDev, maxDev float64
		for _, s := range sims {
			st := s.Stats()
			updates += st.Updates
			meanDev += st.MeanDev
			if st.MaxDev > maxDev {
				maxDev = st.MaxDev
			}
		}
		meanDev /= float64(numObjects)
		fmt.Printf("%-16s %12d %14.1f %14.1f\n", name, updates, meanDev, maxDev)
		dep.Close()
		net.Close()
	}
}

// ---------------------------------------------------------------------------
// Ablation A5: query locality.

func ablationLocality(quick bool) {
	numObjects := 2_000
	ops := 150
	if quick {
		numObjects, ops = 500, 50
	}
	fmt.Printf("\nAblation A5: query locality vs mean latency (%d objects)\n\n", numObjects)
	fmt.Printf("%-10s %14s %14s\n", "locality", "mean pos ms", "msgs/op")

	w, err := sim.NewWorld(sim.Config{
		NumObjects: numObjects,
		HopLatency: 200 * time.Microsecond,
		Seed:       6,
	})
	if err != nil {
		fatal(err)
	}
	defer w.Close()

	for _, locality := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		before := w.Messages()
		res, err := w.Run(context.Background(), sim.Load{
			Workers:      8,
			OpsPerWorker: ops,
			Mix:          sim.Mix{PosQueries: 1},
			Locality:     locality,
			Seed:         int64(7 + locality*100),
		})
		if err != nil {
			fatal(err)
		}
		var count int64
		var weighted float64
		for _, name := range []string{"pos_local", "pos_remote"} {
			st := res.PerOp[name]
			count += st.Count
			weighted += st.MeanMs * float64(st.Count)
		}
		mean := 0.0
		if count > 0 {
			mean = weighted / float64(count)
		}
		msgs := float64(w.Messages()-before) / float64(count)
		fmt.Printf("%-10.2f %14.2f %14.1f\n", locality, mean, msgs)
	}
}

// ---------------------------------------------------------------------------
// Ablation A6: HLR-style root partitioning (Section 4).

func ablationRootPartitions(quick bool) {
	numObjects := 3_000
	ops := 200
	if quick {
		numObjects, ops = 600, 60
	}
	fmt.Printf("\nAblation A6: root partitioning by object id (%d objects, remote position queries)\n\n", numObjects)
	fmt.Printf("%-12s %22s %24s\n", "partitions", "records per partition", "query msgs per partition")

	for _, parts := range []int{1, 2, 4} {
		w, err := sim.NewWorld(sim.Config{
			Spec: hierarchy.Spec{
				RootArea:       geo.R(0, 0, 1500, 1500),
				Levels:         []hierarchy.Level{{Rows: 2, Cols: 2}},
				RootPartitions: parts,
			},
			NumObjects: numObjects,
			Seed:       8,
		})
		if err != nil {
			fatal(err)
		}
		// Count PosQueryFwd arrivals per root partition through each
		// server's own metrics registry.
		roots := w.Dep.Roots()
		before := make(map[msg.NodeID]int64)
		for _, r := range roots {
			srv, _ := w.Dep.Server(r)
			before[r] = srv.Metrics().Counter("pos_fwd_seen").Value()
		}
		_, err = w.Run(context.Background(), sim.Load{
			Workers: 8, OpsPerWorker: ops,
			Mix: sim.Mix{PosQueries: 1}, Locality: 0, Seed: 13,
		})
		if err != nil {
			fatal(err)
		}
		var recStats, msgStats []string
		for _, r := range roots {
			srv, _ := w.Dep.Server(r)
			recStats = append(recStats, fmt.Sprintf("%d", srv.VisitorCount()))
			msgStats = append(msgStats, fmt.Sprintf("%d", srv.Metrics().Counter("pos_fwd_seen").Value()-before[r]))
		}
		fmt.Printf("%-12d %22s %24s\n", parts, strings.Join(recStats, "/"), strings.Join(msgStats, "/"))
		w.Close()
	}
}

// ---------------------------------------------------------------------------
// Ablation A7: sharded sighting store with the batched update pipeline.
// Parallel workers hammer one store; shards=0 is the seed single-lock
// SightingDB baseline. The wal upd/s column repeats the update workload
// with durable per-shard sighting logs attached (one WAL append per
// group-commit batch, no fsync; recorded runs in BENCH_wal.json). The knn5 column shows the resumable per-shard
// nearest-neighbor cursors: the distance-ordered merge advances each shard
// one neighbor at a time instead of re-fetching prefixes with doubled
// depth (recorded runs live in BENCH_sharded_store.json and
// BENCH_nn_cursor.json).

func ablationShardedStore(quick bool) {
	objects := 25_000
	opsPerWorker := 50_000
	if quick {
		objects, opsPerWorker = 5_000, 10_000
	}
	const side = 10_000.0
	const workers = 8
	fmt.Printf("\nAblation A7: sharded store vs single lock (%d objects, %d workers x %d updates)\n\n",
		objects, workers, opsPerWorker)
	fmt.Printf("%-22s %14s %14s %14s %14s\n", "store", "updates/s", "wal upd/s", "range q/s", "knn5 q/s")

	// measureUpdates loads db with the standard population and hammers it
	// with the parallel pipeline update workload, returning updates/s.
	measureUpdates := func(db store.SightingStore) float64 {
		rng := rand.New(rand.NewSource(1))
		sightings := make([]core.Sighting, objects)
		now := time.Now()
		for i := range sightings {
			sightings[i] = core.Sighting{
				OID: core.OID(fmt.Sprintf("obj-%d", i)), T: now,
				Pos:     geo.Pt(rng.Float64()*side, rng.Float64()*side),
				SensAcc: 10,
			}
			db.Put(sightings[i])
		}
		pipe := store.NewUpdatePipeline(db)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < opsPerWorker; i++ {
					s := sightings[wrng.Intn(objects)]
					s.Pos = geo.Pt(wrng.Float64()*side, wrng.Float64()*side)
					pipe.Put(s)
				}
			}(w)
		}
		wg.Wait()
		return float64(workers*opsPerWorker) / time.Since(start).Seconds()
	}

	for _, shards := range []int{0, 1, 4, 8} {
		var db store.SightingStore
		name := fmt.Sprintf("sharded (%d shards)", shards)
		if shards == 0 {
			db = store.NewSightingDB()
			name = "single lock (seed)"
		} else {
			db = store.NewShardedSightingDB(store.WithShards(shards))
		}
		updateRate := measureUpdates(db)

		// Same workload with durable per-shard sighting logs attached
		// (process-crash durability, no fsync) — the wal upd/s column.
		walRate := "-"
		if shards > 0 {
			walDir, err := os.MkdirTemp("", "lsbench-wal")
			if err != nil {
				fatal(err)
			}
			swal, err := store.OpenShardedWAL(walDir, shards)
			if err != nil {
				fatal(err)
			}
			wdb := store.NewShardedSightingDB(store.WithSightingWAL(swal))
			rate := measureUpdates(wdb)
			if err := swal.Flush(); err != nil {
				fatal(err)
			}
			swal.Close()
			os.RemoveAll(walDir)
			walRate = fmt.Sprintf("%.0f", rate)
		}

		queries := opsPerWorker / 10
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(int64(100 + w)))
				for i := 0; i < queries; i++ {
					x := wrng.Float64() * (side - 100)
					y := wrng.Float64() * (side - 100)
					db.SearchArea(geo.R(x, y, x+100, y+100), func(core.Sighting) bool { return true })
				}
			}(w)
		}
		wg.Wait()
		queryRate := float64(workers*queries) / time.Since(start).Seconds()

		knnOps := opsPerWorker / 10
		start = time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(int64(200 + w)))
				for i := 0; i < knnOps; i++ {
					p := geo.Pt(wrng.Float64()*side, wrng.Float64()*side)
					n := 0
					db.NearestFunc(p, func(core.Sighting, float64) bool {
						n++
						return n < 5
					})
				}
			}(w)
		}
		wg.Wait()
		knnRate := float64(workers*knnOps) / time.Since(start).Seconds()
		fmt.Printf("%-22s %14.0f %14s %14.0f %14.0f\n", name, updateRate, walRate, queryRate, knnRate)
	}
}

// ---------------------------------------------------------------------------
// Ablation A8: live adaptive shard resizing. Two questions: (1) what does
// the epoch-versioned shard map cost on the steady-state hot paths (it
// should be ~free: one atomic pointer load plus a bool check per op —
// compare against the A7 recordings taken before the indirection existed),
// and (2) what does a live resize of a populated store cost — total
// migration wall time, and the worst stall any concurrent query observes
// (bounded by one shard's handoff, not the whole migration). Recorded runs
// live in BENCH_resize.json.

func ablationResize(quick bool) {
	objects := 25_000
	opsPerWorker := 50_000
	population := 1_000_000
	if quick {
		objects, opsPerWorker, population = 5_000, 10_000, 100_000
	}
	const side = 10_000.0
	const workers = 8

	fmt.Printf("\nAblation A8: live adaptive shard resizing\n\n")

	// Part 1: steady-state cost of the epoch indirection (compare to the
	// same columns of A7 recorded before this refactor).
	fmt.Printf("steady state, 8 shards (%d objects, %d workers x %d updates; compare A7):\n", objects, workers, opsPerWorker)
	db := store.NewShardedSightingDB(store.WithShards(8))
	rng := rand.New(rand.NewSource(1))
	sightings := make([]core.Sighting, objects)
	now := time.Now()
	for i := range sightings {
		sightings[i] = core.Sighting{
			OID: core.OID(fmt.Sprintf("obj-%d", i)), T: now,
			Pos:     geo.Pt(rng.Float64()*side, rng.Float64()*side),
			SensAcc: 10,
		}
		db.Put(sightings[i])
	}
	pipe := store.NewUpdatePipeline(db)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPerWorker; i++ {
				s := sightings[wrng.Intn(objects)]
				s.Pos = geo.Pt(wrng.Float64()*side, wrng.Float64()*side)
				pipe.Put(s)
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("  %-18s %14.0f\n", "updates/s", float64(workers*opsPerWorker)/time.Since(start).Seconds())
	knnOps := opsPerWorker / 10
	start = time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(200 + w)))
			for i := 0; i < knnOps; i++ {
				p := geo.Pt(wrng.Float64()*side, wrng.Float64()*side)
				n := 0
				db.NearestFunc(p, func(core.Sighting, float64) bool {
					n++
					return n < 5
				})
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("  %-18s %14.0f\n", "knn5 q/s", float64(workers*knnOps)/time.Since(start).Seconds())

	// Part 2: live resize of a populated store under continuous query
	// probes. Point lookups (Get) touch one shard and can stall on at
	// most one handoff — the protocol's headline bound. A full-fan-out
	// range query convoys behind the shard walk (it can wait at each
	// successive handoff it catches up with), so its worst case is
	// reported separately; it is still bounded by the migration, never
	// by a global quiesce.
	fmt.Printf("\nlive resize (%d sightings, concurrent query probes):\n", population)
	fmt.Printf("  %-12s %14s %16s %16s %16s %16s\n", "transition", "resize ms",
		"get stall ms", "get base ms", "range stall ms", "range base ms")
	big := store.NewShardedSightingDB(store.WithShards(4))
	ids := make([]core.OID, population)
	for i := 0; i < population; i++ {
		ids[i] = core.OID(fmt.Sprintf("obj-%d", i))
		big.Put(core.Sighting{OID: ids[i], T: now, Pos: geo.Pt(rng.Float64()*side, rng.Float64()*side), SensAcc: 10})
	}
	// Independent goroutines per probe kind: a range query stuck behind
	// the shard walk must not stop the point-lookup probe from sampling.
	getProbe := func(stop <-chan struct{}, maxNanos *int64) {
		prng := rand.New(rand.NewSource(77))
		for {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			big.Get(ids[prng.Intn(population)])
			if d := time.Since(t0).Nanoseconds(); d > atomic.LoadInt64(maxNanos) {
				atomic.StoreInt64(maxNanos, d)
			}
		}
	}
	rangeProbe := func(stop <-chan struct{}, maxNanos *int64) {
		prng := rand.New(rand.NewSource(78))
		for {
			select {
			case <-stop:
				return
			default:
			}
			x, y := prng.Float64()*(side-50), prng.Float64()*(side-50)
			t0 := time.Now()
			big.SearchArea(geo.R(x, y, x+50, y+50), func(core.Sighting) bool { return true })
			if d := time.Since(t0).Nanoseconds(); d > atomic.LoadInt64(maxNanos) {
				atomic.StoreInt64(maxNanos, d)
			}
		}
	}
	measure := func(name string, target int) {
		run := func(resize bool) (getMax, rangeMax, resizeMS float64) {
			var g, r int64
			stop := make(chan struct{})
			var pwg sync.WaitGroup
			pwg.Add(2)
			go func() { defer pwg.Done(); getProbe(stop, &g) }()
			go func() { defer pwg.Done(); rangeProbe(stop, &r) }()
			if resize {
				t0 := time.Now()
				if err := big.Resize(target); err != nil {
					fatal(err)
				}
				resizeMS = float64(time.Since(t0).Nanoseconds()) / 1e6
			} else {
				time.Sleep(300 * time.Millisecond)
			}
			close(stop)
			pwg.Wait()
			return float64(g) / 1e6, float64(r) / 1e6, resizeMS
		}
		baseGet, baseRange, _ := run(false)
		stallGet, stallRange, resizeMS := run(true)
		fmt.Printf("  %-12s %14.1f %16.2f %16.2f %16.2f %16.2f\n", name, resizeMS,
			stallGet, baseGet, stallRange, baseRange)
	}
	measure("4 -> 8", 8)
	measure("8 -> 4", 4)
}

// ---------------------------------------------------------------------------
// Table W: wire codec. The hand-rolled binary codec vs the retired gob
// format on the datagrams that dominate steady-state traffic: every remote
// operation pays the codec twice (request + response), so round-trip
// encode+decode throughput is the number that matters. Recorded runs live
// in BENCH_wire.json.

func tableWire(quick bool) {
	binOps := 2_000_000
	gobOps := 40_000
	if quick {
		binOps, gobOps = 200_000, 5_000
	}
	fmt.Printf("\nTable W: wire codec round trips (binary vs gob baseline)\n\n")
	fmt.Printf("%-20s %10s %10s %14s %14s %9s\n",
		"message", "bin bytes", "gob bytes", "binary rt/s", "gob rt/s", "speedup")

	subObjs := make([]core.Entry, 16)
	for i := range subObjs {
		subObjs[i] = core.Entry{
			OID: core.OID(fmt.Sprintf("obj-%04d", i)),
			LD:  core.LocationDescriptor{Pos: geo.Pt(float64(i)*10, 500), Acc: 10},
		}
	}
	envelopes := []struct {
		name string
		env  msg.Envelope
	}{
		{"UpdateReq", msg.Envelope{From: "obj-node-17", CorrID: 421, Msg: msg.UpdateReq{S: core.Sighting{
			OID: "truck-7", T: time.Unix(1_700_000_000, 250_000_000).UTC(),
			Pos: geo.Pt(1234.5, 987.25), SensAcc: 10,
		}}}},
		{"PosQueryRes", msg.Envelope{From: "r.2", CorrID: 99, Reply: true, Msg: msg.PosQueryRes{
			OpID: 7, Found: true,
			LD:    core.LocationDescriptor{Pos: geo.Pt(431.25, 1102.5), Acc: 12.5},
			Agent: "r.2",
			AgentInfo: msg.LeafInfo{
				ID:   "r.2",
				Area: core.AreaFromRect(geo.R(0, 750, 750, 1500)),
			},
			MaxSpeed: 15, Hops: 3,
		}}},
		{"RangeQuerySubRes(16)", msg.Envelope{From: "r.1", Msg: msg.RangeQuerySubRes{
			OpID: 99, Objs: subObjs, CoveredSize: 2500,
			Leaf: msg.LeafInfo{ID: "r.1", Area: core.AreaFromRect(geo.R(0, 0, 750, 750))},
		}}},
	}

	for _, e := range envelopes {
		binData, err := wire.Encode(e.env)
		if err != nil {
			fatal(err)
		}
		gobData, err := wire.EncodeGob(e.env)
		if err != nil {
			fatal(err)
		}

		buf := make([]byte, 0, len(binData))
		start := time.Now()
		for i := 0; i < binOps; i++ {
			buf, err = wire.AppendEncode(buf[:0], e.env)
			if err != nil {
				fatal(err)
			}
			if _, err := wire.Decode(buf); err != nil {
				fatal(err)
			}
		}
		binRate := float64(binOps) / time.Since(start).Seconds()

		start = time.Now()
		for i := 0; i < gobOps; i++ {
			data, gerr := wire.EncodeGob(e.env)
			if gerr != nil {
				fatal(gerr)
			}
			if _, gerr := wire.DecodeGob(data); gerr != nil {
				fatal(gerr)
			}
		}
		gobRate := float64(gobOps) / time.Since(start).Seconds()

		fmt.Printf("%-20s %10d %10d %14.0f %14.0f %8.1fx\n",
			e.name, len(binData), len(gobData), binRate, gobRate, binRate/gobRate)
	}
}

// ---------------------------------------------------------------------------
// Table B: datagram batching and the multiplexed async client over real UDP
// sockets. An update-heavy fan-out workload — one client node keeping a
// fleet of objects fresh with UpdateAsync — runs once with the batcher off
// (every envelope its own datagram, the pre-batching transport) and once
// with coalescing on. Throughput, fan-out round latency and the
// envelopes-per-datagram ratio come from the same shared metrics registry
// the servers report through. Recorded runs live in BENCH_batch.json.

func tableBatch(quick bool) {
	fleet := 192
	rounds := 25
	if quick {
		fleet, rounds = 48, 5
	}
	fmt.Printf("\nTable B: datagram batching + multiplexed async client (real UDP, %d objects x %d update rounds)\n\n", fleet, rounds)
	fmt.Printf("%-18s %12s %14s %14s %12s %12s\n",
		"config", "updates/s", "fan-out ms", "envs/datagram", "datagrams", "envelopes")

	type result struct {
		updatesPerSec float64
		fanoutMs      float64
		ratio         float64
	}
	runCfg := func(label string, batchMax int) result {
		reg := metrics.NewRegistry()
		net := transport.NewUDPWithOptions(transport.UDPOptions{
			Metrics:     reg,
			BatchMax:    batchMax,
			BatchLinger: time.Millisecond,
			CallTimeout: 10 * time.Second,
			MaxInFlight: 512,
		})
		defer net.Close()
		dep, err := hierarchy.Deploy(net, hierarchy.Spec{
			RootArea: geo.R(0, 0, 1500, 1500),
			Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
		}, server.Options{})
		if err != nil {
			fatal(err)
		}
		defer dep.Close()

		ctx := context.Background()
		entry, _ := dep.LeafFor(geo.Pt(100, 100))
		cl, err := client.New(net, "bench-client", entry, client.Options{Timeout: 10 * time.Second})
		if err != nil {
			fatal(err)
		}
		defer cl.Close()

		// Spread the fleet over all four leaves so the coalescer batches
		// per destination, then jitter updates inside each quadrant so no
		// round triggers handovers.
		quadrant := func(i int) geo.Point {
			qx, qy := float64(i%2), float64((i/2)%2)
			return geo.Pt(100+qx*750+float64(i%30), 100+qy*750+float64((i/30)%30))
		}
		objs := make([]*client.TrackedObject, fleet)
		for i := range objs {
			obj, err := cl.Register(ctx, core.Sighting{
				OID: core.OID(fmt.Sprintf("b-%d", i)), T: time.Now(),
				Pos: quadrant(i), SensAcc: 10,
			}, 10, 100, 3)
			if err != nil {
				fatal(err)
			}
			objs[i] = obj
		}

		envBefore := reg.Counter("wire_envelopes_out").Value()
		dgBefore := reg.Counter("wire_datagrams_out").Value()
		pending := make([]*client.PendingUpdate, fleet)
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for i, obj := range objs {
				p := quadrant(i)
				p.X += float64(r%5) * 2
				pu, err := obj.UpdateAsync(ctx, core.Sighting{
					OID: core.OID(fmt.Sprintf("b-%d", i)), T: time.Now(), Pos: p, SensAcc: 10,
				})
				if err != nil {
					fatal(err)
				}
				pending[i] = pu
			}
			for _, pu := range pending {
				if err := pu.Wait(ctx); err != nil {
					fatal(err)
				}
			}
		}
		elapsed := time.Since(start)
		envs := reg.Counter("wire_envelopes_out").Value() - envBefore
		dgs := reg.Counter("wire_datagrams_out").Value() - dgBefore

		res := result{
			updatesPerSec: float64(fleet*rounds) / elapsed.Seconds(),
			fanoutMs:      elapsed.Seconds() * 1000 / float64(rounds),
			ratio:         float64(envs) / float64(dgs),
		}
		fmt.Printf("%-18s %12.0f %14.2f %14.2f %12d %12d\n",
			label, res.updatesPerSec, res.fanoutMs, res.ratio, dgs, envs)
		return res
	}

	unbatched := runCfg("unbatched", 1)
	batched := runCfg("batched (16)", 16)
	fmt.Printf("\ndatagram reduction: %.1fx fewer datagrams per envelope; fan-out %.2fx faster\n",
		batched.ratio/unbatched.ratio, unbatched.fanoutMs/batched.fanoutMs)
}

// ---------------------------------------------------------------------------
// Table R: resilience. Three questions, answered on the in-process testbed:
//
//  1. What does the resilience machinery cost when nothing fails? The same
//     update/query workload runs once with retries, breakers and the
//     path-retry budget effectively off, and once with the full stack armed.
//     On a loss-free network no retry ever fires, so the delta is the pure
//     bookkeeping overhead (sequence stamping, dedupe lookups, breaker state
//     checks, tracked fan-out acks) — the acceptance bar is <= 5%.
//  2. What do degraded queries cost while a leaf is dark? Whole-area range
//     queries run against a paused leaf: the first ones burn the query
//     timeout, then the parent's breaker opens and the remainder fail fast
//     with an unreachable report. Both latencies and the partial rate are
//     reported.
//  3. How fast does the hierarchy recover? The dark leaf is crashed for
//     real and restarted from its WAL; recovery time is measured from the
//     restart until the parent's breaker has closed AND a whole-area query
//     comes back complete (not partial).
//
// Recorded runs live in BENCH_resilience.json.

func tableResilience(quick bool) {
	fleet, rounds, darkQueries := 128, 20, 12
	if quick {
		fleet, rounds, darkQueries = 32, 5, 6
	}
	fmt.Printf("\nTable R: resilience (%d objects x %d update rounds + per-round range query)\n\n", fleet, rounds)

	spec := hierarchy.Spec{
		RootArea: geo.R(0, 0, 1500, 1500),
		Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
	}
	quadrant := func(i int) geo.Point {
		qx, qy := float64(i%2), float64((i/2)%2)
		return geo.Pt(100+qx*750+float64(i%30), 100+qy*750+float64((i/30)%30))
	}
	wholeArea := core.AreaFromRect(spec.RootArea)

	// Phase 1: fault-free overhead, resilience off vs on. Both configs
	// run on the suite's LAN model (200µs per hop, as in Table 2): the
	// question is what the stack costs a deployment whose per-op budget
	// is network-bound, not how it microbenchmarks against a zero-cost
	// in-memory hop.
	runCfg := func(resilient bool) (elapsed time.Duration) {
		opts := transport.InprocOptions{
			Latency: func(_, _ msg.NodeID) time.Duration { return 200 * time.Microsecond },
		}
		if resilient {
			opts.BreakerThreshold = 3
			opts.BreakerCooldown = 250 * time.Millisecond
		}
		net := transport.NewInproc(opts)
		defer net.Close()
		srvOpts := server.Options{}
		if !resilient {
			srvOpts.PathRetry = transport.RetryPolicy{MaxAttempts: 1}
		}
		dep, err := hierarchy.Deploy(net, spec, srvOpts)
		if err != nil {
			fatal(err)
		}
		defer dep.Close()

		ctx := context.Background()
		clOpts := client.Options{Timeout: 10 * time.Second}
		if resilient {
			clOpts.Retry = transport.DefaultRetryPolicy()
		}
		entry, _ := dep.LeafFor(geo.Pt(100, 100))
		cl, err := client.New(net, "bench-client", entry, clOpts)
		if err != nil {
			fatal(err)
		}
		defer cl.Close()

		objs := make([]*client.TrackedObject, fleet)
		for i := range objs {
			obj, rerr := cl.Register(ctx, core.Sighting{
				OID: core.OID(fmt.Sprintf("r-%d", i)), T: time.Now(),
				Pos: quadrant(i), SensAcc: 10,
			}, 10, 100, 3)
			if rerr != nil {
				fatal(rerr)
			}
			objs[i] = obj
		}

		start := time.Now()
		for r := 0; r < rounds; r++ {
			for i, obj := range objs {
				p := quadrant(i)
				p.X += float64(r%5) * 2
				if uerr := obj.Update(ctx, core.Sighting{
					OID: core.OID(fmt.Sprintf("r-%d", i)), T: time.Now(), Pos: p, SensAcc: 10,
				}); uerr != nil {
					fatal(uerr)
				}
			}
			if _, qerr := cl.RangeQueryFull(ctx, wholeArea, 100, 0.5); qerr != nil {
				fatal(qerr)
			}
		}
		return time.Since(start)
	}

	fmt.Printf("%-26s %12s %14s\n", "config", "ops/s", "elapsed ms")
	report := func(label string, d time.Duration) {
		ops := float64(fleet*rounds+rounds) / d.Seconds()
		fmt.Printf("%-26s %12.0f %14.1f\n", label, ops, d.Seconds()*1000)
	}
	// Interleave two runs per config and keep the faster one: the very
	// first deployment absorbs process warm-up, which would otherwise be
	// billed entirely to whichever config runs first.
	minDur := func(a, b time.Duration) time.Duration {
		if a < b {
			return a
		}
		return b
	}
	base, resil := runCfg(false), runCfg(true)
	base, resil = minDur(base, runCfg(false)), minDur(resil, runCfg(true))
	report("baseline (stack off)", base)
	report("resilient (stack armed)", resil)
	overhead := (resil.Seconds() - base.Seconds()) / base.Seconds() * 100
	fmt.Printf("\nfault-free overhead: %+.1f%% (acceptance: <= 5%%)\n", overhead)

	// Phases 2 + 3 share one resilient deployment with a WAL-backed leaf.
	const (
		callTO   = 150 * time.Millisecond
		queryTO  = 400 * time.Millisecond
		cooldown = 250 * time.Millisecond
	)
	reg := metrics.NewRegistry()
	net := transport.NewInproc(transport.InprocOptions{
		Metrics:          reg,
		SweepInterval:    10 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  cooldown,
	})
	defer net.Close()
	walDir, err := os.MkdirTemp("", "lsbench-resilience")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(walDir)
	darkLeaf := msg.NodeID("r.3")
	walPath := walDir + "/r3.wal"
	srvOpts := server.Options{CallTimeout: callTO, QueryTimeout: queryTO}
	dep, err := hierarchy.DeployWith(net, spec, srvOpts, func(cfg store.ConfigRecord, o server.Options) (server.Options, error) {
		if msg.NodeID(cfg.ID) == darkLeaf {
			wal, werr := store.OpenFileWAL(walPath)
			if werr != nil {
				return o, werr
			}
			o.WAL = wal
		}
		return o, nil
	})
	if err != nil {
		fatal(err)
	}
	defer dep.Close()

	ctx := context.Background()
	cl, err := client.New(net, "dark-client", "r.0", client.Options{
		Timeout: 10 * time.Second,
		Retry:   transport.DefaultRetryPolicy(),
	})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 4; i++ {
		if _, rerr := cl.Register(ctx, core.Sighting{
			OID: core.OID(fmt.Sprintf("d-%d", i)), T: time.Now(),
			Pos: quadrant(i), SensAcc: 10,
		}, 10, 100, 3); rerr != nil {
			fatal(rerr)
		}
	}

	// Phase 2: degraded queries against a paused leaf. The first queries
	// wait out the coordinator's query timeout; once the breaker opens
	// the unreachable report short-circuits the wait.
	net.SetNodeDown(darkLeaf, true)
	var darkLat []time.Duration
	partial := 0
	for i := 0; i < darkQueries; i++ {
		qs := time.Now()
		res, qerr := cl.RangeQueryFull(ctx, wholeArea, 100, 0.5)
		if qerr != nil {
			fatal(qerr)
		}
		darkLat = append(darkLat, time.Since(qs))
		if res.Partial {
			partial++
		}
	}
	first, last := darkLat[0], darkLat[len(darkLat)-1]
	fmt.Printf("\ndark-leaf range queries: %d/%d partial; first %.0f ms (timeout-bound), last %.0f ms (breaker fail-fast)\n",
		partial, darkQueries, first.Seconds()*1000, last.Seconds()*1000)

	// Phase 3: crash the paused leaf for real and restart it from its
	// WAL; recovery is complete when the parent's breaker closed and a
	// whole-area query is no longer partial.
	net.SetNodeDown(darkLeaf, false)
	if cerr := dep.Servers[darkLeaf].Close(); cerr != nil {
		fatal(cerr)
	}
	wal, err := store.OpenFileWAL(walPath)
	if err != nil {
		fatal(err)
	}
	restartOpts := srvOpts
	restartOpts.WAL = wal
	var cfg store.ConfigRecord
	for _, c := range dep.Configs {
		if msg.NodeID(c.ID) == darkLeaf {
			cfg = c
		}
	}
	restartAt := time.Now()
	srv, err := server.New(cfg, core.AreaFromRect(spec.RootArea), net, restartOpts)
	if err != nil {
		fatal(err)
	}
	dep.Servers[darkLeaf] = srv
	for {
		res, qerr := cl.RangeQueryFull(ctx, wholeArea, 100, 0.5)
		if qerr == nil && !res.Partial && net.PeerState(dep.Root(), darkLeaf) == transport.PeerClosed {
			break
		}
		if time.Since(restartAt) > 30*time.Second {
			fatal(fmt.Errorf("hierarchy never recovered after %s restart", darkLeaf))
		}
		time.Sleep(cooldown / 5)
	}
	recovery := time.Since(restartAt)
	fmt.Printf("leaf restart recovery: %.0f ms until breaker closed + first complete query (cooldown %v)\n",
		recovery.Seconds()*1000, cooldown)
	fmt.Printf("breaker fail-fast rejections during dark phase: %d; visitors restored from WAL: %d\n",
		reg.Counter("wire_breaker_open").Value(), srv.VisitorCount())
}

// ---------------------------------------------------------------------------
// Table E: the subscription-indexed, delta-driven event pipeline against the
// evaluate-all baseline it replaced. One leaf carries the whole fleet plus N
// installed count subscriptions; 8 workers hammer synchronous position
// updates for a fixed window. In oracle mode (Options.EventOracle — the
// seed behavior) every update re-evaluates every subscription before the
// update acks, so throughput collapses linearly in N. In indexed mode each
// committed delta is matched against the subscription rectangle index (two
// point stabs) on the dispatcher goroutine, off the update path, so update
// throughput is nearly flat in N. Recorded runs live in BENCH_events.json.

func tableEvents(quick bool) {
	const workers = 8
	const side = 1500.0
	fleet := 2_000
	subCounts := []int{0, 100, 1_000, 10_000}
	window := 1500 * time.Millisecond
	if quick {
		fleet, window = 400, 300*time.Millisecond
		subCounts = []int{0, 100, 1_000}
	}
	fleet = (fleet / workers) * workers
	per := fleet / workers

	fmt.Printf("\nTable E: event pipeline, update throughput vs installed subscriptions\n")
	fmt.Printf("(single leaf, %d objects, %d workers, 50 m x 50 m count subscriptions)\n\n", fleet, workers)
	fmt.Printf("%-8s %16s %16s %10s\n", "subs", "indexed upd/s", "oracle upd/s", "speedup")

	runCfg := func(oracle bool, subs int) float64 {
		net := transport.NewInproc(transport.InprocOptions{})
		defer net.Close()
		dep, err := hierarchy.Deploy(net, hierarchy.Spec{RootArea: geo.R(0, 0, side, side)},
			server.Options{EventOracle: oracle})
		if err != nil {
			fatal(err)
		}
		defer dep.Close()
		ctx := context.Background()
		leaf, _ := dep.LeafFor(geo.Pt(1, 1))

		// Per-worker clients own disjoint slices of the fleet.
		rng := rand.New(rand.NewSource(11))
		objs := make([]*client.TrackedObject, fleet)
		for w := 0; w < workers; w++ {
			c, cerr := client.New(net, msg.NodeID(fmt.Sprintf("ev-upd-%d", w)), leaf,
				client.Options{Timeout: 30 * time.Second})
			if cerr != nil {
				fatal(cerr)
			}
			defer c.Close()
			for i := w * per; i < (w+1)*per; i++ {
				obj, rerr := c.Register(ctx, core.Sighting{
					OID: core.OID(fmt.Sprintf("e-%d", i)), T: time.Now(),
					Pos: geo.Pt(rng.Float64()*side, rng.Float64()*side), SensAcc: 10,
				}, 25, 100, 3)
				if rerr != nil {
					fatal(rerr)
				}
				objs[i] = obj
			}
		}

		// Scattered small count subscriptions; the threshold is out of
		// reach so the workload measures evaluation, not notify traffic.
		subscriber, err := client.New(net, "ev-subscriber", leaf, client.Options{Timeout: 30 * time.Second})
		if err != nil {
			fatal(err)
		}
		defer subscriber.Close()
		for i := 0; i < subs; i++ {
			x, y := rng.Float64()*(side-50), rng.Float64()*(side-50)
			area := core.AreaFromRect(geo.R(x, y, x+50, y+50))
			if serr := subscriber.SubscribeCountAbove(fmt.Sprintf("es-%d", i), area, 25, fleet+1,
				func(msg.EventNotify) {}); serr != nil {
				fatal(serr)
			}
		}
		srv, _ := dep.Server(leaf)
		for srv.Metrics().Gauge("event_subscriptions").Value() < int64(subs) {
			time.Sleep(5 * time.Millisecond)
		}

		deadline := time.Now().Add(window)
		var done atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(int64(100 + w)))
				for time.Now().Before(deadline) {
					i := w*per + wrng.Intn(per)
					if uerr := objs[i].Update(ctx, core.Sighting{
						OID: core.OID(fmt.Sprintf("e-%d", i)), T: time.Now(),
						Pos: geo.Pt(wrng.Float64()*side, wrng.Float64()*side), SensAcc: 10,
					}); uerr != nil {
						fatal(uerr)
					}
					done.Add(1)
				}
			}(w)
		}
		wg.Wait()
		return float64(done.Load()) / time.Since(start).Seconds()
	}

	for _, subs := range subCounts {
		indexed := runCfg(false, subs)
		oracle := runCfg(true, subs)
		speedup := "-"
		if oracle > 0 {
			speedup = fmt.Sprintf("%.1fx", indexed/oracle)
		}
		fmt.Printf("%-8d %16.0f %16.0f %10s\n", subs, indexed, oracle, speedup)
	}
}

// ---------------------------------------------------------------------------
// Table L: tiered (LSM) sighting storage. The memtable budget is set to a
// quarter of the dataset's resident footprint, so ~3/4 of the working set
// lives in sorted runs on disk — the bigger-than-RAM regime the tier
// exists for. Three questions: (1) what does tiering cost on the update
// path next to the all-RAM WAL store, (2) what do point lookups cost when
// they hit the memtable (hot) vs when they fall through the bloom-gated
// runs (cold), and (3) how much faster is recovery when it opens run
// footers and replays only the WAL tail instead of folding the full log.
// Recorded runs live in BENCH_lsm.json.

func tableLSM(quick bool) {
	const side = 10_000.0
	const shards = 8
	const workers = 8
	objects := 200_000
	opsPerWorker := 50_000
	lookups := 100_000
	recoverPop := 1_000_000
	if quick {
		objects, opsPerWorker, lookups, recoverPop = 20_000, 5_000, 10_000, 50_000
	}
	// A quarter of the estimated resident footprint (~180 B/entry): the
	// dataset is 4x the memtable budget, per the design target.
	budget := int64(objects) * 180 / 4

	fmt.Printf("\nTable L: tiered (LSM) sighting storage\n")
	fmt.Printf("(%d objects, %d shards, memtable budget %d KiB = dataset/4, %d workers)\n\n",
		objects, shards, budget>>10, workers)

	newSightings := func(n int) []core.Sighting {
		rng := rand.New(rand.NewSource(1))
		ss := make([]core.Sighting, n)
		now := time.Now()
		for i := range ss {
			ss[i] = core.Sighting{
				OID: core.OID(fmt.Sprintf("obj-%d", i)), T: now,
				Pos:     geo.Pt(rng.Float64()*side, rng.Float64()*side),
				SensAcc: 10,
			}
		}
		return ss
	}

	// loadAndHammer populates db and runs the parallel pipeline update
	// workload; maintain (non-nil on tiered stores) is called periodically
	// the way the janitor would.
	loadAndHammer := func(db store.SightingStore, ss []core.Sighting, maintain func()) float64 {
		for _, s := range ss {
			db.Put(s)
		}
		if maintain != nil {
			maintain()
		}
		pipe := store.NewUpdatePipeline(db)
		start := time.Now()
		var wg sync.WaitGroup
		stop := make(chan struct{})
		if maintain != nil {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tick := time.NewTicker(20 * time.Millisecond)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						maintain()
					}
				}
			}()
		}
		var uwg sync.WaitGroup
		for w := 0; w < workers; w++ {
			uwg.Add(1)
			go func(w int) {
				defer uwg.Done()
				wrng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < opsPerWorker; i++ {
					s := ss[wrng.Intn(len(ss))]
					s.Pos = geo.Pt(wrng.Float64()*side, wrng.Float64()*side)
					pipe.Put(s)
				}
			}(w)
		}
		uwg.Wait()
		rate := float64(workers*opsPerWorker) / time.Since(start).Seconds()
		close(stop)
		wg.Wait()
		return rate
	}

	percentiles := func(lat []time.Duration) (p50, p99 time.Duration) {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)/2], lat[len(lat)*99/100]
	}

	ss := newSightings(objects)

	// Baseline: the all-RAM sharded store with durable per-shard logs —
	// what a leaf runs today when the working set fits in memory.
	baseDir, err := os.MkdirTemp("", "lsbench-lsm-base")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(baseDir)
	baseWAL, err := store.OpenShardedWAL(baseDir, shards)
	if err != nil {
		fatal(err)
	}
	baseDB := store.NewShardedSightingDB(store.WithSightingWAL(baseWAL))
	baseUpd := loadAndHammer(baseDB, ss, nil)

	// Tiered store under the same workload.
	tierDir, err := os.MkdirTemp("", "lsbench-lsm-tier")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tierDir)
	tierWAL, err := store.OpenShardedWAL(tierDir, shards)
	if err != nil {
		fatal(err)
	}
	tierDB := store.NewShardedSightingDB(
		store.WithSightingWAL(tierWAL),
		store.WithTiering(store.TierConfig{MemtableBytes: budget}))
	if err := tierDB.Recover(); err != nil {
		fatal(err)
	}
	tierUpd := loadAndHammer(tierDB, ss, func() {
		if merr := tierDB.MaintainTiers(); merr != nil {
			fatal(merr)
		}
	})
	if err := tierDB.MaintainTiers(); err != nil {
		fatal(err)
	}
	st := tierDB.TierStats()

	fmt.Printf("%-34s %14s\n", "updates (8 workers, pipeline)", "upd/s")
	fmt.Printf("%-34s %14.0f\n", "all-RAM + WAL (baseline)", baseUpd)
	fmt.Printf("%-34s %14.0f\n\n", "tiered (dataset 4x memtable)", tierUpd)
	fmt.Printf("tier state after load: %d runs, %d KiB on disk, memtables %d KiB resident, run metadata %d KiB resident\n",
		st.Runs, st.RunBytes>>10, st.MemtableBytes>>10, st.MetaBytes>>10)
	fmt.Printf("flushes %d, compactions %d, disk records %d (%d live)\n\n",
		st.Flushes, st.Compactions, st.DiskRecords, st.DiskLive)

	// Point lookups. Hot: re-put a small subset so it resides in the
	// memtables, then query it. Cold: uniform over the whole population —
	// with a 4x dataset most probes fall through to the runs.
	hotN := objects / 20
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < hotN; i++ {
		s := ss[i]
		s.Pos = geo.Pt(rng.Float64()*side, rng.Float64()*side)
		tierDB.Put(s)
	}
	measureGets := func(db store.SightingStore, pick func(*rand.Rand) core.OID) (p50, p99 time.Duration, missed int) {
		lrng := rand.New(rand.NewSource(9))
		lat := make([]time.Duration, lookups)
		for i := range lat {
			id := pick(lrng)
			t0 := time.Now()
			if _, ok := db.Get(id); !ok {
				missed++
			}
			lat[i] = time.Since(t0)
		}
		p50, p99 = percentiles(lat)
		return p50, p99, missed
	}
	pre := tierDB.TierStats()
	hot50, hot99, _ := measureGets(tierDB, func(r *rand.Rand) core.OID { return ss[r.Intn(hotN)].OID })
	cold50, cold99, _ := measureGets(tierDB, func(r *rand.Rand) core.OID { return ss[r.Intn(objects)].OID })
	post := tierDB.TierStats()
	probes := float64(post.BloomHits-pre.BloomHits) / float64(2*lookups)
	base50, base99, _ := measureGets(baseDB, func(r *rand.Rand) core.OID { return ss[r.Intn(objects)].OID })

	fmt.Printf("%-34s %12s %12s\n", "point lookup", "p50", "p99")
	fmt.Printf("%-34s %12v %12v\n", "all-RAM + WAL (baseline)", base50, base99)
	fmt.Printf("%-34s %12v %12v\n", "tiered, hot (memtable)", hot50, hot99)
	fmt.Printf("%-34s %12v %12v\n", "tiered, cold (uniform)", cold50, cold99)
	fmt.Printf("bloom-admitted run probes per lookup: %.2f (target <= 1)\n\n", probes)

	// Recovery: a populated leaf restarts. The baseline folds its full
	// WAL; the tiered store opens run footers and replays only the tail
	// covering the current memtables.
	recoverRun := func(tiered bool) (time.Duration, int) {
		dir, derr := os.MkdirTemp("", "lsbench-lsm-rec")
		if derr != nil {
			fatal(derr)
		}
		defer os.RemoveAll(dir)
		wal, werr := store.OpenShardedWAL(dir, shards)
		if werr != nil {
			fatal(werr)
		}
		sopts := []store.SightingDBOption{store.WithSightingWAL(wal)}
		if tiered {
			sopts = append(sopts, store.WithTiering(store.TierConfig{MemtableBytes: budget}))
		}
		db := store.NewShardedSightingDB(sopts...)
		if rerr := db.Recover(); rerr != nil {
			fatal(rerr)
		}
		pop := newSightings(recoverPop)
		for _, s := range pop {
			db.Put(s)
		}
		if tiered {
			if merr := db.MaintainTiers(); merr != nil {
				fatal(merr)
			}
		}
		if ferr := wal.Flush(); ferr != nil {
			fatal(ferr)
		}
		wal.Close()

		wal2, werr := store.OpenShardedWAL(dir, shards)
		if werr != nil {
			fatal(werr)
		}
		defer wal2.Close()
		sopts2 := []store.SightingDBOption{store.WithSightingWAL(wal2)}
		if tiered {
			sopts2 = append(sopts2, store.WithTiering(store.TierConfig{MemtableBytes: budget}))
		}
		db2 := store.NewShardedSightingDB(sopts2...)
		start := time.Now()
		if rerr := db2.Recover(); rerr != nil {
			fatal(rerr)
		}
		return time.Since(start), db2.Len()
	}
	fullDur, fullLen := recoverRun(false)
	tailDur, tailLen := recoverRun(true)
	fmt.Printf("%-44s %12s %12s\n", fmt.Sprintf("recovery (%d sightings)", recoverPop), "time", "recovered")
	fmt.Printf("%-44s %12v %12d\n", "full-WAL replay (all-RAM baseline)", fullDur, fullLen)
	fmt.Printf("%-44s %12v %12d\n", "manifest open + WAL-tail replay (tiered)", tailDur, tailLen)
	if tailDur > 0 {
		fmt.Printf("speedup: %.1fx\n", fullDur.Seconds()/tailDur.Seconds())
	}
}

// ---------------------------------------------------------------------------
// Table F: hot-standby leaf replication. Phase 1 measures what mirroring
// costs a fault-free deployment: the same tiered 2x2 hierarchy with and
// without standbys attached, synchronous updates only — the WAL tee rides
// the update path's WAL writer, so this is the honest steady-state
// overhead of streaming every committed batch to a peer (acceptance:
// <= 15% against the unreplicated run). Phase 2 measures the outage a
// client sees: kill a leaf, let the parent's health monitor promote the
// standby and rebind the child slot, and time from the kill to the first
// successful position query for an object homed on the dead leaf.
// Recorded runs live in BENCH_replication.json.

func tableRepl(quick bool) {
	fleet, rounds := 96, 25
	if quick {
		fleet, rounds = 24, 6
	}
	fmt.Printf("\nTable F: hot-standby leaf replication (%d objects x %d update rounds)\n\n", fleet, rounds)

	const (
		replShards  = 4
		healthEvery = 100 * time.Millisecond // parent probe cadence in phase 2
	)
	spec := hierarchy.Spec{
		RootArea: geo.R(0, 0, 1500, 1500),
		Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
	}
	rootArea := core.AreaFromRect(spec.RootArea)
	quadrant := func(i int) geo.Point {
		qx, qy := float64(i%2), float64((i/2)%2)
		return geo.Pt(100+qx*750+float64(i%30), 100+qy*750+float64((i/30)%30))
	}
	// The memtable budget is small enough that the update rounds flush
	// runs mid-measurement: steady state includes run shipping, not just
	// the WAL-tail stream.
	tierCfg := func() *store.TierConfig {
		return &store.TierConfig{MemtableBytes: 64 << 10, MaxRuns: 4}
	}
	leafStore := func(walDir, id string, o server.Options) (server.Options, error) {
		vw, err := store.OpenFileWAL(walDir + "/" + id + "-visitors.wal")
		if err != nil {
			return o, err
		}
		o.WAL = vw
		sw, err := store.OpenShardedWAL(walDir+"/"+id+"-sightings", replShards)
		if err != nil {
			vw.Close()
			return o, err
		}
		o.SightingWAL = sw
		o.Tiering = tierCfg()
		return o, nil
	}

	// deploy builds the tiered hierarchy, with hot standbys attached when
	// replicated, and returns a teardown closure.
	deploy := func(net *transport.Inproc, srvOpts server.Options, replicated, monitored bool) (*hierarchy.Deployment, map[msg.NodeID]*server.Server, func()) {
		walDir, err := os.MkdirTemp("", "lsbench-repl")
		if err != nil {
			fatal(err)
		}
		dep, err := hierarchy.DeployWith(net, spec, srvOpts, func(cfg store.ConfigRecord, o server.Options) (server.Options, error) {
			if cfg.IsLeaf() {
				if replicated {
					o.ReplPeer = cfg.ID + "~s"
				}
				return leafStore(walDir, cfg.ID, o)
			}
			if replicated && monitored {
				o.Replicas = make(map[string]string, len(cfg.Children))
				for _, ch := range cfg.Children {
					o.Replicas[ch.ID] = ch.ID + "~s"
				}
				o.ReplHealthInterval = healthEvery
			}
			return o, nil
		})
		if err != nil {
			fatal(err)
		}
		standbys := make(map[msg.NodeID]*server.Server)
		if replicated {
			for _, rec := range dep.Configs {
				if !rec.IsLeaf() {
					continue
				}
				sb := rec
				sb.ID = rec.ID + "~s"
				o := srvOpts
				o.ReplPeer = rec.ID
				o.ReplStandby = true
				o, err = leafStore(walDir, sb.ID, o)
				if err != nil {
					fatal(err)
				}
				s, serr := server.New(sb, rootArea, net, o)
				if serr != nil {
					fatal(serr)
				}
				standbys[msg.NodeID(rec.ID)] = s
			}
		}
		return dep, standbys, func() {
			for _, s := range standbys {
				s.Close()
			}
			dep.Close()
			os.RemoveAll(walDir)
		}
	}

	// Phase 1: fault-free steady-state overhead on the LAN model.
	runCfg := func(replicated bool) time.Duration {
		net := transport.NewInproc(transport.InprocOptions{
			Latency: func(_, _ msg.NodeID) time.Duration { return 200 * time.Microsecond },
		})
		defer net.Close()
		dep, _, teardown := deploy(net, server.Options{JanitorInterval: 50 * time.Millisecond}, replicated, false)
		defer teardown()

		ctx := context.Background()
		entry, _ := dep.LeafFor(geo.Pt(100, 100))
		cl, err := client.New(net, "bench-client", entry, client.Options{Timeout: 10 * time.Second})
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
		objs := make([]*client.TrackedObject, fleet)
		for i := range objs {
			obj, rerr := cl.Register(ctx, core.Sighting{
				OID: core.OID(fmt.Sprintf("f-%d", i)), T: time.Now(),
				Pos: quadrant(i), SensAcc: 10,
			}, 10, 100, 3)
			if rerr != nil {
				fatal(rerr)
			}
			objs[i] = obj
		}
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for i, obj := range objs {
				p := quadrant(i)
				p.X += float64(r%5) * 2
				if uerr := obj.Update(ctx, core.Sighting{
					OID: core.OID(fmt.Sprintf("f-%d", i)), T: time.Now(), Pos: p, SensAcc: 10,
				}); uerr != nil {
					fatal(uerr)
				}
			}
		}
		return time.Since(start)
	}
	minDur := func(a, b time.Duration) time.Duration {
		if a < b {
			return a
		}
		return b
	}
	base, repl := runCfg(false), runCfg(true)
	base, repl = minDur(base, runCfg(false)), minDur(repl, runCfg(true))
	fmt.Printf("%-30s %12s %14s\n", "config", "updates/s", "elapsed ms")
	report := func(label string, d time.Duration) {
		fmt.Printf("%-30s %12.0f %14.1f\n", label, float64(fleet*rounds)/d.Seconds(), d.Seconds()*1000)
	}
	report("unreplicated (tiered)", base)
	report("replicated (WAL tee + runs)", repl)
	overhead := (repl.Seconds() - base.Seconds()) / base.Seconds() * 100
	fmt.Printf("\nsteady-state overhead: %+.1f%% (acceptance: <= 15%%)\n", overhead)

	// Phase 2: failover. The root monitors every leaf pair; killing r.0
	// must promote r.0~s and rebind the child slot without operator
	// action. The clock runs from the kill to the first successful
	// position query for an object the dead leaf was agent of, issued
	// through a live entry leaf — it covers detection (3 failed probes),
	// promotion, rebinding and the query retry that finally lands.
	reg := metrics.NewRegistry()
	net := transport.NewInproc(transport.InprocOptions{
		Metrics:          reg,
		SweepInterval:    10 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  250 * time.Millisecond,
	})
	defer net.Close()
	dep, standbys, teardown := deploy(net,
		server.Options{
			Metrics:         reg,
			JanitorInterval: 50 * time.Millisecond,
			CallTimeout:     150 * time.Millisecond,
			QueryTimeout:    400 * time.Millisecond,
		},
		true, true)
	defer teardown()

	ctx := context.Background()
	cl, err := client.New(net, "failover-client", "r.1", client.Options{
		Timeout: 10 * time.Second,
		Retry:   transport.DefaultRetryPolicy(),
	})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	for i := 0; i < fleet; i++ {
		if _, rerr := cl.Register(ctx, core.Sighting{
			OID: core.OID(fmt.Sprintf("f-%d", i)), T: time.Now(),
			Pos: quadrant(i), SensAcc: 10,
		}, 10, 100, 3); rerr != nil {
			fatal(rerr)
		}
	}
	// Wait for the standby mirror of the victim's quarter to be complete,
	// so the failover serves every object, then pull the plug.
	victim := msg.NodeID("r.0")
	heir := standbys[victim]
	syncFrom := time.Now()
	for heir.SightingCount() < dep.Servers[victim].SightingCount() ||
		heir.VisitorCount() < dep.Servers[victim].VisitorCount() {
		if time.Since(syncFrom) > 30*time.Second {
			fatal(fmt.Errorf("standby of %s never caught up", victim))
		}
		time.Sleep(5 * time.Millisecond)
	}
	net.SetNodeDown(victim, true)
	killedAt := time.Now()
	for {
		qctx, cancel := context.WithTimeout(ctx, time.Second)
		ld, qerr := cl.PosQuery(qctx, "f-0")
		cancel()
		if qerr == nil && ld.Pos == quadrant(0) {
			break
		}
		if time.Since(killedAt) > 30*time.Second {
			fatal(fmt.Errorf("no successful query %v after killing %s", time.Since(killedAt), victim))
		}
		time.Sleep(5 * time.Millisecond)
	}
	toFirstQuery := time.Since(killedAt)
	fmt.Printf("\nfailover: %.0f ms from leaf kill to first successful position query\n", toFirstQuery.Seconds()*1000)
	fmt.Printf("(probe cadence %v, 3-failure threshold, %d failover(s), %d probe failure(s))\n",
		healthEvery, reg.Counter("repl_failovers").Value(), reg.Counter("repl_probe_failures").Value())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsbench:", err)
	os.Exit(1)
}
