// Command lsd runs one location server of a distributed deployment over
// UDP — the production topology of the paper's prototype (Fig. 8: one
// machine per server).
//
// A deployment is described by a topology file shared by all servers:
//
//	lsd -gen -topology ls.json -area 1500 -fanout 2 -port 7000
//
// generates a topology (root + 2×2 leaves, service area 1500 m × 1500 m,
// ports 7000…). Then each server is started with:
//
//	lsd -topology ls.json -id r
//	lsd -topology ls.json -id r.0 -wal /var/lib/lsd/r0.wal \
//	    -shards 8 -swal /var/lib/lsd/r0-sightings
//	...
//
// Flags -acc, -ttl and -caches tune the leaf behaviour; -shards partitions
// the leaf's sighting store, -autoshard lets the shard count adapt to
// observed lock contention at runtime (live resize between -autoshard-min
// and -autoshard-max), -swal gives the store durable per-shard logs that
// are replayed in parallel at startup (and re-cut under the new mapping
// when a resize moves the layout to its next epoch), and -fsync upgrades
// both WALs to machine-crash durability. -tier layers tiered (LSM)
// storage over -swal: the in-memory shards keep only the recent tail
// (bounded by -tier-memtable-bytes) while older versions live in
// immutable sorted runs beside the WAL segments, so a leaf can track far
// more objects than fit in RAM and a restart replays only the short WAL
// tail instead of the full history.
//
// -standby-of turns a process into the hot standby of a leaf: it adopts
// the primary's service area under its own -id (which must have an address
// in the topology's nodes map but holds no slot in the tree), mirrors the
// primary's sightings and forwarding records via WAL-tail streaming, and
// fetches the primary's immutable run files on flush and compaction (with
// -tier). The primary is started with -repl-peer naming the standby, and
// the pair's parent with -replicas primary=standby pairs: the parent
// probes each primary every -repl-health-interval and, after
// -repl-fail-threshold consecutive failures, promotes the standby under a
// higher fencing epoch and rebinds its child slot. A standby answers
// updates with a redirect until promoted; a recovered old primary is
// fenced by the epoch and demotes itself to standby.
//
// -batch-max ≥ 2 turns on outbound datagram batching: up to that many
// envelopes headed for the same peer ride one UDP datagram, flushed when
// the batch fills, would exceed the 65,507-byte datagram cap, or has
// waited -batch-linger (default 1ms) for company. A batch of one is the
// legacy wire frame byte-for-byte, so batching and non-batching servers
// interoperate freely; batch traffic shows up in the wire_batches_in/out
// and wire_envelopes_per_batch metrics.
//
// -breaker-threshold ≥ 1 arms per-peer circuit breakers on this server's
// outbound calls: after that many consecutive swept timeouts toward one
// peer the breaker opens and calls to it fail fast (no datagram, no
// in-flight slot) until -breaker-cooldown elapses, when a single probe
// call half-opens it; the probe's outcome closes or reopens the breaker.
// Breaker state is exported as peer_state.<this>-><peer> gauges (0 closed,
// 1 open, 2 half-open) next to the wire_breaker_open fail-fast counter,
// and coordinators translate open breakers into degraded partial query
// answers instead of waiting out timeouts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/metrics"
	"locsvc/internal/msg"
	"locsvc/internal/server"
	"locsvc/internal/store"
	"locsvc/internal/transport"
)

// Topology is the shared deployment description.
type Topology struct {
	RootArea [4]float64        `json:"rootArea"` // x0, y0, x1, y1 (meters)
	Levels   []hierarchy.Level `json:"levels"`
	// Nodes maps server ids to UDP addresses.
	Nodes map[string]string `json:"nodes"`
}

func main() {
	var (
		topoPath     = flag.String("topology", "ls.json", "topology file shared by all servers")
		id           = flag.String("id", "", "server id to run (e.g. r, r.0)")
		gen          = flag.Bool("gen", false, "generate a topology file and exit")
		area         = flag.Float64("area", 1500, "side of the square root service area in meters (with -gen)")
		fanout       = flag.Int("fanout", 2, "grid fan-out per level: each area splits fanout x fanout (with -gen)")
		depth        = flag.Int("depth", 1, "number of hierarchy levels below the root (with -gen)")
		host         = flag.String("host", "127.0.0.1", "host for generated addresses (with -gen)")
		port         = flag.Int("port", 7000, "first port for generated addresses (with -gen)")
		walPath      = flag.String("wal", "", "visitorDB WAL path (persistent forwarding paths)")
		swalDir      = flag.String("swal", "", "sightingDB WAL directory: one durable log segment per shard, replayed in parallel at startup (leaves only)")
		shards       = flag.Int("shards", 1, "sighting-store shards on a leaf (independently locked, keyed by object id); the starting count with -autoshard")
		autoshard    = flag.Bool("autoshard", false, "adapt the leaf's shard count to observed lock contention at runtime (live resize; with -swal the log follows through epoch switches)")
		autoshardMin = flag.Int("autoshard-min", 1, "lower shard-count bound for -autoshard")
		autoshardMax = flag.Int("autoshard-max", 64, "upper shard-count bound for -autoshard")
		tier         = flag.Bool("tier", false, "tiered (LSM) sighting storage: shards become memtables, older versions live in sorted runs beside the -swal segments, recovery replays only the WAL tail (leaves with -swal only; incompatible with -autoshard)")
		tierMemBytes = flag.Int64("tier-memtable-bytes", 64<<20, "total memtable budget across shards before runs are flushed to disk (with -tier)")
		tierMaxRuns  = flag.Int("tier-max-runs", 4, "per-shard run-file count beyond which the janitor compacts (with -tier)")
		tierBloom    = flag.Int("tier-bloom-bits", 10, "bloom-filter bits per key in each run file (with -tier)")
		fsync        = flag.Bool("fsync", false, "fsync every WAL append (machine-crash durability)")
		acc          = flag.Float64("acc", 10, "achievable accuracy of this leaf in meters")
		ttl          = flag.Duration("ttl", 5*time.Minute, "soft-state TTL for sighting records (0 disables)")
		caches       = flag.Bool("caches", true, "enable the Section 6.5 leaf caches")
		restore      = flag.Bool("restore", false, "request updates from persisted visitors at startup")
		batchMax     = flag.Int("batch-max", 1, "coalesce up to this many outbound envelopes per destination into one datagram (≥ 2 enables batching; 1 sends each envelope alone)")
		batchLinger  = flag.Duration("batch-linger", time.Millisecond, "how long a lone envelope waits for batch company before it is flushed (with -batch-max ≥ 2)")
		brkThreshold = flag.Int("breaker-threshold", 3, "consecutive call timeouts toward one peer that open its circuit breaker (0 disables breakers)")
		brkCooldown  = flag.Duration("breaker-cooldown", time.Second, "how long an open breaker refuses calls before one probe call may half-open it")
		standbyOf    = flag.String("standby-of", "", "run as the hot standby of this leaf: adopt its service area, mirror it via WAL-tail streaming and run shipping, serve after a parent-driven promotion (requires -swal; this server's -id must be in the topology's nodes but not its tree)")
		replPeer     = flag.String("repl-peer", "", "primary side: stream this leaf's WAL tail and run files to the named hot standby (requires -swal)")
		replicas     = flag.String("replicas", "", "parent side: comma-separated primary=standby leaf pairs to health-check, e.g. r.0=r.0s,r.1=r.1s; after -repl-fail-threshold failed probes the standby is promoted and the child slot rebound")
		replInterval = flag.Duration("repl-health-interval", 500*time.Millisecond, "probe cadence for -replicas pairs")
		replFails    = flag.Int("repl-fail-threshold", 3, "consecutive probe failures that trigger a failover (with -replicas)")
	)
	flag.Parse()

	if *gen {
		if err := generate(*topoPath, *area, *fanout, *depth, *host, *port); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *topoPath)
		return
	}
	if *id == "" {
		fatal(fmt.Errorf("-id is required (or use -gen)"))
	}

	topo, err := loadTopology(*topoPath)
	if err != nil {
		fatal(err)
	}
	spec := hierarchy.Spec{
		RootArea: geo.R(topo.RootArea[0], topo.RootArea[1], topo.RootArea[2], topo.RootArea[3]),
		Levels:   topo.Levels,
	}
	configs, err := hierarchy.Build(spec)
	if err != nil {
		fatal(err)
	}
	// A standby is not a slot in the tree: it runs the primary's config
	// (same service area, same parent) under its own id, and only the
	// nodes map needs to know its address.
	lookup := *id
	if *standbyOf != "" {
		lookup = *standbyOf
	}
	var cfg store.ConfigRecord
	found := false
	for _, c := range configs {
		if c.ID == lookup {
			cfg, found = c, true
			break
		}
	}
	if !found {
		fatal(fmt.Errorf("server %q not in topology (have %d servers)", lookup, len(configs)))
	}
	if *standbyOf != "" {
		if !cfg.IsLeaf() {
			fatal(fmt.Errorf("-standby-of %s: replication pairs are leaves, %s is an inner server", *standbyOf, *standbyOf))
		}
		cfg.ID = *id
	}
	bind, ok := topo.Nodes[*id]
	if !ok {
		fatal(fmt.Errorf("no address for %q in topology", *id))
	}

	// One registry shared by the server and its UDP network: the
	// transport's wire_bytes_in/out and decode-error counters ride along
	// in the server's DiagRes snapshot, so lsctl stats shows wire-level
	// traffic next to the protocol counters.
	reg := metrics.NewRegistry()
	network := transport.NewUDPWithOptions(transport.UDPOptions{
		Metrics:          reg,
		BatchMax:         *batchMax,
		BatchLinger:      *batchLinger,
		BreakerThreshold: *brkThreshold,
		BreakerCooldown:  *brkCooldown,
	})
	for nid, addr := range topo.Nodes {
		if nid == *id {
			continue
		}
		if err := network.AddRoute(msg.NodeID(nid), addr); err != nil {
			fatal(err)
		}
	}

	nshards, err := store.NormalizeShards(*shards)
	if err != nil {
		fatal(err)
	}
	opts := server.Options{
		Metrics:          reg,
		AchievableAcc:    *acc,
		SightingTTL:      *ttl,
		Shards:           nshards,
		EnableAreaCache:  *caches,
		EnableAgentCache: *caches,
		EnablePosCache:   *caches,
	}
	if *autoshard {
		opts.AutoShard = &store.AutoShardConfig{Min: *autoshardMin, Max: *autoshardMax}
	}
	var walOpts []store.FileWALOption
	if *fsync {
		walOpts = append(walOpts, store.WithSync())
	}
	if *walPath != "" {
		wal, werr := store.OpenFileWAL(*walPath, walOpts...)
		if werr != nil {
			fatal(werr)
		}
		opts.WAL = wal
	}
	if *swalDir != "" && cfg.IsLeaf() {
		swal, werr := store.OpenShardedWAL(*swalDir, nshards, walOpts...)
		if werr != nil {
			fatal(werr)
		}
		opts.SightingWAL = swal
	}
	if *tier && cfg.IsLeaf() {
		if opts.SightingWAL == nil {
			fatal(fmt.Errorf("-tier requires -swal (the run files live in the WAL directory)"))
		}
		opts.Tiering = &store.TierConfig{
			MemtableBytes:   *tierMemBytes,
			MaxRuns:         *tierMaxRuns,
			BloomBitsPerKey: *tierBloom,
		}
	}
	if *standbyOf != "" && *replPeer != "" {
		fatal(fmt.Errorf("-standby-of and -repl-peer are mutually exclusive (a server is one half of one pair)"))
	}
	if peer := *standbyOf + *replPeer; peer != "" {
		if opts.SightingWAL == nil {
			fatal(fmt.Errorf("replication requires -swal (the WAL tail is the replication stream)"))
		}
		opts.ReplPeer = peer
		opts.ReplStandby = *standbyOf != ""
	}
	if *replicas != "" {
		pairs := make(map[string]string)
		for _, pair := range strings.Split(*replicas, ",") {
			primary, standby, ok := strings.Cut(pair, "=")
			if !ok || primary == "" || standby == "" {
				fatal(fmt.Errorf("-replicas: %q is not primary=standby", pair))
			}
			pairs[primary] = standby
		}
		opts.Replicas = pairs
		opts.ReplHealthInterval = *replInterval
		opts.ReplFailThreshold = *replFails
	}

	// Attach on the configured address: server.New attaches via
	// Network.Attach, which binds an ephemeral port, so pre-bind the
	// route by wrapping Attach through AttachAddr.
	srv, err := server.New(cfg, core.AreaFromRect(spec.RootArea), boundNetwork{network, bind}, opts)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	if *restore && cfg.IsLeaf() {
		n := srv.RestoreVisitors()
		fmt.Printf("requested updates from %d persisted visitors\n", n)
	}

	role := "leaf"
	if !cfg.IsLeaf() {
		role = "inner"
	}
	if cfg.IsRoot() {
		role = "root"
	}
	if *standbyOf != "" {
		role = "standby of " + *standbyOf
	}
	fmt.Printf("lsd: server %s (%s) serving %v on %s\n", cfg.ID, role, cfg.SA.Bounds(), bind)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("lsd: shutting down")
}

// boundNetwork makes server.New bind its node on a fixed address.
type boundNetwork struct {
	udp  *transport.UDP
	bind string
}

// Attach implements transport.Network.
func (b boundNetwork) Attach(id msg.NodeID, h transport.Handler) (transport.Node, error) {
	return b.udp.AttachAddr(id, b.bind, h)
}

// Close implements transport.Network.
func (b boundNetwork) Close() error { return b.udp.Close() }

func generate(path string, area float64, fanout, depth int, host string, firstPort int) error {
	if fanout < 1 || depth < 0 {
		return fmt.Errorf("invalid fanout/depth")
	}
	var levels []hierarchy.Level
	for i := 0; i < depth; i++ {
		levels = append(levels, hierarchy.Level{Rows: fanout, Cols: fanout})
	}
	spec := hierarchy.Spec{RootArea: geo.R(0, 0, area, area), Levels: levels}
	configs, err := hierarchy.Build(spec)
	if err != nil {
		return err
	}
	topo := Topology{
		RootArea: [4]float64{0, 0, area, area},
		Levels:   levels,
		Nodes:    make(map[string]string, len(configs)),
	}
	for i, cfg := range configs {
		topo.Nodes[cfg.ID] = fmt.Sprintf("%s:%d", host, firstPort+i)
	}
	data, err := json.MarshalIndent(topo, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func loadTopology(path string) (Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Topology{}, fmt.Errorf("reading topology: %w", err)
	}
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return Topology{}, fmt.Errorf("parsing topology: %w", err)
	}
	return t, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsd:", err)
	os.Exit(1)
}
