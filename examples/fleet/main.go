// Fleet reproduces the fleet-management scenario of Section 3.2: trucks
// report positions with the distance-based update protocol while the
// dispatcher (a) locates a specific truck scheduled for inspection
// (position query), (b) lists all trucks in one part of the city (range
// query), and (c) finds the nearest free truck for a new load of goods
// (nearest-neighbor query with an accuracy threshold).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"locsvc"
)

type truck struct {
	obj  *locsvc.TrackedObject
	pos  locsvc.Point
	dest locsvc.Point
	free bool
}

func main() {
	svc, err := locsvc.NewLocal(locsvc.LocalConfig{
		Area:   locsvc.R(0, 0, 3000, 3000), // a 3 km × 3 km city
		Levels: []locsvc.Level{{Rows: 2, Cols: 2}, {Rows: 2, Cols: 2}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))

	depot, err := svc.NewClientAt("dispatch-center", locsvc.Pt(1500, 1500))
	if err != nil {
		log.Fatal(err)
	}
	defer depot.Close()

	// Register 20 trucks at random positions; every third one is busy.
	trucks := make(map[locsvc.OID]*truck)
	for i := 0; i < 20; i++ {
		p := locsvc.Pt(rng.Float64()*2900+50, rng.Float64()*2900+50)
		id := locsvc.OID(fmt.Sprintf("truck-%02d", i))
		obj, rerr := depot.Register(ctx, locsvc.Sighting{
			OID: id, T: time.Now(), Pos: p, SensAcc: 10,
		}, 25, 100, 22) // ~80 km/h max
		if rerr != nil {
			log.Fatal(rerr)
		}
		trucks[id] = &truck{
			obj:  obj,
			pos:  p,
			dest: locsvc.Pt(rng.Float64()*2900+50, rng.Float64()*2900+50),
			free: i%3 != 0,
		}
	}

	// Let the fleet drive for two simulated minutes; trucks only report
	// when they have moved farther than the offered accuracy
	// (MaybeUpdate implements the paper's distance-based protocol).
	updatesSent := 0
	for minute := 0; minute < 2; minute++ {
		for tick := 0; tick < 60; tick += 5 {
			for id, t := range trucks {
				t.pos = driveTowards(t.pos, t.dest, 15*5) // 15 m/s × 5 s
				sent, uerr := t.obj.MaybeUpdate(ctx, locsvc.Sighting{
					OID: id, T: time.Now(), Pos: t.pos, SensAcc: 10,
				})
				if uerr != nil {
					log.Fatal(uerr)
				}
				if sent {
					updatesSent++
				}
			}
		}
	}
	fmt.Printf("fleet drove 2 minutes; %d updates transmitted (distance-based protocol)\n", updatesSent)

	// (a) Truck 07 is scheduled for inspection at short notice: where is
	// it right now?
	ld, err := depot.PosQuery(ctx, "truck-07")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("truck-07 is at %v ± %.0f m (agent %s)\n", ld.Pos, ld.Acc, trucks["truck-07"].obj.Agent())

	// (b) All trucks in the north-east part of the city.
	northEast := locsvc.AreaFromRect(locsvc.R(1500, 1500, 3000, 3000))
	inNE, err := depot.RangeQuery(ctx, northEast, 100, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d truck(s) in the north-east quarter:\n", len(inNE))
	for _, e := range inNE {
		fmt.Printf("  %s at %v\n", e.OID, e.LD.Pos)
	}

	// (c) A load of goods waits at the harbor: find the nearest free
	// truck. nearQual = 2×reqAcc guarantees the set contains every truck
	// that could actually be nearest (Section 3.2).
	harbor := locsvc.Pt(200, 2800)
	res, err := depot.NeighborQuery(ctx, harbor, 100, 200)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range append([]locsvc.Entry{res.Nearest}, res.Near...) {
		if trucks[e.OID].free {
			fmt.Printf("nearest free truck to the harbor: %s at %v\n", e.OID, e.LD.Pos)
			return
		}
		fmt.Printf("  (%s is closer but busy)\n", e.OID)
	}
	fmt.Println("no free truck near the harbor")
}

// driveTowards moves p by dist toward dest, stopping there.
func driveTowards(p, dest locsvc.Point, dist float64) locsvc.Point {
	d := p.Dist(dest)
	if d <= dist {
		return dest
	}
	return p.Lerp(dest, dist/d)
}
