// Quickstart: deploy a small location-server hierarchy in-process, register
// a tracked object, move it, and run all three query types of the service
// model (position, range, nearest neighbor).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"locsvc"
)

func main() {
	// A 1.5 km × 1.5 km service area split into four leaf quarters — the
	// shape of the paper's testbed (Fig. 8).
	svc, err := locsvc.NewLocal(locsvc.LocalConfig{
		Area:   locsvc.R(0, 0, 1500, 1500),
		Levels: []locsvc.Level{{Rows: 2, Cols: 2}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Printf("deployed %d leaf servers\n", len(svc.Leaves()))

	ctx := context.Background()

	// A client near the south-west corner; its entry server is the leaf
	// responsible for that position.
	c, err := svc.NewClientAt("phone-1", locsvc.Pt(100, 100))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Register a tracked object: desired accuracy 10 m, acceptable up to
	// 50 m, max speed 14 m/s (~50 km/h).
	obj, err := c.Register(ctx, locsvc.Sighting{
		OID: "taxi-7", T: time.Now(), Pos: locsvc.Pt(120, 80), SensAcc: 5,
	}, 10, 50, 14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered taxi-7: agent=%s, offered accuracy %.0f m\n",
		obj.Agent(), obj.OfferedAcc())

	// Drive east; crossing x=750 hands the object over to the next leaf.
	for x := 200.0; x <= 900; x += 100 {
		if err := obj.Update(ctx, locsvc.Sighting{
			OID: "taxi-7", T: time.Now(), Pos: locsvc.Pt(x, 80), SensAcc: 5,
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after driving east: agent=%s (handover was transparent)\n", obj.Agent())

	// Position query from a different part of the city (a remote query —
	// it traverses the hierarchy).
	far, err := svc.NewClientAt("phone-2", locsvc.Pt(1400, 1400))
	if err != nil {
		log.Fatal(err)
	}
	defer far.Close()
	ld, err := far.PosQuery(ctx, "taxi-7")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("position query: taxi-7 at %v ± %.0f m\n", ld.Pos, ld.Acc)

	// Range query: everything within a 200 m square around the taxi.
	objs, err := c.RangeQuery(ctx, locsvc.AreaFromRect(locsvc.R(800, 0, 1000, 200)), 50, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range query: %d object(s) in the block\n", len(objs))

	// Nearest-neighbor query from the city center.
	res, err := c.NeighborQuery(ctx, locsvc.Pt(750, 750), 50, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nearest object to the center: %s at %v (guaranteed ≥ %.0f m away)\n",
		res.Nearest.OID, res.Nearest.LD.Pos, res.GuaranteedMinDist)
}
