// Cityguide reproduces the motivating scenario of the paper's introduction:
// a public-transport information service wants to announce a bus delay to
// all users waiting at the next station (a range query with an event
// subscription), and a user then looks for the nearest available taxi
// (a nearest-neighbor query).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"locsvc"
	"locsvc/internal/msg"
)

const (
	station  = "central-station"
	stationX = 760.0
	stationY = 740.0
)

func main() {
	svc, err := locsvc.NewLocal(locsvc.LocalConfig{
		Area:   locsvc.R(0, 0, 1500, 1500),
		Levels: []locsvc.Level{{Rows: 2, Cols: 2}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()

	// The transport operator's client, stationed near the station.
	operator, err := svc.NewClientAt("transport-operator", locsvc.Pt(stationX, stationY))
	if err != nil {
		log.Fatal(err)
	}
	defer operator.Close()

	// The station forecourt straddles the intersection of all four leaf
	// service areas — a worst case for distributed range queries.
	forecourt := locsvc.AreaFromRect(locsvc.R(stationX-60, stationY-60, stationX+60, stationY+60))

	// The operator watches for a crowd forming at the station.
	crowd := make(chan msg.EventNotify, 4)
	if err := operator.SubscribeCountAbove("crowd-at-"+station, forecourt, 50, 3,
		func(n msg.EventNotify) { crowd <- n }); err != nil {
		log.Fatal(err)
	}

	// Users and taxis appear around the city.
	users := map[string]locsvc.Point{
		"user-anna": {X: stationX - 20, Y: stationY + 10}, // waiting at the station
		"user-ben":  {X: stationX + 30, Y: stationY - 15}, // waiting at the station
		"user-cruz": {X: stationX + 5, Y: stationY + 40},  // waiting at the station
		"user-dee":  {X: 200, Y: 1200},                    // elsewhere in town
	}
	taxis := map[string]locsvc.Point{
		"taxi-1": {X: 500, Y: 500},
		"taxi-2": {X: 850, Y: 700}, // closest to the station
		"taxi-3": {X: 1400, Y: 200},
	}
	registerAll := func(objs map[string]locsvc.Point, speed float64) {
		for id, p := range objs {
			c, cerr := svc.NewClientAt("node-"+id, p)
			if cerr != nil {
				log.Fatal(cerr)
			}
			defer c.Close()
			if _, rerr := c.Register(ctx, locsvc.Sighting{
				OID: locsvc.OID(id), T: time.Now(), Pos: p, SensAcc: 10,
			}, 15, 100, speed); rerr != nil {
				log.Fatal(rerr)
			}
		}
	}
	registerAll(users, 2)  // pedestrians
	registerAll(taxis, 14) // vehicles

	// The crowd predicate fires asynchronously once three users are on
	// the forecourt.
	select {
	case n := <-crowd:
		fmt.Printf("event: %d people waiting at %s\n", n.Total, station)
	case <-time.After(5 * time.Second):
		log.Fatal("crowd event never fired")
	}

	// The bus is delayed: find everyone at the station to notify them
	// (the paper's range-query use case).
	waiting, err := operator.RangeQuery(ctx, forecourt, 100, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bus 42 delayed — announcing to %d user(s):\n", len(waiting))
	for _, e := range waiting {
		fmt.Printf("  -> %s (at %v ± %.0f m)\n", e.OID, e.LD.Pos, e.LD.Acc)
	}

	// Anna gives up on the bus and calls the nearest taxi (the paper's
	// nearest-neighbor use case). nearQual=2×reqAcc also returns every
	// taxi that could actually be closer.
	annaPhone, err := svc.NewClientAt("anna-phone", locsvc.Pt(stationX, stationY))
	if err != nil {
		log.Fatal(err)
	}
	defer annaPhone.Close()
	res, err := annaPhone.NeighborQuery(ctx, locsvc.Pt(stationX, stationY), 100, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nearest object to the station: %s at %v\n", res.Nearest.OID, res.Nearest.LD.Pos)
	fmt.Printf("  (guaranteed no object closer than %.0f m)\n", res.GuaranteedMinDist)

	// The LS tracks objects of every kind; the application filters for
	// taxis among the nearest and its qualified alternatives.
	candidates := append([]locsvc.Entry{res.Nearest}, res.Near...)
	for _, e := range candidates {
		if len(e.OID) >= 5 && e.OID[:5] == "taxi-" {
			fmt.Printf("anna's taxi: %s at %v\n", e.OID, e.LD.Pos)
			return
		}
	}
	fmt.Println("no taxi nearby — anna waits for the bus after all")
}
