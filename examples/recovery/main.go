// Recovery demonstrates the crash-recovery design of Section 5: the
// visitorDB lives on persistent storage (here a write-ahead log) so that
// forwarding paths survive a server crash, while the main-memory sightingDB
// and its indexes are rebuilt from position updates re-requested from the
// persisted visitors after restart.
//
// This example wires servers by hand (instead of using the locsvc facade)
// because it needs to crash and restart an individual leaf.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/server"
	"locsvc/internal/store"
	"locsvc/internal/transport"
)

func main() {
	dir, err := os.MkdirTemp("", "locsvc-recovery")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "r0-visitors.wal")

	net := transport.NewInproc(transport.InprocOptions{})
	defer net.Close()

	spec := hierarchy.Spec{
		RootArea: geo.R(0, 0, 1000, 1000),
		Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
	}
	configs, err := hierarchy.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	rootArea := core.AreaFromRect(spec.RootArea)

	// Start the tree; leaf r.0 gets a WAL-backed visitorDB.
	servers := map[string]*server.Server{}
	startServer := func(cfg store.ConfigRecord, withWAL bool) *server.Server {
		opts := server.Options{}
		if withWAL {
			wal, werr := store.OpenFileWAL(walPath)
			if werr != nil {
				log.Fatal(werr)
			}
			opts.WAL = wal
		}
		srv, serr := server.New(cfg, rootArea, net, opts)
		if serr != nil {
			log.Fatal(serr)
		}
		servers[cfg.ID] = srv
		return srv
	}
	var leafCfg store.ConfigRecord
	for _, cfg := range configs {
		if cfg.ID == "r.0" {
			leafCfg = cfg
			startServer(cfg, true)
		} else {
			startServer(cfg, false)
		}
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	// A mobile device registers itself and answers recovery requests by
	// re-sending its current position — the paper's restore path.
	ctx := context.Background()
	var obj *client.TrackedObject
	currentPos := geo.Pt(100, 100)
	c, err := client.New(net, "device-1", "r.0", client.Options{
		OnRequestUpdate: func(oid core.OID) {
			fmt.Printf("device: server requested a fresh update for %s\n", oid)
			if obj != nil {
				if uerr := obj.Update(context.Background(), core.Sighting{
					OID: oid, T: time.Now(), Pos: currentPos, SensAcc: 5,
				}); uerr != nil {
					log.Printf("device: re-update failed: %v", uerr)
				}
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	obj, err = c.Register(ctx, core.Sighting{OID: "badge-42", T: time.Now(), Pos: currentPos, SensAcc: 5}, 10, 50, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered badge-42 at %v (agent %s)\n", currentPos, obj.Agent())

	// Crash the leaf: its process dies; the WAL file survives on disk.
	fmt.Println("crashing leaf server r.0 ...")
	if err := servers["r.0"].Close(); err != nil {
		log.Fatal(err)
	}

	// Restart it from the same WAL.
	fmt.Println("restarting r.0 from its write-ahead log ...")
	restarted := startServer(leafCfg, true)
	fmt.Printf("after restart: %d visitor record(s) restored, %d sighting(s) in memory\n",
		restarted.VisitorCount(), restarted.SightingCount())

	// The forwarding path survived, but the position is gone — ask the
	// persisted visitors for fresh updates.
	n := restarted.RestoreVisitors()
	fmt.Printf("server: requested updates from %d visitor(s)\n", n)

	// Wait for the sightingDB to be rebuilt, then query.
	deadline := time.Now().Add(5 * time.Second)
	for restarted.SightingCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	ld, err := c.PosQuery(ctx, "badge-42")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("position query after recovery: badge-42 at %v ± %.0f m\n", ld.Pos, ld.Acc)
}
