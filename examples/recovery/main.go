// Recovery demonstrates the crash-recovery design of Section 5, upgraded
// with durable sighting state:
//
//   - the visitorDB lives on persistent storage (a write-ahead log), so
//     forwarding paths survive a server crash;
//   - the sightingDB — in the paper purely main-memory, rebuilt by asking
//     every persisted visitor for a fresh update — here also keeps one
//     durable log segment per shard (store.ShardedWAL). After a restart the
//     shards are replayed in parallel and each shard's spatial index is
//     bulk-loaded, so queries are answerable immediately, before any
//     visitor re-reports.
//
// This example wires servers by hand (instead of using the locsvc facade)
// because it needs to crash and restart an individual leaf.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/server"
	"locsvc/internal/store"
	"locsvc/internal/transport"
)

const sightingShards = 4

func main() {
	dir, err := os.MkdirTemp("", "locsvc-recovery")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "r0-visitors.wal")
	swalDir := filepath.Join(dir, "r0-sightings")

	net := transport.NewInproc(transport.InprocOptions{})
	defer net.Close()

	spec := hierarchy.Spec{
		RootArea: geo.R(0, 0, 1000, 1000),
		Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
	}
	configs, err := hierarchy.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	rootArea := core.AreaFromRect(spec.RootArea)

	// Start the tree; leaf r.0 gets a WAL-backed visitorDB and a sharded,
	// WAL-backed sightingDB.
	servers := map[string]*server.Server{}
	startServer := func(cfg store.ConfigRecord, durable bool) *server.Server {
		opts := server.Options{}
		if durable {
			wal, werr := store.OpenFileWAL(walPath)
			if werr != nil {
				log.Fatal(werr)
			}
			opts.WAL = wal
			swal, werr := store.OpenShardedWAL(swalDir, sightingShards)
			if werr != nil {
				log.Fatal(werr)
			}
			opts.SightingWAL = swal
		}
		srv, serr := server.New(cfg, rootArea, net, opts)
		if serr != nil {
			log.Fatal(serr)
		}
		servers[cfg.ID] = srv
		return srv
	}
	var leafCfg store.ConfigRecord
	for _, cfg := range configs {
		if cfg.ID == "r.0" {
			leafCfg = cfg
			startServer(cfg, true)
		} else {
			startServer(cfg, false)
		}
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	// A mobile device per object answers recovery requests by re-sending
	// its current position — the paper's restore path, still available on
	// top of the durable sightingDB.
	ctx := context.Background()
	var (
		mu        sync.Mutex
		objs      = map[core.OID]*client.TrackedObject{}
		positions = map[core.OID]geo.Point{}
		reUpdates atomic.Int64
	)
	c, err := client.New(net, "device-1", "r.0", client.Options{
		OnRequestUpdate: func(oid core.OID) {
			fmt.Printf("device: server requested a fresh update for %s\n", oid)
			mu.Lock()
			obj, pos := objs[oid], positions[oid]
			mu.Unlock()
			if obj == nil {
				return
			}
			if uerr := obj.Update(context.Background(), core.Sighting{
				OID: oid, T: time.Now(), Pos: pos, SensAcc: 5,
			}); uerr != nil {
				log.Printf("device: re-update failed: %v", uerr)
				return
			}
			reUpdates.Add(1)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	register := func(oid core.OID, pos geo.Point) *client.TrackedObject {
		obj, rerr := c.Register(ctx, core.Sighting{OID: oid, T: time.Now(), Pos: pos, SensAcc: 5}, 10, 50, 2)
		if rerr != nil {
			log.Fatal(rerr)
		}
		mu.Lock()
		objs[oid] = obj
		positions[oid] = pos
		mu.Unlock()
		return obj
	}

	obj := register("badge-42", geo.Pt(100, 100))
	fmt.Printf("registered badge-42 at %v (agent %s)\n", geo.Pt(100, 100), obj.Agent())

	// A fleet of additional objects fills the sightingDB; their updates
	// flow through the batched pipeline and land in the per-shard logs.
	for i := 0; i < 8; i++ {
		oid := core.OID(fmt.Sprintf("cart-%d", i))
		fleet := register(oid, geo.Pt(50+float64(i)*40, 200))
		pos := geo.Pt(50+float64(i)*40, 210)
		if uerr := fleet.Update(ctx, core.Sighting{OID: oid, T: time.Now(), Pos: pos, SensAcc: 5}); uerr != nil {
			log.Fatal(uerr)
		}
		mu.Lock()
		positions[oid] = pos
		mu.Unlock()
	}
	fmt.Printf("before crash: %d sightings on r.0\n", servers["r.0"].SightingCount())

	// Crash the leaf: its process dies; both WALs survive on disk.
	fmt.Println("crashing leaf server r.0 ...")
	if err := servers["r.0"].Close(); err != nil {
		log.Fatal(err)
	}

	// Restart it from the same logs. The sighting shards are replayed in
	// parallel and bulk-loaded before the server attaches to the network.
	fmt.Println("restarting r.0 from its write-ahead logs ...")
	restarted := startServer(leafCfg, true)
	fmt.Printf("after restart: %d visitor record(s) and %d sighting(s) restored\n",
		restarted.VisitorCount(), restarted.SightingCount())

	// Positions are queryable immediately — no waiting for visitors to
	// re-report, the pre-crash sightingDB is simply back.
	ld, err := c.PosQuery(ctx, "badge-42")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("position query straight after recovery: badge-42 at %v ± %.0f m\n", ld.Pos, ld.Acc)
	ld, err = c.PosQuery(ctx, "cart-3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("position query straight after recovery: cart-3 at %v ± %.0f m\n", ld.Pos, ld.Acc)

	// The paper's restore path still works on top: ask persisted visitors
	// for fresh updates to re-tighten accuracy after the outage.
	n := restarted.RestoreVisitors()
	fmt.Printf("server: additionally requested fresh updates from %d visitor(s)\n", n)
	deadline := time.Now().Add(3 * time.Second)
	for int(reUpdates.Load()) < n && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("devices re-reported %d position(s)\n", reUpdates.Load())
	fmt.Println("recovery complete: sightingDB survived the crash, forwarding paths intact")
}
