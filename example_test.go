package locsvc_test

import (
	"context"
	"fmt"
	"time"

	"locsvc"
)

// Example shows the complete lifecycle: deploy a hierarchy, register a
// tracked object, update its position across a service-area boundary
// (a transparent handover) and run the three query types.
func Example() {
	svc, err := locsvc.NewLocal(locsvc.LocalConfig{
		Area:   locsvc.R(0, 0, 1500, 1500),
		Levels: []locsvc.Level{{Rows: 2, Cols: 2}},
	})
	if err != nil {
		panic(err)
	}
	defer svc.Close()

	ctx := context.Background()
	c, err := svc.NewClientAt("phone", locsvc.Pt(100, 100))
	if err != nil {
		panic(err)
	}
	defer c.Close()

	obj, err := c.Register(ctx, locsvc.Sighting{
		OID: "taxi-7", T: time.Now(), Pos: locsvc.Pt(100, 100), SensAcc: 5,
	}, 10, 50, 14)
	if err != nil {
		panic(err)
	}
	_ = obj.Update(ctx, locsvc.Sighting{
		OID: "taxi-7", T: time.Now(), Pos: locsvc.Pt(900, 100), SensAcc: 5,
	})

	ld, _ := c.PosQuery(ctx, "taxi-7")
	fmt.Printf("taxi-7 at %v (agent %s)\n", ld.Pos, obj.Agent())

	objs, _ := c.RangeQuery(ctx, locsvc.AreaFromRect(locsvc.R(800, 0, 1000, 200)), 50, 0.5)
	fmt.Printf("%d object(s) in the block\n", len(objs))

	res, _ := c.NeighborQuery(ctx, locsvc.Pt(750, 750), 50, 0)
	fmt.Printf("nearest to center: %s\n", res.Nearest.OID)

	// Output:
	// taxi-7 at (900.00, 100.00) (agent r.1)
	// 1 object(s) in the block
	// nearest to center: taxi-7
}
