module locsvc

go 1.21
