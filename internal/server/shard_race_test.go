package server_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
	"locsvc/internal/server"
)

// mod is a float remainder for spreading seed positions over a quadrant.
func mod(v, m float64) float64 {
	for v >= m {
		v -= m
	}
	return v
}

// TestShardedStoreConcurrency hammers leaves configured with a sharded
// sighting store: per-leaf in-area updates (the batched pipeline's hot
// path) race against position, range and nearest-neighbor queries from
// every quadrant. Its primary value is running clean under `go test -race`;
// it also checks that no update is lost and every query type keeps
// answering.
func TestShardedStoreConcurrency(t *testing.T) {
	updatesPerObject := 30
	queriesPerWorker := 30
	if testing.Short() {
		updatesPerObject, queriesPerWorker = 6, 8
	}
	ls := newTestLS(t, quadSpec(), server.Options{
		AchievableAcc: 10,
		Shards:        8,
	})

	// 16 objects per quadrant, random-walked inside their quadrant so
	// every update hits the pipeline's in-area path (handover races are
	// TestSystemStress's job).
	const perQuad = 16
	quads := []geo.Rect{
		geo.R(1, 1, 749, 749), geo.R(751, 1, 1499, 749),
		geo.R(1, 751, 749, 1499), geo.R(751, 751, 1499, 1499),
	}
	type tracked struct {
		obj  *client.TrackedObject
		quad geo.Rect
		pos  geo.Point // owned by the object's single mover goroutine
	}
	var objs []*tracked
	for q, r := range quads {
		owner := ls.newClientAt(t, fmt.Sprintf("owner-%d", q), r.Center(), client.Options{Timeout: 10 * time.Second})
		for i := 0; i < perQuad; i++ {
			p := geo.Pt(r.Min.X+mod(float64(i*40), r.Width()-2)+1, r.Min.Y+mod(float64(i*25), r.Height()-2)+1)
			obj, err := owner.Register(ctx(t), sightingAt(fmt.Sprintf("q%d-o%d", q, i), p), 10, 50, 30)
			if err != nil {
				t.Fatal(err)
			}
			objs = append(objs, &tracked{obj: obj, quad: r, pos: p})
		}
	}

	var wg sync.WaitGroup
	var updateErrs, queryErrs, nnMisses atomic.Int64

	// Movers: one goroutine per object, so each object's final position
	// is deterministic from its own update sequence.
	for _, tr := range objs {
		wg.Add(1)
		go func(tr *tracked) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(len(tr.obj.OID()))))
			for i := 0; i < updatesPerObject; i++ {
				p := tr.pos
				p.X += (rng.Float64()*2 - 1) * 40
				p.Y += (rng.Float64()*2 - 1) * 40
				p = tr.quad.ClampPoint(p)
				err := tr.obj.Update(context.Background(), core.Sighting{
					OID: tr.obj.OID(), T: time.Now(), Pos: p, SensAcc: 5,
				})
				if err != nil {
					updateErrs.Add(1)
				} else {
					tr.pos = p
				}
			}
		}(tr)
	}

	// Queriers: all three query types from every quadrant while the
	// movers run.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			entry, _ := ls.dep.LeafFor(quads[w%4].Center())
			cl, err := client.New(ls.net, msg.NodeID(fmt.Sprintf("shard-q%d", w)), entry, client.Options{Timeout: 10 * time.Second})
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			for i := 0; i < queriesPerWorker; i++ {
				switch i % 3 {
				case 0:
					oid := core.OID(fmt.Sprintf("q%d-o%d", rng.Intn(4), rng.Intn(perQuad)))
					if _, err := cl.PosQuery(context.Background(), oid); err != nil && !errors.Is(err, core.ErrNotFound) {
						t.Errorf("pos query: %v", err)
					}
				case 1:
					x, y := rng.Float64()*1300, rng.Float64()*1300
					if _, err := cl.RangeQueryRect(context.Background(), geo.R(x, y, x+200, y+200), 50, 0.5); err != nil {
						queryErrs.Add(1)
						t.Logf("range query: %v", err)
					}
				case 2:
					p := geo.Pt(rng.Float64()*1400, rng.Float64()*1400)
					if _, err := cl.NeighborQuery(context.Background(), p, 100, 50); err != nil {
						if errors.Is(err, core.ErrNotFound) {
							// Transient: the nearest candidate can move
							// between the ring and collection phases
							// while movers run (present with the
							// single-lock store too).
							nnMisses.Add(1)
						} else {
							queryErrs.Add(1)
							t.Logf("neighbor query: %v", err)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if n := updateErrs.Load(); n > 0 {
		t.Errorf("%d update errors", n)
	}
	if n := queryErrs.Load(); n > 0 {
		t.Errorf("%d range/NN query errors", n)
	}
	if n := nnMisses.Load(); n > 10 {
		t.Errorf("too many transient NN misses: %d", n)
	}

	// No lost updates: every object is queryable at its mover's last
	// accepted position.
	final := ls.newClientAt(t, "shard-final", geo.Pt(750, 750), client.Options{Timeout: 10 * time.Second})
	for _, tr := range objs {
		ld, err := final.PosQuery(ctx(t), tr.obj.OID())
		if err != nil {
			t.Errorf("final query %s: %v", tr.obj.OID(), err)
			continue
		}
		if ld.Pos != tr.pos {
			t.Errorf("object %s at %v, want %v", tr.obj.OID(), ld.Pos, tr.pos)
		}
	}
}

// TestShardedOptionMatchesSingleLock runs the same small scenario against a
// 1-shard and an 8-shard deployment and expects identical query answers —
// the sharded store must not change service semantics.
func TestShardedOptionMatchesSingleLock(t *testing.T) {
	results := map[int][]core.Entry{}
	for _, shards := range []int{1, 8} {
		ls := newTestLS(t, quadSpec(), server.Options{AchievableAcc: 10, Shards: shards})
		owner := ls.newClientAt(t, fmt.Sprintf("own-%d", shards), geo.Pt(10, 10), client.Options{Timeout: 10 * time.Second})
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 40; i++ {
			p := geo.Pt(rng.Float64()*1400+10, rng.Float64()*1400+10)
			if _, err := owner.Register(ctx(t), sightingAt(fmt.Sprintf("m%d", i), p), 10, 50, 30); err != nil {
				t.Fatal(err)
			}
		}
		got, err := owner.RangeQueryRect(ctx(t), geo.R(200, 200, 1200, 1200), 50, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		results[shards] = got
	}
	if len(results[1]) != len(results[8]) {
		t.Fatalf("1-shard range query found %d objects, 8-shard %d", len(results[1]), len(results[8]))
	}
	want := map[core.OID]geo.Point{}
	for _, e := range results[1] {
		want[e.OID] = e.LD.Pos
	}
	for _, e := range results[8] {
		if p, ok := want[e.OID]; !ok || p != e.LD.Pos {
			t.Errorf("8-shard result %s at %v not in 1-shard result", e.OID, e.LD.Pos)
		}
	}
}
