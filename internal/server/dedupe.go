package server

import (
	"sync"
	"time"

	"locsvc/internal/msg"
)

// Retry deduplication. Transports retry idempotent calls on timeout, so a
// leaf can receive the same UpdateReq or RegisterReq twice when only the
// reply was lost. Requests stamped with a per-sender Seq are applied
// exactly once: the first application remembers its reply here, and a
// duplicate re-sends the remembered reply without touching the stores —
// critical after a handover, where re-applying the update would fail with
// not_found against the departed object.
//
// The window is bounded two ways: entries expire after a time window
// (retries arrive within a retry budget, seconds at most) and the table is
// capped FIFO (per-sender Seqs are monotonic, so insertion order is a fine
// eviction order). A leaf restart loses the table with the process — which
// is exactly right: the first post-restart update must be applied, not
// answered from a stale remembered reply.

// dedupeKey identifies one retryable request: the sending node and its
// sequence number (one monotonic counter per sender across request types).
type dedupeKey struct {
	sender msg.NodeID
	seq    uint64
}

// dedupeEntry is one remembered outcome.
type dedupeEntry struct {
	reply msg.Message
	at    time.Time
}

// Dedupe window defaults: long enough for every attempt of a default
// retry budget, small enough that the table stays kilobytes per client.
const (
	defaultDedupeWindow = 30 * time.Second
	defaultDedupeCap    = 4096
)

// dedupe is the bounded (sender, seq) → remembered-reply table.
type dedupe struct {
	window time.Duration
	cap    int
	clock  func() time.Time

	mu      sync.Mutex
	entries map[dedupeKey]*dedupeEntry
	order   []dedupeKey // insertion order for window + cap eviction
}

func newDedupe(window time.Duration, capacity int, clock func() time.Time) *dedupe {
	if window <= 0 {
		window = defaultDedupeWindow
	}
	if capacity <= 0 {
		capacity = defaultDedupeCap
	}
	if clock == nil {
		clock = time.Now
	}
	return &dedupe{
		window:  window,
		cap:     capacity,
		clock:   clock,
		entries: make(map[dedupeKey]*dedupeEntry),
	}
}

// lookup returns the remembered reply for (sender, seq), if any. Seq 0 is
// never remembered (unstamped senders opted out). Entries older than the
// window are misses — and evicted lazily along the way.
func (d *dedupe) lookup(sender msg.NodeID, seq uint64) (msg.Message, bool) {
	if seq == 0 {
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.evict(d.clock())
	e, ok := d.entries[dedupeKey{sender, seq}]
	if !ok {
		return nil, false
	}
	return e.reply, true
}

// remember stores the reply for (sender, seq), evicting expired and
// over-cap entries. Seq 0 is ignored.
func (d *dedupe) remember(sender msg.NodeID, seq uint64, reply msg.Message) {
	if seq == 0 {
		return
	}
	now := d.clock()
	k := dedupeKey{sender, seq}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.evict(now)
	if _, ok := d.entries[k]; ok {
		return // first application wins; a racing duplicate changes nothing
	}
	d.entries[k] = &dedupeEntry{reply: reply, at: now}
	d.order = append(d.order, k)
	for len(d.entries) > d.cap {
		d.dropOldest()
	}
}

// evict drops entries older than the window; called with d.mu held. The
// order slice is insertion-ordered, so eviction stops at the first live
// entry.
func (d *dedupe) evict(now time.Time) {
	cutoff := now.Add(-d.window)
	for len(d.order) > 0 {
		k := d.order[0]
		e, ok := d.entries[k]
		if ok && e.at.After(cutoff) {
			return
		}
		d.dropOldest()
	}
}

// dropOldest removes the head of the order queue; called with d.mu held.
func (d *dedupe) dropOldest() {
	k := d.order[0]
	d.order = d.order[1:]
	delete(d.entries, k)
}

// len returns the live entry count (tests).
func (d *dedupe) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}
