package server

import (
	"context"
	"math"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
)

// handleNeighborQuery resolves a nearest-neighbor query (semantics of
// Section 3.2) at the entry server with an expanding-ring search built on
// the distributed range-query machinery:
//
//  1. Query a square window around p, doubling its radius until a candidate
//     whose recorded position lies within the window radius is found. Any
//     object outside the window is farther than the radius, so the nearest
//     candidate found this way is the global nearest.
//  2. Issue one final collection query of radius dist(nearest) + nearQual
//     to gather the nearObjSet, then apply core.SelectNearest for the exact
//     selection rule (accuracy filter, deterministic tie-break, guaranteed
//     minimum distance).
//
// The paper defines the query's semantics but not its distributed
// resolution; this concretisation is documented in DESIGN.md.
func (s *Server) handleNeighborQuery(ctx context.Context, req msg.NeighborQueryReq) (msg.Message, error) {
	if !s.cfg.IsLeaf() {
		return nil, core.ErrBadRequest
	}
	if req.ReqAcc < 0 || req.NearQual < 0 {
		return nil, core.ErrBadRequest
	}
	s.met.Counter("neighbor_query_seen").Inc()

	// Local fast path: stream this leaf's own sightings in increasing
	// distance order off the store's nearest-neighbor cursor machinery.
	// When the whole answer is provably local, the expanding-ring search
	// below — one window search per doubling, possibly fanning out over
	// the network — collapses into one cursor walk plus one collection
	// search.
	if res, ok := s.neighborQueryLocal(req); ok {
		s.met.Counter("neighbor_query_local_fast").Inc()
		return res, nil
	}

	rootBounds := s.rootArea.Bounds()
	maxRadius := rootBounds.Width() + rootBounds.Height() // covers everything from any p

	radius := s.opts.NNInitialRadius
	if radius <= 0 {
		sa := s.cfg.SA.Bounds()
		radius = (sa.Width() + sa.Height()) / 8
		if radius <= 0 {
			radius = maxRadius / 64
		}
	}

	// The overlap threshold only needs to be positive: any object whose
	// position lies inside the window has a positive overlap degree.
	const anyOverlap = 1e-9

	// Every ring is its own distributed range collection; a degraded ring
	// taints the whole answer, so partiality and the unreachable set are
	// unioned across all of them. A partial "found" answer means the true
	// nearest could hide behind a dark leaf.
	partial := false
	var unreachable []msg.NodeID
	finish := func(res msg.NeighborQueryRes) msg.NeighborQueryRes {
		res.Partial = partial
		res.Unreachable = unreachable
		if partial {
			s.met.Counter("wire_degraded_queries").Inc()
		}
		return res
	}

	var nearestDist float64
	found := false
	for {
		window := core.AreaFromRect(geo.RectAround(req.P, radius))
		out, err := s.collectRange(ctx, window, req.ReqAcc, anyOverlap)
		if err != nil {
			return nil, err
		}
		partial = partial || out.partial
		unreachable = mergeUnreachable(unreachable, out.unreachable...)
		for _, e := range out.objs {
			d := e.LD.Pos.Dist(req.P)
			if d <= radius && (!found || d < nearestDist) {
				nearestDist = d
				found = true
			}
		}
		if found {
			break
		}
		if radius >= maxRadius {
			// The whole service area has been searched.
			return finish(msg.NeighborQueryRes{Found: false}), nil
		}
		radius = math.Min(radius*2, maxRadius)
		s.met.Counter("neighbor_query_expand").Inc()
	}

	// Collection ring: every object that can appear in nearObjSet has a
	// recorded position within nearestDist + nearQual of p. The +1 m
	// margin keeps the window's area positive when the nearest candidate
	// sits exactly at p with nearQual 0 — a zero-area window would give
	// every candidate overlap degree 0 and filter the whole answer away
	// (SelectNearest applies the exact rule to the superset).
	collectR := nearestDist + req.NearQual + 1
	window := core.AreaFromRect(geo.RectAround(req.P, collectR))
	out, err := s.collectRange(ctx, window, req.ReqAcc, anyOverlap)
	if err != nil {
		return nil, err
	}
	partial = partial || out.partial
	unreachable = mergeUnreachable(unreachable, out.unreachable...)
	res := core.SelectNearest(out.objs, req.P, req.ReqAcc, req.NearQual)
	if !res.Found {
		return finish(msg.NeighborQueryRes{Found: false}), nil
	}
	return finish(msg.NeighborQueryRes{
		Found:             true,
		Nearest:           res.Nearest,
		Near:              res.Near,
		GuaranteedMinDist: res.GuaranteedMinDist,
	}), nil
}

// neighborQueryLocal resolves a nearest-neighbor query without touching the
// network when the answer is provably local. It streams this leaf's
// sightings nearest-first until one qualifies under the same predicate the
// distributed window search applies. With the nearest qualifying candidate
// at distance d, every object that can influence the answer has a recorded
// position within d + nearQual of p; if that collection disc — enlarged by
// reqAcc exactly like a forwarded window would be — lies inside this leaf's
// service area, then any such object is agented here (objects are stored by
// position), so the distributed phases cannot contribute anything further
// and the selection rule runs on purely local candidates. Queries near a
// service-area border fall back to the expanding-ring search (ok == false).
func (s *Server) neighborQueryLocal(req msg.NeighborQueryReq) (msg.Message, bool) {
	sa := s.cfg.SA.Bounds()
	const anyOverlap = 1e-9
	// Cap the cursor walk: a store full of non-qualifying sightings should
	// fall back to the distributed search, not be streamed end to end.
	const scanCap = 64
	nearestDist := -1.0
	examined := 0
	s.sightings.NearestFunc(req.P, func(sight core.Sighting, dist float64) bool {
		if !sa.ContainsRect(geo.RectAround(req.P, dist).Enlarge(req.ReqAcc)) {
			// The candidate disc already escapes this leaf, and every
			// later candidate is farther still: locality is unprovable.
			return false
		}
		// The qualification window only needs to strictly contain the
		// candidate's position: overlap is then positive and the
		// predicate reduces to the accuracy test, exactly as the
		// expanding ring converges to.
		window := core.AreaFromRect(geo.RectAround(req.P, dist+1))
		if _, ok := s.entryIfQualifies(sight, window, req.ReqAcc, anyOverlap); ok {
			nearestDist = dist
			return false
		}
		examined++
		return examined < scanCap
	})
	if nearestDist < 0 {
		// No local qualifying candidate; only the distributed search can
		// answer (or establish emptiness).
		return nil, false
	}
	// The +1 m margin keeps the window's area positive even when the
	// nearest candidate sits exactly at P with nearQual 0 (a query at an
	// object's recorded position): a zero-area window gives every
	// candidate overlap degree 0 and filters the entire answer away. The
	// margin only admits a superset; SelectNearest applies the exact
	// rule. Same reasoning as the +1 in the qualification window above.
	collectR := nearestDist + req.NearQual + 1
	window := core.AreaFromRect(geo.RectAround(req.P, collectR))
	enlarged := window.Bounds().Enlarge(req.ReqAcc)
	if !sa.ContainsRect(enlarged) {
		return nil, false
	}
	cands := s.localRangeResult(window, req.ReqAcc, anyOverlap, enlarged)
	res := core.SelectNearest(cands, req.P, req.ReqAcc, req.NearQual)
	if !res.Found {
		return msg.NeighborQueryRes{Found: false}, true
	}
	return msg.NeighborQueryRes{
		Found:             true,
		Nearest:           res.Nearest,
		Near:              res.Near,
		GuaranteedMinDist: res.GuaranteedMinDist,
	}, true
}
