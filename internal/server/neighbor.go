package server

import (
	"context"
	"math"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
)

// handleNeighborQuery resolves a nearest-neighbor query (semantics of
// Section 3.2) at the entry server with an expanding-ring search built on
// the distributed range-query machinery:
//
//  1. Query a square window around p, doubling its radius until a candidate
//     whose recorded position lies within the window radius is found. Any
//     object outside the window is farther than the radius, so the nearest
//     candidate found this way is the global nearest.
//  2. Issue one final collection query of radius dist(nearest) + nearQual
//     to gather the nearObjSet, then apply core.SelectNearest for the exact
//     selection rule (accuracy filter, deterministic tie-break, guaranteed
//     minimum distance).
//
// The paper defines the query's semantics but not its distributed
// resolution; this concretisation is documented in DESIGN.md.
func (s *Server) handleNeighborQuery(ctx context.Context, req msg.NeighborQueryReq) (msg.Message, error) {
	if !s.cfg.IsLeaf() {
		return nil, core.ErrBadRequest
	}
	if req.ReqAcc < 0 || req.NearQual < 0 {
		return nil, core.ErrBadRequest
	}
	s.met.Counter("neighbor_query_seen").Inc()

	rootBounds := s.rootArea.Bounds()
	maxRadius := rootBounds.Width() + rootBounds.Height() // covers everything from any p

	radius := s.opts.NNInitialRadius
	if radius <= 0 {
		sa := s.cfg.SA.Bounds()
		radius = (sa.Width() + sa.Height()) / 8
		if radius <= 0 {
			radius = maxRadius / 64
		}
	}

	// The overlap threshold only needs to be positive: any object whose
	// position lies inside the window has a positive overlap degree.
	const anyOverlap = 1e-9

	var nearestDist float64
	found := false
	for {
		window := core.AreaFromRect(geo.RectAround(req.P, radius))
		cands, _, _, err := s.collectRange(ctx, window, req.ReqAcc, anyOverlap)
		if err != nil {
			return nil, err
		}
		for _, e := range cands {
			d := e.LD.Pos.Dist(req.P)
			if d <= radius && (!found || d < nearestDist) {
				nearestDist = d
				found = true
			}
		}
		if found {
			break
		}
		if radius >= maxRadius {
			// The whole service area has been searched.
			return msg.NeighborQueryRes{Found: false}, nil
		}
		radius = math.Min(radius*2, maxRadius)
		s.met.Counter("neighbor_query_expand").Inc()
	}

	// Collection ring: every object that can appear in nearObjSet has a
	// recorded position within nearestDist + nearQual of p.
	collectR := nearestDist + req.NearQual
	window := core.AreaFromRect(geo.RectAround(req.P, collectR))
	cands, _, _, err := s.collectRange(ctx, window, req.ReqAcc, anyOverlap)
	if err != nil {
		return nil, err
	}
	res := core.SelectNearest(cands, req.P, req.ReqAcc, req.NearQual)
	if !res.Found {
		return msg.NeighborQueryRes{Found: false}, nil
	}
	return msg.NeighborQueryRes{
		Found:             true,
		Nearest:           res.Nearest,
		Near:              res.Near,
		GuaranteedMinDist: res.GuaranteedMinDist,
	}, nil
}
