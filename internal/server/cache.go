package server

import (
	"sync"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
)

// leafCaches bundles the three caching mechanisms of Section 6.5, all kept
// on leaf servers:
//
//  1. (leaf server → service area): learned from LeafInfo piggybacked on
//     protocol messages; lets handovers and range queries skip the tree.
//  2. (tracked object → current agent): learned from position query
//     responses; lets position queries go straight to the agent.
//  3. (tracked object → position descriptor): caches query results; aged
//     with the object's maximum speed before reuse.
type leafCaches struct {
	enableArea  bool
	enableAgent bool
	enablePos   bool

	mu     sync.RWMutex
	areas  map[msg.NodeID]core.Area
	agents map[core.OID]msg.NodeID
	pos    map[core.OID]posCacheEntry
}

type posCacheEntry struct {
	ld       core.LocationDescriptor
	storedAt time.Time
	maxSpeed float64
}

func newLeafCaches(opts Options) *leafCaches {
	return &leafCaches{
		enableArea:  opts.EnableAreaCache,
		enableAgent: opts.EnableAgentCache,
		enablePos:   opts.EnablePosCache,
		areas:       make(map[msg.NodeID]core.Area),
		agents:      make(map[core.OID]msg.NodeID),
		pos:         make(map[core.OID]posCacheEntry),
	}
}

// observeLeaf records a (leaf → area) mapping seen on a protocol message.
func (c *leafCaches) observeLeaf(li msg.LeafInfo) {
	if !c.enableArea || !li.Valid() {
		return
	}
	c.mu.Lock()
	c.areas[li.ID] = li.Area
	c.mu.Unlock()
}

// leafFor returns the cached leaf whose service area contains p.
func (c *leafCaches) leafFor(p geo.Point) (msg.NodeID, bool) {
	if !c.enableArea {
		return "", false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for id, a := range c.areas {
		if a.Contains(p) {
			return id, true
		}
	}
	return "", false
}

// leavesCovering returns cached leaves overlapping the rectangle r and
// whether their cached areas jointly cover at least expected of the query
// measure inside r. Only a full cover lets the entry server skip the tree
// (Section 6.5: "determine the leaf server(s) for this area from its
// cache").
func (c *leafCaches) leavesCovering(area core.Area, enlarged geo.Rect, expected float64, self msg.NodeID) ([]msg.NodeID, bool) {
	if !c.enableArea {
		return nil, false
	}
	if expected <= 0 {
		return nil, true
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	var ids []msg.NodeID
	covered := 0.0
	for id, a := range c.areas {
		if id == self || !a.Bounds().Intersects(enlarged) {
			continue
		}
		ids = append(ids, id)
		covered += area.Vertices.IntersectRectArea(a.Bounds())
	}
	if covered+1e-6*expected < expected {
		return nil, false
	}
	return ids, true
}

// areaOf returns the cached service area of one leaf; used by degraded
// range queries to tally the query share of an unreachable cache-direct
// destination.
func (c *leafCaches) areaOf(id msg.NodeID) (core.Area, bool) {
	if !c.enableArea {
		return core.Area{}, false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	a, ok := c.areas[id]
	return a, ok
}

// invalidateLeaf drops a stale (leaf → area) entry.
func (c *leafCaches) invalidateLeaf(id msg.NodeID) {
	if !c.enableArea {
		return
	}
	c.mu.Lock()
	delete(c.areas, id)
	c.mu.Unlock()
}

// observeAgent records an (object → agent) mapping.
func (c *leafCaches) observeAgent(oid core.OID, agent msg.NodeID) {
	if !c.enableAgent || agent == "" {
		return
	}
	c.mu.Lock()
	c.agents[oid] = agent
	c.mu.Unlock()
}

// agentFor returns the cached agent for oid.
func (c *leafCaches) agentFor(oid core.OID) (msg.NodeID, bool) {
	if !c.enableAgent {
		return "", false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	id, ok := c.agents[oid]
	return id, ok
}

// invalidateAgent drops a stale (object → agent) entry.
func (c *leafCaches) invalidateAgent(oid core.OID) {
	if !c.enableAgent {
		return
	}
	c.mu.Lock()
	delete(c.agents, oid)
	c.mu.Unlock()
}

// observePos caches a returned position descriptor.
func (c *leafCaches) observePos(oid core.OID, ld core.LocationDescriptor, maxSpeed float64, now time.Time) {
	if !c.enablePos {
		return
	}
	c.mu.Lock()
	c.pos[oid] = posCacheEntry{ld: ld, storedAt: now, maxSpeed: maxSpeed}
	c.mu.Unlock()
}

// posFor returns the cached descriptor for oid aged to now, if its aged
// accuracy still meets accBound (Section 6.5: reuse "provided the
// information is still accurate enough"). maxSpeed zero in the entry means
// the descriptor cannot be aged and is only served fresh.
func (c *leafCaches) posFor(oid core.OID, accBound float64, now time.Time) (core.LocationDescriptor, bool) {
	if !c.enablePos || accBound <= 0 {
		return core.LocationDescriptor{}, false
	}
	c.mu.RLock()
	e, ok := c.pos[oid]
	c.mu.RUnlock()
	if !ok {
		return core.LocationDescriptor{}, false
	}
	if e.maxSpeed <= 0 && now.After(e.storedAt) {
		return core.LocationDescriptor{}, false
	}
	aged := e.ld.Aged(e.storedAt, now, e.maxSpeed)
	if aged.Acc > accBound {
		return core.LocationDescriptor{}, false
	}
	return aged, true
}

// observeLeafInfo lets the server feed its caches from any message carrying
// leaf info.
func (s *Server) observeLeafInfo(li msg.LeafInfo) {
	s.caches.observeLeaf(li)
}
