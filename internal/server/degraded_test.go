package server_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/msg"
	"locsvc/internal/server"
	"locsvc/internal/transport"
)

// TestDegradedQueriesWithDarkLeaf runs every query type against the quad
// hierarchy with exactly one leaf dark and checks that coordinators answer
// with what the reachable part of the tree knows — marked Partial — instead
// of failing outright. The oracle is the full object set minus the dark
// leaf's quarter.
func TestDegradedQueriesWithDarkLeaf(t *testing.T) {
	// No network-level call cap: the servers' own CallTimeout governs
	// hop calls, and the client's operation timeout must outlive the
	// entry server's QueryTimeout to receive the partial answer.
	net := transport.NewInproc(transport.InprocOptions{
		SweepInterval: 20 * time.Millisecond,
	})
	defer net.Close()
	dep, err := hierarchy.Deploy(net, quadSpec(), server.Options{
		CallTimeout:  300 * time.Millisecond,
		QueryTimeout: 700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	// One object per quarter; o3 lives on the leaf that goes dark.
	objs := map[string]geo.Point{
		"o0": geo.Pt(100, 100),   // r.0
		"o1": geo.Pt(1200, 100),  // r.1
		"o2": geo.Pt(100, 1200),  // r.2
		"o3": geo.Pt(1200, 1200), // r.3
	}
	for oid, p := range objs {
		c, cerr := client.New(net, msg.NodeID("owner-"+oid), "r.0", client.Options{})
		if cerr != nil {
			t.Fatal(cerr)
		}
		defer c.Close()
		if _, rerr := c.Register(ctx(t), sightingAt(oid, p), 10, 50, 3); rerr != nil {
			t.Fatal(rerr)
		}
	}

	c, err := client.New(net, "querier", "r.0", client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Sanity before the fault: the full query sees all four objects and
	// is not partial.
	full, err := c.RangeQueryFull(ctx(t), core.AreaFromRect(geo.R(0, 0, 1500, 1500)), 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial || len(full.Objs) != 4 {
		t.Fatalf("healthy query: partial=%v objs=%d", full.Partial, len(full.Objs))
	}

	// Darken r.3: deliveries to and from it are dropped, its id stays
	// attached — the shape of a paused or crashed process behind a live
	// address.
	net.SetNodeDown("r.3", true)

	// The oracle minus the dark leaf.
	reachable := map[string]geo.Point{"o0": objs["o0"], "o1": objs["o1"], "o2": objs["o2"]}
	nearestReachable := func(p geo.Point) string {
		best, bestD := "", math.Inf(1)
		for oid, q := range reachable {
			if d := p.Dist(q); d < bestD {
				best, bestD = oid, d
			}
		}
		return best
	}

	tests := []struct {
		name  string
		check func(t *testing.T)
	}{
		{"range is partial and equals oracle minus dark leaf", func(t *testing.T) {
			res, err := c.RangeQueryFull(ctx(t), core.AreaFromRect(geo.R(0, 0, 1500, 1500)), 100, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Partial {
				t.Error("range over a dark quarter not marked Partial")
			}
			got := map[string]bool{}
			for _, e := range res.Objs {
				got[string(e.OID)] = true
			}
			if len(got) != len(reachable) {
				t.Fatalf("objs = %v, want exactly %v", got, reachable)
			}
			for oid := range reachable {
				if !got[oid] {
					t.Errorf("reachable object %s missing from degraded result", oid)
				}
			}
		}},
		{"neighbor is partial and nearest among reachable", func(t *testing.T) {
			// The true nearest to this point is o3 on the dark leaf;
			// the degraded answer is the nearest reachable object.
			p := geo.Pt(1050, 1100)
			res, err := c.NeighborQuery(ctx(t), p, 100, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Partial {
				t.Error("neighbor query touching a dark quarter not marked Partial")
			}
			if want := nearestReachable(p); string(res.Nearest.OID) != want {
				t.Errorf("nearest = %s, want %s (nearest reachable)", res.Nearest.OID, want)
			}
		}},
		{"posquery for object behind dark leaf is unavailable, not not-found", func(t *testing.T) {
			_, err := c.PosQuery(ctx(t), "o3")
			if !errors.Is(err, core.ErrUnavailable) {
				t.Errorf("dark-leaf posquery err = %v, want ErrUnavailable", err)
			}
		}},
		{"posquery for reachable object still succeeds", func(t *testing.T) {
			ld, err := c.PosQuery(ctx(t), "o1")
			if err != nil {
				t.Fatal(err)
			}
			if ld.Pos != objs["o1"] {
				t.Errorf("pos = %v, want %v", ld.Pos, objs["o1"])
			}
		}},
		{"diag at a live entry is unaffected", func(t *testing.T) {
			res, err := c.Diag(ctx(t))
			if err != nil {
				t.Fatal(err)
			}
			if res.Server != "r.0" || !res.IsLeaf {
				t.Errorf("diag = %+v", res)
			}
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) { tc.check(t) })
	}

	entry, _ := dep.Server("r.0")
	if got := entry.Metrics().Counter("wire_degraded_queries").Value(); got < 3 {
		t.Errorf("wire_degraded_queries = %d, want >= 3 (range, neighbor, posquery)", got)
	}
}
