package server

import (
	"context"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
)

// coverEpsilon is the relative tolerance when comparing collected coverage
// against the expected query-area measure.
const coverEpsilon = 1e-6

// handleRangeQuery implements the entry-server half of Algorithm 6-5. The
// entry server contributes its own partial result, forwards the query
// upwards if the area extends beyond its service area, and collects the
// partial results of all involved leaf servers until the query area is
// fully covered (tallied by area measure — sibling service areas never
// overlap, so partial covers add up exactly).
func (s *Server) handleRangeQuery(ctx context.Context, req msg.RangeQueryReq) (msg.Message, error) {
	if !s.cfg.IsLeaf() {
		return nil, core.ErrBadRequest
	}
	if req.Area.Empty() || req.ReqOverlap <= 0 || req.ReqOverlap > 1 || req.ReqAcc < 0 {
		return nil, core.ErrBadRequest
	}
	s.met.Counter("range_query_seen").Inc()

	objs, servers, hops, err := s.collectRange(ctx, req.Area, req.ReqAcc, req.ReqOverlap)
	if err != nil {
		return nil, err
	}
	return msg.RangeQueryRes{Objs: objs, Servers: servers, Hops: hops}, nil
}

// collectRange runs the distributed range query and returns the qualifying
// objects, the number of contributing leaf servers and the maximum hop
// count observed. It is shared by range and nearest-neighbor processing.
func (s *Server) collectRange(ctx context.Context, area core.Area, reqAcc, reqOverlap float64) ([]core.Entry, int, int, error) {
	enlarged := area.Bounds().Enlarge(reqAcc)

	// The expected coverage is the part of the query area inside the
	// root service area; parts outside the LS's responsibility can never
	// be covered by any leaf.
	expected := area.Vertices.IntersectRectArea(s.rootArea.Bounds())

	var objs []core.Entry
	covered := 0.0
	servers := 0
	maxHops := 0

	// Local contribution (Algorithm 6-5, lines 3-7).
	if enlarged.Intersects(s.cfg.SA.Bounds()) {
		objs = append(objs, s.localRangeResult(area, reqAcc, reqOverlap, enlarged)...)
		covered += area.Vertices.IntersectRectArea(s.cfg.SA.Bounds())
		servers++
	}
	if covered+coverEpsilon*expected >= expected || expected == 0 {
		s.met.Counter("range_query_local").Inc()
		return objs, servers, maxHops, nil
	}

	// Part of the area lies outside this server's responsibility: the
	// query must be forwarded (lines 8-13).
	opID, ch := s.pend.open()
	defer s.pend.close(opID)
	origin := msg.Origin{Node: s.ID(), OpID: opID}

	// The entry server itself already covers `covered` of the query; the
	// cache only needs to account for the remainder.
	if leaves, ok := s.caches.leavesCovering(area, enlarged, expected-covered, s.ID()); ok {
		// Cache shortcut (Section 6.5): contact the leaf servers for
		// the area directly, without traversing the hierarchy.
		s.met.Counter("range_query_cache_direct").Inc()
		sent := 0
		for _, leaf := range leaves {
			if leaf == s.ID() {
				continue
			}
			s.sendOrCount(leaf, msg.RangeQueryFwd{
				Area: area, ReqAcc: reqAcc, ReqOverlap: reqOverlap,
				Origin: origin, Hops: 1,
			})
			sent++
		}
		if sent == 0 {
			return objs, servers, maxHops, nil
		}
	} else {
		parent := s.parentForKey(opID)
		if parent == "" {
			// Single-server deployment: our own contribution is all
			// there is.
			return objs, servers, maxHops, nil
		}
		s.sendOrCount(parent, msg.RangeQueryFwd{
			Area: area, ReqAcc: reqAcc, ReqOverlap: reqOverlap,
			Origin: origin, Hops: 1,
		})
	}

	// Collection loop (lines 10-13): receive partial results until the
	// area is entirely covered.
	timeout := time.NewTimer(s.opts.QueryTimeout)
	defer timeout.Stop()
	for covered+coverEpsilon*expected < expected {
		select {
		case m := <-ch:
			sub, ok := m.(msg.RangeQuerySubRes)
			if !ok {
				continue
			}
			objs = append(objs, sub.Objs...)
			covered += sub.CoveredSize
			servers++
			if sub.Hops > maxHops {
				maxHops = sub.Hops
			}
		case <-timeout.C:
			s.met.Counter("range_query_timeout").Inc()
			// Return what we have: partial answers beat none under
			// UDP loss; the shortfall is visible in metrics.
			return objs, servers, maxHops, nil
		case <-ctx.Done():
			return nil, 0, 0, ctx.Err()
		}
	}
	s.met.Counter("range_query_remote").Inc()
	return objs, servers, maxHops, nil
}

// localRangeResult evaluates the range predicate against this leaf's
// sightingDB using the spatial index (Algorithm 6-5 lines 4-5). Candidate
// positions are found within the reqAcc-enlarged bounds — an object whose
// position lies outside the area can still qualify if its location area
// overlaps enough (Section 3.2) — then filtered exactly.
func (s *Server) localRangeResult(area core.Area, reqAcc, reqOverlap float64, enlarged geo.Rect) []core.Entry {
	var out []core.Entry
	s.sightings.SearchArea(enlarged, func(sight core.Sighting) bool {
		if e, ok := s.entryIfQualifies(sight, area, reqAcc, reqOverlap); ok {
			out = append(out, e)
		}
		return true
	})
	return out
}

// entryIfQualifies looks up the visitor record behind a sighting and
// applies the full range predicate of Section 3.2, returning the wire
// entry when the object qualifies. It is shared by the range-query leaf
// path and the nearest-neighbor local fast path, so both apply identical
// accuracy and overlap semantics.
func (s *Server) entryIfQualifies(sight core.Sighting, area core.Area, reqAcc, reqOverlap float64) (core.Entry, bool) {
	rec, ok := s.visitors.Get(sight.OID)
	if !ok {
		return core.Entry{}, false
	}
	ld := core.LocationDescriptor{Pos: sight.Pos, Acc: rec.OfferedAcc}
	if !area.RangeQualifies(ld, reqAcc, reqOverlap) {
		return core.Entry{}, false
	}
	return core.Entry{OID: sight.OID, LD: ld}, true
}

// handleRangeQueryFwd implements the forwarding half of Algorithm 6-5:
// climb until the receiver's service area covers the (enlarged) query area
// entirely, fan out to every overlapping child, and have each involved leaf
// send its partial result directly to the entry server.
func (s *Server) handleRangeQueryFwd(from msg.NodeID, req msg.RangeQueryFwd) {
	req.Hops++
	enlarged := req.Area.Bounds().Enlarge(req.ReqAcc)

	if s.cfg.IsLeaf() {
		// Lines 2-6: produce this leaf's partial result.
		if !enlarged.Intersects(s.cfg.SA.Bounds()) {
			// Possible under a slightly stale area cache: answer
			// with an empty cover so the entry server is not left
			// waiting for a contribution that cannot come.
			s.respondToOrigin(req.Origin, msg.RangeQuerySubRes{
				OpID: req.Origin.OpID, Leaf: s.leafInfo(), Hops: req.Hops,
			})
			return
		}
		objs := s.localRangeResult(req.Area, req.ReqAcc, req.ReqOverlap, enlarged)
		s.respondToOrigin(req.Origin, msg.RangeQuerySubRes{
			OpID:        req.Origin.OpID,
			Objs:        objs,
			CoveredSize: req.Area.Vertices.IntersectRectArea(s.cfg.SA.Bounds()),
			Leaf:        s.leafInfo(),
			Hops:        req.Hops,
		})
		return
	}

	// Non-leaf (lines 7-15): forward downwards to overlapping children
	// (except the one the query came from) …
	for _, child := range s.cfg.Children {
		if msg.NodeID(child.ID) == from {
			continue
		}
		if enlarged.Intersects(child.SA.Bounds()) {
			s.sendOrCount(msg.NodeID(child.ID), req)
		}
	}
	// … and upwards if part of the area lies outside our service area
	// (and the query did not come from above).
	outside := !s.cfg.SA.Bounds().ContainsRect(enlarged)
	if outside && !s.isParent(from) {
		if s.parent() != "" {
			s.sendOrCount(s.parentForKey(req.Origin.OpID), req)
		}
	}
}
