package server

import (
	"context"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
)

// coverEpsilon is the relative tolerance when comparing collected coverage
// against the expected query-area measure.
const coverEpsilon = 1e-6

// handleRangeQuery implements the entry-server half of Algorithm 6-5. The
// entry server contributes its own partial result, forwards the query
// upwards if the area extends beyond its service area, and collects the
// partial results of all involved leaf servers until the query area is
// fully covered (tallied by area measure — sibling service areas never
// overlap, so partial covers add up exactly).
func (s *Server) handleRangeQuery(ctx context.Context, req msg.RangeQueryReq) (msg.Message, error) {
	if !s.cfg.IsLeaf() {
		return nil, core.ErrBadRequest
	}
	if req.Area.Empty() || req.ReqOverlap <= 0 || req.ReqOverlap > 1 || req.ReqAcc < 0 {
		return nil, core.ErrBadRequest
	}
	s.met.Counter("range_query_seen").Inc()

	out, err := s.collectRange(ctx, req.Area, req.ReqAcc, req.ReqOverlap)
	if err != nil {
		return nil, err
	}
	if out.partial {
		s.met.Counter("wire_degraded_queries").Inc()
	}
	return msg.RangeQueryRes{
		Objs:        out.objs,
		Servers:     out.servers,
		Hops:        out.hops,
		Partial:     out.partial,
		Unreachable: out.unreachable,
	}, nil
}

// rangeOutcome is the result of one distributed range collection. partial
// marks a degraded answer: some of the query area is owned by servers that
// were unreachable (or never answered before the query timeout), so the
// result covers only the live part of the hierarchy — a deliberately
// different statement than "no objects there".
type rangeOutcome struct {
	objs        []core.Entry
	servers     int
	hops        int
	partial     bool
	unreachable []msg.NodeID
}

// mergeUnreachable appends ids not already present (fan-out sets are a
// handful of nodes, so linear dedupe is fine).
func mergeUnreachable(dst []msg.NodeID, ids ...msg.NodeID) []msg.NodeID {
	for _, id := range ids {
		dup := false
		for _, d := range dst {
			if d == id {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, id)
		}
	}
	return dst
}

// collectRange runs the distributed range query and returns the qualifying
// objects, the number of contributing leaf servers and the maximum hop
// count observed. It is shared by range and nearest-neighbor processing.
//
// Degraded mode: fan-out messages travel as tracked one-ways (forward), so
// an unreachable destination — open breaker, dead address — is detected
// immediately instead of waited out. Its share of the query area is tallied
// as "dark cover": area that can never be covered by a partial result. The
// collection loop terminates as soon as live cover plus dark cover accounts
// for the whole query, so a query over a half-dark hierarchy returns the
// reachable results promptly with partial set, rather than eating the full
// query timeout.
func (s *Server) collectRange(ctx context.Context, area core.Area, reqAcc, reqOverlap float64) (rangeOutcome, error) {
	enlarged := area.Bounds().Enlarge(reqAcc)

	// The expected coverage is the part of the query area inside the
	// root service area; parts outside the LS's responsibility can never
	// be covered by any leaf.
	expected := area.Vertices.IntersectRectArea(s.rootArea.Bounds())

	var out rangeOutcome
	covered := 0.0
	darkCover := 0.0

	// Local contribution (Algorithm 6-5, lines 3-7).
	if enlarged.Intersects(s.cfg.SA.Bounds()) {
		out.objs = append(out.objs, s.localRangeResult(area, reqAcc, reqOverlap, enlarged)...)
		covered += area.Vertices.IntersectRectArea(s.cfg.SA.Bounds())
		out.servers++
	}
	if covered+coverEpsilon*expected >= expected || expected == 0 {
		s.met.Counter("range_query_local").Inc()
		return out, nil
	}

	// Part of the area lies outside this server's responsibility: the
	// query must be forwarded (lines 8-13).
	opID, ch := s.pend.open()
	defer s.pend.close(opID)
	origin := msg.Origin{Node: s.ID(), OpID: opID}

	// The entry server itself already covers `covered` of the query; the
	// cache only needs to account for the remainder.
	if leaves, ok := s.caches.leavesCovering(area, enlarged, expected-covered, s.ID()); ok {
		// Cache shortcut (Section 6.5): contact the leaf servers for
		// the area directly, without traversing the hierarchy.
		s.met.Counter("range_query_cache_direct").Inc()
		sent := 0
		for _, leaf := range leaves {
			if leaf == s.ID() {
				continue
			}
			if err := s.forward(leaf, msg.RangeQueryFwd{
				Area: area, ReqAcc: reqAcc, ReqOverlap: reqOverlap,
				Origin: origin, Hops: 1,
			}); err != nil {
				out.unreachable = mergeUnreachable(out.unreachable, leaf)
				if a, known := s.caches.areaOf(leaf); known {
					darkCover += area.Vertices.IntersectRectArea(a.Bounds())
				}
				continue
			}
			sent++
		}
		if sent == 0 {
			out.partial = len(out.unreachable) > 0
			return out, nil
		}
	} else {
		parent := s.parentForKey(opID)
		if parent == "" {
			// Single-server deployment: our own contribution is all
			// there is.
			return out, nil
		}
		if err := s.forward(parent, msg.RangeQueryFwd{
			Area: area, ReqAcc: reqAcc, ReqOverlap: reqOverlap,
			Origin: origin, Hops: 1,
		}); err != nil {
			// The route into the rest of the hierarchy is down:
			// everything beyond this leaf is dark right now.
			out.partial = true
			out.unreachable = mergeUnreachable(out.unreachable, parent)
			return out, nil
		}
	}

	// Collection loop (lines 10-13): receive partial results until live
	// plus dark cover accounts for the whole area.
	timeout := time.NewTimer(s.opts.QueryTimeout)
	defer timeout.Stop()
	for covered+darkCover+coverEpsilon*expected < expected {
		select {
		case m := <-ch:
			sub, ok := m.(msg.RangeQuerySubRes)
			if !ok {
				continue
			}
			out.objs = append(out.objs, sub.Objs...)
			covered += sub.CoveredSize
			darkCover += sub.UnreachableSize
			out.unreachable = mergeUnreachable(out.unreachable, sub.Unreachable...)
			if len(sub.Unreachable) == 0 {
				out.servers++
			}
			if sub.Hops > out.hops {
				out.hops = sub.Hops
			}
		case <-timeout.C:
			s.met.Counter("range_query_timeout").Inc()
			// Return what we have: partial answers beat none under
			// UDP loss; the shortfall is visible to the caller.
			out.partial = true
			return out, nil
		case <-ctx.Done():
			return rangeOutcome{}, ctx.Err()
		}
	}
	if darkCover > 0 || len(out.unreachable) > 0 {
		out.partial = true
	}
	s.met.Counter("range_query_remote").Inc()
	return out, nil
}

// localRangeResult evaluates the range predicate against this leaf's
// sightingDB using the spatial index (Algorithm 6-5 lines 4-5). Candidate
// positions are found within the reqAcc-enlarged bounds — an object whose
// position lies outside the area can still qualify if its location area
// overlaps enough (Section 3.2) — then filtered exactly.
func (s *Server) localRangeResult(area core.Area, reqAcc, reqOverlap float64, enlarged geo.Rect) []core.Entry {
	var out []core.Entry
	s.sightings.SearchArea(enlarged, func(sight core.Sighting) bool {
		if e, ok := s.entryIfQualifies(sight, area, reqAcc, reqOverlap); ok {
			out = append(out, e)
		}
		return true
	})
	return out
}

// entryIfQualifies looks up the visitor record behind a sighting and
// applies the full range predicate of Section 3.2, returning the wire
// entry when the object qualifies. It is shared by the range-query leaf
// path and the nearest-neighbor local fast path, so both apply identical
// accuracy and overlap semantics.
func (s *Server) entryIfQualifies(sight core.Sighting, area core.Area, reqAcc, reqOverlap float64) (core.Entry, bool) {
	rec, ok := s.visitors.Get(sight.OID)
	if !ok {
		return core.Entry{}, false
	}
	ld := core.LocationDescriptor{Pos: sight.Pos, Acc: rec.OfferedAcc}
	if !area.RangeQualifies(ld, reqAcc, reqOverlap) {
		return core.Entry{}, false
	}
	return core.Entry{OID: sight.OID, LD: ld}, true
}

// handleRangeQueryFwd implements the forwarding half of Algorithm 6-5:
// climb until the receiver's service area covers the (enlarged) query area
// entirely, fan out to every overlapping child, and have each involved leaf
// send its partial result directly to the entry server.
func (s *Server) handleRangeQueryFwd(from msg.NodeID, req msg.RangeQueryFwd) {
	req.Hops++
	enlarged := req.Area.Bounds().Enlarge(req.ReqAcc)

	if s.cfg.IsLeaf() {
		// Lines 2-6: produce this leaf's partial result.
		if !enlarged.Intersects(s.cfg.SA.Bounds()) {
			// Possible under a slightly stale area cache: answer
			// with an empty cover so the entry server is not left
			// waiting for a contribution that cannot come.
			s.respondToOrigin(req.Origin, msg.RangeQuerySubRes{
				OpID: req.Origin.OpID, Leaf: s.leafInfo(), Hops: req.Hops,
			})
			return
		}
		objs := s.localRangeResult(req.Area, req.ReqAcc, req.ReqOverlap, enlarged)
		s.respondToOrigin(req.Origin, msg.RangeQuerySubRes{
			OpID:        req.Origin.OpID,
			Objs:        objs,
			CoveredSize: req.Area.Vertices.IntersectRectArea(s.cfg.SA.Bounds()),
			Leaf:        s.leafInfo(),
			Hops:        req.Hops,
		})
		return
	}

	// Non-leaf (lines 7-15): forward downwards to overlapping children
	// (except the one the query came from) …
	var failed []msg.NodeID
	failedCover := 0.0
	for _, child := range s.childRecords() {
		if msg.NodeID(child.ID) == from {
			continue
		}
		if enlarged.Intersects(child.SA.Bounds()) {
			if err := s.forward(msg.NodeID(child.ID), req); err != nil {
				// Unreachable child: its whole subtree's share of
				// the query is dark. Tell the entry server so its
				// cover tally closes instead of timing out.
				failed = append(failed, msg.NodeID(child.ID))
				failedCover += req.Area.Vertices.IntersectRectArea(child.SA.Bounds())
			}
		}
	}
	// … and upwards if part of the area lies outside our service area
	// (and the query did not come from above).
	outside := !s.cfg.SA.Bounds().ContainsRect(enlarged)
	if outside && !s.isParent(from) {
		if parent := s.parentForKey(req.Origin.OpID); parent != "" {
			if err := s.forward(parent, req); err != nil {
				// Everything outside this subtree is dark.
				failed = append(failed, parent)
				failedCover += req.Area.Vertices.IntersectRectArea(s.rootArea.Bounds()) -
					req.Area.Vertices.IntersectRectArea(s.cfg.SA.Bounds())
			}
		}
	}
	if len(failed) > 0 {
		s.respondToOrigin(req.Origin, msg.RangeQuerySubRes{
			OpID:            req.Origin.OpID,
			Hops:            req.Hops,
			Unreachable:     failed,
			UnreachableSize: failedCover,
		})
	}
}
