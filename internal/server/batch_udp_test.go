package server_test

import (
	"fmt"
	"testing"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/metrics"
	"locsvc/internal/msg"
	"locsvc/internal/server"
	"locsvc/internal/transport"
)

// oidN names the i-th object of a test fleet.
func oidN(prefix string, i int) string { return fmt.Sprintf("%s-%02d", prefix, i) }

// TestEndToEndOverBatchedUDP re-runs the protocol stack over a batching
// UDP network: servers receive and send through the batch-aware loop, the
// client multiplexes async updates and queries, and the shared registry
// must show real batches on the wire. This pins that coalescing is
// invisible to the protocol — same answers, fewer datagrams.
func TestEndToEndOverBatchedUDP(t *testing.T) {
	reg := metrics.NewRegistry()
	net := transport.NewUDPWithOptions(transport.UDPOptions{
		Metrics:     reg,
		BatchMax:    16,
		BatchLinger: time.Millisecond,
		CallTimeout: 5 * time.Second,
		MaxInFlight: 128,
	})
	defer net.Close()

	spec := hierarchy.Spec{
		RootArea: geo.R(0, 0, 1500, 1500),
		Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
	}
	dep, err := hierarchy.Deploy(net, spec, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	entry, _ := dep.LeafFor(geo.Pt(100, 100))
	c, err := client.New(net, msg.NodeID("batch-client"), entry, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Register a fleet, then fan out async updates through the one
	// multiplexed client node — the coalescer's natural workload.
	const fleet = 12
	objs := make([]*client.TrackedObject, fleet)
	for i := range objs {
		oid := oidN("bo", i)
		obj, err := c.Register(ctx(t), sightingAt(oid, geo.Pt(100+float64(i), 100)), 10, 50, 3)
		if err != nil {
			t.Fatalf("register %d over batched UDP: %v", i, err)
		}
		objs[i] = obj
	}

	pending := make([]*client.PendingUpdate, fleet)
	for i, obj := range objs {
		pu, err := obj.UpdateAsync(ctx(t), sightingAt(oidN("bo", i), geo.Pt(300+float64(i), 300)))
		if err != nil {
			t.Fatalf("issuing async update %d: %v", i, err)
		}
		pending[i] = pu
	}
	for i, pu := range pending {
		if err := pu.Wait(ctx(t)); err != nil {
			t.Fatalf("async update %d: %v", i, err)
		}
	}

	// Async position queries resolve against the updated positions.
	queries := make([]*client.PendingPosQuery, fleet)
	for i := range queries {
		q, err := c.PosQueryAsync(ctx(t), core.OID(oidN("bo", i)), 0)
		if err != nil {
			t.Fatalf("issuing async query %d: %v", i, err)
		}
		queries[i] = q
	}
	for i, q := range queries {
		ld, err := q.Wait(ctx(t))
		if err != nil {
			t.Fatalf("async query %d: %v", i, err)
		}
		if want := geo.Pt(300+float64(i), 300); ld.Pos != want {
			t.Errorf("query %d: pos = %v, want %v", i, ld.Pos, want)
		}
	}

	// A sync round trip still works on the same batching network.
	if err := objs[0].Update(ctx(t), sightingAt(oidN("bo", 0), geo.Pt(900, 300))); err != nil {
		t.Fatalf("handover over batched UDP: %v", err)
	}
	if objs[0].Agent() != "r.1" {
		t.Errorf("agent after handover = %s", objs[0].Agent())
	}

	// The workload actually batched: multi-envelope datagrams flowed in
	// both directions, and datagrams stayed below envelopes.
	if got := reg.Counter("wire_batches_out").Value(); got < 1 {
		t.Errorf("wire_batches_out = %d, want ≥ 1", got)
	}
	if got := reg.Counter("wire_batches_in").Value(); got < 1 {
		t.Errorf("wire_batches_in = %d, want ≥ 1", got)
	}
	env, dg := reg.Counter("wire_envelopes_out").Value(), reg.Counter("wire_datagrams_out").Value()
	if dg >= env {
		t.Errorf("datagrams_out = %d ≥ envelopes_out = %d: nothing coalesced", dg, env)
	}
}
