package server_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/msg"
	"locsvc/internal/server"
	"locsvc/internal/store"
	"locsvc/internal/transport"
)

func cacheOpts() server.Options {
	return server.Options{
		EnableAreaCache:  true,
		EnableAgentCache: true,
		EnablePosCache:   true,
	}
}

func TestAgentCacheShortcutsPositionQuery(t *testing.T) {
	ls := newTestLS(t, quadSpec(), cacheOpts())
	owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})
	if _, err := owner.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		root, _ := ls.dep.Server("r")
		return root.VisitorCount() == 1
	}, "path at root")

	remote := ls.newClientAt(t, "remote", geo.Pt(1400, 1400), client.Options{})
	// First query goes through the tree and fills the cache.
	if _, err := remote.PosQuery(ctx(t), "o1"); err != nil {
		t.Fatal(err)
	}
	// Second query must take the direct agent shortcut.
	if _, err := remote.PosQuery(ctx(t), "o1"); err != nil {
		t.Fatal(err)
	}
	entry, _ := ls.dep.Server("r.3")
	if got := entry.Metrics().Counter("pos_query_cache_agent").Value(); got != 1 {
		t.Errorf("agent-cache hits = %d, want 1", got)
	}
	if got := entry.Metrics().Counter("pos_query_remote").Value(); got != 1 {
		t.Errorf("tree-routed queries = %d, want 1", got)
	}
}

func TestAgentCacheInvalidatedAfterHandover(t *testing.T) {
	ls := newTestLS(t, quadSpec(), cacheOpts())
	owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})
	obj, err := owner.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		root, _ := ls.dep.Server("r")
		return root.VisitorCount() == 1
	}, "path at root")

	remote := ls.newClientAt(t, "remote", geo.Pt(1400, 1400), client.Options{})
	if _, err := remote.PosQuery(ctx(t), "o1"); err != nil {
		t.Fatal(err)
	}
	// Move the object into another leaf: the cached agent r.0 is stale.
	if err := obj.Update(ctx(t), sightingAt("o1", geo.Pt(800, 100))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		root, _ := ls.dep.Server("r")
		rec, ok := rootVisitor(root, "o1")
		return ok && rec.ForwardRef == "r.1"
	}, "root re-pointed to r.1")

	// The query must still succeed (miss → invalidate → tree).
	ld, err := remote.PosQuery(ctx(t), "o1")
	if err != nil {
		t.Fatal(err)
	}
	if ld.Pos != geo.Pt(800, 100) {
		t.Errorf("ld = %+v", ld)
	}
	entry, _ := ls.dep.Server("r.3")
	if got := entry.Metrics().Counter("pos_query_cache_agent_miss").Value(); got != 1 {
		t.Errorf("agent-cache misses = %d, want 1", got)
	}
}

// rootVisitor reads a visitor record through the exported test hook.
func rootVisitor(s *server.Server, oid core.OID) (store.VisitorRecord, bool) {
	return s.VisitorForTest(oid)
}

func TestPosDescriptorCache(t *testing.T) {
	ls := newTestLS(t, quadSpec(), cacheOpts())
	owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})
	// maxSpeed 2 m/s for aging.
	if _, err := owner.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		root, _ := ls.dep.Server("r")
		return root.VisitorCount() == 1
	}, "path at root")

	remote := ls.newClientAt(t, "remote", geo.Pt(1400, 1400), client.Options{})
	// Warm the cache.
	if _, err := remote.PosQueryBounded(ctx(t), "o1", 1000); err != nil {
		t.Fatal(err)
	}
	// Generous accuracy bound: answered from the position cache, no
	// agent round trip at all.
	ld, err := remote.PosQueryBounded(ctx(t), "o1", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ld.Acc < 10 {
		t.Errorf("cached accuracy %v not aged from 10", ld.Acc)
	}
	entry, _ := ls.dep.Server("r.3")
	if got := entry.Metrics().Counter("pos_query_cache_pos").Value(); got != 1 {
		t.Errorf("pos-cache hits = %d, want 1", got)
	}
	// Tight bound: the aged descriptor cannot satisfy 1 m; the query
	// must go to the agent again.
	if _, err := remote.PosQueryBounded(ctx(t), "o1", 1); err != nil {
		t.Fatal(err)
	}
	if got := entry.Metrics().Counter("pos_query_cache_pos").Value(); got != 1 {
		t.Errorf("pos-cache hits after tight bound = %d, want still 1", got)
	}
}

func TestAreaCacheDirectHandover(t *testing.T) {
	ls := newTestLS(t, quadSpec(), cacheOpts())
	owner := ls.newClientAt(t, "owner", geo.Pt(700, 100), client.Options{})
	obj, err := owner.Register(ctx(t), sightingAt("o1", geo.Pt(700, 100)), 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		root, _ := ls.dep.Server("r")
		return root.VisitorCount() == 1
	}, "path at root")

	// Warm r.0's (leaf → area) cache: a range query spanning r.0 and
	// r.1 makes r.1 send its leaf info to the entry server r.0.
	q := ls.newClientAt(t, "warm", geo.Pt(100, 100), client.Options{})
	if _, err := q.RangeQueryRect(ctx(t), geo.R(700, 50, 900, 150), 25, 0.5); err != nil {
		t.Fatal(err)
	}
	oldLeaf, _ := ls.dep.Server("r.0")
	waitFor(t, func() bool {
		return oldLeaf.Metrics().Counter("range_query_seen").Value() >= 0 && oldLeafHasArea(oldLeaf, geo.Pt(800, 100))
	}, "r.0 learned r.1's area")

	// Handover east: with the warm cache this goes leaf-to-leaf.
	if err := obj.Update(ctx(t), sightingAt("o1", geo.Pt(800, 100))); err != nil {
		t.Fatal(err)
	}
	if obj.Agent() != "r.1" {
		t.Fatalf("agent = %s", obj.Agent())
	}
	if got := oldLeaf.Metrics().Counter("handover_direct").Value(); got != 1 {
		t.Errorf("direct handovers = %d, want 1", got)
	}

	// The tree must be repaired: the root points to r.1 and queries work
	// from anywhere.
	waitFor(t, func() bool {
		root, _ := ls.dep.Server("r")
		rec, ok := rootVisitor(root, "o1")
		return ok && rec.ForwardRef == "r.1"
	}, "root repaired to r.1")
	waitFor(t, func() bool { return oldLeaf.VisitorCount() == 0 }, "old agent cleaned")

	remote := ls.newClientAt(t, "remote", geo.Pt(1400, 1400), client.Options{})
	ld, err := remote.PosQuery(ctx(t), "o1")
	if err != nil {
		t.Fatal(err)
	}
	if ld.Pos != geo.Pt(800, 100) {
		t.Errorf("ld = %+v", ld)
	}
}

// oldLeafHasArea checks the leaf-area cache through the exported test hook.
func oldLeafHasArea(s *server.Server, p geo.Point) bool {
	_, ok := s.CachedLeafForTest(p)
	return ok
}

func TestAreaCacheDirectRangeQuery(t *testing.T) {
	ls := newTestLS(t, quadSpec(), cacheOpts())
	owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})
	if _, err := owner.Register(ctx(t), sightingAt("o1", geo.Pt(800, 800)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}

	q := ls.newClientAt(t, "querier", geo.Pt(100, 100), client.Options{})
	area := geo.R(700, 700, 900, 900) // entirely inside r.3
	// First query traverses the tree and teaches r.0 about r.3's area.
	objs, err := q.RangeQueryRect(ctx(t), area, 25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 {
		t.Fatalf("first query: %+v", objs)
	}
	// Second identical query can go straight to r.3.
	objs, err = q.RangeQueryRect(ctx(t), area, 25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 {
		t.Fatalf("second query: %+v", objs)
	}
	entry, _ := ls.dep.Server("r.0")
	if got := entry.Metrics().Counter("range_query_cache_direct").Value(); got != 1 {
		t.Errorf("direct range queries = %d, want 1", got)
	}
}

func TestLeafRecoveryRestoresSightings(t *testing.T) {
	// A leaf server crashes and restarts: its visitorDB (WAL-backed)
	// survives, the sightingDB is rebuilt from re-requested updates
	// (Section 5).
	net := transport.NewInproc(transport.InprocOptions{})
	defer net.Close()

	dir := t.TempDir()
	spec := quadSpec()
	configs, err := hierarchy.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	rootArea := core.AreaFromRect(spec.RootArea)

	servers := make(map[string]*server.Server)
	for _, cfg := range configs {
		opts := server.Options{}
		if cfg.ID == "r.0" {
			wal, werr := store.OpenFileWAL(filepath.Join(dir, "r0.wal"))
			if werr != nil {
				t.Fatal(werr)
			}
			opts.WAL = wal
		}
		srv, serr := server.New(cfg, rootArea, net, opts)
		if serr != nil {
			t.Fatal(serr)
		}
		servers[cfg.ID] = srv
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	// A client that answers RequestUpdate by re-sending its position —
	// the paper's recovery path.
	var obj *client.TrackedObject
	updateRequested := make(chan core.OID, 1)
	c, err := client.New(net, "owner", "r.0", client.Options{
		OnRequestUpdate: func(oid core.OID) {
			select {
			case updateRequested <- oid:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err = c.Register(context.Background(), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Crash r.0: close it (WAL closes with it) and restart from the
	// same WAL.
	if err := servers["r.0"].Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := store.OpenFileWAL(filepath.Join(dir, "r0.wal"))
	if err != nil {
		t.Fatal(err)
	}
	restarted, err := server.New(configs[1], rootArea, net, server.Options{WAL: wal})
	if err != nil {
		t.Fatal(err)
	}
	servers["r.0"] = restarted

	// The visitorDB survived; the sightingDB is empty.
	if restarted.VisitorCount() != 1 {
		t.Fatalf("restored visitors = %d", restarted.VisitorCount())
	}
	if restarted.SightingCount() != 0 {
		t.Fatalf("sightings survived crash: %d", restarted.SightingCount())
	}

	// Recovery: the server asks its visitors for fresh updates.
	if n := restarted.RestoreVisitors(); n != 1 {
		t.Fatalf("RestoreVisitors = %d", n)
	}
	select {
	case oid := <-updateRequested:
		if oid != "o1" {
			t.Fatalf("update requested for %s", oid)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RequestUpdate never arrived")
	}
	if err := obj.Update(context.Background(), sightingAt("o1", geo.Pt(105, 100))); err != nil {
		t.Fatal(err)
	}
	if restarted.SightingCount() != 1 {
		t.Errorf("sightingDB not rebuilt: %d", restarted.SightingCount())
	}

	// Queries work again.
	ld, err := c.PosQuery(context.Background(), "o1")
	if err != nil {
		t.Fatal(err)
	}
	if ld.Pos != geo.Pt(105, 100) {
		t.Errorf("ld = %+v", ld)
	}
}

func TestCachesDisabledByDefault(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})
	if _, err := owner.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		root, _ := ls.dep.Server("r")
		return root.VisitorCount() == 1
	}, "path at root")
	remote := ls.newClientAt(t, "remote", geo.Pt(1400, 1400), client.Options{})
	for i := 0; i < 3; i++ {
		if _, err := remote.PosQuery(ctx(t), "o1"); err != nil {
			t.Fatal(err)
		}
	}
	entry, _ := ls.dep.Server("r.3")
	if got := entry.Metrics().Counter("pos_query_cache_agent").Value(); got != 0 {
		t.Errorf("cache hits with caches disabled: %d", got)
	}
	if got := entry.Metrics().Counter("pos_query_remote").Value(); got != 3 {
		t.Errorf("tree-routed queries = %d, want 3", got)
	}
}

var _ = msg.NodeID("") // keep the import for helpers above
