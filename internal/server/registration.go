package server

import (
	"context"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/msg"
	"locsvc/internal/store"
	"locsvc/internal/transport"
)

// handleRegister implements Algorithm 6-1 (registration processing). The
// request is routed through the hierarchy to the leaf responsible for the
// initial sighting's position; that leaf decides on the offered accuracy,
// creates its records, triggers createPath and answers the registering
// instance directly.
func (s *Server) handleRegister(ctx context.Context, req msg.RegisterReq) {
	s.met.Counter("register_seen").Inc()
	req.Hops++

	if !s.inArea(req.S.Pos) {
		// Forward registration upwards (lines 20-21).
		parent := s.parentForOID(req.S.OID)
		if parent == "" {
			// Root: the position lies outside the entire service
			// area; the registration fails definitively.
			s.respondToOrigin(req.Origin, msg.RegisterFailed{
				OpID:   req.Origin.OpID,
				Server: s.ID(),
			})
			return
		}
		s.sendOrCount(parent, req)
		return
	}

	if !s.cfg.IsLeaf() {
		// Forward registration downwards (lines 16-18).
		child, ok := s.childFor(req.S.Pos)
		if !ok {
			s.respondToOrigin(req.Origin, msg.RegisterFailed{OpID: req.Origin.OpID, Server: s.ID()})
			return
		}
		s.sendOrCount(msg.NodeID(child.ID), req)
		return
	}

	// Leaf server responsible for the object's position (lines 2-15).
	// A retried registration whose first application answered already —
	// only the response was lost — re-sends the remembered outcome
	// instead of re-applying (see the wire package's retry-idempotency
	// rules).
	if reply, ok := s.dedupe.lookup(req.Origin.Node, req.Seq); ok {
		s.met.Counter("register_deduped").Inc()
		s.respondToOrigin(req.Origin, reply)
		return
	}
	offered, ok := req.RegInfo.OfferedAcc(s.opts.AchievableAcc)
	if !ok {
		// Registration not successful (lines 13-14).
		s.met.Counter("register_failed").Inc()
		failed := msg.RegisterFailed{
			OpID:       req.Origin.OpID,
			Server:     s.ID(),
			Achievable: s.opts.AchievableAcc,
		}
		s.dedupe.remember(req.Origin.Node, req.Seq, failed)
		s.respondToOrigin(req.Origin, failed)
		return
	}

	// Line 5: create the forwarding path up to the root.
	if s.parent() != "" {
		s.forwardPath(s.parentForOID(req.S.OID), msg.CreatePath{
			OID: req.S.OID, Leaf: s.leafInfo(), SightingT: req.S.T,
		})
	}
	// Lines 6-11: create the visitor and sighting records.
	rec := store.VisitorRecord{
		OID:        req.S.OID,
		OfferedAcc: offered,
		RegInfo:    req.RegInfo,
		PathT:      req.S.T,
	}
	if err := s.visitors.Put(rec); err != nil {
		s.met.Counter("visitor_db_errors").Inc()
		s.respondToOrigin(req.Origin, msg.ErrorResFrom(err))
		return
	}
	s.pipe.Put(req.S)
	s.notePutCommitted()
	s.met.Counter("register_ok").Inc()

	// Line 12: answer the registering instance.
	res := msg.RegisterRes{
		OpID:       req.Origin.OpID,
		Agent:      s.ID(),
		AgentInfo:  s.leafInfo(),
		OfferedAcc: offered,
		Hops:       req.Hops,
	}
	s.dedupe.remember(req.Origin.Node, req.Seq, res)
	s.respondToOrigin(req.Origin, res)
}

// handleCreatePath implements the createPath half of Algorithm 6-1: every
// server on the leaf-to-root path records a forwarding reference to the
// child it received the message from.
func (s *Server) handleCreatePath(from msg.NodeID, req msg.CreatePath) {
	s.observeLeafInfo(req.Leaf)
	if s.cfg.IsLeaf() {
		// A direct-handover repair can deliver CreatePath to a leaf
		// only by misconfiguration; ignore.
		return
	}
	if _, err := s.visitors.PutIfNewer(store.VisitorRecord{
		OID: req.OID, ForwardRef: string(from), PathT: req.SightingT,
	}); err != nil {
		s.met.Counter("visitor_db_errors").Inc()
		return
	}
	// Forward upwards even when the local record was newer and refused
	// the update: the newer record may come from an intra-subtree
	// handover that never reached the ancestors, in which case this very
	// message carries the only information that re-points them onto this
	// subtree. Each ancestor applies or refuses independently by PathT.
	if s.parent() != "" {
		s.forwardPath(s.parentForOID(req.OID), req)
	}
}

// handleRemovePath tears a forwarding path down bottom-up: used by
// deregistration, soft-state expiry, and old-branch pruning after a direct
// handover. Two guards stop the removal where the path is still live:
// a handover prune carries the object's new position and never removes
// records at servers whose area contains it (the LCA and its ancestors,
// where old and new paths coincide); and a server only removes its record
// if the forwarding reference still points to the child the removal came
// from (the branch was not re-pointed meanwhile).
func (s *Server) handleRemovePath(from msg.NodeID, req msg.RemovePath) {
	if req.HasNewPos && s.inArea(req.NewPos) {
		return // ancestor of the new agent: record still needed
	}
	removed, err := s.visitors.RemoveIf(req.OID, func(rec store.VisitorRecord) bool {
		// A fresher sighting re-installed this record, or the path
		// was re-pointed away from the pruned branch: keep it.
		return !rec.PathT.After(req.SightingT) && rec.ForwardRef == string(from)
	})
	if err != nil {
		s.met.Counter("visitor_db_errors").Inc()
		return
	}
	if !removed {
		return
	}
	if s.parent() != "" {
		s.forwardPath(s.parentForOID(req.OID), req)
	}
}

// respondToOrigin sends an operation response directly to the node the
// operation originated at.
func (s *Server) respondToOrigin(origin msg.Origin, m msg.Message) {
	if origin.Node == "" {
		return
	}
	s.sendOrCount(origin.Node, m)
}

// sendOrCount sends one-way, counting failures instead of propagating them
// — message loss is part of the UDP service model.
func (s *Server) sendOrCount(to msg.NodeID, m msg.Message) {
	if err := s.node.Send(to, m); err != nil {
		s.met.Counter("send_errors").Inc()
	}
}

// forwardPath propagates a forwarding-path change (CreatePath, RemovePath)
// one hop with the PathRetry budget. Path messages are idempotent — every
// application is guarded by the sighting timestamp — but they are also the
// only copy of the information they carry: a lost CreatePath climb strands
// an ancestor without a record and turns later queries for the object into
// definitive not-founds. So unlike plain fan-out (where the query's own
// deadline bounds the damage), each hop re-sends until the peer's ack or
// the budget runs out. Runs asynchronously; path propagation is off the
// request path by design (Algorithm 6-1 answers the client before the
// climb completes).
func (s *Server) forwardPath(to msg.NodeID, m msg.Message) {
	pol := s.opts.PathRetry
	if !pol.Enabled() {
		s.sendOrCount(to, m)
		return
	}
	s.bgMu.Lock()
	if s.stopped {
		s.bgMu.Unlock()
		// Shutting down: one best-effort send instead of a retry loop
		// Close would have to wait out.
		s.sendOrCount(to, m)
		return
	}
	s.wg.Add(1)
	s.bgMu.Unlock()
	go func() {
		defer s.wg.Done()
		// Bound the whole budget so a goroutine never outlives its
		// usefulness: all attempts plus all maximal backoff draws.
		total := time.Duration(pol.MaxAttempts) * (pol.PerTryTimeout + pol.MaxBackoff)
		ctx, cancel := context.WithTimeout(context.Background(), total)
		defer cancel()
		// Abort outstanding attempts on shutdown: Close waits for this
		// goroutine before detaching from the network.
		go func() {
			select {
			case <-s.stop:
				cancel()
			case <-ctx.Done():
			}
		}()
		if _, err := transport.CallWithRetry(ctx, s.node, func() msg.NodeID { return to }, m, pol); err != nil {
			s.met.Counter("path_propagation_failed").Inc()
		}
	}()
}

// forward sends m to a hierarchy neighbor as a tracked one-way: the message
// goes out as a call so the peer's auto-acknowledgement (or an explicit
// response) feeds this node's per-peer breaker, and a swept timeout counts
// against the peer. The reply itself is deliberately not awaited — fan-out
// handlers return their results out-of-band to the query origin, exactly
// like sendOrCount — so forward costs one in-flight entry until the ack or
// the sweep, nothing more. A non-nil error means the message was NOT handed
// to the network (open breaker, unknown destination, failed write): the
// destination is unreachable right now, which degraded queries translate
// into dark-cover accounting instead of waiting out a timeout.
func (s *Server) forward(to msg.NodeID, m msg.Message) error {
	ctx, cancel := context.WithTimeout(context.Background(), s.opts.CallTimeout)
	defer cancel() // tracker keeps its own deadline; cancel only ends the slot wait
	if _, err := s.node.CallAsync(ctx, to, m); err != nil {
		s.met.Counter("send_errors").Inc()
		return err
	}
	return nil
}

// handleDeregister processes a deregistration at the object's agent: the
// local records are removed and the forwarding path is torn down.
func (s *Server) handleDeregister(_ context.Context, req msg.DeregisterReq) (msg.Message, error) {
	if !s.cfg.IsLeaf() {
		return nil, core.ErrBadRequest
	}
	if _, ok := s.visitors.Get(req.OID); !ok {
		return nil, core.ErrNotFound
	}
	lastT := s.opts.Clock()
	if sight, ok := s.sightings.Get(req.OID); ok && sight.T.After(lastT) {
		lastT = sight.T
	}
	if d, ok := s.sightings.RemoveDelta(req.OID); ok {
		s.noteRemovals([]store.Delta{d})
	}
	if _, err := s.visitors.Remove(req.OID); err != nil {
		s.met.Counter("visitor_db_errors").Inc()
	}
	if s.parent() != "" {
		s.forwardPath(s.parentForOID(req.OID), msg.RemovePath{OID: req.OID, SightingT: lastT})
	}
	s.met.Counter("deregister_ok").Inc()
	return msg.DeregisterRes{}, nil
}

// handleChangeAcc renegotiates the accuracy range at the agent
// (Section 3.1). On success the visitor record is updated and the new
// offered accuracy returned; on failure the old registration stays valid.
func (s *Server) handleChangeAcc(req msg.ChangeAccReq) (msg.Message, error) {
	if !s.cfg.IsLeaf() {
		return nil, core.ErrBadRequest
	}
	rec, ok := s.visitors.Get(req.OID)
	if !ok {
		return nil, core.ErrNotFound
	}
	ri := rec.RegInfo
	ri.DesAcc, ri.MinAcc = req.DesAcc, req.MinAcc
	if err := ri.Validate(); err != nil {
		return nil, core.ErrBadRequest
	}
	offered, ok := ri.OfferedAcc(s.opts.AchievableAcc)
	if !ok {
		return msg.ChangeAccRes{OK: false, OfferedAcc: s.opts.AchievableAcc}, nil
	}
	rec.RegInfo = ri
	rec.OfferedAcc = offered
	if err := s.visitors.Put(rec); err != nil {
		s.met.Counter("visitor_db_errors").Inc()
		return nil, err
	}
	return msg.ChangeAccRes{OK: true, OfferedAcc: offered}, nil
}
