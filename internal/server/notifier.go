package server

import (
	"context"
	"sync"
	"time"

	"locsvc/internal/msg"
	"locsvc/internal/transport"
)

// notifier owns outbound event delivery: per-destination bounded queues
// drained by on-demand goroutines that send with the PathRetry budget.
// The shape exists for backpressure isolation — a slow, lossy, or dead
// subscriber fills and stalls only its own queue while the event
// dispatcher (and the update pipeline behind it) keeps running, and other
// destinations drain unimpeded.
//
// Two queue disciplines per destination:
//
//   - Keyed, latest-wins: count reports ("count:<sub>") and predicate
//     transition notifications ("notify:<sub>"). Only the newest message
//     per key survives; superseded ones count event_notify_coalesced.
//     These messages carry absolute state, so delivering only the latest
//     is exactly the coalescing the pipeline promises.
//   - FIFO with a drop-oldest bound: meeting notifications, which are
//     discrete occurrences and cannot coalesce. Overflow drops the oldest
//     and counts event_notify_dropped; the periodic resync re-fires pairs
//     that are still meeting.
type notifier struct {
	s     *Server
	mu    sync.Mutex
	dests map[msg.NodeID]*notifyQueue
}

type notifyQueue struct {
	keyed    map[string]msg.Message
	order    []string // keys in arrival order, minus the ones superseded in place
	fifo     []msg.Message
	draining bool
}

func newNotifier(s *Server) *notifier {
	return &notifier{s: s, dests: make(map[msg.NodeID]*notifyQueue)}
}

func (n *notifier) queueFor(to msg.NodeID) *notifyQueue {
	q := n.dests[to]
	if q == nil {
		q = &notifyQueue{keyed: make(map[string]msg.Message)}
		n.dests[to] = q
	}
	return q
}

// EnqueueKeyed queues m for to, replacing any undelivered message under
// the same key.
func (n *notifier) EnqueueKeyed(to msg.NodeID, key string, m msg.Message) {
	n.mu.Lock()
	q := n.queueFor(to)
	if _, ok := q.keyed[key]; ok {
		n.s.met.Counter("event_notify_coalesced").Inc()
	} else {
		q.order = append(q.order, key)
	}
	q.keyed[key] = m
	n.startDrainLocked(to, q)
	n.mu.Unlock()
}

// EnqueueFIFO queues m for to in arrival order, dropping the oldest
// queued message when the destination's queue is at its bound.
func (n *notifier) EnqueueFIFO(to msg.NodeID, m msg.Message) {
	n.mu.Lock()
	q := n.queueFor(to)
	if len(q.fifo) >= n.s.opts.EventNotifyQueueDepth {
		q.fifo = q.fifo[1:]
		n.s.met.Counter("event_notify_dropped").Inc()
	}
	q.fifo = append(q.fifo, m)
	n.startDrainLocked(to, q)
	n.mu.Unlock()
}

// startDrainLocked spins up the destination's drain goroutine if it is
// not already running. Caller holds n.mu.
func (n *notifier) startDrainLocked(to msg.NodeID, q *notifyQueue) {
	if q.draining {
		return
	}
	s := n.s
	s.bgMu.Lock()
	if s.stopped {
		s.bgMu.Unlock()
		// Shutting down: leave the queue; Close is tearing the node down.
		return
	}
	s.wg.Add(1)
	s.bgMu.Unlock()
	q.draining = true
	go n.drain(to)
}

// drain delivers one destination's queue to empty, keyed messages first
// (they carry the freshest state), then FIFO. Sends within one
// destination are serialized, so ordering per subscription is preserved
// modulo retry-induced duplicates — which receivers dedupe by seq.
func (n *notifier) drain(to msg.NodeID) {
	s := n.s
	defer s.wg.Done()
	for {
		n.mu.Lock()
		q := n.dests[to]
		var m msg.Message
		switch {
		case len(q.order) > 0:
			key := q.order[0]
			q.order = q.order[1:]
			m = q.keyed[key]
			delete(q.keyed, key)
		case len(q.fifo) > 0:
			m = q.fifo[0]
			q.fifo = q.fifo[1:]
		default:
			q.draining = false
			n.mu.Unlock()
			return
		}
		n.mu.Unlock()
		select {
		case <-s.stop:
			// Best-effort flush on shutdown, no retry loop to wait out.
			s.sendOrCount(to, m)
			continue
		default:
		}
		n.send(to, m)
	}
}

// send delivers one message with the PathRetry budget — the same
// reasoning as forwardPath: an event notification is the only copy of the
// transition it announces, so each is re-sent until the peer's ack or the
// budget runs out.
func (n *notifier) send(to msg.NodeID, m msg.Message) {
	s := n.s
	pol := s.opts.PathRetry
	if !pol.Enabled() {
		s.sendOrCount(to, m)
		return
	}
	total := time.Duration(pol.MaxAttempts) * (pol.PerTryTimeout + pol.MaxBackoff)
	ctx, cancel := context.WithTimeout(context.Background(), total)
	defer cancel()
	go func() {
		select {
		case <-s.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	if _, err := transport.CallWithRetry(ctx, s.node, func() msg.NodeID { return to }, m, pol); err != nil {
		s.met.Counter("event_notify_failed").Inc()
	}
}
