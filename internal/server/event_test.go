package server_test

import (
	"sync"
	"testing"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
	"locsvc/internal/server"
)

// notifyRecorder collects event notifications thread-safely.
type notifyRecorder struct {
	mu sync.Mutex
	ns []msg.EventNotify
}

func (r *notifyRecorder) add(n msg.EventNotify) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ns = append(r.ns, n)
}

func (r *notifyRecorder) snapshot() []msg.EventNotify {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]msg.EventNotify, len(r.ns))
	copy(out, r.ns)
	return out
}

func TestCountAboveEventSingleLeaf(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	sub := ls.newClientAt(t, "subscriber", geo.Pt(100, 100), client.Options{})
	owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})

	var rec notifyRecorder
	area := core.AreaFromRect(geo.R(50, 50, 250, 250)) // inside leaf r.0
	if err := sub.SubscribeCountAbove("crowd", area, 50, 2, rec.add); err != nil {
		t.Fatal(err)
	}

	// First object: below threshold, no notification.
	if _, err := owner.Register(ctx(t), sightingAt("a", geo.Pt(100, 100)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}
	// Second object: threshold reached → Fired=true.
	if _, err := owner.Register(ctx(t), sightingAt("b", geo.Pt(150, 150)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		ns := rec.snapshot()
		return len(ns) == 1 && ns[0].Fired && ns[0].Total == 2
	}, "threshold notification")

	// One object leaves the area → Fired=false transition.
	bObj, err := owner.Register(ctx(t), sightingAt("c", geo.Pt(160, 160)), 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = bObj
	// Removing two objects drops the count below the threshold.
	if err := deregisterByID(t, ls, owner, "a", geo.Pt(100, 100)); err != nil {
		t.Fatal(err)
	}
	if err := deregisterByID(t, ls, owner, "b", geo.Pt(150, 150)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		ns := rec.snapshot()
		return len(ns) >= 2 && !ns[len(ns)-1].Fired
	}, "below-threshold notification")
}

// deregisterByID re-registers a handle-free deregistration: registers are
// done through owner, so we reconstruct a handle by registering again is
// not possible — instead we call the agent directly through a fresh handle.
func deregisterByID(t *testing.T, ls *testLS, owner *client.Client, id string, p geo.Point) error {
	t.Helper()
	// Re-register returns the same agent (records are overwritten), so a
	// fresh handle is a practical way to obtain one for deregistration.
	obj, err := owner.Register(ctx(t), sightingAt(id, p), 10, 50, 3)
	if err != nil {
		return err
	}
	return obj.Deregister(ctx(t))
}

func TestCountAboveEventSpanningLeaves(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	sub := ls.newClientAt(t, "subscriber", geo.Pt(100, 100), client.Options{})
	owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})

	var rec notifyRecorder
	// Area straddles all four leaves around the center.
	area := core.AreaFromRect(geo.R(650, 650, 850, 850))
	if err := sub.SubscribeCountAbove("center", area, 50, 2, rec.add); err != nil {
		t.Fatal(err)
	}

	// Two objects in different leaves of the area: the coordinator must
	// aggregate across leaves.
	if _, err := owner.Register(ctx(t), sightingAt("sw", geo.Pt(700, 700)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Register(ctx(t), sightingAt("ne", geo.Pt(800, 800)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		ns := rec.snapshot()
		return len(ns) >= 1 && ns[len(ns)-1].Fired && ns[len(ns)-1].Total == 2
	}, "cross-leaf aggregation")
}

func TestMeetingEvent(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	sub := ls.newClientAt(t, "subscriber", geo.Pt(100, 100), client.Options{})
	owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})

	var rec notifyRecorder
	area := core.AreaFromRect(geo.R(0, 0, 750, 750))
	if err := sub.SubscribeMeeting("meet", area, 20, rec.add); err != nil {
		t.Fatal(err)
	}

	if _, err := owner.Register(ctx(t), sightingAt("alice", geo.Pt(100, 100)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}
	// Bob registers 200 m away: no meeting.
	bob, err := owner.Register(ctx(t), sightingAt("bob", geo.Pt(300, 100)), 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.snapshot()) != 0 {
		t.Fatal("meeting fired while objects far apart")
	}
	// Bob walks over to Alice.
	if err := bob.Update(ctx(t), sightingAt("bob", geo.Pt(110, 100))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		ns := rec.snapshot()
		if len(ns) != 1 {
			return false
		}
		n := ns[0]
		return n.Fired && len(n.Objs) == 2 && n.Objs[0] == "alice" && n.Objs[1] == "bob"
	}, "meeting notification")

	// Staying together must not re-fire.
	if err := bob.Update(ctx(t), sightingAt("bob", geo.Pt(112, 100))); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.snapshot()); got != 1 {
		t.Errorf("meeting re-fired: %d notifications", got)
	}
}

func TestUnsubscribeStopsNotifications(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	sub := ls.newClientAt(t, "subscriber", geo.Pt(100, 100), client.Options{})
	owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})

	var rec notifyRecorder
	area := core.AreaFromRect(geo.R(50, 50, 250, 250))
	if err := sub.SubscribeCountAbove("tmp", area, 50, 1, rec.add); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Register(ctx(t), sightingAt("a", geo.Pt(100, 100)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(rec.snapshot()) == 1 }, "first notification")

	if err := sub.Unsubscribe("tmp", area); err != nil {
		t.Fatal(err)
	}
	// Allow the unsubscription to propagate, then trigger more changes.
	waitFor(t, func() bool {
		leaf, _ := ls.dep.Server("r.0")
		return leaf.EventSubCountForTest() == 0
	}, "subscription removed on leaf")
	if _, err := owner.Register(ctx(t), sightingAt("b", geo.Pt(120, 120)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.snapshot()); got != 1 {
		t.Errorf("notification after unsubscribe: %d total", got)
	}
}

func TestSubscriptionValidation(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	sub := ls.newClientAt(t, "subscriber", geo.Pt(100, 100), client.Options{})
	if err := sub.SubscribeCountAbove("x", core.Area{}, 50, 2, func(msg.EventNotify) {}); err == nil {
		t.Error("empty area accepted")
	}
	if err := sub.SubscribeCountAbove("x", core.AreaFromRect(geo.R(0, 0, 1, 1)), 50, 0, func(msg.EventNotify) {}); err == nil {
		t.Error("zero threshold accepted")
	}
	if err := sub.SubscribeMeeting("y", core.AreaFromRect(geo.R(0, 0, 1, 1)), 0, func(msg.EventNotify) {}); err == nil {
		t.Error("zero distance accepted")
	}
}
