package server

import (
	"sync"
	"sync/atomic"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
	"locsvc/internal/spatial"
	"locsvc/internal/store"
)

// The event mechanism implements the predicate subscriptions sketched in
// the paper's introduction ("more than five objects are in a certain
// area", "two users of the system meet") and named as future work in
// Section 8. Subscriptions are routed through the hierarchy exactly like
// range queries: every leaf whose service area overlaps the subscription
// area installs it; the subscriber's entry server is the coordinator that
// aggregates per-leaf counts and notifies on predicate transitions.
//
// # The delta pipeline
//
// Evaluation is delta-driven. The store's commit path (UpdatePipeline
// group commits, removals, soft-state expiry) emits store.Delta records —
// op, object, old position, new position — which a single dispatcher
// goroutine per leaf consumes from a bounded queue. Subscription regions
// live in a spatial.RectIndex keyed by subscription id, so one delta is
// matched against only the subscriptions whose regions contain its old or
// new position (two point stabs, O(log S + matches)) instead of being
// re-evaluated against every installed subscription:
//
//   - Counting subscriptions maintain a membership set incrementally: a
//     delta flips one object in or out of the set (a boundary crossing),
//     and only a changed local count is reported to the coordinator. The
//     coordinator folds each seq-guarded report into a running total in
//     O(1) — it never re-sums all leaves.
//   - Meeting subscriptions track the currently-meeting pair set: a put
//     delta searches partners within the meeting distance around the new
//     position only; pairs that separate (or whose object left the area or
//     the store) are dropped, and a dropped pair re-fires if it re-meets.
//
// # Overflow → resync, and the evaluate-all oracle
//
// The delta queue never blocks a commit: when it is full the deltas are
// dropped, a flag is raised (plus the event_delta_overflow counter) and
// the dispatcher rebuilds every subscription's state from a full store
// scan — the resync — after finishing the item in hand. The same
// full-scan evaluator doubles as three other things: the initial
// evaluation at install, a periodic safety net (Options.EventResyncInterval)
// that also force-re-reports counts so a permanently lost report cannot
// leave the coordinator stale forever, and the evaluate-all oracle mode
// (Options.EventOracle) that re-evaluates every subscription synchronously
// after every mutation — the seed behavior, kept as the correctness oracle
// the property tests compare against and the baseline lsbench -table E
// measures.
//
// # Notification delivery
//
// Reports and notifications leave through the server's notifier: bounded
// per-destination queues drained by on-demand goroutines that send with
// the PathRetry budget, so a lost datagram does not lose a predicate
// transition and a slow or dead subscriber stalls only its own queue,
// never the update pipeline or other subscribers. Count reports and
// transition notifications coalesce latest-wins per subscription (the
// subscriber learns current state, not history); meeting notifications
// queue FIFO with a drop-oldest bound. Retries mean duplicates:
// coordinators drop stale EventCount seqs per leaf, and every EventNotify
// carries a seq the subscribing client dedupes on.
//
// Meeting predicates are evaluated leaf-locally: two objects whose
// positions come within the subscribed distance on the same leaf trigger a
// notification. Meetings exactly straddling a leaf boundary are missed —
// an accepted approximation, documented in DESIGN.md.

// leafSub is one installed subscription on a leaf server. The mutable
// fields (members, firedPairs, lastCount, seq) are guarded by events.mu;
// evalMu additionally serializes full re-evaluations so two concurrent
// oracle-mode scans cannot report against each other's store snapshots out
// of order.
type leafSub struct {
	sub msg.EventSubscribe
	// bounds is the region the subscription matches against: the area
	// enlarged by ReqAcc (count) or by the meeting distance (meeting).
	bounds geo.Rect
	evalMu sync.Mutex
	// members is the current set of locally qualifying objects of a count
	// subscription, maintained incrementally from deltas (indexed mode
	// only; oracle mode recounts from scratch).
	members   map[core.OID]bool
	lastCount int
	// seq numbers this leaf's outgoing count reports and meeting
	// notifications. The transport models UDP and deliveries are retried,
	// so receivers dedupe on it. It is clock-seeded at install; see
	// installSubscription.
	seq uint64
	// firedPairs is the set of currently-meeting pairs: a pair fires once
	// when it forms and is dropped when it separates (re-meeting re-fires).
	firedPairs map[pairKey]bool
}

type pairKey struct{ a, b core.OID }

func orderedPair(a, b core.OID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a: a, b: b}
}

// coordSub is the coordinator-side state of one subscription.
type coordSub struct {
	sub     msg.EventSubscribe
	perLeaf map[msg.NodeID]int
	// perLeafSeq remembers the newest report sequence applied per leaf;
	// older (reordered or re-sent) reports are discarded.
	perLeafSeq map[msg.NodeID]uint64
	// total is the running aggregate, folded incrementally from per-leaf
	// report deltas — O(1) per report. Reports carry absolute per-leaf
	// counts, so the fold self-heals after any accepted report.
	total int
	fired bool
	// notifySeq numbers transition notifications to the subscriber
	// (clock-seeded at creation, like leafSub.seq).
	notifySeq uint64
}

// events bundles the per-server event state.
type events struct {
	mu    sync.Mutex
	local map[string]*leafSub
	coord map[string]*coordSub
	// oracle selects synchronous evaluate-all after every mutation (the
	// seed behavior) instead of the indexed delta pipeline.
	oracle bool
	// idx spatially indexes installed subscription regions by SubID; nil
	// in oracle mode and on non-leaf servers.
	idx *spatial.RectIndex
	// work feeds the dispatcher goroutine; nil when idx is.
	work chan eventWork
	// resyncNeeded is raised when deltas were dropped (queue overflow);
	// the dispatcher resyncs all subscriptions at the next opportunity.
	resyncNeeded atomic.Bool
}

// eventWork is one dispatcher queue item: a committed delta batch, or a
// freshly installed subscription to evaluate.
type eventWork struct {
	deltas  []store.Delta
	install *leafSub
}

func newEvents(oracle bool, indexWorld geo.Rect, queueDepth int) *events {
	e := &events{
		local:  make(map[string]*leafSub),
		coord:  make(map[string]*coordSub),
		oracle: oracle,
	}
	if !oracle && !indexWorld.Empty() {
		e.idx = spatial.NewRectIndex(indexWorld)
		e.work = make(chan eventWork, queueDepth)
	}
	return e
}

// countReport is a pending leaf→coordinator count report, collected under
// events.mu and sent after it is released.
type countReport struct {
	sub   msg.EventSubscribe
	count int
	seq   uint64
}

// meetingFire is a pending meeting notification.
type meetingFire struct {
	sub  msg.EventSubscribe
	pair pairKey
	seq  uint64
}

// matchBounds returns the region a subscription matches sightings against.
func matchBounds(sub msg.EventSubscribe) geo.Rect {
	switch sub.Kind {
	case msg.EventMeeting:
		return sub.Area.Bounds().Enlarge(sub.Distance)
	default:
		return sub.Area.Bounds().Enlarge(sub.ReqAcc)
	}
}

// handleEventSubscribe routes and installs a subscription. Routing follows
// the range-query pattern: climb while part of the area is outside the
// receiver's service area, fan out to overlapping children.
func (s *Server) handleEventSubscribe(from msg.NodeID, sub msg.EventSubscribe) {
	bounds := sub.Area.Bounds().Enlarge(sub.ReqAcc)

	if s.cfg.IsLeaf() {
		// The subscriber's entry leaf coordinates the subscription even
		// when the area lies entirely on other leaves.
		if sub.Coordinator == s.ID() && from == sub.Subscriber {
			s.ensureCoordinator(sub)
		}
		if bounds.Intersects(s.cfg.SA.Bounds()) {
			s.installSubscription(sub)
		}
		// If the area extends beyond this leaf, keep routing from here.
		if sub.Coordinator == s.ID() && from == sub.Subscriber {
			if !s.cfg.SA.Bounds().ContainsRect(bounds) {
				if s.parent() != "" {
					s.sendOrCount(s.parentForKey(hashString(sub.SubID)), sub)
				}
			}
		}
		return
	}
	for _, child := range s.childRecords() {
		if msg.NodeID(child.ID) == from {
			continue
		}
		if bounds.Intersects(child.SA.Bounds()) {
			s.sendOrCount(msg.NodeID(child.ID), sub)
		}
	}
	if !s.cfg.SA.Bounds().ContainsRect(bounds) && !s.isParent(from) {
		if s.parent() != "" {
			s.sendOrCount(s.parentForKey(hashString(sub.SubID)), sub)
		}
	}
}

// installSubscription registers the subscription locally and triggers its
// initial evaluation (synchronously in oracle mode, through the dispatcher
// otherwise).
func (s *Server) installSubscription(sub msg.EventSubscribe) {
	e := s.events
	e.mu.Lock()
	ls, exists := e.local[sub.SubID]
	if !exists {
		ls = &leafSub{
			sub:       sub,
			bounds:    matchBounds(sub),
			lastCount: -1,
			// Seed the report sequence from the clock: a re-installed
			// subscription (unsubscribe + resubscribe under the same
			// SubID) starts above any sequence its previous incarnation
			// could have reached, so a stale in-flight report from the
			// old epoch cannot outrank fresh ones at the coordinator.
			seq:        uint64(s.opts.Clock().UnixNano()),
			members:    make(map[core.OID]bool),
			firedPairs: make(map[pairKey]bool),
		}
		e.local[sub.SubID] = ls
		if e.idx != nil {
			e.idx.Insert(sub.SubID, ls.bounds)
		}
		s.met.Gauge("event_subscriptions").Add(1)
	}
	if sub.Coordinator == s.ID() {
		s.ensureCoordinatorLocked(sub)
	}
	e.mu.Unlock()
	if e.work != nil {
		select {
		case e.work <- eventWork{install: ls}:
		default:
			// Queue full: the overflow resync will pick the new
			// subscription up along with everything else.
			e.resyncNeeded.Store(true)
			s.met.Counter("event_delta_overflow").Inc()
		}
		return
	}
	s.resyncSub(ls, false)
}

// ensureCoordinator registers this server as the subscription's
// coordinator (aggregating per-leaf reports), independently of whether
// the area touches this leaf's own service area.
func (s *Server) ensureCoordinator(sub msg.EventSubscribe) {
	s.events.mu.Lock()
	s.ensureCoordinatorLocked(sub)
	s.events.mu.Unlock()
}

func (s *Server) ensureCoordinatorLocked(sub msg.EventSubscribe) {
	if _, ok := s.events.coord[sub.SubID]; ok {
		return
	}
	s.events.coord[sub.SubID] = &coordSub{
		sub:        sub,
		perLeaf:    make(map[msg.NodeID]int),
		perLeafSeq: make(map[msg.NodeID]uint64),
		notifySeq:  uint64(s.opts.Clock().UnixNano()),
	}
}

// handleEventUnsubscribe removes the subscription, routed like subscribe.
func (s *Server) handleEventUnsubscribe(from msg.NodeID, req msg.EventUnsubscribe) {
	bounds := req.Area.Bounds()
	if s.cfg.IsLeaf() {
		e := s.events
		e.mu.Lock()
		if _, existed := e.local[req.SubID]; existed {
			delete(e.local, req.SubID)
			if e.idx != nil {
				e.idx.Remove(req.SubID)
			}
			s.met.Gauge("event_subscriptions").Add(-1)
		}
		delete(e.coord, req.SubID)
		e.mu.Unlock()
		if !s.isParent(from) && !s.cfg.SA.Bounds().ContainsRect(bounds) {
			if s.parent() != "" {
				s.sendOrCount(s.parentForKey(hashString(req.SubID)), req)
			}
		}
		return
	}
	for _, child := range s.childRecords() {
		if msg.NodeID(child.ID) == from {
			continue
		}
		if bounds.Intersects(child.SA.Bounds()) {
			s.sendOrCount(msg.NodeID(child.ID), req)
		}
	}
	if !s.cfg.SA.Bounds().ContainsRect(bounds) && !s.isParent(from) {
		if s.parent() != "" {
			s.sendOrCount(s.parentForKey(hashString(req.SubID)), req)
		}
	}
}

// handleEventCount folds one leaf's seq-guarded count report into the
// coordinator's running total and notifies the subscriber on predicate
// transitions. O(1) per report regardless of how many leaves participate.
func (s *Server) handleEventCount(req msg.EventCount) {
	s.events.mu.Lock()
	cs, ok := s.events.coord[req.SubID]
	if !ok {
		s.events.mu.Unlock()
		return
	}
	if req.Seq <= cs.perLeafSeq[req.Leaf] {
		// A newer report from this leaf was already applied; this one
		// was reordered in flight or is a retry duplicate.
		s.events.mu.Unlock()
		return
	}
	cs.perLeafSeq[req.Leaf] = req.Seq
	cs.total += req.Count - cs.perLeaf[req.Leaf]
	cs.perLeaf[req.Leaf] = req.Count
	nowFired := cs.total >= cs.sub.Threshold
	transition := nowFired != cs.fired
	cs.fired = nowFired
	total := cs.total
	sub := cs.sub
	var seq uint64
	if transition {
		cs.notifySeq++
		seq = cs.notifySeq
	}
	s.events.mu.Unlock()

	if transition {
		s.met.Counter("event_notifications").Inc()
		s.notify.EnqueueKeyed(sub.Subscriber, "notify:"+sub.SubID,
			msg.EventNotify{SubID: sub.SubID, Fired: nowFired, Total: total, Seq: seq})
	}
}

// ---------------------------------------------------------------------------
// The delta path (indexed mode).

// enqueueDeltas hands a committed delta batch to the dispatcher without
// ever blocking the committing goroutine: a full queue drops the batch and
// schedules a full resync instead.
func (s *Server) enqueueDeltas(ds []store.Delta) {
	if len(ds) == 0 {
		return
	}
	select {
	case s.events.work <- eventWork{deltas: ds}:
	default:
		s.events.resyncNeeded.Store(true)
		s.met.Counter("event_delta_overflow").Inc()
	}
}

// notePutCommitted runs after a pipeline Put on the mutation path. In
// indexed mode it is a no-op — the pipeline's OnCommit hook already fed
// the dispatcher; in oracle mode it re-evaluates every subscription, the
// seed behavior the benchmark baseline measures.
func (s *Server) notePutCommitted() {
	if s.events != nil && s.events.oracle {
		s.resyncAllSubs(false)
	}
}

// noteRemovals feeds removal deltas (deregistration, handover departure,
// soft-state expiry) into the event engine.
func (s *Server) noteRemovals(ds []store.Delta) {
	if s.events == nil || len(ds) == 0 {
		return
	}
	if s.events.work != nil {
		s.enqueueDeltas(ds)
		return
	}
	if s.events.oracle {
		s.resyncAllSubs(false)
	}
}

// eventDispatcher is the single consumer of the delta queue on a leaf in
// indexed mode. Running evaluation on one goroutine keeps the incremental
// state free of cross-evaluation races by construction; backpressure is
// the bounded queue plus the overflow→resync policy, never a blocked
// committer.
func (s *Server) eventDispatcher() {
	defer s.wg.Done()
	tick := time.NewTicker(s.opts.EventResyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case w := <-s.events.work:
			if w.install != nil {
				s.resyncSub(w.install, false)
			} else {
				s.applyDeltas(w.deltas)
			}
			if s.events.resyncNeeded.Swap(false) {
				s.resyncAllSubs(true)
			}
		case <-tick.C:
			// Periodic safety net: rebuild from the store and force
			// re-reports, healing anything a lost report or dropped
			// delta left stale.
			s.resyncAllSubs(true)
		}
	}
}

// applyDeltas matches one committed batch against the subscription index
// and applies each delta incrementally. Reports and notifications are
// collected under events.mu and sent after it is released.
func (s *Server) applyDeltas(ds []store.Delta) {
	e := s.events
	var reports []countReport
	var fires []meetingFire
	dirty := make(map[*leafSub]bool)
	e.mu.Lock()
	for i := range ds {
		d := ds[i]
		var seen map[*leafSub]bool
		visit := func(id string, _ geo.Rect) bool {
			ls := e.local[id]
			if ls == nil || seen[ls] {
				return true
			}
			if seen == nil {
				seen = make(map[*leafSub]bool, 4)
			}
			seen[ls] = true
			switch ls.sub.Kind {
			case msg.EventCountAbove:
				if s.applyCountDelta(ls, d) {
					dirty[ls] = true
				}
			case msg.EventMeeting:
				fires = s.applyMeetingDelta(ls, d, fires)
			}
			return true
		}
		// A delta touches a subscription if its old or new position lies
		// in the subscription's region — two point stabs.
		if d.HasOld {
			e.idx.Stab(d.Old, visit)
		}
		if d.Op == store.DeltaPut && (!d.HasOld || d.New != d.Old) {
			e.idx.Stab(d.New, visit)
		}
	}
	// One report per subscription per batch, however many deltas touched
	// it.
	for ls := range dirty {
		count := len(ls.members)
		if count != ls.lastCount {
			ls.lastCount = count
			ls.seq++
			reports = append(reports, countReport{sub: ls.sub, count: count, seq: ls.seq})
		}
	}
	e.mu.Unlock()
	for _, r := range reports {
		s.reportCount(r)
	}
	for _, f := range fires {
		s.fireMeeting(f)
	}
}

// applyCountDelta flips one object's membership in a count subscription
// and reports whether it changed. Caller holds events.mu.
func (s *Server) applyCountDelta(ls *leafSub, d store.Delta) bool {
	now := d.Op == store.DeltaPut && ls.bounds.ContainsClosed(d.New) &&
		s.countQualifies(ls.sub, d.OID, d.New)
	was := ls.members[d.OID]
	if now == was {
		return false
	}
	if now {
		ls.members[d.OID] = true
	} else {
		delete(ls.members, d.OID)
	}
	return true
}

// applyMeetingDelta updates one meeting subscription's pair set for one
// delta: partners are searched only within the meeting distance around the
// new position, pairs that separated are dropped, newly formed pairs are
// appended to fires. Caller holds events.mu.
func (s *Server) applyMeetingDelta(ls *leafSub, d store.Delta, fires []meetingFire) []meetingFire {
	sub := ls.sub
	var cur map[core.OID]bool
	if d.Op == store.DeltaPut && ls.bounds.ContainsClosed(d.New) {
		r := geo.RectAround(d.New, sub.Distance).Intersect(ls.bounds)
		s.sightings.SearchArea(r, func(sight core.Sighting) bool {
			if sight.OID != d.OID && sight.Pos.Dist(d.New) <= sub.Distance {
				if cur == nil {
					cur = make(map[core.OID]bool, 4)
				}
				cur[sight.OID] = true
			}
			return true
		})
	}
	// Pairs involving the object that are no longer meeting separate
	// silently; re-meeting later re-fires.
	for k := range ls.firedPairs {
		if k.a != d.OID && k.b != d.OID {
			continue
		}
		other := k.a
		if other == d.OID {
			other = k.b
		}
		if !cur[other] {
			delete(ls.firedPairs, k)
		}
	}
	for q := range cur {
		k := orderedPair(d.OID, q)
		if !ls.firedPairs[k] {
			ls.firedPairs[k] = true
			ls.seq++
			fires = append(fires, meetingFire{sub: sub, pair: k, seq: ls.seq})
		}
	}
	return fires
}

// ---------------------------------------------------------------------------
// The full-scan evaluator: oracle mode, install evaluation, and resync.

// resyncAllSubs re-evaluates every installed subscription from the store.
// force re-reports counts even when unchanged (the periodic safety net);
// oracle mode calls it unforced after every mutation.
func (s *Server) resyncAllSubs(force bool) {
	e := s.events
	e.mu.Lock()
	subs := make([]*leafSub, 0, len(e.local))
	for _, ls := range e.local {
		subs = append(subs, ls)
	}
	e.mu.Unlock()
	for _, ls := range subs {
		s.resyncSub(ls, force)
	}
}

// resyncSub rebuilds one subscription's state from a full store scan.
func (s *Server) resyncSub(ls *leafSub, force bool) {
	switch ls.sub.Kind {
	case msg.EventCountAbove:
		s.resyncCount(ls, force)
	case msg.EventMeeting:
		s.resyncMeeting(ls)
	}
}

// resyncCount recounts a subscription's qualifying objects from the store
// and reports a changed (or, when force is set, any) count to the
// coordinator. Scans run outside events.mu; evalMu keeps concurrent
// oracle-mode evaluations from reporting stale counts over fresh ones.
func (s *Server) resyncCount(ls *leafSub, force bool) {
	ls.evalMu.Lock()
	defer ls.evalMu.Unlock()
	sub := ls.sub
	indexed := s.events.idx != nil
	var members map[core.OID]bool
	if indexed {
		members = make(map[core.OID]bool)
	}
	count := 0
	s.sightings.SearchArea(ls.bounds, func(sight core.Sighting) bool {
		if s.countQualifies(sub, sight.OID, sight.Pos) {
			count++
			if members != nil {
				members[sight.OID] = true
			}
		}
		return true
	})

	s.events.mu.Lock()
	if s.events.local[sub.SubID] != ls {
		// Unsubscribed while the scan ran.
		s.events.mu.Unlock()
		return
	}
	if indexed {
		ls.members = members
	}
	changed := count != ls.lastCount
	ls.lastCount = count
	var seq uint64
	if changed || force {
		ls.seq++
		seq = ls.seq
	}
	s.events.mu.Unlock()
	if changed || force {
		s.reportCount(countReport{sub: sub, count: count, seq: seq})
	}
}

// resyncMeeting recomputes a subscription's currently-meeting pair set
// from the store and fires the pairs that formed since the last known
// state.
func (s *Server) resyncMeeting(ls *leafSub) {
	ls.evalMu.Lock()
	defer ls.evalMu.Unlock()
	sub := ls.sub
	var inArea []core.Sighting
	s.sightings.SearchArea(ls.bounds, func(sight core.Sighting) bool {
		inArea = append(inArea, sight)
		return true
	})
	meeting := make(map[pairKey]bool)
	for i := 0; i < len(inArea); i++ {
		for j := i + 1; j < len(inArea); j++ {
			if inArea[i].Pos.Dist(inArea[j].Pos) <= sub.Distance {
				meeting[orderedPair(inArea[i].OID, inArea[j].OID)] = true
			}
		}
	}

	var fires []meetingFire
	s.events.mu.Lock()
	if s.events.local[sub.SubID] != ls {
		s.events.mu.Unlock()
		return
	}
	for k := range meeting {
		if !ls.firedPairs[k] {
			ls.seq++
			fires = append(fires, meetingFire{sub: sub, pair: k, seq: ls.seq})
		}
	}
	ls.firedPairs = meeting
	s.events.mu.Unlock()
	for _, f := range fires {
		s.fireMeeting(f)
	}
}

// countQualifies decides membership of one object in a count
// subscription: position within the enlarged bounds is the caller's
// precondition; the object must still be a registered visitor and its
// location descriptor must majority-overlap the area.
func (s *Server) countQualifies(sub msg.EventSubscribe, oid core.OID, pos geo.Point) bool {
	rec, ok := s.visitors.Get(oid)
	if !ok {
		return false
	}
	ld := core.LocationDescriptor{Pos: pos, Acc: rec.OfferedAcc}
	// Membership for events uses majority overlap, a pragmatic middle
	// ground for "object is in the area".
	return sub.Area.RangeQualifies(ld, sub.ReqAcc, 0.5)
}

// reportCount sends one count report to the coordinator, coalescing
// latest-wins per subscription through the notifier.
func (s *Server) reportCount(r countReport) {
	s.notify.EnqueueKeyed(r.sub.Coordinator, "count:"+r.sub.SubID,
		msg.EventCount{SubID: r.sub.SubID, Leaf: s.ID(), Count: r.count, Seq: r.seq})
}

// fireMeeting sends one meeting notification to the subscriber.
func (s *Server) fireMeeting(f meetingFire) {
	s.met.Counter("event_notifications").Inc()
	s.notify.EnqueueFIFO(f.sub.Subscriber, msg.EventNotify{
		SubID: f.sub.SubID,
		Fired: true,
		Objs:  []core.OID{f.pair.a, f.pair.b},
		Seq:   f.seq,
	})
}
