package server

import (
	"sync"

	"locsvc/internal/core"
	"locsvc/internal/msg"
)

// The event mechanism implements the predicate subscriptions sketched in
// the paper's introduction ("more than five objects are in a certain
// area", "two users of the system meet") and named as future work in
// Section 8. Subscriptions are routed through the hierarchy exactly like
// range queries: every leaf whose service area overlaps the subscription
// area installs it. Each involved leaf recounts its local qualifying
// objects after every local mutation and reports changes to the
// coordinator (the subscriber's entry server), which maintains the global
// aggregate and sends EventNotify on predicate transitions.
//
// Meeting predicates are evaluated leaf-locally: two objects whose
// positions come within the subscribed distance on the same leaf trigger a
// notification. Meetings exactly straddling a leaf boundary are missed —
// an accepted approximation, documented in DESIGN.md.

// leafSub is one installed subscription on a leaf server.
type leafSub struct {
	sub msg.EventSubscribe
	// evalMu serializes re-evaluations of this subscription. Counting
	// qualifying objects reads the sighting store and cannot happen
	// under events.mu; without this lock two concurrent re-evaluations
	// could interleave so that a count computed against a stale store
	// snapshot overwrites — and reports to the coordinator — over a
	// newer one, leaving the aggregate stuck until the next mutation.
	evalMu    sync.Mutex
	lastCount int
	// seq numbers this leaf's count reports (guarded by events.mu, like
	// lastCount) so the coordinator can discard reordered deliveries.
	// It is clock-seeded at install; see installSubscription.
	seq uint64
	// fired tracks the local meeting-pair state to avoid repeated
	// notifications for the same pair.
	firedPairs map[pairKey]bool
}

type pairKey struct{ a, b core.OID }

func orderedPair(a, b core.OID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a: a, b: b}
}

// coordSub is the coordinator-side state of one subscription.
type coordSub struct {
	sub     msg.EventSubscribe
	perLeaf map[msg.NodeID]int
	// perLeafSeq remembers the newest report sequence applied per leaf;
	// older (reordered) reports are discarded.
	perLeafSeq map[msg.NodeID]uint64
	fired      bool
}

// events bundles the per-server event state.
type events struct {
	mu    sync.Mutex
	local map[string]*leafSub
	coord map[string]*coordSub
}

func newEvents() *events {
	return &events{
		local: make(map[string]*leafSub),
		coord: make(map[string]*coordSub),
	}
}

// handleEventSubscribe routes and installs a subscription. Routing follows
// the range-query pattern: climb while part of the area is outside the
// receiver's service area, fan out to overlapping children.
func (s *Server) handleEventSubscribe(from msg.NodeID, sub msg.EventSubscribe) {
	bounds := sub.Area.Bounds().Enlarge(sub.ReqAcc)

	if s.cfg.IsLeaf() {
		if bounds.Intersects(s.cfg.SA.Bounds()) {
			s.installSubscription(sub)
		}
		// The subscriber's entry leaf is also the coordinator; if the
		// area extends beyond this leaf, keep routing from here.
		if sub.Coordinator == s.ID() && from == sub.Subscriber {
			if !s.cfg.SA.Bounds().ContainsRect(bounds) {
				if s.parent() != "" {
					s.sendOrCount(s.parentForKey(hashString(sub.SubID)), sub)
				}
			}
		}
		return
	}
	for _, child := range s.cfg.Children {
		if msg.NodeID(child.ID) == from {
			continue
		}
		if bounds.Intersects(child.SA.Bounds()) {
			s.sendOrCount(msg.NodeID(child.ID), sub)
		}
	}
	if !s.cfg.SA.Bounds().ContainsRect(bounds) && !s.isParent(from) {
		if s.parent() != "" {
			s.sendOrCount(s.parentForKey(hashString(sub.SubID)), sub)
		}
	}
}

// installSubscription registers the subscription locally and reports the
// initial count.
func (s *Server) installSubscription(sub msg.EventSubscribe) {
	s.events.mu.Lock()
	ls, exists := s.events.local[sub.SubID]
	if !exists {
		ls = &leafSub{
			sub:       sub,
			lastCount: -1,
			// Seed the report sequence from the clock: a re-installed
			// subscription (unsubscribe + resubscribe under the same
			// SubID) starts above any sequence its previous incarnation
			// could have reached, so a stale in-flight report from the
			// old epoch cannot outrank fresh ones at the coordinator.
			seq:        uint64(s.opts.Clock().UnixNano()),
			firedPairs: make(map[pairKey]bool),
		}
		s.events.local[sub.SubID] = ls
	}
	s.events.mu.Unlock()
	if sub.Coordinator == s.ID() {
		s.events.mu.Lock()
		if _, ok := s.events.coord[sub.SubID]; !ok {
			s.events.coord[sub.SubID] = &coordSub{
				sub:        sub,
				perLeaf:    make(map[msg.NodeID]int),
				perLeafSeq: make(map[msg.NodeID]uint64),
			}
		}
		s.events.mu.Unlock()
	}
	s.met.Counter("event_subscriptions").Inc()
	s.reevaluateSub(ls)
}

// handleEventUnsubscribe removes the subscription, routed like subscribe.
func (s *Server) handleEventUnsubscribe(from msg.NodeID, req msg.EventUnsubscribe) {
	bounds := req.Area.Bounds()
	if s.cfg.IsLeaf() {
		s.events.mu.Lock()
		delete(s.events.local, req.SubID)
		delete(s.events.coord, req.SubID)
		s.events.mu.Unlock()
		if !s.isParent(from) && !s.cfg.SA.Bounds().ContainsRect(bounds) {
			if s.parent() != "" {
				s.sendOrCount(s.parentForKey(hashString(req.SubID)), req)
			}
		}
		return
	}
	for _, child := range s.cfg.Children {
		if msg.NodeID(child.ID) == from {
			continue
		}
		if bounds.Intersects(child.SA.Bounds()) {
			s.sendOrCount(msg.NodeID(child.ID), req)
		}
	}
	if !s.cfg.SA.Bounds().ContainsRect(bounds) && !s.isParent(from) {
		if s.parent() != "" {
			s.sendOrCount(s.parentForKey(hashString(req.SubID)), req)
		}
	}
}

// handleEventCount aggregates one leaf's count at the coordinator and
// notifies the subscriber on predicate transitions.
func (s *Server) handleEventCount(req msg.EventCount) {
	s.events.mu.Lock()
	cs, ok := s.events.coord[req.SubID]
	if !ok {
		s.events.mu.Unlock()
		return
	}
	if req.Seq <= cs.perLeafSeq[req.Leaf] {
		// A newer report from this leaf was already applied; this one
		// was reordered in flight.
		s.events.mu.Unlock()
		return
	}
	cs.perLeafSeq[req.Leaf] = req.Seq
	cs.perLeaf[req.Leaf] = req.Count
	total := 0
	for _, c := range cs.perLeaf {
		total += c
	}
	nowFired := total >= cs.sub.Threshold
	transition := nowFired != cs.fired
	cs.fired = nowFired
	subscriber := cs.sub.Subscriber
	subID := cs.sub.SubID
	s.events.mu.Unlock()

	if transition {
		s.met.Counter("event_notifications").Inc()
		s.sendOrCount(subscriber, msg.EventNotify{SubID: subID, Fired: nowFired, Total: total})
	}
}

// notifySightingsChanged is called after every local sighting mutation on a
// leaf; it re-evaluates all installed subscriptions.
func (s *Server) notifySightingsChanged() {
	if s.events == nil {
		return
	}
	s.events.mu.Lock()
	subs := make([]*leafSub, 0, len(s.events.local))
	for _, ls := range s.events.local {
		subs = append(subs, ls)
	}
	s.events.mu.Unlock()
	for _, ls := range subs {
		s.reevaluateSub(ls)
	}
}

// reevaluateSub recomputes one subscription's local state. Evaluations are
// serialized per subscription (see leafSub.evalMu); a mutation arriving
// mid-evaluation triggers its own evaluation afterwards, so the last
// reported state always reflects the newest store contents.
func (s *Server) reevaluateSub(ls *leafSub) {
	ls.evalMu.Lock()
	defer ls.evalMu.Unlock()
	switch ls.sub.Kind {
	case msg.EventCountAbove:
		s.reevaluateCount(ls)
	case msg.EventMeeting:
		s.reevaluateMeeting(ls)
	}
}

// reevaluateCount counts local qualifying objects and reports changes to
// the coordinator.
func (s *Server) reevaluateCount(ls *leafSub) {
	sub := ls.sub
	enlarged := sub.Area.Bounds().Enlarge(sub.ReqAcc)
	count := 0
	s.sightings.SearchArea(enlarged, func(sight core.Sighting) bool {
		rec, ok := s.visitors.Get(sight.OID)
		if !ok {
			return true
		}
		ld := core.LocationDescriptor{Pos: sight.Pos, Acc: rec.OfferedAcc}
		// Membership for events uses majority overlap, a pragmatic
		// middle ground for "object is in the area".
		if sub.Area.RangeQualifies(ld, sub.ReqAcc, 0.5) {
			count++
		}
		return true
	})

	s.events.mu.Lock()
	changed := count != ls.lastCount
	ls.lastCount = count
	var seq uint64
	if changed {
		ls.seq++
		seq = ls.seq
	}
	s.events.mu.Unlock()
	if changed {
		s.sendOrCount(sub.Coordinator, msg.EventCount{SubID: sub.SubID, Leaf: s.ID(), Count: count, Seq: seq})
	}
}

// reevaluateMeeting checks all local object pairs inside the subscription
// area for proximity below the subscribed distance.
func (s *Server) reevaluateMeeting(ls *leafSub) {
	sub := ls.sub
	enlarged := sub.Area.Bounds().Enlarge(sub.Distance)
	var inArea []core.Sighting
	s.sightings.SearchArea(enlarged, func(sight core.Sighting) bool {
		inArea = append(inArea, sight)
		return true
	})
	for i := 0; i < len(inArea); i++ {
		for j := i + 1; j < len(inArea); j++ {
			key := orderedPair(inArea[i].OID, inArea[j].OID)
			meeting := inArea[i].Pos.Dist(inArea[j].Pos) <= sub.Distance
			s.events.mu.Lock()
			was := ls.firedPairs[key]
			if meeting && !was {
				ls.firedPairs[key] = true
			} else if !meeting && was {
				delete(ls.firedPairs, key)
			}
			s.events.mu.Unlock()
			if meeting && !was {
				s.met.Counter("event_notifications").Inc()
				s.sendOrCount(sub.Subscriber, msg.EventNotify{
					SubID: sub.SubID,
					Fired: true,
					Objs:  []core.OID{key.a, key.b},
				})
			}
		}
	}
}
