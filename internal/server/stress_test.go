package server_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/msg"
	"locsvc/internal/server"
)

// TestSystemStress drives the whole system concurrently — moving objects
// triggering handovers, clients querying from every leaf, soft-state expiry
// running — and verifies global invariants at the end: no lost objects, no
// duplicated agents, consistent forwarding paths.
func TestSystemStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	spec := hierarchy.Spec{
		RootArea: geo.R(0, 0, 1600, 1600),
		Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}, {Rows: 2, Cols: 2}},
	}
	// Soft-state expiry stays off: objects go quiet once their mover
	// finishes, and this test checks path invariants, not expiry (which
	// TestSoftStateExpiry covers).
	ls := newTestLS(t, spec, server.Options{
		AchievableAcc:   10,
		EnableAreaCache: true, EnableAgentCache: true,
	})

	const numObjects = 64
	const workers = 8
	type tracked struct {
		mu  sync.Mutex
		obj *client.TrackedObject
		pos geo.Point
	}
	objs := make([]*tracked, numObjects)
	owner := ls.newClientAt(t, "owner", geo.Pt(10, 10), client.Options{Timeout: 10 * time.Second})
	for i := range objs {
		p := geo.Pt(float64(50+i*24), float64(50+(i*37)%1500))
		obj, err := owner.Register(ctx(t), sightingAt(fmt.Sprintf("o%d", i), p), 10, 50, 30)
		if err != nil {
			t.Fatal(err)
		}
		objs[i] = &tracked{obj: obj, pos: p}
	}
	waitFor(t, func() bool { return ls.dep.RootVisitorCount() == numObjects }, "paths complete")

	var wg sync.WaitGroup
	var moveErrs, queryErrs, querySuccess atomic.Int64
	stop := make(chan struct{})

	// Movers: each worker owns a slice of objects and random-walks them
	// (handover-heavy: steps of up to 180 m).
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 60; i++ {
				tr := objs[(w*numObjects/workers+i)%numObjects]
				tr.mu.Lock()
				p := tr.pos
				p.X += (rng.Float64()*2 - 1) * 180
				p.Y += (rng.Float64()*2 - 1) * 180
				p = geo.R(1, 1, 1599, 1599).ClampPoint(p)
				err := tr.obj.Update(context.Background(), core.Sighting{
					OID: tr.obj.OID(), T: time.Now(), Pos: p, SensAcc: 5,
				})
				if err == nil {
					tr.pos = p
				} else {
					moveErrs.Add(1)
				}
				tr.mu.Unlock()
			}
		}(w)
	}

	// Queriers: position and range queries from every leaf while the
	// movers run. Transient not-found during a handover is tolerated;
	// anything else is not.
	leaves := ls.dep.Leaves()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			entry := leaves[w%len(leaves)]
			cl, err := client.New(ls.net, msg.NodeID(fmt.Sprintf("stress-q%d", w)), entry, client.Options{Timeout: 10 * time.Second})
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < 40; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(2) == 0 {
					oid := core.OID(fmt.Sprintf("o%d", rng.Intn(numObjects)))
					if _, err := cl.PosQuery(context.Background(), oid); err != nil {
						if errors.Is(err, core.ErrNotFound) {
							queryErrs.Add(1) // transient during handover
						} else {
							t.Errorf("pos query: %v", err)
						}
					} else {
						querySuccess.Add(1)
					}
				} else {
					x, y := rng.Float64()*1400, rng.Float64()*1400
					if _, err := cl.RangeQueryRect(context.Background(), geo.R(x, y, x+200, y+200), 50, 0.5); err != nil {
						t.Errorf("range query: %v", err)
					} else {
						querySuccess.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)

	if moveErrs.Load() > 0 {
		t.Errorf("%d update errors", moveErrs.Load())
	}
	if querySuccess.Load() == 0 {
		t.Fatal("no query succeeded")
	}
	// Transient misses must be rare relative to successes.
	if e, s := queryErrs.Load(), querySuccess.Load(); e*5 > s {
		t.Errorf("too many transient misses: %d vs %d successes", e, s)
	}

	// Let asynchronous path maintenance settle, then check invariants.
	deadline := time.Now().Add(5 * time.Second)
	for ls.dep.RootVisitorCount() != numObjects && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := ls.dep.RootVisitorCount(); got != numObjects {
		t.Errorf("root paths unstable: %d/%d", got, numObjects)
		root, _ := ls.dep.Server(ls.dep.Root())
		for i := 0; i < numObjects; i++ {
			oid := core.OID(fmt.Sprintf("o%d", i))
			if _, ok := root.VisitorForTest(oid); !ok {
				dumpObject(t, ls, oid)
			}
		}
	}

	// Invariant 1: every object has exactly one agent (one sighting
	// across all leaves).
	agentCount := map[core.OID]int{}
	for _, leaf := range leaves {
		srv, _ := ls.dep.Server(leaf)
		for i := 0; i < numObjects; i++ {
			oid := core.OID(fmt.Sprintf("o%d", i))
			if rec, ok := srv.VisitorForTest(oid); ok && rec.ForwardRef == "" {
				agentCount[oid]++
			}
		}
	}
	for i := 0; i < numObjects; i++ {
		oid := core.OID(fmt.Sprintf("o%d", i))
		if agentCount[oid] != 1 {
			t.Errorf("object %s has %d agents", oid, agentCount[oid])
		}
	}

	// Invariant 2: every object remains queryable with its last accepted
	// position.
	final := ls.newClientAt(t, "final", geo.Pt(800, 800), client.Options{Timeout: 10 * time.Second})
	for _, tr := range objs {
		ld, err := final.PosQuery(ctx(t), tr.obj.OID())
		if err != nil {
			t.Errorf("final query %s: %v", tr.obj.OID(), err)
			dumpObject(t, ls, tr.obj.OID())
			continue
		}
		tr.mu.Lock()
		want := tr.pos
		tr.mu.Unlock()
		if ld.Pos != want {
			t.Errorf("object %s at %v, want %v", tr.obj.OID(), ld.Pos, want)
		}
	}
}
