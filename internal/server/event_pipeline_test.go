package server_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/msg"
	"locsvc/internal/server"
	"locsvc/internal/transport"
)

// eventScenarioSub is one count subscription of the randomized scenario.
type eventScenarioSub struct {
	id        string
	area      core.Area
	reqAcc    float64
	threshold int
}

// eventScenarioMeet is one meeting subscription of the randomized scenario.
type eventScenarioMeet struct {
	id       string
	area     core.Area
	distance float64
}

// TestEventPipelineOracleParity drives an identical randomized scenario —
// registrations, moves (including cross-leaf handovers), deregistrations,
// re-registrations, and mid-stream subscribe/unsubscribe — through both
// event engines and checks that each converges to the ground truth computed
// from the final object positions: per-subscription aggregate counts at the
// coordinator, and per-leaf currently-meeting pair sets. The indexed engine
// (incremental deltas) must be observationally equivalent to the
// evaluate-all oracle.
func TestEventPipelineOracleParity(t *testing.T) {
	for _, mode := range []struct {
		name   string
		oracle bool
	}{
		{"indexed", false},
		{"oracle", true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			runEventScenario(t, mode.oracle)
		})
	}
}

func runEventScenario(t *testing.T, oracle bool) {
	const (
		numObjects = 24
		steps      = 120
		offeredAcc = 10 // achievable 10, desired 10 → offered 10
	)
	ls := newTestLS(t, quadSpec(), server.Options{
		EventOracle:         oracle,
		EventResyncInterval: 200 * time.Millisecond,
	})
	rng := rand.New(rand.NewSource(42))
	subscriber := ls.newClientAt(t, "subscriber", geo.Pt(100, 100), client.Options{})
	owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})

	randPos := func() geo.Point {
		return geo.Pt(10+rng.Float64()*1480, 10+rng.Float64()*1480)
	}
	randArea := func(maxSide float64) core.Area {
		w := 50 + rng.Float64()*maxSide
		h := 50 + rng.Float64()*maxSide
		x := rng.Float64() * (1500 - w)
		y := rng.Float64() * (1500 - h)
		return core.AreaFromRect(geo.R(x, y, x+w, y+h))
	}

	// Fixed count subscriptions, several sized to straddle leaves.
	var counts []eventScenarioSub
	for i := 0; i < 8; i++ {
		cs := eventScenarioSub{
			id:        fmt.Sprintf("cnt-%d", i),
			area:      randArea(500),
			reqAcc:    25,
			threshold: 1 + rng.Intn(6),
		}
		if err := subscriber.SubscribeCountAbove(cs.id, cs.area, cs.reqAcc, cs.threshold, func(msg.EventNotify) {}); err != nil {
			t.Fatal(err)
		}
		counts = append(counts, cs)
	}
	var meets []eventScenarioMeet
	for i := 0; i < 3; i++ {
		ms := eventScenarioMeet{
			id:       fmt.Sprintf("meet-%d", i),
			area:     randArea(600),
			distance: 25 + rng.Float64()*50,
		}
		if err := subscriber.SubscribeMeeting(ms.id, ms.area, ms.distance, func(msg.EventNotify) {}); err != nil {
			t.Fatal(err)
		}
		meets = append(meets, ms)
	}

	// The object population: alive objects have a handle and a position.
	handles := make(map[core.OID]*client.TrackedObject)
	pos := make(map[core.OID]geo.Point)
	oids := make([]core.OID, numObjects)
	for i := range oids {
		oids[i] = core.OID(fmt.Sprintf("obj-%d", i))
		p := randPos()
		obj, err := owner.Register(ctx(t), sightingAt(string(oids[i]), p), offeredAcc, 50, 3)
		if err != nil {
			t.Fatal(err)
		}
		handles[oids[i]] = obj
		pos[oids[i]] = p
	}

	churn := 0
	churnActive := ""
	var churnSub eventScenarioSub
	for step := 0; step < steps; step++ {
		oid := oids[rng.Intn(numObjects)]
		switch op := rng.Intn(10); {
		case op < 7: // move (possibly across a leaf boundary → handover)
			if handles[oid] == nil {
				continue
			}
			p := randPos()
			if err := handles[oid].Update(ctx(t), sightingAt(string(oid), p)); err != nil {
				t.Fatalf("step %d: update %s: %v", step, oid, err)
			}
			pos[oid] = p
		case op < 8: // deregister
			if handles[oid] == nil {
				continue
			}
			if err := handles[oid].Deregister(ctx(t)); err != nil {
				t.Fatalf("step %d: deregister %s: %v", step, oid, err)
			}
			handles[oid] = nil
			delete(pos, oid)
		case op < 9: // re-register a deregistered object
			if handles[oid] != nil {
				continue
			}
			p := randPos()
			obj, err := owner.Register(ctx(t), sightingAt(string(oid), p), offeredAcc, 50, 3)
			if err != nil {
				t.Fatalf("step %d: register %s: %v", step, oid, err)
			}
			handles[oid] = obj
			pos[oid] = p
		default: // mid-stream subscription churn
			if churnActive != "" {
				if err := subscriber.Unsubscribe(churnActive, churnSub.area); err != nil {
					t.Fatal(err)
				}
				churnActive = ""
			} else {
				churn++
				churnSub = eventScenarioSub{
					id:        fmt.Sprintf("churn-%d", churn),
					area:      randArea(400),
					reqAcc:    25,
					threshold: 1 + rng.Intn(4),
				}
				if err := subscriber.SubscribeCountAbove(churnSub.id, churnSub.area, churnSub.reqAcc, churnSub.threshold, func(msg.EventNotify) {}); err != nil {
					t.Fatal(err)
				}
				churnActive = churnSub.id
			}
		}
	}
	activeCounts := counts
	if churnActive != "" {
		activeCounts = append(activeCounts, churnSub)
	}

	// Ground truth from the final positions, replicating the membership
	// rule: position inside the ReqAcc-enlarged bounds and majority area
	// overlap of the offered-accuracy location descriptor.
	qualifies := func(area core.Area, reqAcc float64, p geo.Point) bool {
		if !area.Bounds().Enlarge(reqAcc).ContainsClosed(p) {
			return false
		}
		return area.RangeQualifies(core.LocationDescriptor{Pos: p, Acc: offeredAcc}, reqAcc, 0.5)
	}
	expected := make(map[string]int)
	for _, cs := range activeCounts {
		n := 0
		for _, p := range pos {
			if qualifies(cs.area, cs.reqAcc, p) {
				n++
			}
		}
		expected[cs.id] = n
	}
	// Meetings are leaf-local: both objects inside the distance-enlarged
	// bounds, on the same leaf, within the meeting distance — and the
	// subscription must actually be installed on that leaf (routing
	// intersects the raw area bounds with the leaf's service area).
	leafSA := make(map[msg.NodeID]geo.Rect)
	for _, cfg := range ls.dep.Configs {
		if cfg.IsLeaf() {
			leafSA[msg.NodeID(cfg.ID)] = cfg.SA.Bounds()
		}
	}
	expectedPairs := make(map[string]map[[2]core.OID]bool)
	for _, ms := range meets {
		b := ms.area.Bounds().Enlarge(ms.distance)
		set := make(map[[2]core.OID]bool)
		alive := make([]core.OID, 0, len(pos))
		for oid := range pos {
			alive = append(alive, oid)
		}
		for i := 0; i < len(alive); i++ {
			for j := i + 1; j < len(alive); j++ {
				a, c := alive[i], alive[j]
				pa, pc := pos[a], pos[c]
				la, _ := ls.dep.LeafFor(pa)
				lc, _ := ls.dep.LeafFor(pc)
				if la != lc || !leafSA[la].Intersects(ms.area.Bounds()) {
					continue
				}
				if !b.ContainsClosed(pa) || !b.ContainsClosed(pc) || pa.Dist(pc) > ms.distance {
					continue
				}
				if a > c {
					a, c = c, a
				}
				set[[2]core.OID{a, c}] = true
			}
		}
		expectedPairs[ms.id] = set
	}

	// The coordinator for every subscription is the subscriber's entry
	// leaf, r.0.
	coord, _ := ls.dep.Server("r.0")
	leaves := []string{"r.0", "r.1", "r.2", "r.3"}
	for _, cs := range activeCounts {
		cs := cs
		deadline := time.Now().Add(5 * time.Second)
		for {
			total, fired, ok := coord.EventCoordTotalForTest(cs.id)
			if ok && total == expected[cs.id] && fired == (total >= cs.threshold) {
				break
			}
			if time.Now().After(deadline) {
				var perLeaf []string
				for _, id := range leaves {
					srv, _ := ls.dep.Server(msg.NodeID(id))
					if n, lok := srv.EventLocalCountForTest(cs.id); lok {
						perLeaf = append(perLeaf, fmt.Sprintf("%s=%d", id, n))
					}
				}
				t.Fatalf("%s (area %v, threshold %d): coordinator total=%d fired=%v ok=%v, want %d; per-leaf %v",
					cs.id, cs.area.Bounds(), cs.threshold, total, fired, ok, expected[cs.id], perLeaf)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for _, ms := range meets {
		ms := ms
		waitFor(t, func() bool {
			got := make(map[[2]core.OID]bool)
			for _, id := range leaves {
				srv, _ := ls.dep.Server(msg.NodeID(id))
				for _, p := range srv.EventMeetingPairsForTest(ms.id) {
					got[p] = true
				}
			}
			if len(got) != len(expectedPairs[ms.id]) {
				return false
			}
			for p := range expectedPairs[ms.id] {
				if !got[p] {
					return false
				}
			}
			return true
		}, fmt.Sprintf("%s: meeting pair set (%d pairs)", ms.id, len(expectedPairs[ms.id])))
	}
}

// TestEventExpiryParity checks that soft-state expiry feeds the event
// engine in both modes: a fired count predicate transitions back off when
// its objects expire, without any explicit deregistration.
func TestEventExpiryParity(t *testing.T) {
	for _, mode := range []struct {
		name   string
		oracle bool
	}{
		{"indexed", false},
		{"oracle", true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			ls := newTestLS(t, quadSpec(), server.Options{
				EventOracle:         mode.oracle,
				SightingTTL:         150 * time.Millisecond,
				JanitorInterval:     30 * time.Millisecond,
				EventResyncInterval: 200 * time.Millisecond,
			})
			sub := ls.newClientAt(t, "subscriber", geo.Pt(100, 100), client.Options{})
			owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})

			var rec notifyRecorder
			area := core.AreaFromRect(geo.R(50, 50, 250, 250))
			if err := sub.SubscribeCountAbove("soft", area, 25, 2, rec.add); err != nil {
				t.Fatal(err)
			}
			if _, err := owner.Register(ctx(t), sightingAt("a", geo.Pt(100, 100)), 10, 50, 3); err != nil {
				t.Fatal(err)
			}
			if _, err := owner.Register(ctx(t), sightingAt("b", geo.Pt(150, 150)), 10, 50, 3); err != nil {
				t.Fatal(err)
			}
			waitFor(t, func() bool {
				ns := rec.snapshot()
				return len(ns) >= 1 && ns[len(ns)-1].Fired && ns[len(ns)-1].Total == 2
			}, "threshold notification")

			// No more updates: both records expire and the predicate must
			// transition off.
			waitFor(t, func() bool {
				ns := rec.snapshot()
				return len(ns) >= 2 && !ns[len(ns)-1].Fired
			}, "expiry transition")
			coord, _ := ls.dep.Server("r.0")
			waitFor(t, func() bool {
				total, _, ok := coord.EventCoordTotalForTest("soft")
				return ok && total == 0
			}, "aggregate drained to zero")
		})
	}
}

// TestEventSlowSubscriberBackpressure pins the backpressure contract: a
// subscriber whose node drops every delivery must not slow the update
// path. Notifications pile up in that destination's bounded notifier
// queue (transition notifies coalesce latest-wins; meeting notifies drop
// oldest past the bound) while updates keep completing at full speed.
func TestEventSlowSubscriberBackpressure(t *testing.T) {
	dead := msg.NodeID("subscriber")
	net := transport.NewInproc(transport.InprocOptions{
		FaultPlan: func(from, to msg.NodeID, env msg.Envelope) transport.Fault {
			if to == dead && from != dead {
				return transport.Fault{Drop: true}
			}
			return transport.Fault{}
		},
	})
	t.Cleanup(func() { net.Close() })
	dep := deployQuad(t, net, server.Options{
		// A small per-message retry budget and a tiny FIFO bound so the
		// dead subscriber exercises coalescing and drop-oldest quickly.
		PathRetry: transport.RetryPolicy{
			MaxAttempts: 2, BaseBackoff: time.Millisecond,
			MaxBackoff: 2 * time.Millisecond, PerTryTimeout: 10 * time.Millisecond,
		},
		EventNotifyQueueDepth: 4,
	})

	subscriber, err := client.New(net, dead, "r.0", client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { subscriber.Close() })
	owner, err := client.New(net, "owner", "r.0", client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { owner.Close() })

	// A threshold-1 count subscription plus a meeting pair that forms and
	// breaks every round: every round produces transition and meeting
	// traffic toward the dead subscriber.
	area := core.AreaFromRect(geo.R(50, 50, 400, 400))
	if err := subscriber.SubscribeCountAbove("hot", area, 10, 1, func(msg.EventNotify) {}); err != nil {
		t.Fatal(err)
	}
	if err := subscriber.SubscribeMeeting("pair", area, 20, func(msg.EventNotify) {}); err != nil {
		t.Fatal(err)
	}
	anchor, err := owner.Register(ctx(t), sightingAt("anchor", geo.Pt(100, 100)), 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = anchor
	rover, err := owner.Register(ctx(t), sightingAt("rover", geo.Pt(300, 300)), 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	leaf, _ := dep.Server("r.0")
	waitFor(t, func() bool { return leaf.EventSubCountForTest() == 2 }, "subscriptions installed")

	const rounds = 150
	start := time.Now()
	for i := 0; i < rounds; i++ {
		// In one round the rover meets the anchor, then leaves the area
		// entirely (count 2 → 1, pair forms then breaks).
		if err := rover.Update(ctx(t), sightingAt("rover", geo.Pt(105, 100))); err != nil {
			t.Fatal(err)
		}
		if err := rover.Update(ctx(t), sightingAt("rover", geo.Pt(600, 600))); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// 300 local updates take milliseconds when the update path is clean;
	// if notification delivery back-pressured it, every update would eat
	// part of the retry budget and the loop would take tens of seconds.
	if elapsed > 10*time.Second {
		t.Fatalf("updates stalled behind dead subscriber: %d rounds took %v", rounds, elapsed)
	}

	reg := leaf.Metrics()
	waitFor(t, func() bool {
		return reg.Counter("event_notify_failed").Value() > 0 ||
			reg.Counter("event_notify_dropped").Value() > 0 ||
			reg.Counter("event_notify_coalesced").Value() > 0
	}, "notifier observed the dead subscriber")
}

// TestEventFanoutSoak hammers the indexed pipeline from many goroutines —
// updates, handovers, subscription churn, diagnostics — to give the race
// detector surface. Correctness is covered by the parity test; this one
// asserts only clean shutdown and a live hierarchy at the end.
func TestEventFanoutSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	ls := newTestLS(t, quadSpec(), server.Options{
		EventQueueDepth:     32, // small queue → overflow resyncs under load
		EventResyncInterval: 100 * time.Millisecond,
	})
	subscriber := ls.newClientAt(t, "subscriber", geo.Pt(100, 100), client.Options{})

	const workers = 4
	const perWorker = 12
	const rounds = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			owner := ls.newClientAt(t, fmt.Sprintf("owner-%d", w), geo.Pt(100, 100), client.Options{})
			objs := make([]*client.TrackedObject, perWorker)
			for i := range objs {
				obj, err := owner.Register(ctx(t), sightingAt(
					fmt.Sprintf("s-%d-%d", w, i),
					geo.Pt(10+rng.Float64()*1480, 10+rng.Float64()*1480)), 10, 50, 3)
				if err != nil {
					t.Error(err)
					return
				}
				objs[i] = obj
			}
			for r := 0; r < rounds; r++ {
				i := rng.Intn(perWorker)
				if err := objs[i].Update(ctx(t), sightingAt(
					fmt.Sprintf("s-%d-%d", w, i),
					geo.Pt(10+rng.Float64()*1480, 10+rng.Float64()*1480))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for r := 0; r < rounds; r++ {
			id := fmt.Sprintf("soak-%d", r%8)
			w := 100 + rng.Float64()*400
			x, y := rng.Float64()*(1500-w), rng.Float64()*(1500-w)
			area := core.AreaFromRect(geo.R(x, y, x+w, y+w))
			if r%2 == 0 {
				if err := subscriber.SubscribeCountAbove(id, area, 25, 2, func(msg.EventNotify) {}); err != nil {
					t.Error(err)
					return
				}
			} else {
				_ = subscriber.Unsubscribe(id, area)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
}

// deployQuad deploys the standard 2x2 testbed on a caller-provided
// network (for tests that need transport fault injection).
func deployQuad(t *testing.T, net transport.Network, opts server.Options) *hierarchy.Deployment {
	t.Helper()
	dep, err := hierarchy.Deploy(net, quadSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	return dep
}
