// Package server implements the hierarchical location server of the paper:
// the registration, update, handover and query-processing algorithms of
// Section 6 (Algorithms 6-1 … 6-5), the data-storage layout of Section 5,
// the distributed nearest-neighbor resolution whose semantics Section 3.2
// defines, and the three leaf-server caches of Section 6.5.
//
// One Server instance corresponds to one location server in the hierarchy.
// Leaf servers own sighting records and act as agents for the objects in
// their service area; non-leaf servers hold forwarding references only.
// Servers communicate exclusively through their transport.Node, so the same
// implementation runs on the in-process simulation network and over UDP.
//
// # Replication and failover
//
// A leaf can run as half of a hot-standby pair (Options.ReplPeer). The
// primary tees every committed WAL batch — sighting puts/removes per
// shard, visitor records on a separate stream — to per-stream senders that
// ship it to the standby in seq-numbered, ack-windowed batches; flushed
// and compacted run files are not re-streamed but fetched by name (run
// shipping) and installed under the standby's manifest after footer-CRC
// verification. A standby answers position and range queries from its
// mirror but redirects updates to the primary; a gap or a late start is
// healed by a full-shard snapshot resync.
//
// Failover is driven by the pair's parent (Options.Replicas): it probes
// each primary every ReplHealthInterval and, after ReplFailThreshold
// consecutive failures, promotes the standby and rebinds the child slot
// and its visitors' forwarding records. Every promotion raises the pair's
// fencing epoch, and every replication message carries one: a zombie
// primary that kept writing through a partition has its appends rejected
// ("fenced") by the higher epoch, and on seeing the higher epoch in an ack
// or reverse stream it demotes itself to standby and catches up.
//
// What failover loses is the unacked WAL tail: updates the old primary
// acknowledged but whose tee batches had not yet been applied by the
// standby when the primary died. Durability of those records is not lost —
// they are in the old primary's WAL and return on its recovery as a
// standby — but until then queries served by the new primary may be that
// many records stale. The sequence-numbered streams make replay after
// reconnect idempotent. One post-promotion subtlety: the dedupe window
// (Options.DedupeWindow) is not replicated, so a client retry that
// straddles a failover can be applied a second time by the new primary.
// Both applications carry the same sighting timestamp and the stores apply
// via PutIfNewer, so the double-apply is harmless to query answers.
package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/metrics"
	"locsvc/internal/msg"
	"locsvc/internal/spatial"
	"locsvc/internal/store"
	"locsvc/internal/transport"
)

// Options configure a Server.
type Options struct {
	// AchievableAcc is the best (smallest) accuracy this leaf's sensor
	// infrastructure and update regime can sustain, in meters. It is the
	// value computed in Algorithm 6-1 line 3. Default 10 m (GPS-grade).
	AchievableAcc float64
	// SightingTTL is the soft-state lifetime of sighting records
	// (Section 5); zero disables expiry.
	SightingTTL time.Duration
	// JanitorInterval is how often expired visitors are collected;
	// defaults to SightingTTL/4.
	JanitorInterval time.Duration
	// Index selects the sightingDB's spatial index (default quadtree).
	Index spatial.Kind
	// Shards partitions a leaf's sightingDB into that many independently
	// locked shards keyed by object id, so concurrent updates scale
	// across cores. 0 or 1 keeps the single-lock store; negative counts
	// are rejected by New (store.NormalizeShards). With AutoShard set this
	// is only the starting point — the count then adapts at runtime.
	Shards int
	// AutoShard enables contention-driven live resizing of a leaf's
	// sighting store: every janitor tick feeds the shard-lock and
	// pipeline-lane contention samples to the policy, and a grow/shrink
	// decision drives store.ShardedSightingDB.Resize while the server
	// keeps serving (with a sighting WAL attached, the log follows
	// through an epoch switch). The leaf uses the sharded store even when
	// Shards <= 1. Zero fields in the config take the documented
	// defaults.
	AutoShard *store.AutoShardConfig
	// Tiering turns a leaf's sighting store into a two-tier LSM: the
	// in-memory shards become memtables and older versions migrate to
	// immutable sorted runs on disk (store.TierConfig documents the
	// knobs). Requires SightingWAL unless TierConfig.Dir is set
	// explicitly. The shard count is pinned while tiering is enabled, so
	// Tiering and AutoShard are mutually exclusive. With a sighting WAL
	// the leaf recovers in the background: reads are served from the run
	// files as soon as the manifests are open while the WAL tail replays
	// shard by shard behind the shard locks.
	Tiering *store.TierConfig
	// WAL persists the visitorDB; nil keeps it in memory only.
	WAL store.WAL
	// SightingWAL persists a leaf's sightingDB through one durable log
	// segment per shard; nil keeps the sighting store purely in memory
	// (the paper's baseline, rebuilt via RestoreVisitors after a crash).
	// When set, the leaf uses the sharded store regardless of Shards, the
	// store adopts the WAL's shard count, existing log contents are
	// replayed (all shards in parallel) before the server attaches to the
	// network, and the server closes the WAL on Close.
	SightingWAL *store.ShardedWAL
	// CallTimeout bounds hop-by-hop calls (handover forwarding).
	CallTimeout time.Duration
	// QueryTimeout bounds the entry server's wait for distributed query
	// results.
	QueryTimeout time.Duration
	// EnableAreaCache turns on the (leaf server → service area) cache.
	EnableAreaCache bool
	// EnableAgentCache turns on the (object → agent) cache.
	EnableAgentCache bool
	// EnablePosCache turns on the (object → position descriptor) cache.
	EnablePosCache bool
	// Metrics receives the server's counters; a private registry is
	// created when nil.
	Metrics *metrics.Registry
	// Clock injects a time source for tests.
	Clock func() time.Time
	// NNInitialRadius seeds the nearest-neighbor expanding search;
	// defaults to a quarter of the leaf service-area diagonal.
	NNInitialRadius float64
	// DedupeWindow bounds how long a leaf remembers replies to Seq-stamped
	// requests (UpdateReq, RegisterReq) so a client retry is applied
	// exactly once. Zero uses a 30s default; the window only needs to
	// outlast the longest retry budget.
	DedupeWindow time.Duration
	// DedupeCap bounds the remembered-reply table's entry count (FIFO
	// eviction). Zero uses a 4096-entry default.
	DedupeCap int
	// PathRetry is the retry budget for forwarding-path propagation
	// (the CreatePath/RemovePath climbs). These one-way messages are
	// idempotent — every application is guarded by the sighting
	// timestamp (PutIfNewer / RemoveIf) — so each hop re-sends on a
	// swept timeout instead of letting one lost datagram strand an
	// ancestor without (or with a stale) forwarding record. The zero
	// value enables a small default budget; MaxAttempts 1 restores
	// fire-and-forget.
	PathRetry transport.RetryPolicy
	// EventOracle selects the evaluate-all event engine: every installed
	// subscription is re-evaluated synchronously after every mutation.
	// This is the original (seed) behavior, kept as the correctness
	// oracle for property tests and as the lsbench baseline; the default
	// is the subscription-indexed delta pipeline (see event.go).
	EventOracle bool
	// EventQueueDepth bounds the delta queue feeding a leaf's event
	// dispatcher. A full queue never blocks a commit: overflowing delta
	// batches are dropped and replaced by a full resync. Default 256.
	EventQueueDepth int
	// EventNotifyQueueDepth bounds each destination's FIFO notification
	// queue in the notifier (meeting notifications); overflow drops the
	// oldest. Default 256.
	EventNotifyQueueDepth int
	// EventResyncInterval is the event pipeline's periodic safety net: a
	// full re-evaluation of every subscription with forced count
	// re-reports, healing state a lost report or dropped delta left
	// stale. Default 30s.
	EventResyncInterval time.Duration
	// ReplPeer names this leaf's hot-standby replication peer (see
	// repl.go). Requires SightingWAL (the WAL tail is the replication
	// stream) and excludes AutoShard (streams are per-shard, so the
	// count is pinned). With ReplStandby false the server starts as the
	// pair's primary, streaming its committed writes to the peer.
	ReplPeer string
	// ReplStandby starts the server in the standby role: it mirrors the
	// peer's state, redirects update traffic to it and never
	// restructures its tier on its own, until a Promote makes it
	// primary.
	ReplStandby bool
	// Replicas, on a non-leaf, maps primary child ids to their standby
	// ids. The server health-checks each primary and, after
	// ReplFailThreshold consecutive probe failures, promotes the standby
	// and rebinds the child record to it.
	Replicas map[string]string
	// ReplHealthInterval is the probe cadence (and per-probe timeout) of
	// the failover monitor. Default 500ms.
	ReplHealthInterval time.Duration
	// ReplFailThreshold is how many consecutive probe failures trigger a
	// failover. Default 3.
	ReplFailThreshold int
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.AchievableAcc <= 0 {
		o.AchievableAcc = 10
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 5 * time.Second
	}
	if o.QueryTimeout <= 0 {
		o.QueryTimeout = 5 * time.Second
	}
	if o.JanitorInterval <= 0 {
		// Derive the tick from the enabled features. The AutoShard
		// observation cadence caps it at 5s: the policy exists to track
		// workload shifts, which a TTL/4 of minutes (or the leisurely
		// WAL-compaction default) would watch in slow motion.
		if o.SightingTTL > 0 {
			o.JanitorInterval = o.SightingTTL / 4
		} else if o.SightingWAL != nil {
			// Even without soft-state expiry the janitor has work: it
			// drives the grow-triggered compaction of the WAL segments.
			o.JanitorInterval = time.Minute
		}
		if (o.AutoShard != nil || o.Tiering != nil) && (o.JanitorInterval <= 0 || o.JanitorInterval > 5*time.Second) {
			// Both the AutoShard policy and tier maintenance (flush /
			// compaction scheduling) want a responsive tick.
			o.JanitorInterval = 5 * time.Second
		}
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.PathRetry.MaxAttempts == 0 {
		o.PathRetry = transport.RetryPolicy{
			MaxAttempts: 4,
			BaseBackoff: 25 * time.Millisecond,
			MaxBackoff:  250 * time.Millisecond,
		}
	}
	if o.PathRetry.PerTryTimeout <= 0 {
		o.PathRetry.PerTryTimeout = o.CallTimeout
	}
	if o.Metrics == nil {
		o.Metrics = metrics.NewRegistry()
	}
	if o.EventQueueDepth <= 0 {
		o.EventQueueDepth = 256
	}
	if o.EventNotifyQueueDepth <= 0 {
		o.EventNotifyQueueDepth = 256
	}
	if o.EventResyncInterval <= 0 {
		o.EventResyncInterval = 30 * time.Second
	}
	if o.ReplHealthInterval <= 0 {
		o.ReplHealthInterval = 500 * time.Millisecond
	}
	if o.ReplFailThreshold <= 0 {
		o.ReplFailThreshold = 3
	}
	return o
}

// Server is one location server of the hierarchy.
type Server struct {
	cfg      store.ConfigRecord
	rootArea core.Area
	opts     Options
	node     transport.Node

	// sightings is the main-memory sighting database; only leaf servers
	// populate it (Section 5). With Options.Shards > 1 it is the sharded
	// implementation; otherwise the single-lock one.
	sightings store.SightingStore
	// pipe batches concurrent position updates per shard (group commit);
	// all sighting writes on the update/registration path go through it.
	pipe *store.UpdatePipeline
	// visitors is the (persistent) visitor database every server keeps.
	visitors *store.VisitorDB

	caches *leafCaches
	pend   *pending
	events *events
	notify *notifier
	met    *metrics.Registry

	// dedupe remembers a leaf's replies to Seq-stamped requests so a
	// transport-level retry is applied exactly once; nil on non-leaves.
	dedupe *dedupe

	// repl, on a leaf with a replication peer, is its half of the
	// primary/standby pair (repl.go); nil otherwise.
	repl *replState
	// children, once a failover rebound a child, holds the current child
	// list; nil means cfg.Children is authoritative. Read through
	// childRecords/childFor.
	children atomic.Pointer[[]store.ChildRecord]

	// autoShard, on leaves that enabled it, is the adaptive shard-count
	// policy the janitor feeds; gaugedShards tracks how many per-shard
	// gauges are registered so a shrink can drop the stale ones.
	autoShard    *store.AutoShard
	gaugedShards int

	stop chan struct{}
	wg   sync.WaitGroup

	// bgMu guards stopped, which refuses new background goroutines (path
	// propagation retries) once Close has started waiting on wg — an Add
	// racing the Wait at counter zero is a WaitGroup misuse.
	bgMu    sync.Mutex
	stopped bool

	closeOnce sync.Once
}

// New creates the server described by cfg, attaches it to the network and
// starts its janitor. rootArea is the service area of the entire LS, which
// every server knows from deployment configuration; the entry server uses
// it to decide when a distributed range query is fully covered.
func New(cfg store.ConfigRecord, rootArea core.Area, network transport.Network, opts Options) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("server: invalid config: %w", err)
	}
	opts = opts.withDefaults()
	// On any failure past this point the server owns the passed-in WALs
	// (it would have closed them in Close), so release them rather than
	// leak fds and writer goroutines to the caller.
	closeWALs := func() {
		if opts.SightingWAL != nil {
			opts.SightingWAL.Close()
		}
	}
	visitors, err := store.NewVisitorDB(opts.WAL)
	if err != nil {
		if opts.WAL != nil {
			opts.WAL.Close()
		}
		closeWALs()
		return nil, fmt.Errorf("server %s: opening visitorDB: %w", cfg.ID, err)
	}
	s := &Server{
		cfg:      cfg,
		rootArea: rootArea,
		opts:     opts,
		visitors: visitors,
		caches:   newLeafCaches(opts),
		pend:     newPending(),
		met:      opts.Metrics,
		stop:     make(chan struct{}),
	}
	// Only leaves evaluate subscriptions against sightings, so only they
	// get the subscription index and delta dispatcher; everywhere else the
	// events struct just routes and coordinates.
	indexWorld := geo.Rect{}
	if cfg.IsLeaf() && !opts.EventOracle {
		indexWorld = cfg.SA.Bounds()
	}
	s.events = newEvents(opts.EventOracle, indexWorld, opts.EventQueueDepth)
	s.notify = newNotifier(s)
	if cfg.IsLeaf() {
		shards, serr := store.NormalizeShards(opts.Shards)
		if serr != nil {
			visitors.Close()
			closeWALs()
			return nil, fmt.Errorf("server %s: %w", cfg.ID, serr)
		}
		if opts.Tiering != nil && opts.AutoShard != nil {
			visitors.Close()
			closeWALs()
			return nil, fmt.Errorf("server %s: Tiering and AutoShard are mutually exclusive (run files pin the shard count)", cfg.ID)
		}
		if opts.Tiering != nil && opts.SightingWAL == nil && opts.Tiering.Dir == "" {
			visitors.Close()
			closeWALs()
			return nil, fmt.Errorf("server %s: Tiering requires a SightingWAL or an explicit TierConfig.Dir", cfg.ID)
		}
		if opts.ReplPeer != "" {
			if opts.SightingWAL == nil {
				visitors.Close()
				closeWALs()
				return nil, fmt.Errorf("server %s: ReplPeer requires a SightingWAL (the WAL tail is the replication stream)", cfg.ID)
			}
			if opts.AutoShard != nil {
				visitors.Close()
				closeWALs()
				return nil, fmt.Errorf("server %s: ReplPeer and AutoShard are mutually exclusive (streams are per-shard)", cfg.ID)
			}
		}
		sopts := []store.SightingDBOption{
			store.WithIndex(opts.Index),
			store.WithTTL(opts.SightingTTL),
			store.WithClock(opts.Clock),
		}
		if opts.Tiering != nil {
			sopts = append(sopts, store.WithTiering(*opts.Tiering))
		}
		switch {
		case opts.SightingWAL != nil:
			sdb := store.NewShardedSightingDB(append(sopts,
				store.WithShards(shards),
				store.WithSightingWAL(opts.SightingWAL))...)
			// Tiered stores recover in the background (satellite of the
			// bigger-than-RAM design): RecoverBackground opens the run
			// manifests synchronously — reads are served from disk
			// immediately — and replays each shard's short WAL tail behind
			// that shard's write lock. Close waits for the warm-up.
			if opts.Tiering != nil {
				err = sdb.RecoverBackground()
			} else {
				err = sdb.Recover()
			}
			if err != nil {
				visitors.Close()
				closeWALs()
				return nil, fmt.Errorf("server %s: recovering sightingDB: %w", cfg.ID, err)
			}
			s.sightings = sdb
		case shards > 1 || opts.AutoShard != nil || opts.Tiering != nil:
			sdb := store.NewShardedSightingDB(append(sopts, store.WithShards(shards))...)
			if opts.Tiering != nil {
				// No WAL to replay: Recover just opens the tier manifests
				// (and sweeps crash leftovers) from TierConfig.Dir.
				if err := sdb.Recover(); err != nil {
					visitors.Close()
					closeWALs()
					return nil, fmt.Errorf("server %s: opening tiered sightingDB: %w", cfg.ID, err)
				}
			}
			s.sightings = sdb
		default:
			s.sightings = store.NewSightingDB(sopts...)
		}
		if opts.AutoShard != nil {
			s.autoShard = store.NewAutoShard(*opts.AutoShard)
		}
		var popts []store.PipelineOption
		if opts.SightingTTL > 0 {
			popts = append(popts, store.OnExpired(s.expireVisitors))
		}
		if s.events.work != nil {
			// Feed committed update deltas straight into the event
			// dispatcher; the enqueue never blocks the committing lane.
			popts = append(popts, store.OnCommit(s.enqueueDeltas))
		}
		s.pipe = store.NewUpdatePipeline(s.sightings, popts...)
		s.dedupe = newDedupe(opts.DedupeWindow, opts.DedupeCap, opts.Clock)
		if opts.ReplPeer != "" {
			// The SightingWAL branch above guarantees the sharded store.
			sdb := s.sightings.(*store.ShardedSightingDB)
			r := newReplState(s, msg.NodeID(opts.ReplPeer), sdb, opts.ReplStandby)
			s.repl = r
			if opts.ReplStandby {
				sdb.SetReplStandby(true)
			}
			opts.SightingWAL.SetReplTee(r)
			sdb.SetReplNotify(r.notifyRuns)
			visitors.SetReplTee(r)
		}
	}
	node, err := network.Attach(msg.NodeID(cfg.ID), s.handle)
	if err != nil {
		visitors.Close()
		closeWALs()
		return nil, fmt.Errorf("server %s: attaching to network: %w", cfg.ID, err)
	}
	s.node = node
	if cfg.IsLeaf() && opts.JanitorInterval > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	if s.events.work != nil {
		s.wg.Add(1)
		go s.eventDispatcher()
	}
	if s.repl != nil {
		for _, st := range s.repl.streams {
			s.wg.Add(1)
			go s.repl.sender(st)
		}
	}
	if !cfg.IsLeaf() && len(opts.Replicas) > 0 {
		s.wg.Add(1)
		go s.replMonitor()
	}
	return s, nil
}

// ID returns the server's node id.
func (s *Server) ID() msg.NodeID { return msg.NodeID(s.cfg.ID) }

// Config returns the server's configuration record.
func (s *Server) Config() store.ConfigRecord { return s.cfg }

// IsLeaf reports whether this server is a leaf.
func (s *Server) IsLeaf() bool { return s.cfg.IsLeaf() }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *metrics.Registry { return s.met }

// VisitorCount returns the number of visitor records, mainly for tests and
// diagnostics.
func (s *Server) VisitorCount() int { return s.visitors.Len() }

// PendingCalls returns the number of in-flight outbound calls this server's
// transport node is still awaiting replies for. Chaos tests assert it drops
// to zero at quiesce — no stuck in-flight entries after faults.
func (s *Server) PendingCalls() int { return s.node.PendingCalls() }

// SightingCount returns the number of sighting records on a leaf (zero on
// non-leaf servers).
func (s *Server) SightingCount() int {
	if s.sightings == nil {
		return 0
	}
	return s.sightings.Len()
}

// leafInfo returns this server's LeafInfo for cache piggybacking, valid
// only on leaves.
func (s *Server) leafInfo() msg.LeafInfo {
	if !s.cfg.IsLeaf() {
		return msg.LeafInfo{}
	}
	return msg.LeafInfo{ID: s.ID(), Area: s.cfg.SA}
}

// Close detaches the server from the network, stops its background
// goroutines and closes the stores. The order is load-bearing: stopped
// flips first (no new background work or replication applies start),
// then the node detaches (in-flight outbound calls resolve instead of
// waiting out their timeouts), and only after every tracked goroutine —
// janitor, event dispatcher, notifier drains, path retries, replication
// senders and in-flight replication applies — has drained do the WALs
// and tier manifests close underneath them.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.bgMu.Lock()
		s.stopped = true
		s.bgMu.Unlock()
		close(s.stop)
		if s.repl != nil {
			s.repl.wake()
		}
		if nerr := s.node.Close(); nerr != nil {
			err = nerr
		}
		s.wg.Wait()
		if verr := s.visitors.Close(); verr != nil && err == nil {
			err = verr
		}
		if sdb, ok := s.sightings.(*store.ShardedSightingDB); ok {
			// A tiered leaf may still be replaying its WAL tail in the
			// background; closing the WAL underneath that replay would turn
			// an orderly shutdown into a spurious recovery failure.
			if werr := sdb.WaitRecovered(); werr != nil && err == nil {
				err = werr
			}
		}
		if s.opts.SightingWAL != nil {
			if werr := s.opts.SightingWAL.Close(); werr != nil && err == nil {
				err = werr
			}
		}
	})
	return err
}

// handle is the transport handler: it dispatches every incoming message to
// the algorithm implementations. It runs on a per-message goroutine, so
// handlers may block on nested calls (handover, distributed queries).
func (s *Server) handle(ctx context.Context, from msg.NodeID, m msg.Message) (msg.Message, error) {
	switch req := m.(type) {
	// Registration (Algorithm 6-1).
	case msg.RegisterReq:
		s.handleRegister(ctx, req)
		return nil, nil
	case msg.CreatePath:
		s.handleCreatePath(from, req)
		return nil, nil
	case msg.RemovePath:
		s.handleRemovePath(from, req)
		return nil, nil

	// Updates and handover (Algorithms 6-2, 6-3).
	case msg.UpdateReq:
		return s.handleUpdate(ctx, from, req)
	case msg.HandoverReq:
		return s.handleHandover(ctx, from, req)
	case msg.DeregisterReq:
		return s.handleDeregister(ctx, req)
	case msg.ChangeAccReq:
		return s.handleChangeAcc(req)

	// Position queries (Algorithm 6-4).
	case msg.PosQueryReq:
		return s.handlePosQuery(ctx, req)
	case msg.PosQueryDirect:
		return s.handlePosQueryDirect(req)
	case msg.PosQueryFwd:
		s.handlePosQueryFwd(from, req)
		return nil, nil
	case msg.PosQueryRes:
		s.pend.deliver(req.OpID, req)
		return nil, nil

	// Range queries (Algorithm 6-5).
	case msg.RangeQueryReq:
		return s.handleRangeQuery(ctx, req)
	case msg.RangeQueryFwd:
		s.handleRangeQueryFwd(from, req)
		return nil, nil
	case msg.RangeQuerySubRes:
		s.observeLeafInfo(req.Leaf)
		s.pend.deliver(req.OpID, req)
		return nil, nil

	// Nearest neighbor (Section 3.2 semantics).
	case msg.NeighborQueryReq:
		return s.handleNeighborQuery(ctx, req)

	// Event mechanism (Section 1 / future work).
	case msg.EventSubscribe:
		s.handleEventSubscribe(from, req)
		return nil, nil
	case msg.EventUnsubscribe:
		s.handleEventUnsubscribe(from, req)
		return nil, nil
	case msg.EventCount:
		s.handleEventCount(req)
		return nil, nil

	// Replication (primary/standby leaf pairs, repl.go).
	case msg.ReplAppend:
		return s.handleReplAppend(req)
	case msg.RunFetch:
		return s.handleRunFetch(req)
	case msg.Promote:
		return s.handlePromote(req)

	// Diagnostics.
	case msg.DiagReq:
		return s.handleDiag()

	// Recovery aid.
	case msg.RegisterFailed:
		s.pend.deliver(req.OpID, req)
		return nil, nil
	case msg.RegisterRes:
		s.pend.deliver(req.OpID, req)
		return nil, nil

	default:
		return nil, fmt.Errorf("%w: server %s cannot handle %T", core.ErrBadRequest, s.cfg.ID, m)
	}
}

// callCtx returns a context bounded by the hop-by-hop call timeout.
func (s *Server) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, s.opts.CallTimeout)
}

// inArea reports whether p lies in this server's service area.
func (s *Server) inArea(p geo.Point) bool {
	return s.cfg.SA.Contains(p)
}

// parent returns the parent node id; empty on the root.
func (s *Server) parent() msg.NodeID { return msg.NodeID(s.cfg.Parent) }

// janitor periodically deregisters visitors whose soft state expired
// (Section 5): their records are removed locally and the forwarding path is
// torn down bottom-up.
func (s *Server) janitor() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opts.JanitorInterval)
	defer ticker.Stop()
	walDownReported := false
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			// A standby never expires soft state on its own: removals
			// (including expiry) replicate from the primary, and expiring
			// locally would diverge the mirror and tear down forwarding
			// paths the primary still serves.
			if s.repl == nil || s.repl.primary.Load() {
				s.expireVisitors(s.sightings.Expired())
			}
			if s.repl != nil {
				s.repl.updateGauges()
			}
			if sdb, ok := s.sightings.(*store.ShardedSightingDB); ok {
				// Surface a dead sighting WAL once: the store keeps
				// serving (soft state), but the operator must learn
				// durability is gone before the next crash proves it.
				if err := sdb.WALErr(); err != nil && !walDownReported {
					walDownReported = true
					s.met.Counter("sighting_wal_down").Inc()
				}
				// Contention-driven live resizing, then occupancy and
				// contention export — the tick is both the policy's
				// observation cadence and the metrics refresh.
				s.shardMaintenance(sdb)
				// Keep the sighting WAL's replay time proportional to the
				// live set: compact any segment whose history outgrew it.
				if err := sdb.CompactWALIfGrown(); err != nil {
					s.met.Counter("sighting_wal_compact_errors").Inc()
				}
			}
		}
	}
}

// expireVisitors removes a batch of expired visitors, detected by the
// janitor's scan or the update pipeline's amortized sweep. The removal
// deltas feed the event engine once per batch, not once per id. It runs
// with no store locks held.
func (s *Server) expireVisitors(ids []core.OID) {
	var ds []store.Delta
	for _, id := range ids {
		if d, ok := s.expireVisitor(id); ok {
			ds = append(ds, d)
		}
	}
	s.noteRemovals(ds)
}

// expireVisitor removes one expired visitor like a deregistration,
// reporting the removal delta if it removed anything. The expiry
// observation that led here is stale by the time this runs, so removal is
// conditional: a record that a concurrent update refreshed in the
// meantime stays live and nothing is torn down. The caller feeds the
// deltas to the event engine.
func (s *Server) expireVisitor(id core.OID) (store.Delta, bool) {
	lastT := s.opts.Clock()
	if sight, ok := s.sightings.Get(id); ok && sight.T.After(lastT) {
		lastT = sight.T
	}
	d, ok := s.sightings.RemoveExpiredDelta(id)
	if !ok {
		return store.Delta{}, false
	}
	s.met.Counter("soft_state_expired").Inc()
	if _, err := s.visitors.Remove(id); err != nil {
		s.met.Counter("visitor_db_errors").Inc()
	}
	if s.parent() != "" {
		s.forwardPath(s.parentForOID(id), msg.RemovePath{OID: id, SightingT: lastT})
	}
	return d, true
}

// RestoreVisitors asks every visitor recorded in the (persistent) visitorDB
// for a fresh position update. A recovering leaf server calls this after a
// restart: the visitorDB survived on stable storage while the sightingDB
// and its indexes were lost and are rebuilt as the update requests are
// answered (Section 5).
func (s *Server) RestoreVisitors() int {
	if !s.cfg.IsLeaf() {
		return 0
	}
	n := 0
	s.visitors.ForEach(func(rec store.VisitorRecord) bool {
		if rec.RegInfo.Registrant != "" {
			if err := s.node.Send(msg.NodeID(rec.RegInfo.Registrant), msg.RequestUpdate{OID: rec.OID}); err == nil {
				n++
			}
		}
		return true
	})
	return n
}
