package server

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
	"locsvc/internal/store"
	"locsvc/internal/transport"
)

// Pair-level replication tests: two leaves wired as primary/standby on an
// in-process network, driven through the internal store surfaces so the
// protocol (WAL-tail streaming, snapshots, run shipping, fencing) is
// exercised without a hierarchy around it. The hierarchy-level failover
// soak lives in internal/hierarchy.

const replTestShards = 4

func replTestArea() core.Area { return core.AreaFromRect(geo.R(0, 0, 1000, 1000)) }

// newReplLeaf builds one half of a pair. tier == nil runs the plain
// WAL-backed store; otherwise the tiered one (runs land in the WAL dir).
func newReplLeaf(t *testing.T, net *transport.Inproc, id, peer string, standby bool, tier *store.TierConfig) *Server {
	t.Helper()
	wal, err := store.OpenShardedWAL(t.TempDir(), replTestShards)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		SightingWAL:     wal,
		ReplPeer:        peer,
		ReplStandby:     standby,
		JanitorInterval: 20 * time.Millisecond,
	}
	if tier != nil {
		opts.Tiering = tier
	}
	cfg := store.ConfigRecord{ID: id, SA: replTestArea()}
	s, err := New(cfg, replTestArea(), net, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func replSighting(i int) core.Sighting {
	return core.Sighting{
		OID:     core.OID(fmt.Sprintf("o%03d", i)),
		T:       time.Now(),
		Pos:     geo.Pt(float64(1+i%999), float64(1+(i*7)%999)),
		SensAcc: 5,
	}
}

// mirrored reports whether standby holds exactly the primary's n objects
// at the primary's positions.
func mirrored(primary, standby *Server, n int) bool {
	if standby.sightings.Len() != n {
		return false
	}
	for i := 0; i < n; i++ {
		id := core.OID(fmt.Sprintf("o%03d", i))
		want, ok := primary.sightings.Get(id)
		if !ok {
			return false
		}
		got, ok := standby.sightings.Get(id)
		if !ok || got.Pos != want.Pos || !got.T.Equal(want.T) {
			return false
		}
	}
	return true
}

func TestReplPairMirrorsWrites(t *testing.T) {
	net := transport.NewInproc(transport.InprocOptions{})
	defer net.Close()
	a := newReplLeaf(t, net, "leafA", "leafB", false, nil)
	b := newReplLeaf(t, net, "leafB", "leafA", true, nil)

	const n = 120
	for i := 0; i < n; i++ {
		s := replSighting(i)
		a.pipe.Put(s)
		if err := a.visitors.Put(store.VisitorRecord{OID: s.OID, OfferedAcc: 10, PathT: s.T}); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "standby mirror of puts", func() bool {
		return mirrored(a, b, n) && b.visitors.Len() == n
	})

	// Removals stream too.
	a.sightings.Remove("o000")
	if _, err := a.visitors.Remove("o000"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "standby mirror of removes", func() bool {
		_, ok := b.sightings.Get("o000")
		_, vok := b.visitors.Get("o000")
		return !ok && !vok && b.sightings.Len() == n-1
	})

	if got := a.repl.role(); got != replRolePrimary {
		t.Errorf("a role = %s, want primary", got)
	}
	if got := b.repl.role(); got != replRoleStandby {
		t.Errorf("b role = %s, want standby", got)
	}
}

func TestReplStandbyBootstrapsFromSnapshot(t *testing.T) {
	net := transport.NewInproc(transport.InprocOptions{})
	defer net.Close()
	a := newReplLeaf(t, net, "leafA", "leafB", false, nil)

	// The standby does not exist yet: the primary's senders retry into
	// the void while state accumulates.
	const n = 80
	for i := 0; i < n; i++ {
		a.pipe.Put(replSighting(i))
	}
	if err := a.visitors.Put(store.VisitorRecord{OID: "o000", OfferedAcc: 10}); err != nil {
		t.Fatal(err)
	}

	b := newReplLeaf(t, net, "leafB", "leafA", true, nil)
	waitUntil(t, "late-started standby to catch up", func() bool {
		return mirrored(a, b, n) && b.visitors.Len() == 1
	})
	if got := b.repl.resyncs.Load(); got == 0 {
		t.Error("standby caught up without a snapshot resync")
	}
}

func TestReplPromoteFencesZombiePrimary(t *testing.T) {
	net := transport.NewInproc(transport.InprocOptions{})
	defer net.Close()
	a := newReplLeaf(t, net, "leafA", "leafB", false, nil)
	b := newReplLeaf(t, net, "leafB", "leafA", true, nil)

	const n = 40
	for i := 0; i < n; i++ {
		a.pipe.Put(replSighting(i))
	}
	waitUntil(t, "standby in sync before promotion", func() bool { return mirrored(a, b, n) })

	// The parent's decision, minus the parent: promote the standby.
	res, err := b.handlePromote(msg.Promote{})
	if err != nil {
		t.Fatal(err)
	}
	epoch := res.(msg.PromoteRes).Epoch
	if epoch < 2 {
		t.Fatalf("promotion epoch = %d, want >= 2", epoch)
	}
	if b.repl.role() != replRolePrimary {
		t.Fatalf("standby did not take the primary role")
	}

	// A zombie's late append carries the old epoch: the new primary must
	// reject it without applying anything.
	stale := replSighting(n)
	ack, err := b.handleReplAppend(msg.ReplAppend{
		Epoch:    1,
		Stream:   b.sightings.ShardFor(stale.OID),
		FirstSeq: uint64(n + 1),
		Recs:     []msg.ReplRecord{{Op: msg.ReplSightingPut, Sightings: []core.Sighting{stale}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rack := ack.(msg.ReplAck); !rack.Fenced || rack.Epoch != epoch {
		t.Fatalf("stale append ack = %+v, want fenced at epoch %d", rack, epoch)
	}
	if _, ok := b.sightings.Get(stale.OID); ok {
		t.Error("fenced write leaked to the new primary")
	}
	if got := b.repl.fenced.Load(); got == 0 {
		t.Error("new primary counted no fenced appends")
	}

	// The zombie keeps writing; between its own fenced stream and the new
	// primary's reverse stream (higher epoch) it must end up a standby.
	a.pipe.Put(replSighting(n))
	waitUntil(t, "zombie to be fenced into standby", func() bool {
		return a.repl.role() == replRoleStandby && a.sightings.(*store.ShardedSightingDB).ReplStandby()
	})
	fresh := core.Sighting{OID: "fresh", T: time.Now(), Pos: geo.Pt(500, 500), SensAcc: 5}
	b.pipe.Put(fresh)
	waitUntil(t, "reversed stream to heal the old primary", func() bool {
		got, ok := a.sightings.Get("fresh")
		return ok && got.Pos == fresh.Pos
	})

	// A demoted leaf redirects update traffic to its peer.
	probe, err := net.Attach("probe", func(ctx context.Context, from msg.NodeID, m msg.Message) (msg.Message, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ures, err := probe.Call(ctx, "leafA", msg.UpdateReq{S: replSighting(1), Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if moved := ures.(msg.UpdateRes); !moved.Moved || moved.NewAgent != "leafB" {
		t.Errorf("standby update reply = %+v, want redirect to leafB", moved)
	}
}

func TestReplRunShippingMirrorsTier(t *testing.T) {
	net := transport.NewInproc(transport.InprocOptions{})
	defer net.Close()
	tier := func() *store.TierConfig {
		return &store.TierConfig{MemtableBytes: 8 << 10, MaxRuns: 3}
	}
	a := newReplLeaf(t, net, "leafA", "leafB", false, tier())
	b := newReplLeaf(t, net, "leafB", "leafA", true, tier())

	sdbA := a.sightings.(*store.ShardedSightingDB)
	sdbB := b.sightings.(*store.ShardedSightingDB)

	// Enough volume that the janitor's MaintainTiers flushes several
	// memtables into runs (and likely compacts).
	const n = 600
	for i := 0; i < n; i++ {
		a.pipe.Put(replSighting(i))
	}
	waitUntil(t, "primary to flush runs", func() bool {
		return sdbA.TierStats().Runs > 0
	})
	waitUntil(t, "standby to install the primary's runs", func() bool {
		sa, sb := sdbA.TierStats(), sdbB.TierStats()
		return sb.Runs == sa.Runs && mirrored(a, b, n)
	})
	if got := b.repl.runsInstalled.Load(); got == 0 {
		t.Error("standby installed runs without fetching any")
	}

	// The mirror must hold through a primary-side compaction as well.
	if err := sdbA.MaintainTiers(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "standby to track post-compaction run list", func() bool {
		sa, sb := sdbA.TierStats(), sdbB.TierStats()
		return sb.Runs == sa.Runs && sb.DiskLive == sa.DiskLive && mirrored(a, b, n)
	})
}

// TestReplCloseUnderLoad is the shutdown-ordering regression test: both
// halves of a churning tiered pair close while writers hammer the primary
// and replication applies, run fetches and flushes are in flight. Close
// must drain every goroutine before the WAL and tier manifests go away —
// a mis-ordered teardown shows up here as a deadlock (test timeout), a
// race-detector report, or a panic on a closed WAL.
func TestReplCloseUnderLoad(t *testing.T) {
	net := transport.NewInproc(transport.InprocOptions{})
	defer net.Close()
	tier := func() *store.TierConfig {
		return &store.TierConfig{MemtableBytes: 8 << 10, MaxRuns: 2}
	}
	a := newReplLeaf(t, net, "leafA", "leafB", false, tier())
	b := newReplLeaf(t, net, "leafB", "leafA", true, tier())

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a.pipe.Put(replSighting(w*10000 + i%500))
			}
		}(w)
	}
	// Let flushes, run shipping and the streams churn before pulling the
	// plug with the writers still running.
	waitUntil(t, "replication churn before close", func() bool {
		return b.sightings.Len() > 0
	})
	time.Sleep(100 * time.Millisecond)

	closed := make(chan struct{})
	go func() {
		b.Close() // standby first: applies and fetches are mid-flight
		a.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked under load")
	}
	close(stop)
	writers.Wait()
}
