package server

import (
	"fmt"

	"locsvc/internal/msg"
	"locsvc/internal/store"
)

// shardMaintenance runs once per janitor tick on leaves with a sharded
// sighting store: it exports per-shard occupancy and contention through
// the metrics registry and, when an AutoShard policy is configured, feeds
// it the tick's contention sample and applies its resize decision.
func (s *Server) shardMaintenance(sdb *store.ShardedSightingDB) {
	stats := sdb.ShardStats()
	var ops, contended int64
	for i, st := range stats {
		ops += st.Ops
		contended += st.Contended
		s.met.Gauge(shardGaugeName("sighting_shard_occupancy", i)).Set(int64(st.Len))
		s.met.Gauge(shardGaugeName("sighting_shard_contended", i)).Set(st.Contended)
	}
	// A shrink leaves gauges for shards that no longer exist; drop them so
	// snapshots describe the current generation only.
	for i := len(stats); i < s.gaugedShards; i++ {
		s.met.DropGauge(shardGaugeName("sighting_shard_occupancy", i))
		s.met.DropGauge(shardGaugeName("sighting_shard_contended", i))
	}
	s.gaugedShards = len(stats)
	s.met.Gauge("sighting_shards").Set(int64(len(stats)))
	s.met.Gauge("sighting_epoch").Set(int64(sdb.Epoch()))

	// Tiering observability: memtable pressure, run inventory and the
	// flush/compaction cadence, refreshed once per tick like the shard
	// gauges above.
	if ts := sdb.TierStats(); ts.Enabled {
		s.met.Gauge("sighting_memtable_bytes").Set(ts.MemtableBytes)
		s.met.Gauge("sighting_runs").Set(int64(ts.Runs))
		s.met.Gauge("sighting_run_bytes").Set(ts.RunBytes)
		s.met.Gauge("sighting_disk_live").Set(ts.DiskLive)
		s.met.Gauge("sighting_compaction_backlog").Set(int64(ts.Backlog))
		s.met.Gauge("sighting_flushes").Set(ts.Flushes)
		s.met.Gauge("sighting_compactions").Set(ts.Compactions)
		s.met.Gauge("sighting_bloom_hits").Set(ts.BloomHits)
		s.met.Gauge("sighting_bloom_misses").Set(ts.BloomMisses)
	}

	if s.autoShard == nil {
		return
	}
	pipeOps, handoffs := s.pipe.Stats()
	if target, ok := s.autoShard.Observe(sdb.NumShards(), ops, contended, pipeOps, handoffs); ok {
		if err := sdb.Resize(target); err != nil {
			// The in-memory resize stands even on error (the failure is
			// the WAL's epoch switch — logging stopped); count it so the
			// operator sees the log fell behind the layout.
			s.met.Counter("sighting_resize_errors").Inc()
			return
		}
		s.met.Counter("sighting_resizes").Inc()
	}
}

// shardGaugeName formats one shard's gauge series name.
func shardGaugeName(prefix string, shard int) string {
	return fmt.Sprintf("%s.%03d", prefix, shard)
}

// handleDiag answers a diagnostics request with the server's store
// occupancy, sighting-shard layout and metrics snapshot.
func (s *Server) handleDiag() (msg.Message, error) {
	res := msg.DiagRes{
		Server:   s.ID(),
		IsLeaf:   s.cfg.IsLeaf(),
		Visitors: s.visitors.Len(),
		Metrics:  s.met.Snapshot(),
	}
	if s.sightings != nil {
		res.Sightings = s.sightings.Len()
	}
	if sdb, ok := s.sightings.(*store.ShardedSightingDB); ok {
		res.Epoch = sdb.Epoch()
		for _, st := range sdb.ShardStats() {
			res.Shards = append(res.Shards, msg.ShardDiag{Len: st.Len, Ops: st.Ops, Contended: st.Contended})
		}
		if ts := sdb.TierStats(); ts.Enabled {
			res.Tier = &msg.TierDiag{
				Warm:          ts.Warm,
				MemtableBytes: ts.MemtableBytes,
				Runs:          ts.Runs,
				RunBytes:      ts.RunBytes,
				MetaBytes:     ts.MetaBytes,
				DiskRecords:   ts.DiskRecords,
				DiskLive:      ts.DiskLive,
				Flushes:       ts.Flushes,
				Compactions:   ts.Compactions,
				BloomHits:     ts.BloomHits,
				BloomMisses:   ts.BloomMisses,
				Backlog:       ts.Backlog,
			}
		}
	}
	if s.pipe != nil {
		res.PipelineOps, res.PipelineHandoffs = s.pipe.Stats()
	}
	res.Repl = s.replDiag()
	s.events.mu.Lock()
	res.EventSubs = len(s.events.local)
	res.EventCoordSubs = len(s.events.coord)
	s.events.mu.Unlock()
	return res, nil
}
