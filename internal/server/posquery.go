package server

import (
	"context"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/msg"
)

// handlePosQuery implements the entry-server half of Algorithm 6-4: a
// client's position query is answered locally if this leaf is the object's
// agent; otherwise the query is forwarded up the hierarchy and the entry
// server waits for the agent's direct response.
//
// With warm caches (Section 6.5) two shortcuts apply before the tree is
// traversed: a cached position descriptor that is still accurate enough
// answers immediately, and a cached (object → agent) mapping turns the
// query into a single direct call.
func (s *Server) handlePosQuery(ctx context.Context, req msg.PosQueryReq) (msg.Message, error) {
	if !s.cfg.IsLeaf() {
		return nil, core.ErrBadRequest
	}
	s.met.Counter("pos_query_seen").Inc()

	// Local case (Algorithm 6-4, lines 1-4): this server stores the
	// visitor record.
	if res, ok := s.localDescriptor(req.OID); ok {
		s.met.Counter("pos_query_local").Inc()
		return res, nil
	}

	// Cache shortcut 1: position-descriptor cache.
	if ld, ok := s.caches.posFor(req.OID, req.AccBound, s.opts.Clock()); ok {
		s.met.Counter("pos_query_cache_pos").Inc()
		return msg.PosQueryRes{Found: true, LD: ld}, nil
	}

	// Cache shortcut 2: (object → agent) cache.
	if agent, ok := s.caches.agentFor(req.OID); ok {
		cctx, cancel := s.callCtx(ctx)
		resp, err := s.node.Call(cctx, agent, msg.PosQueryDirect{OID: req.OID})
		cancel()
		if err == nil {
			if res, ok := resp.(msg.PosQueryRes); ok && res.Found {
				s.met.Counter("pos_query_cache_agent").Inc()
				s.rememberResponse(req.OID, res)
				res.Hops = 1
				return res, nil
			}
		}
		s.caches.invalidateAgent(req.OID)
		s.met.Counter("pos_query_cache_agent_miss").Inc()
	}

	// Remote case (lines 5-8): forward upwards, wait for the direct
	// response from the agent.
	parent := s.parentForOID(req.OID)
	if parent == "" {
		// Single-server deployment and the object is unknown.
		return nil, core.ErrNotFound
	}
	opID, ch := s.pend.open()
	defer s.pend.close(opID)
	if err := s.forward(parent, msg.PosQueryFwd{
		OID:    req.OID,
		Origin: msg.Origin{Node: s.ID(), OpID: opID},
		Hops:   1,
	}); err != nil {
		// The route into the hierarchy is down (open breaker, dead
		// address): answer degraded immediately — "can't know right
		// now", not "object does not exist".
		s.met.Counter("wire_degraded_queries").Inc()
		return msg.PosQueryRes{Found: false, Partial: true}, nil
	}
	select {
	case m := <-ch:
		res, ok := m.(msg.PosQueryRes)
		if !ok {
			return nil, core.ErrBadRequest
		}
		if !res.Found {
			if res.Partial {
				// Some server on the path could not reach the agent:
				// the object may well exist behind the dark part.
				s.met.Counter("wire_degraded_queries").Inc()
				return res, nil
			}
			return nil, core.ErrNotFound
		}
		s.met.Counter("pos_query_remote").Inc()
		s.rememberResponse(req.OID, res)
		return res, nil
	case <-time.After(s.opts.QueryTimeout):
		s.met.Counter("pos_query_timeout").Inc()
		// Distinguishable from a definitive miss: the query never got an
		// answer, so the truth is unknown.
		s.met.Counter("wire_degraded_queries").Inc()
		return msg.PosQueryRes{Found: false, Partial: true}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// rememberResponse feeds the agent, area and position caches from a query
// response.
func (s *Server) rememberResponse(oid core.OID, res msg.PosQueryRes) {
	s.caches.observeAgent(oid, res.Agent)
	s.observeLeafInfo(res.AgentInfo)
	s.caches.observePos(oid, res.LD, res.MaxSpeed, s.opts.Clock())
}

// handlePosQueryDirect answers a cache-shortcut query at the agent.
func (s *Server) handlePosQueryDirect(req msg.PosQueryDirect) (msg.Message, error) {
	if !s.cfg.IsLeaf() {
		return nil, core.ErrBadRequest
	}
	if res, ok := s.localDescriptor(req.OID); ok {
		return res, nil
	}
	return nil, core.ErrNotFound
}

// localDescriptor builds a PosQueryRes from this leaf's own records.
func (s *Server) localDescriptor(oid core.OID) (msg.PosQueryRes, bool) {
	rec, ok := s.visitors.Get(oid)
	if !ok || !s.cfg.IsLeaf() {
		return msg.PosQueryRes{}, false
	}
	sight, ok := s.sightings.Get(oid)
	if !ok {
		// Visitor known but sighting lost (e.g. after restart, before
		// the object re-reported). Treated as not found here; the
		// caller may retry after RestoreVisitors took effect.
		return msg.PosQueryRes{}, false
	}
	return msg.PosQueryRes{
		Found: true,
		LD:    core.LocationDescriptor{Pos: sight.Pos, Acc: rec.OfferedAcc},
		Agent: s.ID(),
		AgentInfo: msg.LeafInfo{
			ID:   s.ID(),
			Area: s.cfg.SA,
		},
		MaxSpeed: rec.RegInfo.MaxSpeed,
	}, true
}

// maxFwdHops bounds position-query forwarding: far above any legitimate
// path length (2 × tree height + 1), it only triggers when a query bounces
// on a stale forwarding reference.
const maxFwdHops = 32

// handlePosQueryFwd implements the forwarding half of Algorithm 6-4:
// upwards until a forwarding reference is found, then down the forwarding
// path; the agent responds directly to the entry server.
func (s *Server) handlePosQueryFwd(from msg.NodeID, req msg.PosQueryFwd) {
	s.met.Counter("pos_fwd_seen").Inc()
	req.Hops++
	rec, ok := s.visitors.Get(req.OID)
	switch {
	case ok && s.cfg.IsLeaf():
		// Lines 1-5: this server is the agent; answer the entry
		// server directly.
		res, found := s.localDescriptor(req.OID)
		if !found {
			s.respondToOrigin(req.Origin, msg.PosQueryRes{OpID: req.Origin.OpID, Found: false, Hops: req.Hops})
			return
		}
		res.OpID = req.Origin.OpID
		res.Hops = req.Hops
		s.respondToOrigin(req.Origin, res)
	case ok:
		if msg.NodeID(rec.ForwardRef) == from {
			// The child this record points to just forwarded the
			// query up, i.e. it found no record. Either our record
			// is a stale leftover (a path message that arrived after
			// a later handover moved the object elsewhere) or the
			// child's record is being installed at this very moment
			// by an in-flight handover — the two cases cannot be
			// told apart here, so the record is kept and the query
			// continues climbing; the hop TTL below bounds the
			// bouncing a genuinely stale record can cause.
			s.met.Counter("pos_fwd_bounced").Inc()
			parent := s.parentForOID(req.OID)
			if parent == "" {
				s.respondToOrigin(req.Origin, msg.PosQueryRes{OpID: req.Origin.OpID, Found: false, Hops: req.Hops})
				return
			}
			s.forwardPosQueryOr(parent, req)
			return
		}
		if req.Hops > maxFwdHops {
			// A stale forwarding loop: give up quickly instead of
			// letting the entry server wait for its timeout.
			s.met.Counter("pos_fwd_ttl_exceeded").Inc()
			s.respondToOrigin(req.Origin, msg.PosQueryRes{OpID: req.Origin.OpID, Found: false, Hops: req.Hops})
			return
		}
		// Lines 6-7: follow the forwarding reference downwards.
		s.forwardPosQueryOr(msg.NodeID(rec.ForwardRef), req)
	default:
		// Lines 8-9: no record; forward upwards.
		parent := s.parentForOID(req.OID)
		if parent == "" {
			// Root without a record: the object is not tracked.
			s.respondToOrigin(req.Origin, msg.PosQueryRes{OpID: req.Origin.OpID, Found: false, Hops: req.Hops})
			return
		}
		s.forwardPosQueryOr(parent, req)
	}
}

// forwardPosQueryOr relays a position query one hop as a tracked one-way.
// When the next hop is unreachable (open breaker, dead address), the entry
// server gets an immediate degraded "unknown" — Found false with Partial
// set — instead of waiting out its query timeout: the object may well exist
// behind the dark node, so this must stay distinguishable from a definitive
// not-found.
func (s *Server) forwardPosQueryOr(to msg.NodeID, req msg.PosQueryFwd) {
	if err := s.forward(to, req); err != nil {
		s.respondToOrigin(req.Origin, msg.PosQueryRes{
			OpID: req.Origin.OpID, Found: false, Partial: true, Hops: req.Hops,
		})
	}
}
