package server_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/server"
	"locsvc/internal/transport"
)

// TestDistributedRangeQueryMatchesOracle registers objects at random
// positions across a deep hierarchy and checks, for random query areas and
// parameters, that the distributed range query returns exactly the set a
// brute-force evaluation of the Section 3.2 predicate over all known
// objects produces. This is the core correctness property of Algorithm 6-5:
// tree routing, fan-out, enlargement and coverage accounting must never
// lose or duplicate a qualifying object.
func TestDistributedRangeQueryMatchesOracle(t *testing.T) {
	spec := hierarchy.Spec{
		RootArea: geo.R(0, 0, 1600, 1600),
		Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}, {Rows: 2, Cols: 2}},
	}
	ls := newTestLS(t, spec, server.Options{AchievableAcc: 20})
	owner := ls.newClientAt(t, "owner", geo.Pt(10, 10), client.Options{})

	rng := rand.New(rand.NewSource(77))
	type known struct {
		oid core.OID
		ld  core.LocationDescriptor
	}
	var objects []known
	const n = 300
	for i := 0; i < n; i++ {
		p := geo.Pt(rng.Float64()*1600, rng.Float64()*1600)
		oid := core.OID(fmt.Sprintf("o%d", i))
		obj, err := owner.Register(ctx(t), sightingAt(string(oid), p), 20, 100, 3)
		if err != nil {
			t.Fatal(err)
		}
		objects = append(objects, known{oid: oid, ld: core.LocationDescriptor{Pos: p, Acc: obj.OfferedAcc()}})
	}
	waitFor(t, func() bool { return ls.dep.RootVisitorCount() == n }, "paths complete")

	querier := ls.newClientAt(t, "querier", geo.Pt(1500, 1500), client.Options{})
	for trial := 0; trial < 40; trial++ {
		size := 50 + rng.Float64()*600
		x := rng.Float64() * (1600 - size)
		y := rng.Float64() * (1600 - size)
		area := core.AreaFromRect(geo.R(x, y, x+size, y+size))
		reqAcc := 20 + rng.Float64()*30
		reqOverlap := 0.1 + rng.Float64()*0.9

		got, err := querier.RangeQuery(ctx(t), area, reqAcc, reqOverlap)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var want []core.OID
		for _, k := range objects {
			if area.RangeQualifies(k.ld, reqAcc, reqOverlap) {
				want = append(want, k.oid)
			}
		}
		gotIDs := make([]core.OID, len(got))
		for i, e := range got {
			gotIDs[i] = e.OID
		}
		sortOIDs(want)
		sortOIDs(gotIDs)
		if !equalOIDs(gotIDs, want) {
			t.Fatalf("trial %d (size %.0f, acc %.1f, overlap %.2f): got %d objects, oracle %d\n got: %v\nwant: %v",
				trial, size, reqAcc, reqOverlap, len(gotIDs), len(want), gotIDs, want)
		}
	}
}

// TestDistributedNeighborQueryMatchesOracle does the same for the
// nearest-neighbor expanding search.
func TestDistributedNeighborQueryMatchesOracle(t *testing.T) {
	spec := hierarchy.Spec{
		RootArea: geo.R(0, 0, 1600, 1600),
		Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
	}
	ls := newTestLS(t, spec, server.Options{AchievableAcc: 15})
	owner := ls.newClientAt(t, "owner", geo.Pt(10, 10), client.Options{})

	rng := rand.New(rand.NewSource(101))
	var entries []core.Entry
	const n = 150
	for i := 0; i < n; i++ {
		p := geo.Pt(rng.Float64()*1600, rng.Float64()*1600)
		oid := core.OID(fmt.Sprintf("o%d", i))
		obj, err := owner.Register(ctx(t), sightingAt(string(oid), p), 15, 100, 3)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, core.Entry{OID: oid, LD: core.LocationDescriptor{Pos: p, Acc: obj.OfferedAcc()}})
	}
	waitFor(t, func() bool { return ls.dep.RootVisitorCount() == n }, "paths complete")

	querier := ls.newClientAt(t, "querier", geo.Pt(800, 800), client.Options{})
	for trial := 0; trial < 25; trial++ {
		p := geo.Pt(rng.Float64()*1600, rng.Float64()*1600)
		nearQual := rng.Float64() * 100
		got, err := querier.NeighborQuery(ctx(t), p, 30, nearQual)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := core.SelectNearest(entries, p, 30, nearQual)
		if got.Nearest.OID != want.Nearest.OID {
			t.Fatalf("trial %d: nearest %s, oracle %s (dist %.1f vs %.1f)",
				trial, got.Nearest.OID, want.Nearest.OID,
				got.Nearest.LD.Pos.Dist(p), want.Nearest.LD.Pos.Dist(p))
		}
		if len(got.Near) != len(want.Near) {
			t.Fatalf("trial %d: nearObjSet size %d, oracle %d", trial, len(got.Near), len(want.Near))
		}
	}
}

// TestQueriesUnderMessageLoss injects datagram loss and verifies the
// service degrades gracefully: operations may fail or return partial
// results, but nothing deadlocks or crashes, and the system keeps serving
// once loss stops.
func TestQueriesUnderMessageLoss(t *testing.T) {
	net := transport.NewInproc(transport.InprocOptions{DropRate: 0.10, Seed: 9})
	dep, err := hierarchy.Deploy(net, quadSpec(), server.Options{
		QueryTimeout: 100 * time.Millisecond,
		CallTimeout:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close(); net.Close() })

	owner, err := client.New(net, "owner", "r.0", client.Options{Timeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { owner.Close() })

	registered := 0
	for i := 0; i < 20; i++ {
		// Registrations can be lost; retry like a real client would.
		for attempt := 0; attempt < 5; attempt++ {
			_, rerr := owner.Register(ctx(t), sightingAt(fmt.Sprintf("o%d", i),
				geo.Pt(float64(10+i*30), 100)), 10, 50, 3)
			if rerr == nil {
				registered++
				break
			}
		}
	}
	if registered < 15 {
		t.Fatalf("only %d/20 registrations survived retries", registered)
	}

	// Queries under loss: every call must return within its timeout,
	// successfully or not.
	q, err := client.New(net, "q", "r.3", client.Options{Timeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	successes := 0
	for i := 0; i < 15; i++ {
		start := time.Now()
		_, qerr := q.RangeQueryRect(ctx(t), geo.R(0, 0, 1500, 300), 50, 0.5)
		if qerr == nil {
			successes++
		}
		if time.Since(start) > 2*time.Second {
			t.Fatalf("query %d took %v despite timeouts", i, time.Since(start))
		}
	}
	if successes == 0 {
		t.Error("no query succeeded under 10% loss")
	}
}

func sortOIDs(ids []core.OID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func equalOIDs(a, b []core.OID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
