package server_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/msg"
	"locsvc/internal/server"
	"locsvc/internal/store"
	"locsvc/internal/transport"
)

// TestDedupeWindowEviction pins the time-based half of the eviction policy:
// entries older than the window are misses, and the sweep is lazy (a lookup
// or remember drops them).
func TestDedupeWindowEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }

	net := transport.NewInproc(transport.InprocOptions{})
	defer net.Close()
	ls := newDedupeLeaf(t, net, server.Options{
		Clock:        clock,
		DedupeWindow: 10 * time.Second,
	})

	probe := attachProbe(t, net, "probe")
	registerVia(t, net, "o1", geo.Pt(100, 100))

	// Seq 1 applied and remembered.
	res := callUpdate(t, probe, ls.ID(), updateReq("o1", geo.Pt(110, 100), 1))
	if res.Moved {
		t.Fatalf("in-area update reported Moved")
	}

	// Within the window a duplicate is answered from the table.
	callUpdate(t, probe, ls.ID(), updateReq("o1", geo.Pt(999, 999), 1))
	if got := ls.Metrics().Counter("updates_deduped").Value(); got != 1 {
		t.Fatalf("updates_deduped = %d, want 1", got)
	}

	// Past the window the same Seq is a miss: the update is applied anew.
	now = now.Add(11 * time.Second)
	callUpdate(t, probe, ls.ID(), updateReq("o1", geo.Pt(120, 100), 1))
	if got := ls.Metrics().Counter("updates_deduped").Value(); got != 1 {
		t.Fatalf("updates_deduped after window = %d, want still 1", got)
	}
	if got := ls.Metrics().Counter("updates_local").Value(); got != 2 {
		t.Fatalf("updates_local = %d, want 2 (initial + post-window retry)", got)
	}
}

// TestDedupeCapEviction pins the FIFO half: when the table exceeds its cap
// the oldest (sender, seq) entries fall out first.
func TestDedupeCapEviction(t *testing.T) {
	net := transport.NewInproc(transport.InprocOptions{})
	defer net.Close()
	ls := newDedupeLeaf(t, net, server.Options{DedupeCap: 3})

	probe := attachProbe(t, net, "probe")
	registerVia(t, net, "o1", geo.Pt(100, 100))

	// Seqs 1..4 through a cap of 3: Seq 1 must have been dropped, so a
	// retry of it is applied again rather than answered from the table.
	for seq := uint64(1); seq <= 4; seq++ {
		callUpdate(t, probe, ls.ID(), updateReq("o1", geo.Pt(100+float64(seq), 100), seq))
	}
	callUpdate(t, probe, ls.ID(), updateReq("o1", geo.Pt(200, 100), 1))
	if got := ls.Metrics().Counter("updates_deduped").Value(); got != 0 {
		t.Fatalf("updates_deduped = %d, want 0 (seq 1 evicted by cap)", got)
	}
	// Seq 4 is still resident.
	callUpdate(t, probe, ls.ID(), updateReq("o1", geo.Pt(300, 100), 4))
	if got := ls.Metrics().Counter("updates_deduped").Value(); got != 1 {
		t.Fatalf("updates_deduped = %d, want 1 (seq 4 still remembered)", got)
	}
}

// TestDedupeSeqZeroOptsOut pins that unstamped requests (Seq 0) are never
// remembered: every send is applied.
func TestDedupeSeqZeroOptsOut(t *testing.T) {
	net := transport.NewInproc(transport.InprocOptions{})
	defer net.Close()
	ls := newDedupeLeaf(t, net, server.Options{})

	probe := attachProbe(t, net, "probe")
	registerVia(t, net, "o1", geo.Pt(100, 100))

	for i := 0; i < 3; i++ {
		callUpdate(t, probe, ls.ID(), updateReq("o1", geo.Pt(100, 100), 0))
	}
	if got := ls.Metrics().Counter("updates_deduped").Value(); got != 0 {
		t.Fatalf("updates_deduped = %d, want 0 for unstamped requests", got)
	}
	if got := ls.Metrics().Counter("updates_local").Value(); got != 3 {
		t.Fatalf("updates_local = %d, want 3", got)
	}
}

// TestDedupeReplaysHandoverReply pins the scenario the table exists for: an
// update triggers a handover, the reply is lost, and the retry must get the
// remembered Moved reply — re-applying would fail with not_found against
// the departed record and strand the client on the old agent.
func TestDedupeReplaysHandoverReply(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	c := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})
	if _, err := c.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}

	probe := attachProbe(t, ls.net, "probe")
	// The sighting moves to r.1's quarter: handover.
	req := updateReq("o1", geo.Pt(1200, 100), 7)
	res := callUpdate(t, probe, "r.0", req)
	if !res.Moved || res.NewAgent != "r.1" {
		t.Fatalf("handover reply = %+v, want Moved to r.1", res)
	}

	// The retried duplicate: the record is gone from r.0, so only the
	// remembered reply can answer it.
	dup := callUpdate(t, probe, "r.0", req)
	if !dup.Moved || dup.NewAgent != res.NewAgent {
		t.Fatalf("duplicate reply = %+v, want remembered %+v", dup, res)
	}
	leaf, _ := ls.dep.Server("r.0")
	if got := leaf.Metrics().Counter("updates_deduped").Value(); got != 1 {
		t.Fatalf("updates_deduped = %d, want 1", got)
	}
	if got := leaf.Metrics().Counter("handover_initiated").Value(); got != 1 {
		t.Fatalf("handover_initiated = %d, want 1 (duplicate must not re-handover)", got)
	}
}

// TestDedupeClearedByRestart pins that a leaf restart loses the table with
// the process: the first post-restart update with a previously used Seq is
// applied, not answered from a stale remembered reply.
func TestDedupeClearedByRestart(t *testing.T) {
	net := transport.NewInproc(transport.InprocOptions{})
	defer net.Close()

	dir := t.TempDir()
	spec := quadSpec()
	configs, err := hierarchy.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	rootArea := core.AreaFromRect(spec.RootArea)

	servers := make(map[string]*server.Server)
	for _, cfg := range configs {
		opts := server.Options{}
		if cfg.ID == "r.0" {
			wal, werr := store.OpenFileWAL(filepath.Join(dir, "r0.wal"))
			if werr != nil {
				t.Fatal(werr)
			}
			opts.WAL = wal
		}
		srv, serr := server.New(cfg, rootArea, net, opts)
		if serr != nil {
			t.Fatal(serr)
		}
		servers[cfg.ID] = srv
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	c, err := client.New(net, "owner", "r.0", client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Register(context.Background(), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}

	probe := attachProbe(t, net, "probe")
	callUpdate(t, probe, "r.0", updateReq("o1", geo.Pt(110, 100), 5))

	// Crash and restart from the same WAL: the visitorDB survives, the
	// dedupe table does not.
	if err := servers["r.0"].Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := store.OpenFileWAL(filepath.Join(dir, "r0.wal"))
	if err != nil {
		t.Fatal(err)
	}
	restarted, err := server.New(configs[1], rootArea, net, server.Options{WAL: wal})
	if err != nil {
		t.Fatal(err)
	}
	servers["r.0"] = restarted
	if restarted.SightingCount() != 0 {
		t.Fatalf("sightings survived crash: %d", restarted.SightingCount())
	}

	// Same sender, same Seq as before the crash: this is the object's
	// recovery update and it must be applied.
	callUpdate(t, probe, "r.0", updateReq("o1", geo.Pt(120, 100), 5))
	if got := restarted.Metrics().Counter("updates_deduped").Value(); got != 0 {
		t.Fatalf("updates_deduped = %d, want 0 after restart", got)
	}
	if restarted.SightingCount() != 1 {
		t.Fatalf("recovery update not applied: %d sightings", restarted.SightingCount())
	}
}

// --- helpers ---

// newDedupeLeaf deploys the quad hierarchy and returns the r.0 leaf.
func newDedupeLeaf(t *testing.T, net *transport.Inproc, opts server.Options) *server.Server {
	t.Helper()
	dep, err := hierarchy.Deploy(net, quadSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	leaf, ok := dep.Server("r.0")
	if !ok {
		t.Fatal("no r.0")
	}
	return leaf
}

// attachProbe attaches a bare node that only issues calls.
func attachProbe(t *testing.T, net *transport.Inproc, id msg.NodeID) transport.Node {
	t.Helper()
	nd, err := net.Attach(id, func(context.Context, msg.NodeID, msg.Message) (msg.Message, error) {
		return nil, errors.New("probe serves nothing")
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nd.Close() })
	return nd
}

// registerVia registers an object through a throwaway client. Visitor
// records are keyed by OID, so the probe node may update it afterwards.
func registerVia(t *testing.T, net *transport.Inproc, oid string, p geo.Point) {
	t.Helper()
	c, err := client.New(net, "owner-"+msg.NodeID(oid), "r.0", client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Register(cctx, sightingAt(oid, p), 10, 50, 3); err != nil {
		t.Fatal(err)
	}
}

func updateReq(oid string, p geo.Point, seq uint64) msg.UpdateReq {
	return msg.UpdateReq{S: sightingAt(oid, p), Seq: seq}
}

func callUpdate(t *testing.T, probe transport.Node, to msg.NodeID, req msg.UpdateReq) msg.UpdateRes {
	t.Helper()
	cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := probe.Call(cctx, to, req)
	if err != nil {
		t.Fatalf("update call: %v", err)
	}
	res, ok := resp.(msg.UpdateRes)
	if !ok {
		t.Fatalf("update reply = %T", resp)
	}
	return res
}
