package server_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/server"
)

// TestPolygonRangeQuery runs distributed range queries with non-rectangular
// (convex polygon) areas spanning several leaves and checks the results
// against the oracle — the paper allows query areas to be arbitrary
// polygons, not just rectangles.
func TestPolygonRangeQuery(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{AchievableAcc: 15})
	owner := ls.newClientAt(t, "owner", geo.Pt(10, 10), client.Options{})

	rng := rand.New(rand.NewSource(55))
	var known []core.Entry
	const n = 200
	for i := 0; i < n; i++ {
		p := geo.Pt(rng.Float64()*1500, rng.Float64()*1500)
		oid := core.OID(fmt.Sprintf("o%d", i))
		obj, err := owner.Register(ctx(t), sightingAt(string(oid), p), 15, 100, 3)
		if err != nil {
			t.Fatal(err)
		}
		known = append(known, core.Entry{OID: oid, LD: core.LocationDescriptor{Pos: p, Acc: obj.OfferedAcc()}})
	}
	waitFor(t, func() bool { return ls.dep.RootVisitorCount() == n }, "paths complete")

	querier := ls.newClientAt(t, "querier", geo.Pt(1400, 100), client.Options{})
	shapes := []core.Area{
		// Hexagon around the center, straddling all four leaves.
		{Vertices: geo.RegularPolygon(geo.Pt(750, 750), 300, 6)},
		// Triangle in the west.
		core.AreaFromPoints([]geo.Point{{X: 100, Y: 100}, {X: 600, Y: 400}, {X: 100, Y: 900}}),
		// Hull of a scattered point set.
		core.AreaFromPoints([]geo.Point{
			{X: 900, Y: 200}, {X: 1300, Y: 350}, {X: 1100, Y: 800}, {X: 950, Y: 600}, {X: 1000, Y: 250},
		}),
	}
	for si, area := range shapes {
		if !area.Valid() {
			t.Fatalf("shape %d invalid", si)
		}
		got, err := querier.RangeQuery(ctx(t), area, 20, 0.5)
		if err != nil {
			t.Fatalf("shape %d: %v", si, err)
		}
		var want []core.OID
		for _, k := range known {
			if area.RangeQualifies(k.LD, 20, 0.5) {
				want = append(want, k.OID)
			}
		}
		gotIDs := make([]core.OID, len(got))
		for i, e := range got {
			gotIDs[i] = e.OID
		}
		sort.Slice(gotIDs, func(i, j int) bool { return gotIDs[i] < gotIDs[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !equalOIDs(gotIDs, want) {
			t.Fatalf("shape %d: got %v, oracle %v", si, gotIDs, want)
		}
		if si == 0 && len(want) == 0 {
			t.Fatal("hexagon query matched nothing; test population too sparse")
		}
	}
}
