package server

import (
	"hash/fnv"

	"locsvc/internal/core"
	"locsvc/internal/msg"
)

// Parent selection under root partitioning (Section 4). When the parent
// service area is served by a group of partition servers, object-keyed
// messages — forwarding-path maintenance, handover, position queries — must
// reach the partition holding the object's visitor record, selected by a
// hash of the object id (the paper's "portion of the object id", as in the
// GSM Home Location Register). Geometric messages (range-query and event
// routing) carry no object key; they go to a partition chosen by operation
// id so the fan-out happens exactly once while load spreads evenly.

// parentForOID returns the parent partition responsible for oid.
func (s *Server) parentForOID(oid core.OID) msg.NodeID {
	group := s.cfg.ParentGroup
	if len(group) == 0 {
		return msg.NodeID(s.cfg.Parent)
	}
	h := fnv.New64a()
	h.Write([]byte(oid))
	return msg.NodeID(group[h.Sum64()%uint64(len(group))])
}

// parentForKey returns a parent partition chosen by an arbitrary key.
func (s *Server) parentForKey(key uint64) msg.NodeID {
	group := s.cfg.ParentGroup
	if len(group) == 0 {
		return msg.NodeID(s.cfg.Parent)
	}
	return msg.NodeID(group[key%uint64(len(group))])
}

// hashString hashes an arbitrary string key for partition selection.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// isParent reports whether the node id belongs to the parent (group).
func (s *Server) isParent(id msg.NodeID) bool {
	if msg.NodeID(s.cfg.Parent) == id {
		return true
	}
	for _, p := range s.cfg.ParentGroup {
		if msg.NodeID(p) == id {
			return true
		}
	}
	return false
}
