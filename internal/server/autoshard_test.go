package server_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/server"
	"locsvc/internal/store"
)

// TestAutoShardGrowsUnderLoad deploys a single-leaf server with an
// AutoShard policy whose Min bound exceeds the starting shard count and a
// fast janitor tick, hammers it with concurrent updates from many
// clients, and checks that the janitor-driven policy resizes the sighting
// store live — visible through the diagnostics message — without losing a
// single update. The Min-bound enforcement makes the resize deterministic
// on any machine; organic contention-driven decisions (which need real
// multi-core lock pressure) are covered by the store-level policy tests.
func TestAutoShardGrowsUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-driven janitor test")
	}
	spec := hierarchy.Spec{RootArea: geo.R(0, 0, 1500, 1500)}
	ls := newTestLS(t, spec, server.Options{
		AchievableAcc:   10,
		JanitorInterval: 20 * time.Millisecond,
		AutoShard: &store.AutoShardConfig{
			Min: 4, Max: 8,
			GrowAt:   0.0001, // any contention at all is evidence
			Patience: 1, Cooldown: 1, MinOps: 64,
		},
	})
	cl := ls.newClientAt(t, "diag-client", geo.Pt(10, 10), client.Options{Timeout: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const (
		workers   = 8
		perWorker = 12
	)
	type obj struct{ o *client.TrackedObject }
	objs := make([][]obj, workers)
	for w := 0; w < workers; w++ {
		owner := ls.newClientAt(t, fmt.Sprintf("own-%d", w), geo.Pt(10, 10), client.Options{Timeout: 10 * time.Second})
		for i := 0; i < perWorker; i++ {
			o, err := owner.Register(ctx, core.Sighting{
				OID: core.OID(fmt.Sprintf("as-o%d-%d", w, i)), T: time.Now(),
				Pos: geo.Pt(float64(10+w*10), float64(10+i*10)), SensAcc: 5,
			}, 10, 100, 1000)
			if err != nil {
				t.Fatal(err)
			}
			objs[w] = append(objs[w], obj{o})
		}
	}

	// Update storm: enough rounds for several janitor ticks to observe
	// real contention.
	deadline := time.Now().Add(2 * time.Second)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for time.Now().Before(deadline) {
				for i, ob := range objs[w] {
					s := core.Sighting{
						OID: core.OID(fmt.Sprintf("as-o%d-%d", w, i)), T: time.Now(),
						Pos: geo.Pt(rng.Float64()*1400+10, rng.Float64()*1400+10), SensAcc: 5,
					}
					if err := ob.o.Update(ctx, s); err != nil {
						t.Errorf("update: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// A couple more ticks so the policy can see the tail of the storm.
	time.Sleep(100 * time.Millisecond)

	res, err := cl.Diag(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsLeaf {
		t.Fatalf("diag: entry server not a leaf: %+v", res)
	}
	if got, want := res.Sightings, workers*perWorker; got != want {
		t.Errorf("diag sightings = %d, want %d", got, want)
	}
	if len(res.Shards) < 4 {
		t.Errorf("AutoShard never grew the store to its Min bound: %d shards after the update storm", len(res.Shards))
	}
	if res.Epoch == 0 {
		t.Errorf("epoch still 0 after a grow decision")
	}
	if res.PipelineOps == 0 {
		t.Errorf("diag pipeline ops = 0 after the update storm")
	}
	if !strings.Contains(res.Metrics, "sighting_shards = ") {
		t.Errorf("metrics snapshot missing the sighting_shards gauge:\n%s", res.Metrics)
	}
	if !strings.Contains(res.Metrics, "sighting_shard_occupancy.000 = ") {
		t.Errorf("metrics snapshot missing per-shard occupancy gauges:\n%s", res.Metrics)
	}
	if !strings.Contains(res.Metrics, "sighting_resizes = ") {
		t.Errorf("metrics snapshot missing the resize counter:\n%s", res.Metrics)
	}

	// Every object must still be queryable through the resized layout.
	for w := 0; w < workers; w++ {
		if _, err := cl.PosQuery(ctx, core.OID(fmt.Sprintf("as-o%d-0", w))); err != nil {
			t.Errorf("PosQuery(as-o%d-0) after resize: %v", w, err)
		}
	}
}

// TestDiagNonLeaf: the diagnostics message must answer on inner servers
// too, without shard data.
func TestDiagNonLeaf(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{AchievableAcc: 10})
	srv, ok := ls.dep.Server(ls.dep.Root())
	if !ok {
		t.Fatal("no root server")
	}
	cl, err := client.New(ls.net, "diag-root-client", srv.ID(), client.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Diag(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.IsLeaf || len(res.Shards) != 0 {
		t.Errorf("root diag claims leaf data: %+v", res)
	}
	if res.Server != srv.ID() {
		t.Errorf("diag server = %s, want %s", res.Server, srv.ID())
	}
}

// TestNeighborQueryAtExactObjectPosition: a nearest-neighbor query issued
// from exactly an object's recorded position with nearQual 0 used to
// return not-found — the collection window around the nearest candidate
// had radius 0, so its area was zero and every candidate's overlap degree
// collapsed to 0 (pre-existing since the seed; surfaced by the resize
// end-to-end drive). Both resolution paths are pinned: the provably-local
// cursor walk (query deep inside a leaf) and the distributed expanding
// ring (query on a leaf border).
func TestNeighborQueryAtExactObjectPosition(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{AchievableAcc: 10})
	ctx := context.Background()
	owner := ls.newClientAt(t, "nn-owner", geo.Pt(100, 100), client.Options{Timeout: 5 * time.Second})
	positions := []geo.Point{
		geo.Pt(100, 100), // deep inside leaf r.0: local fast path
		geo.Pt(740, 740), // near the r.0 corner: distributed ring
	}
	for i, p := range positions {
		if _, err := owner.Register(ctx, core.Sighting{
			OID: core.OID(fmt.Sprintf("exact-%d", i)), T: time.Now(), Pos: p, SensAcc: 5,
		}, 10, 100, 3); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range positions {
		res, err := owner.NeighborQuery(ctx, p, 100, 0)
		if err != nil {
			t.Fatalf("NeighborQuery at exact position %v: %v", p, err)
		}
		if res.Nearest.OID != core.OID(fmt.Sprintf("exact-%d", i)) {
			t.Errorf("nearest at %v = %s, want exact-%d", p, res.Nearest.OID, i)
		}
	}
}
