package server

import (
	"testing"
	"time"

	"locsvc/internal/store"
)

// TestJanitorIntervalDefaults pins the feature-derived janitor cadence —
// in particular that enabling AutoShard caps the tick at its 5s
// observation cadence even when a long SightingTTL (or the leisurely
// WAL-compaction default) would otherwise stretch it to minutes, while an
// explicit operator value always wins.
func TestJanitorIntervalDefaults(t *testing.T) {
	auto := &store.AutoShardConfig{}
	for _, tc := range []struct {
		name string
		in   Options
		want time.Duration
	}{
		{"ttl drives", Options{SightingTTL: time.Minute}, 15 * time.Second},
		{"autoshard caps long ttl", Options{SightingTTL: 5 * time.Minute, AutoShard: auto}, 5 * time.Second},
		{"short ttl under the cap kept", Options{SightingTTL: 8 * time.Second, AutoShard: auto}, 2 * time.Second},
		{"autoshard alone", Options{AutoShard: auto}, 5 * time.Second},
		{"wal alone", Options{SightingWAL: &store.ShardedWAL{}}, time.Minute},
		{"autoshard caps wal default", Options{SightingWAL: &store.ShardedWAL{}, AutoShard: auto}, 5 * time.Second},
		{"explicit wins", Options{JanitorInterval: 90 * time.Second, SightingTTL: time.Minute, AutoShard: auto}, 90 * time.Second},
		{"nothing enabled", Options{}, 0},
	} {
		got := tc.in.withDefaults().JanitorInterval
		if got != tc.want {
			t.Errorf("%s: JanitorInterval = %v, want %v", tc.name, got, tc.want)
		}
	}
}
