package server_test

import (
	"testing"

	"locsvc/internal/client"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/msg"
	"locsvc/internal/server"
	"locsvc/internal/transport"
)

// TestEndToEndOverUDP runs the full protocol stack — registration, updates,
// handover, position and range queries — over real UDP sockets, the
// transport of the paper's prototype.
func TestEndToEndOverUDP(t *testing.T) {
	net := transport.NewUDP()
	defer net.Close()

	spec := hierarchy.Spec{
		RootArea: geo.R(0, 0, 1500, 1500),
		Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
	}
	dep, err := hierarchy.Deploy(net, spec, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	entry, _ := dep.LeafFor(geo.Pt(100, 100))
	c, err := client.New(net, msg.NodeID("udp-client"), entry, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := c.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3)
	if err != nil {
		t.Fatalf("register over UDP: %v", err)
	}
	if obj.Agent() != "r.0" {
		t.Fatalf("agent = %s", obj.Agent())
	}

	if err := obj.Update(ctx(t), sightingAt("o1", geo.Pt(300, 300))); err != nil {
		t.Fatalf("update over UDP: %v", err)
	}

	ld, err := c.PosQuery(ctx(t), "o1")
	if err != nil {
		t.Fatalf("position query over UDP: %v", err)
	}
	if ld.Pos != geo.Pt(300, 300) {
		t.Errorf("ld = %+v", ld)
	}

	// Handover across a leaf boundary over UDP.
	if err := obj.Update(ctx(t), sightingAt("o1", geo.Pt(900, 300))); err != nil {
		t.Fatalf("handover over UDP: %v", err)
	}
	if obj.Agent() != "r.1" {
		t.Errorf("agent after handover = %s", obj.Agent())
	}

	// Distributed range query over UDP.
	objs, err := c.RangeQueryRect(ctx(t), geo.R(800, 200, 1000, 400), 25, 0.5)
	if err != nil {
		t.Fatalf("range query over UDP: %v", err)
	}
	if len(objs) != 1 || objs[0].OID != "o1" {
		t.Errorf("range result = %+v", objs)
	}

	// Nearest neighbor over UDP.
	res, err := c.NeighborQuery(ctx(t), geo.Pt(850, 250), 25, 0)
	if err != nil {
		t.Fatalf("neighbor query over UDP: %v", err)
	}
	if res.Nearest.OID != "o1" {
		t.Errorf("nearest = %+v", res.Nearest)
	}
}
