package server

import (
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
	"locsvc/internal/store"
)

// VisitorForTest exposes visitor records to black-box tests.
func (s *Server) VisitorForTest(oid core.OID) (store.VisitorRecord, bool) {
	return s.visitors.Get(oid)
}

// CachedLeafForTest exposes the (leaf → area) cache to black-box tests.
func (s *Server) CachedLeafForTest(p geo.Point) (msg.NodeID, bool) {
	return s.caches.leafFor(p)
}

// EventSubCountForTest exposes the number of locally installed event
// subscriptions.
func (s *Server) EventSubCountForTest() int {
	s.events.mu.Lock()
	defer s.events.mu.Unlock()
	return len(s.events.local)
}

// EventCoordTotalForTest exposes a coordinated subscription's aggregated
// count and predicate state.
func (s *Server) EventCoordTotalForTest(subID string) (total int, fired bool, ok bool) {
	s.events.mu.Lock()
	defer s.events.mu.Unlock()
	cs, ok := s.events.coord[subID]
	if !ok {
		return 0, false, false
	}
	return cs.total, cs.fired, true
}

// EventLocalCountForTest exposes a leaf subscription's last reported
// local count.
func (s *Server) EventLocalCountForTest(subID string) (int, bool) {
	s.events.mu.Lock()
	defer s.events.mu.Unlock()
	ls, ok := s.events.local[subID]
	if !ok {
		return 0, false
	}
	return ls.lastCount, true
}

// EventMeetingPairsForTest exposes a meeting subscription's
// currently-meeting pair set on this leaf (each pair ordered a <= b).
func (s *Server) EventMeetingPairsForTest(subID string) [][2]core.OID {
	s.events.mu.Lock()
	defer s.events.mu.Unlock()
	ls, ok := s.events.local[subID]
	if !ok {
		return nil
	}
	out := make([][2]core.OID, 0, len(ls.firedPairs))
	for k := range ls.firedPairs {
		out = append(out, [2]core.OID{k.a, k.b})
	}
	return out
}
