package server

import (
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
	"locsvc/internal/store"
)

// VisitorForTest exposes visitor records to black-box tests.
func (s *Server) VisitorForTest(oid core.OID) (store.VisitorRecord, bool) {
	return s.visitors.Get(oid)
}

// CachedLeafForTest exposes the (leaf → area) cache to black-box tests.
func (s *Server) CachedLeafForTest(p geo.Point) (msg.NodeID, bool) {
	return s.caches.leafFor(p)
}

// EventSubCountForTest exposes the number of locally installed event
// subscriptions.
func (s *Server) EventSubCountForTest() int {
	s.events.mu.Lock()
	defer s.events.mu.Unlock()
	return len(s.events.local)
}
