package server

import (
	"context"

	"locsvc/internal/core"
	"locsvc/internal/msg"
	"locsvc/internal/store"
)

// handleUpdate implements Algorithm 6-2 (processing of position updates) at
// the object's agent. If the sighting stays inside the service area the
// sightingDB is updated in place; otherwise a handover transfers the
// tracking responsibility and the reply tells the object its new agent.
func (s *Server) handleUpdate(ctx context.Context, from msg.NodeID, req msg.UpdateReq) (msg.Message, error) {
	if !s.cfg.IsLeaf() {
		return nil, core.ErrBadRequest
	}
	if err := req.S.Validate(); err != nil {
		return nil, core.ErrBadRequest
	}
	// A standby never accepts writes — an update applied here would fork
	// the mirror from its primary. Redirect the client with the standard
	// moved reply; nothing is remembered in the dedupe window, so a retry
	// straddling a failover is re-answered by whoever is primary then.
	if r := s.repl; r != nil && !r.primary.Load() {
		s.met.Counter("updates_redirected_standby").Inc()
		return msg.UpdateRes{
			Moved:     true,
			NewAgent:  r.peer,
			AgentInfo: msg.LeafInfo{ID: r.peer, Area: s.cfg.SA},
		}, nil
	}
	// A transport-level retry whose first attempt was applied — only the
	// reply was lost — gets the remembered reply without touching the
	// stores. Critical after a handover: re-applying would fail with
	// not_found against the departed record and strand the client on the
	// old agent.
	if reply, ok := s.dedupe.lookup(from, req.Seq); ok {
		s.met.Counter("updates_deduped").Inc()
		return reply, nil
	}
	rec, registered := s.visitors.Get(req.S.OID)
	if !registered {
		return nil, core.ErrNotFound
	}

	if s.inArea(req.S.Pos) {
		// Line 8: plain in-area update, batched per shard by the
		// pipeline under concurrency.
		s.pipe.Put(req.S)
		s.notePutCommitted()
		s.met.Counter("updates_local").Inc()
		res := msg.UpdateRes{Moved: false, OfferedAcc: rec.OfferedAcc}
		s.dedupe.remember(from, req.Seq, res)
		return res, nil
	}

	// Lines 1-6: the object left the service area — hand over.
	s.met.Counter("handover_initiated").Inc()
	res, err := s.forwardHandover(ctx, msg.HandoverReq{
		S:        req.S,
		RegInfo:  rec.RegInfo,
		OldAgent: s.ID(),
	})
	if err != nil {
		return nil, err
	}
	// Remove the visitor and sighting records (lines 5-6).
	if d, ok := s.sightings.RemoveDelta(req.S.OID); ok {
		s.noteRemovals([]store.Delta{d})
	}
	if _, derr := s.visitors.Remove(req.S.OID); derr != nil {
		s.met.Counter("visitor_db_errors").Inc()
	}
	// Inform the tracked object of its new agent (line 4). Failed
	// handovers are deliberately not remembered: a retry should attempt
	// the handover again, not replay the failure.
	ures := msg.UpdateRes{
		Moved:      true,
		NewAgent:   res.NewAgent,
		AgentInfo:  res.AgentInfo,
		OfferedAcc: res.OfferedAcc,
	}
	s.dedupe.remember(from, req.Seq, ures)
	return ures, nil
}

// forwardHandover starts handover processing: with a warm (leaf → area)
// cache the old agent contacts the new leaf directly and repairs the tree
// afterwards (Section 6.5); otherwise the request climbs the hierarchy as
// in Algorithm 6-3.
func (s *Server) forwardHandover(ctx context.Context, req msg.HandoverReq) (msg.HandoverRes, error) {
	cctx, cancel := s.callCtx(ctx)
	defer cancel()

	if leaf, ok := s.caches.leafFor(req.S.Pos); ok && leaf != s.ID() {
		direct := req
		direct.Direct = true
		resp, err := s.node.Call(cctx, leaf, direct)
		if err == nil {
			if hr, ok := resp.(msg.HandoverRes); ok {
				s.met.Counter("handover_direct").Inc()
				// Prune the old branch bottom-up; the repair
				// CreatePath from the new agent re-points the
				// LCA (see handleRemovePath for the guards).
				if s.parent() != "" {
					s.forwardPath(s.parentForOID(req.S.OID), msg.RemovePath{
						OID:       req.S.OID,
						SightingT: req.S.T,
						HasNewPos: true,
						NewPos:    req.S.Pos,
					})
				}
				return hr, nil
			}
		}
		// Stale cache entry or unreachable leaf: invalidate and fall
		// back to the hierarchy.
		s.caches.invalidateLeaf(leaf)
		s.met.Counter("handover_direct_miss").Inc()
	}

	parent := s.parentForOID(req.S.OID)
	if parent == "" {
		return msg.HandoverRes{}, core.ErrOutOfArea
	}
	resp, err := s.node.Call(cctx, parent, req)
	if err != nil {
		return msg.HandoverRes{}, err
	}
	hr, ok := resp.(msg.HandoverRes)
	if !ok {
		return msg.HandoverRes{}, core.ErrBadRequest
	}
	s.observeLeafInfo(hr.AgentInfo)
	return hr, nil
}

// handleHandover implements Algorithm 6-3 (handover processing). The
// request climbs until the sighting lies inside the receiver's service
// area, descends to the responsible leaf, and the response travels back
// along the same path while each hop fixes its forwarding references.
func (s *Server) handleHandover(ctx context.Context, from msg.NodeID, req msg.HandoverReq) (msg.Message, error) {
	req.Hops++
	s.met.Counter("handover_seen").Inc()

	if req.Direct {
		// Cache-shortcut delivery straight to this leaf (Section 6.5).
		if !s.cfg.IsLeaf() || !s.inArea(req.S.Pos) {
			return nil, core.ErrOutOfArea
		}
		res, err := s.becomeAgent(req)
		if err != nil {
			return nil, err
		}
		// Repair the forwarding path: a full-height CreatePath, so
		// the root always learns the newest branch even when stale
		// leftover records exist on the way up.
		if s.parent() != "" {
			s.forwardPath(s.parentForOID(req.S.OID), msg.CreatePath{
				OID: req.S.OID, Leaf: s.leafInfo(), SightingT: req.S.T,
			})
		}
		return res, nil
	}

	if !s.inArea(req.S.Pos) {
		// Lines 16-20: forward upwards and drop our forwarding
		// reference once the response arrives.
		parent := s.parentForOID(req.S.OID)
		if parent == "" {
			return nil, core.ErrOutOfArea
		}
		cctx, cancel := s.callCtx(ctx)
		defer cancel()
		resp, err := s.node.Call(cctx, parent, req)
		if err != nil {
			return nil, err
		}
		hr, ok := resp.(msg.HandoverRes)
		if !ok {
			return nil, core.ErrBadRequest
		}
		if _, derr := s.visitors.Remove(req.S.OID); derr != nil {
			s.met.Counter("visitor_db_errors").Inc()
		}
		hr.Hops++
		return hr, nil
	}

	if s.cfg.IsLeaf() {
		// Lines 2-7: this leaf becomes the new agent.
		return s.becomeAgent(req)
	}

	// Lines 8-15: forward downwards and create/reset the forwarding
	// reference to the child on the new path.
	child, ok := s.childFor(req.S.Pos)
	if !ok {
		return nil, core.ErrOutOfArea
	}
	cctx, cancel := s.callCtx(ctx)
	defer cancel()
	resp, err := s.node.Call(cctx, msg.NodeID(child.ID), req)
	if err != nil {
		return nil, err
	}
	hr, ok := resp.(msg.HandoverRes)
	if !ok {
		return nil, core.ErrBadRequest
	}
	if err := s.visitors.Put(store.VisitorRecord{OID: req.S.OID, ForwardRef: child.ID, PathT: req.S.T}); err != nil {
		s.met.Counter("visitor_db_errors").Inc()
	}
	hr.Hops++
	return hr, nil
}

// becomeAgent installs the visitor and sighting records on the new agent
// (Algorithm 6-3 lines 3-7) and returns the handover response. The offered
// accuracy is recomputed from this leaf's achievable accuracy, as different
// leaves may sit on different sensor infrastructure.
func (s *Server) becomeAgent(req msg.HandoverReq) (msg.HandoverRes, error) {
	offered, _ := req.RegInfo.OfferedAcc(s.opts.AchievableAcc)
	rec := store.VisitorRecord{
		OID:        req.S.OID,
		OfferedAcc: offered,
		RegInfo:    req.RegInfo,
		PathT:      req.S.T,
	}
	if err := s.visitors.Put(rec); err != nil {
		s.met.Counter("visitor_db_errors").Inc()
		return msg.HandoverRes{}, err
	}
	s.pipe.Put(req.S)
	s.notePutCommitted()
	s.met.Counter("handover_accepted").Inc()

	// If the accuracy this leaf can offer differs from the registered
	// desire, notify the registering instance (Section 3.1,
	// notifyAvailAcc).
	if offered > req.RegInfo.MinAcc || offered != req.RegInfo.DesAcc {
		if reg := req.RegInfo.Registrant; reg != "" && offered != req.RegInfo.DesAcc {
			s.sendOrCount(msg.NodeID(reg), msg.NotifyAvailAcc{OID: req.S.OID, OfferedAcc: offered})
		}
	}
	return msg.HandoverRes{
		NewAgent:   s.ID(),
		AgentInfo:  s.leafInfo(),
		OfferedAcc: offered,
		Hops:       req.Hops,
	}, nil
}
