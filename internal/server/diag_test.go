package server_test

import (
	"fmt"
	"testing"

	"locsvc/internal/core"
)

// appended diagnostic: dump visitor records for lost objects
func dumpObject(t *testing.T, ls *testLS, oid core.OID) {
	t.Helper()
	out := ""
	for id, srv := range ls.dep.Servers {
		if rec, ok := srv.VisitorForTest(oid); ok {
			out += fmt.Sprintf("  %s: ref=%q pathT=%s\n", id, rec.ForwardRef, rec.PathT.Format("15:04:05.000000"))
		}
	}
	t.Logf("records for %s:\n%s", oid, out)
}
