package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
	"locsvc/internal/store"
	"locsvc/internal/transport"
)

// This file is the server half of hot-standby leaf replication. A leaf
// configured with Options.ReplPeer runs as one of a primary/standby pair:
//
//   - The primary's committed writes are observed through the store tees
//     (sighting WAL drain order, visitor log commit order) and shipped to
//     the standby as seq-numbered, batched ReplAppend calls — one stream
//     per sighting shard plus one for the visitor database, so per-shard
//     apply order is preserved without a global sequencer.
//   - Tier-structure changes (flush, compaction) replicate as ReplRuns
//     records; the standby fetches any run file it lacks in chunks
//     (RunFetch) and installs the list through the same atomic manifest
//     swap the primary used. Bootstrap and gap healing are a ReplSnapshot
//     record: runs are bulk-fetched, the memtable state travels in the
//     record, and nothing is replayed.
//   - The parent health-checks the primary (Options.Replicas) and on
//     sustained failure promotes the standby (Promote), rebinds its child
//     record and rewrites its forwarding references. Promotion increments
//     the fencing epoch: a zombie primary's late appends carry the old
//     epoch, are answered Fenced, and the zombie demotes itself to
//     standby, catching up from the new primary's runs and WAL tail.
//
// What failover can lose: only the unacknowledged WAL tail — records the
// old primary committed locally but had not yet shipped (or had shipped
// without receiving the ack). Clients recover those through their own
// Seq-stamped retries; the promoted standby's reply dedupe window starts
// empty, so a retry straddling the failover is applied again rather than
// answered from memory — which is safe, because updates are idempotent
// per (OID, T) and registration re-application is guarded by the
// visitorDB. Queries between promotion and the next client update may
// see the object's last replicated position instead of its very latest.

// Replication roles.
const (
	replRolePrimary = "primary"
	replRoleStandby = "standby"
)

const (
	// replBatchMax bounds the records of one ReplAppend.
	replBatchMax = 256
	// replQueueCap bounds one stream's pending queue. Overflow (standby
	// down or far behind) drops the queue and schedules a snapshot — the
	// bounded-memory alternative to buffering an unbounded tail.
	replQueueCap = 8192
	// replSendIdle is the sender's pause after a failed append before it
	// tries again; peer-down periods burn one retry budget per pause.
	replSendIdle = 200 * time.Millisecond
	// replMarkerOp tags an in-queue snapshot placeholder. It never goes
	// on the wire: the sender substitutes the snapshot payload at the
	// marker's stream position before sending.
	replMarkerOp msg.ReplOp = 255
)

// replState is one leaf's half of a primary/standby pair.
type replState struct {
	s    *Server
	peer msg.NodeID
	// sdb is the leaf's sharded sighting store (replication requires it).
	sdb *store.ShardedSightingDB

	primary atomic.Bool
	epoch   atomic.Uint64
	tokens  atomic.Uint64 // snapshot marker tokens

	// streams holds one sender stream per sighting shard plus the visitor
	// stream at index len-1.
	streams []*replStream

	// Receiver side: per-stream apply serialization and the next expected
	// sequence number.
	recvMu   []sync.Mutex
	recvNext []uint64

	// Counters surfaced through DiagRes.Repl and the metrics gauges.
	acked         atomic.Int64
	fenced        atomic.Int64
	runsInstalled atomic.Int64
	resyncs       atomic.Int64
}

// replStream is the sender state of one replication stream. recs[i] has
// sequence number firstSeq+i; acknowledged prefixes are dropped.
type replStream struct {
	id   int
	mu   sync.Mutex
	cond *sync.Cond

	recs     []msg.ReplRecord
	firstSeq uint64

	// needSync schedules a snapshot before the next send (bootstrap, gap
	// NACK, queue overflow, promotion). syncTok, when non-zero, is the WAL
	// marker the sender is waiting to surface in the queue; snapRec is the
	// snapshot payload to substitute at the marker's position.
	needSync bool
	syncTok  uint64
	snapRec  *msg.ReplRecord
}

func newReplState(s *Server, peer msg.NodeID, sdb *store.ShardedSightingDB, standby bool) *replState {
	n := sdb.NumShards()
	r := &replState{
		s:        s,
		peer:     peer,
		sdb:      sdb,
		streams:  make([]*replStream, n+1),
		recvMu:   make([]sync.Mutex, n+1),
		recvNext: make([]uint64, n+1),
	}
	for i := range r.streams {
		st := &replStream{id: i, firstSeq: 1}
		st.cond = sync.NewCond(&st.mu)
		r.streams[i] = st
	}
	for i := range r.recvNext {
		r.recvNext[i] = 1
	}
	r.epoch.Store(1)
	if !standby {
		r.primary.Store(true)
		// A fresh primary cannot know what the standby has: every stream
		// starts with a snapshot and lets seq numbering take over from
		// there.
		for _, st := range r.streams {
			st.needSync = true
		}
	}
	return r
}

func (r *replState) visitorStream() int { return len(r.streams) - 1 }

func (r *replState) role() string {
	if r.primary.Load() {
		return replRolePrimary
	}
	return replRoleStandby
}

// pendingTotal sums the streams' unacknowledged queue lengths — the
// replication lag, in records.
func (r *replState) pendingTotal() int64 {
	var n int64
	for _, st := range r.streams {
		st.mu.Lock()
		n += int64(len(st.recs))
		st.mu.Unlock()
	}
	return n
}

// ---------------------------------------------------------------------------
// Tee implementations: the primary's committed writes enter the streams
// here. All of these run under store locks — enqueue only, never block.

func (r *replState) TeePut(shard int, batch []core.Sighting) {
	if !r.primary.Load() || len(batch) == 0 {
		return
	}
	// The WAL writer recycles its batch slices; the queue needs its own.
	cp := make([]core.Sighting, len(batch))
	copy(cp, batch)
	r.streams[shard].enqueue(msg.ReplRecord{Op: msg.ReplSightingPut, Sightings: cp})
}

func (r *replState) TeeRemove(shard int, id core.OID) {
	if !r.primary.Load() {
		return
	}
	r.streams[shard].enqueue(msg.ReplRecord{Op: msg.ReplSightingRemove, OID: id})
}

func (r *replState) TeeMark(shard int, token uint64) {
	if !r.primary.Load() {
		return
	}
	r.streams[shard].enqueue(msg.ReplRecord{Op: replMarkerOp, NextSeq: token})
}

func (r *replState) TeeVisitorPut(rec store.VisitorRecord) {
	if !r.primary.Load() {
		return
	}
	r.streams[r.visitorStream()].enqueue(msg.ReplRecord{Op: msg.ReplVisitorPut, Visitor: visitorState(rec)})
}

func (r *replState) TeeVisitorRemove(id core.OID) {
	if !r.primary.Load() {
		return
	}
	r.streams[r.visitorStream()].enqueue(msg.ReplRecord{Op: msg.ReplVisitorRemove, OID: id})
}

// notifyRuns is the store's tier-change notifier (flush, compaction).
// Runs under the shard's write lock, after the flushed records' tee — see
// store/repl.go for the ordering proof.
func (r *replState) notifyRuns(shard int, runs []string, nextSeq uint64, clearMem bool) {
	if !r.primary.Load() {
		return
	}
	r.streams[shard].enqueue(msg.ReplRecord{Op: msg.ReplRuns, Runs: runs, NextSeq: nextSeq, ClearMem: clearMem})
}

func visitorState(rec store.VisitorRecord) msg.VisitorState {
	return msg.VisitorState{
		OID:        rec.OID,
		ForwardRef: rec.ForwardRef,
		OfferedAcc: rec.OfferedAcc,
		RegInfo:    rec.RegInfo,
		PathT:      rec.PathT,
	}
}

func visitorRecord(st msg.VisitorState) store.VisitorRecord {
	return store.VisitorRecord{
		OID:        st.OID,
		ForwardRef: st.ForwardRef,
		OfferedAcc: st.OfferedAcc,
		RegInfo:    st.RegInfo,
		PathT:      st.PathT,
	}
}

// enqueue appends rec to the stream. On overflow the whole queue is
// dropped and a snapshot scheduled: the standby is too far behind for the
// tail to be worth its memory, and the snapshot it will receive includes
// every dropped record's effect (they were applied to the store before
// being teed).
func (st *replStream) enqueue(rec msg.ReplRecord) {
	st.mu.Lock()
	if len(st.recs) >= replQueueCap {
		st.firstSeq += uint64(len(st.recs))
		st.recs = st.recs[:0]
		st.needSync = true
		st.syncTok = 0
		st.snapRec = nil
	}
	st.recs = append(st.recs, rec)
	st.cond.Broadcast()
	st.mu.Unlock()
}

// clear empties the stream (demotion, promotion reset).
func (st *replStream) clear(needSync bool) {
	st.mu.Lock()
	st.firstSeq += uint64(len(st.recs))
	st.recs = st.recs[:0]
	st.needSync = needSync
	st.syncTok = 0
	st.snapRec = nil
	st.cond.Broadcast()
	st.mu.Unlock()
}

// ackUpTo drops the acknowledged prefix and reports how many records that
// released.
func (st *replStream) ackUpTo(next uint64) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if next <= st.firstSeq {
		return 0
	}
	n := int(next - st.firstSeq)
	if n > len(st.recs) {
		n = len(st.recs)
	}
	st.recs = append(st.recs[:0], st.recs[n:]...)
	st.firstSeq += uint64(n)
	return n
}

// ---------------------------------------------------------------------------
// Sender side.

// sender drains one stream toward the peer for the server's lifetime. As
// a standby it idles (tees drop, queues stay empty); promotion wakes it.
func (r *replState) sender(st *replStream) {
	defer r.s.wg.Done()
	for {
		st.mu.Lock()
		for !r.sendable(st) {
			if r.stopping() {
				st.mu.Unlock()
				return
			}
			st.cond.Wait()
		}
		needSync := st.needSync
		st.needSync = false
		st.mu.Unlock()
		if r.stopping() {
			return
		}
		if needSync {
			if err := r.startSync(st); err != nil {
				// Store busy (resize in flight) or WAL down; try again
				// after a pause rather than spin.
				st.mu.Lock()
				st.needSync = true
				st.mu.Unlock()
				r.pause()
				continue
			}
		}
		batch, first, ok := r.popBatch(st)
		if !ok {
			continue // waiting on the snapshot marker
		}
		r.send(st, batch, first)
	}
}

// sendable reports whether the sender has work. Caller holds st.mu.
func (r *replState) sendable(st *replStream) bool {
	if !r.primary.Load() {
		// Demoted with records still queued: drop them, they belong to a
		// fenced epoch.
		if len(st.recs) > 0 || st.needSync || st.syncTok != 0 {
			st.firstSeq += uint64(len(st.recs))
			st.recs = st.recs[:0]
			st.needSync = false
			st.syncTok = 0
			st.snapRec = nil
		}
		return false
	}
	return st.needSync || len(st.recs) > 0 || st.syncTok != 0
}

// stopping reports server shutdown.
func (r *replState) stopping() bool {
	select {
	case <-r.s.stop:
		return true
	default:
		return false
	}
}

// pause sleeps one send-idle period or until shutdown.
func (r *replState) pause() {
	select {
	case <-r.s.stop:
	case <-time.After(replSendIdle):
	}
}

// startSync captures a snapshot for st. For the visitor stream the
// snapshot record is enqueued inline under the visitorDB lock — its queue
// position is its commit-order position. For a shard stream the store
// enqueues a WAL marker instead; the marker surfaces through TeeMark at
// the snapshot's position in the drain order, and popBatch substitutes
// the payload there.
func (r *replState) startSync(st *replStream) error {
	if st.id == r.visitorStream() {
		r.s.visitors.ReplSnapshot(func(live []store.VisitorRecord) {
			states := make([]msg.VisitorState, len(live))
			for i, rec := range live {
				states[i] = visitorState(rec)
			}
			st.enqueue(msg.ReplRecord{Op: msg.ReplSnapshot, Visitors: states})
		})
		return nil
	}
	// A tiered primary may still be replaying its WAL tail in the
	// background; a snapshot taken before the shard is warm would miss
	// the tail for good (recovery rebuilds the memtable without teeing).
	if err := r.sdb.WaitRecovered(); err != nil {
		return err
	}
	tok := r.tokens.Add(1)
	st.mu.Lock()
	st.syncTok = tok
	st.snapRec = nil
	st.mu.Unlock()
	state, err := r.sdb.ReplSnapshot(st.id, tok)
	if err != nil {
		st.mu.Lock()
		st.syncTok = 0
		st.mu.Unlock()
		return err
	}
	rec := msg.ReplRecord{
		Op:        msg.ReplSnapshot,
		Sightings: state.Live,
		Dead:      state.Dead,
		Runs:      state.Runs,
		NextSeq:   state.NextSeq,
	}
	st.mu.Lock()
	if st.syncTok == tok { // not cancelled by an overflow meanwhile
		st.snapRec = &rec
		st.cond.Broadcast()
	}
	st.mu.Unlock()
	return nil
}

// popBatch copies up to replBatchMax records off the stream head without
// consuming them (they are dropped on ack). While a snapshot marker is
// awaited, everything before it is discarded — the snapshot covers it —
// and nothing is sent until the marker has surfaced.
func (r *replState) popBatch(st *replStream) ([]msg.ReplRecord, uint64, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.syncTok != 0 {
		idx := -1
		for i, rec := range st.recs {
			if rec.Op == replMarkerOp && rec.NextSeq == st.syncTok {
				idx = i
				break
			}
		}
		if idx < 0 || st.snapRec == nil {
			return nil, 0, false // marker still in the WAL drain
		}
		st.recs = append(st.recs[:0], st.recs[idx:]...)
		st.firstSeq += uint64(idx)
		st.recs[0] = *st.snapRec
		st.syncTok = 0
		st.snapRec = nil
	}
	n := len(st.recs)
	if n == 0 {
		return nil, 0, false
	}
	if n > replBatchMax {
		n = replBatchMax
	}
	batch := make([]msg.ReplRecord, n)
	for i := 0; i < n; i++ {
		if st.recs[i].Op == replMarkerOp {
			// A stale marker from a cancelled sync: nothing will
			// substitute it, so splice it out and cut the batch here.
			copy(st.recs[i:], st.recs[i+1:])
			st.recs = st.recs[:len(st.recs)-1]
			batch = batch[:i]
			break
		}
		batch[i] = st.recs[i]
	}
	if len(batch) == 0 {
		return nil, 0, false
	}
	return batch, st.firstSeq, true
}

// send ships one batch and applies the ack. Failures leave the batch
// queued; the next round retries it (the receiver skips the duplicate
// prefix by seq).
func (r *replState) send(st *replStream, batch []msg.ReplRecord, first uint64) {
	s := r.s
	pol := transport.RetryPolicy{
		MaxAttempts:   3,
		BaseBackoff:   20 * time.Millisecond,
		MaxBackoff:    replSendIdle,
		PerTryTimeout: s.opts.CallTimeout,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		select {
		case <-s.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	defer cancel()
	m := msg.ReplAppend{Epoch: r.epoch.Load(), Stream: st.id, FirstSeq: first, Recs: batch}
	res, err := transport.CallWithRetry(ctx, s.node, func() msg.NodeID { return r.peer }, m, pol)
	if err != nil {
		s.met.Counter("repl_send_errors").Inc()
		r.pause()
		return
	}
	ack, ok := res.(msg.ReplAck)
	if !ok {
		s.met.Counter("repl_send_errors").Inc()
		r.pause()
		return
	}
	if ack.Fenced || ack.Epoch > r.epoch.Load() {
		// The peer has been promoted past us: we are the zombie. Demote
		// and let its streams resync us.
		r.demoteTo(ack.Epoch)
		return
	}
	if ack.NeedSync {
		st.mu.Lock()
		st.needSync = true
		st.mu.Unlock()
		return
	}
	if n := st.ackUpTo(ack.NextSeq); n > 0 {
		r.acked.Add(int64(n))
	}
}

// ---------------------------------------------------------------------------
// Role transitions.

// demoteTo adopts epoch (if higher) and steps down to standby: the store
// stops restructuring its tiers, the queues are dropped (their records
// belong to the fenced epoch) and the tees go quiet.
func (r *replState) demoteTo(epoch uint64) {
	for {
		cur := r.epoch.Load()
		if epoch <= cur || r.epoch.CompareAndSwap(cur, epoch) {
			break
		}
	}
	if !r.primary.CompareAndSwap(true, false) {
		return
	}
	r.sdb.SetReplStandby(true)
	for _, st := range r.streams {
		st.clear(false)
	}
	r.s.met.Counter("repl_demotions").Inc()
}

// promote steps up to primary with a fencing epoch strictly above both
// the current one and floor. Idempotent: an already-primary node just
// reports its epoch, so the parent's promotion retry is safe.
func (r *replState) promote(floor uint64) uint64 {
	if r.primary.Load() {
		return r.epoch.Load()
	}
	for {
		cur := r.epoch.Load()
		next := cur + 1
		if floor > next {
			next = floor
		}
		if r.epoch.CompareAndSwap(cur, next) {
			break
		}
	}
	r.sdb.SetReplStandby(false)
	// The old primary's standby state is unknown territory once it comes
	// back: start every stream with a snapshot.
	for _, st := range r.streams {
		st.clear(true)
	}
	r.primary.Store(true)
	for _, st := range r.streams {
		st.mu.Lock()
		st.cond.Broadcast()
		st.mu.Unlock()
	}
	r.s.met.Counter("repl_promotions").Inc()
	return r.epoch.Load()
}

// wake unblocks every sender (shutdown).
func (r *replState) wake() {
	for _, st := range r.streams {
		st.mu.Lock()
		st.cond.Broadcast()
		st.mu.Unlock()
	}
}

// ---------------------------------------------------------------------------
// Receiver side.

// handleReplAppend applies one batch from the peer. The epoch fence runs
// first: stale epochs are rejected (Fenced) so a zombie primary cannot
// overwrite post-promotion state, and a higher epoch demotes this node if
// it thought it was primary.
func (s *Server) handleReplAppend(req msg.ReplAppend) (msg.Message, error) {
	r := s.repl
	if r == nil {
		return nil, fmt.Errorf("%w: server %s has no replication peer", core.ErrBadRequest, s.cfg.ID)
	}
	// Applies write through the WAL and the tier manifests, which Close
	// tears down after draining s.wg — so an apply must hold a slot for
	// its whole run (the same guard as forwardPath) or not start at all.
	s.bgMu.Lock()
	if s.stopped {
		s.bgMu.Unlock()
		return nil, core.ErrUnavailable
	}
	s.wg.Add(1)
	s.bgMu.Unlock()
	defer s.wg.Done()
	if req.Stream < 0 || req.Stream >= len(r.streams) {
		return nil, fmt.Errorf("%w: replication stream %d out of range", core.ErrBadRequest, req.Stream)
	}
	for {
		cur := r.epoch.Load()
		if req.Epoch < cur {
			r.fenced.Add(1)
			s.met.Counter("repl_fenced_appends").Inc()
			return msg.ReplAck{Epoch: cur, Stream: req.Stream, Fenced: true}, nil
		}
		if req.Epoch == cur {
			break
		}
		r.demoteTo(req.Epoch)
	}
	if r.primary.Load() {
		// Equal epochs, both sides primary: refuse — there is one writer
		// per epoch, and it is not this peer.
		r.fenced.Add(1)
		s.met.Counter("repl_fenced_appends").Inc()
		return msg.ReplAck{Epoch: r.epoch.Load(), Stream: req.Stream, Fenced: true}, nil
	}

	r.recvMu[req.Stream].Lock()
	defer r.recvMu[req.Stream].Unlock()
	next := r.recvNext[req.Stream]
	start := -1
	switch {
	case len(req.Recs) == 0:
		return msg.ReplAck{Epoch: r.epoch.Load(), Stream: req.Stream, NextSeq: next}, nil
	case req.FirstSeq+uint64(len(req.Recs)) <= next:
		// Full duplicate (retry of an acked batch): re-ack.
		return msg.ReplAck{Epoch: r.epoch.Load(), Stream: req.Stream, NextSeq: next}, nil
	case req.FirstSeq <= next:
		start = int(next - req.FirstSeq)
	default:
		// Gap. A snapshot anywhere in the batch is a reset point — state
		// before it is irrelevant; without one, ask for a sync.
		for i, rec := range req.Recs {
			if rec.Op == msg.ReplSnapshot {
				start = i
				break
			}
		}
		if start < 0 {
			return msg.ReplAck{Epoch: r.epoch.Load(), Stream: req.Stream, NextSeq: next, NeedSync: true}, nil
		}
	}
	for i := start; i < len(req.Recs); i++ {
		if err := r.apply(req.Stream, req.Recs[i]); err != nil {
			// Partial apply: persist the cursor past what landed so the
			// sender's retry skips it, and surface the failure.
			r.recvNext[req.Stream] = req.FirstSeq + uint64(i)
			s.met.Counter("repl_apply_errors").Inc()
			return nil, err
		}
	}
	r.recvNext[req.Stream] = req.FirstSeq + uint64(len(req.Recs))
	return msg.ReplAck{Epoch: r.epoch.Load(), Stream: req.Stream, NextSeq: r.recvNext[req.Stream]}, nil
}

// apply lands one stream record through the normal store paths, so the
// standby's own WAL and tier bookkeeping come for free.
func (r *replState) apply(stream int, rec msg.ReplRecord) error {
	s := r.s
	switch rec.Op {
	case msg.ReplSightingPut:
		s.sightings.PutBatch(rec.Sightings)
	case msg.ReplSightingRemove:
		s.sightings.Remove(rec.OID)
	case msg.ReplVisitorPut:
		if err := s.visitors.Put(visitorRecord(rec.Visitor)); err != nil {
			return err
		}
	case msg.ReplVisitorRemove:
		if _, err := s.visitors.Remove(rec.OID); err != nil {
			return err
		}
	case msg.ReplRuns:
		if err := r.sdb.ReplInstallRuns(stream, rec.Runs, rec.NextSeq, rec.ClearMem, r.fetchRun(stream)); err != nil {
			return err
		}
	case msg.ReplSnapshot:
		if stream == r.visitorStream() {
			recs := make([]store.VisitorRecord, len(rec.Visitors))
			for i, st := range rec.Visitors {
				recs[i] = visitorRecord(st)
			}
			if err := s.visitors.ReplReplaceAll(recs); err != nil {
				return err
			}
		} else {
			state := store.ReplShardState{
				Live:    rec.Sightings,
				Dead:    rec.Dead,
				Runs:    rec.Runs,
				NextSeq: rec.NextSeq,
			}
			if err := r.sdb.ReplInstallSnapshot(stream, state, r.fetchRun(stream)); err != nil {
				return err
			}
		}
		r.resyncs.Add(1)
		s.met.Counter("repl_resyncs").Inc()
	default:
		return fmt.Errorf("%w: unknown replication op %d", core.ErrBadRequest, rec.Op)
	}
	return nil
}

// fetchRun returns the run-file fetcher for shard: chunked RunFetch calls
// against the peer, verified and installed by the store.
func (r *replState) fetchRun(shard int) func(name string) error {
	s := r.s
	return func(name string) error {
		err := r.sdb.ReplFetchRun(name, func(off int64, maxBytes int) ([]byte, bool, error) {
			pol := transport.RetryPolicy{
				MaxAttempts:   4,
				BaseBackoff:   20 * time.Millisecond,
				MaxBackoff:    replSendIdle,
				PerTryTimeout: s.opts.CallTimeout,
			}
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				select {
				case <-s.stop:
					cancel()
				case <-ctx.Done():
				}
			}()
			defer cancel()
			m := msg.RunFetch{Shard: shard, Name: name, Off: off, MaxBytes: maxBytes}
			res, err := transport.CallWithRetry(ctx, s.node, func() msg.NodeID { return r.peer }, m, pol)
			if err != nil {
				return nil, false, err
			}
			fr, ok := res.(msg.RunFetchRes)
			if !ok {
				return nil, false, fmt.Errorf("server %s: unexpected run fetch reply %T", s.cfg.ID, res)
			}
			return fr.Data, fr.EOF, nil
		})
		if err == nil {
			r.runsInstalled.Add(1)
			s.met.Counter("repl_runs_fetched").Inc()
		}
		return err
	}
}

// handleRunFetch serves a chunk of an immutable run file to the peer.
func (s *Server) handleRunFetch(req msg.RunFetch) (msg.Message, error) {
	r := s.repl
	if r == nil {
		return nil, fmt.Errorf("%w: server %s has no replication peer", core.ErrBadRequest, s.cfg.ID)
	}
	data, size, eof, err := r.sdb.ReadRunChunk(req.Name, req.Off, req.MaxBytes)
	if err != nil {
		return nil, err
	}
	return msg.RunFetchRes{Size: size, Data: data, EOF: eof}, nil
}

// handlePromote executes a parent-ordered takeover.
func (s *Server) handlePromote(req msg.Promote) (msg.Message, error) {
	r := s.repl
	if r == nil {
		return nil, fmt.Errorf("%w: server %s has no replication peer", core.ErrBadRequest, s.cfg.ID)
	}
	return msg.PromoteRes{Epoch: r.promote(req.Epoch)}, nil
}

// replDiag snapshots the replication state for DiagRes.
func (s *Server) replDiag() *msg.ReplDiag {
	r := s.repl
	if r == nil {
		return nil
	}
	return &msg.ReplDiag{
		Role:          r.role(),
		Peer:          r.peer,
		Epoch:         r.epoch.Load(),
		Pending:       r.pendingTotal(),
		Acked:         r.acked.Load(),
		Fenced:        r.fenced.Load(),
		RunsInstalled: r.runsInstalled.Load(),
		Resyncs:       r.resyncs.Load(),
	}
}

// replGauges refreshes the replication gauges on the janitor tick.
func (r *replState) updateGauges() {
	met := r.s.met
	role := int64(0)
	if r.primary.Load() {
		role = 1
	}
	met.Gauge("repl_role").Set(role)
	met.Gauge("repl_epoch").Set(int64(r.epoch.Load()))
	met.Gauge("repl_pending").Set(r.pendingTotal())
	met.Gauge("repl_acked").Set(r.acked.Load())
}

// ---------------------------------------------------------------------------
// Parent-side failover: health checks and promotion.

// replMonitor is the parent's health-check loop over Options.Replicas.
// Probes ride the same transport as everything else, so an open breaker
// (ErrBreakerOpen) counts as a failed probe without waiting out a
// timeout; ReplFailThreshold consecutive failures trigger the takeover.
func (s *Server) replMonitor() {
	defer s.wg.Done()
	pairs := make(map[string]string, len(s.opts.Replicas))
	for p, b := range s.opts.Replicas {
		pairs[p] = b
	}
	fails := make(map[string]int, len(pairs))
	ticker := time.NewTicker(s.opts.ReplHealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		for primary, standby := range pairs {
			// One probe is a few quick attempts, not one datagram
			// exchange: a lossy link must not read as a dead primary,
			// or the monitor promotes standbys for every loss burst.
			// An open breaker still fails the whole probe instantly.
			ctx, cancel := context.WithTimeout(context.Background(), s.opts.ReplHealthInterval)
			_, err := transport.CallWithRetry(ctx, s.node,
				func() msg.NodeID { return msg.NodeID(primary) }, msg.DiagReq{},
				transport.RetryPolicy{
					MaxAttempts:   3,
					BaseBackoff:   s.opts.ReplHealthInterval / 50,
					MaxBackoff:    s.opts.ReplHealthInterval / 10,
					PerTryTimeout: s.opts.ReplHealthInterval / 3,
				})
			cancel()
			if err == nil {
				fails[primary] = 0
				continue
			}
			fails[primary]++
			s.met.Counter("repl_probe_failures").Inc()
			if fails[primary] < s.opts.ReplFailThreshold {
				continue
			}
			if s.failover(primary, standby) {
				delete(pairs, primary)
				pairs[standby] = primary
				fails[primary] = 0
				fails[standby] = 0
			}
		}
	}
}

// failover promotes standby and rebinds primary's child record to it.
// Returns false (and leaves the pair as is, to retry next tick) if the
// standby did not confirm the promotion.
func (s *Server) failover(primary, standby string) bool {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		select {
		case <-s.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	defer cancel()
	pol := transport.RetryPolicy{
		MaxAttempts:   4,
		BaseBackoff:   25 * time.Millisecond,
		MaxBackoff:    250 * time.Millisecond,
		PerTryTimeout: s.opts.CallTimeout,
	}
	res, err := transport.CallWithRetry(ctx, s.node, func() msg.NodeID { return msg.NodeID(standby) }, msg.Promote{}, pol)
	if err != nil {
		s.met.Counter("repl_failover_errors").Inc()
		return false
	}
	if _, ok := res.(msg.PromoteRes); !ok {
		s.met.Counter("repl_failover_errors").Inc()
		return false
	}
	// Promotion confirmed: route around the dead primary. The rebind is
	// atomic for readers (child lookups load one consistent slice); the
	// forwarding-reference rewrite repoints existing visitors' paths.
	s.rebindChild(primary, standby)
	if _, err := s.visitors.RewriteForward(primary, standby); err != nil {
		s.met.Counter("visitor_db_errors").Inc()
	}
	s.met.Counter("repl_failovers").Inc()
	return true
}

// ---------------------------------------------------------------------------
// Child routing: reads go through an atomically swappable slice so a
// failover can rebind a child without a lock on every lookup.

// childRecords returns the current child list (rebind-aware). Callers
// must not mutate it.
func (s *Server) childRecords() []store.ChildRecord {
	if p := s.children.Load(); p != nil {
		return *p
	}
	return s.cfg.Children
}

// childFor resolves the child responsible for p against the current
// (possibly rebound) child list.
func (s *Server) childFor(p geo.Point) (store.ChildRecord, bool) {
	cfg := s.cfg
	cfg.Children = s.childRecords()
	return cfg.ChildFor(p)
}

// rebindChild swaps the child record named old to new, keeping its
// service area. Reports whether a record changed.
func (s *Server) rebindChild(old, new string) bool {
	for {
		cur := s.children.Load()
		src := s.cfg.Children
		if cur != nil {
			src = *cur
		}
		idx := -1
		for i, c := range src {
			if c.ID == old {
				idx = i
				break
			}
		}
		if idx < 0 {
			return false
		}
		next := make([]store.ChildRecord, len(src))
		copy(next, src)
		next[idx].ID = new
		if s.children.CompareAndSwap(cur, &next) {
			return true
		}
	}
}
