package server_test

import (
	"errors"
	"fmt"
	"testing"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/server"
)

// partitionedSpec is the paper's testbed with the root split into three
// HLR-style partitions (Section 4).
func partitionedSpec() hierarchy.Spec {
	return hierarchy.Spec{
		RootArea:       geo.R(0, 0, 1500, 1500),
		Levels:         []hierarchy.Level{{Rows: 2, Cols: 2}},
		RootPartitions: 3,
	}
}

func TestPartitionedRootDistributesVisitors(t *testing.T) {
	ls := newTestLS(t, partitionedSpec(), server.Options{})
	if got := len(ls.dep.Roots()); got != 3 {
		t.Fatalf("roots = %d", got)
	}
	owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})
	const n = 60
	for i := 0; i < n; i++ {
		if _, err := owner.Register(ctx(t), sightingAt(fmt.Sprintf("o%d", i), geo.Pt(100, 100)), 10, 50, 3); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return ls.dep.RootVisitorCount() == n }, "paths at root level")

	// The hash must spread records over all partitions; with 60 objects
	// every partition should hold a nontrivial share.
	for _, r := range ls.dep.Roots() {
		srv, _ := ls.dep.Server(r)
		if c := srv.VisitorCount(); c < 5 || c > 40 {
			t.Errorf("partition %s holds %d of %d records", r, c, n)
		}
	}
}

func TestPartitionedRootRemoteQueriesAndHandover(t *testing.T) {
	ls := newTestLS(t, partitionedSpec(), server.Options{})
	owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})
	obj, err := owner.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return ls.dep.RootVisitorCount() == 1 }, "path at root level")

	// A remote query must find the object through its hash partition.
	remote := ls.newClientAt(t, "remote", geo.Pt(1400, 1400), client.Options{})
	ld, err := remote.PosQuery(ctx(t), "o1")
	if err != nil {
		t.Fatal(err)
	}
	if ld.Pos != geo.Pt(100, 100) {
		t.Errorf("ld = %+v", ld)
	}

	// Handover across leaves under a partitioned root.
	if err := obj.Update(ctx(t), sightingAt("o1", geo.Pt(800, 100))); err != nil {
		t.Fatal(err)
	}
	if obj.Agent() != "r.1" {
		t.Fatalf("agent = %s", obj.Agent())
	}
	ld, err = remote.PosQuery(ctx(t), "o1")
	if err != nil {
		t.Fatal(err)
	}
	if ld.Pos != geo.Pt(800, 100) {
		t.Errorf("post-handover ld = %+v", ld)
	}

	// Range query spanning leaves under a partitioned root.
	objs, err := remote.RangeQueryRect(ctx(t), geo.R(700, 50, 900, 150), 25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].OID != "o1" {
		t.Errorf("range = %+v", objs)
	}

	// Deregistration tears the path down across partitions.
	if err := obj.Deregister(ctx(t)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return ls.dep.RootVisitorCount() == 0 }, "paths removed")
	if _, err := remote.PosQuery(ctx(t), "o1"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("query after deregister err = %v", err)
	}
}

func TestPartitionedRootValidation(t *testing.T) {
	bad := hierarchy.Spec{RootArea: geo.R(0, 0, 1, 1), RootPartitions: 2}
	if err := bad.Validate(); err == nil {
		t.Error("partitioned leafless root accepted")
	}
	spec := partitionedSpec()
	if got := spec.NumServers(); got != 7 {
		t.Errorf("NumServers = %d, want 7 (3 partitions + 4 leaves)", got)
	}
}
