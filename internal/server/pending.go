package server

import (
	"sync"
	"sync/atomic"

	"locsvc/internal/msg"
)

// pendingBuffer sizes the per-operation result channel. Range queries can
// receive one partial result per overlapping leaf; the collector drains
// continuously, so this only needs to absorb bursts.
const pendingBuffer = 256

// pending tracks distributed operations an entry server is waiting on:
// responses arrive as one-way messages matched by operation id (the paper's
// "entry server collects the partial results" pattern in Algorithms 6-4 and
// 6-5).
type pending struct {
	mu   sync.Mutex
	ops  map[uint64]chan msg.Message
	next atomic.Uint64
}

func newPending() *pending {
	return &pending{ops: make(map[uint64]chan msg.Message)}
}

// open allocates an operation id and its result channel.
func (p *pending) open() (uint64, chan msg.Message) {
	id := p.next.Add(1)
	ch := make(chan msg.Message, pendingBuffer)
	p.mu.Lock()
	p.ops[id] = ch
	p.mu.Unlock()
	return id, ch
}

// close discards the operation; late responses are dropped.
func (p *pending) close(id uint64) {
	p.mu.Lock()
	delete(p.ops, id)
	p.mu.Unlock()
}

// deliver routes a response to its operation. Responses for unknown (timed
// out) operations and overflow beyond the buffer are dropped, matching UDP
// best-effort semantics.
func (p *pending) deliver(id uint64, m msg.Message) bool {
	p.mu.Lock()
	ch, ok := p.ops[id]
	p.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case ch <- m:
		return true
	default:
		return false
	}
}
