package server_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/msg"
	"locsvc/internal/server"
	"locsvc/internal/transport"
)

// testLS bundles a deployed hierarchy with its network for tests.
type testLS struct {
	net *transport.Inproc
	dep *hierarchy.Deployment
}

// newTestLS deploys the paper's testbed shape by default: a 1.5 km × 1.5 km
// root area split into four leaf quarters (Fig. 8).
func newTestLS(t *testing.T, spec hierarchy.Spec, opts server.Options) *testLS {
	t.Helper()
	net := NewTestNet()
	dep, err := hierarchy.Deploy(net, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		dep.Close()
		net.Close()
	})
	return &testLS{net: net, dep: dep}
}

// NewTestNet returns a plain in-process network.
func NewTestNet() *transport.Inproc {
	return transport.NewInproc(transport.InprocOptions{})
}

func quadSpec() hierarchy.Spec {
	return hierarchy.Spec{
		RootArea: geo.R(0, 0, 1500, 1500),
		Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
	}
}

// newClientAt attaches a client whose entry server is the leaf responsible
// for p.
func (ls *testLS) newClientAt(t *testing.T, id string, p geo.Point, opts client.Options) *client.Client {
	t.Helper()
	entry, ok := ls.dep.LeafFor(p)
	if !ok {
		t.Fatalf("no leaf for %v", p)
	}
	c, err := client.New(ls.net, msg.NodeID(id), entry, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func sightingAt(id string, p geo.Point) core.Sighting {
	return core.Sighting{OID: core.OID(id), T: time.Now(), Pos: p, SensAcc: 5}
}

func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return c
}

func TestRegistrationCreatesForwardingPath(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	c := ls.newClientAt(t, "client", geo.Pt(100, 100), client.Options{})

	obj, err := c.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Agent() != "r.0" {
		t.Errorf("agent = %s, want r.0", obj.Agent())
	}
	if obj.OfferedAcc() != 10 {
		t.Errorf("offeredAcc = %v, want 10 (achievable 10 <= desAcc 10)", obj.OfferedAcc())
	}

	// The forwarding path must exist on the agent and the root.
	waitFor(t, func() bool {
		root, _ := ls.dep.Server("r")
		leaf, _ := ls.dep.Server("r.0")
		return root.VisitorCount() == 1 && leaf.VisitorCount() == 1 && leaf.SightingCount() == 1
	}, "forwarding path created")
}

func TestRegistrationRoutedFromDistantEntry(t *testing.T) {
	// The entry server is in the opposite corner of the service area:
	// the request must climb to the root and descend to the correct leaf.
	ls := newTestLS(t, quadSpec(), server.Options{})
	c := ls.newClientAt(t, "client", geo.Pt(1400, 1400), client.Options{})

	obj, err := c.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Agent() != "r.0" {
		t.Errorf("agent = %s, want r.0", obj.Agent())
	}
}

func TestRegistrationAccuracyFailure(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{AchievableAcc: 100})
	c := ls.newClientAt(t, "client", geo.Pt(100, 100), client.Options{})

	_, err := c.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3)
	if !errors.Is(err, core.ErrAccuracy) {
		t.Fatalf("err = %v, want ErrAccuracy", err)
	}
	// No records must linger anywhere.
	for id, srv := range ls.dep.Servers {
		if srv.VisitorCount() != 0 {
			t.Errorf("server %s has %d visitors after failed registration", id, srv.VisitorCount())
		}
	}
}

func TestRegistrationOutsideServiceArea(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	c := ls.newClientAt(t, "client", geo.Pt(100, 100), client.Options{})
	_, err := c.Register(ctx(t), sightingAt("o1", geo.Pt(5000, 5000)), 10, 50, 3)
	if err == nil {
		t.Fatal("registration outside service area succeeded")
	}
}

func TestLocalUpdate(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	c := ls.newClientAt(t, "client", geo.Pt(100, 100), client.Options{})
	obj, err := c.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Update(ctx(t), sightingAt("o1", geo.Pt(200, 200))); err != nil {
		t.Fatal(err)
	}
	if obj.Agent() != "r.0" {
		t.Errorf("agent changed on local update: %s", obj.Agent())
	}
	ld, err := c.PosQuery(ctx(t), "o1")
	if err != nil {
		t.Fatal(err)
	}
	if ld.Pos != geo.Pt(200, 200) {
		t.Errorf("position = %v", ld.Pos)
	}
}

func TestHandoverAcrossSiblingLeaves(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	c := ls.newClientAt(t, "client", geo.Pt(700, 100), client.Options{})
	obj, err := c.Register(ctx(t), sightingAt("o1", geo.Pt(700, 100)), 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Agent() != "r.0" {
		t.Fatalf("initial agent = %s", obj.Agent())
	}

	// Move east across the leaf boundary into r.1's quarter.
	if err := obj.Update(ctx(t), sightingAt("o1", geo.Pt(800, 100))); err != nil {
		t.Fatal(err)
	}
	if obj.Agent() != "r.1" {
		t.Fatalf("agent after handover = %s, want r.1", obj.Agent())
	}

	// Old agent must have dropped its records; new agent holds them; the
	// root's forwarding reference must point to the new child.
	oldLeaf, _ := ls.dep.Server("r.0")
	newLeaf, _ := ls.dep.Server("r.1")
	waitFor(t, func() bool {
		return oldLeaf.VisitorCount() == 0 && oldLeaf.SightingCount() == 0 &&
			newLeaf.VisitorCount() == 1 && newLeaf.SightingCount() == 1
	}, "records moved to new agent")

	// Queries keep working after the handover.
	ld, err := c.PosQuery(ctx(t), "o1")
	if err != nil {
		t.Fatal(err)
	}
	if ld.Pos != geo.Pt(800, 100) {
		t.Errorf("position = %v", ld.Pos)
	}
	// Updates to the new agent succeed.
	if err := obj.Update(ctx(t), sightingAt("o1", geo.Pt(820, 120))); err != nil {
		t.Fatal(err)
	}
}

func TestHandoverDeepHierarchy(t *testing.T) {
	// Three levels: r → 4 children → 16 grandchildren. A move across the
	// middle of the area must propagate through the root; a short move
	// within one quadrant involves only that subtree.
	spec := hierarchy.Spec{
		RootArea: geo.R(0, 0, 1600, 1600),
		Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}, {Rows: 2, Cols: 2}},
	}
	ls := newTestLS(t, spec, server.Options{})
	c := ls.newClientAt(t, "client", geo.Pt(100, 100), client.Options{})
	obj, err := c.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Agent() != "r.0.0" {
		t.Fatalf("initial agent = %s", obj.Agent())
	}

	// Local handover within quadrant r.0 (crossing leaf boundary at 400).
	if err := obj.Update(ctx(t), sightingAt("o1", geo.Pt(500, 100))); err != nil {
		t.Fatal(err)
	}
	if obj.Agent() != "r.0.1" {
		t.Fatalf("agent = %s, want r.0.1", obj.Agent())
	}

	// Cross-quadrant handover (crossing the root's midline at 800).
	if err := obj.Update(ctx(t), sightingAt("o1", geo.Pt(900, 100))); err != nil {
		t.Fatal(err)
	}
	if obj.Agent() != "r.1.0" {
		t.Fatalf("agent = %s, want r.1.0", obj.Agent())
	}

	// The full forwarding path root → r.1 → r.1.0 must be intact, and
	// the stale branch under r.0 gone.
	waitFor(t, func() bool {
		r0, _ := ls.dep.Server("r.0")
		r01, _ := ls.dep.Server("r.0.1")
		r1, _ := ls.dep.Server("r.1")
		root, _ := ls.dep.Server("r")
		return r0.VisitorCount() == 0 && r01.VisitorCount() == 0 &&
			r1.VisitorCount() == 1 && root.VisitorCount() == 1
	}, "path rewired through root")

	ld, err := c.PosQuery(ctx(t), "o1")
	if err != nil {
		t.Fatal(err)
	}
	if ld.Pos != geo.Pt(900, 100) {
		t.Errorf("position = %v", ld.Pos)
	}
}

func TestPosQueryLocalVsRemote(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	// Object in the south-west quarter.
	cObj := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})
	if _, err := cObj.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}
	// CreatePath propagates leaf-to-root asynchronously (one-way
	// messages, Algorithm 6-1); remote queries need the full path.
	waitFor(t, func() bool {
		root, _ := ls.dep.Server("r")
		return root.VisitorCount() == 1
	}, "forwarding path at root")
	// Local query: client whose entry server is the object's agent.
	local := ls.newClientAt(t, "local", geo.Pt(50, 50), client.Options{})
	ld, err := local.PosQuery(ctx(t), "o1")
	if err != nil {
		t.Fatal(err)
	}
	if ld.Pos != geo.Pt(100, 100) || ld.Acc != 10 {
		t.Errorf("local ld = %+v", ld)
	}
	// Remote query: entry server in the opposite corner.
	remote := ls.newClientAt(t, "remote", geo.Pt(1400, 1400), client.Options{})
	ld, err = remote.PosQuery(ctx(t), "o1")
	if err != nil {
		t.Fatal(err)
	}
	if ld.Pos != geo.Pt(100, 100) {
		t.Errorf("remote ld = %+v", ld)
	}
	// Unknown object: not found from any entry.
	if _, err := remote.PosQuery(ctx(t), "ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("ghost query err = %v", err)
	}
}

func TestRangeQuerySpanningLeaves(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})

	// One object per quarter, near the center of the root area.
	positions := []geo.Point{{X: 700, Y: 700}, {X: 800, Y: 700}, {X: 700, Y: 800}, {X: 800, Y: 800}}
	for i, p := range positions {
		if _, err := owner.Register(ctx(t), sightingAt(fmt.Sprintf("o%d", i), p), 10, 50, 3); err != nil {
			t.Fatal(err)
		}
	}
	// And one far away that must not be returned.
	if _, err := owner.Register(ctx(t), sightingAt("far", geo.Pt(1400, 100)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}

	q := ls.newClientAt(t, "querier", geo.Pt(100, 1400), client.Options{})
	objs, err := q.RangeQueryRect(ctx(t), geo.R(650, 650, 850, 850), 25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 4 {
		t.Fatalf("range query returned %d objects: %+v", len(objs), objs)
	}
	seen := map[core.OID]bool{}
	for _, e := range objs {
		seen[e.OID] = true
	}
	for i := range positions {
		if !seen[core.OID(fmt.Sprintf("o%d", i))] {
			t.Errorf("o%d missing from result", i)
		}
	}
	if seen["far"] {
		t.Error("far object included")
	}
}

func TestRangeQueryRespectsAccuracyAndOverlap(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{AchievableAcc: 30})
	owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})
	// Offered accuracy will be 30 (achievable) since desired 10 < 30.
	if _, err := owner.Register(ctx(t), sightingAt("coarse", geo.Pt(300, 300)), 10, 100, 3); err != nil {
		t.Fatal(err)
	}
	q := ls.newClientAt(t, "querier", geo.Pt(100, 100), client.Options{})

	// reqAcc 20 < offered 30: the object is filtered out (Fig. 3, o5).
	objs, err := q.RangeQueryRect(ctx(t), geo.R(250, 250, 350, 350), 20, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 0 {
		t.Errorf("accuracy filter failed: %+v", objs)
	}
	// reqAcc 30: passes.
	objs, err = q.RangeQueryRect(ctx(t), geo.R(250, 250, 350, 350), 30, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 {
		t.Errorf("want 1 object, got %+v", objs)
	}

	// Overlap threshold: object at the very edge of the query area
	// overlaps ~50%; a 0.9 threshold excludes it.
	objs, err = q.RangeQueryRect(ctx(t), geo.R(300, 250, 400, 350), 30, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 0 {
		t.Errorf("overlap filter failed: %+v", objs)
	}
}

func TestRangeQueryInvalidParams(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	q := ls.newClientAt(t, "querier", geo.Pt(100, 100), client.Options{})
	if _, err := q.RangeQueryRect(ctx(t), geo.R(0, 0, 10, 10), 25, 0); !errors.Is(err, core.ErrBadRequest) {
		t.Errorf("reqOverlap=0 err = %v", err)
	}
	if _, err := q.RangeQueryRect(ctx(t), geo.R(0, 0, 10, 10), 25, 1.5); !errors.Is(err, core.ErrBadRequest) {
		t.Errorf("reqOverlap=1.5 err = %v", err)
	}
	if _, err := q.RangeQueryRect(ctx(t), geo.Rect{}, 25, 0.5); !errors.Is(err, core.ErrBadRequest) {
		t.Errorf("empty area err = %v", err)
	}
}

func TestNeighborQuery(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})
	// Nearest is in a different leaf than the query's entry server.
	if _, err := owner.Register(ctx(t), sightingAt("near", geo.Pt(760, 760)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Register(ctx(t), sightingAt("mid", geo.Pt(900, 760)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Register(ctx(t), sightingAt("far", geo.Pt(1400, 1400)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}

	q := ls.newClientAt(t, "querier", geo.Pt(100, 100), client.Options{})
	res, err := q.NeighborQuery(ctx(t), geo.Pt(700, 700), 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nearest.OID != "near" {
		t.Fatalf("nearest = %s", res.Nearest.OID)
	}
	if len(res.Near) != 0 {
		t.Errorf("nearQual=0 gave nearObjSet %+v", res.Near)
	}
	wantDist := geo.Pt(760, 760).Dist(geo.Pt(700, 700)) - 25
	if diff := res.GuaranteedMinDist - wantDist; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("GuaranteedMinDist = %v, want %v", res.GuaranteedMinDist, wantDist)
	}

	// With a generous nearQual the mid object appears in nearObjSet.
	res, err = q.NeighborQuery(ctx(t), geo.Pt(700, 700), 25, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Near) != 1 || res.Near[0].OID != "mid" {
		t.Errorf("nearObjSet = %+v, want [mid]", res.Near)
	}
}

// TestNeighborQueryLocalFastPath: an interior query whose whole collection
// disc lies inside the entry leaf is answered off the leaf's own
// nearest-neighbor cursor without touching the tree, and agrees with the
// selection-rule oracle; a query near the leaf border must fall back to the
// distributed expanding-ring search and still agree.
func TestNeighborQueryLocalFastPath(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	owner := ls.newClientAt(t, "owner", geo.Pt(100, 100), client.Options{})
	var entries []core.Entry
	for i, p := range []geo.Point{
		geo.Pt(200, 200), geo.Pt(240, 200), geo.Pt(300, 350), geo.Pt(700, 700),
		geo.Pt(760, 760), geo.Pt(1400, 200),
	} {
		oid := core.OID(fmt.Sprintf("n%d", i))
		obj, err := owner.Register(ctx(t), sightingAt(string(oid), p), 10, 50, 3)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, core.Entry{OID: oid, LD: core.LocationDescriptor{Pos: p, Acc: obj.OfferedAcc()}})
	}
	leaf, _ := ls.dep.Server("r.0")
	q := ls.newClientAt(t, "querier", geo.Pt(100, 100), client.Options{})

	check := func(p geo.Point, nearQual float64) {
		t.Helper()
		res, err := q.NeighborQuery(ctx(t), p, 25, nearQual)
		if err != nil {
			t.Fatal(err)
		}
		want := core.SelectNearest(entries, p, 25, nearQual)
		if res.Nearest.OID != want.Nearest.OID {
			t.Fatalf("query %v: nearest %s, oracle %s", p, res.Nearest.OID, want.Nearest.OID)
		}
		if len(res.Near) != len(want.Near) {
			t.Fatalf("query %v: nearObjSet %d, oracle %d", p, len(res.Near), len(want.Near))
		}
	}

	// Interior query: disc(nearest + nearQual + reqAcc) stays inside r.0,
	// so the fast path must fire.
	before := leaf.Metrics().Counter("neighbor_query_local_fast").Value()
	check(geo.Pt(230, 210), 60)
	if after := leaf.Metrics().Counter("neighbor_query_local_fast").Value(); after != before+1 {
		t.Errorf("interior query: local fast count %d, want %d", after, before+1)
	}

	// Border query: the nearest candidate's disc crosses into r.3, the
	// fast path must decline and the distributed search must answer.
	before = leaf.Metrics().Counter("neighbor_query_local_fast").Value()
	check(geo.Pt(730, 730), 80)
	if after := leaf.Metrics().Counter("neighbor_query_local_fast").Value(); after != before {
		t.Errorf("border query took the fast path despite a crossing disc")
	}
}

func TestNeighborQueryEmptyService(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	q := ls.newClientAt(t, "querier", geo.Pt(100, 100), client.Options{})
	if _, err := q.NeighborQuery(ctx(t), geo.Pt(700, 700), 25, 0); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestDeregisterRemovesPath(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	c := ls.newClientAt(t, "client", geo.Pt(100, 100), client.Options{})
	obj, err := c.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Deregister(ctx(t)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		for _, srv := range ls.dep.Servers {
			if srv.VisitorCount() != 0 || srv.SightingCount() != 0 {
				return false
			}
		}
		return true
	}, "all records removed")
	if _, err := c.PosQuery(ctx(t), "o1"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("query after deregister err = %v", err)
	}
}

func TestChangeAcc(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{AchievableAcc: 20})
	c := ls.newClientAt(t, "client", geo.Pt(100, 100), client.Options{})
	obj, err := c.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 25, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if obj.OfferedAcc() != 25 {
		t.Fatalf("offered = %v, want 25", obj.OfferedAcc())
	}
	// Privacy-motivated coarsening ("I am in town" vs "at the station").
	offered, err := obj.ChangeAcc(ctx(t), 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if offered != 500 {
		t.Errorf("offered after coarsening = %v, want 500", offered)
	}
	// Impossible range: server can only achieve 20.
	if _, err := obj.ChangeAcc(ctx(t), 1, 5); !errors.Is(err, core.ErrAccuracy) {
		t.Errorf("err = %v, want ErrAccuracy", err)
	}
	// The old registration stays in force.
	if obj.OfferedAcc() != 500 {
		t.Errorf("offered mutated on failed change: %v", obj.OfferedAcc())
	}
}

func TestSoftStateExpiry(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{
		SightingTTL:     200 * time.Millisecond,
		JanitorInterval: 50 * time.Millisecond,
	})
	c := ls.newClientAt(t, "client", geo.Pt(100, 100), client.Options{})
	if _, err := c.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3); err != nil {
		t.Fatal(err)
	}
	// Without updates, the object must be deregistered everywhere.
	waitFor(t, func() bool {
		for _, srv := range ls.dep.Servers {
			if srv.VisitorCount() != 0 {
				return false
			}
		}
		return true
	}, "soft state expired")
}

func TestSoftStateKeptAliveByUpdates(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{
		SightingTTL:     300 * time.Millisecond,
		JanitorInterval: 50 * time.Millisecond,
	})
	c := ls.newClientAt(t, "client", geo.Pt(100, 100), client.Options{})
	obj, err := c.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(900 * time.Millisecond)
	for time.Now().Before(deadline) {
		if err := obj.Update(ctx(t), sightingAt("o1", geo.Pt(100, 100))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if _, err := c.PosQuery(ctx(t), "o1"); err != nil {
		t.Errorf("object expired despite updates: %v", err)
	}
}

func TestDistanceBasedUpdateProtocol(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{AchievableAcc: 25})
	c := ls.newClientAt(t, "client", geo.Pt(100, 100), client.Options{})
	obj, err := c.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 25, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A 10 m move is within the offered accuracy: no update on the wire.
	sent, err := obj.MaybeUpdate(ctx(t), sightingAt("o1", geo.Pt(110, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if sent {
		t.Error("update sent although movement within accuracy")
	}
	// A 30 m move exceeds it.
	sent, err = obj.MaybeUpdate(ctx(t), sightingAt("o1", geo.Pt(130, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if !sent {
		t.Error("update not sent although movement exceeded accuracy")
	}
}

func TestUpdateUnknownObjectRejected(t *testing.T) {
	ls := newTestLS(t, quadSpec(), server.Options{})
	c := ls.newClientAt(t, "client", geo.Pt(100, 100), client.Options{})
	obj, err := c.Register(ctx(t), sightingAt("o1", geo.Pt(100, 100)), 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Deregister(ctx(t)); err != nil {
		t.Fatal(err)
	}
	err = obj.Update(ctx(t), sightingAt("o1", geo.Pt(120, 100)))
	if !errors.Is(err, core.ErrNotFound) {
		t.Errorf("update after deregister err = %v", err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
