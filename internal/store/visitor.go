package store

import (
	"fmt"
	"sync"
	"time"

	"locsvc/internal/core"
)

// VisitorRecord is one entry of a server's visitorDB (paper Section 5).
// On a non-leaf server only ForwardRef is meaningful: it names the child
// server next on the path to the visitor's agent. On a leaf server
// ForwardRef is empty and OfferedAcc/RegInfo describe the registration; the
// sighting itself lives in the SightingDB.
type VisitorRecord struct {
	OID core.OID `json:"oid"`
	// ForwardRef is the child server id on the path towards the agent;
	// empty on leaf servers.
	ForwardRef string `json:"forwardRef,omitempty"`
	// OfferedAcc is the accuracy currently offered for this visitor
	// (leaf servers only).
	OfferedAcc float64 `json:"offeredAcc,omitempty"`
	// RegInfo is the registration information record (leaf servers only).
	RegInfo core.RegInfo `json:"regInfo,omitempty"`
	// PathT is the timestamp of the sighting that installed this record;
	// path-maintenance messages carrying older sighting times are
	// ignored (see internal/server, handleRemovePath/handleCreatePath).
	PathT time.Time `json:"pathT,omitempty"`
}

// VisitorDB stores visitor records, optionally persisted through a WAL so
// forwarding paths survive crashes (the paper keeps the visitorDB on
// persistent storage, updated only on registration, deregistration and
// handover). It is safe for concurrent use.
type VisitorDB struct {
	mu   sync.RWMutex
	recs map[core.OID]VisitorRecord
	wal  WAL
	// tee, when non-nil, observes every committed mutation inline under
	// mu — its call order is exactly the apply order. See VisitorTee.
	tee VisitorTee
}

// VisitorTee observes committed visitor-record mutations, in commit
// order, for replication to a standby. Calls happen under the database
// lock: implementations must only enqueue, never block, and must not call
// back into the VisitorDB.
type VisitorTee interface {
	TeeVisitorPut(rec VisitorRecord)
	TeeVisitorRemove(id core.OID)
}

// SetReplTee installs (or, with nil, removes) the replication tee.
func (db *VisitorDB) SetReplTee(t VisitorTee) {
	db.mu.Lock()
	db.tee = t
	db.mu.Unlock()
}

// NewVisitorDB returns a visitor database backed by wal. Pass NullWAL{} for
// a purely in-memory database. Existing WAL contents are replayed, so
// opening a VisitorDB on a non-empty log restores the pre-crash records.
func NewVisitorDB(wal WAL) (*VisitorDB, error) {
	if wal == nil {
		wal = NullWAL{}
	}
	db := &VisitorDB{recs: make(map[core.OID]VisitorRecord), wal: wal}
	err := wal.Replay(func(rec WALRecord) error {
		if rec.Visitor == nil && (rec.Op == WALPut || rec.Op == WALRemove) {
			return fmt.Errorf("store: visitor WAL record %q without visitor payload", rec.Op)
		}
		switch rec.Op {
		case WALPut:
			db.recs[rec.Visitor.OID] = *rec.Visitor
		case WALRemove:
			delete(db.recs, rec.Visitor.OID)
		default:
			return fmt.Errorf("store: unknown WAL op %q in visitor WAL", rec.Op)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: replaying visitor WAL: %w", err)
	}
	return db, nil
}

// Len returns the number of visitor records.
func (db *VisitorDB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.recs)
}

// Get returns the record for id.
func (db *VisitorDB) Get(id core.OID) (VisitorRecord, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rec, ok := db.recs[id]
	return rec, ok
}

// Put inserts or replaces a record and appends the change to the WAL.
func (db *VisitorDB) Put(rec VisitorRecord) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.wal.Append(WALRecord{Op: WALPut, Visitor: &rec}); err != nil {
		return fmt.Errorf("store: appending visitor put: %w", err)
	}
	db.recs[rec.OID] = rec
	if db.tee != nil {
		db.tee.TeeVisitorPut(rec)
	}
	return nil
}

// PutIfNewer inserts or replaces a record unless an existing record carries
// a strictly newer PathT. The check and the write happen under one lock
// acquisition: path-maintenance messages are processed concurrently, and a
// separate Get-then-Put would let a stale write land after a fresh one.
// It reports whether the record was applied.
func (db *VisitorDB) PutIfNewer(rec VisitorRecord) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if old, ok := db.recs[rec.OID]; ok && old.PathT.After(rec.PathT) {
		return false, nil
	}
	if err := db.wal.Append(WALRecord{Op: WALPut, Visitor: &rec}); err != nil {
		return false, fmt.Errorf("store: appending visitor put: %w", err)
	}
	db.recs[rec.OID] = rec
	if db.tee != nil {
		db.tee.TeeVisitorPut(rec)
	}
	return true, nil
}

// RemoveIf deletes the record for id only if pred accepts the current
// record, atomically. It reports whether a removal happened.
func (db *VisitorDB) RemoveIf(id core.OID, pred func(VisitorRecord) bool) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.recs[id]
	if !ok || !pred(rec) {
		return false, nil
	}
	if err := db.wal.Append(WALRecord{Op: WALRemove, Visitor: &VisitorRecord{OID: id}}); err != nil {
		return false, fmt.Errorf("store: appending visitor remove: %w", err)
	}
	delete(db.recs, id)
	if db.tee != nil {
		db.tee.TeeVisitorRemove(id)
	}
	return true, nil
}

// Remove deletes the record for id, logging the removal. It reports whether
// a record existed.
func (db *VisitorDB) Remove(id core.OID) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.recs[id]; !ok {
		return false, nil
	}
	if err := db.wal.Append(WALRecord{Op: WALRemove, Visitor: &VisitorRecord{OID: id}}); err != nil {
		return false, fmt.Errorf("store: appending visitor remove: %w", err)
	}
	delete(db.recs, id)
	if db.tee != nil {
		db.tee.TeeVisitorRemove(id)
	}
	return true, nil
}

// ForEach visits every record in unspecified order.
func (db *VisitorDB) ForEach(visit func(rec VisitorRecord) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, rec := range db.recs {
		if !visit(rec) {
			return
		}
	}
}

// ReplSnapshot passes the full live record set to fn while holding the
// database lock, so fn's position in the tee order is exact: every
// mutation teed before fn ran is contained in the snapshot, every one
// teed after it was applied after. fn must only enqueue, never block.
func (db *VisitorDB) ReplSnapshot(fn func(live []VisitorRecord)) {
	db.mu.Lock()
	defer db.mu.Unlock()
	live := make([]VisitorRecord, 0, len(db.recs))
	for _, rec := range db.recs {
		live = append(live, rec)
	}
	fn(live)
}

// ReplReplaceAll swaps the whole record set for recs and rewrites the WAL
// to match — the standby's snapshot-install path.
func (db *VisitorDB) ReplReplaceAll(recs []VisitorRecord) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	fresh := make(map[core.OID]VisitorRecord, len(recs))
	for _, rec := range recs {
		fresh[rec.OID] = rec
	}
	if err := db.wal.Compact(recs); err != nil {
		return fmt.Errorf("store: rewriting visitor WAL for snapshot install: %w", err)
	}
	db.recs = fresh
	return nil
}

// RewriteForward repoints every record whose ForwardRef is old to new —
// the parent-side rebind after a child failover — logging each rewrite.
// It returns how many records changed; on a WAL failure the already
// rewritten records stay rewritten and the error is reported.
func (db *VisitorDB) RewriteForward(old, new string) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for id, rec := range db.recs {
		if rec.ForwardRef != old {
			continue
		}
		rec.ForwardRef = new
		if err := db.wal.Append(WALRecord{Op: WALPut, Visitor: &rec}); err != nil {
			return n, fmt.Errorf("store: appending forward rewrite: %w", err)
		}
		db.recs[id] = rec
		if db.tee != nil {
			db.tee.TeeVisitorPut(rec)
		}
		n++
	}
	return n, nil
}

// Compact rewrites the WAL to contain exactly the live records.
func (db *VisitorDB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	live := make([]VisitorRecord, 0, len(db.recs))
	for _, rec := range db.recs {
		live = append(live, rec)
	}
	if err := db.wal.Compact(live); err != nil {
		return fmt.Errorf("store: compacting visitor WAL: %w", err)
	}
	return nil
}

// Close releases the underlying WAL.
func (db *VisitorDB) Close() error {
	return db.wal.Close()
}
