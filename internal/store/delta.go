package store

import (
	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// DeltaOp classifies one sighting-store change.
type DeltaOp uint8

// Supported delta operations.
const (
	// DeltaPut records an insert or position update; New is the committed
	// position, Old the superseded one when the record already existed.
	DeltaPut DeltaOp = iota + 1
	// DeltaRemove records a deletion; Old is the removed record's position
	// (New is unused).
	DeltaRemove
)

// Delta describes one committed change to the sighting store: which object,
// what happened, and where it was before and after. The event layer
// consumes deltas to match only the subscriptions whose regions the old or
// new position touch, instead of re-evaluating every subscription after
// every mutation.
//
// Deltas for the same object are emitted in commit order (the pipeline's
// per-object lane ordering guarantees it); a batch whose coalescing
// superseded intermediate updates emits one delta spanning the pre-batch
// position and the final one.
type Delta struct {
	Op  DeltaOp
	OID core.OID
	New geo.Point
	Old geo.Point
	// HasOld reports whether the object existed before the change (always
	// true for DeltaRemove).
	HasOld bool
}

// putDelta builds the delta for committing s over the previous entry (nil
// when the object is new).
func putDelta(s core.Sighting, old *sightingEntry) Delta {
	d := Delta{Op: DeltaPut, OID: s.OID, New: s.Pos}
	if old != nil {
		d.Old = old.s.Pos
		d.HasOld = true
	}
	return d
}

// removeDelta builds the delta for deleting e.
func removeDelta(id core.OID, e *sightingEntry) Delta {
	return Delta{Op: DeltaRemove, OID: id, Old: e.s.Pos, HasOld: true}
}
