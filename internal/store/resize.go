package store

import (
	"fmt"

	"locsvc/internal/core"
	"locsvc/internal/spatial"
)

// NormalizeShards is the single place shard-count configuration is
// validated and defaulted: negative counts are an error, zero means "use
// the default" (one shard, the single-lock layout), anything else passes
// through. Every surface that accepts a shard count (server.Options,
// locsvc.LocalConfig, lsd -shards) funnels through here instead of
// clamping locally.
func NormalizeShards(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("store: negative shard count %d", n)
	}
	if n == 0 {
		return 1, nil
	}
	return n, nil
}

// ShardStat is one shard's occupancy and write-lock pressure snapshot, as
// exported through diagnostics and consumed by the AutoShard policy.
type ShardStat struct {
	// Len is the shard's record count.
	Len int
	// Ops is the cumulative number of write-path lock acquisitions.
	Ops int64
	// Contended is the subset of Ops that found the lock already held.
	Contended int64
}

// ShardStats returns a point-in-time snapshot of the current generation's
// shards. The counters are cumulative; callers interested in rates keep
// the previous snapshot and difference.
func (db *ShardedSightingDB) ShardStats() []ShardStat {
	g := db.gen.Load()
	out := make([]ShardStat, len(g.shards))
	for i, sh := range g.shards {
		sh.mu.RLock()
		out[i] = ShardStat{Len: len(sh.byID), Ops: sh.ops.Load(), Contended: sh.contended.Load()}
		sh.mu.RUnlock()
	}
	return out
}

// Resize changes the shard count to n while the store keeps serving — the
// live half of the adaptive-shard design (the deciding half is AutoShard).
// It is the multi-layer migration protocol behind the epoch invariant
// documented on ShardedSightingDB:
//
//  1. A new generation of n empty shards is published with its epoch
//     incremented and prev pointing at the old generation. From this
//     moment every operation resolves authority per object: the old shard
//     until its handoff, the new shard after.
//  2. The old shards are drained one at a time. The handoff holds exactly
//     one old shard's write lock while it moves that shard's (id, entry)
//     pairs into the destination shards, so no query or update is ever
//     blocked longer than one shard's handoff.
//  3. Each destination's quadtree is rebuilt through the bulk-load path
//     (Quadtree.Rebuild) once the walk completes — migration inserts
//     arrive in hash order, the incremental-insertion worst case.
//  4. A final generation without the prev pointer is published; queries
//     stop consulting the drained generation.
//  5. With a WAL attached, every segment is re-cut under the new mapping:
//     one epoch-stamped snapshot segment per new shard. The shard's lock
//     only quiesces its objects for the routing flip and the in-memory
//     snapshot (asynchronous mode; the segment write and fsync run off the
//     lock), then the old epoch's files are retired. A crash anywhere in
//     this phase recovers through OpenShardedWAL's cross-epoch fold.
//
// Concurrent Resize calls serialize; resizing to the current count is a
// no-op. A negative count is an error; zero means one shard. A non-nil
// error from the WAL phase reports that the log could not follow — the
// in-memory resize stands, but logging has stopped (WALErr is sticky).
func (db *ShardedSightingDB) Resize(n int) error {
	n, err := NormalizeShards(n)
	if err != nil {
		return err
	}
	if db.tier != nil && len(db.gen.Load().shards) != n {
		// Run files and manifests are per-shard and do not migrate; the
		// shard count is pinned for the lifetime of a tiered store.
		return fmt.Errorf("store: Resize is unsupported while tiered storage is enabled (per-shard run files pin the shard count)")
	}
	db.resizeMu.Lock()
	defer db.resizeMu.Unlock()
	old := db.gen.Load()
	if len(old.shards) == n {
		return nil
	}

	next := &shardGen{
		epoch:  old.epoch + 1,
		shards: make([]*sightingShard, n),
		prev:   old,
	}
	for i := range next.shards {
		next.shards[i] = db.newShard()
	}
	db.gen.Store(next)

	// Drain the old generation, one shard handoff at a time.
	for _, sh := range old.shards {
		db.handoffShard(sh, next)
	}

	// Build every destination's spatial index with one bulk load. For the
	// quadtree (the default) the handoff deferred all tree work to this
	// pass — moved entries were query-visible through the draining
	// generation's preserved trees meanwhile — which keeps each handoff's
	// lock hold down to the map moves, so no query ever stalls for more
	// than one shard's map handoff (or one rebuild here). The balanced
	// bulk build also makes the steady-state tree shape independent of
	// migration order.
	for _, dst := range next.shards {
		dst.mu.Lock()
		if qt, ok := dst.idx.(*spatial.Quadtree); ok {
			items := make([]spatial.Item, 0, len(dst.byID))
			for id, e := range dst.byID {
				items = append(items, spatial.Item{ID: id, Pos: e.s.Pos, Ref: e})
			}
			qt.Rebuild(items)
		}
		dst.mu.Unlock()
	}

	// Migration complete: publish the generation without its prev pointer
	// so queries stop scanning the drained shards.
	db.gen.Store(&shardGen{epoch: next.epoch, shards: next.shards})

	// Re-cut the persistent log under the new mapping. A WAL failure here
	// does not undo the resize — the in-memory store is authoritative and
	// stays resized — but it is reported (and sticky through WALErr):
	// logging has stopped and durability is gone until the operator
	// intervenes. In the default asynchronous mode each shard's routing
	// flips and its live set is snapshotted under the shard lock, while
	// the snapshot segment's marshal, write and fsync happen after the
	// lock is released (BeginSwitchShard/FinishSwitchShard) — the stall
	// bound stays the map work, not the disk. The synchronous mode keeps
	// the disk work under the lock, matching its fsync-per-append
	// semantics.
	if db.wal != nil && db.wal.Err() == nil {
		if err := db.wal.StartEpoch(n); err != nil {
			return fmt.Errorf("store: resized to %d shards, but the WAL epoch switch failed (logging stopped): %w", n, err)
		}
		async := db.wal.Asynchronous()
		for j, sh := range next.shards {
			var live []core.Sighting
			var err error
			sh.mu.Lock()
			if async {
				err = db.wal.BeginSwitchShard(j)
			}
			if err == nil {
				live = sh.liveSnapshot()
				if !async {
					err = db.wal.SwitchShard(j, live)
				}
			}
			sh.mu.Unlock()
			if err == nil && async {
				err = db.wal.FinishSwitchShard(j, live)
			}
			if err != nil {
				return fmt.Errorf("store: resized to %d shards, but re-cutting WAL shard %d failed (logging stopped): %w", n, j, err)
			}
		}
		db.wal.FinishEpoch()
	}
	return nil
}

// handoffShard moves one old shard's entries into the new generation. The
// old shard's write lock is held for the whole handoff — that lock is what
// makes the transfer atomic for the ids involved: every mutation of those
// ids either completed before the handoff (and is moved with the entry) or
// blocks on this lock and re-routes to the new generation when it observes
// the moved flag.
func (db *ShardedSightingDB) handoffShard(sh *sightingShard, next *shardGen) {
	sh.lockWrite()
	defer sh.mu.Unlock()
	if sh.moved {
		return
	}
	n := len(next.shards)
	// Group entries by destination so each destination lock is taken once
	// per source shard.
	groups := make(map[int][]spatial.Item, n)
	for id, e := range sh.byID {
		j := spatial.ShardFor(id, n)
		groups[j] = append(groups[j], spatial.Item{ID: id, Pos: e.s.Pos, Ref: e})
	}
	for j, items := range groups {
		dst := next.shards[j]
		// Quadtree destinations defer all tree insertion to the final
		// bulk Rebuild: until then the moved entries stay query-visible
		// through this (preserved) source tree, and skipping per-entry
		// tree work here is what keeps the handoff's lock hold — the
		// longest stall any concurrent operation can see — proportional
		// to the map moves alone.
		_, deferTree := dst.idx.(*spatial.Quadtree)
		dst.mu.Lock()
		for _, it := range items {
			e := it.Ref.(*sightingEntry)
			dst.byID[it.ID] = e
			if !deferTree {
				if dst.items != nil {
					dst.items.InsertItem(it)
				} else {
					dst.idx.Insert(it.ID, it.Pos)
				}
			}
			dst.noteInsert(it.Pos)
		}
		dst.mu.Unlock()
	}
	// Mark the handoff but keep the drained content in place: the maps and
	// the tree are immutable from here on (every mutation re-routes on the
	// moved flag), so a query that loaded this generation before the
	// resize published the new one still scans a valid point-in-time
	// snapshot — each entry it yields was live during that query. The
	// memory is reclaimed when the last such reader drops the generation.
	sh.moved = true
}
