package store

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// This file implements the immutable sorted-run files of the tiered
// sighting store. See the package comment for the full tiered-storage
// spec; the layout in brief:
//
//	[records region][bloom block][index block][fixed 92-byte footer]
//
// Records are sorted strictly by object id. Each record is
//
//	flags(1) | uvarint oidLen | oid |                       (tombstone)
//	flags(1) | uvarint oidLen | oid | T i64 | X f64 | Y f64 |
//	          SensAcc f64 | expires i64                      (live)
//
// with flags bit0 = tombstone, bit1 = T valid, bit2 = expires valid.
// Timestamps are UnixNano; a cleared validity bit means the zero
// time.Time. The bloom block is bloomFilter.marshal over every record's
// id (tombstones included). The index block holds the run's key range
// and a sparse index — one (oid, offset) entry per runSparseEvery
// records — which is the only per-record state a reader keeps in RAM.
// The footer pins region lengths, record counts, the spatial MBR of the
// live records, and two CRC32s: crcData over the records region,
// crcMeta over bloom+index. Opening a run reads footer + meta and
// verifies crcMeta only — recovery cost is O(metadata); crcData is
// verified by every complete scan (compaction, enumeration), so data
// corruption surfaces before it can propagate into a merged run.
const (
	runMagic      uint64 = 0x4c5352554e303031 // "LSRUN001"
	runVersion    uint32 = 1
	runFooterSize        = 92

	// runSparseEvery is the sparse-index granularity: a point lookup reads
	// and scans at most this many records after the bloom filter and the
	// binary search admit the run.
	runSparseEvery = 16

	runFlagTombstone = 1 << 0
	runFlagHasT      = 1 << 1
	runFlagHasExp    = 1 << 2
)

// tierTempPattern names the temporaries of every atomic run or manifest
// write. Crash leftovers match tierTempGlob and are swept when the store
// opens its tiers; they were never renamed into place, so they carry no
// authority.
const (
	tierTempPattern = ".tier-tmp-*"
	tierTempGlob    = ".tier-*"
)

// runFileName names shard's run with sequence seq. Runs sort oldest-first
// by name, but authority order is the manifest's, not the directory's.
func runFileName(shard int, seq uint64) string {
	return fmt.Sprintf("run-%04d-%08d.run", shard, seq)
}

// parseRunName inverts runFileName for directory sweeps.
func parseRunName(name string) (shard int, seq uint64, ok bool) {
	var i int
	var s uint64
	if n, err := fmt.Sscanf(name, "run-%d-%d.run", &i, &s); n == 2 && err == nil && name == runFileName(i, s) {
		return i, s, true
	}
	return 0, 0, false
}

// runRecord is one entry of a sorted run: a live sighting with its
// soft-state lease, or a tombstone marking the id removed (shadowing any
// version of the id in older runs until compaction drops both).
type runRecord struct {
	s         core.Sighting // s.OID is the key; other fields zero on tombstones
	expires   time.Time
	tombstone bool
}

// appendRunRecord encodes rec onto buf.
func appendRunRecord(buf []byte, rec runRecord) []byte {
	var flags byte
	if rec.tombstone {
		flags |= runFlagTombstone
	}
	if !rec.s.T.IsZero() {
		flags |= runFlagHasT
	}
	if !rec.expires.IsZero() {
		flags |= runFlagHasExp
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(rec.s.OID)))
	buf = append(buf, rec.s.OID...)
	if rec.tombstone {
		return buf
	}
	var t, exp int64
	if flags&runFlagHasT != 0 {
		t = rec.s.T.UnixNano()
	}
	if flags&runFlagHasExp != 0 {
		exp = rec.expires.UnixNano()
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.s.Pos.X))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.s.Pos.Y))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rec.s.SensAcc))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(exp))
	return buf
}

// decodeRunRecord decodes one record starting at buf[pos], returning the
// record and the offset just past it.
func decodeRunRecord(buf []byte, pos int) (runRecord, int, error) {
	if pos >= len(buf) {
		return runRecord{}, 0, fmt.Errorf("store: run record truncated at offset %d", pos)
	}
	flags := buf[pos]
	pos++
	n, w := binary.Uvarint(buf[pos:])
	if w <= 0 || pos+w+int(n) > len(buf) {
		return runRecord{}, 0, fmt.Errorf("store: run record id truncated at offset %d", pos)
	}
	pos += w
	rec := runRecord{tombstone: flags&runFlagTombstone != 0}
	rec.s.OID = core.OID(buf[pos : pos+int(n)])
	pos += int(n)
	if rec.tombstone {
		return rec, pos, nil
	}
	if pos+40 > len(buf) {
		return runRecord{}, 0, fmt.Errorf("store: run record payload truncated at offset %d", pos)
	}
	if flags&runFlagHasT != 0 {
		rec.s.T = time.Unix(0, int64(binary.LittleEndian.Uint64(buf[pos:])))
	}
	rec.s.Pos.X = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos+8:]))
	rec.s.Pos.Y = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos+16:]))
	rec.s.SensAcc = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos+24:]))
	if flags&runFlagHasExp != 0 {
		rec.expires = time.Unix(0, int64(binary.LittleEndian.Uint64(buf[pos+32:])))
	}
	return rec, pos + 40, nil
}

// sparseEntry is one in-RAM sparse-index entry: the id of every
// runSparseEvery-th record and its byte offset in the records region.
type sparseEntry struct {
	oid core.OID
	off int64
}

// runWriter streams records (strictly ascending by id) into a run file
// using the write-temp/fsync/rename/dir-fsync protocol: the run either
// exists complete under its final name or not at all. Per-record state
// kept until finish is one 8-byte hash (for the bloom filter, whose size
// needs the final count) plus the sparse index — the same metadata a
// reader of the finished run holds.
type runWriter struct {
	dir, name string
	tmp       *os.File
	crc       hash.Hash32
	bufw      writeCounter

	count, live int64
	hashes      []uint64
	sparse      []sparseEntry
	last        core.OID
	minOID      core.OID
	maxOID      core.OID
	mbr         geo.Rect
	hasMBR      bool
	bitsPerKey  int
	scratch     []byte
}

// writeCounter tracks bytes written through a buffered writer.
type writeCounter struct {
	w *os.File
	b []byte
	n int64
}

func (wc *writeCounter) write(p []byte) error {
	if len(wc.b)+len(p) > cap(wc.b) {
		if err := wc.flush(); err != nil {
			return err
		}
	}
	if len(p) > cap(wc.b) {
		m, err := wc.w.Write(p)
		wc.n += int64(m)
		return err
	}
	wc.b = append(wc.b, p...)
	wc.n += int64(len(p))
	return nil
}

func (wc *writeCounter) flush() error {
	if len(wc.b) == 0 {
		return nil
	}
	_, err := wc.w.Write(wc.b)
	wc.b = wc.b[:0]
	return err
}

// newRunWriter creates the temporary for dir/name.
func newRunWriter(dir, name string, bitsPerKey int) (*runWriter, error) {
	tmp, err := os.CreateTemp(dir, tierTempPattern)
	if err != nil {
		return nil, fmt.Errorf("store: creating run temp in %s: %w", dir, err)
	}
	return &runWriter{
		dir:        dir,
		name:       name,
		tmp:        tmp,
		crc:        crc32.NewIEEE(),
		bufw:       writeCounter{w: tmp, b: make([]byte, 0, 64*1024)},
		bitsPerKey: bitsPerKey,
	}, nil
}

// add appends one record. Records must arrive in strictly ascending id
// order — the invariant every lookup and merge relies on.
func (w *runWriter) add(rec runRecord) error {
	id := rec.s.OID
	if w.count > 0 && id <= w.last {
		return fmt.Errorf("store: run records out of order (%q after %q)", id, w.last)
	}
	if w.count%runSparseEvery == 0 {
		w.sparse = append(w.sparse, sparseEntry{oid: id, off: w.bufw.n})
	}
	w.scratch = appendRunRecord(w.scratch[:0], rec)
	if err := w.bufw.write(w.scratch); err != nil {
		return fmt.Errorf("store: writing run record: %w", err)
	}
	w.crc.Write(w.scratch)
	w.hashes = append(w.hashes, bloomHash(string(id)))
	if w.count == 0 {
		w.minOID = id
	}
	w.maxOID = id
	w.last = id
	w.count++
	if !rec.tombstone {
		w.live++
		if !w.hasMBR {
			w.mbr = geo.Rect{Min: rec.s.Pos, Max: rec.s.Pos}
			w.hasMBR = true
		} else {
			w.mbr.GrowToInclude(rec.s.Pos)
		}
	}
	return nil
}

// abort discards the temporary.
func (w *runWriter) abort() {
	w.tmp.Close()
	os.Remove(w.tmp.Name())
}

// finish writes the meta regions and footer, makes the file and its
// directory entry durable, and renames it into place.
func (w *runWriter) finish() error {
	recordsLen := w.bufw.n
	crcData := w.crc.Sum32()

	bloom := newBloomFilter(int(w.count), w.bitsPerKey)
	for _, h := range w.hashes {
		bloom.addHash(h)
	}
	bloomBlock := bloom.marshal()

	idx := make([]byte, 0, 64+len(w.sparse)*24)
	idx = binary.AppendUvarint(idx, uint64(len(w.minOID)))
	idx = append(idx, w.minOID...)
	idx = binary.AppendUvarint(idx, uint64(len(w.maxOID)))
	idx = append(idx, w.maxOID...)
	idx = binary.AppendUvarint(idx, uint64(len(w.sparse)))
	for _, e := range w.sparse {
		idx = binary.AppendUvarint(idx, uint64(len(e.oid)))
		idx = append(idx, e.oid...)
		idx = binary.AppendUvarint(idx, uint64(e.off))
	}

	crcMeta := crc32.NewIEEE()
	crcMeta.Write(bloomBlock)
	crcMeta.Write(idx)

	footer := make([]byte, runFooterSize)
	binary.LittleEndian.PutUint64(footer[0:], uint64(recordsLen))
	binary.LittleEndian.PutUint64(footer[8:], uint64(w.count))
	binary.LittleEndian.PutUint64(footer[16:], uint64(w.live))
	binary.LittleEndian.PutUint64(footer[24:], uint64(len(bloomBlock)))
	binary.LittleEndian.PutUint64(footer[32:], uint64(len(idx)))
	binary.LittleEndian.PutUint64(footer[40:], math.Float64bits(w.mbr.Min.X))
	binary.LittleEndian.PutUint64(footer[48:], math.Float64bits(w.mbr.Min.Y))
	binary.LittleEndian.PutUint64(footer[56:], math.Float64bits(w.mbr.Max.X))
	binary.LittleEndian.PutUint64(footer[64:], math.Float64bits(w.mbr.Max.Y))
	binary.LittleEndian.PutUint32(footer[72:], crcData)
	binary.LittleEndian.PutUint32(footer[76:], crcMeta.Sum32())
	binary.LittleEndian.PutUint32(footer[80:], runVersion)
	binary.LittleEndian.PutUint64(footer[84:], runMagic)

	fail := func(err error) error {
		w.abort()
		return err
	}
	for _, block := range [][]byte{bloomBlock, idx, footer} {
		if err := w.bufw.write(block); err != nil {
			return fail(fmt.Errorf("store: writing run meta: %w", err))
		}
	}
	if err := w.bufw.flush(); err != nil {
		return fail(fmt.Errorf("store: flushing run: %w", err))
	}
	if err := w.tmp.Sync(); err != nil {
		return fail(fmt.Errorf("store: syncing run: %w", err))
	}
	if err := w.tmp.Close(); err != nil {
		os.Remove(w.tmp.Name())
		return fmt.Errorf("store: closing run temp: %w", err)
	}
	final := filepath.Join(w.dir, w.name)
	if err := os.Rename(w.tmp.Name(), final); err != nil {
		os.Remove(w.tmp.Name())
		return fmt.Errorf("store: renaming run into place: %w", err)
	}
	// The rename must itself be durable: without the directory fsync a
	// machine crash can forget the entry while the (fsynced) manifest
	// written next already references it — an unopenable tier.
	return syncDir(final)
}

// tierRun is one opened immutable run: a read-only file handle plus the
// in-RAM metadata (bloom filter, sparse index, key range, MBR, counts)
// every probe is gated through. Runs are reference-counted: the manifest
// holds one reference, enumerations that read the file outside the shard
// lock hold one more for their duration, and the file is closed (and, for
// compacted-away runs, deleted) when the last reference drops.
type tierRun struct {
	path       string
	f          *os.File
	size       int64
	recordsLen int64
	count      int64
	live       int64
	mbr        geo.Rect
	crcData    uint32
	bloom      *bloomFilter
	sparse     []sparseEntry
	minOID     core.OID
	maxOID     core.OID

	refs            atomic.Int32
	removeOnRelease atomic.Bool
}

// openRun opens path, reading footer and meta blocks and verifying the
// meta checksum. The records region is not read — that is what keeps
// tiered recovery O(metadata).
func openRun(path string) (*tierRun, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: opening run %s: %w", path, err)
	}
	fail := func(err error) (*tierRun, error) {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return fail(fmt.Errorf("store: statting run %s: %w", path, err))
	}
	if st.Size() < runFooterSize {
		return fail(fmt.Errorf("store: run %s too short (%d bytes)", path, st.Size()))
	}
	footer := make([]byte, runFooterSize)
	if _, err := f.ReadAt(footer, st.Size()-runFooterSize); err != nil {
		return fail(fmt.Errorf("store: reading run footer %s: %w", path, err))
	}
	if got := binary.LittleEndian.Uint64(footer[84:]); got != runMagic {
		return fail(fmt.Errorf("store: run %s bad magic %#x", path, got))
	}
	if v := binary.LittleEndian.Uint32(footer[80:]); v != runVersion {
		return fail(fmt.Errorf("store: run %s unsupported version %d", path, v))
	}
	r := &tierRun{
		path:       path,
		f:          f,
		size:       st.Size(),
		recordsLen: int64(binary.LittleEndian.Uint64(footer[0:])),
		count:      int64(binary.LittleEndian.Uint64(footer[8:])),
		live:       int64(binary.LittleEndian.Uint64(footer[16:])),
		crcData:    binary.LittleEndian.Uint32(footer[72:]),
	}
	r.mbr.Min.X = math.Float64frombits(binary.LittleEndian.Uint64(footer[40:]))
	r.mbr.Min.Y = math.Float64frombits(binary.LittleEndian.Uint64(footer[48:]))
	r.mbr.Max.X = math.Float64frombits(binary.LittleEndian.Uint64(footer[56:]))
	r.mbr.Max.Y = math.Float64frombits(binary.LittleEndian.Uint64(footer[64:]))
	bloomLen := int64(binary.LittleEndian.Uint64(footer[24:]))
	idxLen := int64(binary.LittleEndian.Uint64(footer[32:]))
	if r.recordsLen < 0 || bloomLen < 0 || idxLen < 0 ||
		r.recordsLen+bloomLen+idxLen+runFooterSize != st.Size() {
		return fail(fmt.Errorf("store: run %s region lengths inconsistent with size %d", path, st.Size()))
	}
	meta := make([]byte, bloomLen+idxLen)
	if _, err := f.ReadAt(meta, r.recordsLen); err != nil {
		return fail(fmt.Errorf("store: reading run meta %s: %w", path, err))
	}
	if got := crc32.ChecksumIEEE(meta); got != binary.LittleEndian.Uint32(footer[76:]) {
		return fail(fmt.Errorf("store: run %s meta checksum mismatch", path))
	}
	if r.bloom, err = unmarshalBloom(meta[:bloomLen]); err != nil {
		return fail(fmt.Errorf("store: run %s: %w", path, err))
	}
	if err := r.parseIndex(meta[bloomLen:]); err != nil {
		return fail(fmt.Errorf("store: run %s index: %w", path, err))
	}
	r.refs.Store(1)
	return r, nil
}

// parseIndex decodes the index block into the key range and sparse index.
func (r *tierRun) parseIndex(b []byte) error {
	readOID := func(pos int) (core.OID, int, error) {
		n, w := binary.Uvarint(b[pos:])
		if w <= 0 || pos+w+int(n) > len(b) {
			return "", 0, fmt.Errorf("truncated at offset %d", pos)
		}
		return core.OID(b[pos+w : pos+w+int(n)]), pos + w + int(n), nil
	}
	var err error
	pos := 0
	if r.minOID, pos, err = readOID(pos); err != nil {
		return err
	}
	if r.maxOID, pos, err = readOID(pos); err != nil {
		return err
	}
	n, w := binary.Uvarint(b[pos:])
	if w <= 0 {
		return fmt.Errorf("truncated sparse count at offset %d", pos)
	}
	pos += w
	r.sparse = make([]sparseEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		var oid core.OID
		if oid, pos, err = readOID(pos); err != nil {
			return err
		}
		off, w := binary.Uvarint(b[pos:])
		if w <= 0 {
			return fmt.Errorf("truncated sparse offset at offset %d", pos)
		}
		pos += w
		r.sparse = append(r.sparse, sparseEntry{oid: oid, off: int64(off)})
	}
	return nil
}

// acquire takes a reference, failing if the run has already fully
// released (its file is closed).
func (r *tierRun) acquire() bool {
	for {
		n := r.refs.Load()
		if n <= 0 {
			return false
		}
		if r.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// release drops one reference; the last one out closes the file and, if
// the run was retired by a compaction, deletes it.
func (r *tierRun) release() {
	if r.refs.Add(-1) > 0 {
		return
	}
	r.f.Close()
	if r.removeOnRelease.Load() {
		os.Remove(r.path)
	}
}

// retire drops the manifest's reference after the run left the manifest;
// remove additionally deletes the file once every in-flight reader is
// done.
func (r *tierRun) retire(remove bool) {
	if remove {
		r.removeOnRelease.Store(true)
	}
	r.release()
}

// metaBytes estimates the run's resident metadata footprint.
func (r *tierRun) metaBytes() int64 {
	n := int64(len(r.bloom.bits)) + 128
	for _, e := range r.sparse {
		n += int64(len(e.oid)) + 24
	}
	return n
}

// get point-looks id up in the run: binary search over the sparse index,
// then a bounded scan of at most runSparseEvery records. The caller has
// already consulted the bloom filter.
func (r *tierRun) get(id core.OID) (runRecord, bool, error) {
	if r.count == 0 || id < r.minOID || id > r.maxOID {
		return runRecord{}, false, nil
	}
	// First sparse entry strictly greater than id bounds the block.
	i := sort.Search(len(r.sparse), func(i int) bool { return r.sparse[i].oid > id })
	if i == 0 {
		return runRecord{}, false, nil
	}
	start := r.sparse[i-1].off
	end := r.recordsLen
	if i < len(r.sparse) {
		end = r.sparse[i].off
	}
	block := make([]byte, end-start)
	if _, err := r.f.ReadAt(block, start); err != nil {
		return runRecord{}, false, fmt.Errorf("store: reading run block %s: %w", r.path, err)
	}
	for pos := 0; pos < len(block); {
		rec, next, err := decodeRunRecord(block, pos)
		if err != nil {
			return runRecord{}, false, fmt.Errorf("store: run %s: %w", r.path, err)
		}
		if rec.s.OID == id {
			return rec, true, nil
		}
		if rec.s.OID > id {
			return runRecord{}, false, nil
		}
		pos = next
	}
	return runRecord{}, false, nil
}

// runIterator streams a run's records in id order, verifying the data
// checksum when the region is fully consumed.
type runIterator struct {
	run       *tierRun
	crc       hash.Hash32
	buf       []byte
	pos       int64 // file offset of buf[0]
	off       int   // decode offset within buf
	delivered int64
	err       error
}

// iter opens a streaming pass over the records region.
func (r *tierRun) iter() *runIterator {
	return &runIterator{run: r, crc: crc32.NewIEEE()}
}

// next returns the next record. After false, error() distinguishes a
// clean end (with checksum verified) from an I/O or decode failure.
func (it *runIterator) next() (runRecord, bool) {
	if it.err != nil || it.delivered >= it.run.count {
		return runRecord{}, false
	}
	for {
		rec, nextOff, derr := decodeRunRecord(it.buf, it.off)
		if derr == nil {
			it.off = nextOff
			it.delivered++
			if it.delivered == it.run.count {
				// A checksum failure surfaces through error() after the
				// final record is delivered.
				it.finishCRC()
			}
			return rec, true
		}
		// Not enough buffered: slide and refill.
		remainingFile := it.run.recordsLen - (it.pos + int64(len(it.buf)))
		if remainingFile <= 0 {
			it.err = fmt.Errorf("store: run %s truncated records region", it.run.path)
			return runRecord{}, false
		}
		it.pos += int64(it.off)
		tail := len(it.buf) - it.off
		chunk := int64(256 * 1024)
		if chunk > remainingFile {
			chunk = remainingFile
		}
		nbuf := make([]byte, tail+int(chunk))
		copy(nbuf, it.buf[it.off:])
		if _, err := it.run.f.ReadAt(nbuf[tail:], it.pos+int64(tail)); err != nil {
			it.err = fmt.Errorf("store: reading run %s: %w", it.run.path, err)
			return runRecord{}, false
		}
		it.crc.Write(nbuf[tail:])
		it.buf = nbuf
		it.off = 0
	}
}

// finishCRC verifies the data checksum once every record was delivered.
// Any bytes past the final record within the region are a format error.
func (it *runIterator) finishCRC() {
	consumed := it.pos + int64(len(it.buf))
	if consumed < it.run.recordsLen {
		// Records ended early; read the remainder so the CRC covers the
		// whole region (trailing garbage fails the check).
		rest := make([]byte, it.run.recordsLen-consumed)
		if _, err := it.run.f.ReadAt(rest, consumed); err != nil {
			it.err = fmt.Errorf("store: reading run %s: %w", it.run.path, err)
			return
		}
		it.crc.Write(rest)
	}
	if it.crc.Sum32() != it.run.crcData {
		it.err = fmt.Errorf("store: run %s data checksum mismatch", it.run.path)
	}
}

// scan streams every record through visit (stopping early when visit
// returns false). A complete scan verifies the data checksum; an early
// stop skips the verification.
func (r *tierRun) scan(visit func(runRecord) bool) error {
	it := r.iter()
	for {
		rec, ok := it.next()
		if !ok {
			return it.err
		}
		if !visit(rec) {
			return nil
		}
	}
}

// error reports the first I/O, decode or checksum failure of the pass.
func (it *runIterator) error() error { return it.err }
