package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/spatial"
)

// This file is the store half of leaf replication (see internal/server's
// package doc for the protocol): the hooks a primary uses to observe its
// own committed state — the WAL tee (shardedwal.go), the tier-structure
// notifier and the snapshot reader here — and the apply surface a standby
// uses to mirror it, including bulk installation of shipped run files.
//
// Ordering is the load-bearing property throughout. A shard's replication
// stream must reproduce the primary's per-shard apply order, and every
// hook here is positioned so that it does:
//
//   - WAL-teed records (puts, removes) are observed in segment commit
//     order, which equals apply order because both happen under the
//     shard's write lock.
//   - ReplSnapshot reads the shard's state AND enqueues a WAL marker
//     inside one critical section, so the marker's position in the tee
//     stream is exactly the snapshot's position in the apply order.
//   - The flush notifier fires after the flushed segment's drain barrier,
//     so by the time a ClearMem notification can be enqueued every put
//     the new run covers has already been teed.

// ReplNotifyFunc observes a tier-structure change of one shard: runs is
// the shard's new run list (newest first, base names), nextSeq its run
// sequence cursor, and clearMem reports a flush (the memtable content
// moved into runs[0]; a mirroring standby must clear its own memtable
// after installing the run list). Called with the shard's write lock held
// — implementations must only enqueue, never block.
type ReplNotifyFunc func(shard int, runs []string, nextSeq uint64, clearMem bool)

// replNotifyBox wraps the notifier for atomic.Pointer storage.
type replNotifyBox struct{ fn ReplNotifyFunc }

// SetReplNotify installs (or, with nil, removes) the tier-change notifier.
func (db *ShardedSightingDB) SetReplNotify(fn ReplNotifyFunc) {
	if fn == nil {
		db.replNotify.Store(nil)
		return
	}
	db.replNotify.Store(&replNotifyBox{fn: fn})
}

// notifyRepl invokes the notifier, if any. Caller holds the shard's write
// lock.
func (db *ShardedSightingDB) notifyRepl(shard int, runs []*tierRun, nextSeq uint64, clearMem bool) {
	b := db.replNotify.Load()
	if b == nil {
		return
	}
	b.fn(shard, runBaseNames(runs), nextSeq, clearMem)
}

// runBaseNames lists runs' file base names, newest first.
func runBaseNames(runs []*tierRun) []string {
	if len(runs) == 0 {
		return nil
	}
	names := make([]string, len(runs))
	for i, r := range runs {
		names[i] = filepath.Base(r.path)
	}
	return names
}

// SetReplStandby marks the store as a replication standby (or clears the
// mark on promotion). A standby never restructures its tier on its own —
// MaintainTiers and the inline flush backpressure become no-ops — because
// its run list must mirror the primary's exactly; it changes only through
// ReplInstallRuns and ReplInstallSnapshot.
func (db *ShardedSightingDB) SetReplStandby(standby bool) {
	db.replStandby.Store(standby)
}

// ReplStandby reports whether the store is in standby mode.
func (db *ShardedSightingDB) ReplStandby() bool { return db.replStandby.Load() }

// ReplShardState is the snapshot of one shard a standby bootstraps from:
// the memtable's live records and tombstones, the run list (newest first,
// base names) and the run sequence cursor. Replaying Live/Dead over an
// installed Runs list reproduces the shard byte-for-byte in effect.
type ReplShardState struct {
	Live    []core.Sighting
	Dead    []core.OID
	Runs    []string
	NextSeq uint64
}

// ErrReplResize reports a replication operation that raced a shard-layout
// change. Replicated stores run a fixed shard count (the server forbids
// AutoShard alongside a replica), so hitting this is a configuration
// error, not a transient.
var ErrReplResize = errors.New("store: replication requires a fixed shard layout")

// replShard resolves shard in the current generation, rejecting in-flight
// resizes.
func (db *ShardedSightingDB) replShard(shard int) (*sightingShard, *shardGen, error) {
	g := db.gen.Load()
	if g.prev != nil {
		return nil, nil, ErrReplResize
	}
	if shard < 0 || shard >= len(g.shards) {
		return nil, nil, fmt.Errorf("store: replication shard %d out of range (%d shards)", shard, len(g.shards))
	}
	return g.shards[shard], g, nil
}

// ReplSnapshot captures shard's full state and, while still holding the
// shard's write lock, enqueues a replication marker carrying token on the
// shard's WAL stream. The marker surfaces through ReplTee.TeeMark at
// exactly the snapshot's position in the tee order: every record teed
// before it is contained in the snapshot, every record teed after it was
// applied after the snapshot was taken. That is what lets a sender splice
// the snapshot into a live stream without pausing writers.
func (db *ShardedSightingDB) ReplSnapshot(shard int, token uint64) (ReplShardState, error) {
	sh, _, err := db.replShard(shard)
	if err != nil {
		return ReplShardState{}, err
	}
	sh.lockWrite()
	defer sh.mu.Unlock()
	if sh.moved {
		return ReplShardState{}, ErrReplResize
	}
	st := ReplShardState{Live: sh.liveSnapshot()}
	if t := sh.tier; t != nil {
		for id := range sh.dead {
			st.Dead = append(st.Dead, id)
		}
		st.Runs = runBaseNames(t.runs)
		st.NextSeq = t.nextSeq.Load()
	}
	if db.wal != nil {
		if err := db.wal.Mark(shard, token); err != nil {
			return st, err
		}
	}
	return st, nil
}

// replFetchChunk is the transfer unit of a run download — small enough to
// ride a few datagram-batched request/responses, large enough to amortize
// the per-call overhead.
const replFetchChunk = 128 << 10

// ReadRunChunk serves one chunk of a run file to a fetching standby. The
// name is validated against the run naming scheme (never joined raw, so a
// hostile name cannot escape the tier directory); a name whose file is
// gone — compacted away between the notification and the fetch — returns
// the os.ErrNotExist it stats to, which the fetching side heals with a
// fresh snapshot. size is the full file length; eof reports that the
// chunk reaches it.
func (db *ShardedSightingDB) ReadRunChunk(name string, off int64, maxBytes int) (data []byte, size int64, eof bool, err error) {
	ts := db.tier
	if ts == nil {
		return nil, 0, false, errors.New("store: run fetch from an untiered store")
	}
	if _, _, ok := parseRunName(name); !ok {
		return nil, 0, false, fmt.Errorf("store: run fetch: invalid run name %q", name)
	}
	if off < 0 {
		return nil, 0, false, fmt.Errorf("store: run fetch: negative offset %d", off)
	}
	if maxBytes <= 0 || maxBytes > replFetchChunk {
		maxBytes = replFetchChunk
	}
	f, err := os.Open(filepath.Join(ts.cfg.Dir, name))
	if err != nil {
		return nil, 0, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, false, err
	}
	size = st.Size()
	if off >= size {
		return nil, size, true, nil
	}
	buf := make([]byte, maxBytes)
	n, rerr := f.ReadAt(buf, off)
	if rerr != nil && rerr != io.EOF {
		return nil, size, false, rerr
	}
	return buf[:n], size, off+int64(n) >= size, nil
}

// replFetchTempPattern names in-flight run downloads. It matches
// tierTempGlob, so a download torn by a crash is swept like any other
// tier temporary the next time the store opens.
const replFetchTempPattern = ".tier-fetch-*"

// ReplFetchRun downloads one run file through read — called with growing
// offsets until it reports eof — into a temporary, verifies both of the
// run's checksums (metadata and full data region), and atomically renames
// it into the tier directory. Idempotent: a run already present on disk
// (this download raced another, or survives from before a demotion) is
// kept as is — run files are immutable and content-addressed by name.
func (db *ShardedSightingDB) ReplFetchRun(name string, read func(off int64, maxBytes int) (data []byte, eof bool, err error)) error {
	ts := db.tier
	if ts == nil {
		return errors.New("store: run fetch into an untiered store")
	}
	if _, _, ok := parseRunName(name); !ok {
		return fmt.Errorf("store: run fetch: invalid run name %q", name)
	}
	final := filepath.Join(ts.cfg.Dir, name)
	if _, err := os.Stat(final); err == nil {
		return nil
	}
	tmp, err := os.CreateTemp(ts.cfg.Dir, replFetchTempPattern)
	if err != nil {
		return fmt.Errorf("store: creating run fetch temp: %w", err)
	}
	abort := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	off := int64(0)
	for {
		data, eof, err := read(off, replFetchChunk)
		if err != nil {
			return abort(fmt.Errorf("store: fetching run %s at offset %d: %w", name, off, err))
		}
		if len(data) > 0 {
			if _, err := tmp.Write(data); err != nil {
				return abort(fmt.Errorf("store: writing run fetch temp: %w", err))
			}
			off += int64(len(data))
		}
		if eof {
			break
		}
		if len(data) == 0 {
			return abort(fmt.Errorf("store: fetching run %s: empty non-final chunk at offset %d", name, off))
		}
	}
	if err := tmp.Sync(); err != nil {
		return abort(fmt.Errorf("store: syncing run fetch temp: %w", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: closing run fetch temp: %w", err)
	}
	// Verify before install: openRun checks the footer and the metadata
	// checksum, the full scan checks the data-region checksum. A transfer
	// torn or corrupted anywhere fails here and leaves no trace.
	r, err := openRun(tmp.Name())
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: verifying fetched run %s: %w", name, err)
	}
	scanErr := r.scan(func(runRecord) bool { return true })
	r.retire(false)
	if scanErr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: verifying fetched run %s: %w", name, scanErr)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: installing fetched run %s: %w", name, err)
	}
	return syncDir(final)
}

// fetchMissingRuns downloads, via fetch, every named run not yet present
// in the tier directory. Called without any shard lock — downloads are
// the slow path and must not stall readers.
func (db *ShardedSightingDB) fetchMissingRuns(names []string, fetch func(name string) error) error {
	ts := db.tier
	for _, name := range names {
		if _, _, ok := parseRunName(name); !ok {
			return fmt.Errorf("store: run install: invalid run name %q", name)
		}
		if _, err := os.Stat(filepath.Join(ts.cfg.Dir, name)); err == nil {
			continue
		}
		if fetch == nil {
			return fmt.Errorf("store: run install: %s missing with no fetcher", name)
		}
		if err := fetch(name); err != nil {
			return err
		}
	}
	return nil
}

// swapRunsLocked replaces shard's run list with names (newest first),
// reusing already-open runs, opening newly fetched ones and retiring the
// dropped ones, and commits the new list through the manifest — the same
// atomic swap flushes and compactions use. Caller holds the shard's write
// lock; every failure path leaves the current list untouched.
func (db *ShardedSightingDB) swapRunsLocked(sh *sightingShard, shard int, names []string, nextSeq uint64) error {
	t := sh.tier
	if t == nil {
		return errors.New("store: run install on an untiered store")
	}
	have := make(map[string]*tierRun, len(t.runs))
	for _, r := range t.runs {
		have[filepath.Base(r.path)] = r
	}
	newRuns := make([]*tierRun, 0, len(names))
	var opened []*tierRun
	for _, name := range names {
		if r := have[name]; r != nil {
			newRuns = append(newRuns, r)
			continue
		}
		r, err := openRun(filepath.Join(t.dir, name))
		if err != nil {
			for _, o := range opened {
				o.retire(false)
			}
			return err
		}
		newRuns = append(newRuns, r)
		opened = append(opened, r)
	}
	if cur := t.nextSeq.Load(); nextSeq < cur {
		nextSeq = cur // the cursor never moves backwards
	}
	if err := saveManifest(t.dir, tierManifestFor(shard, nextSeq, newRuns)); err != nil {
		for _, o := range opened {
			o.retire(false)
		}
		return err
	}
	keep := make(map[string]bool, len(names))
	for _, name := range names {
		keep[name] = true
	}
	old := t.runs
	t.runs = newRuns
	t.nextSeq.Store(nextSeq)
	for _, r := range old {
		if !keep[filepath.Base(r.path)] {
			r.retire(true)
		}
	}
	return nil
}

// resetMemtableLocked clears the shard's memtable, tombstones and spatial
// index. Caller holds the shard's write lock.
func (db *ShardedSightingDB) resetMemtableLocked(sh *sightingShard) {
	sh.byID = make(map[core.OID]*sightingEntry)
	if sh.tier != nil || sh.dead != nil {
		sh.dead = make(map[core.OID]struct{})
	}
	sh.idx = db.newIndex()
	sh.items, _ = sh.idx.(spatial.ItemIndex)
	sh.nonempty = false
	sh.stale = 0
	sh.memBytes = 0
	sh.sweepKeys = nil
	sh.sweepPos = 0
}

// ReplInstallRuns applies a primary's tier-structure notification on a
// standby: fetch any run file not yet local (off-lock), then atomically
// swap the shard's run list to names. clearMem mirrors a primary flush —
// the standby's memtable at this point in the stream equals the memtable
// the primary flushed into names[0], so it is cleared and the standby's
// own WAL segment reset, exactly like the primary's flush path.
func (db *ShardedSightingDB) ReplInstallRuns(shard int, names []string, nextSeq uint64, clearMem bool, fetch func(name string) error) error {
	if db.tier == nil {
		return errors.New("store: ReplInstallRuns on an untiered store")
	}
	if err := db.fetchMissingRuns(names, fetch); err != nil {
		return err
	}
	sh, _, err := db.replShard(shard)
	if err != nil {
		return err
	}
	sh.lockWrite()
	defer sh.mu.Unlock()
	if sh.moved {
		return ErrReplResize
	}
	if err := db.swapRunsLocked(sh, shard, names, nextSeq); err != nil {
		return err
	}
	if clearMem {
		db.resetMemtableLocked(sh)
		if db.wal != nil && db.wal.Err() == nil {
			if err := db.wal.CompactShard(shard, nil); err != nil {
				return fmt.Errorf("store: resetting WAL segment after run install of shard %d: %w", shard, err)
			}
		}
	}
	return nil
}

// ReplInstallSnapshot replaces shard's entire state — memtable, tombstone
// set, run list, sequence cursor — with a primary's snapshot: the
// bootstrap and gap-healing path. Run files are fetched off-lock; the
// swap and the memtable rebuild happen under the shard's write lock; the
// standby's WAL segment is rewritten to replay to exactly the installed
// memtable (live records and tombstones both — dropping the tombstones
// would resurrect run-resident versions on the next restart).
func (db *ShardedSightingDB) ReplInstallSnapshot(shard int, st ReplShardState, fetch func(name string) error) error {
	if len(st.Runs) > 0 && db.tier == nil {
		return errors.New("store: snapshot with runs into an untiered store")
	}
	if db.tier != nil {
		if err := db.fetchMissingRuns(st.Runs, fetch); err != nil {
			return err
		}
	}
	sh, _, err := db.replShard(shard)
	if err != nil {
		return err
	}
	sh.lockWrite()
	defer sh.mu.Unlock()
	if sh.moved {
		return ErrReplResize
	}
	if sh.tier != nil {
		if err := db.swapRunsLocked(sh, shard, st.Runs, st.NextSeq); err != nil {
			return err
		}
	}
	db.resetMemtableLocked(sh)
	var expires time.Time
	if db.ttl > 0 {
		expires = db.clock().Add(db.ttl)
	}
	items := make([]spatial.Item, 0, len(st.Live))
	for _, s := range st.Live {
		e := &sightingEntry{s: s, expires: expires}
		sh.byID[s.OID] = e
		items = append(items, spatial.Item{ID: s.OID, Pos: s.Pos, Ref: e})
		sh.noteInsert(s.Pos)
		if sh.tier != nil {
			sh.memBytes += memCost(s.OID)
		}
	}
	if qt, ok := sh.idx.(*spatial.Quadtree); ok {
		qt.Rebuild(items)
	} else if sh.items != nil {
		for _, it := range items {
			sh.items.InsertItem(it)
		}
	} else {
		for _, it := range items {
			sh.idx.Insert(it.ID, it.Pos)
		}
	}
	if sh.tier != nil {
		for _, id := range st.Dead {
			sh.dead[id] = struct{}{}
			sh.memBytes += tombCost(id)
		}
	}
	if db.wal != nil && db.wal.Err() == nil {
		if err := db.wal.CompactShardState(shard, st.Live, st.Dead); err != nil {
			return fmt.Errorf("store: rewriting WAL segment after snapshot install of shard %d: %w", shard, err)
		}
	}
	return nil
}
