package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// gatedStore wraps a SightingStore and blocks inside PutBatch until the
// test releases it, so tests can deterministically pile updates onto a
// pipeline lane while its leader is mid-commit.
type gatedStore struct {
	SightingStore
	entered chan []core.Sighting // receives each batch on entry
	release chan struct{}        // one receive per batch to proceed
}

func (g *gatedStore) PutBatch(batch []core.Sighting) {
	g.entered <- append([]core.Sighting(nil), batch...)
	<-g.release
	g.SightingStore.PutBatch(batch)
}

func TestPipelinePutApplies(t *testing.T) {
	db := NewShardedSightingDB(WithShards(4))
	pipe := NewUpdatePipeline(db)
	pipe.Put(sighting("a", 1, 2))
	if s, ok := db.Get("a"); !ok || s.Pos != geo.Pt(1, 2) {
		t.Fatalf("Get after pipeline Put = %+v, %v", s, ok)
	}
}

// TestPipelineGroupCommit pins the leader inside its first commit, queues
// followers on the same lane, and verifies they are all applied by the
// leader's next commit as one batch.
func TestPipelineGroupCommit(t *testing.T) {
	inner := NewShardedSightingDB(WithShards(1))
	gate := &gatedStore{SightingStore: inner, entered: make(chan []core.Sighting), release: make(chan struct{})}
	pipe := NewUpdatePipeline(gate)

	leaderDone := make(chan struct{})
	go func() {
		pipe.Put(sighting("leader", 0, 0))
		close(leaderDone)
	}()
	first := <-gate.entered // leader is now inside PutBatch
	if len(first) != 1 || first[0].OID != "leader" {
		t.Fatalf("first batch = %v", first)
	}

	const followers = 5
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pipe.Put(sighting(fmt.Sprintf("f%d", i), float64(i), 0))
		}(i)
	}
	// Wait until every follower is queued on the lane.
	deadline := time.Now().Add(5 * time.Second)
	for {
		lane := &pipe.lanes.Load().l[0]
		lane.mu.Lock()
		n := len(lane.pending)
		lane.mu.Unlock()
		if n == followers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers queued", n, followers)
		}
		time.Sleep(time.Millisecond)
	}

	gate.release <- struct{}{} // leader commits its own update
	second := <-gate.entered   // ... and comes back with the queued batch
	if len(second) != followers {
		t.Errorf("second batch has %d updates, want %d (group commit broken)", len(second), followers)
	}
	gate.release <- struct{}{}
	wg.Wait()
	<-leaderDone
	if inner.Len() != followers+1 {
		t.Errorf("Len = %d, want %d", inner.Len(), followers+1)
	}
}

// TestPipelineOnExpired verifies the amortized sweep reports expired ids on
// the update path.
func TestPipelineOnExpired(t *testing.T) {
	now := time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	db := NewShardedSightingDB(WithShards(2), WithTTL(30*time.Second), WithClock(clock))
	var expired []core.OID
	pipe := NewUpdatePipeline(db, OnExpired(func(ids []core.OID) {
		mu.Lock()
		expired = append(expired, ids...)
		mu.Unlock()
	}))

	pipe.Put(sighting("stale", 1, 1))
	mu.Lock()
	now = now.Add(time.Minute)
	mu.Unlock()
	// Fresh updates to other objects must surface the stale record via
	// the bounded sweep within a few batches.
	for i := 0; i < 8; i++ {
		pipe.Put(sighting(fmt.Sprintf("fresh%d", i), float64(i), 0))
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, id := range expired {
		if id == "stale" {
			found = true
		}
		if id != "stale" {
			t.Errorf("unexpired id %s reported", id)
		}
	}
	if !found {
		t.Error("stale record never reported by the amortized sweep")
	}
}

// TestPipelineConcurrentDistinctObjects checks that heavy concurrent
// traffic through the pipeline loses no update: every object ends at its
// last written position.
func TestPipelineConcurrentDistinctObjects(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for _, db := range []SightingStore{
		NewSightingDB(),
		NewShardedSightingDB(WithShards(8)),
	} {
		pipe := NewUpdatePipeline(db)
		const workers = 10
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < iters; i++ {
					pipe.Put(sighting(fmt.Sprintf("w%d", w), rng.Float64()*100, float64(i)))
				}
			}(w)
		}
		wg.Wait()
		if db.Len() != workers {
			t.Fatalf("%T: Len = %d, want %d", db, db.Len(), workers)
		}
		for w := 0; w < workers; w++ {
			s, ok := db.Get(core.OID(fmt.Sprintf("w%d", w)))
			if !ok || s.Pos.Y != float64(iters-1) {
				t.Errorf("%T: w%d final = %+v, %v (want Y=%d)", db, w, s, ok, iters-1)
			}
		}
	}
}
