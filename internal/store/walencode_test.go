package store

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// The hand-rolled hot-path encoder must round-trip through Replay's
// json.Unmarshal to exactly the record the standard marshaler would have
// preserved — including awkward ids, timestamps and float shapes.
func TestWALRecordEncodingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	awkwardIDs := []core.OID{
		"plain", "", `qu"ote`, `back\slash`, "uni·cødé-日本", "ctrl\nnew\tline\x01",
		"<html>&amp;</html>",
	}
	randomSighting := func() core.Sighting {
		var pos geo.Point
		switch rng.Intn(4) {
		case 0:
			pos = geo.Pt(rng.NormFloat64()*1e6, rng.NormFloat64()*1e6)
		case 1:
			pos = geo.Pt(float64(rng.Intn(1000)), float64(rng.Intn(1000)))
		case 2:
			pos = geo.Pt(rng.Float64()*1e-9, -rng.Float64()*1e12)
		default:
			pos = geo.Pt(0, -0.5)
		}
		var ts time.Time
		switch rng.Intn(3) {
		case 0:
			ts = time.Time{}
		case 1:
			ts = time.Date(2026, 7, 28, 12, 0, 0, rng.Intn(1e9), time.UTC)
		default:
			ts = time.Date(1999, 1, 2, 3, 4, 5, 0, time.FixedZone("X", 3600)).Add(time.Duration(rng.Int63n(1e15)))
		}
		return core.Sighting{
			OID:     awkwardIDs[rng.Intn(len(awkwardIDs))],
			T:       ts,
			Pos:     pos,
			SensAcc: rng.Float64() * 100,
		}
	}
	var memo walTimeMemo
	for i := 0; i < 500; i++ {
		var rec WALRecord
		if rng.Intn(3) == 0 {
			rec = WALRecord{Op: WALSightingRemove, OID: awkwardIDs[rng.Intn(len(awkwardIDs))]}
		} else {
			batch := make([]core.Sighting, rng.Intn(5))
			for j := range batch {
				batch[j] = randomSighting()
			}
			rec = WALRecord{Op: WALSightingBatch, Sightings: batch}
		}
		line, err := appendWALRecordJSON(nil, rec, nil)
		if err != nil {
			t.Fatalf("encode %+v: %v", rec, err)
		}
		if !bytes.HasSuffix(line, []byte{'\n'}) {
			t.Fatalf("encoding not newline-terminated: %q", line)
		}
		// The writer's timestamp memo must never change the serialization.
		memoLine, err := appendWALRecordJSON(nil, rec, &memo)
		if err != nil {
			t.Fatalf("memoized encode: %v", err)
		}
		if !bytes.Equal(line, memoLine) {
			t.Fatalf("memoized encoding differs:\n  %q\n  %q", line, memoLine)
		}
		var got WALRecord
		if err := json.Unmarshal(bytes.TrimSuffix(line, []byte{'\n'}), &got); err != nil {
			t.Fatalf("decode %q: %v", line, err)
		}
		// Compare against what the standard encoding preserves.
		std, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("std encode: %v", err)
		}
		var want WALRecord
		if err := json.Unmarshal(std, &want); err != nil {
			t.Fatal(err)
		}
		if got.Op != want.Op || got.OID != want.OID || len(got.Sightings) != len(want.Sightings) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
		for j := range got.Sightings {
			g, w := got.Sightings[j], want.Sightings[j]
			if g.OID != w.OID || !g.T.Equal(w.T) || g.Pos != w.Pos || g.SensAcc != w.SensAcc {
				t.Fatalf("sighting %d mismatch:\n got %+v\nwant %+v", j, g, w)
			}
		}
	}
}

// A visitor record routed through the generic fallback still encodes.
func TestWALRecordEncodingFallback(t *testing.T) {
	rec := WALRecord{Op: WALPut, Visitor: &VisitorRecord{OID: "v1", ForwardRef: "c2"}}
	line, err := appendWALRecordJSON(nil, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got WALRecord
	if err := json.Unmarshal(bytes.TrimSuffix(line, []byte{'\n'}), &got); err != nil {
		t.Fatal(err)
	}
	if got.Visitor == nil || got.Visitor.OID != "v1" || got.Visitor.ForwardRef != "c2" {
		t.Fatalf("fallback round trip = %+v", got)
	}
}

// Non-finite coordinates must fail encoding (invalid JSON would read back
// as corruption) rather than poison the log.
func TestWALRecordEncodingRejectsNonFinite(t *testing.T) {
	bad := core.Sighting{OID: "x", Pos: geo.Point{X: 1, Y: 2}}
	bad.Pos.X = nan()
	if _, err := appendWALRecordJSON(nil, WALRecord{Op: WALSightingBatch, Sightings: []core.Sighting{bad}}, nil); err == nil {
		t.Fatal("encoded a NaN coordinate")
	}
}

func nan() float64 { z := 0.0; return z / z }
