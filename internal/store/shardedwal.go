package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"locsvc/internal/core"
)

// ShardedWAL persists a sharded sighting store through one FileWAL segment
// per shard, so crash recovery can replay every shard concurrently instead
// of scanning one serial log. Records are routed by the same id-hash shard
// mapping the store uses, which gives each segment a total order consistent
// with its shard's lock: all of one object's records live in exactly one
// segment, in application order.
//
// The append unit is the group-commit batch of the update pipeline: one
// WALSightingBatch record per PutBatch shard group, so the marshal and
// flush cost of durability is amortized over the batch exactly as the
// combining lane amortizes lock cost.
//
// # Append modes
//
// By default appends are asynchronous: AppendBatch/AppendRemove enqueue
// the record on the shard's pending list (the caller holds the shard lock,
// so list order is commit order — the update path pays one batch copy and
// a slice append) and a per-segment writer goroutine swaps the list out,
// encodes it, and commits the whole drain with a single write+flush. The
// writer waits a short coalescing window (walCoalesceDelay) before each
// swap, so even a trickle of updates amortizes the encode setup and the
// syscall across a group — the group-commit idea applied once more, at the
// disk boundary. This gives bounded-lag durability: at any kill point each
// segment holds a consistent prefix of its shard's history, at most the
// pending cap plus one coalescing window behind; Flush is the barrier that
// waits for everything already appended to reach the OS. With WithSync
// appends become synchronous with an fsync per record — full machine-crash
// durability on the update path.
//
// A failed append or encode marks the WAL down: logging stops (keeping
// every segment a clean prefix rather than writing past a gap) and the
// sticky error is reported by Err, Flush and Close.
//
// The segment count is a property of the persistent log, not of the
// process: it determines which segment holds each object's records, so
// reopening a directory with a different shard count is refused rather
// than silently splitting an object's history across unordered segments.
type ShardedWAL struct {
	dir  string
	segs []*FileWAL
	bufs []walShardBuf // nil in synchronous (WithSync) mode
	wg   sync.WaitGroup

	// appended counts records logged per shard since that segment's last
	// compaction, feeding the store's grow-triggered compaction policy.
	appended []atomic.Int64

	down  atomic.Bool
	errMu sync.Mutex
	err   error // first append failure, sticky

	closeOnce sync.Once
	closeErr  error
}

// walShardBuf is one shard's pending append list, double-buffered with its
// writer goroutine.
type walShardBuf struct {
	mu    sync.Mutex
	data  *sync.Cond // signals the writer: records or acks pending
	space *sync.Cond // signals producers: list drained below the cap
	recs  []WALRecord
	acks  []chan struct{} // flush barriers to close after the next commit
	stop  bool
	// compacting pauses the writer between BeginCompact and
	// FinishCompact: records keep accumulating here but none may reach
	// the old segment, or the rename would discard them.
	compacting bool
	// free recycles the copied batch slices between writer and producers
	// (both already hold mu), keeping the append path allocation-free in
	// the steady state — garbage here would turn into GC scan pressure on
	// the store's large pointer-rich heap.
	free [][]core.Sighting
}

// waitSpace blocks until the pending list is below the cap (or shutdown).
// Caller holds sb.mu.
func (sb *walShardBuf) waitSpace() {
	for len(sb.recs) >= walPendingCap && !sb.stop {
		sb.space.Wait()
	}
}

// push adds rec to the pending list, waking the writer on the empty→
// nonempty edge. Caller holds sb.mu after waitSpace.
func (sb *walShardBuf) push(rec WALRecord) {
	sb.recs = append(sb.recs, rec)
	if len(sb.recs) == 1 {
		sb.data.Signal()
	}
}

// takeBatchBuf pops a recycled batch slice. Caller holds sb.mu.
func (sb *walShardBuf) takeBatchBuf() []core.Sighting {
	if n := len(sb.free); n > 0 {
		buf := sb.free[n-1]
		sb.free[n-1] = nil
		sb.free = sb.free[:n-1]
		return buf
	}
	return nil
}

// walPendingCap bounds a shard's pending record list; producers blocking
// on it are the backpressure when the disk falls behind. It also bounds
// what a kill can lose in the asynchronous mode.
const walPendingCap = 4096

// walCoalesceDelay is how long a writer lingers after the first pending
// record before committing, letting a commit group form. It bounds the
// extra durability lag and the latency of a Flush barrier.
const walCoalesceDelay = time.Millisecond

// walCompactSlack is how far a segment's logged history may exceed its
// live set before compaction triggers — shared by the janitor's
// grow-triggered pass (CompactWALIfGrown) and the post-recovery
// auto-compaction, so both fire at the same point.
const walCompactSlack = 1024

// segmentPath names shard i's log inside dir.
func segmentPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.wal", i))
}

// OpenShardedWAL opens (creating if needed) a sharded sighting log under
// dir with the given shard count (minimum 1). If dir already holds
// segments, their count must equal shards; see the type comment for why a
// mismatch is an error rather than a migration. Passing WithSync selects
// the synchronous fsync-per-append mode; otherwise appends are
// asynchronous (see the type comment).
func OpenShardedWAL(dir string, shards int, opts ...FileWALOption) (*ShardedWAL, error) {
	if shards < 1 {
		shards = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating sighting WAL dir %s: %w", dir, err)
	}
	existing, nonempty := 0, false
	for {
		st, err := os.Stat(segmentPath(dir, existing))
		if err != nil {
			break
		}
		if st.Size() > 0 {
			nonempty = true
		}
		existing++
	}
	if existing > 0 && existing != shards {
		// Only segments with history pin the count: a record's segment is
		// its id-hash shard, so resharding nonempty logs would scatter an
		// object's ordered history. All-empty segments carry none — they
		// are what a crashed first open or an idle run leaves — so adopt
		// the requested count and clear the extras.
		if nonempty {
			return nil, fmt.Errorf("store: sighting WAL %s has %d shard segments, want %d (the shard count is fixed by the persistent log)",
				dir, existing, shards)
		}
		for i := shards; i < existing; i++ {
			if err := os.Remove(segmentPath(dir, i)); err != nil {
				return nil, fmt.Errorf("store: clearing stale empty segment: %w", err)
			}
		}
	}
	w := &ShardedWAL{dir: dir, segs: make([]*FileWAL, shards), appended: make([]atomic.Int64, shards)}
	for i := range w.segs {
		seg, err := OpenFileWAL(segmentPath(dir, i), opts...)
		if err != nil {
			w.Close()
			return nil, err
		}
		w.segs[i] = seg
	}
	if !w.segs[0].sync {
		w.bufs = make([]walShardBuf, shards)
		for i := range w.bufs {
			sb := &w.bufs[i]
			sb.data = sync.NewCond(&sb.mu)
			sb.space = sync.NewCond(&sb.mu)
			w.wg.Add(1)
			go w.writer(i)
		}
	}
	return w, nil
}

// NumShards returns the number of log segments.
func (w *ShardedWAL) NumShards() int { return len(w.segs) }

// Dir returns the directory holding the segments, for diagnostics.
func (w *ShardedWAL) Dir() string { return w.dir }

// AppendBatch logs one group-commit batch of sighting puts to shard's
// segment — asynchronously in the default mode, durably before returning
// with WithSync. Later entries for the same object supersede earlier ones,
// matching SightingStore.PutBatch. The batch is copied; the caller may
// reuse the slice. After a failed append the WAL is down (see Err) and
// calls return the sticky error without logging.
func (w *ShardedWAL) AppendBatch(shard int, batch []core.Sighting) error {
	if w.down.Load() {
		return w.Err()
	}
	if w.bufs == nil {
		err := w.segs[shard].Append(WALRecord{Op: WALSightingBatch, Sightings: batch})
		if err != nil {
			w.fail(err)
			return err
		}
		w.appended[shard].Add(int64(len(batch)))
		return nil
	}
	w.enqueue(shard, batch, core.Sighting{}, false)
	w.appended[shard].Add(int64(len(batch)))
	return nil
}

// AppendPut logs a single sighting put — the batch-of-one common case,
// spared the caller-side slice — with the same mode semantics as
// AppendBatch.
func (w *ShardedWAL) AppendPut(shard int, s core.Sighting) error {
	if w.down.Load() {
		return w.Err()
	}
	if w.bufs == nil {
		err := w.segs[shard].Append(WALRecord{Op: WALSightingBatch, Sightings: []core.Sighting{s}})
		if err != nil {
			w.fail(err)
			return err
		}
		w.appended[shard].Add(1)
		return nil
	}
	w.enqueue(shard, nil, s, true)
	w.appended[shard].Add(1)
	return nil
}

// AppendRemove logs the removal of id to shard's segment, with the same
// mode semantics as AppendBatch.
func (w *ShardedWAL) AppendRemove(shard int, id core.OID) error {
	if w.down.Load() {
		return w.Err()
	}
	if w.bufs == nil {
		err := w.segs[shard].Append(WALRecord{Op: WALSightingRemove, OID: id})
		if err != nil {
			w.fail(err)
			return err
		}
		w.appended[shard].Add(1)
		return nil
	}
	sb := &w.bufs[shard]
	sb.mu.Lock()
	sb.waitSpace()
	sb.push(WALRecord{Op: WALSightingRemove, OID: id})
	sb.mu.Unlock()
	w.appended[shard].Add(1)
	return nil
}

// enqueue copies a put (batch, or the single sighting when one is true)
// into a recycled buffer and puts the record on shard's pending list,
// blocking on the cap.
func (w *ShardedWAL) enqueue(shard int, batch []core.Sighting, s core.Sighting, one bool) {
	sb := &w.bufs[shard]
	sb.mu.Lock()
	sb.waitSpace()
	cp := sb.takeBatchBuf()
	if one {
		cp = append(cp[:0], s)
	} else {
		cp = append(cp[:0], batch...)
	}
	sb.push(WALRecord{Op: WALSightingBatch, Sightings: cp})
	sb.mu.Unlock()
}

// writer is shard i's commit goroutine: it lingers for the coalescing
// window once records are pending, swaps the shard's list out, encodes it
// (timestamps memoized across the drain — group-commit records cluster in
// time) and hands the whole drain to the segment as one write+flush.
func (w *ShardedWAL) writer(shard int) {
	defer w.wg.Done()
	sb := &w.bufs[shard]
	seg := w.segs[shard]
	var local []WALRecord
	var out []byte
	var memo walTimeMemo
	for {
		sb.mu.Lock()
		// Hand the previous drain's batch buffers back for reuse.
		for i := range local {
			if s := local[i].Sightings; s != nil && len(sb.free) < 64 {
				sb.free = append(sb.free, s[:0])
			}
			local[i].Sightings = nil
		}
		for sb.compacting || (len(sb.recs) == 0 && len(sb.acks) == 0 && !sb.stop) {
			sb.data.Wait()
		}
		// Linger so a commit group can form — unless a barrier, shutdown
		// or backpressure wants the commit now.
		if len(sb.recs) > 0 && len(sb.acks) == 0 && !sb.stop && len(sb.recs) < walPendingCap {
			sb.mu.Unlock()
			time.Sleep(walCoalesceDelay)
			sb.mu.Lock()
		}
		local, sb.recs = sb.recs, local[:0]
		acks := sb.acks
		sb.acks = nil
		stop := sb.stop
		sb.space.Broadcast()
		sb.mu.Unlock()
		if len(local) > 0 && !w.down.Load() {
			out = out[:0]
			var err error
			for _, rec := range local {
				if out, err = appendWALRecordJSON(out, rec, &memo); err != nil {
					w.fail(err)
					break
				}
			}
			if err == nil && len(out) > 0 {
				if err := seg.AppendRaw(out); err != nil {
					w.fail(err)
				}
			}
		}
		for _, ack := range acks {
			close(ack)
		}
		if stop {
			return
		}
	}
}

// Flush blocks until every record appended before the call has been handed
// to the OS, and returns the sticky append error, if any. It is the
// durability barrier of the asynchronous mode (a no-op barrier with
// WithSync, where appends are already synchronous).
func (w *ShardedWAL) Flush() error {
	if w.bufs != nil {
		acks := make([]chan struct{}, len(w.bufs))
		for i := range w.bufs {
			acks[i] = w.barrier(i)
		}
		for _, ack := range acks {
			<-ack
		}
	}
	return w.Err()
}

// barrier registers a flush barrier on shard's buffer and returns the
// channel closed once everything currently buffered is committed.
func (w *ShardedWAL) barrier(shard int) chan struct{} {
	sb := &w.bufs[shard]
	ack := make(chan struct{})
	sb.mu.Lock()
	if sb.stop {
		// Writer is gone (or going): nothing further will commit.
		close(ack)
	} else {
		sb.acks = append(sb.acks, ack)
		sb.data.Signal()
	}
	sb.mu.Unlock()
	return ack
}

// flushShard is Flush for a single shard's buffer.
func (w *ShardedWAL) flushShard(shard int) error {
	if w.bufs != nil {
		<-w.barrier(shard)
	}
	return w.Err()
}

// Err returns the sticky error of the first failed append, or nil while
// the WAL is healthy. After a non-nil return the WAL has stopped logging
// and recovery will replay only the state up to the failure.
func (w *ShardedWAL) Err() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

// fail records the first append error and stops further logging. Stopping
// entirely rather than writing past a gap keeps every segment a clean
// prefix of its shard's history: a prefix recovers to a correct (if stale)
// state, while a log with a hole could resurrect a removed record.
func (w *ShardedWAL) fail(err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
	w.down.Store(true)
}

// ReplayShard streams shard's records oldest first, with FileWAL.Replay's
// recovery guarantees (torn tail tolerated, mid-file corruption surfaced
// with its offset).
func (w *ShardedWAL) ReplayShard(shard int, fn func(WALRecord) error) error {
	return w.segs[shard].Replay(fn)
}

// AppendedSince reports how many sightings and removals were logged to
// shard's segment since its last compaction (a batch counts its length) —
// the grow signal for compaction policies, commensurable with a live-set
// size.
func (w *ShardedWAL) AppendedSince(shard int) int64 {
	return w.appended[shard].Load()
}

// CompactShard atomically rewrites shard's segment to one batch record
// holding exactly the live sightings, after draining the shard's append
// buffer (a buffered pre-snapshot record written after the snapshot would
// un-supersede it on replay). The caller must guarantee no concurrent
// appends to the same shard for the whole call (the store holds the shard
// lock); in asynchronous mode the BeginCompact/FinishCompact pair lets the
// disk work happen outside that lock instead.
func (w *ShardedWAL) CompactShard(shard int, live []core.Sighting) error {
	if err := w.flushShard(shard); err != nil {
		return err
	}
	return w.rewriteSegment(shard, live)
}

// Asynchronous reports whether appends run through per-shard writer
// goroutines (the default) rather than synchronously (WithSync).
func (w *ShardedWAL) Asynchronous() bool { return w.bufs != nil }

// BeginCompact prepares shard for a low-stall compaction (asynchronous
// mode only): it drains the shard's pending records to the current segment
// and pauses the shard's writer, so a live-set snapshot the caller takes
// before releasing the store's shard lock is consistent with the segment.
// Appends keep flowing into the in-memory buffer while the caller rewrites
// the segment with FinishCompact — they land after the snapshot in the new
// segment, which is exactly the replay order that reproduces the store.
// The caller must hold the store's shard lock across BeginCompact and the
// snapshot, and must call FinishCompact exactly once afterwards.
func (w *ShardedWAL) BeginCompact(shard int) error {
	if err := w.flushShard(shard); err != nil {
		return err
	}
	sb := &w.bufs[shard]
	sb.mu.Lock()
	sb.compacting = true
	sb.mu.Unlock()
	return nil
}

// FinishCompact rewrites shard's segment to exactly live and resumes the
// shard's writer, which then drains whatever accumulated during the
// rewrite into the new segment. Called without the store's shard lock.
func (w *ShardedWAL) FinishCompact(shard int, live []core.Sighting) error {
	err := w.rewriteSegment(shard, live)
	sb := &w.bufs[shard]
	sb.mu.Lock()
	sb.compacting = false
	sb.data.Signal()
	sb.mu.Unlock()
	return err
}

// rewriteSegment replaces shard's segment contents with one live-set batch
// record and resets the growth counter.
func (w *ShardedWAL) rewriteSegment(shard int, live []core.Sighting) error {
	var recs []WALRecord
	if len(live) > 0 {
		recs = []WALRecord{{Op: WALSightingBatch, Sightings: live}}
	}
	if err := w.segs[shard].CompactRecords(recs); err != nil {
		return err
	}
	w.appended[shard].Store(0)
	return nil
}

// Close drains the append buffers, stops the writers and closes every
// segment. It is idempotent. The caller should have stopped appending (as
// with FileWAL.Close); an append racing Close is dropped — the stop flag
// under each shard's mutex keeps it a clean drop, never a reorder or a
// race — and appends after Close park on the stopped buffer without
// touching the closed segments.
func (w *ShardedWAL) Close() error {
	w.closeOnce.Do(func() {
		if w.bufs != nil {
			for i := range w.bufs {
				sb := &w.bufs[i]
				sb.mu.Lock()
				sb.stop = true
				sb.data.Signal()
				sb.space.Broadcast()
				sb.mu.Unlock()
			}
			w.wg.Wait()
		}
		errs := []error{w.Err()}
		for _, seg := range w.segs {
			if seg != nil {
				if err := seg.Close(); err != nil {
					errs = append(errs, err)
				}
			}
		}
		w.closeErr = errors.Join(errs...)
	})
	return w.closeErr
}
