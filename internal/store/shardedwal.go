package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/spatial"
)

// ShardedWAL persists a sharded sighting store through one FileWAL segment
// per shard, so crash recovery can replay every shard concurrently instead
// of scanning one serial log. Records are routed by the same id-hash shard
// mapping the store uses, which gives each segment a total order consistent
// with its shard's lock: all of one object's records live in exactly one
// segment, in application order.
//
// The append unit is the group-commit batch of the update pipeline: one
// WALSightingBatch record per PutBatch shard group, so the marshal and
// flush cost of durability is amortized over the batch exactly as the
// combining lane amortizes lock cost.
//
// # Epochs
//
// The segment layout is epoch-stamped so it can follow the store through a
// live Resize. Epoch 0 is the layout a directory starts with (segments
// named shard-NNNN.wal, no in-file marker, for compatibility with logs
// written before epochs existed); every resize moves the log to the next
// epoch: each new shard's segment is created atomically as an epoch header
// record (WALEpoch, carrying the epoch number and the new shard count)
// followed by one snapshot batch of the shard's live set, written while
// the store briefly quiesces that shard (SwitchShard). Once every shard of
// the new epoch has switched, the old epoch's files are deleted
// (FinishEpoch).
//
// The epoch invariant recovery relies on: a valid epoch-e segment for
// shard j begins with a full live-set snapshot of every object hashing to
// j under epoch e's mapping, so the existence of that segment makes every
// older-epoch record for those objects obsolete. OpenShardedWAL uses it to
// replay across an epoch boundary left by a crash mid-resize: shards of
// the newest epoch that have segments replay them alone; shards that never
// switched recover their objects by folding all older-epoch segments and
// filtering by the new mapping, and the fold is then materialized as the
// missing epoch segments so the directory is single-epoch again before the
// store attaches.
//
// # Append modes
//
// By default appends are asynchronous: AppendBatch/AppendRemove enqueue
// the record on the shard's pending list (the caller holds the shard lock,
// so list order is commit order — the update path pays one batch copy and
// a slice append) and a per-segment writer goroutine swaps the list out,
// encodes it, and commits the whole drain with a single write+flush. The
// writer waits a short coalescing window (walCoalesceDelay) before each
// swap, so even a trickle of updates amortizes the encode setup and the
// syscall across a group — the group-commit idea applied once more, at the
// disk boundary. This gives bounded-lag durability: at any kill point each
// segment holds a consistent prefix of its shard's history, at most the
// pending cap plus one coalescing window behind; Flush is the barrier that
// waits for everything already appended to reach the OS. With WithSync
// appends become synchronous with an fsync per record — full machine-crash
// durability on the update path.
//
// A failed append or encode marks the WAL down: logging stops (keeping
// every segment a clean prefix rather than writing past a gap) and the
// sticky error is reported by Err, Flush and Close.
type ShardedWAL struct {
	dir  string
	sync bool
	opts []FileWALOption

	// genMu guards the generation pointers and the transition state. The
	// append path holds the read lock across routing and enqueue, so a
	// shard switch (write lock) is ordered against every in-flight
	// append.
	genMu sync.RWMutex
	cur   *walGen
	// next and switched are non-nil only between StartEpoch and
	// FinishEpoch: next is the layout being switched to, switched[j]
	// marks the new shards whose segment already exists and receives
	// their appends.
	next     *walGen
	switched []bool

	down  atomic.Bool
	errMu sync.Mutex
	err   error // first append failure, sticky

	// tee, when set, observes every committed sighting record in per-shard
	// commit order (see SetReplTee).
	tee atomic.Pointer[replTeeBox]

	closeOnce sync.Once
	closeErr  error
}

// ReplTee observes committed sighting-WAL records. The asynchronous mode
// calls it from each shard's writer goroutine immediately after the
// records reach the OS, so a teed record is always also durable locally;
// the synchronous mode calls it inline under the store's shard lock.
// Either way calls for one shard arrive in that shard's commit order.
//
// Implementations must not block (the writer goroutine, and in WithSync
// mode the update path, stalls behind them) and must copy the TeePut
// batch before returning — the slice is recycled.
type ReplTee interface {
	// TeePut observes one committed put batch.
	TeePut(shard int, batch []core.Sighting)
	// TeeRemove observes one committed removal.
	TeeRemove(shard int, id core.OID)
	// TeeMark observes a marker enqueued by Mark, at its exact position
	// in the shard's commit order. Markers carry no state and are never
	// written to disk; replication snapshots use them to pin where in the
	// stream a snapshot was taken.
	TeeMark(shard int, token uint64)
}

// replTeeBox wraps the tee for atomic.Pointer storage.
type replTeeBox struct{ t ReplTee }

// SetReplTee installs (or, with nil, removes) the replication tee.
func (w *ShardedWAL) SetReplTee(t ReplTee) {
	if t == nil {
		w.tee.Store(nil)
		return
	}
	w.tee.Store(&replTeeBox{t: t})
}

// replTee returns the installed tee, or nil.
func (w *ShardedWAL) replTee() ReplTee {
	if b := w.tee.Load(); b != nil {
		return b.t
	}
	return nil
}

// walReplMark is the in-memory-only record op of a replication marker. It
// flows through the shard's append buffer for ordering but is never
// encoded to the segment file, so replay never sees it.
const walReplMark WALOp = "replmark"

// Mark enqueues a replication marker on shard's stream. The caller must
// hold the store lock of the shard (like any append), which is what makes
// the marker's position in the commit order meaningful: every record
// appended before it under that lock is teed before it.
func (w *ShardedWAL) Mark(shard int, token uint64) error {
	if w.down.Load() {
		return w.Err()
	}
	w.genMu.RLock()
	g := w.cur
	w.genMu.RUnlock()
	if g.bufs == nil {
		if tee := w.replTee(); tee != nil {
			tee.TeeMark(shard, token)
		}
		return nil
	}
	sb := &g.bufs[shard]
	sb.mu.Lock()
	sb.waitSpace()
	sb.push(WALRecord{Op: walReplMark, Epoch: int64(token)})
	sb.mu.Unlock()
	return nil
}

// walGen is one epoch of the segment layout.
type walGen struct {
	epoch int64
	count int
	segs  []*FileWAL
	bufs  []walShardBuf // nil in synchronous (WithSync) mode

	// appended counts records logged per shard since that segment's last
	// compaction, feeding the store's grow-triggered compaction policy.
	appended []atomic.Int64

	wg sync.WaitGroup // writer goroutines of this generation
}

// walShardBuf is one shard's pending append list, double-buffered with its
// writer goroutine.
type walShardBuf struct {
	mu    sync.Mutex
	data  *sync.Cond // signals the writer: records or acks pending
	space *sync.Cond // signals producers: list drained below the cap
	recs  []WALRecord
	acks  []chan struct{} // flush barriers to close after the next commit
	stop  bool
	// compacting pauses the writer between BeginCompact and
	// FinishCompact: records keep accumulating here but none may reach
	// the old segment, or the rename would discard them.
	compacting bool
	// free recycles the copied batch slices between writer and producers
	// (both already hold mu), keeping the append path allocation-free in
	// the steady state — garbage here would turn into GC scan pressure on
	// the store's large pointer-rich heap.
	free [][]core.Sighting
}

// initCond lazily wires the buffer's condition variables.
func (sb *walShardBuf) initCond() {
	sb.data = sync.NewCond(&sb.mu)
	sb.space = sync.NewCond(&sb.mu)
}

// waitSpace blocks until the pending list is below the cap (or shutdown).
// Caller holds sb.mu.
func (sb *walShardBuf) waitSpace() {
	for len(sb.recs) >= walPendingCap && !sb.stop {
		sb.space.Wait()
	}
}

// push adds rec to the pending list, waking the writer on the empty→
// nonempty edge. Caller holds sb.mu after waitSpace.
func (sb *walShardBuf) push(rec WALRecord) {
	sb.recs = append(sb.recs, rec)
	if len(sb.recs) == 1 {
		sb.data.Signal()
	}
}

// takeBatchBuf pops a recycled batch slice. Caller holds sb.mu.
func (sb *walShardBuf) takeBatchBuf() []core.Sighting {
	if n := len(sb.free); n > 0 {
		buf := sb.free[n-1]
		sb.free[n-1] = nil
		sb.free = sb.free[:n-1]
		return buf
	}
	return nil
}

// walPendingCap bounds a shard's pending record list; producers blocking
// on it are the backpressure when the disk falls behind. It also bounds
// what a kill can lose in the asynchronous mode.
const walPendingCap = 4096

// walCoalesceDelay is how long a writer lingers after the first pending
// record before committing, letting a commit group form. It bounds the
// extra durability lag and the latency of a Flush barrier.
const walCoalesceDelay = time.Millisecond

// walCompactSlack is how far a segment's logged history may exceed its
// live set before compaction triggers — shared by the janitor's
// grow-triggered pass (CompactWALIfGrown) and the post-recovery
// auto-compaction, so both fire at the same point.
const walCompactSlack = 1024

// segmentPath names shard i's log inside dir at epoch e. Epoch 0 keeps the
// pre-epoch naming so existing directories open unchanged.
func segmentPath(dir string, i int, epoch int64) string {
	if epoch == 0 {
		return filepath.Join(dir, fmt.Sprintf("shard-%04d.wal", i))
	}
	return filepath.Join(dir, fmt.Sprintf("shard-%04d-e%06d.wal", i, epoch))
}

// parseSegmentName inverts segmentPath for directory scans.
func parseSegmentName(name string) (shard int, epoch int64, ok bool) {
	var i int
	var e int64
	if n, err := fmt.Sscanf(name, "shard-%d-e%d.wal", &i, &e); n == 2 && err == nil && name == fmt.Sprintf("shard-%04d-e%06d.wal", i, e) {
		return i, e, true
	}
	if n, err := fmt.Sscanf(name, "shard-%d.wal", &i); n == 1 && err == nil && name == fmt.Sprintf("shard-%04d.wal", i) {
		return i, 0, true
	}
	return 0, 0, false
}

// OpenShardedWAL opens (creating if needed) a sharded sighting log under
// dir. For a fresh directory, shards fixes the initial segment count
// (normalized through NormalizeShards: negative is an error, zero means
// one). A directory that already holds history opens at the count of its
// newest epoch — the persistent log, not the flag, remembers the layout a
// resize moved to — and a transition a crash left half-finished is folded
// forward first (see the type comment). Passing WithSync selects the
// synchronous fsync-per-append mode; otherwise appends are asynchronous.
func OpenShardedWAL(dir string, shards int, opts ...FileWALOption) (*ShardedWAL, error) {
	shards, err := NormalizeShards(shards)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating sighting WAL dir %s: %w", dir, err)
	}
	var probe FileWAL
	for _, opt := range opts {
		opt(&probe)
	}
	w := &ShardedWAL{dir: dir, sync: probe.sync, opts: opts}

	count, epoch, err := w.settleLayout(shards)
	if err != nil {
		return nil, err
	}
	g := &walGen{epoch: epoch, count: count, segs: make([]*FileWAL, count), appended: make([]atomic.Int64, count)}
	for i := range g.segs {
		seg, err := OpenFileWAL(segmentPath(dir, i, epoch), opts...)
		if err != nil {
			w.cur = g
			w.Close()
			return nil, err
		}
		g.segs[i] = seg
	}
	if !w.sync {
		g.bufs = make([]walShardBuf, count)
		for i := range g.bufs {
			g.bufs[i].initCond()
			g.wg.Add(1)
			go w.writer(g, i)
		}
	}
	w.cur = g
	return w, nil
}

// settleLayout scans dir, folds any half-finished epoch transition forward
// and returns the (count, epoch) the WAL operates at. After it returns the
// directory is single-epoch: every shard of the returned epoch has a
// segment file and no older-epoch files remain.
func (w *ShardedWAL) settleLayout(requested int) (count int, epoch int64, err error) {
	files, err := os.ReadDir(w.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("store: scanning sighting WAL dir %s: %w", w.dir, err)
	}
	byEpoch := make(map[int64]map[int]string)
	for _, f := range files {
		if f.IsDir() {
			continue
		}
		shard, e, ok := parseSegmentName(f.Name())
		if !ok {
			// Sweep temporaries a crashed rewrite left behind; they were
			// never renamed into place, so they carry no authority, and
			// nothing else owns the directory while it is being opened.
			if matched, _ := filepath.Match(walTempGlob, f.Name()); matched {
				os.Remove(filepath.Join(w.dir, f.Name()))
			}
			continue
		}
		if byEpoch[e] == nil {
			byEpoch[e] = make(map[int]string)
		}
		byEpoch[e][shard] = filepath.Join(w.dir, f.Name())
	}
	// Validate epoch-stamped segments: a valid one starts with a matching
	// header record. Anything else (an empty or truncated file a crashed
	// SwitchShard left before its snapshot rename committed) is discarded
	// — it never carried authority.
	counts := make(map[int64]int)
	for e, segs := range byEpoch {
		if e == 0 {
			continue
		}
		var ecount int
		for shard, path := range segs {
			hdr, invalid, herr := readEpochHeader(path)
			if herr != nil {
				// An I/O failure says nothing about the segment's
				// content; discarding it here would silently replace the
				// shard's data with a fold of absent older epochs. Fail
				// the open instead and let the operator retry.
				return 0, 0, herr
			}
			if invalid || hdr.Epoch != e || hdr.ShardCount <= 0 || shard >= hdr.ShardCount {
				// Structurally not an epoch segment: the leftover of a
				// SwitchShard that crashed before its atomic rename
				// committed a complete snapshot. It never carried
				// authority.
				os.Remove(path)
				delete(segs, shard)
				continue
			}
			if ecount == 0 {
				ecount = hdr.ShardCount
			} else if ecount != hdr.ShardCount {
				return 0, 0, fmt.Errorf("store: sighting WAL %s epoch %d segments disagree on shard count (%d vs %d)",
					w.dir, e, ecount, hdr.ShardCount)
			}
		}
		if len(segs) == 0 {
			delete(byEpoch, e)
			continue
		}
		counts[e] = ecount
	}
	// Epoch 0's count is the contiguous run of base segment files.
	if segs := byEpoch[0]; len(segs) > 0 {
		n := 0
		for ; segs[n] != ""; n++ {
		}
		for shard, path := range segs {
			if shard >= n {
				// A gap precedes this file: it cannot be part of the
				// epoch-0 layout (the layout writes 0..n-1). Stale.
				os.Remove(path)
				delete(segs, shard)
			}
		}
		if n == 0 {
			delete(byEpoch, 0)
		} else {
			counts[0] = n
		}
	}
	if len(byEpoch) == 0 {
		return requested, 0, nil
	}
	maxEpoch := int64(-1)
	for e := range byEpoch {
		if e > maxEpoch {
			maxEpoch = e
		}
	}
	count = counts[maxEpoch]
	if maxEpoch == 0 {
		// No epoch boundary on disk. Nonempty segments pin the count; a
		// directory of all-empty segments (a crashed first open, an idle
		// run) adopts the requested count instead.
		nonempty := false
		for _, path := range byEpoch[0] {
			if st, serr := os.Stat(path); serr == nil && st.Size() > 0 {
				nonempty = true
				break
			}
		}
		if !nonempty && count != requested {
			for i := requested; i < count; i++ {
				if rerr := os.Remove(segmentPath(w.dir, i, 0)); rerr != nil {
					return 0, 0, fmt.Errorf("store: clearing stale empty segment: %w", rerr)
				}
			}
			return requested, 0, nil
		}
		return count, 0, nil
	}
	// A resize moved the log past epoch 0. Finish any transition a crash
	// interrupted: shards of the newest epoch that never switched recover
	// their objects from the fold of every older epoch, filtered by the
	// new mapping, and the result is written as their missing snapshot
	// segments.
	missing := make([]int, 0)
	for j := 0; j < count; j++ {
		if _, ok := byEpoch[maxEpoch][j]; !ok {
			missing = append(missing, j)
		}
	}
	if len(missing) > 0 {
		live, ferr := foldEpochs(byEpoch, counts, maxEpoch)
		if ferr != nil {
			return 0, 0, ferr
		}
		missingSet := make(map[int]bool, len(missing))
		for _, j := range missing {
			missingSet[j] = true
		}
		perShard := make(map[int][]core.Sighting, len(missing))
		for id, s := range live {
			if j := spatial.ShardFor(id, count); missingSet[j] {
				perShard[j] = append(perShard[j], s)
			}
		}
		for _, j := range missing {
			if cerr := writeEpochSegment(w.dir, j, maxEpoch, count, perShard[j], w.sync); cerr != nil {
				return 0, 0, cerr
			}
		}
	}
	// The newest epoch is now complete; older files carry no authority.
	for e, segs := range byEpoch {
		if e == maxEpoch {
			continue
		}
		for _, path := range segs {
			os.Remove(path)
		}
	}
	return count, maxEpoch, nil
}

// foldEpochs replays every epoch older than top in ascending order into a
// single per-object live map, honoring the epoch invariant: an epoch-e
// segment for shard j supersedes all earlier state of the objects hashing
// to j under epoch e's mapping (its head snapshot is their complete live
// set), so those keys are cleared before the segment replays.
func foldEpochs(byEpoch map[int64]map[int]string, counts map[int64]int, top int64) (map[core.OID]core.Sighting, error) {
	epochs := make([]int64, 0, len(byEpoch))
	for e := range byEpoch {
		if e < top {
			epochs = append(epochs, e)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	live := make(map[core.OID]core.Sighting)
	for _, e := range epochs {
		count := counts[e]
		shards := make([]int, 0, len(byEpoch[e]))
		for j := range byEpoch[e] {
			shards = append(shards, j)
		}
		sort.Ints(shards)
		for _, j := range shards {
			if e > 0 {
				for id := range live {
					if spatial.ShardFor(id, count) == j {
						delete(live, id)
					}
				}
			}
			if err := replaySegmentFile(byEpoch[e][j], func(rec WALRecord) error {
				switch rec.Op {
				case WALSightingBatch:
					for _, s := range rec.Sightings {
						live[s.OID] = s
					}
				case WALSightingRemove:
					delete(live, rec.OID)
				case WALEpoch:
					// layout marker, no state
				default:
					return fmt.Errorf("store: unexpected WAL op %q folding sighting segment %s", rec.Op, byEpoch[e][j])
				}
				return nil
			}); err != nil {
				return nil, fmt.Errorf("store: folding sighting WAL epoch %d shard %d: %w", e, j, err)
			}
		}
	}
	return live, nil
}

// replaySegmentFile replays one segment without keeping it open.
func replaySegmentFile(path string, fn func(WALRecord) error) error {
	seg, err := OpenFileWAL(path)
	if err != nil {
		return err
	}
	defer seg.Close()
	return seg.Replay(fn)
}

// readEpochHeader reads the first record of an epoch segment. invalid
// reports content that is structurally not an epoch segment (empty file,
// unparseable or non-epoch first record — what a crashed switch leaves);
// err reports I/O failures, which say nothing about the content and must
// not be treated as invalidity.
func readEpochHeader(path string) (rec WALRecord, invalid bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return WALRecord{}, false, fmt.Errorf("store: opening epoch segment %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 4096)
	line, rerr := r.ReadBytes('\n')
	if rerr != nil && rerr != io.EOF {
		return WALRecord{}, false, fmt.Errorf("store: reading epoch header of %s: %w", path, rerr)
	}
	if len(bytes.TrimSpace(line)) == 0 {
		return WALRecord{}, true, nil
	}
	if uerr := json.Unmarshal(bytes.TrimSuffix(line, []byte{'\n'}), &rec); uerr != nil {
		return WALRecord{}, true, nil
	}
	if rec.Op != WALEpoch {
		return WALRecord{}, true, nil
	}
	return rec, false, nil
}

// writeEpochSegment atomically creates shard j's segment for epoch e: the
// header record plus one snapshot batch of live, written to a temporary
// file, fsynced and renamed into place — so the segment either exists
// complete (and carries authority for its shard's objects) or not at all.
// It returns only after the rename committed; opening the segment for
// appending is the caller's business.
func writeEpochSegment(dir string, shard int, epoch int64, count int, live []core.Sighting, durable bool) error {
	f, err := createEpochSegment(dir, shard, epoch, count, live, durable)
	if err != nil {
		return err
	}
	return f.Close()
}

// createEpochSegment is writeEpochSegment returning the open FileWAL for
// the new segment, positioned for appends. The atomic write-temp/fsync/
// rename protocol is writeRecordsAtomic, shared with compaction.
func createEpochSegment(dir string, shard int, epoch int64, count int, live []core.Sighting, durable bool) (*FileWAL, error) {
	recs := []WALRecord{{Op: WALEpoch, Epoch: epoch, ShardCount: count}}
	if len(live) > 0 {
		recs = append(recs, WALRecord{Op: WALSightingBatch, Sightings: live})
	}
	path := segmentPath(dir, shard, epoch)
	f, err := writeRecordsAtomic(path, recs)
	if err != nil {
		return nil, err
	}
	// The directory entry was made durable by writeRecordsAtomic's
	// unconditional dir fsync, in every durability mode.
	return &FileWAL{path: path, f: f, w: bufio.NewWriter(f), sync: durable}, nil
}

// NumShards returns the number of log segments of the current epoch.
func (w *ShardedWAL) NumShards() int {
	w.genMu.RLock()
	defer w.genMu.RUnlock()
	return w.cur.count
}

// Epoch returns the current layout epoch, for diagnostics.
func (w *ShardedWAL) Epoch() int64 {
	w.genMu.RLock()
	defer w.genMu.RUnlock()
	return w.cur.epoch
}

// Dir returns the directory holding the segments, for diagnostics.
func (w *ShardedWAL) Dir() string { return w.dir }

// route picks the generation and segment for one object. Caller holds
// genMu (read) for the routing decision only; the decision stays valid
// after the read lock is released because every append runs under the
// store lock of the shard that owns the object, and that same store lock
// is what SwitchShard's caller holds to flip the shard's routing — so
// neither the switched flag this routing read nor the generation it chose
// can change until the append's store lock is released (and FinishEpoch,
// which retires the old generation's writers, cannot run before every
// shard has flipped). shard and count describe the caller's mapping
// context (its shard index and shard count); when they match the current
// layout the index is used as-is — the steady-state fast path, one
// integer compare — otherwise the segment is recomputed from the id,
// which is what keeps appends correctly routed while the store's
// in-memory migration runs ahead of the log's epoch switch.
func (w *ShardedWAL) route(id core.OID, shard, count int) (*walGen, int) {
	if w.next != nil {
		j := spatial.ShardFor(id, w.next.count)
		if w.switched[j] {
			return w.next, j
		}
		return w.cur, spatial.ShardFor(id, w.cur.count)
	}
	if count == w.cur.count {
		return w.cur, shard
	}
	return w.cur, spatial.ShardFor(id, w.cur.count)
}

// AppendBatch logs one group-commit batch of sighting puts — asynchronously
// in the default mode, durably before returning with WithSync. shard and
// count are the caller's routing context (see route). Later entries for
// the same object supersede earlier ones, matching SightingStore.PutBatch.
// The batch is copied; the caller may reuse the slice. After a failed
// append the WAL is down (see Err) and calls return the sticky error
// without logging.
func (w *ShardedWAL) AppendBatch(shard, count int, batch []core.Sighting) error {
	if w.down.Load() {
		return w.Err()
	}
	w.genMu.RLock()
	if w.next == nil && count == w.cur.count {
		g := w.cur
		w.genMu.RUnlock()
		return w.appendPutRecord(g, shard, batch, core.Sighting{}, false)
	}
	// Layouts straddle (an in-flight resize): split the group by the
	// log's own mapping. Relative order per object is preserved.
	type dest struct {
		g   *walGen
		idx int
	}
	groups := make(map[dest][]core.Sighting)
	order := make([]dest, 0, 2)
	for _, s := range batch {
		g, idx := w.route(s.OID, -1, -1)
		d := dest{g, idx}
		if _, ok := groups[d]; !ok {
			order = append(order, d)
		}
		groups[d] = append(groups[d], s)
	}
	w.genMu.RUnlock()
	var first error
	for _, d := range order {
		if err := w.appendPutRecord(d.g, d.idx, groups[d], core.Sighting{}, false); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// AppendPut logs a single sighting put — the batch-of-one common case,
// spared the caller-side slice — with the same mode semantics as
// AppendBatch.
func (w *ShardedWAL) AppendPut(shard, count int, s core.Sighting) error {
	if w.down.Load() {
		return w.Err()
	}
	w.genMu.RLock()
	g, idx := w.route(s.OID, shard, count)
	w.genMu.RUnlock()
	return w.appendPutRecord(g, idx, nil, s, true)
}

// appendPutRecord commits one put record (batch, or the single sighting
// when one is true) to g's segment idx. Runs outside genMu — the routing
// decision is pinned by the caller's store shard lock (see route) — so
// blocking on the buffer's backpressure cannot stall a concurrent shard
// switch.
func (w *ShardedWAL) appendPutRecord(g *walGen, idx int, batch []core.Sighting, s core.Sighting, one bool) error {
	n := int64(len(batch))
	if one {
		n = 1
	}
	if g.bufs == nil {
		rec := WALRecord{Op: WALSightingBatch, Sightings: batch}
		if one {
			rec.Sightings = []core.Sighting{s}
		}
		if err := g.segs[idx].Append(rec); err != nil {
			w.fail(err)
			return err
		}
		g.appended[idx].Add(n)
		if tee := w.replTee(); tee != nil {
			tee.TeePut(idx, rec.Sightings)
		}
		return nil
	}
	sb := &g.bufs[idx]
	sb.mu.Lock()
	sb.waitSpace()
	cp := sb.takeBatchBuf()
	if one {
		cp = append(cp[:0], s)
	} else {
		cp = append(cp[:0], batch...)
	}
	sb.push(WALRecord{Op: WALSightingBatch, Sightings: cp})
	sb.mu.Unlock()
	g.appended[idx].Add(n)
	return nil
}

// AppendRemove logs the removal of id, with the same mode and routing
// semantics as AppendBatch.
func (w *ShardedWAL) AppendRemove(shard, count int, id core.OID) error {
	if w.down.Load() {
		return w.Err()
	}
	w.genMu.RLock()
	g, idx := w.route(id, shard, count)
	w.genMu.RUnlock()
	if g.bufs == nil {
		if err := g.segs[idx].Append(WALRecord{Op: WALSightingRemove, OID: id}); err != nil {
			w.fail(err)
			return err
		}
		g.appended[idx].Add(1)
		if tee := w.replTee(); tee != nil {
			tee.TeeRemove(idx, id)
		}
		return nil
	}
	sb := &g.bufs[idx]
	sb.mu.Lock()
	sb.waitSpace()
	sb.push(WALRecord{Op: WALSightingRemove, OID: id})
	sb.mu.Unlock()
	g.appended[idx].Add(1)
	return nil
}

// writer is one segment's commit goroutine: it lingers for the coalescing
// window once records are pending, swaps the shard's list out, encodes it
// (timestamps memoized across the drain — group-commit records cluster in
// time) and hands the whole drain to the segment as one write+flush.
func (w *ShardedWAL) writer(g *walGen, shard int) {
	defer g.wg.Done()
	sb := &g.bufs[shard]
	seg := g.segs[shard]
	var local []WALRecord
	var out []byte
	var memo walTimeMemo
	for {
		sb.mu.Lock()
		// Hand the previous drain's batch buffers back for reuse.
		for i := range local {
			if s := local[i].Sightings; s != nil && len(sb.free) < 64 {
				sb.free = append(sb.free, s[:0])
			}
			local[i].Sightings = nil
		}
		for sb.compacting || (len(sb.recs) == 0 && len(sb.acks) == 0 && !sb.stop) {
			sb.data.Wait()
		}
		// Linger so a commit group can form — unless a barrier, shutdown
		// or backpressure wants the commit now.
		if len(sb.recs) > 0 && len(sb.acks) == 0 && !sb.stop && len(sb.recs) < walPendingCap {
			sb.mu.Unlock()
			time.Sleep(walCoalesceDelay)
			sb.mu.Lock()
		}
		local, sb.recs = sb.recs, local[:0]
		acks := sb.acks
		sb.acks = nil
		stop := sb.stop
		sb.space.Broadcast()
		sb.mu.Unlock()
		if len(local) > 0 && !w.down.Load() {
			out = out[:0]
			var err error
			for _, rec := range local {
				if rec.Op == walReplMark {
					continue // in-memory only: teed below, never encoded
				}
				if out, err = appendWALRecordJSON(out, rec, &memo); err != nil {
					w.fail(err)
					break
				}
			}
			if err == nil && len(out) > 0 {
				if err = seg.AppendRaw(out); err != nil {
					w.fail(err)
				}
			}
			// Tee the drain in commit order now that it is durable. The tee
			// must copy TeePut batches: local's Sightings slices are recycled
			// into sb.free at the top of the next iteration.
			if tee := w.replTee(); err == nil && tee != nil {
				for _, rec := range local {
					switch rec.Op {
					case WALSightingBatch:
						tee.TeePut(shard, rec.Sightings)
					case WALSightingRemove:
						tee.TeeRemove(shard, rec.OID)
					case walReplMark:
						tee.TeeMark(shard, uint64(rec.Epoch))
					}
				}
			}
		}
		for _, ack := range acks {
			close(ack)
		}
		if stop {
			return
		}
	}
}

// StartEpoch opens an epoch transition to newCount shards. No segment
// exists yet and no append routes to the new layout until its shard is
// switched; the store calls SwitchShard once per new shard (under that
// shard's lock) and FinishEpoch when all have switched. Only one
// transition can be in flight.
func (w *ShardedWAL) StartEpoch(newCount int) error {
	newCount, err := NormalizeShards(newCount)
	if err != nil {
		return err
	}
	if w.down.Load() {
		return w.Err()
	}
	w.genMu.Lock()
	defer w.genMu.Unlock()
	if w.next != nil {
		return fmt.Errorf("store: sighting WAL epoch transition already in flight")
	}
	ng := &walGen{
		epoch:    w.cur.epoch + 1,
		count:    newCount,
		segs:     make([]*FileWAL, newCount),
		appended: make([]atomic.Int64, newCount),
	}
	if !w.sync {
		ng.bufs = make([]walShardBuf, newCount)
	}
	w.next = ng
	w.switched = make([]bool, newCount)
	return nil
}

// SwitchShard moves one shard of the pending epoch onto its new segment:
// the segment is created atomically as epoch header + live-set snapshot,
// and from the moment SwitchShard returns, appends for objects hashing to
// shard under the new mapping land in it. The caller must hold the store
// lock that quiesces exactly those objects for the duration of the call —
// that lock is what makes the snapshot complete (nothing newer exists) and
// the routing flip race-free. Pre-snapshot records for these objects in
// older segments lose authority to the snapshot, per the epoch invariant.
//
// SwitchShard performs the segment write (including an fsync) inline, so
// the caller's shard stays quiesced for the disk work — the right trade
// in the synchronous (WithSync) mode, whose appends fsync under that lock
// anyway. The asynchronous mode uses the BeginSwitchShard/
// FinishSwitchShard pair instead, which moves the disk work off the lock.
func (w *ShardedWAL) SwitchShard(shard int, live []core.Sighting) error {
	if err := w.BeginSwitchShard(shard); err != nil {
		return err
	}
	return w.FinishSwitchShard(shard, live)
}

// BeginSwitchShard flips one shard of the pending epoch onto the new
// routing: from here on, appends for objects hashing to shard under the
// new mapping accumulate in the new generation's buffer (asynchronous
// mode) instead of reaching any old segment. The caller must hold the
// store lock quiescing those objects across BeginSwitchShard and the
// live-set snapshot it takes before releasing that lock, and must then
// call FinishSwitchShard with the snapshot. Between the two calls the
// records are buffered in memory only — the same bounded process-crash
// loss window every asynchronous append has; a crash in the window leaves
// no (valid) epoch segment for the shard, so recovery folds its objects
// from the older epochs, a consistent prefix.
func (w *ShardedWAL) BeginSwitchShard(shard int) error {
	if w.down.Load() {
		return w.Err()
	}
	w.genMu.Lock()
	defer w.genMu.Unlock()
	if w.next == nil {
		return fmt.Errorf("store: SwitchShard without StartEpoch")
	}
	if w.next.bufs != nil && w.next.bufs[shard].data == nil {
		w.next.bufs[shard].initCond()
	}
	w.switched[shard] = true
	return nil
}

// FinishSwitchShard writes the shard's epoch segment (header + the
// snapshot taken under the store lock, atomically via temp+rename) and
// starts the shard's writer, which then drains whatever buffered since
// BeginSwitchShard — landing after the snapshot, exactly the replay order
// that reproduces the store. Called without the store's shard lock: the
// segment write and its fsync stall no one.
func (w *ShardedWAL) FinishSwitchShard(shard int, live []core.Sighting) error {
	w.genMu.RLock()
	ng := w.next
	w.genMu.RUnlock()
	if ng == nil {
		return fmt.Errorf("store: FinishSwitchShard without StartEpoch")
	}
	seg, err := createEpochSegment(w.dir, shard, ng.epoch, ng.count, live, w.sync)
	if err != nil {
		w.fail(err)
		if ng.bufs != nil {
			// The shard's writer will never start: release anyone parked
			// on the buffer (producers at the cap, flush barriers) so the
			// sticky error surfaces instead of a hang.
			sb := &ng.bufs[shard]
			sb.mu.Lock()
			sb.stop = true
			for _, ack := range sb.acks {
				close(ack)
			}
			sb.acks = nil
			if sb.space != nil {
				sb.space.Broadcast()
			}
			sb.mu.Unlock()
		}
		return err
	}
	w.genMu.Lock()
	ng.segs[shard] = seg
	if ng.bufs != nil {
		ng.wg.Add(1)
		go w.writer(ng, shard)
	}
	w.genMu.Unlock()
	return nil
}

// FinishEpoch completes the transition: the new generation becomes
// current, the old generation's writers drain and stop, and its files are
// deleted (they carry no authority once every new shard has its snapshot
// segment — leftovers from a crash here are cleaned up by the next open).
func (w *ShardedWAL) FinishEpoch() {
	w.genMu.Lock()
	old := w.cur
	if w.next == nil {
		w.genMu.Unlock()
		return
	}
	for _, sw := range w.switched {
		if !sw {
			w.genMu.Unlock()
			// Unswitched shards keep routing to the old layout; finishing
			// now would strand their appends. The caller drives every
			// shard through SwitchShard first.
			return
		}
	}
	w.cur = w.next
	w.next = nil
	w.switched = nil
	w.genMu.Unlock()

	w.stopGen(old)
	for i, seg := range old.segs {
		if seg != nil {
			seg.Close()
		}
		os.Remove(segmentPath(w.dir, i, old.epoch))
	}
}

// stopGen drains and stops one generation's writer goroutines.
func (w *ShardedWAL) stopGen(g *walGen) {
	if g.bufs == nil {
		return
	}
	for i := range g.bufs {
		sb := &g.bufs[i]
		sb.mu.Lock()
		if sb.data != nil {
			sb.stop = true
			sb.data.Signal()
			sb.space.Broadcast()
		}
		sb.mu.Unlock()
	}
	g.wg.Wait()
}

// Flush blocks until every record appended before the call has been handed
// to the OS, and returns the sticky append error, if any. It is the
// durability barrier of the asynchronous mode (a no-op barrier with
// WithSync, where appends are already synchronous).
func (w *ShardedWAL) Flush() error {
	w.genMu.RLock()
	gens := []*walGen{w.cur}
	if w.next != nil {
		gens = append(gens, w.next)
	}
	var acks []chan struct{}
	for _, g := range gens {
		if g.bufs == nil {
			continue
		}
		for i := range g.bufs {
			if g.bufs[i].data == nil {
				continue // not yet switched
			}
			acks = append(acks, barrier(&g.bufs[i]))
		}
	}
	w.genMu.RUnlock()
	for _, ack := range acks {
		<-ack
	}
	return w.Err()
}

// barrier registers a flush barrier on a shard buffer and returns the
// channel closed once everything currently buffered is committed.
func barrier(sb *walShardBuf) chan struct{} {
	ack := make(chan struct{})
	sb.mu.Lock()
	if sb.stop {
		// Writer is gone (or going): nothing further will commit.
		close(ack)
	} else {
		sb.acks = append(sb.acks, ack)
		sb.data.Signal()
	}
	sb.mu.Unlock()
	return ack
}

// flushShard is Flush for a single current-epoch shard buffer.
func (w *ShardedWAL) flushShard(shard int) error {
	w.genMu.RLock()
	var ack chan struct{}
	if w.cur.bufs != nil {
		ack = barrier(&w.cur.bufs[shard])
	}
	w.genMu.RUnlock()
	if ack != nil {
		<-ack
	}
	return w.Err()
}

// Err returns the sticky error of the first failed append, or nil while
// the WAL is healthy. After a non-nil return the WAL has stopped logging
// and recovery will replay only the state up to the failure.
func (w *ShardedWAL) Err() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

// fail records the first append error and stops further logging. Stopping
// entirely rather than writing past a gap keeps every segment a clean
// prefix of its shard's history: a prefix recovers to a correct (if stale)
// state, while a log with a hole could resurrect a removed record.
func (w *ShardedWAL) fail(err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
	w.down.Store(true)
}

// ReplayShard streams shard's records oldest first, with FileWAL.Replay's
// recovery guarantees (torn tail tolerated, mid-file corruption surfaced
// with its offset). Epoch layout markers are consumed internally; callers
// see only state-bearing records.
func (w *ShardedWAL) ReplayShard(shard int, fn func(WALRecord) error) error {
	w.genMu.RLock()
	seg := w.cur.segs[shard]
	w.genMu.RUnlock()
	return seg.Replay(func(rec WALRecord) error {
		if rec.Op == WALEpoch {
			return nil
		}
		return fn(rec)
	})
}

// AppendedSince reports how many sightings and removals were logged to
// shard's segment since its last compaction (a batch counts its length) —
// the grow signal for compaction policies, commensurable with a live-set
// size.
func (w *ShardedWAL) AppendedSince(shard int) int64 {
	w.genMu.RLock()
	defer w.genMu.RUnlock()
	return w.cur.appended[shard].Load()
}

// CompactShard atomically rewrites shard's segment to one batch record
// holding exactly the live sightings, after draining the shard's append
// buffer (a buffered pre-snapshot record written after the snapshot would
// un-supersede it on replay). The caller must guarantee no concurrent
// appends to the same shard for the whole call (the store holds the shard
// lock) and no concurrent epoch transition (the store holds its resize
// lock); in asynchronous mode the BeginCompact/FinishCompact pair lets the
// disk work happen outside the shard lock instead.
func (w *ShardedWAL) CompactShard(shard int, live []core.Sighting) error {
	if err := w.flushShard(shard); err != nil {
		return err
	}
	return w.rewriteSegment(shard, live)
}

// Asynchronous reports whether appends run through per-shard writer
// goroutines (the default) rather than synchronously (WithSync).
func (w *ShardedWAL) Asynchronous() bool { return !w.sync }

// BeginCompact prepares shard for a low-stall compaction (asynchronous
// mode only): it drains the shard's pending records to the current segment
// and pauses the shard's writer, so a live-set snapshot the caller takes
// before releasing the store's shard lock is consistent with the segment.
// Appends keep flowing into the in-memory buffer while the caller rewrites
// the segment with FinishCompact — they land after the snapshot in the new
// segment, which is exactly the replay order that reproduces the store.
// The caller must hold the store's shard lock across BeginCompact and the
// snapshot, and must call FinishCompact exactly once afterwards.
func (w *ShardedWAL) BeginCompact(shard int) error {
	if err := w.flushShard(shard); err != nil {
		return err
	}
	w.genMu.RLock()
	sb := &w.cur.bufs[shard]
	w.genMu.RUnlock()
	sb.mu.Lock()
	sb.compacting = true
	sb.mu.Unlock()
	return nil
}

// FinishCompact rewrites shard's segment to exactly live and resumes the
// shard's writer, which then drains whatever accumulated during the
// rewrite into the new segment. Called without the store's shard lock.
func (w *ShardedWAL) FinishCompact(shard int, live []core.Sighting) error {
	err := w.rewriteSegment(shard, live)
	w.genMu.RLock()
	sb := &w.cur.bufs[shard]
	w.genMu.RUnlock()
	sb.mu.Lock()
	sb.compacting = false
	sb.data.Signal()
	sb.mu.Unlock()
	return err
}

// rewriteSegment replaces shard's segment contents with its epoch header
// (outside epoch 0, where no header exists) plus one live-set batch record,
// and resets the growth counter.
func (w *ShardedWAL) rewriteSegment(shard int, live []core.Sighting) error {
	return w.rewriteSegmentState(shard, live, nil)
}

// rewriteSegmentState is rewriteSegment plus trailing tombstone records —
// the rewrite a replicated snapshot install needs, where dropping the dead
// set would resurrect run-resident versions on the next crash.
func (w *ShardedWAL) rewriteSegmentState(shard int, live []core.Sighting, dead []core.OID) error {
	w.genMu.RLock()
	g := w.cur
	w.genMu.RUnlock()
	var recs []WALRecord
	if g.epoch > 0 {
		recs = append(recs, WALRecord{Op: WALEpoch, Epoch: g.epoch, ShardCount: g.count})
	}
	if len(live) > 0 {
		recs = append(recs, WALRecord{Op: WALSightingBatch, Sightings: live})
	}
	for _, id := range dead {
		recs = append(recs, WALRecord{Op: WALSightingRemove, OID: id})
	}
	if err := g.segs[shard].CompactRecords(recs); err != nil {
		return err
	}
	g.appended[shard].Store(0)
	return nil
}

// CompactShardState is CompactShard extended with a tombstone set: the
// rewritten segment replays to exactly (live, dead). The same concurrency
// contract as CompactShard applies.
func (w *ShardedWAL) CompactShardState(shard int, live []core.Sighting, dead []core.OID) error {
	if err := w.flushShard(shard); err != nil {
		return err
	}
	return w.rewriteSegmentState(shard, live, dead)
}

// Close drains the append buffers, stops the writers and closes every
// segment — of the current epoch and, if a transition is in flight, of the
// partially switched next epoch. It is idempotent. The caller should have
// stopped appending (as with FileWAL.Close); an append racing Close is
// dropped — the stop flag under each shard's mutex keeps it a clean drop,
// never a reorder or a race — and appends after Close park on the stopped
// buffer without touching the closed segments.
func (w *ShardedWAL) Close() error {
	w.closeOnce.Do(func() {
		w.genMu.Lock()
		gens := []*walGen{}
		if w.cur != nil {
			gens = append(gens, w.cur)
		}
		if w.next != nil {
			gens = append(gens, w.next)
		}
		w.genMu.Unlock()
		errs := []error{w.Err()}
		for _, g := range gens {
			w.stopGen(g)
			for _, seg := range g.segs {
				if seg != nil {
					if err := seg.Close(); err != nil {
						errs = append(errs, err)
					}
				}
			}
		}
		w.closeErr = errors.Join(errs...)
	})
	return w.closeErr
}
