// Write-ahead logging for the store package.
//
// # Log format
//
// A log is a sequence of JSON-encoded WALRecord lines ("JSON lines"), one
// record per '\n'-terminated line, appended in commit order. Two record
// families share the framing:
//
//   - visitor mutations — Op "put"/"remove" with the Visitor field set;
//     the VisitorDB appends one record per mutation (registration,
//     deregistration, handover — rare by design, Section 5 of the paper);
//   - sighting mutations — Op "sbatch" carrying a whole group-commit batch
//     of sightings in one record, and Op "sremove" carrying one removed
//     object id. These are appended by ShardedSightingDB through a
//     ShardedWAL, one log segment per shard; batch framing amortizes the
//     marshal and flush cost across the batch exactly as the update
//     pipeline's combining lane amortizes lock cost. Segments written
//     after a live resize start with an Op "epoch" layout marker (the
//     resize epoch and the shard count ids are hashed across from that
//     record on); see ShardedWAL for the epoch invariant recovery relies
//     on.
//
// # Durability modes
//
// FileWAL.Append flushes the userspace buffer to the OS, so a log survives
// a process crash or kill (the durability the paper's restart design
// needs). WithSync additionally fsyncs per append for machine-crash
// durability at the usual cost. ShardedWAL's default mode trades a bounded
// lag for update-path speed: appends are enqueued per shard and a writer
// goroutine commits queued records in order, so a kill can lose at most the
// last queue-depth records per shard while every segment stays a clean
// prefix of its shard's history; ShardedWAL.Flush is the barrier, and
// WithSync selects fully synchronous fsync-per-append operation instead.
//
// # Recovery guarantees
//
// Replay delivers the longest well-formed prefix of the log:
//
//   - a partial final line — the torn tail a crash mid-append leaves — is
//     ignored, and the store recovers to the state before that append;
//   - an unparseable record anywhere before the final line is corruption,
//     not a torn write: Replay stops and returns an error wrapping
//     ErrCorruptWAL that identifies the byte offset, rather than silently
//     dropping every record after it;
//   - record length is unbounded; replay is not capped at any line size.
//
// Compact rewrites a log to its live set via a temporary file in the same
// directory followed by an atomic rename. A crash (or any failure) before
// the rename leaves the original log untouched and the WAL usable; leftover
// ".wal-rewrite-*" temporaries are never read back, and OpenShardedWAL
// sweeps them from sharded-log directories.
//
// # Crash ordering
//
// Every atomic file swap in this package — segment compaction and
// epoch-segment creation here, run and manifest installation in the
// tiered store — follows the same four-step protocol, in this order:
// write the temporary, fsync the temporary, rename it over the final
// name, fsync the parent directory. The file fsync before the rename
// guarantees the named file can never be observed with partial content;
// the directory fsync after the rename is what makes the swap itself
// durable — POSIX does not order a rename's directory update against the
// renamed file's data, so rename-without-dir-fsync can lose the entry
// (or resurrect the old inode) on power failure even though the file's
// own fsync succeeded. Readers therefore trust any file they find under
// a final name, and every recovery invariant (a manifest's runs exist; a
// segment is a clean prefix) reduces to this ordering.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"locsvc/internal/core"
)

// WALOp is the kind of a write-ahead-log record.
type WALOp string

// WAL operations.
const (
	// WALPut and WALRemove are visitorDB mutations.
	WALPut    WALOp = "put"
	WALRemove WALOp = "remove"
	// WALSightingBatch carries one group-commit batch of sighting puts;
	// WALSightingRemove one sighting removal (deregistration, handover or
	// soft-state expiry).
	WALSightingBatch  WALOp = "sbatch"
	WALSightingRemove WALOp = "sremove"
	// WALEpoch is the layout marker heading every sighting segment written
	// at epoch > 0: it records the epoch number and the shard count of the
	// id→segment mapping the rest of the segment was written under, which
	// is what lets recovery replay across the epoch boundary a live resize
	// (or a crash mid-resize) leaves behind. It carries no object state.
	WALEpoch WALOp = "epoch"
)

// ErrCorruptWAL marks an unparseable record before the final line of a log:
// mid-file damage that replay must surface instead of treating as a torn
// tail. Errors wrapping it identify the byte offset of the bad record.
var ErrCorruptWAL = errors.New("store: corrupt WAL record")

// WALRecord is one logged mutation. Exactly one payload field is set,
// according to Op: Visitor for visitorDB records, Sightings for a sighting
// batch, OID for a sighting removal.
type WALRecord struct {
	Op      WALOp          `json:"op"`
	Visitor *VisitorRecord `json:"visitor,omitempty"`
	// Sightings is the batch payload of a WALSightingBatch record; later
	// entries for the same object supersede earlier ones, exactly as in
	// SightingStore.PutBatch.
	Sightings []core.Sighting `json:"sightings,omitempty"`
	// OID is the removed object of a WALSightingRemove record.
	OID core.OID `json:"oid,omitempty"`
	// Epoch and ShardCount describe the segment layout of a WALEpoch
	// record: the resize epoch and the number of shards ids are hashed
	// across from this record on.
	Epoch      int64 `json:"epoch,omitempty"`
	ShardCount int   `json:"shards,omitempty"`
}

// WAL is the persistence backend of a VisitorDB. Implementations must allow
// Replay before the first Append and tolerate Compact at any point.
type WAL interface {
	// Replay streams every logged record in order, oldest first.
	Replay(fn func(WALRecord) error) error
	// Append durably adds one record.
	Append(rec WALRecord) error
	// Compact atomically replaces the log with one Put per live record.
	Compact(live []VisitorRecord) error
	// Close releases resources.
	Close() error
}

// NullWAL is a no-op WAL for servers that do not need durable forwarding
// paths (benchmarks, simulations).
type NullWAL struct{}

var _ WAL = NullWAL{}

// Replay implements WAL.
func (NullWAL) Replay(func(WALRecord) error) error { return nil }

// Append implements WAL.
func (NullWAL) Append(WALRecord) error { return nil }

// Compact implements WAL.
func (NullWAL) Compact([]VisitorRecord) error { return nil }

// Close implements WAL.
func (NullWAL) Close() error { return nil }

// FileWAL is a JSON-lines append-only log on disk. It substitutes the
// paper's DB2 database: visitorDB changes are rare (registration,
// deregistration, handover only), so a simple synchronous log keeps
// forwarding paths durable at negligible cost. It also serves as the
// per-shard segment of a ShardedWAL, where batch framing keeps the sighting
// update path cheap.
type FileWAL struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer
	// Sync forces an fsync after every append. Off by default: the
	// paper's durability need is "survive process restart", and tests
	// exercise that; enable for machine-crash durability.
	sync bool
}

var _ WAL = (*FileWAL)(nil)

// FileWALOption customizes a FileWAL.
type FileWALOption func(*FileWAL)

// WithSync enables fsync-per-append.
func WithSync() FileWALOption {
	return func(w *FileWAL) { w.sync = true }
}

// OpenFileWAL opens (creating if needed) the log at path.
func OpenFileWAL(path string, opts ...FileWALOption) (*FileWAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL %s: %w", path, err)
	}
	w := &FileWAL{path: path, f: f, w: bufio.NewWriter(f)}
	for _, opt := range opts {
		opt(w)
	}
	if w.sync {
		// Make a just-created log's directory entry durable too; without
		// this a machine crash could forget the file while its records'
		// fsyncs succeeded.
		if err := syncDir(path); err != nil {
			f.Close()
			return nil, err
		}
	}
	return w, nil
}

// syncDir fsyncs the directory containing path, making a create or rename
// of that entry durable against machine crash.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("store: opening WAL directory: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing WAL directory: %w", err)
	}
	return nil
}

// Path returns the log's file path, for diagnostics.
func (w *FileWAL) Path() string { return w.path }

// Replay implements WAL. Only a partial final line — the torn tail a crash
// mid-append leaves behind — is tolerated: it is ignored AND truncated
// away, so later appends start a fresh line instead of gluing onto the
// fragment (which would read back as corruption on the next restart). An
// unterminated final line that parses whole is kept and its missing
// newline written. An unparseable record anywhere earlier is corruption
// and yields an error wrapping ErrCorruptWAL with the record's byte
// offset, after fn has received the intact prefix. Records of any length
// replay; there is no line-size cap.
func (w *FileWAL) Replay(fn func(WALRecord) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("store: flushing WAL before replay: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: seeking WAL: %w", err)
	}
	// Always leave the file positioned at the end for later appends,
	// whatever path returns.
	defer w.f.Seek(0, io.SeekEnd)
	r := bufio.NewReaderSize(w.f, 64*1024)
	var offset int64
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return fmt.Errorf("store: reading WAL at offset %d: %w", offset, rerr)
		}
		terminated := bytes.HasSuffix(line, []byte{'\n'})
		rec := bytes.TrimSuffix(line, []byte{'\n'})
		if len(rec) > 0 {
			var parsed WALRecord
			if uerr := json.Unmarshal(rec, &parsed); uerr != nil {
				if !terminated {
					// Partial final line: the torn tail of a crashed
					// append. Recover to the state before it, and cut the
					// fragment off so the next append starts cleanly.
					if terr := w.f.Truncate(offset); terr != nil {
						return fmt.Errorf("store: truncating torn WAL tail at offset %d: %w", offset, terr)
					}
					return nil
				}
				return fmt.Errorf("%w at offset %d of %s: %v", ErrCorruptWAL, offset, w.path, uerr)
			}
			if err := fn(parsed); err != nil {
				return err
			}
			if !terminated {
				// A whole record whose trailing newline the crash ate:
				// keep it and complete the framing so the next append
				// does not fuse with it.
				if _, werr := w.f.Seek(0, io.SeekEnd); werr != nil {
					return fmt.Errorf("store: seeking WAL end: %w", werr)
				}
				if _, werr := w.f.Write([]byte{'\n'}); werr != nil {
					return fmt.Errorf("store: terminating final WAL record: %w", werr)
				}
			}
		}
		offset += int64(len(line))
		if rerr == io.EOF {
			return nil
		}
	}
}

// Append implements WAL.
func (w *FileWAL) Append(rec WALRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(rec)
}

func (w *FileWAL) appendLocked(rec WALRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: marshaling WAL record: %w", err)
	}
	if _, err := w.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("store: writing WAL record: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("store: flushing WAL: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
	}
	return nil
}

// AppendRaw appends pre-encoded, newline-terminated records as a single
// write and flush — the commit path of ShardedWAL's asynchronous appender,
// which amortizes the syscall over a whole queue drain. The caller is
// responsible for the encoding being valid JSON lines (appendWALRecordJSON).
func (w *FileWAL) AppendRaw(data []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("store: writing WAL records: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("store: flushing WAL: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
	}
	return nil
}

// Compact implements WAL: it writes the live set to a temporary file and
// atomically renames it over the log. See CompactRecords for the failure
// contract.
func (w *FileWAL) Compact(live []VisitorRecord) error {
	recs := make([]WALRecord, len(live))
	for i := range live {
		recs[i] = WALRecord{Op: WALPut, Visitor: &live[i]}
	}
	return w.CompactRecords(recs)
}

// walTempPattern names the temporaries of every atomic segment rewrite
// (compaction and epoch-segment creation). They are never read back;
// OpenShardedWAL sweeps crash leftovers matching walTempGlob.
const (
	walTempPattern = ".wal-rewrite-*"
	walTempGlob    = ".wal-*"
)

// writeRecordsAtomic marshals recs as JSON lines into a temporary file
// beside path, flushes and fsyncs it, renames it over path, and fsyncs
// the parent directory — the one shared implementation of the
// write-temp/fsync/rename/dir-fsync protocol behind compaction and
// epoch-segment creation (see the crash-ordering note in the package
// comment). It returns the temporary's handle, which after the rename
// refers to path and is positioned at the end, ready for the caller to
// adopt for appends. Every failure path before the rename removes the
// temporary and leaves path untouched; a directory-fsync failure after
// the rename is reported, since the swap may not survive a machine
// crash.
func writeRecordsAtomic(path string, recs []WALRecord) (*os.File, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), walTempPattern)
	if err != nil {
		return nil, fmt.Errorf("store: creating segment rewrite file: %w", err)
	}
	abort := func(err error) (*os.File, error) {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	bw := bufio.NewWriter(tmp)
	for _, rec := range recs {
		data, err := json.Marshal(rec)
		if err != nil {
			return abort(fmt.Errorf("store: marshaling segment record: %w", err))
		}
		if _, err := bw.Write(append(data, '\n')); err != nil {
			return abort(fmt.Errorf("store: writing segment rewrite: %w", err))
		}
	}
	if err := bw.Flush(); err != nil {
		return abort(fmt.Errorf("store: flushing segment rewrite: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return abort(fmt.Errorf("store: syncing segment rewrite: %w", err))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return abort(fmt.Errorf("store: renaming rewritten segment: %w", err))
	}
	if err := syncDir(path); err != nil {
		// The rename committed in the live filesystem; only its durability
		// against machine crash is in doubt. Report rather than unwind.
		tmp.Close()
		return nil, err
	}
	return tmp, nil
}

// CompactRecords atomically replaces the log's contents with recs, in
// order (writeRecordsAtomic). The temporary's file handle becomes the new
// append handle, so no reopen can fail after the swap. Every failure path
// leaves the original log untouched, open and usable for further appends —
// a crash anywhere before the rename loses nothing but the compaction.
func (w *FileWAL) CompactRecords(recs []WALRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	tmp, err := writeRecordsAtomic(w.path, recs)
	if err != nil {
		return err
	}
	// The rename is the commit point: the temporary's handle now refers to
	// the log, so adopt it and retire the old handle. Errors past this
	// point cannot un-commit anything, so they are only reported.
	old := w.f
	w.f = tmp
	w.w = bufio.NewWriter(tmp)
	// The rename's own durability (directory fsync) was handled inside
	// writeRecordsAtomic, unconditionally: without it a machine crash could
	// revert the directory entry to the old inode and orphan every later
	// fsynced append.
	var firstErr error
	if err := old.Close(); err != nil {
		firstErr = fmt.Errorf("store: closing pre-compaction WAL handle: %w", err)
	}
	return firstErr
}

// Close implements WAL.
func (w *FileWAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("store: flushing WAL on close: %w", err)
	}
	return w.f.Close()
}
