package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// WALOp is the kind of a write-ahead-log record.
type WALOp string

// WAL operations.
const (
	WALPut    WALOp = "put"
	WALRemove WALOp = "remove"
)

// WALRecord is one logged visitorDB mutation.
type WALRecord struct {
	Op      WALOp         `json:"op"`
	Visitor VisitorRecord `json:"visitor"`
}

// WAL is the persistence backend of a VisitorDB. Implementations must allow
// Replay before the first Append and tolerate Compact at any point.
type WAL interface {
	// Replay streams every logged record in order, oldest first.
	Replay(fn func(WALRecord) error) error
	// Append durably adds one record.
	Append(rec WALRecord) error
	// Compact atomically replaces the log with one Put per live record.
	Compact(live []VisitorRecord) error
	// Close releases resources.
	Close() error
}

// NullWAL is a no-op WAL for servers that do not need durable forwarding
// paths (benchmarks, simulations).
type NullWAL struct{}

var _ WAL = NullWAL{}

// Replay implements WAL.
func (NullWAL) Replay(func(WALRecord) error) error { return nil }

// Append implements WAL.
func (NullWAL) Append(WALRecord) error { return nil }

// Compact implements WAL.
func (NullWAL) Compact([]VisitorRecord) error { return nil }

// Close implements WAL.
func (NullWAL) Close() error { return nil }

// FileWAL is a JSON-lines append-only log on disk. It substitutes the
// paper's DB2 database: visitorDB changes are rare (registration,
// deregistration, handover only), so a simple synchronous log keeps
// forwarding paths durable at negligible cost.
type FileWAL struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer
	// Sync forces an fsync after every append. Off by default: the
	// paper's durability need is "survive process restart", and tests
	// exercise that; enable for machine-crash durability.
	sync bool
}

var _ WAL = (*FileWAL)(nil)

// FileWALOption customizes a FileWAL.
type FileWALOption func(*FileWAL)

// WithSync enables fsync-per-append.
func WithSync() FileWALOption {
	return func(w *FileWAL) { w.sync = true }
}

// OpenFileWAL opens (creating if needed) the log at path.
func OpenFileWAL(path string, opts ...FileWALOption) (*FileWAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL %s: %w", path, err)
	}
	w := &FileWAL{path: path, f: f, w: bufio.NewWriter(f)}
	for _, opt := range opts {
		opt(w)
	}
	return w, nil
}

// Replay implements WAL. A trailing partial line (torn write from a crash)
// is ignored, matching standard WAL recovery semantics.
func (w *FileWAL) Replay(fn func(WALRecord) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: seeking WAL: %w", err)
	}
	sc := bufio.NewScanner(w.f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec WALRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail record: stop replaying.
			return nil
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: scanning WAL: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("store: seeking WAL end: %w", err)
	}
	return nil
}

// Append implements WAL.
func (w *FileWAL) Append(rec WALRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: marshaling WAL record: %w", err)
	}
	if _, err := w.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("store: writing WAL record: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("store: flushing WAL: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
	}
	return nil
}

// Compact implements WAL: it writes the live set to a temporary file and
// atomically renames it over the log.
func (w *FileWAL) Compact(live []VisitorRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	dir := filepath.Dir(w.path)
	tmp, err := os.CreateTemp(dir, ".wal-compact-*")
	if err != nil {
		return fmt.Errorf("store: creating compaction file: %w", err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	for _, rec := range live {
		data, err := json.Marshal(WALRecord{Op: WALPut, Visitor: rec})
		if err != nil {
			tmp.Close()
			return fmt.Errorf("store: marshaling compaction record: %w", err)
		}
		if _, err := bw.Write(append(data, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("store: writing compaction record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: flushing compaction file: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing compaction file: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing compaction file: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: closing old WAL: %w", err)
	}
	if err := os.Rename(tmp.Name(), w.path); err != nil {
		return fmt.Errorf("store: renaming compacted WAL: %w", err)
	}
	f, err := os.OpenFile(w.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening compacted WAL: %w", err)
	}
	w.f = f
	w.w = bufio.NewWriter(f)
	return nil
}

// Close implements WAL.
func (w *FileWAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("store: flushing WAL on close: %w", err)
	}
	return w.f.Close()
}
