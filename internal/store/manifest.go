package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// tierManifest is one shard's durable run list: which run files carry
// authority and in what order (newest first). It is the commit point of
// every flush and compaction — a run file exists authoritatively exactly
// when its shard's manifest lists it, so installing a new run set is one
// atomic manifest rename. Runs on disk that no manifest references are
// crash leftovers (a flush or compaction that died between run rename
// and manifest rename) and are swept when the store opens its tiers.
type tierManifest struct {
	Shard int `json:"shard"`
	// NextSeq is the next run sequence number to allocate, persisted so a
	// restart can never reuse the name of a listed run.
	NextSeq uint64 `json:"next_seq"`
	// Runs lists the shard's run file names, newest first.
	Runs []string `json:"runs"`
}

// manifestFileName names shard's manifest.
func manifestFileName(shard int) string {
	return fmt.Sprintf("shard-%04d.manifest", shard)
}

// parseManifestName inverts manifestFileName for directory sweeps.
func parseManifestName(name string) (shard int, ok bool) {
	var i int
	if n, err := fmt.Sscanf(name, "shard-%d.manifest", &i); n == 1 && err == nil && name == manifestFileName(i) {
		return i, true
	}
	return 0, false
}

// loadManifest reads shard's manifest from dir. A missing file is a fresh
// tier (empty manifest, found=false), never an error; any other failure —
// including unparseable content, which only a bug or disk corruption can
// produce, since manifests are installed by atomic rename — fails the
// open loudly rather than silently dropping runs.
func loadManifest(dir string, shard int) (m tierManifest, found bool, err error) {
	path := filepath.Join(dir, manifestFileName(shard))
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return tierManifest{Shard: shard}, false, nil
		}
		return tierManifest{}, false, fmt.Errorf("store: reading tier manifest %s: %w", path, rerr)
	}
	if jerr := json.Unmarshal(data, &m); jerr != nil {
		return tierManifest{}, false, fmt.Errorf("store: tier manifest %s corrupt: %w", path, jerr)
	}
	if m.Shard != shard {
		return tierManifest{}, false, fmt.Errorf("store: tier manifest %s claims shard %d", path, m.Shard)
	}
	return m, true, nil
}

// saveManifest atomically installs m: write-temp, fsync, rename over the
// manifest path, fsync the directory. The rename is the commit point of
// the flush or compaction that built m; the directory fsync makes the
// commit durable against machine crash (see the crash-ordering note in
// the WAL spec).
func saveManifest(dir string, m tierManifest) error {
	tmp, err := os.CreateTemp(dir, tierTempPattern)
	if err != nil {
		return fmt.Errorf("store: creating tier manifest temp: %w", err)
	}
	abort := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	data, err := json.Marshal(m)
	if err != nil {
		return abort(fmt.Errorf("store: marshaling tier manifest: %w", err))
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		return abort(fmt.Errorf("store: writing tier manifest: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return abort(fmt.Errorf("store: syncing tier manifest: %w", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: closing tier manifest temp: %w", err)
	}
	path := filepath.Join(dir, manifestFileName(m.Shard))
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: renaming tier manifest: %w", err)
	}
	return syncDir(path)
}

// sweepTierLeftovers removes, from a tier directory holding n shards'
// state, everything a crash can have left without authority: temporaries
// never renamed into place, and run files no manifest references.
// referenced maps run file name → true for every run listed by a loaded
// manifest. Manifests or runs naming a shard ≥ n mean the directory was
// written under a different shard count — tiering pins the count, so
// that is a configuration error surfaced to the caller.
func sweepTierLeftovers(dir string, n int, referenced map[string]bool) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: scanning tier dir %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if matched, _ := filepath.Match(tierTempGlob, name); matched {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if shard, _, ok := parseRunName(name); ok {
			if shard >= n {
				return fmt.Errorf("store: tier dir %s holds run %s for shard ≥ configured count %d (shard count is fixed while tiering is enabled)", dir, name, n)
			}
			if !referenced[name] {
				os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		if shard, ok := parseManifestName(name); ok && shard >= n {
			return fmt.Errorf("store: tier dir %s holds manifest %s for shard ≥ configured count %d (shard count is fixed while tiering is enabled)", dir, name, n)
		}
	}
	return nil
}
