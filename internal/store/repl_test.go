package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// listRunFiles returns the run file base names under dir, any shard.
func listRunFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if _, _, ok := parseRunName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestReplFetchRunTornTransfer mirrors the crash-mid-flush sweep test for
// run shipping: a standby that died mid-RunFetch leaves a ".tier-fetch-*"
// temporary behind, restart must sweep it, and the re-fetch of the same
// run must succeed chunk by chunk. Mid-transfer failures and corrupted
// payloads must leave no trace either.
func TestReplFetchRunTornTransfer(t *testing.T) {
	srcDir := t.TempDir()
	populateTiered(t, srcDir, 2, 200)
	src, swal := reopenTiered(t, srcDir, 2)
	defer swal.Close()
	if err := src.Recover(); err != nil {
		t.Fatal(err)
	}
	runs := listRunFiles(t, srcDir)
	if len(runs) == 0 {
		t.Fatal("source store flushed no runs")
	}
	name := runs[0]

	// The standby's tier directory after a crash mid-fetch: an orphaned
	// download temp (and nothing else).
	dstDir := t.TempDir()
	torn := filepath.Join(dstDir, ".tier-fetch-54321")
	if err := os.WriteFile(torn, []byte("half a run, torn by a crash"), 0o644); err != nil {
		t.Fatal(err)
	}
	dst, dwal := reopenTiered(t, dstDir, 2)
	defer dwal.Close()
	if err := dst.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn download %s survived recovery", torn)
	}

	// Re-fetch in deliberately tiny chunks so the loop runs many rounds.
	read := func(off int64, maxBytes int) ([]byte, bool, error) {
		if maxBytes > 64 {
			maxBytes = 64
		}
		data, _, eof, err := src.ReadRunChunk(name, off, maxBytes)
		return data, eof, err
	}
	if err := dst.ReplFetchRun(name, read); err != nil {
		t.Fatalf("re-fetch after crash: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dstDir, name)); err != nil {
		t.Fatalf("fetched run not installed: %v", err)
	}
	// Idempotent: fetching an installed run is a no-op even if the reader
	// would fail.
	if err := dst.ReplFetchRun(name, func(int64, int) ([]byte, bool, error) {
		return nil, false, errors.New("must not be called")
	}); err != nil {
		t.Fatalf("re-fetch of installed run: %v", err)
	}

	assertNoFetchTemps := func(when string) {
		t.Helper()
		temps, err := filepath.Glob(filepath.Join(dstDir, ".tier-fetch-*"))
		if err != nil {
			t.Fatal(err)
		}
		if len(temps) != 0 {
			t.Fatalf("%s left fetch temps behind: %v", when, temps)
		}
	}
	assertNoFetchTemps("successful fetch")

	if len(runs) < 2 {
		// Force a second run to exist for the failure cases.
		t.Skip("source produced a single run; failure cases need a second")
	}
	other := runs[1]

	// A transfer failing mid-stream must abort cleanly: error out, no
	// temp, no final file.
	tornErr := errors.New("connection torn")
	err := dst.ReplFetchRun(other, func(off int64, maxBytes int) ([]byte, bool, error) {
		if off == 0 {
			data, _, _, rerr := src.ReadRunChunk(other, 0, 64)
			return data, false, rerr
		}
		return nil, false, tornErr
	})
	if !errors.Is(err, tornErr) {
		t.Fatalf("torn transfer error = %v, want %v", err, tornErr)
	}
	assertNoFetchTemps("torn transfer")
	if _, serr := os.Stat(filepath.Join(dstDir, other)); !os.IsNotExist(serr) {
		t.Fatal("torn transfer installed a run")
	}

	// A corrupted transfer must fail checksum verification and leave no
	// trace.
	err = dst.ReplFetchRun(other, func(off int64, maxBytes int) ([]byte, bool, error) {
		data, _, eof, rerr := src.ReadRunChunk(other, off, maxBytes)
		if rerr == nil && off == 0 && len(data) > 40 {
			data = append([]byte(nil), data...)
			data[40] ^= 0xff // flip one payload byte
		}
		return data, eof, rerr
	})
	if err == nil {
		t.Fatal("corrupted transfer verified clean")
	}
	assertNoFetchTemps("corrupted transfer")
	if _, serr := os.Stat(filepath.Join(dstDir, other)); !os.IsNotExist(serr) {
		t.Fatal("corrupted transfer installed a run")
	}

	// And the happy path for the second run still works afterwards.
	if err := dst.ReplFetchRun(other, func(off int64, maxBytes int) ([]byte, bool, error) {
		data, _, eof, rerr := src.ReadRunChunk(other, off, maxBytes)
		return data, eof, rerr
	}); err != nil {
		t.Fatalf("clean fetch after failures: %v", err)
	}
}

// TestReplFetchRunRejectsBadNames guards the path-traversal check.
func TestReplFetchRunRejectsBadNames(t *testing.T) {
	dir := t.TempDir()
	db, wal := reopenTiered(t, dir, 2)
	defer wal.Close()
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"../escape", "run-x", "segment-000.wal", "/etc/passwd"} {
		if err := db.ReplFetchRun(name, nil); err == nil {
			t.Errorf("ReplFetchRun(%q) accepted a bad name", name)
		}
		if _, _, _, err := db.ReadRunChunk(name, 0, 10); err == nil {
			t.Errorf("ReadRunChunk(%q) accepted a bad name", name)
		}
	}
}
