package store

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// deltaStores builds the two SightingStore implementations side by side so
// every delta test runs against both.
func deltaStores(t *testing.T, opts ...SightingDBOption) map[string]SightingStore {
	t.Helper()
	return map[string]SightingStore{
		"single":  NewSightingDB(opts...),
		"sharded": NewShardedSightingDB(append(opts, WithShards(4))...),
	}
}

func TestPutBatchDeltas(t *testing.T) {
	for name, db := range deltaStores(t) {
		t.Run(name, func(t *testing.T) {
			a := core.Sighting{OID: "a", Pos: geo.Pt(10, 10)}
			b := core.Sighting{OID: "b", Pos: geo.Pt(20, 20)}
			ds := db.PutBatchDeltas([]core.Sighting{a, b}, nil)
			if len(ds) != 2 {
				t.Fatalf("got %d deltas, want 2: %+v", len(ds), ds)
			}
			for _, d := range ds {
				if d.Op != DeltaPut || d.HasOld {
					t.Fatalf("fresh insert delta %+v: want DeltaPut without old", d)
				}
			}

			// An update reports the superseded position.
			a2 := core.Sighting{OID: "a", Pos: geo.Pt(30, 30)}
			ds = db.PutBatchDeltas([]core.Sighting{a2}, nil)
			if len(ds) != 1 {
				t.Fatalf("got %d deltas, want 1", len(ds))
			}
			d := ds[0]
			if d.Op != DeltaPut || d.OID != "a" || !d.HasOld || d.Old != geo.Pt(10, 10) || d.New != geo.Pt(30, 30) {
				t.Fatalf("update delta %+v: want old (10,10) -> new (30,30)", d)
			}
		})
	}
}

// TestPutBatchDeltasCoalesced pins the batch-coalescing contract: when a
// batch contains several updates to one object, the emitted delta(s) for
// that object span the pre-batch position to the batch-final one, and the
// final store state matches sequential application. The sharded store emits
// exactly one delta; the single-lock store one per entry — both spans
// compose to the same net change.
func TestPutBatchDeltasCoalesced(t *testing.T) {
	for name, db := range deltaStores(t) {
		t.Run(name, func(t *testing.T) {
			db.Put(core.Sighting{OID: "a", Pos: geo.Pt(1, 1)})
			batch := []core.Sighting{
				{OID: "a", Pos: geo.Pt(2, 2)},
				{OID: "a", Pos: geo.Pt(3, 3)},
				{OID: "a", Pos: geo.Pt(4, 4)},
			}
			ds := db.PutBatchDeltas(batch, nil)
			if len(ds) == 0 {
				t.Fatal("no deltas emitted")
			}
			first, last := ds[0], ds[len(ds)-1]
			if !first.HasOld || first.Old != geo.Pt(1, 1) {
				t.Fatalf("first delta %+v: want old = pre-batch (1,1)", first)
			}
			if last.New != geo.Pt(4, 4) {
				t.Fatalf("last delta %+v: want new = batch-final (4,4)", last)
			}
			// Interior deltas (if any) must chain old -> new.
			for i := 1; i < len(ds); i++ {
				if !ds[i].HasOld || ds[i].Old != ds[i-1].New {
					t.Fatalf("delta %d (%+v) does not chain from %+v", i, ds[i], ds[i-1])
				}
			}
			if s, ok := db.Get("a"); !ok || s.Pos != geo.Pt(4, 4) {
				t.Fatalf("store state %+v after batch, want pos (4,4)", s)
			}
		})
	}
}

func TestRemoveDelta(t *testing.T) {
	for name, db := range deltaStores(t) {
		t.Run(name, func(t *testing.T) {
			db.Put(core.Sighting{OID: "a", Pos: geo.Pt(5, 6)})
			d, ok := db.RemoveDelta("a")
			if !ok {
				t.Fatal("RemoveDelta(a) found nothing")
			}
			if d.Op != DeltaRemove || d.OID != "a" || !d.HasOld || d.Old != geo.Pt(5, 6) {
				t.Fatalf("remove delta %+v: want DeltaRemove with old (5,6)", d)
			}
			if _, ok := db.RemoveDelta("a"); ok {
				t.Fatal("second RemoveDelta(a) reported a removal")
			}
			if _, ok := db.Get("a"); ok {
				t.Fatal("record survived RemoveDelta")
			}
		})
	}
}

func TestRemoveExpiredDelta(t *testing.T) {
	base := time.Unix(1000, 0)
	var mu sync.Mutex
	cur := base
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return cur
	}
	for name, db := range deltaStores(t, WithTTL(10*time.Second), WithClock(clock)) {
		t.Run(name, func(t *testing.T) {
			mu.Lock()
			cur = base
			mu.Unlock()
			db.Put(core.Sighting{OID: "a", Pos: geo.Pt(7, 8)})
			if _, ok := db.RemoveExpiredDelta("a"); ok {
				t.Fatal("unexpired record removed")
			}
			mu.Lock()
			cur = base.Add(20 * time.Second)
			mu.Unlock()
			d, ok := db.RemoveExpiredDelta("a")
			if !ok {
				t.Fatal("expired record not removed")
			}
			if d.Op != DeltaRemove || d.OID != "a" || d.Old != geo.Pt(7, 8) {
				t.Fatalf("expiry delta %+v", d)
			}
		})
	}
}

// TestPipelineOnCommit drives concurrent updates through the pipeline and
// checks that the commit callback observes, per object, a delta chain from
// first insert to last position with no gaps — commit order, old == previous
// new — and that the total of final positions matches the store.
func TestPipelineOnCommit(t *testing.T) {
	for name, db := range deltaStores(t) {
		t.Run(name, func(t *testing.T) {
			var mu sync.Mutex
			lastNew := make(map[core.OID]geo.Point)
			chainBroken := ""
			p := NewUpdatePipeline(db, OnCommit(func(ds []Delta) {
				mu.Lock()
				defer mu.Unlock()
				for _, d := range ds {
					prev, seen := lastNew[d.OID]
					if seen != d.HasOld || (seen && d.Old != prev) {
						chainBroken = string(d.OID)
					}
					lastNew[d.OID] = d.New
				}
			}))
			const workers, perWorker, objects = 8, 200, 31
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						oid := core.OID(fmt.Sprintf("o%d", (w*perWorker+i)%objects))
						p.Put(core.Sighting{OID: oid, Pos: geo.Pt(float64(w), float64(i))})
					}
				}(w)
			}
			wg.Wait()
			mu.Lock()
			defer mu.Unlock()
			if chainBroken != "" {
				t.Fatalf("delta chain broken for object %q", chainBroken)
			}
			if len(lastNew) == 0 {
				t.Fatal("no deltas observed")
			}
			for oid, pos := range lastNew {
				s, ok := db.Get(oid)
				if !ok || s.Pos != pos {
					t.Fatalf("object %s: last delta new %v, store has %v (ok=%v)", oid, pos, s.Pos, ok)
				}
			}
		})
	}
}
