// Package store implements the data-storage components of a location server
// (paper Section 5 and Fig. 7):
//
//   - SightingDB — the main-memory database of sighting records kept by leaf
//     servers, with a spatial index over positions (for range and nearest-
//     neighbor queries) and a hash index over object identifiers (for
//     position queries). Records carry soft-state expiration dates. The
//     sharded variant (ShardedSightingDB) partitions the database by object
//     id so updates scale across cores; UpdatePipeline batches concurrent
//     updates per shard (group commit under one lock acquisition). The
//     shard count adapts at runtime: Resize migrates the store to a new
//     count behind an epoch-versioned mapping without quiescing it, and
//     the AutoShard policy decides when, from write-lock contention
//     sampled on the shard mutexes and the pipeline lanes.
//   - VisitorDB — the per-server database of visitor records, persisted via
//     an append-only log so that forwarding paths survive crashes. The paper
//     used DB2 over JDBC; the log-plus-snapshot store here preserves the
//     property that matters (durability of forwarding paths) without an
//     external database.
//   - ShardedWAL — optional per-shard write-ahead logs for the sighting
//     store (WithSightingWAL): each group-commit batch is one log append,
//     and Recover replays all shards in parallel, bulk-loading each shard's
//     spatial index. See the wal.go file comment for the log format,
//     durability modes (WithSync) and recovery guarantees.
//   - ConfigRecord — the persistent configuration record describing a
//     server's service area, parent and children.
//
// # Tiered sighting storage
//
// With WithTiering, each shard of a ShardedSightingDB becomes the
// memtable of a small per-shard LSM tree, letting a leaf hold sighting
// populations larger than RAM and recover without replaying history.
//
// Run file format (run-SSSS-NNNNNNNN.run, immutable once renamed into
// place):
//
//	[records][bloom block][index block][92-byte footer]
//
// Records sort strictly ascending by object id; each is a flags byte
// (bit0 tombstone, bit1 T valid, bit2 expires valid), a uvarint-prefixed
// id, and — for live records — a fixed 40-byte payload (T, X, Y, SensAcc,
// expires). The bloom block is a double-hashed FNV-1a filter over every
// record id (BloomBitsPerKey bits per key, default 10, ≈1% false
// positives). The index block holds the key range plus a sparse index
// (one entry per 16 records) — the only per-record state a reader keeps
// resident. The footer pins region lengths, record/live counts, the
// spatial MBR of the live records, a CRC over the records region
// (verified by every complete scan) and a CRC over bloom+index (verified
// at open, keeping recovery O(metadata)).
//
// Manifest format (shard-SSSS.manifest, JSON): the shard's run list,
// newest first, plus the next run sequence number. The manifest rename is
// the commit point of every flush and compaction; run files no manifest
// references are crash leftovers, swept at open.
//
// Write path: updates commit to the memtable (WAL-logged as before).
// When a shard's estimated memtable bytes exceed its share of
// MemtableBytes, MaintainTiers — driven by the server's janitor — freezes
// the memtable into a new run (live records and tombstones, id-sorted),
// prepends it to the manifest, clears the memtable and resets the WAL
// segment; at twice the share the update path flushes inline
// (backpressure). Flushes move data between tiers without changing the
// store's logical content, so they emit no deltas and the event pipeline
// is unaffected. Removing or expiring a record whose versions live only
// in runs plants a memtable tombstone that shadows them until compaction.
//
// Read path: Get consults memtable, then tombstones, then runs newest to
// oldest — each run gated by its key range and bloom filter, then one
// sparse-index probe reading at most 16 records. Range queries scan only
// runs whose MBR intersects the rectangle, re-validating candidates
// against the memtable and newer runs; nearest-neighbor queries merge a
// distance-sorted stream over each shard's runs behind the quadtree
// cursors, gated by run-MBR distance.
//
// Compaction triggers: a shard exceeding MaxRuns runs (default 4) has its
// whole run set k-way merged into one run off-lock — newest version per
// id wins; tombstones and records expired for more than one full TTL are
// dropped (the one-TTL slack guarantees the janitor's Expired scan
// observed them first) — and the result installs under one manifest
// swap; readers pin runs by reference count, so nothing blocks and files
// unlink only after their last reader.
//
// Recovery order: load manifests → sweep unreferenced runs and
// temporaries → open run footers/metadata (no record reads) → replay the
// short WAL tail covering the current memtable. Recover does all of that
// before returning; RecoverBackground returns once the tiers are open
// and warms the memtables behind per-shard locks, so reads are served
// almost immediately after restart. The all-RAM mode (no WithTiering)
// remains the default and the differential-testing oracle.
package store

import (
	"fmt"
	"sync"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/spatial"
)

// sightingConfig collects the options shared by NewSightingDB and
// NewShardedSightingDB.
type sightingConfig struct {
	newIndex func() spatial.Index
	ttl      time.Duration
	clock    func() time.Time
	shards   int
	wal      *ShardedWAL
	tier     *TierConfig
}

func defaultSightingConfig() sightingConfig {
	return sightingConfig{
		newIndex: func() spatial.Index { return spatial.NewQuadtree() },
		clock:    time.Now,
		shards:   1,
	}
}

// SightingDBOption customizes a SightingDB or ShardedSightingDB.
type SightingDBOption func(*sightingConfig)

// WithIndex selects the spatial index implementation (default: quadtree,
// the paper's choice). A sharded database creates one index per shard.
func WithIndex(kind spatial.Kind) SightingDBOption {
	return func(c *sightingConfig) {
		c.newIndex = func() spatial.Index { return spatial.New(kind) }
	}
}

// WithTTL sets the soft-state time-to-live for sighting records. Zero
// disables expiration.
func WithTTL(ttl time.Duration) SightingDBOption {
	return func(c *sightingConfig) { c.ttl = ttl }
}

// WithClock injects a time source, used by tests to control expiry.
func WithClock(clock func() time.Time) SightingDBOption {
	return func(c *sightingConfig) { c.clock = clock }
}

// WithShards sets the shard count of a ShardedSightingDB (minimum 1).
// NewSightingDB ignores it: the single-lock database is one shard by
// definition.
func WithShards(n int) SightingDBOption {
	return func(c *sightingConfig) {
		if n >= 1 {
			c.shards = n
		}
	}
}

// WithSightingWAL attaches per-shard write-ahead logs to a
// ShardedSightingDB: every committed batch and removal is appended to the
// owning shard's log before it is applied, and Recover rebuilds the store
// from the logs after a crash. The store adopts the WAL's shard count
// (which is fixed by the persistent log — see ShardedWAL), overriding
// WithShards. NewSightingDB ignores the option; use a one-shard
// ShardedSightingDB for a durable single-lock store.
func WithSightingWAL(w *ShardedWAL) SightingDBOption {
	return func(c *sightingConfig) { c.wal = w }
}

// WithTiering enables tiered (LSM) sighting storage on a
// ShardedSightingDB: each shard becomes the memtable of a per-shard LSM
// tree whose sorted runs live under cfg.Dir (defaulting to the attached
// WAL's directory). See the package comment for the full spec. The tier
// activates when Recover or RecoverBackground opens it; the shard count
// is fixed while tiering is enabled (Resize errors, AutoShard must be
// off). NewSightingDB ignores the option.
func WithTiering(cfg TierConfig) SightingDBOption {
	return func(c *sightingConfig) {
		tc := cfg
		c.tier = &tc
	}
}

// SightingDB is the volatile sighting-record store of a leaf server. It is
// safe for concurrent use. Positions are indexed spatially; object ids are
// hash-indexed. Records expire after the configured TTL unless refreshed by
// updates — the soft-state principle of Section 5.
//
// Every operation serializes behind one lock; it is the seed-equivalent
// baseline and correctness oracle for ShardedSightingDB.
type SightingDB struct {
	mu  sync.RWMutex
	idx spatial.Index
	// items is idx narrowed to the payload-carrying capability (nil when
	// unsupported); see ShardedSightingDB for the rationale.
	items spatial.ItemIndex
	byID  map[core.OID]*sightingEntry
	ttl   time.Duration
	clock func() time.Time

	// sweep cursor for the amortized expiry scan (SweepExpired).
	sweepKeys []core.OID
	sweepPos  int
}

var _ SightingStore = (*SightingDB)(nil)

type sightingEntry struct {
	s       core.Sighting
	expires time.Time
}

// NewSightingDB returns an empty sighting database.
func NewSightingDB(opts ...SightingDBOption) *SightingDB {
	cfg := defaultSightingConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	db := &SightingDB{
		idx:   cfg.newIndex(),
		byID:  make(map[core.OID]*sightingEntry),
		ttl:   cfg.ttl,
		clock: cfg.clock,
	}
	db.items, _ = db.idx.(spatial.ItemIndex)
	return db
}

// Len returns the number of stored sighting records.
func (db *SightingDB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.byID)
}

// NumShards implements SightingStore: the single-lock database is one shard.
func (db *SightingDB) NumShards() int { return 1 }

// ShardFor implements SightingStore.
func (db *SightingDB) ShardFor(core.OID) int { return 0 }

// Put inserts or replaces the sighting record for s.OID and refreshes its
// expiration date. It implements both sightingDB.insert and
// sightingDB.update of the paper's algorithms.
func (db *SightingDB) Put(s core.Sighting) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.putLocked(s)
}

// PutBatch applies a batch of puts under a single lock acquisition. Later
// entries for the same object override earlier ones, as if applied in order.
func (db *SightingDB) PutBatch(batch []core.Sighting) {
	if len(batch) == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, s := range batch {
		db.putLocked(s)
	}
}

// PutBatchDeltas implements SightingStore. The single-lock database does not
// coalesce, so a batch with repeated objects yields one delta per entry, in
// application order.
func (db *SightingDB) PutBatchDeltas(batch []core.Sighting, out []Delta) []Delta {
	if len(batch) == 0 {
		return out
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, s := range batch {
		out = append(out, db.putLocked(s))
	}
	return out
}

func (db *SightingDB) putLocked(s core.Sighting) Delta {
	old := db.byID[s.OID]
	if old != nil {
		db.idx.Remove(s.OID, old.s.Pos)
	}
	entry := &sightingEntry{s: s}
	if db.ttl > 0 {
		entry.expires = db.clock().Add(db.ttl)
	}
	db.byID[s.OID] = entry
	if db.items != nil {
		db.items.InsertItem(spatial.Item{ID: s.OID, Pos: s.Pos, Ref: entry})
	} else {
		db.idx.Insert(s.OID, s.Pos)
	}
	return putDelta(s, old)
}

// Get returns the sighting record for id via the hash index.
func (db *SightingDB) Get(id core.OID) (core.Sighting, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.byID[id]
	if !ok {
		return core.Sighting{}, false
	}
	return e.s, true
}

// Remove deletes the record for id and reports whether it existed.
func (db *SightingDB) Remove(id core.OID) bool {
	_, ok := db.RemoveDelta(id)
	return ok
}

// RemoveDelta implements SightingStore.
func (db *SightingDB) RemoveDelta(id core.OID) (Delta, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.byID[id]
	if !ok {
		return Delta{}, false
	}
	db.idx.Remove(id, e.s.Pos)
	delete(db.byID, id)
	return removeDelta(id, e), true
}

// RemoveExpired deletes the record for id only if its soft-state TTL has
// passed, and reports whether it removed anything. Callers acting on a
// stale expiry observation (the janitor's Expired snapshot, the pipeline's
// amortized sweep) use it so a record refreshed since the observation
// survives.
func (db *SightingDB) RemoveExpired(id core.OID) bool {
	_, ok := db.RemoveExpiredDelta(id)
	return ok
}

// RemoveExpiredDelta implements SightingStore.
func (db *SightingDB) RemoveExpiredDelta(id core.OID) (Delta, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.byID[id]
	if !ok || db.ttl <= 0 || e.expires.IsZero() || !db.clock().After(e.expires) {
		return Delta{}, false
	}
	db.idx.Remove(id, e.s.Pos)
	delete(db.byID, id)
	return removeDelta(id, e), true
}

// Touch refreshes the expiration date of id without changing its sighting,
// used when a tracked object reports "no movement" heartbeats.
func (db *SightingDB) Touch(id core.OID) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.byID[id]
	if !ok {
		return false
	}
	if db.ttl > 0 {
		e.expires = db.clock().Add(db.ttl)
	}
	return true
}

// Expired returns the ids of all records whose soft-state TTL has passed.
// The caller (the server's janitor) deregisters them.
func (db *SightingDB) Expired() []core.OID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.ttl <= 0 {
		return nil
	}
	now := db.clock()
	var out []core.OID
	for id, e := range db.byID {
		if !e.expires.IsZero() && now.After(e.expires) {
			out = append(out, id)
		}
	}
	return out
}

// SweepExpired examines at most max records — resuming where the previous
// sweep stopped — and returns the expired ids among them, each at most
// once per call (the cursor's key snapshot is refilled only at the start
// of a call, never mid-call, so a call cannot wrap around and re-report).
// It lets callers amortize expiry detection over the update path instead
// of scanning the whole database at once; the periodic Expired scan
// remains the backstop.
func (db *SightingDB) SweepExpired(max int) []core.OID {
	if max <= 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.ttl <= 0 || len(db.byID) == 0 {
		return nil
	}
	now := db.clock()
	var out []core.OID
	for examined := 0; examined < max; examined++ {
		if db.sweepPos >= len(db.sweepKeys) {
			if examined > 0 {
				break // snapshot exhausted mid-call: resume next call
			}
			db.sweepKeys = db.sweepKeys[:0]
			for id := range db.byID {
				db.sweepKeys = append(db.sweepKeys, id)
			}
			db.sweepPos = 0
		}
		id := db.sweepKeys[db.sweepPos]
		db.sweepPos++
		if e, ok := db.byID[id]; ok && !e.expires.IsZero() && now.After(e.expires) {
			out = append(out, id)
		}
	}
	return out
}

// SearchArea visits every sighting whose position lies within the closed
// rectangle r, via the spatial index. With a payload-carrying index the
// record is resolved straight off the index entry.
func (db *SightingDB) SearchArea(r geo.Rect, visit func(s core.Sighting) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.items != nil {
		db.items.SearchItems(r, func(it spatial.Item) bool {
			e, ok := it.Ref.(*sightingEntry)
			if !ok {
				e = db.byID[it.ID]
			}
			return visit(e.s)
		})
		return
	}
	db.idx.Search(r, func(id core.OID, _ geo.Point) bool {
		return visit(db.byID[id].s)
	})
}

// NearestFunc visits sightings in order of increasing distance from p.
func (db *SightingDB) NearestFunc(p geo.Point, visit func(s core.Sighting, dist float64) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.idx.NearestFunc(p, func(id core.OID, _ geo.Point, dist float64) bool {
		return visit(db.byID[id].s, dist)
	})
}

// ForEach visits every stored sighting in unspecified order.
func (db *SightingDB) ForEach(visit func(s core.Sighting) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, e := range db.byID {
		if !visit(e.s) {
			return
		}
	}
}

// String implements fmt.Stringer for diagnostics.
func (db *SightingDB) String() string {
	return fmt.Sprintf("SightingDB(%d records)", db.Len())
}
