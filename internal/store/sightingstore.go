package store

import (
	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// SightingStore is the sighting-database interface the server programs
// against. Two implementations exist:
//
//   - SightingDB — one lock, the seed-equivalent baseline and the oracle
//     the sharded implementation is property-tested against;
//   - ShardedSightingDB — N independently locked shards keyed by object id,
//     with a batch API that applies a group of updates per shard under one
//     lock acquisition.
//
// All implementations are safe for concurrent use. Queries observe a
// consistent snapshot per shard; cross-shard queries are linearizable only
// when the store is quiescent, which matches the service semantics (a range
// query racing an update may see either position — exactly as it may over
// the network).
type SightingStore interface {
	// Len returns the number of stored sighting records.
	Len() int
	// NumShards returns the number of independently locked shards.
	NumShards() int
	// ShardFor maps an object id to its shard, for callers that batch
	// work per shard (UpdatePipeline).
	ShardFor(id core.OID) int
	// Put inserts or replaces the record for s.OID and refreshes its
	// expiration date.
	Put(s core.Sighting)
	// PutBatch applies a batch of puts, acquiring each involved shard's
	// lock once. Later entries for the same object override earlier ones.
	PutBatch(batch []core.Sighting)
	// PutBatchDeltas is PutBatch with change reporting: one Delta per
	// committed change is appended to out and the extended slice returned.
	// An implementation that coalesces superseded updates within the batch
	// emits one delta per object, spanning the pre-batch position and the
	// final one; deltas for the same object are always in commit order.
	PutBatchDeltas(batch []core.Sighting, out []Delta) []Delta
	// Get returns the record for id via the hash index.
	Get(id core.OID) (core.Sighting, bool)
	// Remove deletes the record for id and reports whether it existed.
	Remove(id core.OID) bool
	// RemoveDelta is Remove with change reporting: the returned delta
	// carries the removed record's last position.
	RemoveDelta(id core.OID) (Delta, bool)
	// RemoveExpired deletes the record for id only if its TTL has
	// passed, so callers acting on a stale expiry observation cannot
	// tear down a concurrently refreshed record.
	RemoveExpired(id core.OID) bool
	// RemoveExpiredDelta is RemoveExpired with change reporting.
	RemoveExpiredDelta(id core.OID) (Delta, bool)
	// Touch refreshes the expiration date of id.
	Touch(id core.OID) bool
	// Expired returns the ids of all records whose soft-state TTL passed.
	Expired() []core.OID
	// SweepExpired examines at most max records (resuming where the last
	// sweep stopped) and returns the expired ids among them.
	SweepExpired(max int) []core.OID
	// SearchArea visits every sighting inside the closed rectangle r.
	SearchArea(r geo.Rect, visit func(s core.Sighting) bool)
	// NearestFunc visits sightings in order of increasing distance from p.
	NearestFunc(p geo.Point, visit func(s core.Sighting, dist float64) bool)
	// ForEach visits every stored sighting in unspecified order.
	ForEach(visit func(s core.Sighting) bool)
}
