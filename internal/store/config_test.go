package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

func rectArea2(x0, y0, x1, y1 float64) core.Area {
	return core.AreaFromRect(geo.R(x0, y0, x1, y1))
}

func quadConfig() ConfigRecord {
	return ConfigRecord{
		ID: "root",
		SA: rectArea2(0, 0, 100, 100),
		Children: []ChildRecord{
			{ID: "c0", SA: rectArea2(0, 0, 50, 50)},
			{ID: "c1", SA: rectArea2(50, 0, 100, 50)},
			{ID: "c2", SA: rectArea2(0, 50, 50, 100)},
			{ID: "c3", SA: rectArea2(50, 50, 100, 100)},
		},
	}
}

func TestConfigRoles(t *testing.T) {
	c := quadConfig()
	if !c.IsRoot() || c.IsLeaf() {
		t.Error("root config misclassified")
	}
	leaf := ConfigRecord{ID: "l", SA: rectArea2(0, 0, 1, 1), Parent: "root"}
	if leaf.IsRoot() || !leaf.IsLeaf() {
		t.Error("leaf config misclassified")
	}
}

func TestChildFor(t *testing.T) {
	c := quadConfig()
	tests := []struct {
		p    geo.Point
		want string
	}{
		{geo.Pt(10, 10), "c0"},
		{geo.Pt(60, 10), "c1"},
		{geo.Pt(10, 60), "c2"},
		{geo.Pt(60, 60), "c3"},
		{geo.Pt(50, 50), "c3"}, // boundary goes to the half-open owner
		{geo.Pt(0, 0), "c0"},
		{geo.Pt(100, 100), "c3"}, // outer corner falls back to closed test
	}
	for _, tt := range tests {
		got, ok := c.ChildFor(tt.p)
		if !ok || got.ID != tt.want {
			t.Errorf("ChildFor(%v) = %v/%v, want %v", tt.p, got.ID, ok, tt.want)
		}
	}
	if _, ok := c.ChildFor(geo.Pt(200, 200)); ok {
		t.Error("ChildFor outside parent area succeeded")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := quadConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	leaf := ConfigRecord{ID: "l", SA: rectArea2(0, 0, 1, 1)}
	if err := leaf.Validate(); err != nil {
		t.Errorf("valid leaf rejected: %v", err)
	}

	t.Run("missing id", func(t *testing.T) {
		c := quadConfig()
		c.ID = ""
		if err := c.Validate(); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("empty area", func(t *testing.T) {
		c := quadConfig()
		c.SA = core.Area{}
		if err := c.Validate(); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("overlapping children", func(t *testing.T) {
		c := quadConfig()
		c.Children[1].SA = rectArea2(25, 0, 100, 50) // overlaps c0
		if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "overlap") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("children do not cover parent", func(t *testing.T) {
		c := quadConfig()
		c.Children = c.Children[:3]
		if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "cover") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("child without id", func(t *testing.T) {
		c := quadConfig()
		c.Children[2].ID = ""
		if err := c.Validate(); err == nil {
			t.Error("accepted")
		}
	})
}

func TestConfigSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "config.json")
	orig := quadConfig()
	orig.Parent = "" // root
	if err := SaveConfig(orig, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != orig.ID || len(got.Children) != 4 {
		t.Fatalf("loaded %+v", got)
	}
	if got.Children[2].ID != "c2" || got.Children[2].SA.Size() != 2500 {
		t.Errorf("child 2 = %+v", got.Children[2])
	}
	if got.SA.Size() != 10000 {
		t.Errorf("loaded area size = %v", got.SA.Size())
	}
}

func TestLoadConfigErrors(t *testing.T) {
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := SaveConfig(quadConfig(), bad); err != nil {
		t.Fatal(err)
	}
	// Corrupt it.
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil {
		t.Error("corrupt file accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
