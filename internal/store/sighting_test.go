package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/spatial"
)

func sighting(id string, x, y float64) core.Sighting {
	return core.Sighting{OID: core.OID(id), T: time.Now(), Pos: geo.Pt(x, y), SensAcc: 5}
}

func TestSightingDBPutGetRemove(t *testing.T) {
	db := NewSightingDB()
	s := sighting("o1", 10, 20)
	db.Put(s)
	got, ok := db.Get("o1")
	if !ok || got.Pos != geo.Pt(10, 20) {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	if !db.Remove("o1") {
		t.Error("Remove returned false")
	}
	if db.Remove("o1") {
		t.Error("double Remove returned true")
	}
	if _, ok := db.Get("o1"); ok {
		t.Error("Get after Remove succeeded")
	}
}

func TestSightingDBUpdateMovesIndexEntry(t *testing.T) {
	db := NewSightingDB()
	db.Put(sighting("o1", 10, 10))
	db.Put(sighting("o1", 90, 90)) // update, same id
	if db.Len() != 1 {
		t.Fatalf("Len = %d after update", db.Len())
	}
	var found []core.OID
	db.SearchArea(geo.R(0, 0, 20, 20), func(s core.Sighting) bool {
		found = append(found, s.OID)
		return true
	})
	if len(found) != 0 {
		t.Errorf("old position still indexed: %v", found)
	}
	db.SearchArea(geo.R(80, 80, 100, 100), func(s core.Sighting) bool {
		found = append(found, s.OID)
		return true
	})
	if len(found) != 1 || found[0] != "o1" {
		t.Errorf("new position not indexed: %v", found)
	}
}

func TestSightingDBExpiry(t *testing.T) {
	now := time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	db := NewSightingDB(WithTTL(30*time.Second), WithClock(clock))
	db.Put(sighting("fresh", 1, 1))
	db.Put(sighting("stale", 2, 2))
	if got := db.Expired(); len(got) != 0 {
		t.Fatalf("expired immediately: %v", got)
	}
	advance(20 * time.Second)
	db.Touch("fresh") // refresh one record
	advance(20 * time.Second)
	got := db.Expired()
	if len(got) != 1 || got[0] != "stale" {
		t.Errorf("Expired = %v, want [stale]", got)
	}
	// A Put also refreshes the deadline.
	db.Put(sighting("stale", 2, 2))
	if got := db.Expired(); len(got) != 0 {
		t.Errorf("Expired after refresh = %v", got)
	}
}

func TestSightingDBExpiryDisabled(t *testing.T) {
	db := NewSightingDB() // zero TTL
	db.Put(sighting("o", 1, 1))
	if got := db.Expired(); got != nil {
		t.Errorf("Expired with TTL=0 = %v", got)
	}
	if !db.Touch("o") {
		t.Error("Touch existing returned false")
	}
	if db.Touch("missing") {
		t.Error("Touch missing returned true")
	}
}

func TestSightingDBNearestFunc(t *testing.T) {
	db := NewSightingDB()
	db.Put(sighting("a", 0, 0))
	db.Put(sighting("b", 10, 0))
	db.Put(sighting("c", 20, 0))
	var order []core.OID
	db.NearestFunc(geo.Pt(11, 0), func(s core.Sighting, _ float64) bool {
		order = append(order, s.OID)
		return true
	})
	want := []core.OID{"b", "c", "a"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Errorf("nearest order = %v, want %v", order, want)
	}
}

func TestSightingDBForEachAndString(t *testing.T) {
	db := NewSightingDB(WithIndex(spatial.KindRTree))
	for i := 0; i < 5; i++ {
		db.Put(sighting(fmt.Sprintf("o%d", i), float64(i), float64(i)))
	}
	count := 0
	db.ForEach(func(core.Sighting) bool { count++; return true })
	if count != 5 {
		t.Errorf("ForEach visited %d", count)
	}
	count = 0
	db.ForEach(func(core.Sighting) bool { count++; return false })
	if count != 1 {
		t.Errorf("ForEach early stop visited %d", count)
	}
	if got := db.String(); got != "SightingDB(5 records)" {
		t.Errorf("String = %q", got)
	}
}

func TestSightingDBConcurrentAccess(t *testing.T) {
	db := NewSightingDB(WithTTL(time.Minute))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				id := fmt.Sprintf("w%d-o%d", w, i%50)
				switch i % 4 {
				case 0, 1:
					db.Put(sighting(id, rng.Float64()*100, rng.Float64()*100))
				case 2:
					db.Get(core.OID(id))
				case 3:
					db.SearchArea(geo.R(0, 0, 50, 50), func(core.Sighting) bool { return true })
				}
			}
		}(w)
	}
	wg.Wait()
}
