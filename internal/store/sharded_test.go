package store

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/spatial"
)

func TestShardedSightingDBBasic(t *testing.T) {
	db := NewShardedSightingDB(WithShards(4))
	if db.NumShards() != 4 {
		t.Fatalf("NumShards = %d", db.NumShards())
	}
	for i := 0; i < 40; i++ {
		db.Put(sighting(fmt.Sprintf("o%d", i), float64(i), float64(i)))
	}
	if db.Len() != 40 {
		t.Fatalf("Len = %d", db.Len())
	}
	got, ok := db.Get("o7")
	if !ok || got.Pos != geo.Pt(7, 7) {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if !db.Remove("o7") || db.Remove("o7") {
		t.Error("Remove / double-Remove misbehaved")
	}
	if db.Touch("missing") {
		t.Error("Touch missing returned true")
	}
	if !db.Touch("o8") {
		t.Error("Touch existing returned false")
	}
	count := 0
	db.ForEach(func(core.Sighting) bool { count++; return true })
	if count != 39 {
		t.Errorf("ForEach visited %d", count)
	}
	count = 0
	db.ForEach(func(core.Sighting) bool { count++; return false })
	if count != 1 {
		t.Errorf("ForEach early stop visited %d", count)
	}
	if got := db.String(); got != "ShardedSightingDB(4 shards, 39 records)" {
		t.Errorf("String = %q", got)
	}
}

func TestShardedPutBatchCoalesces(t *testing.T) {
	db := NewShardedSightingDB(WithShards(4))
	// Three updates of the same object in one batch: only the last
	// position must survive, and the superseded ones must not linger in
	// the spatial index.
	db.PutBatch([]core.Sighting{
		sighting("a", 1, 1),
		sighting("b", 2, 2),
		sighting("a", 50, 50),
		sighting("a", 90, 90),
	})
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2", db.Len())
	}
	if s, _ := db.Get("a"); s.Pos != geo.Pt(90, 90) {
		t.Errorf("a at %v, want (90,90)", s.Pos)
	}
	var hits []core.OID
	db.SearchArea(geo.R(0, 0, 60, 60), func(s core.Sighting) bool {
		hits = append(hits, s.OID)
		return true
	})
	if len(hits) != 1 || hits[0] != "b" {
		t.Errorf("SearchArea = %v, want [b] (stale positions of a indexed?)", hits)
	}
}

func TestShardedExpiryAndSweep(t *testing.T) {
	now := time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	db := NewShardedSightingDB(WithShards(4), WithTTL(30*time.Second), WithClock(clock))
	for i := 0; i < 16; i++ {
		db.Put(sighting(fmt.Sprintf("o%d", i), float64(i), float64(i)))
	}
	if got := db.Expired(); len(got) != 0 {
		t.Fatalf("expired immediately: %v", got)
	}
	advance(20 * time.Second)
	db.Put(sighting("o3", 3, 3)) // refresh one record
	advance(20 * time.Second)
	if got := db.Expired(); len(got) != 15 {
		t.Errorf("Expired found %d, want 15", len(got))
	}
	// The bounded sweep must find every expired record across repeated
	// calls, despite its per-call budget.
	found := map[core.OID]bool{}
	for i := 0; i < 10; i++ {
		for _, id := range db.SweepExpired(8) {
			found[id] = true
		}
	}
	if len(found) != 15 || found["o3"] {
		t.Errorf("sweep found %d records (o3: %v), want 15 without o3", len(found), found["o3"])
	}
}

// TestSweepExpiredNoDuplicatesWithinCall: a budget far exceeding the
// population must not wrap the cursor and report the same id twice in one
// call, on either implementation.
func TestSweepExpiredNoDuplicatesWithinCall(t *testing.T) {
	now := time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	for _, db := range []SightingStore{
		NewSightingDB(WithTTL(time.Second), WithClock(clock)),
		NewShardedSightingDB(WithShards(4), WithTTL(time.Second), WithClock(clock)),
	} {
		for i := 0; i < 5; i++ {
			db.Put(sighting(fmt.Sprintf("o%d", i), float64(i), 0))
		}
		mu.Lock()
		now = now.Add(time.Minute)
		mu.Unlock()
		ids := db.SweepExpired(1000)
		seen := map[core.OID]bool{}
		for _, id := range ids {
			if seen[id] {
				t.Errorf("%T: SweepExpired reported %s twice in one call", db, id)
			}
			seen[id] = true
		}
		if len(seen) == 0 {
			t.Errorf("%T: SweepExpired found nothing", db)
		}
	}
}

// TestRemoveExpiredGuardsRefresh: RemoveExpired must be a no-op for a
// record refreshed after the expiry observation — the race the janitor and
// the pipeline sweep act under.
func TestRemoveExpiredGuardsRefresh(t *testing.T) {
	now := time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	for _, db := range []SightingStore{
		NewSightingDB(WithTTL(30*time.Second), WithClock(clock)),
		NewShardedSightingDB(WithShards(4), WithTTL(30*time.Second), WithClock(clock)),
	} {
		db.Put(sighting("x", 1, 1))
		db.Put(sighting("y", 2, 2))
		mu.Lock()
		now = now.Add(time.Minute)
		mu.Unlock()
		if got := db.Expired(); len(got) != 2 {
			t.Fatalf("%T: Expired = %v", db, got)
		}
		db.Put(sighting("x", 1, 1)) // refreshed between observation and removal
		if db.RemoveExpired("x") {
			t.Errorf("%T: RemoveExpired removed a refreshed record", db)
		}
		if _, ok := db.Get("x"); !ok {
			t.Errorf("%T: refreshed record gone", db)
		}
		if !db.RemoveExpired("y") {
			t.Errorf("%T: RemoveExpired kept a genuinely expired record", db)
		}
		if db.RemoveExpired("missing") {
			t.Errorf("%T: RemoveExpired removed a missing record", db)
		}
	}
}

// collectArea runs a range query and returns the result as a sorted id list.
func collectArea(db SightingStore, r geo.Rect) []core.OID {
	var out []core.OID
	db.SearchArea(r, func(s core.Sighting) bool {
		out = append(out, s.OID)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// collectNearest returns the first k (id, dist) pairs of the NN stream.
func collectNearest(db SightingStore, p geo.Point, k int) []spatial.Neighbor {
	var out []spatial.Neighbor
	db.NearestFunc(p, func(s core.Sighting, dist float64) bool {
		out = append(out, spatial.Neighbor{ID: s.OID, Pos: s.Pos, Dist: dist})
		return len(out) < k
	})
	return out
}

func equalOIDs(a, b []core.OID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAgainstOracle compares sharded range and NN results against the
// single-lock linear-scan oracle holding the same records.
func checkAgainstOracle(t *testing.T, db SightingStore, oracle *SightingDB, rng *rand.Rand, side float64) {
	t.Helper()
	if db.Len() != oracle.Len() {
		t.Fatalf("Len = %d, oracle %d", db.Len(), oracle.Len())
	}
	for q := 0; q < 8; q++ {
		x, y := rng.Float64()*side, rng.Float64()*side
		r := geo.R(x, y, x+side/4, y+side/4)
		if got, want := collectArea(db, r), collectArea(oracle, r); !equalOIDs(got, want) {
			t.Fatalf("SearchArea(%v) = %v, oracle %v", r, got, want)
		}
		p := geo.Pt(rng.Float64()*side, rng.Float64()*side)
		got := collectNearest(db, p, 10)
		want := collectNearest(oracle, p, 10)
		if len(got) != len(want) {
			t.Fatalf("NearestFunc returned %d entries, oracle %d", len(got), len(want))
		}
		for i := range got {
			// Distances must agree exactly; ids may differ only on ties.
			if got[i].Dist != want[i].Dist {
				t.Fatalf("NN stream dist[%d] = %v (id %s), oracle %v (id %s)",
					i, got[i].Dist, got[i].ID, want[i].Dist, want[i].ID)
			}
		}
	}
}

// TestShardedMatchesOracleRandomized applies the same randomized op
// sequence (puts, batched puts, removes) to a 4-shard store and to the
// single-lock linear-index oracle, checking queries agree throughout.
func TestShardedMatchesOracleRandomized(t *testing.T) {
	const side = 100.0
	rng := rand.New(rand.NewSource(42))
	db := NewShardedSightingDB(WithShards(4))
	oracle := NewSightingDB(WithIndex(spatial.KindLinear))
	for round := 0; round < 30; round++ {
		switch rng.Intn(3) {
		case 0:
			s := sighting(fmt.Sprintf("o%d", rng.Intn(60)), rng.Float64()*side, rng.Float64()*side)
			db.Put(s)
			oracle.Put(s)
		case 1:
			batch := make([]core.Sighting, 1+rng.Intn(20))
			for i := range batch {
				// Coarse grid provokes duplicate positions and
				// repeated ids inside one batch.
				batch[i] = sighting(fmt.Sprintf("o%d", rng.Intn(60)),
					float64(rng.Intn(20))*5, float64(rng.Intn(20))*5)
			}
			db.PutBatch(batch)
			oracle.PutBatch(batch)
		case 2:
			id := core.OID(fmt.Sprintf("o%d", rng.Intn(60)))
			if db.Remove(id) != oracle.Remove(id) {
				t.Fatalf("Remove(%s) disagreed with oracle", id)
			}
		}
		checkAgainstOracle(t, db, oracle, rng, side)
	}
}

// TestShardedConcurrentMatchesOracle is the concurrency property test of
// this PR: goroutines apply randomized batched updates concurrently — each
// goroutine owning a disjoint set of objects, so the final per-object state
// is deterministic — and after quiescing, sharded range and NN queries must
// return exactly what the single-threaded linear-scan oracle returns.
func TestShardedConcurrentMatchesOracle(t *testing.T) {
	const (
		side    = 1000.0
		workers = 8
	)
	perWorker := 40
	rounds := 30
	if testing.Short() {
		perWorker, rounds = 10, 8
	}
	for _, shards := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := NewShardedSightingDB(WithShards(shards))
			pipe := NewUpdatePipeline(db)
			final := make([]core.Sighting, workers*perWorker)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for r := 0; r < rounds; r++ {
						if rng.Intn(2) == 0 {
							// One-at-a-time updates through the pipeline.
							for i := 0; i < perWorker; i++ {
								idx := w*perWorker + i
								s := sighting(fmt.Sprintf("o%d", idx), rng.Float64()*side, rng.Float64()*side)
								pipe.Put(s)
								final[idx] = s
							}
						} else {
							// Direct batch covering this worker's objects.
							batch := make([]core.Sighting, perWorker)
							for i := range batch {
								idx := w*perWorker + i
								batch[i] = sighting(fmt.Sprintf("o%d", idx), rng.Float64()*side, rng.Float64()*side)
								final[idx] = batch[i]
							}
							db.PutBatch(batch)
						}
					}
				}(w)
			}
			wg.Wait()

			oracle := NewSightingDB(WithIndex(spatial.KindLinear))
			for _, s := range final {
				oracle.Put(s)
			}
			checkAgainstOracle(t, db, oracle, rand.New(rand.NewSource(99)), side)
		})
	}
}

// TestShardedConcurrentHammer exercises every store operation from many
// goroutines at once; its value is running clean under `go test -race`.
func TestShardedConcurrentHammer(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 60
	}
	db := NewShardedSightingDB(WithShards(8), WithTTL(time.Minute))
	pipe := NewUpdatePipeline(db)
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("w%d-o%d", w%4, i%40)
				switch i % 8 {
				case 0, 1:
					pipe.Put(sighting(id, rng.Float64()*100, rng.Float64()*100))
				case 2:
					batch := make([]core.Sighting, 4)
					for j := range batch {
						batch[j] = sighting(fmt.Sprintf("w%d-o%d", w%4, rng.Intn(40)),
							rng.Float64()*100, rng.Float64()*100)
					}
					db.PutBatch(batch)
				case 3:
					db.Get(core.OID(id))
				case 4:
					db.SearchArea(geo.R(0, 0, 50, 50), func(core.Sighting) bool { return true })
				case 5:
					n := 0
					db.NearestFunc(geo.Pt(50, 50), func(core.Sighting, float64) bool {
						n++
						return n < 5
					})
				case 6:
					db.Remove(core.OID(fmt.Sprintf("w%d-o%d", w%4, rng.Intn(40))))
				case 7:
					db.SweepExpired(8)
					db.Touch(core.OID(id))
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestShardedBoundPruningStaysExact drives the per-shard bounding
// rectangles through their whole lifecycle — growth under clustered
// inserts, staleness under mass removal, lazy re-tightening, emptying —
// and checks pruned SearchArea/NearestFunc answers against the linear
// oracle at every stage. Clustered corners make pruning actually fire:
// a wrongly tightened (or wrongly trusted) rectangle would drop results.
func TestShardedBoundPruningStaysExact(t *testing.T) {
	const side = 1000.0
	rng := rand.New(rand.NewSource(7))
	db := NewShardedSightingDB(WithShards(4))
	oracle := NewSightingDB(WithIndex(spatial.KindLinear))
	put := func(id string, x, y float64) {
		s := sighting(id, x, y)
		db.Put(s)
		oracle.Put(s)
	}
	// Stage 1: two tight clusters in opposite corners.
	for i := 0; i < 200; i++ {
		put(fmt.Sprintf("a%d", i), rng.Float64()*50, rng.Float64()*50)
		put(fmt.Sprintf("b%d", i), side-rng.Float64()*50, side-rng.Float64()*50)
	}
	checkAgainstOracle(t, db, oracle, rng, side)
	// A query between the clusters must return nothing (every shard
	// bound misses it) without breaking later queries.
	mid := geo.R(side/2-100, side/2-100, side/2+100, side/2+100)
	if got := collectArea(db, mid); len(got) != 0 {
		t.Fatalf("mid-area search returned %d ids, want 0", len(got))
	}
	// Stage 2: remove one whole cluster — bounds go maximally stale,
	// then tighten lazily as removals outnumber live records.
	for i := 0; i < 200; i++ {
		id := core.OID(fmt.Sprintf("b%d", i))
		if db.Remove(id) != oracle.Remove(id) {
			t.Fatalf("Remove(%s) disagreed with oracle", id)
		}
	}
	checkAgainstOracle(t, db, oracle, rng, side)
	// Stage 3: refill near the emptied corner; grown bounds must cover it.
	for i := 0; i < 100; i++ {
		put(fmt.Sprintf("c%d", i), side-rng.Float64()*30, rng.Float64()*30)
	}
	checkAgainstOracle(t, db, oracle, rng, side)
	// Stage 4: empty the store completely; every query must see nothing.
	var all []core.OID
	db.ForEach(func(s core.Sighting) bool { all = append(all, s.OID); return true })
	for _, id := range all {
		if db.Remove(id) != oracle.Remove(id) {
			t.Fatalf("Remove(%s) disagreed with oracle", id)
		}
	}
	if db.Len() != 0 {
		t.Fatalf("Len = %d after emptying", db.Len())
	}
	if got := collectArea(db, geo.R(0, 0, side, side)); len(got) != 0 {
		t.Fatalf("search on empty store returned %d ids", len(got))
	}
	got := collectNearest(db, geo.Pt(1, 1), 5)
	if len(got) != 0 {
		t.Fatalf("nearest on empty store returned %d entries", len(got))
	}
}

// TestSweepExpiredShardRotationFairness: successive small-budget sweeps
// must visit every shard before revisiting one — the rotating start cursor
// is what keeps a budget smaller than the shard count from starving the
// tail shards. One expired record per shard, budget 1: each of the first N
// calls must surface a new shard's record.
func TestSweepExpiredShardRotationFairness(t *testing.T) {
	now := time.Date(2026, 7, 28, 10, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	const shards = 8
	db := NewShardedSightingDB(WithShards(shards), WithTTL(time.Second), WithClock(clock))

	// Exactly one record per shard, found by probing ids.
	perShard := make(map[int]core.OID)
	for i := 0; len(perShard) < shards; i++ {
		id := core.OID(fmt.Sprintf("f%d", i))
		sh := db.ShardFor(id)
		if _, ok := perShard[sh]; ok {
			continue
		}
		perShard[sh] = id
		db.Put(sighting(string(id), float64(sh), 0))
	}
	mu.Lock()
	now = now.Add(time.Minute)
	mu.Unlock()

	seen := map[core.OID]int{}
	for call := 1; call <= shards; call++ {
		ids := db.SweepExpired(1)
		if len(ids) != 1 {
			t.Fatalf("call %d: SweepExpired(1) returned %d ids, want 1", call, len(ids))
		}
		seen[ids[0]]++
		if len(seen) != call {
			t.Fatalf("call %d revisited a shard before covering all: %d distinct ids so far (%v)", call, len(seen), seen)
		}
	}
	if len(seen) != shards {
		t.Fatalf("after %d unit-budget sweeps, %d shards covered", shards, len(seen))
	}
	// The next full rotation revisits each exactly once more.
	for call := 0; call < shards; call++ {
		for _, id := range db.SweepExpired(1) {
			seen[id]++
		}
	}
	for id, n := range seen {
		if n != 2 {
			t.Errorf("shard of %s swept %d times over two rotations, want 2", id, n)
		}
	}
}
