package store

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/spatial"
)

// This file implements the tiered (LSM) mode of ShardedSightingDB: each
// shard's in-memory state is the memtable of a small per-shard LSM tree
// whose immutable sorted runs live on disk (run.go) under a per-shard
// manifest (manifest.go). See the package comment for the full spec.

// TierConfig enables and tunes tiered sighting storage. Zero-valued
// fields take the defaults noted below. The shard count is fixed while
// tiering is enabled (Resize returns an error): run files and manifests
// are per-shard and do not migrate.
type TierConfig struct {
	// Dir holds the run files and manifests. With an attached sighting
	// WAL it defaults to the WAL's directory (run/manifest names cannot
	// collide with segment names); without one it must be set.
	Dir string
	// MemtableBytes is the total memtable budget across all shards
	// (estimated resident bytes of live entries and tombstones). A shard
	// exceeding its share is flushed by MaintainTiers; at twice its share
	// the update path flushes inline (backpressure). Default 64 MiB.
	MemtableBytes int64
	// MaxRuns is the per-shard run count beyond which MaintainTiers
	// compacts the shard's runs into one. Default 4.
	MaxRuns int
	// BloomBitsPerKey sizes each run's bloom filter. Default 10
	// (≈1% false positives).
	BloomBitsPerKey int
}

func (c TierConfig) withDefaults() TierConfig {
	if c.MemtableBytes <= 0 {
		c.MemtableBytes = 64 << 20
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 4
	}
	if c.BloomBitsPerKey <= 0 {
		c.BloomBitsPerKey = 10
	}
	return c
}

// tierState is the store-level tiering state: configuration, counters,
// and the background-recovery gate.
type tierState struct {
	cfg    TierConfig
	budget int64 // per-shard soft memtable budget

	flushes     atomic.Int64
	compactions atomic.Int64
	bloomHits   atomic.Int64
	bloomMisses atomic.Int64
	errs        atomic.Int64

	// warmed flips once recovery (synchronous or background) has replayed
	// every shard's WAL tail; MaintainTiers is a no-op before that.
	warmed  atomic.Bool
	warming atomic.Bool
	warmWG  sync.WaitGroup
	warmMu  sync.Mutex
	warmErr error
}

// shardTier is one shard's run list. runs (newest first) is replaced
// copy-on-write under the shard's write lock and read under either lock;
// nextSeq is reserved atomically so an inline flush and a concurrent
// compaction never allocate the same run name.
type shardTier struct {
	dir     string
	shard   int
	nextSeq atomic.Uint64
	runs    []*tierRun
}

// TierStats is a point-in-time snapshot of the tiering machinery,
// surfaced through server diagnostics (DiagRes) and lsctl stats.
type TierStats struct {
	Enabled       bool
	Warm          bool  // recovery finished; maintenance active
	MemtableBytes int64 // estimated resident memtable bytes, all shards
	Runs          int   // run files across all shards
	RunBytes      int64 // run file bytes on disk
	MetaBytes     int64 // resident run metadata (blooms + sparse indexes)
	DiskRecords   int64 // records in runs, tombstones included
	DiskLive      int64 // live (non-tombstone) records in runs
	Flushes       int64
	Compactions   int64
	BloomHits     int64 // run probes admitted by a bloom filter
	BloomMisses   int64 // run probes skipped by a bloom filter
	Backlog       int   // shards over the MaxRuns compaction threshold
}

// Tiered reports whether tiered storage is configured.
func (db *ShardedSightingDB) Tiered() bool { return db.tier != nil }

// memCost estimates the resident cost of one live memtable entry (hash
// bucket, entry struct, index node); tombCost of one tombstone. Rough by
// design — the budget bounds order of magnitude, not bytes.
func memCost(id core.OID) int64  { return int64(len(id))*2 + 160 }
func tombCost(id core.OID) int64 { return int64(len(id)) + 48 }

// tierManifestFor builds the manifest describing runs (newest first).
func tierManifestFor(shard int, nextSeq uint64, runs []*tierRun) tierManifest {
	names := make([]string, len(runs))
	for i, r := range runs {
		names[i] = filepath.Base(r.path)
	}
	return tierManifest{Shard: shard, NextSeq: nextSeq, Runs: names}
}

// openTiers loads every shard's manifest, sweeps crash leftovers
// (temporaries and unreferenced runs), opens the referenced runs'
// metadata and attaches the tiers to the shards. Called by the Recover
// paths before any WAL replay; cost is O(run metadata), not O(data).
func (db *ShardedSightingDB) openTiers() error {
	ts := db.tier
	if ts == nil {
		return nil
	}
	dir := ts.cfg.Dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: creating tier dir %s: %w", dir, err)
	}
	g := db.gen.Load()
	n := len(g.shards)
	referenced := make(map[string]bool)
	manifests := make([]tierManifest, n)
	for i := 0; i < n; i++ {
		m, _, err := loadManifest(dir, i)
		if err != nil {
			return err
		}
		manifests[i] = m
		for _, name := range m.Runs {
			referenced[name] = true
		}
	}
	if err := sweepTierLeftovers(dir, n, referenced); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		t := &shardTier{dir: dir, shard: i}
		t.nextSeq.Store(manifests[i].NextSeq)
		for _, name := range manifests[i].Runs {
			r, err := openRun(filepath.Join(dir, name))
			if err != nil {
				for _, prev := range t.runs {
					prev.retire(false)
				}
				return fmt.Errorf("store: opening tier shard %d: %w", i, err)
			}
			t.runs = append(t.runs, r)
		}
		sh := g.shards[i]
		sh.mu.Lock()
		sh.tier = t
		if sh.dead == nil {
			sh.dead = make(map[core.OID]struct{})
		}
		sh.mu.Unlock()
	}
	return nil
}

// flushShardLocked freezes the shard's memtable into a new sorted run:
// write the run file (atomic rename + dir fsync), install it at the head
// of the manifest (atomic rename + dir fsync — the commit point), clear
// the memtable, and reset the shard's WAL segment to empty. The caller
// holds the shard's write lock for the whole call, so the run is a
// consistent snapshot and no append can slip between the segment drain
// and the rewrite.
//
// Crash ordering: a crash before the manifest rename leaves an orphan
// run (swept at the next open) and an intact WAL — recovery replays the
// full memtable. A crash after the manifest rename but before the WAL
// reset replays a tail duplicating the newest run's content — idempotent,
// since the memtable it rebuilds shadows those exact records. Flushes
// emit no deltas: the store's logical content is unchanged.
func (db *ShardedSightingDB) flushShardLocked(sh *sightingShard, shard int) error {
	t := sh.tier
	if t == nil || (len(sh.byID) == 0 && len(sh.dead) == 0) {
		return nil
	}
	recs := make([]runRecord, 0, len(sh.byID)+len(sh.dead))
	for _, e := range sh.byID {
		recs = append(recs, runRecord{s: e.s, expires: e.expires})
	}
	for id := range sh.dead {
		recs = append(recs, runRecord{s: core.Sighting{OID: id}, tombstone: true})
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].s.OID < recs[b].s.OID })

	seq := t.nextSeq.Add(1) - 1
	name := runFileName(shard, seq)
	w, err := newRunWriter(t.dir, name, db.tier.cfg.BloomBitsPerKey)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := w.add(rec); err != nil {
			w.abort()
			return err
		}
	}
	if err := w.finish(); err != nil {
		return err
	}
	run, err := openRun(filepath.Join(t.dir, name))
	if err != nil {
		os.Remove(filepath.Join(t.dir, name))
		return err
	}
	newRuns := make([]*tierRun, 0, len(t.runs)+1)
	newRuns = append(newRuns, run)
	newRuns = append(newRuns, t.runs...)
	if err := saveManifest(t.dir, tierManifestFor(shard, t.nextSeq.Load(), newRuns)); err != nil {
		run.retire(true)
		return err
	}
	t.runs = newRuns
	db.tier.flushes.Add(1)

	// The manifest rename committed: reset the memtable.
	sh.byID = make(map[core.OID]*sightingEntry)
	sh.dead = make(map[core.OID]struct{})
	sh.idx = db.newIndex()
	sh.items, _ = sh.idx.(spatial.ItemIndex)
	sh.nonempty = false
	sh.stale = 0
	sh.memBytes = 0
	sh.sweepKeys = nil
	sh.sweepPos = 0

	// Empty the WAL segment — the tail now covers only the (empty)
	// memtable. Best-effort: on failure the segment still replays to
	// content the new run shadows record-for-record.
	if db.wal != nil && db.wal.Err() == nil {
		if err := db.wal.CompactShard(shard, nil); err != nil {
			db.tier.errs.Add(1)
			return fmt.Errorf("store: resetting WAL segment after flush of shard %d: %w", shard, err)
		}
	}
	// Notify replication after the segment drain: every put the new run
	// covers has been teed to the standby by the time the drain's barrier
	// released, so a ClearMem record enqueued now is ordered after them.
	db.notifyRepl(shard, newRuns, t.nextSeq.Load(), true)
	return nil
}

// compactShardTier merges the shard's current runs (snapshotted under the
// read lock) into one, dropping superseded versions, tombstones and
// long-expired records, then atomically swaps the manifest. Readers never
// block: the merge reads immutable pinned runs off-lock, and only the
// final list swap takes the shard's write lock. Flushes racing the merge
// only prepend runs, so the snapshot stays the exact suffix of the list.
// The caller holds resizeMu, serializing compactions against each other
// and against WAL-layout changes.
func (db *ShardedSightingDB) compactShardTier(sh *sightingShard, shard int) error {
	sh.mu.RLock()
	t := sh.tier
	if sh.moved || t == nil || len(t.runs) < 2 {
		sh.mu.RUnlock()
		return nil
	}
	snap := make([]*tierRun, len(t.runs))
	copy(snap, t.runs)
	for _, r := range snap {
		r.acquire() // cannot fail: the manifest reference is alive under the lock
	}
	seq := t.nextSeq.Add(1) - 1
	sh.mu.RUnlock()

	releaseSnap := func() {
		for _, r := range snap {
			r.release()
		}
	}
	merged, err := db.mergeRuns(t, seq, snap, db.clock())
	if err != nil {
		releaseSnap()
		return err
	}

	sh.mu.Lock()
	if sh.moved || len(t.runs) < len(snap) {
		sh.mu.Unlock()
		if merged != nil {
			merged.retire(true)
		}
		releaseSnap()
		return nil
	}
	keep := t.runs[:len(t.runs)-len(snap)] // runs flushed since the snapshot
	newRuns := make([]*tierRun, 0, len(keep)+1)
	newRuns = append(newRuns, keep...)
	if merged != nil {
		newRuns = append(newRuns, merged)
	}
	if err := saveManifest(t.dir, tierManifestFor(shard, t.nextSeq.Load(), newRuns)); err != nil {
		sh.mu.Unlock()
		if merged != nil {
			merged.retire(true)
		}
		releaseSnap()
		return err
	}
	t.runs = newRuns
	db.notifyRepl(shard, newRuns, t.nextSeq.Load(), false)
	sh.mu.Unlock()
	for _, r := range snap {
		r.retire(true) // off the manifest: delete once in-flight readers finish
	}
	releaseSnap()
	db.tier.compactions.Add(1)
	return nil
}

// mergeRuns k-way-merges snap (newest first) into one run named seq.
// Per object only the newest version survives; tombstones are dropped
// outright (the merge covers the shard's whole run set, so there is
// nothing older left to shadow); records expired for more than one full
// TTL are dropped too — the extra TTL of slack guarantees the janitor's
// Expired scan observed them (and tore down dependent server state)
// before they vanish. Returns nil when every record was dropped.
func (db *ShardedSightingDB) mergeRuns(t *shardTier, seq uint64, snap []*tierRun, now time.Time) (*tierRun, error) {
	iters := make([]*runIterator, len(snap))
	heads := make([]runRecord, len(snap))
	valid := make([]bool, len(snap))
	for i, r := range snap {
		iters[i] = r.iter()
		heads[i], valid[i] = iters[i].next()
	}
	var expireCutoff time.Time
	if db.ttl > 0 {
		expireCutoff = now.Add(-db.ttl)
	}
	name := runFileName(t.shard, seq)
	w, err := newRunWriter(t.dir, name, db.tier.cfg.BloomBitsPerKey)
	if err != nil {
		return nil, err
	}
	for {
		best := -1
		for i := range snap {
			if valid[i] && (best == -1 || heads[i].s.OID < heads[best].s.OID) {
				best = i // ties keep the lower index: the newer run wins
			}
		}
		if best == -1 {
			break
		}
		rec := heads[best]
		oid := rec.s.OID
		for i := range snap {
			for valid[i] && heads[i].s.OID == oid {
				heads[i], valid[i] = iters[i].next()
			}
		}
		if rec.tombstone {
			continue
		}
		if db.ttl > 0 && !rec.expires.IsZero() && rec.expires.Before(expireCutoff) {
			continue
		}
		if err := w.add(rec); err != nil {
			w.abort()
			return nil, err
		}
	}
	for i := range snap {
		if err := iters[i].error(); err != nil {
			w.abort()
			return nil, err
		}
	}
	if w.count == 0 {
		w.abort()
		return nil, nil
	}
	if err := w.finish(); err != nil {
		return nil, err
	}
	return openRun(filepath.Join(t.dir, name))
}

// tierLookup walks the shard's runs newest to oldest for id, gated by
// key range and bloom filter, and returns the newest on-disk version
// (possibly a tombstone — the caller interprets). The caller holds the
// shard lock (either mode) and has already consulted the memtable.
func (sh *sightingShard) tierLookup(ts *tierState, id core.OID) (runRecord, bool) {
	t := sh.tier
	if t == nil {
		return runRecord{}, false
	}
	key := string(id)
	for _, r := range t.runs {
		if r.count == 0 || id < r.minOID || id > r.maxOID {
			continue
		}
		if !r.bloom.mayContain(key) {
			ts.bloomMisses.Add(1)
			continue
		}
		ts.bloomHits.Add(1)
		rec, ok, err := r.get(id)
		if err != nil {
			ts.errs.Add(1)
			continue
		}
		if ok {
			return rec, true
		}
	}
	return runRecord{}, false
}

// runsNewerHave reports whether any run newer than index k contains id
// (live or tombstone) — the shadow check of pruned run scans.
func (sh *sightingShard) runsNewerHave(ts *tierState, id core.OID, k int) bool {
	t := sh.tier
	key := string(id)
	for _, r := range t.runs[:k] {
		if r.count == 0 || id < r.minOID || id > r.maxOID {
			continue
		}
		if !r.bloom.mayContain(key) {
			ts.bloomMisses.Add(1)
			continue
		}
		ts.bloomHits.Add(1)
		if _, ok, err := r.get(id); err != nil {
			ts.errs.Add(1)
		} else if ok {
			return true
		}
	}
	return false
}

// tierScanAll streams every authoritative on-disk record of the shard —
// newest-first run order with a seen-set, skipping tombstones and ids
// the memtable owns (live or tombstoned) — through visit. Full
// enumeration only (ForEach, Expired): the seen-set makes first
// occurrence authoritative, which requires scanning every run. Caller
// holds the shard lock; reports false if visit stopped the scan.
func (sh *sightingShard) tierScanAll(ts *tierState, visit func(rec runRecord) bool) bool {
	t := sh.tier
	if t == nil || len(t.runs) == 0 {
		return true
	}
	var seen map[core.OID]struct{}
	if len(t.runs) > 1 {
		seen = make(map[core.OID]struct{})
	}
	for _, r := range t.runs {
		if r.count == 0 {
			continue
		}
		stopped := false
		err := r.scan(func(rec runRecord) bool {
			id := rec.s.OID
			if seen != nil {
				if _, ok := seen[id]; ok {
					return true
				}
				seen[id] = struct{}{}
			}
			if rec.tombstone {
				return true
			}
			if _, ok := sh.byID[id]; ok {
				return true
			}
			if _, ok := sh.dead[id]; ok {
				return true
			}
			if !visit(rec) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			ts.errs.Add(1)
		}
		if stopped {
			return false
		}
	}
	return true
}

// tierScanPruned streams authoritative on-disk records from only the
// runs prune admits (e.g. by MBR against a query rectangle). Because
// pruned runs may hide an object's newer version, authority is checked
// per candidate with a bloom-gated probe of the newer runs instead of a
// seen-set. Caller holds the shard lock; reports false if visit stopped.
func (sh *sightingShard) tierScanPruned(ts *tierState, prune func(*tierRun) bool, visit func(rec runRecord) bool) bool {
	t := sh.tier
	if t == nil || len(t.runs) == 0 {
		return true
	}
	for k, r := range t.runs {
		if r.count == 0 || r.live == 0 || (prune != nil && !prune(r)) {
			continue
		}
		stopped := false
		err := r.scan(func(rec runRecord) bool {
			if rec.tombstone {
				return true
			}
			id := rec.s.OID
			if _, ok := sh.byID[id]; ok {
				return true
			}
			if _, ok := sh.dead[id]; ok {
				return true
			}
			if k > 0 && sh.runsNewerHave(ts, id, k) {
				return true
			}
			if !visit(rec) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			ts.errs.Add(1)
		}
		if stopped {
			return false
		}
	}
	return true
}

// tierNearestSource builds the nearest-neighbor merge source covering
// the shard's disk runs: MinDist is the closest distance any run's MBR
// permits, so the lazy merge never opens (or reads) the runs of a shard
// whose disk content lies beyond the consumer's stopping distance. When
// opened, the cursor materializes the shard's authoritative run records
// and sorts them by distance — runs are id-ordered, not space-ordered,
// so a distance-ordered stream over them costs one pass over the run
// bytes; acceptable because NN queries are rare next to updates and the
// MinDist gate skips the cost entirely for hot-area queries.
func (db *ShardedSightingDB) tierNearestSource(sh *sightingShard, p geo.Point) (spatial.CursorSource, bool) {
	sh.mu.RLock()
	t := sh.tier
	minDist := math.Inf(1)
	if t != nil {
		for _, r := range t.runs {
			if r.live == 0 {
				continue
			}
			if d := r.mbr.DistToPoint(p); d < minDist {
				minDist = d
			}
		}
	}
	sh.mu.RUnlock()
	if math.IsInf(minDist, 1) {
		return spatial.CursorSource{}, false
	}
	return spatial.CursorSource{MinDist: minDist, Open: func() spatial.Cursor {
		var ns []spatial.Neighbor
		sh.mu.RLock()
		sh.tierScanAll(db.tier, func(rec runRecord) bool {
			ns = append(ns, spatial.Neighbor{ID: rec.s.OID, Pos: rec.s.Pos, Dist: p.Dist(rec.s.Pos)})
			return true
		})
		sh.mu.RUnlock()
		sort.Slice(ns, func(i, j int) bool { return ns[i].Dist < ns[j].Dist })
		return &sliceCursor{ns: ns}
	}}, true
}

// sliceCursor streams a pre-sorted neighbor slice.
type sliceCursor struct {
	ns  []spatial.Neighbor
	pos int
}

func (c *sliceCursor) Next() (spatial.Neighbor, bool) {
	if c.pos >= len(c.ns) {
		return spatial.Neighbor{}, false
	}
	n := c.ns[c.pos]
	c.pos++
	return n, true
}

func (c *sliceCursor) Close() {}

// MaintainTiers runs one maintenance pass: flush every shard whose
// memtable exceeds its budget share, then compact every shard whose run
// count exceeds MaxRuns. It replaces CompactWALIfGrown on tiered stores
// and is likewise cheap when nothing grew and safe on every janitor
// tick. A pass is skipped while recovery is still warming the memtables
// or while another maintenance/compaction pass holds the resize lock.
func (db *ShardedSightingDB) MaintainTiers() error {
	ts := db.tier
	if ts == nil || !ts.warmed.Load() || db.replStandby.Load() {
		// A standby never restructures its tier on its own: its run list
		// mirrors the primary's and changes only through ReplInstallRuns /
		// ReplInstallSnapshot.
		return nil
	}
	if !db.resizeMu.TryLock() {
		return nil
	}
	defer db.resizeMu.Unlock()
	g := db.gen.Load()
	var errs []error
	for i := range g.shards {
		sh := g.shards[i]
		sh.mu.RLock()
		hasTier := sh.tier != nil
		over := hasTier && sh.memBytes > ts.budget
		sh.mu.RUnlock()
		if !hasTier {
			continue
		}
		if over {
			sh.lockWrite()
			var err error
			if !sh.moved {
				err = db.flushShardLocked(sh, i)
			}
			sh.mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				continue
			}
		}
		sh.mu.RLock()
		needCompact := len(sh.tier.runs) > ts.cfg.MaxRuns
		sh.mu.RUnlock()
		if needCompact {
			if err := db.compactShardTier(sh, i); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// maybeFlushBackpressure flushes the shard inline when its memtable has
// run past twice its budget share — the hard bound that keeps resident
// memory within the configured budget even if the janitor falls behind
// the update rate. Called on the put path with the shard's write lock
// held; best-effort (the put itself already committed).
func (db *ShardedSightingDB) maybeFlushBackpressure(sh *sightingShard, shard int) {
	ts := db.tier
	if ts == nil || sh.tier == nil || sh.memBytes <= 2*ts.budget || db.replStandby.Load() {
		return
	}
	if err := db.flushShardLocked(sh, shard); err != nil {
		ts.errs.Add(1)
	}
}

// TierStats snapshots the tiering machinery. Zero-valued (Enabled false)
// on untiiered stores.
func (db *ShardedSightingDB) TierStats() TierStats {
	ts := db.tier
	if ts == nil {
		return TierStats{}
	}
	out := TierStats{
		Enabled:     true,
		Warm:        ts.warmed.Load(),
		Flushes:     ts.flushes.Load(),
		Compactions: ts.compactions.Load(),
		BloomHits:   ts.bloomHits.Load(),
		BloomMisses: ts.bloomMisses.Load(),
	}
	for _, sh := range db.gen.Load().shards {
		sh.mu.RLock()
		out.MemtableBytes += sh.memBytes
		if sh.tier != nil {
			out.Runs += len(sh.tier.runs)
			if len(sh.tier.runs) > ts.cfg.MaxRuns {
				out.Backlog++
			}
			for _, r := range sh.tier.runs {
				out.DiskRecords += r.count
				out.DiskLive += r.live
				out.RunBytes += r.size
				out.MetaBytes += r.metaBytes()
			}
		}
		sh.mu.RUnlock()
	}
	return out
}
