package store

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"time"

	"locsvc/internal/core"
)

// walTimeMemo caches the most recent timestamp encoding. Group-commit
// records cluster in time — a batch often shares one sighting timestamp,
// and a writer's drain spans milliseconds — so the RFC 3339 formatting
// (the single most expensive piece of the encode) is usually a copy.
type walTimeMemo struct {
	last time.Time
	text []byte
}

// appendWALRecordJSON appends rec's JSON-lines encoding (including the
// trailing newline) to dst. Sighting records — the per-update hot path of
// the asynchronous appender — are encoded by hand an order of magnitude
// cheaper than encoding/json; everything else falls back to the standard
// marshaler. memo (optional) carries the timestamp cache across calls. The
// output is plain JSON that Replay's json.Unmarshal reads back
// identically, property-tested against the standard encoding in
// TestWALRecordEncodingRoundTrip.
func appendWALRecordJSON(dst []byte, rec WALRecord, memo *walTimeMemo) ([]byte, error) {
	switch rec.Op {
	case WALSightingRemove:
		if rec.Visitor == nil && rec.Sightings == nil {
			dst = append(dst, `{"op":"sremove","oid":`...)
			dst = appendJSONString(dst, string(rec.OID))
			return append(dst, '}', '\n'), nil
		}
	case WALSightingBatch:
		if rec.Visitor == nil && rec.OID == "" {
			return appendSightingBatchJSON(dst, rec.Sightings, memo)
		}
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return dst, fmt.Errorf("store: marshaling WAL record: %w", err)
	}
	return append(append(dst, data...), '\n'), nil
}

// appendSightingBatchJSON encodes one WALSightingBatch record.
func appendSightingBatchJSON(dst []byte, batch []core.Sighting, memo *walTimeMemo) ([]byte, error) {
	mark := len(dst)
	dst = append(dst, `{"op":"sbatch","sightings":[`...)
	for i, s := range batch {
		if i > 0 {
			dst = append(dst, ',')
		}
		if !isFinite(s.Pos.X) || !isFinite(s.Pos.Y) || !isFinite(s.SensAcc) {
			return dst[:mark], fmt.Errorf("store: marshaling WAL record: non-finite coordinate in sighting %s", s.OID)
		}
		if y := s.T.Year(); y < 0 || y >= 10000 {
			return dst[:mark], fmt.Errorf("store: marshaling WAL record: timestamp year %d of sighting %s outside JSON range", y, s.OID)
		}
		dst = append(dst, `{"OID":`...)
		dst = appendJSONString(dst, string(s.OID))
		dst = append(dst, `,"T":"`...)
		if memo != nil {
			// == (not Equal): a cache hit must reproduce the exact
			// serialization, so the zone has to match too.
			if s.T != memo.last || len(memo.text) == 0 {
				memo.last = s.T
				memo.text = s.T.AppendFormat(memo.text[:0], time.RFC3339Nano)
			}
			dst = append(dst, memo.text...)
		} else {
			dst = s.T.AppendFormat(dst, time.RFC3339Nano)
		}
		dst = append(dst, `","Pos":{"X":`...)
		dst = strconv.AppendFloat(dst, s.Pos.X, 'g', -1, 64)
		dst = append(dst, `,"Y":`...)
		dst = strconv.AppendFloat(dst, s.Pos.Y, 'g', -1, 64)
		dst = append(dst, `},"SensAcc":`...)
		dst = strconv.AppendFloat(dst, s.SensAcc, 'g', -1, 64)
		dst = append(dst, '}')
	}
	return append(dst, ']', '}', '\n'), nil
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// appendJSONString appends s as a quoted JSON string. Object ids are almost
// always plain ASCII, so the common case is a straight copy; anything that
// needs escaping takes the per-rune slow path.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"':
			dst = append(dst, '\\', '"')
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			dst = append(dst, fmt.Sprintf(`\u%04x`, c)...)
		}
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
