package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/spatial"
)

func TestNormalizeShards(t *testing.T) {
	for _, tc := range []struct {
		in, want int
		wantErr  bool
	}{
		{in: -1, wantErr: true},
		{in: -100, wantErr: true},
		{in: 0, want: 1},
		{in: 1, want: 1},
		{in: 64, want: 64},
	} {
		got, err := NormalizeShards(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("NormalizeShards(%d) = %d, want error", tc.in, got)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("NormalizeShards(%d) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
}

// TestResizeQuiescent drives grow and shrink resizes on a quiescent store
// and checks every query surface against the single-lock oracle after each
// step, plus the epoch counter and the shard-count invariants.
func TestResizeQuiescent(t *testing.T) {
	const side = 1000.0
	rng := rand.New(rand.NewSource(3))
	db := NewShardedSightingDB(WithShards(4))
	oracle := NewSightingDB(WithIndex(spatial.KindLinear))
	for i := 0; i < 500; i++ {
		s := sighting(fmt.Sprintf("o%d", i), rng.Float64()*side, rng.Float64()*side)
		db.Put(s)
		oracle.Put(s)
	}
	if db.Epoch() != 0 {
		t.Fatalf("fresh store epoch = %d", db.Epoch())
	}
	for step, n := range []int{8, 3, 16, 1, 6} {
		if err := db.Resize(n); err != nil {
			t.Fatalf("Resize(%d): %v", n, err)
		}
		if db.NumShards() != n {
			t.Fatalf("NumShards = %d after Resize(%d)", db.NumShards(), n)
		}
		if got, want := db.Epoch(), uint64(step+1); got != want {
			t.Fatalf("epoch = %d after resize %d, want %d", got, step, want)
		}
		checkAgainstOracle(t, db, oracle, rng, side)
		// Mutations after the resize must land in the new layout.
		s := sighting(fmt.Sprintf("post%d", step), rng.Float64()*side, rng.Float64()*side)
		db.Put(s)
		oracle.Put(s)
		id := core.OID(fmt.Sprintf("o%d", rng.Intn(500)))
		if db.Remove(id) != oracle.Remove(id) {
			t.Fatalf("Remove(%s) disagreed with oracle after resize", id)
		}
		checkAgainstOracle(t, db, oracle, rng, side)
	}
	if err := db.Resize(-2); err == nil {
		t.Fatal("Resize(-2) succeeded")
	}
	if err := db.Resize(0); err != nil || db.NumShards() != 1 {
		t.Fatalf("Resize(0) = %v, shards %d; want default 1", err, db.NumShards())
	}
}

// TestResizeOracleStress is the adversarial acceptance test of the live
// resize protocol: concurrent updaters (disjoint object sets, so final
// per-object state is deterministic), removers, range, NN and expiry-path
// readers hammer the store while the main goroutine drives it through
// grow and shrink resizes. Queries racing the migration must never see an
// object twice, never see a frozen (quiescent) object missing, and NN
// streams must stay distance-monotone. After quiescing, every query
// surface must match the single-lock oracle exactly.
func TestResizeOracleStress(t *testing.T) {
	const (
		side    = 1000.0
		workers = 6
	)
	perWorker := 40
	rounds := 60
	resizes := []int{8, 2, 12, 5}
	if testing.Short() {
		perWorker, rounds = 15, 20
		resizes = []int{8, 2, 5}
	}

	db := NewShardedSightingDB(WithShards(4), WithTTL(time.Hour))
	pipe := NewUpdatePipeline(db)

	// Frozen objects are written once before the chaos and never touched
	// again: any range query that misses one caught a hole in the epoch
	// protocol, whatever the timing.
	const frozen = 25
	frozenRect := geo.R(side+10, side+10, side+90, side+90) // outside the workers' area
	for i := 0; i < frozen; i++ {
		db.Put(sighting(fmt.Sprintf("frozen%d", i), side+10+float64(i*3), side+50))
	}

	final := make([]core.Sighting, workers*perWorker)
	removed := make([]atomic.Bool, workers*perWorker)
	stop := make(chan struct{})
	var mutWG, readWG sync.WaitGroup

	// Mutators: pipeline puts, direct batches, removals, touches.
	for w := 0; w < workers; w++ {
		mutWG.Add(1)
		go func(w int) {
			defer mutWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				switch rng.Intn(4) {
				case 0, 1:
					for i := 0; i < perWorker; i++ {
						idx := w*perWorker + i
						s := sighting(fmt.Sprintf("o%d", idx), rng.Float64()*side, rng.Float64()*side)
						pipe.Put(s)
						final[idx] = s
						removed[idx].Store(false)
					}
				case 2:
					batch := make([]core.Sighting, perWorker)
					for i := range batch {
						idx := w*perWorker + i
						batch[i] = sighting(fmt.Sprintf("o%d", idx), rng.Float64()*side, rng.Float64()*side)
						final[idx] = batch[i]
						removed[idx].Store(false)
					}
					db.PutBatch(batch)
				case 3:
					idx := w*perWorker + rng.Intn(perWorker)
					db.Remove(core.OID(fmt.Sprintf("o%d", idx)))
					removed[idx].Store(true)
				}
			}
		}(w)
	}

	// Readers: range queries over the frozen rectangle (no-miss, no-dup),
	// full-area searches (no-dup), NN streams (monotone, no-dup), and the
	// expiry observation paths.
	readErr := make(chan string, 8)
	report := func(msg string) {
		select {
		case readErr <- msg:
		default:
		}
	}
	for q := 0; q < 3; q++ {
		readWG.Add(1)
		go func(q int) {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(int64(1000 + q)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				seen := make(map[core.OID]bool)
				db.SearchArea(frozenRect, func(s core.Sighting) bool {
					if seen[s.OID] {
						report(fmt.Sprintf("range query saw %s twice", s.OID))
					}
					seen[s.OID] = true
					return true
				})
				found := 0
				for id := range seen {
					if strings.HasPrefix(string(id), "frozen") {
						found++
					}
				}
				if found != frozen {
					report(fmt.Sprintf("range query saw %d/%d frozen objects", found, frozen))
				}

				seen = make(map[core.OID]bool)
				db.SearchArea(geo.R(0, 0, 2*side, 2*side), func(s core.Sighting) bool {
					if seen[s.OID] {
						report(fmt.Sprintf("full-area query saw %s twice", s.OID))
					}
					seen[s.OID] = true
					return true
				})

				// NN under concurrent mutation is a best-effort stream (a
				// concurrently updated entry may be yielded at both its
				// positions, resize or not — the documented cursor
				// contract), so only the distance-monotonicity guarantee
				// is asserted here; exact-set equality is checked after
				// quiescing.
				last := -1.0
				count := 0
				db.NearestFunc(geo.Pt(rng.Float64()*side, rng.Float64()*side), func(s core.Sighting, dist float64) bool {
					if dist < last {
						report(fmt.Sprintf("NN stream went backwards: %g after %g", dist, last))
					}
					last = dist
					count++
					return count < 50
				})

				db.SweepExpired(32)
				if ids := db.Expired(); len(ids) != 0 {
					report(fmt.Sprintf("Expired found %d ids under a 1h TTL", len(ids)))
				}
				db.Get(core.OID(fmt.Sprintf("o%d", rng.Intn(workers*perWorker))))
			}
		}(q)
	}

	// The resize driver: at least three live resizes, growing and
	// shrinking, racing everything above.
	for _, n := range resizes {
		time.Sleep(2 * time.Millisecond)
		if err := db.Resize(n); err != nil {
			t.Fatalf("Resize(%d): %v", n, err)
		}
	}

	// Let mutators finish, then stop the readers.
	mutWG.Wait()
	close(stop)
	readWG.Wait()
	select {
	case msg := <-readErr:
		t.Fatal(msg)
	default:
	}

	if got, want := db.NumShards(), resizes[len(resizes)-1]; got != want {
		t.Fatalf("NumShards = %d, want %d", got, want)
	}

	// Quiesced: the store must now equal the single-lock oracle built
	// from the deterministic final states.
	oracle := NewSightingDB(WithIndex(spatial.KindLinear))
	for i := 0; i < frozen; i++ {
		oracle.Put(sighting(fmt.Sprintf("frozen%d", i), side+10+float64(i*3), side+50))
	}
	for idx, s := range final {
		if s.OID != "" && !removed[idx].Load() {
			oracle.Put(s)
		}
	}
	checkAgainstOracle(t, db, oracle, rand.New(rand.NewSource(99)), side)
}

// TestResizeExpiryAcrossResize: soft-state expiry must survive a resize —
// records carried into the new generation keep their expiration dates, and
// both the full scan and the budgeted sweep find them through the new
// mapping.
func TestResizeExpiryAcrossResize(t *testing.T) {
	now := time.Date(2026, 7, 28, 10, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	db := NewShardedSightingDB(WithShards(4), WithTTL(30*time.Second), WithClock(clock))
	for i := 0; i < 64; i++ {
		db.Put(sighting(fmt.Sprintf("o%d", i), float64(i), float64(i)))
	}
	mu.Lock()
	now = now.Add(20 * time.Second)
	mu.Unlock()
	db.Put(sighting("o3", 3, 3)) // refreshed: survives the first expiry wave

	if err := db.Resize(10); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(20 * time.Second)
	mu.Unlock()
	if got := db.Expired(); len(got) != 63 {
		t.Errorf("Expired after resize found %d, want 63", len(got))
	}
	found := map[core.OID]bool{}
	for i := 0; i < 40; i++ {
		for _, id := range db.SweepExpired(8) {
			found[id] = true
		}
	}
	if len(found) != 63 || found["o3"] {
		t.Errorf("sweep after resize found %d (o3: %v), want 63 without o3", len(found), found["o3"])
	}
	for id := range found {
		if !db.RemoveExpired(id) {
			t.Errorf("RemoveExpired(%s) failed after resize", id)
		}
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d after expiring, want 1 (o3)", db.Len())
	}
}

// TestResizeWALRecovery: a resize re-cuts the persistent log under the new
// mapping (epoch-stamped segments); a crash after further mutations must
// recover — through the new layout — to exactly the live set, and the
// reopened WAL must remember the resized count regardless of what count
// the operator passes.
func TestResizeWALRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenShardedWAL(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	db := NewShardedSightingDB(WithSightingWAL(w))
	oracle := sightingOracle{}
	put := func(id string, x, y float64) {
		s := sighting(id, x, y)
		db.Put(s)
		oracle[s.OID] = s
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		put(fmt.Sprintf("pre%d", i), rng.Float64()*500, rng.Float64()*500)
	}
	for i := 0; i < 40; i++ {
		id := core.OID(fmt.Sprintf("pre%d", rng.Intn(200)))
		if db.Remove(id) {
			delete(oracle, id)
		}
	}
	if err := db.Resize(9); err != nil {
		t.Fatal(err)
	}
	if w.Epoch() != 1 || w.NumShards() != 9 {
		t.Fatalf("WAL at epoch %d / %d shards after resize, want 1 / 9", w.Epoch(), w.NumShards())
	}
	// Mutations after the epoch switch land in the new segments.
	for i := 0; i < 100; i++ {
		put(fmt.Sprintf("post%d", i), rng.Float64()*500, rng.Float64()*500)
	}
	for i := 0; i < 30; i++ {
		id := core.OID(fmt.Sprintf("pre%d", rng.Intn(200)))
		if db.Remove(id) {
			delete(oracle, id)
		}
	}
	// Shrink across another boundary, then a little more churn.
	if err := db.Resize(3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		put(fmt.Sprintf("late%d", i), rng.Float64()*500, rng.Float64()*500)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // crash point: no compaction, no store shutdown
		t.Fatal(err)
	}

	// The operator flag says 4; the log knows better.
	w2, err := OpenShardedWAL(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.NumShards() != 3 || w2.Epoch() != 2 {
		t.Fatalf("reopened WAL at %d shards epoch %d, want 3 shards epoch 2", w2.NumShards(), w2.Epoch())
	}
	db2 := NewShardedSightingDB(WithSightingWAL(w2))
	if err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	expectRecovered(t, db2, oracle)
}

// TestResizeWALCrashMidSwitch reconstructs the on-disk state a crash in
// the middle of the per-shard epoch switch leaves behind — some shards
// already on their epoch-1 snapshot segments (with post-switch appends),
// the rest still spread over the epoch-0 layout — and verifies
// OpenShardedWAL folds across the boundary: epoch-1 segments are
// authoritative for their shards, the old segments fill in the rest, and
// the directory comes back single-epoch.
func TestResizeWALCrashMidSwitch(t *testing.T) {
	dir := t.TempDir()
	const oldCount, newCount = 4, 8
	w, err := OpenShardedWAL(dir, oldCount)
	if err != nil {
		t.Fatal(err)
	}
	oracle := sightingOracle{}
	rng := rand.New(rand.NewSource(7))
	var all []core.Sighting
	for i := 0; i < 120; i++ {
		s := sighting(fmt.Sprintf("o%d", i), rng.Float64()*300, rng.Float64()*300)
		all = append(all, s)
		if err := w.AppendPut(spatial.ShardFor(s.OID, oldCount), oldCount, s); err != nil {
			t.Fatal(err)
		}
		oracle[s.OID] = s
	}
	// A removal that must not resurrect.
	gone := all[17].OID
	if err := w.AppendRemove(spatial.ShardFor(gone, oldCount), oldCount, gone); err != nil {
		t.Fatal(err)
	}
	delete(oracle, gone)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Hand-craft the half-switched epoch 1: shards 0..2 of the new layout
	// got their snapshot segments; the snapshot supersedes the old
	// records of their objects, including one object removed only in the
	// new segment and one updated only there.
	switched := map[int]bool{0: true, 1: true, 2: true}
	perShard := make(map[int][]core.Sighting)
	for id, s := range oracle {
		if j := spatial.ShardFor(id, newCount); switched[j] {
			perShard[j] = append(perShard[j], s)
		}
	}
	for j := range switched {
		seg, err := createEpochSegment(dir, j, 1, newCount, perShard[j], false)
		if err != nil {
			t.Fatal(err)
		}
		// Post-switch traffic: an update and a removal that exist only in
		// the new segment.
		for _, s := range perShard[j] {
			up := s
			up.Pos = geo.Pt(up.Pos.X+1, up.Pos.Y+1)
			if err := seg.Append(WALRecord{Op: WALSightingBatch, Sightings: []core.Sighting{up}}); err != nil {
				t.Fatal(err)
			}
			oracle[up.OID] = up
			break
		}
		if len(perShard[j]) > 1 {
			victim := perShard[j][1].OID
			if err := seg.Append(WALRecord{Op: WALSightingRemove, OID: victim}); err != nil {
				t.Fatal(err)
			}
			delete(oracle, victim)
		}
		if err := seg.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// An empty temp file a crashed switch may leave: must be ignored.
	if err := os.WriteFile(segmentPath(dir, 5, 1), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenShardedWAL(dir, oldCount)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.NumShards() != newCount || w2.Epoch() != 1 {
		t.Fatalf("folded WAL at %d shards epoch %d, want %d / 1", w2.NumShards(), w2.Epoch(), newCount)
	}
	db := NewShardedSightingDB(WithSightingWAL(w2))
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	expectRecovered(t, db, oracle)

	// The directory must be single-epoch now: no base-name segments left.
	for i := 0; i < oldCount; i++ {
		if _, err := os.Stat(segmentPath(dir, i, 0)); err == nil {
			t.Errorf("old epoch-0 segment %d survived the fold", i)
		}
	}
	for j := 0; j < newCount; j++ {
		if _, err := os.Stat(segmentPath(dir, j, 1)); err != nil {
			t.Errorf("epoch-1 segment %d missing after the fold: %v", j, err)
		}
	}
	matches, _ := filepath.Glob(filepath.Join(dir, ".wal-*"))
	if len(matches) != 0 {
		t.Errorf("leftover temporaries after fold: %v", matches)
	}
}

// TestResizeWALSyncMode runs a resize + recovery round-trip in the
// synchronous (WithSync) mode, whose append path skips the writer
// goroutines entirely.
func TestResizeWALSyncMode(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenShardedWAL(dir, 2, WithSync())
	if err != nil {
		t.Fatal(err)
	}
	db := NewShardedSightingDB(WithSightingWAL(w))
	oracle := sightingOracle{}
	for i := 0; i < 60; i++ {
		s := sighting(fmt.Sprintf("o%d", i), float64(i), float64(i%7))
		db.Put(s)
		oracle[s.OID] = s
	}
	if err := db.Resize(5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s := sighting(fmt.Sprintf("p%d", i), float64(i), 42)
		db.Put(s)
		oracle[s.OID] = s
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenShardedWAL(dir, 1, WithSync())
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.NumShards() != 5 {
		t.Fatalf("NumShards = %d, want 5", w2.NumShards())
	}
	db2 := NewShardedSightingDB(WithSightingWAL(w2))
	if err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	expectRecovered(t, db2, oracle)
}

// TestPipelineFollowsResize: the update pipeline's lane array must follow
// the store through resizes — puts keep committing and the lane count
// converges to the new shard count.
func TestPipelineFollowsResize(t *testing.T) {
	db := NewShardedSightingDB(WithShards(2))
	pipe := NewUpdatePipeline(db)
	for i := 0; i < 20; i++ {
		pipe.Put(sighting(fmt.Sprintf("a%d", i), float64(i), 0))
	}
	if err := db.Resize(8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		pipe.Put(sighting(fmt.Sprintf("b%d", i), float64(i), 1))
	}
	if got := len(pipe.lanes.Load().l); got != 8 {
		t.Errorf("lane count = %d after resize, want 8", got)
	}
	if db.Len() != 40 {
		t.Errorf("Len = %d, want 40", db.Len())
	}
	ops, _ := pipe.Stats()
	if ops != 40 {
		t.Errorf("pipeline ops = %d, want 40", ops)
	}
}

// TestAutoShardPolicy exercises the decision rule: growth after Patience
// contended ticks, cooldown silence, shrink on idle contention, bounds
// clamping, and the MinOps evidence floor.
func TestAutoShardPolicy(t *testing.T) {
	a := NewAutoShard(AutoShardConfig{Min: 2, Max: 16, GrowAt: 0.10, ShrinkAt: 0.01, Patience: 2, Cooldown: 2, MinOps: 100})

	ops, cont := int64(0), int64(0)
	tick := func(dOps, dCont int64, cur int) (int, bool) {
		ops += dOps
		cont += dCont
		return a.Observe(cur, ops, cont, 0, 0)
	}

	if n, ok := tick(1000, 500, 4); ok {
		t.Fatalf("first (baseline) tick resized to %d", n)
	}
	// Two contended ticks → grow; one is not enough (patience).
	if n, ok := tick(1000, 200, 4); ok {
		t.Fatalf("resized to %d after one contended tick", n)
	}
	n, ok := tick(1000, 200, 4)
	if !ok || n != 8 {
		t.Fatalf("grow tick = %d, %v; want 8, true", n, ok)
	}
	// Cooldown: two silent ticks even under heavy contention.
	for i := 0; i < 2; i++ {
		if n, ok := tick(1000, 900, 8); ok {
			t.Fatalf("resized to %d during cooldown", n)
		}
	}
	// Idle ticks (below MinOps) are not evidence.
	for i := 0; i < 5; i++ {
		if n, ok := tick(10, 0, 8); ok {
			t.Fatalf("resized to %d on an idle tick", n)
		}
	}
	// Quiet ticks with real traffic → shrink after patience.
	if n, ok := tick(1000, 0, 8); ok {
		t.Fatalf("shrank to %d after one quiet tick", n)
	}
	n, ok = tick(1000, 0, 8)
	if !ok || n != 4 {
		t.Fatalf("shrink tick = %d, %v; want 4, true", n, ok)
	}
	// Bounds enforcement: a count outside [Min, Max] is corrected
	// immediately, without waiting for contention evidence.
	ab := NewAutoShard(AutoShardConfig{Min: 4, Max: 16})
	if n, ok := ab.Observe(1, 0, 0, 0, 0); !ok || n != 4 {
		t.Fatalf("below-Min enforcement = %d, %v; want 4, true", n, ok)
	}
	if n, ok := ab.Observe(32, 10, 0, 0, 0); !ok || n != 16 {
		t.Fatalf("above-Max enforcement = %d, %v; want 16, true", n, ok)
	}

	// Clamping: growth saturates at Max, shrink at Min.
	a2 := NewAutoShard(AutoShardConfig{Min: 2, Max: 8, GrowAt: 0.10, ShrinkAt: 0.01, Patience: 1, Cooldown: 1, MinOps: 1})
	a2.Observe(8, 0, 0, 0, 0)
	if n, ok := a2.Observe(8, 1000, 500, 0, 0); ok || n != 0 {
		t.Fatalf("grow at Max returned %d, %v; want no-op", n, ok)
	}
	a3 := NewAutoShard(AutoShardConfig{Min: 2, Max: 8, GrowAt: 0.10, ShrinkAt: 0.01, Patience: 1, Cooldown: 1, MinOps: 1})
	a3.Observe(2, 0, 0, 0, 0)
	if n, ok := a3.Observe(2, 1000, 0, 0, 0); ok || n != 0 {
		t.Fatalf("shrink at Min returned %d, %v; want no-op", n, ok)
	}
}

// TestShardContentionSampling: the contended counter must move under real
// lock contention and stay commensurate with ops.
func TestShardContentionSampling(t *testing.T) {
	db := NewShardedSightingDB(WithShards(1))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				db.Put(sighting(fmt.Sprintf("w%d-o%d", w, i%10), float64(i%100), 0))
			}
		}(w)
	}
	wg.Wait()
	stats := db.ShardStats()
	if len(stats) != 1 {
		t.Fatalf("ShardStats len = %d", len(stats))
	}
	if stats[0].Ops < 4000 {
		t.Errorf("ops = %d, want >= 4000", stats[0].Ops)
	}
	if stats[0].Contended > stats[0].Ops {
		t.Errorf("contended %d > ops %d", stats[0].Contended, stats[0].Ops)
	}
	if stats[0].Len != 80 {
		t.Errorf("Len = %d, want 80", stats[0].Len)
	}
}

// TestMidMigrationFreshnessWins pins the re-validation rule for queries
// racing a migration: a record mutated AFTER its shard's handoff must be
// reported from its current state — the preserved pre-handoff snapshot in
// the draining generation must neither resurrect a removed record nor
// suppress (via the dedupe map) a fresher position. The mid-migration
// state is constructed by hand so the window is stable, not a race.
func TestMidMigrationFreshnessWins(t *testing.T) {
	db := NewShardedSightingDB(WithShards(2))
	const n = 40
	for i := 0; i < n; i++ {
		db.Put(sighting(fmt.Sprintf("o%d", i), float64(i*10), 50))
	}
	// Open a migration and hand off exactly one old shard, freezing the
	// store in the dual-generation state.
	old := db.gen.Load()
	next := &shardGen{epoch: old.epoch + 1, shards: make([]*sightingShard, 5), prev: old}
	for i := range next.shards {
		next.shards[i] = db.newShard()
	}
	db.gen.Store(next)
	db.handoffShard(old.shards[0], next)

	// Mutate records whose authority moved to the new generation: an
	// update and a removal, both already committed before the queries
	// below start.
	var movedIDs []core.OID
	for i := 0; i < n; i++ {
		id := core.OID(fmt.Sprintf("o%d", i))
		if spatial.ShardFor(id, len(old.shards)) == 0 {
			movedIDs = append(movedIDs, id)
		}
	}
	if len(movedIDs) < 2 {
		t.Fatalf("need at least 2 objects on the drained shard, have %d", len(movedIDs))
	}
	updated, removed := movedIDs[0], movedIDs[1]
	db.Put(sighting(string(updated), 5000, 5000)) // moved far away
	if !db.Remove(removed) {
		t.Fatalf("Remove(%s) failed", removed)
	}

	// A full-area search must report the updated record at its NEW
	// position only, and the removed record not at all.
	got := map[core.OID]geo.Point{}
	db.SearchArea(geo.R(0, 0, 10000, 10000), func(s core.Sighting) bool {
		if p, dup := got[s.OID]; dup {
			t.Fatalf("search saw %s twice (%v and %v)", s.OID, p, s.Pos)
		}
		got[s.OID] = s.Pos
		return true
	})
	if p, ok := got[updated]; !ok || p != geo.Pt(5000, 5000) {
		t.Errorf("updated record reported at %v, %v; want (5000,5000), true", p, ok)
	}
	if p, ok := got[removed]; ok {
		t.Errorf("removed record resurrected at %v by the preserved snapshot", p)
	}
	if len(got) != n-1 {
		t.Errorf("search saw %d records, want %d", len(got), n-1)
	}
	// ForEach must agree.
	got = map[core.OID]geo.Point{}
	db.ForEach(func(s core.Sighting) bool {
		if p, dup := got[s.OID]; dup {
			t.Fatalf("ForEach saw %s twice (%v and %v)", s.OID, p, s.Pos)
		}
		got[s.OID] = s.Pos
		return true
	})
	if p, ok := got[updated]; !ok || p != geo.Pt(5000, 5000) {
		t.Errorf("ForEach reported updated record at %v, %v; want (5000,5000), true", p, ok)
	}
	if _, ok := got[removed]; ok || len(got) != n-1 {
		t.Errorf("ForEach: removed present=%v, count=%d (want absent, %d)", ok, len(got), n-1)
	}
	// Unmoved-shard records keep answering through the draining shard.
	for _, id := range movedIDs[2:] {
		if _, ok := db.Get(id); !ok {
			t.Errorf("moved record %s unreachable mid-migration", id)
		}
	}
	// Finish the hand-driven migration the way Resize does (a real Resize
	// always runs to completion under resizeMu, so it never encounters
	// this half-migrated state): drain the second shard, rebuild the
	// destinations, retire prev.
	db.handoffShard(old.shards[1], next)
	for _, dst := range next.shards {
		dst.mu.Lock()
		if qt, ok := dst.idx.(*spatial.Quadtree); ok {
			items := make([]spatial.Item, 0, len(dst.byID))
			for id, e := range dst.byID {
				items = append(items, spatial.Item{ID: id, Pos: e.s.Pos, Ref: e})
			}
			qt.Rebuild(items)
		}
		dst.mu.Unlock()
	}
	db.gen.Store(&shardGen{epoch: next.epoch, shards: next.shards})
	// And a real resize on top of the now-clean state.
	if err := db.Resize(3); err != nil {
		t.Fatal(err)
	}
	oracle := NewSightingDB(WithIndex(spatial.KindLinear))
	for i := 0; i < n; i++ {
		id := core.OID(fmt.Sprintf("o%d", i))
		if id == removed {
			continue
		}
		if id == updated {
			oracle.Put(sighting(string(id), 5000, 5000))
			continue
		}
		oracle.Put(sighting(string(id), float64(i*10), 50))
	}
	checkAgainstOracle(t, db, oracle, rand.New(rand.NewSource(5)), 10000)
}
