package store

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// ---------------------------------------------------------------------------
// Bloom filter.

func TestBloomFilterNoFalseNegatives(t *testing.T) {
	b := newBloomFilter(1000, 10)
	for i := 0; i < 1000; i++ {
		b.add(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !b.mayContain(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
	// False-positive rate should be in the ballpark of the 10-bits-per-key
	// design point (~1%); 10% is far outside any plausible regression.
	fp := 0
	for i := 0; i < 10_000; i++ {
		if b.mayContain(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	if fp > 1000 {
		t.Fatalf("false-positive rate %d/10000 way above the 10-bit design point", fp)
	}
}

func TestBloomFilterMarshalRoundtrip(t *testing.T) {
	b := newBloomFilter(100, 10)
	for i := 0; i < 100; i++ {
		b.add(fmt.Sprintf("k%d", i))
	}
	got, err := unmarshalBloom(b.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.nbits != b.nbits || got.k != b.k {
		t.Fatalf("roundtrip shape: got (%d,%d) want (%d,%d)", got.nbits, got.k, b.nbits, b.k)
	}
	for i := 0; i < 100; i++ {
		if !got.mayContain(fmt.Sprintf("k%d", i)) {
			t.Fatalf("roundtrip lost k%d", i)
		}
	}
}

// ---------------------------------------------------------------------------
// Run files.

func testRunRecords(n int) []runRecord {
	base := time.Unix(5000, 0)
	recs := make([]runRecord, 0, n)
	for i := 0; i < n; i++ {
		id := core.OID(fmt.Sprintf("obj-%05d", i))
		if i%7 == 3 {
			recs = append(recs, runRecord{s: core.Sighting{OID: id}, tombstone: true})
			continue
		}
		recs = append(recs, runRecord{
			s: core.Sighting{
				OID: id, T: base.Add(time.Duration(i) * time.Second),
				Pos: geo.Pt(float64(i%100), float64(i/100)), SensAcc: 5,
			},
			expires: base.Add(time.Duration(i) * time.Minute),
		})
	}
	return recs
}

func writeTestRun(t *testing.T, dir string, shard int, seq uint64, recs []runRecord) *tierRun {
	t.Helper()
	name := runFileName(shard, seq)
	w, err := newRunWriter(dir, name, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.add(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.finish(); err != nil {
		t.Fatal(err)
	}
	r, err := openRun(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunRoundtrip(t *testing.T) {
	dir := t.TempDir()
	recs := testRunRecords(500)
	r := writeTestRun(t, dir, 0, 1, recs)
	defer r.retire(false)

	if r.count != int64(len(recs)) {
		t.Fatalf("count = %d, want %d", r.count, len(recs))
	}
	wantLive := 0
	for _, rec := range recs {
		if !rec.tombstone {
			wantLive++
		}
	}
	if r.live != int64(wantLive) {
		t.Fatalf("live = %d, want %d", r.live, wantLive)
	}
	if r.minOID != recs[0].s.OID || r.maxOID != recs[len(recs)-1].s.OID {
		t.Fatalf("key range [%s, %s]", r.minOID, r.maxOID)
	}

	// Point gets: every record, plus misses inside and outside the range.
	for _, want := range recs {
		got, ok, err := r.get(want.s.OID)
		if err != nil || !ok {
			t.Fatalf("get(%s): %v, %v", want.s.OID, ok, err)
		}
		if got.tombstone != want.tombstone {
			t.Fatalf("get(%s) tombstone = %v", want.s.OID, got.tombstone)
		}
		if !want.tombstone && (got.s != want.s || !got.expires.Equal(want.expires)) {
			t.Fatalf("get(%s) = %+v, want %+v", want.s.OID, got, want)
		}
	}
	if _, ok, _ := r.get("obj-00000x"); ok {
		t.Fatal("get of absent key reported present")
	}

	// Full scan preserves order and content.
	i := 0
	err := r.scan(func(rec runRecord) bool {
		if rec.s.OID != recs[i].s.OID {
			t.Fatalf("scan[%d] = %s, want %s", i, rec.s.OID, recs[i].s.OID)
		}
		i++
		return true
	})
	if err != nil || i != len(recs) {
		t.Fatalf("scan: %v after %d records", err, i)
	}

	// The MBR covers every live position.
	for _, rec := range recs {
		if !rec.tombstone && !r.mbr.ContainsClosed(rec.s.Pos) {
			t.Fatalf("MBR %v misses %v", r.mbr, rec.s.Pos)
		}
	}
}

func TestRunWriterRejectsUnsortedKeys(t *testing.T) {
	dir := t.TempDir()
	w, err := newRunWriter(dir, runFileName(0, 1), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.add(runRecord{s: core.Sighting{OID: "b"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.add(runRecord{s: core.Sighting{OID: "a"}}); err == nil {
		t.Fatal("out-of-order add accepted")
	}
	w.abort()
	left, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(left) != 0 {
		t.Fatalf("abort left %v", left)
	}
}

func TestOpenRunDetectsMetaCorruption(t *testing.T) {
	dir := t.TempDir()
	r := writeTestRun(t, dir, 0, 1, testRunRecords(50))
	path := r.path
	r.retire(false)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the bloom/index metadata (after the records,
	// before the footer) — open must fail on the metadata checksum.
	data[len(data)-runFooterSize-3] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openRun(path); err == nil {
		t.Fatal("openRun accepted corrupted metadata")
	}
}

// ---------------------------------------------------------------------------
// Tiered store behavior against the all-RAM oracle.

// tieredPair builds a tiered sharded store (tiny memtable budget so
// flushes happen readily) and the single-lock all-RAM oracle, both on the
// same clock.
func tieredPair(t *testing.T, shards int, ttl time.Duration, clock func() time.Time) (*ShardedSightingDB, *SightingDB) {
	t.Helper()
	dir := t.TempDir()
	opts := []SightingDBOption{WithTTL(ttl), WithClock(clock)}
	tiered := NewShardedSightingDB(append(opts,
		WithShards(shards),
		WithTiering(TierConfig{Dir: dir, MemtableBytes: 1, MaxRuns: 3}))...)
	if err := tiered.Recover(); err != nil {
		t.Fatal(err)
	}
	return tiered, NewSightingDB(opts...)
}

// storeState snapshots a SightingStore's full logical content.
func storeState(db SightingStore) map[core.OID]core.Sighting {
	out := make(map[core.OID]core.Sighting)
	db.ForEach(func(s core.Sighting) bool {
		out[s.OID] = s
		return true
	})
	return out
}

func diffStates(t *testing.T, label string, tiered, oracle map[core.OID]core.Sighting) {
	t.Helper()
	for id, want := range oracle {
		got, ok := tiered[id]
		if !ok {
			t.Fatalf("%s: tiered store lost %s", label, id)
		}
		if got.Pos != want.Pos || !got.T.Equal(want.T) || got.SensAcc != want.SensAcc {
			t.Fatalf("%s: %s diverged: tiered %+v oracle %+v", label, id, got, want)
		}
	}
	for id := range tiered {
		if _, ok := oracle[id]; !ok {
			t.Fatalf("%s: tiered store resurrected %s", label, id)
		}
	}
}

func TestTieredFlushAndLookup(t *testing.T) {
	base := time.Unix(1000, 0)
	tiered, oracle := tieredPair(t, 4, 0, func() time.Time { return base })

	n := 400
	for i := 0; i < n; i++ {
		s := core.Sighting{
			OID: core.OID(fmt.Sprintf("o-%03d", i)), T: base,
			Pos: geo.Pt(float64(i%20)*10, float64(i/20)*10), SensAcc: 5,
		}
		tiered.Put(s)
		oracle.Put(s)
	}
	if err := tiered.MaintainTiers(); err != nil {
		t.Fatal(err)
	}
	st := tiered.TierStats()
	if st.Runs == 0 || st.Flushes == 0 {
		t.Fatalf("no flush happened: %+v", st)
	}

	// Cold gets hit the runs.
	for i := 0; i < n; i++ {
		id := core.OID(fmt.Sprintf("o-%03d", i))
		got, ok := tiered.Get(id)
		want, _ := oracle.Get(id)
		if !ok || got.Pos != want.Pos {
			t.Fatalf("Get(%s) = %+v, %v", id, got, ok)
		}
	}
	// Cold remove plants a tombstone over the run-resident version.
	if !tiered.Remove("o-007") {
		t.Fatal("cold Remove failed")
	}
	oracle.Remove("o-007")
	if _, ok := tiered.Get("o-007"); ok {
		t.Fatal("removed record still visible")
	}
	if tiered.Remove("o-007") {
		t.Fatal("double Remove succeeded")
	}

	// Range queries see disk-resident records.
	countIn := func(db SightingStore, r geo.Rect) int {
		n := 0
		db.SearchArea(r, func(core.Sighting) bool { n++; return true })
		return n
	}
	for _, r := range []geo.Rect{geo.R(0, 0, 55, 55), geo.R(100, 100, 200, 200), geo.R(-5, -5, 500, 500)} {
		if got, want := countIn(tiered, r), countIn(oracle, r); got != want {
			t.Fatalf("SearchArea(%v) = %d, oracle %d", r, got, want)
		}
	}

	// Nearest-neighbor parity (distances must agree; ids may tie).
	for _, p := range []geo.Point{geo.Pt(0, 0), geo.Pt(95, 95), geo.Pt(50, 120)} {
		var gotD, wantD []float64
		tiered.NearestFunc(p, func(_ core.Sighting, d float64) bool {
			gotD = append(gotD, d)
			return len(gotD) < 5
		})
		oracle.NearestFunc(p, func(_ core.Sighting, d float64) bool {
			wantD = append(wantD, d)
			return len(wantD) < 5
		})
		if len(gotD) != len(wantD) {
			t.Fatalf("NearestFunc(%v) yielded %d, oracle %d", p, len(gotD), len(wantD))
		}
		for i := range gotD {
			if math.Abs(gotD[i]-wantD[i]) > 1e-9 {
				t.Fatalf("NearestFunc(%v)[%d] = %g, oracle %g", p, i, gotD[i], wantD[i])
			}
		}
	}

	diffStates(t, "after flush", storeState(tiered), storeState(oracle))
}

func TestTieredCompactionDropsShadowedVersions(t *testing.T) {
	base := time.Unix(1000, 0)
	tiered, oracle := tieredPair(t, 1, 0, func() time.Time { return base })

	// Several generations of the same ids: each round flushes a run, so
	// compaction has overlapping runs full of superseded versions.
	for round := 0; round < 5; round++ {
		for i := 0; i < 80; i++ {
			s := core.Sighting{
				OID: core.OID(fmt.Sprintf("o-%02d", i)), T: base.Add(time.Duration(round) * time.Second),
				Pos: geo.Pt(float64(round*100+i), 0), SensAcc: 5,
			}
			tiered.Put(s)
			oracle.Put(s)
		}
		if err := tiered.MaintainTiers(); err != nil {
			t.Fatal(err)
		}
	}
	// Remove a few, flush the tombstones, then compact everything.
	for i := 0; i < 10; i++ {
		id := core.OID(fmt.Sprintf("o-%02d", i))
		if !tiered.Remove(id) {
			t.Fatalf("Remove(%s)", id)
		}
		oracle.Remove(id)
	}
	for i := 0; i < 3; i++ {
		if err := tiered.MaintainTiers(); err != nil {
			t.Fatal(err)
		}
	}
	st := tiered.TierStats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction ran: %+v", st)
	}
	if st.Runs > 3 {
		t.Fatalf("compaction left %d runs (MaxRuns 3)", st.Runs)
	}
	// After a full merge the survivors hold exactly one version per live id.
	if st.Runs == 1 && st.DiskLive != 70 {
		t.Fatalf("compacted run holds %d live records, want 70", st.DiskLive)
	}
	diffStates(t, "after compaction", storeState(tiered), storeState(oracle))
}

func TestTieredExpiry(t *testing.T) {
	base := time.Unix(1000, 0)
	var mu sync.Mutex
	now := base
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	tiered, oracle := tieredPair(t, 2, 10*time.Second, clock)

	for i := 0; i < 100; i++ {
		s := core.Sighting{OID: core.OID(fmt.Sprintf("o-%02d", i)), T: base, Pos: geo.Pt(float64(i), 0), SensAcc: 5}
		tiered.Put(s)
		oracle.Put(s)
	}
	if err := tiered.MaintainTiers(); err != nil {
		t.Fatal(err)
	}
	// Touch half so their lease outlives the jump past the original TTL.
	mu.Lock()
	now = base.Add(8 * time.Second)
	mu.Unlock()
	for i := 0; i < 50; i++ {
		id := core.OID(fmt.Sprintf("o-%02d", i))
		if !tiered.Touch(id) {
			t.Fatalf("Touch(%s) — run-resident record not promotable", id)
		}
		oracle.Touch(id)
	}
	mu.Lock()
	now = base.Add(15 * time.Second)
	mu.Unlock()

	// The untouched half is expired — including the run-resident copies.
	exp := tiered.Expired()
	expSet := make(map[core.OID]bool, len(exp))
	for _, id := range exp {
		expSet[id] = true
	}
	for i := 50; i < 100; i++ {
		if !expSet[core.OID(fmt.Sprintf("o-%02d", i))] {
			t.Fatalf("Expired missed run-resident o-%02d", i)
		}
	}
	for i := 0; i < 50; i++ {
		if expSet[core.OID(fmt.Sprintf("o-%02d", i))] {
			t.Fatalf("Expired reported touched o-%02d", i)
		}
	}
	// Tear them down the way the janitor does.
	for _, id := range exp {
		if _, ok := tiered.RemoveExpiredDelta(id); !ok {
			t.Fatalf("RemoveExpiredDelta(%s)", id)
		}
	}
	for _, id := range oracle.Expired() {
		oracle.RemoveExpiredDelta(id)
	}
	diffStates(t, "after expiry sweep", storeState(tiered), storeState(oracle))
}

// TestTieredOracleParity is the randomized differential test: a tiered
// store and the all-RAM single-lock oracle receive the same stream of
// puts, removes, touches, expiry sweeps and (rejected) resizes, with tier
// maintenance interleaved, and must agree on the full logical state at
// every checkpoint.
func TestTieredOracleParity(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 12
	}
	base := time.Unix(1000, 0)
	var mu sync.Mutex
	now := base
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	tiered, oracle := tieredPair(t, 3, time.Minute, clock)

	const population = 300
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < rounds; round++ {
		mu.Lock()
		now = now.Add(3 * time.Second)
		stamp := now
		mu.Unlock()
		for op := 0; op < 150; op++ {
			id := core.OID(fmt.Sprintf("obj-%03d", rng.Intn(population)))
			switch k := rng.Intn(10); {
			case k < 6: // put / move
				s := core.Sighting{OID: id, T: stamp, Pos: geo.Pt(rng.Float64()*1000, rng.Float64()*1000), SensAcc: 5}
				tiered.Put(s)
				oracle.Put(s)
			case k < 8: // remove (possibly cold, possibly absent)
				got := tiered.Remove(id)
				want := oracle.Remove(id)
				if got != want {
					t.Fatalf("round %d: Remove(%s) = %v, oracle %v", round, id, got, want)
				}
			default: // touch
				got := tiered.Touch(id)
				want := oracle.Touch(id)
				if got != want {
					t.Fatalf("round %d: Touch(%s) = %v, oracle %v", round, id, got, want)
				}
			}
		}
		switch round % 4 {
		case 0:
			if err := tiered.MaintainTiers(); err != nil {
				t.Fatal(err)
			}
		case 1: // expiry sweep through the janitor's teardown path
			for _, id := range tiered.Expired() {
				tiered.RemoveExpiredDelta(id)
			}
			for _, id := range oracle.Expired() {
				oracle.RemoveExpiredDelta(id)
			}
		case 2: // resize is pinned while tiered
			if err := tiered.Resize(8); err == nil {
				t.Fatal("Resize(8) succeeded on a tiered store")
			}
			if err := tiered.Resize(3); err != nil {
				t.Fatalf("same-count Resize errored: %v", err)
			}
		}

		// Checkpoint: full-state parity plus point parity on a sample.
		diffStates(t, fmt.Sprintf("round %d", round), storeState(tiered), storeState(oracle))
		for i := 0; i < 40; i++ {
			id := core.OID(fmt.Sprintf("obj-%03d", rng.Intn(population)))
			got, gok := tiered.Get(id)
			want, wok := oracle.Get(id)
			if gok != wok || (gok && (got.Pos != want.Pos || !got.T.Equal(want.T))) {
				t.Fatalf("round %d: Get(%s) = %+v,%v oracle %+v,%v", round, id, got, gok, want, wok)
			}
		}
	}
	st := tiered.TierStats()
	if st.Flushes == 0 || st.Runs == 0 {
		t.Fatalf("parity test never exercised the disk tier: %+v", st)
	}
}

// ---------------------------------------------------------------------------
// Recovery.

// populateTiered opens a tiered store over a sharded WAL in dir, loads n
// records (flushing runs along the way) plus a post-flush WAL tail, and
// closes the WAL. Returns the expected final state.
func populateTiered(t *testing.T, dir string, shards, n int) map[core.OID]core.Sighting {
	t.Helper()
	wal, err := OpenShardedWAL(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	db := NewShardedSightingDB(
		WithSightingWAL(wal),
		WithTiering(TierConfig{MemtableBytes: 1, MaxRuns: 3}))
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	base := time.Unix(2000, 0)
	for i := 0; i < n; i++ {
		db.Put(core.Sighting{OID: core.OID(fmt.Sprintf("r-%04d", i)), T: base, Pos: geo.Pt(float64(i), 1), SensAcc: 5})
	}
	if err := db.MaintainTiers(); err != nil {
		t.Fatal(err)
	}
	// A WAL tail past the last flush: updates and a cold remove.
	for i := 0; i < n/10; i++ {
		db.Put(core.Sighting{OID: core.OID(fmt.Sprintf("r-%04d", i)), T: base.Add(time.Second), Pos: geo.Pt(float64(i), 2), SensAcc: 5})
	}
	if !db.Remove(core.OID(fmt.Sprintf("r-%04d", n-1))) {
		t.Fatal("tail Remove failed")
	}
	want := storeState(db)
	if err := wal.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

func reopenTiered(t *testing.T, dir string, shards int) (*ShardedSightingDB, *ShardedWAL) {
	t.Helper()
	wal, err := OpenShardedWAL(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	db := NewShardedSightingDB(
		WithSightingWAL(wal),
		WithTiering(TierConfig{MemtableBytes: 1, MaxRuns: 3}))
	return db, wal
}

func TestTieredRecoverTailOnly(t *testing.T) {
	dir := t.TempDir()
	want := populateTiered(t, dir, 2, 200)

	db, wal := reopenTiered(t, dir, 2)
	defer wal.Close()
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	diffStates(t, "recovered", storeState(db), want)

	// The tombstone must survive recovery: the removed id's versions
	// still live in runs and must stay dead.
	if _, ok := db.Get("r-0199"); ok {
		t.Fatal("crash resurrected a removed record")
	}
	st := db.TierStats()
	if !st.Enabled || st.Runs == 0 {
		t.Fatalf("tiers not restored: %+v", st)
	}
}

func TestTieredRecoverSweepsCrashLeftovers(t *testing.T) {
	dir := t.TempDir()
	want := populateTiered(t, dir, 2, 200)

	// Crash mid-flush: an orphaned run temp and a finished-but-uncommitted
	// run (written, renamed, manifest never updated).
	if err := os.WriteFile(filepath.Join(dir, ".tier-tmp-crash1"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, runFileName(0, 9000))
	w, err := newRunWriter(dir, runFileName(0, 9000), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.add(runRecord{s: core.Sighting{OID: "zzz-not-in-store", Pos: geo.Pt(1, 1), T: time.Unix(2000, 0), SensAcc: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := w.finish(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-compaction looks the same from the manifest's point of
	// view: a merged run exists on disk but the manifest still lists the
	// inputs. Simulate with a second uncommitted run on the other shard.
	w2, err := newRunWriter(dir, runFileName(1, 9001), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.add(runRecord{s: core.Sighting{OID: "zzz-merged", Pos: geo.Pt(2, 2), T: time.Unix(2000, 0), SensAcc: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := w2.finish(); err != nil {
		t.Fatal(err)
	}
	// And a half-written manifest temp (saveManifest crashed pre-rename).
	if err := os.WriteFile(filepath.Join(dir, ".tier-tmp-manifest"), []byte("{\"shard\":"), 0o644); err != nil {
		t.Fatal(err)
	}

	db, wal := reopenTiered(t, dir, 2)
	defer wal.Close()
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	// The committed prefix — manifest-referenced runs plus the WAL tail —
	// is intact; the uncommitted leftovers are gone, on disk and logically.
	diffStates(t, "recovered after crash", storeState(db), want)
	if _, ok := db.Get("zzz-not-in-store"); ok {
		t.Fatal("uncommitted run leaked into the store")
	}
	for _, leftover := range []string{orphan, filepath.Join(dir, runFileName(1, 9001)), filepath.Join(dir, ".tier-tmp-crash1"), filepath.Join(dir, ".tier-tmp-manifest")} {
		if _, err := os.Stat(leftover); !os.IsNotExist(err) {
			t.Fatalf("crash leftover %s survived recovery", leftover)
		}
	}
}

func TestTieredRecoverRejectsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	populateTiered(t, dir, 2, 100)
	if err := os.WriteFile(filepath.Join(dir, manifestFileName(0)), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, wal := reopenTiered(t, dir, 2)
	defer wal.Close()
	if err := db.Recover(); err == nil {
		t.Fatal("Recover accepted a corrupt manifest")
	}
}

func TestTieredRecoverBackground(t *testing.T) {
	dir := t.TempDir()
	want := populateTiered(t, dir, 4, 400)

	db, wal := reopenTiered(t, dir, 4)
	defer wal.Close()
	if err := db.RecoverBackground(); err != nil {
		t.Fatal(err)
	}
	// Reads are admitted immediately; each blocks at most on its own
	// shard's tail replay (the shard lock is the readiness gate).
	for i := 0; i < 100; i++ {
		id := core.OID(fmt.Sprintf("r-%04d", i))
		got, ok := db.Get(id)
		if w, exists := want[id]; exists {
			if !ok || got.Pos != w.Pos {
				t.Fatalf("Get(%s) during warm-up = %+v, %v", id, got, ok)
			}
		} else if ok {
			t.Fatalf("Get(%s) during warm-up resurrected a removed record", id)
		}
	}
	if err := db.RecoverBackground(); err == nil {
		t.Fatal("second RecoverBackground accepted")
	}
	if err := db.WaitRecovered(); err != nil {
		t.Fatal(err)
	}
	if !db.TierStats().Warm {
		t.Fatal("store not warm after WaitRecovered")
	}
	diffStates(t, "background-recovered", storeState(db), want)
}

// ---------------------------------------------------------------------------
// Concurrency soak: updates and queries racing flushes and compactions.

func TestTieredSoak(t *testing.T) {
	const (
		shards  = 4
		workers = 4
		perID   = 500
	)
	ops := 8000
	if testing.Short() {
		ops = 2500
	}
	dir := t.TempDir()
	db := NewShardedSightingDB(
		WithShards(shards),
		WithTiering(TierConfig{Dir: dir, MemtableBytes: 1, MaxRuns: 3}))
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var maint sync.WaitGroup
	maint.Add(1)
	go func() {
		defer maint.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := db.MaintainTiers(); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Writers own disjoint id slices; readers run range and point queries
	// throughout. Every read must observe internally consistent state (no
	// panics, no duplicate ids in one scan).
	var wg sync.WaitGroup
	final := make([]map[core.OID]geo.Point, workers)
	base := time.Unix(3000, 0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			mine := make(map[core.OID]geo.Point)
			for i := 0; i < ops; i++ {
				id := core.OID(fmt.Sprintf("w%d-%03d", w, rng.Intn(perID)))
				if rng.Intn(10) == 0 {
					db.Remove(id)
					delete(mine, id)
					continue
				}
				p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
				db.Put(core.Sighting{OID: id, T: base.Add(time.Duration(i) * time.Millisecond), Pos: p, SensAcc: 5})
				mine[id] = p
			}
			final[w] = mine
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < ops/2; i++ {
				switch i % 3 {
				case 0:
					x, y := rng.Float64()*900, rng.Float64()*900
					seen := make(map[core.OID]bool)
					db.SearchArea(geo.R(x, y, x+100, y+100), func(s core.Sighting) bool {
						if seen[s.OID] {
							t.Errorf("SearchArea yielded %s twice in one scan", s.OID)
							return false
						}
						seen[s.OID] = true
						return true
					})
				case 1:
					db.Get(core.OID(fmt.Sprintf("w%d-%03d", rng.Intn(workers), rng.Intn(perID))))
				default:
					n := 0
					db.NearestFunc(geo.Pt(rng.Float64()*1000, rng.Float64()*1000), func(core.Sighting, float64) bool {
						n++
						return n < 3
					})
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	maint.Wait()
	if err := db.MaintainTiers(); err != nil {
		t.Fatal(err)
	}

	st := db.TierStats()
	if st.Flushes < 2 || st.Compactions < 1 {
		t.Fatalf("soak too tame: %d flushes, %d compactions (want >=2, >=1)", st.Flushes, st.Compactions)
	}
	// Final state: every writer's last write wins.
	for w := 0; w < workers; w++ {
		for id, p := range final[w] {
			got, ok := db.Get(id)
			if !ok || got.Pos != p {
				t.Fatalf("final Get(%s) = %+v, %v, want %v", id, got, ok, p)
			}
		}
	}
	// And nothing beyond the writers' final sets survives.
	want := make(map[core.OID]geo.Point)
	for w := 0; w < workers; w++ {
		for id, p := range final[w] {
			want[id] = p
		}
	}
	got := storeState(db)
	if len(got) != len(want) {
		var extra []string
		for id := range got {
			if _, ok := want[id]; !ok {
				extra = append(extra, string(id))
			}
		}
		sort.Strings(extra)
		t.Fatalf("final store holds %d records, want %d (extra: %v)", len(got), len(want), extra)
	}
}

// TestTieredMemoryBounded drives a dataset several times the memtable
// budget through the store and checks the resident estimate stays within
// the backpressure bound (2x budget per shard) even without a janitor.
func TestTieredMemoryBounded(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	budget := int64(16 << 10) // per store; per shard max(budget/shards, 4096)
	db := NewShardedSightingDB(
		WithShards(shards),
		WithTiering(TierConfig{Dir: dir, MemtableBytes: budget}))
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	base := time.Unix(4000, 0)
	for i := 0; i < 4000; i++ { // ~4000*180 B resident if nothing flushed: ~44x the per-shard budget
		db.Put(core.Sighting{OID: core.OID(fmt.Sprintf("m-%05d", i)), T: base, Pos: geo.Pt(float64(i%100), float64(i/100)), SensAcc: 5})
	}
	st := db.TierStats()
	perShard := budget / shards
	if perShard < 4096 {
		perShard = 4096
	}
	if st.MemtableBytes > 2*perShard*shards+4096 {
		t.Fatalf("memtables at %d bytes despite %d-byte backpressure bound (%+v)", st.MemtableBytes, 2*perShard*shards, st)
	}
	if st.Flushes == 0 {
		t.Fatal("backpressure never flushed")
	}
	if db.Len() < 4000 {
		t.Fatalf("Len = %d, want >= 4000", db.Len())
	}
}
