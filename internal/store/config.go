package store

import (
	"encoding/json"
	"fmt"
	"os"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// ChildRecord describes one child of a non-leaf server: its identifier and
// the service area it is responsible for (the paper's child record with
// fields id and sa).
type ChildRecord struct {
	ID string    `json:"id"`
	SA core.Area `json:"sa"`
}

// ConfigRecord is a server's persistent configuration record c (paper
// Section 5): its own service area, its parent and its children. For the
// root server Parent is empty; for leaf servers Children is empty.
type ConfigRecord struct {
	// ID is the server's node identifier.
	ID string `json:"id"`
	// SA is the service area associated with the server.
	SA core.Area `json:"sa"`
	// Parent identifies the parent server; empty for the root (the
	// paper's ε).
	Parent string `json:"parent,omitempty"`
	// ParentGroup lists the partition servers sharing the parent's
	// service area when the parent level is partitioned by object id
	// (Section 4: "information about tracked objects can be partitioned
	// based on some portion of the object id", as for the GSM HLR).
	// Empty means the parent is a single server; otherwise Parent is the
	// first entry of the group.
	ParentGroup []string `json:"parentGroup,omitempty"`
	// Children holds one record per child server, empty for leaves.
	Children []ChildRecord `json:"children,omitempty"`
}

// IsRoot reports whether the record describes the root server.
func (c ConfigRecord) IsRoot() bool { return c.Parent == "" }

// IsLeaf reports whether the record describes a leaf server.
func (c ConfigRecord) IsLeaf() bool { return len(c.Children) == 0 }

// ChildFor returns the child whose service area contains p, implementing
// the "select child ∈ c.children with pos ∈ child.c.sa" step used by
// registration, handover and query forwarding (Algorithms 6-1 and 6-3).
// Because sibling areas do not overlap, at most one child matches; boundary
// points are assigned to the first child whose closed area contains them.
func (c ConfigRecord) ChildFor(p geo.Point) (ChildRecord, bool) {
	// First pass: half-open rectangle containment for exact, exclusive
	// assignment on the rectangular partitions deployments use.
	for _, ch := range c.Children {
		if ch.SA.Bounds().Contains(p) && ch.SA.Contains(p) {
			return ch, true
		}
	}
	// Second pass: closed containment, so points on the outer boundary
	// of the parent area still find a child.
	for _, ch := range c.Children {
		if ch.SA.Contains(p) {
			return ch, true
		}
	}
	return ChildRecord{}, false
}

// Validate checks the structural invariants of Section 4: a non-leaf
// server's children must tile its service area (union equals the parent
// area, no overlaps). Tiling is verified by area accounting, which is exact
// for the rectangular partitions the hierarchy builder produces and a close
// approximation for general convex polygons.
func (c ConfigRecord) Validate() error {
	if c.ID == "" {
		return fmt.Errorf("store: config record without id")
	}
	if c.SA.Empty() {
		return fmt.Errorf("store: server %s has empty service area", c.ID)
	}
	if c.IsLeaf() {
		return nil
	}
	var sum float64
	for i, ch := range c.Children {
		if ch.ID == "" {
			return fmt.Errorf("store: server %s child %d without id", c.ID, i)
		}
		if ch.SA.Empty() {
			return fmt.Errorf("store: child %s has empty service area", ch.ID)
		}
		sum += ch.SA.Size()
		for _, other := range c.Children[:i] {
			inter := ch.SA.Vertices.ClipRect(other.SA.Bounds())
			if inter.Area() > 1e-6*ch.SA.Size() && overlapsByArea(ch.SA, other.SA) {
				return fmt.Errorf("store: children %s and %s of %s overlap", ch.ID, other.ID, c.ID)
			}
		}
	}
	parent := c.SA.Size()
	if diff := sum - parent; diff > 1e-6*parent || diff < -1e-6*parent {
		return fmt.Errorf("store: children of %s cover %.3f of parent area %.3f", c.ID, sum, parent)
	}
	return nil
}

// overlapsByArea reports whether two convex areas share real area (not just
// a boundary), using rectangle clipping of a against b's bounds followed by
// b's bounds check — exact for the rectangle areas used in deployments.
func overlapsByArea(a, b core.Area) bool {
	inter := a.Vertices.ClipRect(b.Bounds())
	return inter.Area() > 1e-9
}

// SaveConfig writes the record as JSON to path (atomically via a temp file).
func SaveConfig(c ConfigRecord, path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("store: marshaling config: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: writing config: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: renaming config: %w", err)
	}
	return nil
}

// LoadConfig reads a record previously written by SaveConfig.
func LoadConfig(path string) (ConfigRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ConfigRecord{}, fmt.Errorf("store: reading config: %w", err)
	}
	var c ConfigRecord
	if err := json.Unmarshal(data, &c); err != nil {
		return ConfigRecord{}, fmt.Errorf("store: parsing config: %w", err)
	}
	return c, nil
}
