package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/spatial"
)

// ShardedSightingDB is a SightingStore partitioned into N independently
// locked shards keyed by object id. Each shard owns its slice of the hash
// index, its own spatial sub-index and its own expiry-sweep cursor, all
// guarded by one shard lock — so the Remove+Insert pair of an update is
// applied atomically per shard and updates to different shards never
// contend.
//
// Sharding is by object id, not by space: the update path (the hot path of
// the paper's workloads) stays O(1) lock acquisitions regardless of where
// an object moves, while range and nearest-neighbor queries fan out across
// all shards and merge. Range results concatenate; nearest-neighbor streams
// merge in global distance order via resumable per-shard cursors
// (spatial.MergeSources), each shard advanced exactly one neighbor at a
// time. Every shard also maintains a conservative bounding rectangle over
// its live positions (grown on insert, lazily tightened after removals —
// see the spatial package documentation for the invariant), so a range
// search skips shards whose rectangle misses the query and the
// nearest-neighbor merge never opens a shard whose rectangle lies beyond
// the consumer's stopping distance.
//
// # The epoch invariant
//
// The id→shard mapping lives behind an epoch-versioned generation pointer
// (shardGen) so the shard count can change while the store serves traffic
// (Resize, typically driven by an AutoShard policy). At every instant each
// object id has exactly one authoritative shard: the shard the id hashes to
// in the oldest generation that has not yet handed that shard off. All
// mutations lock the authoritative shard and double-check its moved flag
// after acquiring the lock — a shard observed moved means a newer
// generation took over, and the operation reloads the generation pointer
// and retries. A resize drains the old generation one shard at a time while
// holding that shard's lock (the per-shard handoff), so no operation is
// ever blocked for longer than one shard's handoff and the steady-state
// cost of the indirection is one atomic pointer load plus one bool check.
// Queries that run while a migration is in flight consult both generations
// — previous first, current second, so an entry mid-flight is seen by at
// least one of the two scans — and dedupe by object id.
type ShardedSightingDB struct {
	gen   atomic.Pointer[shardGen]
	ttl   time.Duration
	clock func() time.Time
	// newIndex builds one shard's spatial sub-index; retained so Resize
	// can populate fresh generations.
	newIndex func() spatial.Index

	// resizeMu serializes Resize against itself and against WAL
	// compaction (both restructure or rewrite per-shard state that must
	// not interleave with a generation change).
	resizeMu sync.Mutex

	// sweepShardCursor rotates the shard SweepExpired starts at, so
	// small budgets still cover every shard over successive calls.
	sweepShardCursor atomic.Uint64

	// wal, when non-nil, receives every committed batch and removal
	// before it is applied; appends happen under the owning shard's lock,
	// so each segment's order matches its shard's application order. A
	// failed append marks the WAL down and stops further logging, keeping
	// every segment a consistent prefix of its shard's history; the
	// sticky error is surfaced through WALErr. The store itself stays
	// available without the log — the sightingDB is soft state, as in the
	// paper's baseline.
	wal *ShardedWAL

	// tier, when non-nil, turns each shard into the memtable of a small
	// per-shard LSM tree (see lsm.go and the package comment): the shard's
	// in-memory state covers only the recent tail, older versions live in
	// immutable sorted runs on disk, and every read path consults the runs
	// behind the memtable. Nil on all-RAM stores — the default, and the
	// differential-testing oracle for the tiered mode.
	tier *tierState

	// replNotify, when set, observes every tier-structure change (flush,
	// compaction) for run shipping to a standby; replStandby suppresses
	// local tier maintenance while this store mirrors a primary. See
	// repl.go.
	replNotify  atomic.Pointer[replNotifyBox]
	replStandby atomic.Bool
}

// shardGen is one generation of the id→shard mapping: an epoch number, the
// shard array of that epoch, and — while a migration out of the previous
// generation is still in flight — a pointer to that previous generation.
// Generations are immutable once published; Resize publishes a fresh one.
type shardGen struct {
	epoch  uint64
	shards []*sightingShard
	// prev is the generation being drained into this one, nil once the
	// migration completed. While non-nil, a shard of prev that has not
	// been handed off (moved == false) is still the authority for the ids
	// hashing to it under prev's mapping.
	prev *shardGen
}

type sightingShard struct {
	mu  sync.RWMutex
	idx spatial.Index
	// items is idx narrowed to the payload-carrying capability (nil when
	// the index kind does not support it): entries then carry their
	// *sightingEntry, so a range search resolves records straight off the
	// index node instead of re-hashing every match through byID.
	items spatial.ItemIndex
	byID  map[core.OID]*sightingEntry

	// moved marks a shard whose contents were handed off to a newer
	// generation. Set under mu by the migration; every mutation that
	// acquired this shard's lock re-checks it and re-routes (the
	// double-check half of the epoch protocol). byID and idx are KEPT,
	// frozen as an immutable pre-handoff snapshot — queries holding a
	// generation a resize has since drained still read them (with moved
	// hits re-validated against current authority), so they must never
	// be nil'ed or mutated after the handoff; the whole generation is
	// reclaimed when its last reader drops it.
	moved bool

	// ops and contended sample write-lock pressure: ops counts write-path
	// lock acquisitions, contended the subset that found the lock already
	// held (TryLock failed). Their ratio is the contention signal the
	// AutoShard policy feeds on.
	ops       atomic.Int64
	contended atomic.Int64

	// bound conservatively contains every live position; nonempty and
	// stale implement the lazily-tightened invariant (recompute once
	// stale removals outnumber live records — amortized O(1)).
	bound    geo.Rect
	nonempty bool
	stale    int

	// sweep cursor for the amortized expiry scan.
	sweepKeys []core.OID
	sweepPos  int

	// Tiered mode only (tier non-nil, attached when the store opens its
	// tiers). dead holds the memtable's tombstones: ids removed since the
	// last flush whose older versions may still live in a run — a flush
	// persists them as tombstone records and clears the map. memBytes is
	// the approximate resident cost of byID + dead, the flush trigger.
	tier     *shardTier
	dead     map[core.OID]struct{}
	memBytes int64
}

// lockWrite acquires the shard's write lock, sampling contention: a failed
// TryLock means another goroutine held the lock at the moment of arrival.
func (sh *sightingShard) lockWrite() {
	if !sh.mu.TryLock() {
		sh.contended.Add(1)
		sh.mu.Lock()
	}
	sh.ops.Add(1)
}

// noteInsert grows the shard's bounding rectangle to cover p. Caller holds
// the shard's write lock.
func (sh *sightingShard) noteInsert(p geo.Point) {
	if !sh.nonempty {
		sh.bound = geo.Rect{Min: p, Max: p}
		sh.nonempty = true
		sh.stale = 0
		return
	}
	sh.bound.GrowToInclude(p)
}

// noteRemove records a removal against the bounding rectangle, tightening
// it lazily via the co-located hash index. Caller holds the shard's write
// lock.
func (sh *sightingShard) noteRemove() {
	if len(sh.byID) == 0 {
		sh.nonempty = false
		sh.stale = 0
		return
	}
	sh.stale++
	if sh.stale <= len(sh.byID) {
		return
	}
	first := true
	var b geo.Rect
	for _, e := range sh.byID {
		if first {
			b = geo.Rect{Min: e.s.Pos, Max: e.s.Pos}
			first = false
			continue
		}
		b.GrowToInclude(e.s.Pos)
	}
	sh.bound = b
	sh.stale = 0
}

var _ SightingStore = (*ShardedSightingDB)(nil)

// NewShardedSightingDB returns an empty sharded sighting database. The
// shard count comes from WithShards (default 1, which is behaviorally the
// single-lock SightingDB); with WithSightingWAL the store adopts the WAL's
// segment count instead, since the persistent log records the id→shard
// mapping of its last epoch. Call Recover before use to replay an existing
// log. The count can change at runtime through Resize.
func NewShardedSightingDB(opts ...SightingDBOption) *ShardedSightingDB {
	cfg := defaultSightingConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.wal != nil {
		cfg.shards = cfg.wal.NumShards()
	}
	db := &ShardedSightingDB{
		ttl:      cfg.ttl,
		clock:    cfg.clock,
		newIndex: cfg.newIndex,
		wal:      cfg.wal,
	}
	if cfg.tier != nil {
		tc := cfg.tier.withDefaults()
		if tc.Dir == "" && cfg.wal != nil {
			tc.Dir = cfg.wal.Dir()
		}
		budget := tc.MemtableBytes / int64(cfg.shards)
		if budget < 4096 {
			budget = 4096
		}
		db.tier = &tierState{cfg: tc, budget: budget}
	}
	g := &shardGen{shards: make([]*sightingShard, cfg.shards)}
	for i := range g.shards {
		g.shards[i] = db.newShard()
	}
	db.gen.Store(g)
	return db
}

// newShard builds one empty shard with a fresh sub-index.
func (db *ShardedSightingDB) newShard() *sightingShard {
	sh := &sightingShard{
		idx:  db.newIndex(),
		byID: make(map[core.OID]*sightingEntry),
	}
	sh.items, _ = sh.idx.(spatial.ItemIndex)
	return sh
}

// NumShards implements SightingStore, reporting the current generation's
// shard count.
func (db *ShardedSightingDB) NumShards() int { return len(db.gen.Load().shards) }

// Epoch returns the current mapping epoch: 0 at construction, incremented
// by every completed Resize. Diagnostics only.
func (db *ShardedSightingDB) Epoch() uint64 { return db.gen.Load().epoch }

// ShardFor implements SightingStore against the current generation. During
// a live resize the returned index is a routing hint, not an authority
// claim — mutations internally re-resolve the owning shard.
func (db *ShardedSightingDB) ShardFor(id core.OID) int {
	return spatial.ShardFor(id, len(db.gen.Load().shards))
}

// lockOwner returns id's authoritative shard, write-locked, together with
// the generation it belongs to and its index there. The authority rule: the
// previous generation's shard while a migration is in flight and that shard
// has not been handed off, the current generation's shard otherwise. The
// moved re-check after acquiring the lock closes the race with a handoff
// that completed while this goroutine waited.
func (db *ShardedSightingDB) lockOwner(id core.OID) (*sightingShard, *shardGen, int) {
	for {
		g := db.gen.Load()
		if p := g.prev; p != nil {
			i := spatial.ShardFor(id, len(p.shards))
			sh := p.shards[i]
			sh.lockWrite()
			if !sh.moved {
				return sh, p, i
			}
			sh.mu.Unlock()
		}
		i := spatial.ShardFor(id, len(g.shards))
		sh := g.shards[i]
		sh.lockWrite()
		if !sh.moved {
			return sh, g, i
		}
		sh.mu.Unlock()
		// The shard we reached was drained by a later resize; the release
		// of its lock made the newer generation pointer visible. Retry.
	}
}

// rlockOwner is lockOwner for readers (no contention sampling).
func (db *ShardedSightingDB) rlockOwner(id core.OID) *sightingShard {
	for {
		g := db.gen.Load()
		if p := g.prev; p != nil {
			sh := p.shards[spatial.ShardFor(id, len(p.shards))]
			sh.mu.RLock()
			if !sh.moved {
				return sh
			}
			sh.mu.RUnlock()
		}
		sh := g.shards[spatial.ShardFor(id, len(g.shards))]
		sh.mu.RLock()
		if !sh.moved {
			return sh
		}
		sh.mu.RUnlock()
	}
}

// Len implements SightingStore. While a migration is in flight the count is
// a best-effort snapshot (a record mid-handoff can be counted in both
// generations), exact whenever the store is quiescent — the same contract
// every cross-shard read has.
// On a tiered store the count additionally includes the runs' live
// records and is an upper-bound estimate: a record present in the
// memtable and a run, or in several overlapping runs, is counted once
// per copy until compaction merges them (Σ live − tombstones); exact
// again whenever the shard's runs are compacted and the memtable holds
// only new ids.
func (db *ShardedSightingDB) Len() int {
	n := 0
	for _, sh := range db.liveShards() {
		sh.mu.RLock()
		if !sh.moved {
			n += len(sh.byID)
			if sh.tier != nil {
				for _, r := range sh.tier.runs {
					n += int(r.live)
				}
				n -= len(sh.dead)
			}
		}
		sh.mu.RUnlock()
	}
	if n < 0 {
		n = 0
	}
	return n
}

// liveShards returns the shards a cross-shard scan must visit: the previous
// generation's first (so an entry handed off between the two scans is seen
// in the current one — scanning source before destination makes misses
// impossible), then the current generation's.
func (db *ShardedSightingDB) liveShards() []*sightingShard {
	g := db.gen.Load()
	if g.prev == nil {
		return g.shards
	}
	out := make([]*sightingShard, 0, len(g.prev.shards)+len(g.shards))
	out = append(out, g.prev.shards...)
	out = append(out, g.shards...)
	return out
}

// Put implements SightingStore.
func (db *ShardedSightingDB) Put(s core.Sighting) {
	db.putOne(s, nil)
}

// putOne commits one sighting, appending its delta to *out when out is
// non-nil.
func (db *ShardedSightingDB) putOne(s core.Sighting, out *[]Delta) {
	sh, g, i := db.lockOwner(s.OID)
	if db.wal != nil {
		_ = db.wal.AppendPut(i, len(g.shards), s)
	}
	d := db.putLocked(sh, s)
	db.maybeFlushBackpressure(sh, i)
	sh.mu.Unlock()
	if out != nil {
		*out = append(*out, d)
	}
}

// PutBatch implements SightingStore: the batch is grouped by shard and each
// group applied under a single lock acquisition. Within a group, updates to
// the same object are coalesced — only the last sighting per object touches
// the spatial index, fusing its Remove+Insert pair once instead of once per
// superseded update. While a resize migration is in flight the batch falls
// back to per-object authority resolution.
func (db *ShardedSightingDB) PutBatch(batch []core.Sighting) {
	db.putBatch(batch, nil)
}

// PutBatchDeltas implements SightingStore. Coalesced objects yield one delta
// spanning the pre-batch position and the final one.
func (db *ShardedSightingDB) PutBatchDeltas(batch []core.Sighting, out []Delta) []Delta {
	db.putBatch(batch, &out)
	return out
}

func (db *ShardedSightingDB) putBatch(batch []core.Sighting, out *[]Delta) {
	switch len(batch) {
	case 0:
		return
	case 1:
		db.putOne(batch[0], out)
		return
	}
	g := db.gen.Load()
	if g.prev != nil {
		// A migration is draining the previous generation: authority is
		// per object, so group commit degrades to per-object puts for the
		// duration of the handoff walk.
		for _, s := range batch {
			db.putOne(s, out)
		}
		return
	}
	n := len(g.shards)
	if n == 1 {
		db.putGroup(g, 0, batch, out)
		return
	}
	// Fast path: batches assembled by a per-shard pipeline lane are
	// single-shard by construction; detect that without allocating the
	// per-shard grouping.
	first := spatial.ShardFor(batch[0].OID, n)
	same := true
	for _, s := range batch[1:] {
		if spatial.ShardFor(s.OID, n) != first {
			same = false
			break
		}
	}
	if same {
		db.putGroup(g, first, batch, out)
		return
	}
	groups := make([][]core.Sighting, n)
	for _, s := range batch {
		i := spatial.ShardFor(s.OID, n)
		groups[i] = append(groups[i], s)
	}
	for i, grp := range groups {
		if len(grp) > 0 {
			db.putGroup(g, i, grp, out)
		}
	}
}

// putGroup applies one shard's slice of a batch under one lock acquisition,
// coalescing superseded updates to the same object. With a WAL attached the
// whole group becomes a single write-ahead append — the batch is the
// durability unit, amortizing marshal and flush cost the same way the
// pipeline's combining lane amortizes lock cost. If the shard was handed
// off to a newer generation while this call waited for its lock, the group
// re-routes per object. When out is non-nil every applied put appends its
// delta — on the coalesced path only the surviving last-per-object puts
// apply, so each emitted delta spans pre-batch old to batch-final new.
func (db *ShardedSightingDB) putGroup(g *shardGen, shard int, group []core.Sighting, out *[]Delta) {
	sh := g.shards[shard]
	sh.lockWrite()
	if sh.moved {
		sh.mu.Unlock()
		for _, s := range group {
			db.putOne(s, out)
		}
		return
	}
	defer sh.mu.Unlock()
	defer db.maybeFlushBackpressure(sh, shard) // runs before the unlock
	if db.wal != nil {
		_ = db.wal.AppendBatch(shard, len(g.shards), group)
	}
	emit := func(d Delta) {
		if out != nil {
			*out = append(*out, d)
		}
	}
	if len(group) > 1 {
		// Keep only the last update per object; earlier ones are
		// observationally dead once the batch commits atomically.
		last := make(map[core.OID]int, len(group))
		for i, s := range group {
			last[s.OID] = i
		}
		if len(last) < len(group) {
			for i, s := range group {
				if last[s.OID] == i {
					emit(db.putLocked(sh, s))
				}
			}
			return
		}
	}
	for _, s := range group {
		emit(db.putLocked(sh, s))
	}
}

func (db *ShardedSightingDB) putLocked(sh *sightingShard, s core.Sighting) Delta {
	old := sh.byID[s.OID]
	if old != nil {
		sh.idx.Remove(s.OID, old.s.Pos)
		sh.noteRemove()
	} else if db.tier != nil {
		sh.memBytes += memCost(s.OID)
		if _, wasDead := sh.dead[s.OID]; wasDead {
			delete(sh.dead, s.OID)
			sh.memBytes -= tombCost(s.OID)
		}
	}
	entry := &sightingEntry{s: s}
	if db.ttl > 0 {
		entry.expires = db.clock().Add(db.ttl)
	}
	sh.byID[s.OID] = entry
	if sh.items != nil {
		sh.items.InsertItem(spatial.Item{ID: s.OID, Pos: s.Pos, Ref: entry})
	} else {
		sh.idx.Insert(s.OID, s.Pos)
	}
	sh.noteInsert(s.Pos)
	return putDelta(s, old)
}

// Get implements SightingStore. On a tiered store a memtable miss falls
// through to the disk runs, newest to oldest, gated by each run's key
// range and bloom filter; a memtable tombstone answers "gone" without
// touching disk. Like the all-RAM store, Get does not filter records
// whose TTL has passed but whose expiry has not been swept yet.
func (db *ShardedSightingDB) Get(id core.OID) (core.Sighting, bool) {
	sh := db.rlockOwner(id)
	defer sh.mu.RUnlock()
	e, ok := sh.byID[id]
	if ok {
		return e.s, true
	}
	if sh.tier != nil {
		if _, gone := sh.dead[id]; !gone {
			if rec, found := sh.tierLookup(db.tier, id); found && !rec.tombstone {
				return rec.s, true
			}
		}
	}
	return core.Sighting{}, false
}

// Remove implements SightingStore.
func (db *ShardedSightingDB) Remove(id core.OID) bool {
	_, ok := db.RemoveDelta(id)
	return ok
}

// RemoveDelta implements SightingStore. On a tiered store removing a
// record that lives only in a run leaves a memtable tombstone (persisted
// by the next flush, dropped with the shadowed versions at compaction)
// so the run-resident version stops being visible immediately.
func (db *ShardedSightingDB) RemoveDelta(id core.OID) (Delta, bool) {
	sh, g, i := db.lockOwner(id)
	defer sh.mu.Unlock()
	e, ok := sh.byID[id]
	if !ok {
		return db.removeColdLocked(sh, g, i, id, false)
	}
	db.logRemove(i, len(g.shards), id)
	sh.idx.Remove(id, e.s.Pos)
	delete(sh.byID, id)
	if db.tier != nil {
		sh.memBytes -= memCost(id)
		db.tombstoneLocked(sh, id)
	}
	sh.noteRemove()
	return removeDelta(id, e), true
}

// tombstoneLocked records a memtable tombstone for id. Caller holds the
// shard's write lock on a tiered store.
func (db *ShardedSightingDB) tombstoneLocked(sh *sightingShard, id core.OID) {
	if sh.dead == nil {
		sh.dead = make(map[core.OID]struct{})
	}
	if _, ok := sh.dead[id]; !ok {
		sh.dead[id] = struct{}{}
		sh.memBytes += tombCost(id)
	}
}

// removeColdLocked removes a record that is absent from the memtable but
// may live in a disk run: it resolves the newest on-disk version and, if
// live (and, for expiredOnly, past its TTL), logs the removal and plants
// a tombstone. Caller holds the shard's write lock.
func (db *ShardedSightingDB) removeColdLocked(sh *sightingShard, g *shardGen, i int, id core.OID, expiredOnly bool) (Delta, bool) {
	if sh.tier == nil {
		return Delta{}, false
	}
	if _, gone := sh.dead[id]; gone {
		return Delta{}, false
	}
	rec, found := sh.tierLookup(db.tier, id)
	if !found || rec.tombstone {
		return Delta{}, false
	}
	if expiredOnly && (db.ttl <= 0 || rec.expires.IsZero() || !db.clock().After(rec.expires)) {
		return Delta{}, false
	}
	db.logRemove(i, len(g.shards), id)
	db.tombstoneLocked(sh, id)
	return removeDelta(id, &sightingEntry{s: rec.s, expires: rec.expires}), true
}

// RemoveExpired implements SightingStore: the record is removed only if
// its TTL has passed at the time the shard lock is held, so a record
// refreshed since an expiry observation survives.
func (db *ShardedSightingDB) RemoveExpired(id core.OID) bool {
	_, ok := db.RemoveExpiredDelta(id)
	return ok
}

// RemoveExpiredDelta implements SightingStore.
func (db *ShardedSightingDB) RemoveExpiredDelta(id core.OID) (Delta, bool) {
	sh, g, i := db.lockOwner(id)
	defer sh.mu.Unlock()
	e, ok := sh.byID[id]
	if !ok {
		return db.removeColdLocked(sh, g, i, id, true)
	}
	if db.ttl <= 0 || e.expires.IsZero() || !db.clock().After(e.expires) {
		return Delta{}, false
	}
	db.logRemove(i, len(g.shards), id)
	sh.idx.Remove(id, e.s.Pos)
	delete(sh.byID, id)
	if db.tier != nil {
		sh.memBytes -= memCost(id)
		db.tombstoneLocked(sh, id)
	}
	sh.noteRemove()
	return removeDelta(id, e), true
}

// Touch implements SightingStore. On a tiered store touching a record
// that lives only in a run promotes it into the memtable with a fresh
// lease (write-ahead-logged like a put, so the refresh survives a crash
// even though the run keeps the stale expiry).
func (db *ShardedSightingDB) Touch(id core.OID) bool {
	sh, g, i := db.lockOwner(id)
	defer sh.mu.Unlock()
	e, ok := sh.byID[id]
	if !ok {
		if sh.tier == nil {
			return false
		}
		if _, gone := sh.dead[id]; gone {
			return false
		}
		rec, found := sh.tierLookup(db.tier, id)
		if !found || rec.tombstone {
			return false
		}
		if db.wal != nil {
			_ = db.wal.AppendPut(i, len(g.shards), rec.s)
		}
		db.putLocked(sh, rec.s)
		return true
	}
	if db.ttl > 0 {
		e.expires = db.clock().Add(db.ttl)
	}
	return true
}

// Expired implements SightingStore with a full scan, shard by shard. Both
// generations are visited while a migration is in flight; a record seen in
// both yields a duplicate id, which the caller's conditional RemoveExpired
// makes harmless.
func (db *ShardedSightingDB) Expired() []core.OID {
	if db.ttl <= 0 {
		return nil
	}
	var out []core.OID
	for _, sh := range db.liveShards() {
		now := db.clock()
		sh.mu.RLock()
		if !sh.moved {
			for id, e := range sh.byID {
				if !e.expires.IsZero() && now.After(e.expires) {
					out = append(out, id)
				}
			}
			if sh.tier != nil {
				// Run-resident records expire too: report them so the
				// caller tears them down through the normal removal path
				// (which plants the tombstone) before compaction drops
				// them. Full run scans — the janitor's backstop cadence,
				// not a hot path.
				sh.tierScanAll(db.tier, func(rec runRecord) bool {
					if !rec.expires.IsZero() && now.After(rec.expires) {
						out = append(out, rec.s.OID)
					}
					return true
				})
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// SweepExpired implements SightingStore. At most max records are examined
// in total, spread over the shards starting at a rotating shard, so
// successive calls with small budgets still cover the whole database; each
// shard resumes its own cursor and reports an id at most once per call.
func (db *ShardedSightingDB) SweepExpired(max int) []core.OID {
	if max <= 0 || db.ttl <= 0 {
		return nil
	}
	shards := db.liveShards()
	n := len(shards)
	start := int(db.sweepShardCursor.Add(1)-1) % n
	var out []core.OID
	remaining := max
	for i := 0; i < n && remaining > 0; i++ {
		ids, examined := db.sweepShard(shards[(start+i)%n], remaining)
		out = append(out, ids...)
		remaining -= examined
	}
	return out
}

// sweepShard examines up to max of one shard's records, resuming at the
// shard's cursor, and returns the expired ids found plus how many records
// it examined. The cursor's key snapshot is refilled only at the start of
// a call, never mid-call, so a call cannot wrap and report an id twice.
func (db *ShardedSightingDB) sweepShard(sh *sightingShard, max int) ([]core.OID, int) {
	sh.lockWrite()
	defer sh.mu.Unlock()
	if sh.moved || len(sh.byID) == 0 {
		return nil, 0
	}
	now := db.clock()
	var out []core.OID
	examined := 0
	for ; examined < max; examined++ {
		if sh.sweepPos >= len(sh.sweepKeys) {
			if examined > 0 {
				break // snapshot exhausted mid-call: resume next call
			}
			sh.sweepKeys = sh.sweepKeys[:0]
			for id := range sh.byID {
				sh.sweepKeys = append(sh.sweepKeys, id)
			}
			sh.sweepPos = 0
		}
		id := sh.sweepKeys[sh.sweepPos]
		sh.sweepPos++
		if e, ok := sh.byID[id]; ok && !e.expires.IsZero() && now.After(e.expires) {
			out = append(out, id)
		}
	}
	return out, examined
}

// SearchArea implements SightingStore by fanning the rectangle across the
// shards whose bounding rectangle intersects it. Each shard is visited
// under its read lock; the search is a consistent snapshot per shard.
// During a live resize both generations are scanned — the draining one
// first — and results are deduped by object id.
func (db *ShardedSightingDB) SearchArea(r geo.Rect, visit func(s core.Sighting) bool) {
	g := db.gen.Load()
	if g.prev == nil {
		db.searchShards(g.shards, r, visit)
		return
	}
	seen := make(map[core.OID]bool)
	dedup := func(s core.Sighting) bool {
		if seen[s.OID] {
			return true
		}
		seen[s.OID] = true
		return visit(s)
	}
	if db.searchPrevShards(g.prev.shards, r, dedup) {
		db.searchShards(g.shards, r, dedup)
	}
}

// scanPrevShards visits the draining generation's shards, with enumerate
// producing each shard's candidate records (called under that shard's
// read lock). An unmoved shard is still its objects' authority, so its
// hits are delivered directly, under its lock, like any other shard. A
// moved shard's hits come from its preserved pre-handoff snapshot and may
// have been superseded in the current generation since — they are
// buffered and re-validated against current authority only after the
// shard lock is released (Get locks the owning shard, which must never be
// attempted while a read lock on this one is held): a hit whose record
// mutated since the handoff is dropped here and the current generation's
// scan reports its fresh state instead. Reports whether the enumeration
// ran to completion.
func (db *ShardedSightingDB) scanPrevShards(shards []*sightingShard, enumerate func(sh *sightingShard, emit func(s core.Sighting) bool), visit func(s core.Sighting) bool) bool {
	var stale []core.Sighting
	for _, sh := range shards {
		stale = stale[:0]
		stopped := false
		sh.mu.RLock()
		moved := sh.moved
		enumerate(sh, func(s core.Sighting) bool {
			if moved {
				stale = append(stale, s)
				return true
			}
			if !visit(s) {
				stopped = true
				return false
			}
			return true
		})
		sh.mu.RUnlock()
		if stopped {
			return false
		}
		for _, s := range stale {
			if cur, ok := db.Get(s.OID); !ok || cur != s {
				continue
			}
			if !visit(s) {
				return false
			}
		}
	}
	return true
}

// searchPrevShards is scanPrevShards with the rectangle-search enumerator.
func (db *ShardedSightingDB) searchPrevShards(shards []*sightingShard, r geo.Rect, visit func(s core.Sighting) bool) bool {
	return db.scanPrevShards(shards, func(sh *sightingShard, emit func(s core.Sighting) bool) {
		if !sh.nonempty || !sh.bound.IntersectsClosed(r) {
			return
		}
		if sh.items != nil {
			sh.items.SearchItems(r, func(it spatial.Item) bool {
				e, ok := it.Ref.(*sightingEntry)
				if !ok {
					e = sh.byID[it.ID]
				}
				return emit(e.s)
			})
			return
		}
		sh.idx.Search(r, func(id core.OID, _ geo.Point) bool {
			return emit(sh.byID[id].s)
		})
	}, visit)
}

// searchShards runs the rectangle search over one generation's shards and
// reports whether the enumeration ran to completion (false once the visitor
// stopped it).
func (db *ShardedSightingDB) searchShards(shards []*sightingShard, r geo.Rect, visit func(s core.Sighting) bool) bool {
	stopped := false
	var sh *sightingShard
	// One inner closure pair for all shards; sh is rebound per iteration.
	// The payload path resolves the record straight off the index entry;
	// the fallback re-hashes through byID.
	innerItems := func(it spatial.Item) bool {
		e, ok := it.Ref.(*sightingEntry)
		if !ok {
			e = sh.byID[it.ID]
		}
		if !visit(e.s) {
			stopped = true
			return false
		}
		return true
	}
	inner := func(id core.OID, _ geo.Point) bool {
		if !visit(sh.byID[id].s) {
			stopped = true
			return false
		}
		return true
	}
	for _, cur := range shards {
		sh = cur
		sh.mu.RLock()
		// A moved shard is scanned too: its content is the immutable
		// pre-handoff snapshot, which is what keeps a query that loaded
		// this generation before a resize completed from missing records
		// (callers running against two generations dedupe by id).
		if sh.nonempty && sh.bound.IntersectsClosed(r) {
			if sh.items != nil {
				sh.items.SearchItems(r, innerItems)
			} else {
				sh.idx.Search(r, inner)
			}
		}
		if !stopped && sh.tier != nil {
			// Disk-resident candidates: scan only the runs whose MBR
			// intersects the query, re-validating each candidate against
			// the memtable and the newer runs (a pruned newer run may
			// hide the object's move out of the rectangle).
			sh.tierScanPruned(db.tier,
				func(run *tierRun) bool { return run.mbr.IntersectsClosed(r) },
				func(rec runRecord) bool {
					if !r.ContainsClosed(rec.s.Pos) {
						return true
					}
					if !visit(rec.s) {
						stopped = true
						return false
					}
					return true
				})
		}
		sh.mu.RUnlock()
		if stopped {
			return false
		}
	}
	return true
}

// NearestFunc implements SightingStore by merging resumable per-shard
// nearest-neighbor cursors in global distance order. Each shard is locked
// only for the duration of one cursor advance, so writers are not starved
// by a long enumeration, and a shard whose bounding rectangle lies beyond
// the distance at which the consumer stops is never opened at all. An
// entry removed between the advance and the visit is skipped. During a
// live resize the merge spans both generations and dedupes by object id
// (an entry observed in its pre-handoff and post-handoff shard is visited
// once).
func (db *ShardedSightingDB) NearestFunc(p geo.Point, visit func(s core.Sighting, dist float64) bool) {
	g := db.gen.Load()
	if g.prev == nil && len(g.shards) == 1 && db.tier == nil {
		// Nothing to merge: stream straight off the sub-index. A moved
		// shard streams its immutable pre-handoff snapshot, like any
		// query holding a generation a resize has since drained; the
		// Get re-resolution below keeps delivered records current.
		sh := g.shards[0]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		sh.idx.NearestFunc(p, func(id core.OID, _ geo.Point, dist float64) bool {
			return visit(sh.byID[id].s, dist)
		})
		return
	}
	shards := g.shards
	var seen map[core.OID]bool
	if g.prev != nil {
		shards = db.liveShards()
		seen = make(map[core.OID]bool)
	}
	if db.tier != nil && seen == nil {
		// A record can surface from both a shard's memtable cursor and
		// its run cursor (it moved while the query ran); dedupe by id.
		seen = make(map[core.OID]bool)
	}
	srcs := make([]spatial.CursorSource, 0, len(shards))
	for _, sh := range shards {
		sh := sh
		sh.mu.RLock()
		usable := sh.nonempty
		// Capture the sub-index now, under the lock: a handoff never
		// mutates a drained tree, so a cursor opened later on this
		// snapshot stays valid even if the shard is drained
		// mid-enumeration — its entries are re-validated per visit
		// through Get, like any concurrently mutated entry.
		idx := sh.idx
		minDist := 0.0
		if usable {
			minDist = sh.bound.DistToPoint(p)
		}
		sh.mu.RUnlock()
		if db.tier != nil {
			if src, ok := db.tierNearestSource(sh, p); ok {
				srcs = append(srcs, src)
			}
		}
		if !usable {
			continue
		}
		srcs = append(srcs, spatial.CursorSource{MinDist: minDist, Open: func() spatial.Cursor {
			sh.mu.RLock()
			inner := idx.NearestCursor(p)
			sh.mu.RUnlock()
			return spatial.LockCursor(&sh.mu, inner)
		}})
	}
	c := spatial.MergeSources(srcs)
	defer c.Close()
	for {
		n, ok := c.Next()
		if !ok {
			return
		}
		if seen != nil {
			if seen[n.ID] {
				continue
			}
			seen[n.ID] = true
		}
		s, found := db.Get(n.ID)
		if !found {
			continue
		}
		if !visit(s, n.Dist) {
			return
		}
	}
}

// ForEach implements SightingStore. Both generations are visited during a
// live resize, deduped by object id; hits from the draining generation
// are re-validated against current authority (see SearchArea) so a
// preserved pre-handoff snapshot cannot suppress a fresher record.
func (db *ShardedSightingDB) ForEach(visit func(s core.Sighting) bool) {
	g := db.gen.Load()
	if g.prev == nil {
		db.forEachShards(g.shards, visit)
		return
	}
	seen := make(map[core.OID]bool)
	dedup := func(s core.Sighting) bool {
		if seen[s.OID] {
			return true
		}
		seen[s.OID] = true
		return visit(s)
	}
	// Draining generation first, through the shared moved-shard
	// buffer-and-revalidate scanner; then the current generation.
	if db.scanPrevShards(g.prev.shards, func(sh *sightingShard, emit func(s core.Sighting) bool) {
		for _, e := range sh.byID {
			if !emit(e.s) {
				return
			}
		}
	}, dedup) {
		db.forEachShards(g.shards, dedup)
	}
}

// forEachShards visits one generation's shards, reporting whether the
// enumeration ran to completion.
func (db *ShardedSightingDB) forEachShards(shards []*sightingShard, visit func(s core.Sighting) bool) bool {
	for _, sh := range shards {
		stopped := false
		sh.mu.RLock()
		for _, e := range sh.byID {
			if !visit(e.s) {
				stopped = true
				break
			}
		}
		if !stopped && sh.tier != nil {
			stopped = !sh.tierScanAll(db.tier, func(rec runRecord) bool {
				return visit(rec.s)
			})
		}
		sh.mu.RUnlock()
		if stopped {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer for diagnostics.
func (db *ShardedSightingDB) String() string {
	return fmt.Sprintf("ShardedSightingDB(%d shards, %d records)", db.NumShards(), db.Len())
}

// logRemove write-ahead-logs one removal. Caller holds the shard's write
// lock.
func (db *ShardedSightingDB) logRemove(shard, count int, id core.OID) {
	if db.wal == nil {
		return
	}
	_ = db.wal.AppendRemove(shard, count, id)
}

// WALErr returns the sticky error of the first failed WAL append, or nil
// while the WAL is healthy (or absent). After a non-nil return the WAL has
// stopped logging and recovery will replay only the state up to the
// failure.
func (db *ShardedSightingDB) WALErr() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.Err()
}

// Recover rebuilds the store from its attached WAL, replaying all shard
// segments concurrently — the recovery-time payoff of sharding the log.
// Each shard's records fold into a live set (batches apply in order, later
// entries superseding earlier ones; removals delete), which then bulk-loads
// the shard's spatial index in one balanced build (Quadtree.Rebuild)
// instead of per-record inserts — replay input arrives in systematic
// order, the incremental-insertion worst case.
//
// Recover must run before the store is shared: it requires every shard to
// be empty and takes each shard's lock for the whole rebuild. Replayed
// records get a fresh soft-state TTL lease — the paper's expiry semantics
// re-age them if their objects stay silent after the restart. Without an
// attached WAL, Recover is a no-op. A log left mid-resize by a crash was
// already folded across the epoch boundary by OpenShardedWAL, so the store
// recovers at the epoch the resize was moving to.
// On a tiered store Recover first opens the tiers — sweeping crash
// leftovers, loading each shard's manifest and run metadata (O(metadata),
// no record reads) — and then replays only the short WAL tail covering
// the current memtable: everything older was flushed into a run before
// its segment was reset. That is the recovery-time payoff of tiering —
// restart cost proportional to the hot set, not the history. See
// RecoverBackground for serving reads before the replay finishes.
func (db *ShardedSightingDB) Recover() error {
	if err := db.openTiers(); err != nil {
		return err
	}
	if db.wal == nil {
		db.markWarm()
		return nil
	}
	g := db.gen.Load()
	errs := make([]error, len(g.shards))
	var wg sync.WaitGroup
	for i := range g.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = db.recoverShard(g, i)
		}(i)
	}
	wg.Wait()
	err := errors.Join(errs...)
	if err == nil {
		db.markWarm()
	}
	return err
}

// markWarm opens tier maintenance once recovery completed cleanly.
func (db *ShardedSightingDB) markWarm() {
	if db.tier != nil {
		db.tier.warmed.Store(true)
	}
}

// RecoverBackground is Recover with a per-shard readiness gate instead
// of a barrier: it opens the tiers synchronously (run metadata is all a
// disk-resident read needs), takes every shard's write lock, returns,
// and replays the WAL tails on background goroutines that release each
// shard's lock as soon as that shard's memtable is warm. An operation
// arriving before then simply blocks on the owning shard's lock for at
// most that shard's tail replay — bounded by the memtable budget — so a
// leaf restarting over a large tier serves disk-resident reads almost
// immediately instead of stalling for a full-store replay. WaitRecovered
// joins the background replay; tier maintenance stays gated until every
// shard is warm. On an untiered store it falls back to the synchronous
// Recover (there is no disk tier to serve from in the meantime).
func (db *ShardedSightingDB) RecoverBackground() error {
	ts := db.tier
	if ts == nil || db.wal == nil {
		return db.Recover()
	}
	if err := db.openTiers(); err != nil {
		return err
	}
	if !ts.warming.CompareAndSwap(false, true) {
		return errors.New("store: RecoverBackground called twice")
	}
	g := db.gen.Load()
	for _, sh := range g.shards {
		sh.mu.Lock()
	}
	ts.warmWG.Add(len(g.shards))
	for i := range g.shards {
		go func(i int) {
			defer ts.warmWG.Done()
			err := db.recoverShardLocked(g, i)
			g.shards[i].mu.Unlock()
			if err != nil {
				ts.warmMu.Lock()
				ts.warmErr = errors.Join(ts.warmErr, err)
				ts.warmMu.Unlock()
			}
		}(i)
	}
	go func() {
		ts.warmWG.Wait()
		ts.warmMu.Lock()
		failed := ts.warmErr != nil
		ts.warmMu.Unlock()
		if !failed {
			ts.warmed.Store(true)
		}
	}()
	return nil
}

// WaitRecovered blocks until a RecoverBackground replay has warmed every
// shard and returns its joined error. Immediate on stores recovered
// synchronously (or not at all).
func (db *ShardedSightingDB) WaitRecovered() error {
	ts := db.tier
	if ts == nil {
		return nil
	}
	ts.warmWG.Wait()
	ts.warmMu.Lock()
	defer ts.warmMu.Unlock()
	return ts.warmErr
}

// recoverShard replays one shard's segment and bulk-loads the shard.
func (db *ShardedSightingDB) recoverShard(g *shardGen, shard int) error {
	sh := g.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return db.recoverShardLocked(g, shard)
}

// recoverShardLocked is recoverShard with the shard's write lock already
// held by the caller.
func (db *ShardedSightingDB) recoverShardLocked(g *shardGen, shard int) error {
	sh := g.shards[shard]
	if len(sh.byID) != 0 {
		return fmt.Errorf("store: recovering shard %d over %d live records (Recover must run on an empty store)", shard, len(sh.byID))
	}
	tiered := sh.tier != nil
	live := make(map[core.OID]core.Sighting)
	var dead map[core.OID]struct{}
	if tiered {
		dead = make(map[core.OID]struct{})
	}
	replayed := int64(0)
	err := db.wal.ReplayShard(shard, func(rec WALRecord) error {
		switch rec.Op {
		case WALSightingBatch:
			for _, s := range rec.Sightings {
				live[s.OID] = s
				if tiered {
					delete(dead, s.OID)
				}
			}
			replayed += int64(len(rec.Sightings))
		case WALSightingRemove:
			delete(live, rec.OID)
			if tiered {
				// The removed id's older versions may live in a run:
				// rebuild the memtable tombstone that shadowed them.
				dead[rec.OID] = struct{}{}
			}
			replayed++
		default:
			return fmt.Errorf("store: unexpected WAL op %q in sighting shard %d", rec.Op, shard)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: replaying sighting shard %d: %w", shard, err)
	}
	if tiered {
		sh.dead = dead
		sh.memBytes = 0
		for id := range dead {
			sh.memBytes += tombCost(id)
		}
		for id := range live {
			sh.memBytes += memCost(id)
		}
	}
	// Tiered shards never rewrite the segment from the live set here: that
	// would drop the tail's tombstones and resurrect run-resident versions
	// on the next crash. Their segment is reset by the next flush instead.
	if !tiered && replayed > int64(len(live))+walCompactSlack {
		// The history dwarfs the live set: rewrite the segment now so the
		// next restart replays the snapshot, not the churn. Best-effort —
		// a failure (full disk, say) keeps the original correct log, so
		// recovery itself still succeeds; the janitor's grow-triggered
		// pass will retry later.
		liveSlice := make([]core.Sighting, 0, len(live))
		for _, s := range live {
			liveSlice = append(liveSlice, s)
		}
		_ = db.wal.CompactShard(shard, liveSlice)
	}
	var expires time.Time
	if db.ttl > 0 {
		expires = db.clock().Add(db.ttl)
	}
	items := make([]spatial.Item, 0, len(live))
	for _, s := range live {
		e := &sightingEntry{s: s, expires: expires}
		sh.byID[s.OID] = e
		items = append(items, spatial.Item{ID: s.OID, Pos: s.Pos, Ref: e})
		sh.noteInsert(s.Pos)
	}
	if qt, ok := sh.idx.(*spatial.Quadtree); ok {
		qt.Rebuild(items)
	} else if sh.items != nil {
		for _, it := range items {
			sh.items.InsertItem(it)
		}
	} else {
		for _, it := range items {
			sh.idx.Insert(it.ID, it.Pos)
		}
	}
	return nil
}

// CompactWAL rewrites every shard segment to exactly its live sightings,
// shard by shard under the shard lock (so no concurrent commit can fall
// between the snapshot and the rewrite). Call it to keep replay time
// proportional to the live set instead of the update history; the server's
// janitor drives the grow-triggered variant, CompactWALIfGrown. Without an
// attached WAL it is a no-op. Compaction serializes with Resize.
func (db *ShardedSightingDB) CompactWAL() error {
	if db.wal == nil {
		return nil
	}
	if db.tier != nil {
		// A live-set rewrite would drop the segment's tombstones while
		// their shadowed versions still live in runs; tiered stores reset
		// segments at flush time instead (MaintainTiers).
		return db.MaintainTiers()
	}
	if err := db.wal.Err(); err != nil {
		// A down WAL has stopped logging — and after a resize whose epoch
		// switch failed, its segment layout no longer matches the store's
		// shard count, so compaction must not index into it. The sticky
		// error is the answer.
		return err
	}
	db.resizeMu.Lock()
	defer db.resizeMu.Unlock()
	g := db.gen.Load()
	var errs []error
	for i := range g.shards {
		if err := db.compactShard(g, i); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// CompactWALIfGrown compacts only the shards whose segment has grown by
// more than one live-set (plus walCompactSlack) since their last compaction — the
// classic log-structured policy: amortized rewrite cost stays a constant
// fraction of append work, and an idle or freshly compacted shard is never
// rewritten. Cheap when nothing grew; safe to call on every janitor tick.
// While a Resize is in flight the pass is skipped (the resize itself
// rewrites every segment under the new mapping).
func (db *ShardedSightingDB) CompactWALIfGrown() error {
	if db.tier != nil {
		// Tiered stores flush and compact through MaintainTiers; a
		// live-set segment rewrite here would lose tombstones (see
		// CompactWAL).
		return db.MaintainTiers()
	}
	if db.wal == nil || db.wal.Err() != nil {
		// A down WAL has stopped logging; there is nothing worth
		// rewriting and the sticky error is surfaced through WALErr.
		return nil
	}
	if !db.resizeMu.TryLock() {
		return nil
	}
	defer db.resizeMu.Unlock()
	g := db.gen.Load()
	var errs []error
	for i := range g.shards {
		appended := db.wal.AppendedSince(i)
		if appended == 0 {
			continue
		}
		sh := g.shards[i]
		sh.mu.RLock()
		grown := appended > int64(len(sh.byID))+walCompactSlack
		sh.mu.RUnlock()
		if !grown {
			continue
		}
		if err := db.compactShard(g, i); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// compactShard snapshots one shard's live set under its lock and rewrites
// the segment. In the WAL's asynchronous mode the disk work happens
// outside the shard lock — updates only stall for the queue drain and the
// in-memory snapshot, while records appended during the rewrite wait in
// the buffer and land after the snapshot (BeginCompact/FinishCompact).
// Caller holds resizeMu, so the generation and the WAL layout are stable.
func (db *ShardedSightingDB) compactShard(g *shardGen, i int) error {
	sh := g.shards[i]
	if db.wal.Asynchronous() {
		sh.mu.Lock()
		if err := db.wal.BeginCompact(i); err != nil {
			sh.mu.Unlock()
			return err
		}
		live := sh.liveSnapshot()
		sh.mu.Unlock()
		return db.wal.FinishCompact(i, live)
	}
	// Synchronous mode appends directly to the segment under the shard
	// lock, so the rewrite must hold it too.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return db.wal.CompactShard(i, sh.liveSnapshot())
}

// liveSnapshot copies the shard's live sightings. Caller holds the shard's
// lock.
func (sh *sightingShard) liveSnapshot() []core.Sighting {
	live := make([]core.Sighting, 0, len(sh.byID))
	for _, e := range sh.byID {
		live = append(live, e.s)
	}
	return live
}
