package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/spatial"
)

// ShardedSightingDB is a SightingStore partitioned into N independently
// locked shards keyed by object id. Each shard owns its slice of the hash
// index, its own spatial sub-index and its own expiry-sweep cursor, all
// guarded by one shard lock — so the Remove+Insert pair of an update is
// applied atomically per shard and updates to different shards never
// contend.
//
// Sharding is by object id, not by space: the update path (the hot path of
// the paper's workloads) stays O(1) lock acquisitions regardless of where
// an object moves, while range and nearest-neighbor queries fan out across
// all shards and merge. Range results concatenate; nearest-neighbor streams
// merge in global distance order via spatial.MergeNearest.
type ShardedSightingDB struct {
	shards []sightingShard
	ttl    time.Duration
	clock  func() time.Time
	// sweepShardCursor rotates the shard SweepExpired starts at, so
	// small budgets still cover every shard over successive calls.
	sweepShardCursor atomic.Uint64
}

type sightingShard struct {
	mu   sync.RWMutex
	idx  spatial.Index
	byID map[core.OID]*sightingEntry

	// sweep cursor for the amortized expiry scan.
	sweepKeys []core.OID
	sweepPos  int
}

var _ SightingStore = (*ShardedSightingDB)(nil)

// NewShardedSightingDB returns an empty sharded sighting database. The
// shard count comes from WithShards (default 1, which is behaviorally the
// single-lock SightingDB).
func NewShardedSightingDB(opts ...SightingDBOption) *ShardedSightingDB {
	cfg := defaultSightingConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	db := &ShardedSightingDB{
		shards: make([]sightingShard, cfg.shards),
		ttl:    cfg.ttl,
		clock:  cfg.clock,
	}
	for i := range db.shards {
		db.shards[i].idx = cfg.newIndex()
		db.shards[i].byID = make(map[core.OID]*sightingEntry)
	}
	return db
}

// NumShards implements SightingStore.
func (db *ShardedSightingDB) NumShards() int { return len(db.shards) }

// ShardFor implements SightingStore.
func (db *ShardedSightingDB) ShardFor(id core.OID) int {
	return spatial.ShardFor(id, len(db.shards))
}

func (db *ShardedSightingDB) shard(id core.OID) *sightingShard {
	return &db.shards[db.ShardFor(id)]
}

// Len implements SightingStore.
func (db *ShardedSightingDB) Len() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		n += len(sh.byID)
		sh.mu.RUnlock()
	}
	return n
}

// Put implements SightingStore.
func (db *ShardedSightingDB) Put(s core.Sighting) {
	sh := db.shard(s.OID)
	sh.mu.Lock()
	db.putLocked(sh, s)
	sh.mu.Unlock()
}

// PutBatch implements SightingStore: the batch is grouped by shard and each
// group applied under a single lock acquisition. Within a group, updates to
// the same object are coalesced — only the last sighting per object touches
// the spatial index, fusing its Remove+Insert pair once instead of once per
// superseded update.
func (db *ShardedSightingDB) PutBatch(batch []core.Sighting) {
	switch len(batch) {
	case 0:
		return
	case 1:
		db.Put(batch[0])
		return
	}
	if len(db.shards) == 1 {
		db.putGroup(&db.shards[0], batch)
		return
	}
	// Fast path: batches assembled by a per-shard pipeline lane are
	// single-shard by construction; detect that without allocating the
	// per-shard grouping.
	first := db.ShardFor(batch[0].OID)
	same := true
	for _, s := range batch[1:] {
		if db.ShardFor(s.OID) != first {
			same = false
			break
		}
	}
	if same {
		db.putGroup(&db.shards[first], batch)
		return
	}
	groups := make([][]core.Sighting, len(db.shards))
	for _, s := range batch {
		i := db.ShardFor(s.OID)
		groups[i] = append(groups[i], s)
	}
	for i, g := range groups {
		if len(g) > 0 {
			db.putGroup(&db.shards[i], g)
		}
	}
}

// putGroup applies one shard's slice of a batch under one lock acquisition,
// coalescing superseded updates to the same object.
func (db *ShardedSightingDB) putGroup(sh *sightingShard, group []core.Sighting) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(group) > 1 {
		// Keep only the last update per object; earlier ones are
		// observationally dead once the batch commits atomically.
		last := make(map[core.OID]int, len(group))
		for i, s := range group {
			last[s.OID] = i
		}
		if len(last) < len(group) {
			for i, s := range group {
				if last[s.OID] == i {
					db.putLocked(sh, s)
				}
			}
			return
		}
	}
	for _, s := range group {
		db.putLocked(sh, s)
	}
}

func (db *ShardedSightingDB) putLocked(sh *sightingShard, s core.Sighting) {
	if old, ok := sh.byID[s.OID]; ok {
		sh.idx.Remove(s.OID, old.s.Pos)
	}
	entry := &sightingEntry{s: s}
	if db.ttl > 0 {
		entry.expires = db.clock().Add(db.ttl)
	}
	sh.byID[s.OID] = entry
	sh.idx.Insert(s.OID, s.Pos)
}

// Get implements SightingStore.
func (db *ShardedSightingDB) Get(id core.OID) (core.Sighting, bool) {
	sh := db.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.byID[id]
	if !ok {
		return core.Sighting{}, false
	}
	return e.s, true
}

// Remove implements SightingStore.
func (db *ShardedSightingDB) Remove(id core.OID) bool {
	sh := db.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.byID[id]
	if !ok {
		return false
	}
	sh.idx.Remove(id, e.s.Pos)
	delete(sh.byID, id)
	return true
}

// RemoveExpired implements SightingStore: the record is removed only if
// its TTL has passed at the time the shard lock is held, so a record
// refreshed since an expiry observation survives.
func (db *ShardedSightingDB) RemoveExpired(id core.OID) bool {
	sh := db.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.byID[id]
	if !ok || db.ttl <= 0 || e.expires.IsZero() || !db.clock().After(e.expires) {
		return false
	}
	sh.idx.Remove(id, e.s.Pos)
	delete(sh.byID, id)
	return true
}

// Touch implements SightingStore.
func (db *ShardedSightingDB) Touch(id core.OID) bool {
	sh := db.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.byID[id]
	if !ok {
		return false
	}
	if db.ttl > 0 {
		e.expires = db.clock().Add(db.ttl)
	}
	return true
}

// Expired implements SightingStore with a full scan, shard by shard.
func (db *ShardedSightingDB) Expired() []core.OID {
	if db.ttl <= 0 {
		return nil
	}
	var out []core.OID
	for i := range db.shards {
		sh := &db.shards[i]
		now := db.clock()
		sh.mu.RLock()
		for id, e := range sh.byID {
			if !e.expires.IsZero() && now.After(e.expires) {
				out = append(out, id)
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// SweepExpired implements SightingStore. At most max records are examined
// in total, spread over the shards starting at a rotating shard, so
// successive calls with small budgets still cover the whole database; each
// shard resumes its own cursor and reports an id at most once per call.
func (db *ShardedSightingDB) SweepExpired(max int) []core.OID {
	if max <= 0 || db.ttl <= 0 {
		return nil
	}
	n := len(db.shards)
	start := int(db.sweepShardCursor.Add(1)-1) % n
	var out []core.OID
	remaining := max
	for i := 0; i < n && remaining > 0; i++ {
		ids, examined := db.sweepShard(&db.shards[(start+i)%n], remaining)
		out = append(out, ids...)
		remaining -= examined
	}
	return out
}

// sweepShard examines up to max of one shard's records, resuming at the
// shard's cursor, and returns the expired ids found plus how many records
// it examined. The cursor's key snapshot is refilled only at the start of
// a call, never mid-call, so a call cannot wrap and report an id twice.
func (db *ShardedSightingDB) sweepShard(sh *sightingShard, max int) ([]core.OID, int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.byID) == 0 {
		return nil, 0
	}
	now := db.clock()
	var out []core.OID
	examined := 0
	for ; examined < max; examined++ {
		if sh.sweepPos >= len(sh.sweepKeys) {
			if examined > 0 {
				break // snapshot exhausted mid-call: resume next call
			}
			sh.sweepKeys = sh.sweepKeys[:0]
			for id := range sh.byID {
				sh.sweepKeys = append(sh.sweepKeys, id)
			}
			sh.sweepPos = 0
		}
		id := sh.sweepKeys[sh.sweepPos]
		sh.sweepPos++
		if e, ok := sh.byID[id]; ok && !e.expires.IsZero() && now.After(e.expires) {
			out = append(out, id)
		}
	}
	return out, examined
}

// SearchArea implements SightingStore by fanning the rectangle across all
// shards. Each shard is visited under its read lock; the search is a
// consistent snapshot per shard.
func (db *ShardedSightingDB) SearchArea(r geo.Rect, visit func(s core.Sighting) bool) {
	for i := range db.shards {
		sh := &db.shards[i]
		stopped := false
		sh.mu.RLock()
		sh.idx.Search(r, func(id core.OID, _ geo.Point) bool {
			if !visit(sh.byID[id].s) {
				stopped = true
				return false
			}
			return true
		})
		sh.mu.RUnlock()
		if stopped {
			return
		}
	}
}

// NearestFunc implements SightingStore by merging the per-shard nearest
// streams in global distance order. Shard locks are held only per buffered
// fetch, so writers are not starved by a long enumeration; an entry removed
// between fetch and visit is skipped.
func (db *ShardedSightingDB) NearestFunc(p geo.Point, visit func(s core.Sighting, dist float64) bool) {
	if len(db.shards) == 1 {
		// Nothing to merge: stream straight off the sub-index.
		sh := &db.shards[0]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		sh.idx.NearestFunc(p, func(id core.OID, _ geo.Point, dist float64) bool {
			return visit(sh.byID[id].s, dist)
		})
		return
	}
	fetches := make([]spatial.NearestFetch, len(db.shards))
	for i := range db.shards {
		sh := &db.shards[i]
		fetch := spatial.FetchFromIndex(sh.idx, p)
		fetches[i] = func(k int) []spatial.Neighbor {
			sh.mu.RLock()
			defer sh.mu.RUnlock()
			return fetch(k)
		}
	}
	spatial.MergeNearest(fetches, func(n spatial.Neighbor) bool {
		s, ok := db.Get(n.ID)
		if !ok {
			return true
		}
		return visit(s, n.Dist)
	})
}

// ForEach implements SightingStore.
func (db *ShardedSightingDB) ForEach(visit func(s core.Sighting) bool) {
	for i := range db.shards {
		sh := &db.shards[i]
		stopped := false
		sh.mu.RLock()
		for _, e := range sh.byID {
			if !visit(e.s) {
				stopped = true
				break
			}
		}
		sh.mu.RUnlock()
		if stopped {
			return
		}
	}
}

// String implements fmt.Stringer for diagnostics.
func (db *ShardedSightingDB) String() string {
	return fmt.Sprintf("ShardedSightingDB(%d shards, %d records)", len(db.shards), db.Len())
}
