package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/spatial"
)

// ShardedSightingDB is a SightingStore partitioned into N independently
// locked shards keyed by object id. Each shard owns its slice of the hash
// index, its own spatial sub-index and its own expiry-sweep cursor, all
// guarded by one shard lock — so the Remove+Insert pair of an update is
// applied atomically per shard and updates to different shards never
// contend.
//
// Sharding is by object id, not by space: the update path (the hot path of
// the paper's workloads) stays O(1) lock acquisitions regardless of where
// an object moves, while range and nearest-neighbor queries fan out across
// all shards and merge. Range results concatenate; nearest-neighbor streams
// merge in global distance order via resumable per-shard cursors
// (spatial.MergeSources), each shard advanced exactly one neighbor at a
// time. Every shard also maintains a conservative bounding rectangle over
// its live positions (grown on insert, lazily tightened after removals —
// see the spatial package documentation for the invariant), so a range
// search skips shards whose rectangle misses the query and the
// nearest-neighbor merge never opens a shard whose rectangle lies beyond
// the consumer's stopping distance.
type ShardedSightingDB struct {
	shards []sightingShard
	ttl    time.Duration
	clock  func() time.Time
	// sweepShardCursor rotates the shard SweepExpired starts at, so
	// small budgets still cover every shard over successive calls.
	sweepShardCursor atomic.Uint64

	// wal, when non-nil, receives every committed batch and removal
	// before it is applied; appends happen under the owning shard's lock,
	// so each segment's order matches its shard's application order. A
	// failed append marks the WAL down and stops further logging, keeping
	// every segment a consistent prefix of its shard's history; the
	// sticky error is surfaced through WALErr. The store itself stays
	// available without the log — the sightingDB is soft state, as in the
	// paper's baseline.
	wal *ShardedWAL
}

type sightingShard struct {
	mu  sync.RWMutex
	idx spatial.Index
	// items is idx narrowed to the payload-carrying capability (nil when
	// the index kind does not support it): entries then carry their
	// *sightingEntry, so a range search resolves records straight off the
	// index node instead of re-hashing every match through byID.
	items spatial.ItemIndex
	byID  map[core.OID]*sightingEntry

	// bound conservatively contains every live position; nonempty and
	// stale implement the lazily-tightened invariant (recompute once
	// stale removals outnumber live records — amortized O(1)).
	bound    geo.Rect
	nonempty bool
	stale    int

	// sweep cursor for the amortized expiry scan.
	sweepKeys []core.OID
	sweepPos  int
}

// noteInsert grows the shard's bounding rectangle to cover p. Caller holds
// the shard's write lock.
func (sh *sightingShard) noteInsert(p geo.Point) {
	if !sh.nonempty {
		sh.bound = geo.Rect{Min: p, Max: p}
		sh.nonempty = true
		sh.stale = 0
		return
	}
	sh.bound.GrowToInclude(p)
}

// noteRemove records a removal against the bounding rectangle, tightening
// it lazily via the co-located hash index. Caller holds the shard's write
// lock.
func (sh *sightingShard) noteRemove() {
	if len(sh.byID) == 0 {
		sh.nonempty = false
		sh.stale = 0
		return
	}
	sh.stale++
	if sh.stale <= len(sh.byID) {
		return
	}
	first := true
	var b geo.Rect
	for _, e := range sh.byID {
		if first {
			b = geo.Rect{Min: e.s.Pos, Max: e.s.Pos}
			first = false
			continue
		}
		b.GrowToInclude(e.s.Pos)
	}
	sh.bound = b
	sh.stale = 0
}

var _ SightingStore = (*ShardedSightingDB)(nil)

// NewShardedSightingDB returns an empty sharded sighting database. The
// shard count comes from WithShards (default 1, which is behaviorally the
// single-lock SightingDB); with WithSightingWAL the store adopts the WAL's
// segment count instead, since the persistent log fixes the id→shard
// mapping. Call Recover before use to replay an existing log.
func NewShardedSightingDB(opts ...SightingDBOption) *ShardedSightingDB {
	cfg := defaultSightingConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.wal != nil {
		cfg.shards = cfg.wal.NumShards()
	}
	db := &ShardedSightingDB{
		shards: make([]sightingShard, cfg.shards),
		ttl:    cfg.ttl,
		clock:  cfg.clock,
		wal:    cfg.wal,
	}
	for i := range db.shards {
		db.shards[i].idx = cfg.newIndex()
		db.shards[i].items, _ = db.shards[i].idx.(spatial.ItemIndex)
		db.shards[i].byID = make(map[core.OID]*sightingEntry)
	}
	return db
}

// NumShards implements SightingStore.
func (db *ShardedSightingDB) NumShards() int { return len(db.shards) }

// ShardFor implements SightingStore.
func (db *ShardedSightingDB) ShardFor(id core.OID) int {
	return spatial.ShardFor(id, len(db.shards))
}

func (db *ShardedSightingDB) shard(id core.OID) *sightingShard {
	return &db.shards[db.ShardFor(id)]
}

// Len implements SightingStore.
func (db *ShardedSightingDB) Len() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		n += len(sh.byID)
		sh.mu.RUnlock()
	}
	return n
}

// Put implements SightingStore.
func (db *ShardedSightingDB) Put(s core.Sighting) {
	i := db.ShardFor(s.OID)
	sh := &db.shards[i]
	sh.mu.Lock()
	if db.wal != nil {
		_ = db.wal.AppendPut(i, s)
	}
	db.putLocked(sh, s)
	sh.mu.Unlock()
}

// PutBatch implements SightingStore: the batch is grouped by shard and each
// group applied under a single lock acquisition. Within a group, updates to
// the same object are coalesced — only the last sighting per object touches
// the spatial index, fusing its Remove+Insert pair once instead of once per
// superseded update.
func (db *ShardedSightingDB) PutBatch(batch []core.Sighting) {
	switch len(batch) {
	case 0:
		return
	case 1:
		db.Put(batch[0])
		return
	}
	if len(db.shards) == 1 {
		db.putGroup(0, batch)
		return
	}
	// Fast path: batches assembled by a per-shard pipeline lane are
	// single-shard by construction; detect that without allocating the
	// per-shard grouping.
	first := db.ShardFor(batch[0].OID)
	same := true
	for _, s := range batch[1:] {
		if db.ShardFor(s.OID) != first {
			same = false
			break
		}
	}
	if same {
		db.putGroup(first, batch)
		return
	}
	groups := make([][]core.Sighting, len(db.shards))
	for _, s := range batch {
		i := db.ShardFor(s.OID)
		groups[i] = append(groups[i], s)
	}
	for i, g := range groups {
		if len(g) > 0 {
			db.putGroup(i, g)
		}
	}
}

// putGroup applies one shard's slice of a batch under one lock acquisition,
// coalescing superseded updates to the same object. With a WAL attached the
// whole group becomes a single write-ahead append — the batch is the
// durability unit, amortizing marshal and flush cost the same way the
// pipeline's combining lane amortizes lock cost.
func (db *ShardedSightingDB) putGroup(shard int, group []core.Sighting) {
	sh := &db.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if db.wal != nil {
		db.logBatch(shard, group)
	}
	if len(group) > 1 {
		// Keep only the last update per object; earlier ones are
		// observationally dead once the batch commits atomically.
		last := make(map[core.OID]int, len(group))
		for i, s := range group {
			last[s.OID] = i
		}
		if len(last) < len(group) {
			for i, s := range group {
				if last[s.OID] == i {
					db.putLocked(sh, s)
				}
			}
			return
		}
	}
	for _, s := range group {
		db.putLocked(sh, s)
	}
}

func (db *ShardedSightingDB) putLocked(sh *sightingShard, s core.Sighting) {
	if old, ok := sh.byID[s.OID]; ok {
		sh.idx.Remove(s.OID, old.s.Pos)
		sh.noteRemove()
	}
	entry := &sightingEntry{s: s}
	if db.ttl > 0 {
		entry.expires = db.clock().Add(db.ttl)
	}
	sh.byID[s.OID] = entry
	if sh.items != nil {
		sh.items.InsertItem(spatial.Item{ID: s.OID, Pos: s.Pos, Ref: entry})
	} else {
		sh.idx.Insert(s.OID, s.Pos)
	}
	sh.noteInsert(s.Pos)
}

// Get implements SightingStore.
func (db *ShardedSightingDB) Get(id core.OID) (core.Sighting, bool) {
	sh := db.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.byID[id]
	if !ok {
		return core.Sighting{}, false
	}
	return e.s, true
}

// Remove implements SightingStore.
func (db *ShardedSightingDB) Remove(id core.OID) bool {
	i := db.ShardFor(id)
	sh := &db.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.byID[id]
	if !ok {
		return false
	}
	db.logRemove(i, id)
	sh.idx.Remove(id, e.s.Pos)
	delete(sh.byID, id)
	sh.noteRemove()
	return true
}

// RemoveExpired implements SightingStore: the record is removed only if
// its TTL has passed at the time the shard lock is held, so a record
// refreshed since an expiry observation survives.
func (db *ShardedSightingDB) RemoveExpired(id core.OID) bool {
	i := db.ShardFor(id)
	sh := &db.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.byID[id]
	if !ok || db.ttl <= 0 || e.expires.IsZero() || !db.clock().After(e.expires) {
		return false
	}
	db.logRemove(i, id)
	sh.idx.Remove(id, e.s.Pos)
	delete(sh.byID, id)
	sh.noteRemove()
	return true
}

// Touch implements SightingStore.
func (db *ShardedSightingDB) Touch(id core.OID) bool {
	sh := db.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.byID[id]
	if !ok {
		return false
	}
	if db.ttl > 0 {
		e.expires = db.clock().Add(db.ttl)
	}
	return true
}

// Expired implements SightingStore with a full scan, shard by shard.
func (db *ShardedSightingDB) Expired() []core.OID {
	if db.ttl <= 0 {
		return nil
	}
	var out []core.OID
	for i := range db.shards {
		sh := &db.shards[i]
		now := db.clock()
		sh.mu.RLock()
		for id, e := range sh.byID {
			if !e.expires.IsZero() && now.After(e.expires) {
				out = append(out, id)
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// SweepExpired implements SightingStore. At most max records are examined
// in total, spread over the shards starting at a rotating shard, so
// successive calls with small budgets still cover the whole database; each
// shard resumes its own cursor and reports an id at most once per call.
func (db *ShardedSightingDB) SweepExpired(max int) []core.OID {
	if max <= 0 || db.ttl <= 0 {
		return nil
	}
	n := len(db.shards)
	start := int(db.sweepShardCursor.Add(1)-1) % n
	var out []core.OID
	remaining := max
	for i := 0; i < n && remaining > 0; i++ {
		ids, examined := db.sweepShard(&db.shards[(start+i)%n], remaining)
		out = append(out, ids...)
		remaining -= examined
	}
	return out
}

// sweepShard examines up to max of one shard's records, resuming at the
// shard's cursor, and returns the expired ids found plus how many records
// it examined. The cursor's key snapshot is refilled only at the start of
// a call, never mid-call, so a call cannot wrap and report an id twice.
func (db *ShardedSightingDB) sweepShard(sh *sightingShard, max int) ([]core.OID, int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.byID) == 0 {
		return nil, 0
	}
	now := db.clock()
	var out []core.OID
	examined := 0
	for ; examined < max; examined++ {
		if sh.sweepPos >= len(sh.sweepKeys) {
			if examined > 0 {
				break // snapshot exhausted mid-call: resume next call
			}
			sh.sweepKeys = sh.sweepKeys[:0]
			for id := range sh.byID {
				sh.sweepKeys = append(sh.sweepKeys, id)
			}
			sh.sweepPos = 0
		}
		id := sh.sweepKeys[sh.sweepPos]
		sh.sweepPos++
		if e, ok := sh.byID[id]; ok && !e.expires.IsZero() && now.After(e.expires) {
			out = append(out, id)
		}
	}
	return out, examined
}

// SearchArea implements SightingStore by fanning the rectangle across the
// shards whose bounding rectangle intersects it. Each shard is visited
// under its read lock; the search is a consistent snapshot per shard.
func (db *ShardedSightingDB) SearchArea(r geo.Rect, visit func(s core.Sighting) bool) {
	stopped := false
	var sh *sightingShard
	// One inner closure pair for all shards; sh is rebound per iteration.
	// The payload path resolves the record straight off the index entry;
	// the fallback re-hashes through byID.
	innerItems := func(it spatial.Item) bool {
		e, ok := it.Ref.(*sightingEntry)
		if !ok {
			e = sh.byID[it.ID]
		}
		if !visit(e.s) {
			stopped = true
			return false
		}
		return true
	}
	inner := func(id core.OID, _ geo.Point) bool {
		if !visit(sh.byID[id].s) {
			stopped = true
			return false
		}
		return true
	}
	for i := range db.shards {
		sh = &db.shards[i]
		sh.mu.RLock()
		if sh.nonempty && sh.bound.IntersectsClosed(r) {
			if sh.items != nil {
				sh.items.SearchItems(r, innerItems)
			} else {
				sh.idx.Search(r, inner)
			}
		}
		sh.mu.RUnlock()
		if stopped {
			return
		}
	}
}

// NearestFunc implements SightingStore by merging resumable per-shard
// nearest-neighbor cursors in global distance order. Each shard is locked
// only for the duration of one cursor advance, so writers are not starved
// by a long enumeration, and a shard whose bounding rectangle lies beyond
// the distance at which the consumer stops is never opened at all. An
// entry removed between the advance and the visit is skipped.
func (db *ShardedSightingDB) NearestFunc(p geo.Point, visit func(s core.Sighting, dist float64) bool) {
	if len(db.shards) == 1 {
		// Nothing to merge: stream straight off the sub-index.
		sh := &db.shards[0]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		sh.idx.NearestFunc(p, func(id core.OID, _ geo.Point, dist float64) bool {
			return visit(sh.byID[id].s, dist)
		})
		return
	}
	srcs := make([]spatial.CursorSource, 0, len(db.shards))
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		nonempty := sh.nonempty
		minDist := 0.0
		if nonempty {
			minDist = sh.bound.DistToPoint(p)
		}
		sh.mu.RUnlock()
		if !nonempty {
			continue
		}
		srcs = append(srcs, spatial.CursorSource{MinDist: minDist, Open: func() spatial.Cursor {
			sh.mu.RLock()
			inner := sh.idx.NearestCursor(p)
			sh.mu.RUnlock()
			return spatial.LockCursor(&sh.mu, inner)
		}})
	}
	c := spatial.MergeSources(srcs)
	defer c.Close()
	for {
		n, ok := c.Next()
		if !ok {
			return
		}
		s, found := db.Get(n.ID)
		if !found {
			continue
		}
		if !visit(s, n.Dist) {
			return
		}
	}
}

// ForEach implements SightingStore.
func (db *ShardedSightingDB) ForEach(visit func(s core.Sighting) bool) {
	for i := range db.shards {
		sh := &db.shards[i]
		stopped := false
		sh.mu.RLock()
		for _, e := range sh.byID {
			if !visit(e.s) {
				stopped = true
				break
			}
		}
		sh.mu.RUnlock()
		if stopped {
			return
		}
	}
}

// String implements fmt.Stringer for diagnostics.
func (db *ShardedSightingDB) String() string {
	return fmt.Sprintf("ShardedSightingDB(%d shards, %d records)", len(db.shards), db.Len())
}

// logBatch write-ahead-logs one shard group. Caller holds the shard's write
// lock, which makes the segment's append order the shard's commit order.
// Append errors are sticky inside the WAL (see ShardedWAL) and surfaced
// through WALErr; the store keeps serving.
func (db *ShardedSightingDB) logBatch(shard int, batch []core.Sighting) {
	_ = db.wal.AppendBatch(shard, batch)
}

// logRemove write-ahead-logs one removal. Caller holds the shard's write
// lock.
func (db *ShardedSightingDB) logRemove(shard int, id core.OID) {
	if db.wal == nil {
		return
	}
	_ = db.wal.AppendRemove(shard, id)
}

// WALErr returns the sticky error of the first failed WAL append, or nil
// while the WAL is healthy (or absent). After a non-nil return the WAL has
// stopped logging and recovery will replay only the state up to the
// failure.
func (db *ShardedSightingDB) WALErr() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.Err()
}

// Recover rebuilds the store from its attached WAL, replaying all shard
// segments concurrently — the recovery-time payoff of sharding the log.
// Each shard's records fold into a live set (batches apply in order, later
// entries superseding earlier ones; removals delete), which then bulk-loads
// the shard's spatial index in one balanced build (Quadtree.Rebuild)
// instead of per-record inserts — replay input arrives in systematic
// order, the incremental-insertion worst case.
//
// Recover must run before the store is shared: it requires every shard to
// be empty and takes each shard's lock for the whole rebuild. Replayed
// records get a fresh soft-state TTL lease — the paper's expiry semantics
// re-age them if their objects stay silent after the restart. Without an
// attached WAL, Recover is a no-op.
func (db *ShardedSightingDB) Recover() error {
	if db.wal == nil {
		return nil
	}
	errs := make([]error, len(db.shards))
	var wg sync.WaitGroup
	for i := range db.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = db.recoverShard(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// recoverShard replays one shard's segment and bulk-loads the shard.
func (db *ShardedSightingDB) recoverShard(shard int) error {
	sh := &db.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.byID) != 0 {
		return fmt.Errorf("store: recovering shard %d over %d live records (Recover must run on an empty store)", shard, len(sh.byID))
	}
	live := make(map[core.OID]core.Sighting)
	replayed := int64(0)
	err := db.wal.ReplayShard(shard, func(rec WALRecord) error {
		switch rec.Op {
		case WALSightingBatch:
			for _, s := range rec.Sightings {
				live[s.OID] = s
			}
			replayed += int64(len(rec.Sightings))
		case WALSightingRemove:
			delete(live, rec.OID)
			replayed++
		default:
			return fmt.Errorf("store: unexpected WAL op %q in sighting shard %d", rec.Op, shard)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: replaying sighting shard %d: %w", shard, err)
	}
	if replayed > int64(len(live))+walCompactSlack {
		// The history dwarfs the live set: rewrite the segment now so the
		// next restart replays the snapshot, not the churn. Best-effort —
		// a failure (full disk, say) keeps the original correct log, so
		// recovery itself still succeeds; the janitor's grow-triggered
		// pass will retry later.
		liveSlice := make([]core.Sighting, 0, len(live))
		for _, s := range live {
			liveSlice = append(liveSlice, s)
		}
		_ = db.wal.CompactShard(shard, liveSlice)
	}
	var expires time.Time
	if db.ttl > 0 {
		expires = db.clock().Add(db.ttl)
	}
	items := make([]spatial.Item, 0, len(live))
	for _, s := range live {
		e := &sightingEntry{s: s, expires: expires}
		sh.byID[s.OID] = e
		items = append(items, spatial.Item{ID: s.OID, Pos: s.Pos, Ref: e})
		sh.noteInsert(s.Pos)
	}
	if qt, ok := sh.idx.(*spatial.Quadtree); ok {
		qt.Rebuild(items)
	} else if sh.items != nil {
		for _, it := range items {
			sh.items.InsertItem(it)
		}
	} else {
		for _, it := range items {
			sh.idx.Insert(it.ID, it.Pos)
		}
	}
	return nil
}

// CompactWAL rewrites every shard segment to exactly its live sightings,
// shard by shard under the shard lock (so no concurrent commit can fall
// between the snapshot and the rewrite). Call it to keep replay time
// proportional to the live set instead of the update history; the server's
// janitor drives the grow-triggered variant, CompactWALIfGrown. Without an
// attached WAL it is a no-op.
func (db *ShardedSightingDB) CompactWAL() error {
	if db.wal == nil {
		return nil
	}
	var errs []error
	for i := range db.shards {
		if err := db.compactShard(i); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// CompactWALIfGrown compacts only the shards whose segment has grown by
// more than one live-set (plus walCompactSlack) since their last compaction — the
// classic log-structured policy: amortized rewrite cost stays a constant
// fraction of append work, and an idle or freshly compacted shard is never
// rewritten. Cheap when nothing grew; safe to call on every janitor tick.
func (db *ShardedSightingDB) CompactWALIfGrown() error {
	if db.wal == nil || db.wal.Err() != nil {
		// A down WAL has stopped logging; there is nothing worth
		// rewriting and the sticky error is surfaced through WALErr.
		return nil
	}
	var errs []error
	for i := range db.shards {
		appended := db.wal.AppendedSince(i)
		if appended == 0 {
			continue
		}
		sh := &db.shards[i]
		sh.mu.RLock()
		grown := appended > int64(len(sh.byID))+walCompactSlack
		sh.mu.RUnlock()
		if !grown {
			continue
		}
		if err := db.compactShard(i); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// compactShard snapshots one shard's live set under its lock and rewrites
// the segment. In the WAL's asynchronous mode the disk work happens
// outside the shard lock — updates only stall for the queue drain and the
// in-memory snapshot, while records appended during the rewrite wait in
// the buffer and land after the snapshot (BeginCompact/FinishCompact).
func (db *ShardedSightingDB) compactShard(i int) error {
	sh := &db.shards[i]
	if db.wal.Asynchronous() {
		sh.mu.Lock()
		if err := db.wal.BeginCompact(i); err != nil {
			sh.mu.Unlock()
			return err
		}
		live := make([]core.Sighting, 0, len(sh.byID))
		for _, e := range sh.byID {
			live = append(live, e.s)
		}
		sh.mu.Unlock()
		return db.wal.FinishCompact(i, live)
	}
	// Synchronous mode appends directly to the segment under the shard
	// lock, so the rewrite must hold it too.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	live := make([]core.Sighting, 0, len(sh.byID))
	for _, e := range sh.byID {
		live = append(live, e.s)
	}
	return db.wal.CompactShard(i, live)
}
