package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"locsvc/internal/core"
)

func TestVisitorDBInMemory(t *testing.T) {
	db, err := NewVisitorDB(nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := VisitorRecord{OID: "o1", ForwardRef: "child-2"}
	if err := db.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, ok := db.Get("o1")
	if !ok || got.ForwardRef != "child-2" {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	removed, err := db.Remove("o1")
	if err != nil || !removed {
		t.Fatalf("Remove = %v, %v", removed, err)
	}
	removed, err = db.Remove("o1")
	if err != nil || removed {
		t.Errorf("double Remove = %v, %v", removed, err)
	}
}

func TestVisitorDBPersistenceAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "visitors.wal")

	wal, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewVisitorDB(wal)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rec := VisitorRecord{
			OID:        core.OID(fmt.Sprintf("o%d", i)),
			OfferedAcc: float64(i * 10),
			RegInfo:    core.RegInfo{Registrant: "client", DesAcc: 5, MinAcc: 100},
		}
		if err := db.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite one, remove another: replay must apply ops in order.
	if err := db.Put(VisitorRecord{OID: "o3", ForwardRef: "elsewhere"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Remove("o7"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the WAL and rebuild the database.
	wal2, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := NewVisitorDB(wal2)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 9 {
		t.Fatalf("restored Len = %d, want 9", db2.Len())
	}
	if _, ok := db2.Get("o7"); ok {
		t.Error("removed record survived restart")
	}
	got, ok := db2.Get("o3")
	if !ok || got.ForwardRef != "elsewhere" {
		t.Errorf("overwritten record = %+v, %v", got, ok)
	}
	got, ok = db2.Get("o5")
	if !ok || got.OfferedAcc != 50 || got.RegInfo.MinAcc != 100 {
		t.Errorf("record o5 = %+v, %v", got, ok)
	}
}

func TestVisitorDBCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "visitors.wal")
	wal, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewVisitorDB(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Many redundant writes to the same records.
	for round := 0; round < 50; round++ {
		for i := 0; i < 5; i++ {
			oid := core.OID(fmt.Sprintf("o%d", i))
			if err := db.Put(VisitorRecord{OID: oid, ForwardRef: fmt.Sprintf("c%d", round)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink WAL: %d -> %d", before.Size(), after.Size())
	}
	// Appends continue to work after compaction, and state survives a
	// reopen.
	if err := db.Put(VisitorRecord{OID: "new", ForwardRef: "c"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	wal2, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := NewVisitorDB(wal2)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 6 {
		t.Errorf("post-compaction Len = %d, want 6", db2.Len())
	}
	rec, _ := db2.Get("o2")
	if rec.ForwardRef != "c49" {
		t.Errorf("o2 forwardRef = %q, want c49", rec.ForwardRef)
	}
}

func TestFileWALTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	wal, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.Append(WALRecord{Op: WALPut, Visitor: &VisitorRecord{OID: "good"}}); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: garbage partial record at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","visitor":{"oid":"tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	wal2, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewVisitorDB(wal2)
	if err != nil {
		t.Fatalf("replay with torn tail failed: %v", err)
	}
	defer db.Close()
	if db.Len() != 1 {
		t.Errorf("Len = %d, want 1 (only the intact record)", db.Len())
	}
}

func TestVisitorDBForEach(t *testing.T) {
	db, err := NewVisitorDB(NullWAL{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := db.Put(VisitorRecord{OID: core.OID(fmt.Sprintf("o%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	db.ForEach(func(VisitorRecord) bool { count++; return true })
	if count != 4 {
		t.Errorf("ForEach visited %d", count)
	}
	count = 0
	db.ForEach(func(VisitorRecord) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestNullWAL(t *testing.T) {
	var w NullWAL
	if err := w.Append(WALRecord{}); err != nil {
		t.Error(err)
	}
	if err := w.Replay(func(WALRecord) error { t.Error("replayed something"); return nil }); err != nil {
		t.Error(err)
	}
	if err := w.Compact(nil); err != nil {
		t.Error(err)
	}
	if err := w.Close(); err != nil {
		t.Error(err)
	}
}

func TestPutIfNewer(t *testing.T) {
	db, err := NewVisitorDB(nil)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)
	ok, err := db.PutIfNewer(VisitorRecord{OID: "o", ForwardRef: "a", PathT: t0})
	if err != nil || !ok {
		t.Fatalf("first put = %v, %v", ok, err)
	}
	// Older write refused.
	ok, err = db.PutIfNewer(VisitorRecord{OID: "o", ForwardRef: "stale", PathT: t0.Add(-time.Second)})
	if err != nil || ok {
		t.Fatalf("stale put = %v, %v", ok, err)
	}
	rec, _ := db.Get("o")
	if rec.ForwardRef != "a" {
		t.Errorf("record overwritten by stale put: %+v", rec)
	}
	// Equal timestamp applies (last writer wins on ties).
	ok, err = db.PutIfNewer(VisitorRecord{OID: "o", ForwardRef: "b", PathT: t0})
	if err != nil || !ok {
		t.Fatalf("equal-time put = %v, %v", ok, err)
	}
	// Newer write applies.
	ok, err = db.PutIfNewer(VisitorRecord{OID: "o", ForwardRef: "c", PathT: t0.Add(time.Second)})
	if err != nil || !ok {
		t.Fatalf("newer put = %v, %v", ok, err)
	}
	rec, _ = db.Get("o")
	if rec.ForwardRef != "c" {
		t.Errorf("record = %+v", rec)
	}
}

func TestRemoveIf(t *testing.T) {
	db, err := NewVisitorDB(nil)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)
	if err := db.Put(VisitorRecord{OID: "o", ForwardRef: "a", PathT: t0}); err != nil {
		t.Fatal(err)
	}
	// Predicate rejects: record stays.
	ok, err := db.RemoveIf("o", func(r VisitorRecord) bool { return r.ForwardRef == "b" })
	if err != nil || ok {
		t.Fatalf("mismatched RemoveIf = %v, %v", ok, err)
	}
	if _, exists := db.Get("o"); !exists {
		t.Fatal("record removed despite predicate rejection")
	}
	// Missing record: no-op.
	ok, err = db.RemoveIf("ghost", func(VisitorRecord) bool { return true })
	if err != nil || ok {
		t.Fatalf("missing RemoveIf = %v, %v", ok, err)
	}
	// Predicate accepts: removed.
	ok, err = db.RemoveIf("o", func(r VisitorRecord) bool { return r.ForwardRef == "a" })
	if err != nil || !ok {
		t.Fatalf("matching RemoveIf = %v, %v", ok, err)
	}
	if _, exists := db.Get("o"); exists {
		t.Fatal("record survived RemoveIf")
	}
}

func TestPutIfNewerConcurrent(t *testing.T) {
	// Concurrent writers with distinct timestamps: the newest must win
	// regardless of scheduling.
	db, err := NewVisitorDB(nil)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := VisitorRecord{
				OID:        "o",
				ForwardRef: fmt.Sprintf("c%d", i),
				PathT:      t0.Add(time.Duration(i) * time.Millisecond),
			}
			if _, err := db.PutIfNewer(rec); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	rec, ok := db.Get("o")
	if !ok || rec.ForwardRef != "c31" {
		t.Errorf("final record = %+v, want c31", rec)
	}
}
