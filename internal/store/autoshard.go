package store

// AutoShardConfig bounds and tunes the adaptive shard-count policy. The
// zero value selects the defaults noted per field; Min/Max clamp every
// decision, so a deployment can pin the count by setting Min == Max.
type AutoShardConfig struct {
	// Min and Max bound the shard count (defaults 1 and 64).
	Min, Max int
	// GrowAt is the contention ratio above which the store doubles its
	// shard count (default 0.08). Two ratios are watched, each in its own
	// unit so healthy group-commit batching cannot masquerade as
	// contention: contended shard-lock acquisitions per lock acquisition,
	// and pipeline lane handoffs per pipelined update; the larger of the
	// two is compared against the thresholds.
	GrowAt float64
	// ShrinkAt is the ratio below which the count halves (default 0.01).
	// Keeping it well under GrowAt is the hysteresis band that prevents
	// flapping around a single threshold.
	ShrinkAt float64
	// Patience is how many consecutive observation ticks must agree
	// before a resize fires (default 2) — a one-tick burst is not a
	// workload shift.
	Patience int
	// Cooldown is how many ticks after a resize the policy stays silent
	// (default 2), letting the migrated store exhibit its new contention
	// profile before being judged again.
	Cooldown int
	// MinOps is the minimum number of write ops a tick must observe to
	// count as evidence (default 512); idle ticks neither grow, shrink
	// nor advance the patience streak.
	MinOps int64
}

// withDefaults fills unset fields.
func (c AutoShardConfig) withDefaults() AutoShardConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 64
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.GrowAt <= 0 {
		c.GrowAt = 0.08
	}
	if c.ShrinkAt <= 0 {
		c.ShrinkAt = 0.01
	}
	if c.ShrinkAt >= c.GrowAt {
		// An inverted (or collapsed) band has no hysteresis: every tick
		// would qualify for one of the two decisions and the count would
		// flap. Restore a band below the grow threshold.
		c.ShrinkAt = c.GrowAt / 8
	}
	if c.Patience <= 0 {
		c.Patience = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2
	}
	if c.MinOps <= 0 {
		c.MinOps = 512
	}
	return c
}

// AutoShard decides when a ShardedSightingDB should resize, from the
// contention the store and its update pipeline sample on their write
// paths. It is a pure policy object: feed it one Observe per tick (the
// server's janitor does) with the cumulative counters, and act on the
// returned target when ok is true. Not safe for concurrent use; drive it
// from one goroutine.
//
// The decision rule: per tick, the contention ratio is the larger of
// Δcontended/Δops (shard-lock pressure, per lock acquisition) and
// Δhandoffs/ΔpipeOps (combining pressure, per pipelined update) — kept
// separate because one store op commits a whole combined batch, so mixing
// the units would count healthy group commit as contention. A ratio above
// GrowAt for Patience consecutive ticks doubles the shard count; below
// ShrinkAt for Patience ticks halves it. Both are clamped to [Min, Max],
// a Cooldown of silent ticks follows every decision, and a source whose
// tick saw fewer than MinOps operations contributes no evidence — growth
// must be demanded by load, and an idle store keeps whatever layout the
// last load shaped.
//
// A workload concentrated on one hot object saturates its lane however
// many shards exist, so its handoff ratio can keep the count at Max;
// Max is the deliberate bound on how much query fan-out the policy may
// buy in that (unshardable) situation.
type AutoShard struct {
	cfg AutoShardConfig

	lastOps, lastContended    int64
	lastPipeOps, lastHandoffs int64
	seeded                    bool

	growStreak, shrinkStreak int
	cooldown                 int
}

// NewAutoShard builds a policy with cfg (zero fields defaulted).
func NewAutoShard(cfg AutoShardConfig) *AutoShard {
	return &AutoShard{cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (a *AutoShard) Config() AutoShardConfig { return a.cfg }

// Observe feeds one tick of cumulative counters — ops and contended as
// defined on ShardStat (summed over the shards), pipeOps and handoffs as
// reported by UpdatePipeline.Stats — and returns the shard count the
// store should resize to. ok is false when no change is warranted this
// tick.
func (a *AutoShard) Observe(current int, ops, contended, pipeOps, handoffs int64) (target int, ok bool) {
	dOps := ops - a.lastOps
	dCont := contended - a.lastContended
	dPipe := pipeOps - a.lastPipeOps
	dHand := handoffs - a.lastHandoffs
	a.lastOps, a.lastContended = ops, contended
	a.lastPipeOps, a.lastHandoffs = pipeOps, handoffs
	// The bounds are configuration, not evidence: a store outside them is
	// brought inside immediately, whatever the contention says.
	if current < a.cfg.Min {
		return a.cfg.Min, true
	}
	if current > a.cfg.Max {
		return a.cfg.Max, true
	}
	if !a.seeded {
		// First observation: counters existed before the policy did, so
		// the first delta spans unknown time. Establish the baseline only.
		a.seeded = true
		return 0, false
	}
	if a.cooldown > 0 {
		a.cooldown--
		return 0, false
	}
	// Each signal needs enough operations of its own kind to count as
	// evidence this tick; the decision uses the worse of the two.
	ratio := -1.0
	if dOps >= a.cfg.MinOps {
		ratio = float64(dCont) / float64(dOps)
	}
	if dPipe >= a.cfg.MinOps {
		if r := float64(dHand) / float64(dPipe); r > ratio {
			ratio = r
		}
	}
	if ratio < 0 {
		return 0, false
	}
	switch {
	case ratio >= a.cfg.GrowAt:
		a.growStreak++
		a.shrinkStreak = 0
	case ratio <= a.cfg.ShrinkAt:
		a.shrinkStreak++
		a.growStreak = 0
	default:
		a.growStreak, a.shrinkStreak = 0, 0
	}
	if a.growStreak >= a.cfg.Patience {
		a.growStreak, a.shrinkStreak = 0, 0
		target = current * 2
		if target > a.cfg.Max {
			target = a.cfg.Max
		}
		if target != current {
			a.cooldown = a.cfg.Cooldown
			return target, true
		}
		return 0, false
	}
	if a.shrinkStreak >= a.cfg.Patience {
		a.growStreak, a.shrinkStreak = 0, 0
		target = current / 2
		if target < a.cfg.Min {
			target = a.cfg.Min
		}
		if target != current {
			a.cooldown = a.cfg.Cooldown
			return target, true
		}
		return 0, false
	}
	return 0, false
}
