package store

import (
	"encoding/binary"
	"fmt"
	"math"
)

// bloomFilter is the per-run membership filter of the tiered sighting
// store: a point lookup probes it before touching a run's records, so a
// run that cannot contain the key is skipped with zero I/O. False
// positives cost one wasted sparse-index probe; false negatives never
// happen, which is what makes the newest-to-oldest run walk correct.
//
// The implementation is a classic partitioned-free bloom filter over one
// bit array, with k probe positions derived from a single 64-bit FNV-1a
// hash by double hashing (g_i = h1 + i*h2) — one hash computation per key,
// as in the LevelDB family.
type bloomFilter struct {
	bits  []byte
	nbits uint64
	k     uint32
}

// bloomK picks the probe count for a bits-per-key budget: ln(2) * b,
// clamped to [1, 30] like the LevelDB heuristic.
func bloomK(bitsPerKey int) uint32 {
	k := uint32(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return k
}

// newBloomFilter sizes a filter for n keys at bitsPerKey bits each.
func newBloomFilter(n, bitsPerKey int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	nbits := uint64(n) * uint64(bitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	return &bloomFilter{
		bits:  make([]byte, (nbits+7)/8),
		nbits: nbits,
		k:     bloomK(bitsPerKey),
	}
}

// bloomHash is 64-bit FNV-1a over the key bytes.
func bloomHash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// bloomDelta derives the double-hashing stride from the base hash. The
// rotation keeps the stride independent enough of h1 that probe sequences
// of distinct keys diverge.
func bloomDelta(h uint64) uint64 {
	d := h>>17 | h<<47
	return d | 1 // odd stride: visits every bit position mod a power of two
}

// addHash sets the key's k probe bits from its precomputed base hash —
// the streaming run writer keeps only the 8-byte hash per record until the
// record count (and so the filter size) is known.
func (b *bloomFilter) addHash(h uint64) {
	d := bloomDelta(h)
	for i := uint32(0); i < b.k; i++ {
		pos := h % b.nbits
		b.bits[pos/8] |= 1 << (pos % 8)
		h += d
	}
}

// add inserts key.
func (b *bloomFilter) add(key string) { b.addHash(bloomHash(key)) }

// mayContain reports whether key may have been added. False positives at
// roughly 0.62^bitsPerKey; never false negatives.
func (b *bloomFilter) mayContain(key string) bool {
	h := bloomHash(key)
	d := bloomDelta(h)
	for i := uint32(0); i < b.k; i++ {
		pos := h % b.nbits
		if b.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += d
	}
	return true
}

// fpRate estimates the expected false-positive rate for n inserted keys.
func (b *bloomFilter) fpRate(n int) float64 {
	if n <= 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(b.k)*float64(n)/float64(b.nbits)), float64(b.k))
}

// marshal serializes the filter: k (uint32), nbits (uint64), bit array.
func (b *bloomFilter) marshal() []byte {
	out := make([]byte, 12+len(b.bits))
	binary.LittleEndian.PutUint32(out[0:4], b.k)
	binary.LittleEndian.PutUint64(out[4:12], b.nbits)
	copy(out[12:], b.bits)
	return out
}

// unmarshalBloom inverts marshal.
func unmarshalBloom(data []byte) (*bloomFilter, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("store: bloom filter block too short (%d bytes)", len(data))
	}
	k := binary.LittleEndian.Uint32(data[0:4])
	nbits := binary.LittleEndian.Uint64(data[4:12])
	if k < 1 || k > 30 || nbits == 0 || uint64(len(data)-12) != (nbits+7)/8 {
		return nil, fmt.Errorf("store: bloom filter block malformed (k=%d nbits=%d len=%d)", k, nbits, len(data))
	}
	return &bloomFilter{bits: data[12:], nbits: nbits, k: k}, nil
}
