package store

import (
	"sync"
	"sync/atomic"

	"locsvc/internal/core"
	"locsvc/internal/spatial"
)

// UpdatePipeline batches concurrent position updates per shard before they
// hit the sighting store — the group-commit pattern applied to the paper's
// update-heavy workload. Each shard has a combining lane: the first updater
// to arrive becomes the lane leader and applies its own update immediately;
// updates arriving while the leader is inside PutBatch queue up and are
// applied as one batch under a single shard-lock acquisition when the
// leader comes back around. Under low concurrency the pipeline degenerates
// to a plain Put (one extra uncontended mutex); under high concurrency a
// K-deep queue costs one lock acquisition instead of K, and superseded
// updates to the same object are coalesced away by the store's PutBatch.
//
// The lane array follows the store through live resizes: every Put checks
// the store's current shard count and swaps in a fresh lane set when it
// changed. Old lanes drain naturally — whoever holds or claims leadership
// of a lane commits everything queued on it — so no update is stranded by
// the swap, and a batch assembled under the old lane count is simply
// re-grouped by the store. Each update queued behind a lane leader bumps
// the handoff counter; together with the store's shard-lock contention
// samples it is the signal the AutoShard policy resizes on.
//
// The pipeline also amortizes janitor work: after committing a batch, the
// leader sweeps a bounded number of records for soft-state expiry and hands
// any expired ids to the OnExpired callback, so expiry detection rides the
// update path instead of relying solely on the periodic full scan.
type UpdatePipeline struct {
	db        SightingStore
	onExpired func([]core.OID)
	onCommit  func([]Delta)

	lanes  atomic.Pointer[laneSet]
	swapMu sync.Mutex // serializes lane-set swaps

	// ops counts updates routed through the pipeline, handoffs the subset
	// that queued behind a lane leader (combining happened — the lock was
	// busy). Cumulative; survive lane-set swaps.
	ops      atomic.Int64
	handoffs atomic.Int64
}

type laneSet struct {
	l []updateLane
}

type updateLane struct {
	mu      sync.Mutex
	pending []pendingUpdate
	leading bool
}

type pendingUpdate struct {
	s    core.Sighting
	done chan struct{}
}

// PipelineOption customizes an UpdatePipeline.
type PipelineOption func(*UpdatePipeline)

// OnExpired installs a callback receiving ids found expired during the
// amortized post-batch sweep. The callback runs on an updater's goroutine
// with no store locks held; it must tolerate ids that a concurrent update
// has refreshed since the sweep (like the janitor's Expired snapshot, the
// sweep is a point-in-time observation).
func OnExpired(fn func([]core.OID)) PipelineOption {
	return func(p *UpdatePipeline) { p.onExpired = fn }
}

// OnCommit installs a callback receiving the change deltas of every batch
// the pipeline commits. The callback runs on the lane leader's goroutine
// while it still holds lane leadership, so for any one object the callbacks
// observe deltas in commit order; it owns the slice it is handed. A slow
// callback stalls its lane — consumers that can fall behind must hand off
// to their own queue (the server's event dispatcher does).
func OnCommit(fn func([]Delta)) PipelineOption {
	return func(p *UpdatePipeline) { p.onCommit = fn }
}

// NewUpdatePipeline builds a pipeline over db with one combining lane per
// shard.
func NewUpdatePipeline(db SightingStore, opts ...PipelineOption) *UpdatePipeline {
	p := &UpdatePipeline{db: db}
	p.lanes.Store(&laneSet{l: make([]updateLane, db.NumShards())})
	for _, opt := range opts {
		opt(p)
	}
	return p
}

// Stats returns the cumulative number of updates routed through the
// pipeline and how many of them queued behind a lane leader.
func (p *UpdatePipeline) Stats() (ops, handoffs int64) {
	return p.ops.Load(), p.handoffs.Load()
}

// currentLanes returns the lane set, swapping in a fresh one when the
// store's shard count changed since the last look (a live resize).
func (p *UpdatePipeline) currentLanes() *laneSet {
	ls := p.lanes.Load()
	n := p.db.NumShards()
	if len(ls.l) == n {
		return ls
	}
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	ls = p.lanes.Load()
	if len(ls.l) != n {
		ls = &laneSet{l: make([]updateLane, n)}
		p.lanes.Store(ls)
	}
	return ls
}

// Put routes s through its shard's combining lane and returns once the
// update is committed to the store. It is safe for concurrent use.
func (p *UpdatePipeline) Put(s core.Sighting) {
	p.ops.Add(1)
	ls := p.currentLanes()
	lane := &ls.l[spatial.ShardFor(s.OID, len(ls.l))]
	lane.mu.Lock()
	if lane.leading {
		// A leader is committing: enqueue and wait for it to apply us.
		p.handoffs.Add(1)
		done := make(chan struct{})
		lane.pending = append(lane.pending, pendingUpdate{s: s, done: done})
		lane.mu.Unlock()
		<-done
		return
	}
	lane.leading = true
	lane.mu.Unlock()

	// Leader: commit own update, then drain whatever queued up meanwhile,
	// batch by batch, until the lane is empty.
	batch := []core.Sighting{s}
	var dones []chan struct{}
	applied := 0
	for {
		if p.onCommit != nil {
			deltas := p.db.PutBatchDeltas(batch, make([]Delta, 0, len(batch)))
			applied += len(batch)
			for _, d := range dones {
				close(d)
			}
			p.onCommit(deltas)
		} else {
			p.db.PutBatch(batch)
			applied += len(batch)
			for _, d := range dones {
				close(d)
			}
		}
		lane.mu.Lock()
		if len(lane.pending) == 0 {
			lane.leading = false
			lane.mu.Unlock()
			break
		}
		queued := lane.pending
		lane.pending = nil
		lane.mu.Unlock()
		batch = batch[:0]
		dones = dones[:0]
		for _, pu := range queued {
			batch = append(batch, pu.s)
			dones = append(dones, pu.done)
		}
	}
	// Sweep only after giving up leadership: the OnExpired callback can
	// be expensive (path teardown, event re-evaluation), and updates
	// queueing behind the lane must not wait on it.
	p.sweep(applied)
}

// sweep runs the amortized expiry scan after a leadership stint: the
// budget scales with the number of updates committed so sweep cost stays a
// constant fraction of update work.
func (p *UpdatePipeline) sweep(applied int) {
	if p.onExpired == nil || applied <= 0 {
		return
	}
	if ids := p.db.SweepExpired(2 * applied); len(ids) > 0 {
		p.onExpired(ids)
	}
}
