package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/spatial"
)

// writeVisitorLog writes n visitor put records and returns the log path
// plus the byte offset and length of every line.
func writeVisitorLog(t *testing.T, n int) (string, []int64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "log.wal")
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := WALRecord{Op: WALPut, Visitor: &VisitorRecord{
			OID: core.OID(fmt.Sprintf("o%d", i)), ForwardRef: fmt.Sprintf("c%d", i),
		}}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var offsets []int64
	off := int64(0)
	for _, line := range strings.SplitAfter(string(data), "\n") {
		if line == "" {
			continue
		}
		offsets = append(offsets, off)
		off += int64(len(line))
	}
	return path, offsets
}

func replayAll(t *testing.T, path string) ([]WALRecord, error) {
	t.Helper()
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var got []WALRecord
	rerr := w.Replay(func(rec WALRecord) error { got = append(got, rec); return nil })
	return got, rerr
}

// A record corrupted in the middle of the log must surface an error naming
// its offset — not be treated as a torn tail that silently discards every
// later record.
func TestReplayMidFileCorruption(t *testing.T) {
	path, offsets := writeVisitorLog(t, 5)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Clobber a byte inside the third record, keeping its newline.
	data[offsets[2]+1] = 0x00
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, rerr := replayAll(t, path)
	if !errors.Is(rerr, ErrCorruptWAL) {
		t.Fatalf("Replay error = %v, want ErrCorruptWAL", rerr)
	}
	if !strings.Contains(rerr.Error(), fmt.Sprintf("offset %d", offsets[2])) {
		t.Errorf("error %q does not identify offset %d", rerr, offsets[2])
	}
	if len(got) != 2 {
		t.Errorf("intact prefix delivered %d records, want 2", len(got))
	}
}

// A corrupted FINAL record that is newline-terminated is a complete,
// damaged record — corruption, not a torn write.
func TestReplayCorruptTerminatedFinalLine(t *testing.T) {
	path, offsets := writeVisitorLog(t, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[2]+1] = 0x00
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, rerr := replayAll(t, path); !errors.Is(rerr, ErrCorruptWAL) {
		t.Fatalf("Replay error = %v, want ErrCorruptWAL", rerr)
	}
}

// Truncating the log at any byte boundary — the torn tail a crash can
// leave — must recover exactly the records whose lines survived whole, with
// no error: a prefix-consistent store.
func TestReplayTornTailPrefixProperty(t *testing.T) {
	const records = 12
	path, offsets := writeVisitorLog(t, records)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	cuts := []int64{0, 1, int64(len(full)) - 1, int64(len(full))}
	for i := 0; i < 40; i++ {
		cuts = append(cuts, int64(rng.Intn(len(full)+1)))
	}
	for _, cut := range cuts {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// The expected count is the number of lines whose content survives
		// whole: a final line missing only its newline is still a complete
		// record (truncation mid-record never parses, so accepting it is
		// safe), hence end-1.
		want := 0
		for i := range offsets {
			end := int64(len(full))
			if i+1 < len(offsets) {
				end = offsets[i+1]
			}
			if end-1 <= cut {
				want++
			}
		}
		got, rerr := replayAll(t, path)
		if rerr != nil {
			t.Fatalf("cut at %d: Replay error %v", cut, rerr)
		}
		if len(got) != want {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(got), want)
		}
		for j, rec := range got {
			if rec.Visitor == nil || rec.Visitor.OID != core.OID(fmt.Sprintf("o%d", j)) {
				t.Fatalf("cut at %d: record %d = %+v, want o%d", cut, j, rec, j)
			}
		}
		// The recovery must have healed the tail (truncated a fragment,
		// terminated an unframed whole record): appending and replaying
		// again yields the same prefix plus the new record — not a glued,
		// corrupt line.
		w2, err := OpenFileWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w2.Replay(func(WALRecord) error { return nil }); err != nil {
			t.Fatal(err)
		}
		if err := w2.Append(WALRecord{Op: WALPut, Visitor: &VisitorRecord{OID: "sentinel"}}); err != nil {
			t.Fatal(err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		again, rerr := replayAll(t, path)
		if rerr != nil {
			t.Fatalf("cut at %d: replay after post-recovery append: %v", cut, rerr)
		}
		if len(again) != want+1 || again[want].Visitor == nil || again[want].Visitor.OID != "sentinel" {
			t.Fatalf("cut at %d: post-recovery append corrupted the log: %d records", cut, len(again))
		}
	}
}

// Records larger than the old 4 MiB scanner cap must replay; a single big
// batch would otherwise abort the whole recovery with ErrTooLong.
func TestReplayLargeRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.wal")
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	// A sighting batch comfortably past 4 MiB when marshaled.
	batch := make([]core.Sighting, 60_000)
	for i := range batch {
		batch[i] = core.Sighting{OID: core.OID(fmt.Sprintf("obj-%06d", i)), Pos: geo.Pt(float64(i), 1)}
	}
	if err := w.Append(WALRecord{Op: WALSightingBatch, Sightings: batch}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(WALRecord{Op: WALSightingRemove, OID: "obj-000001"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(path); err != nil || st.Size() < 4*1024*1024 {
		t.Fatalf("log size %v, want > 4 MiB to exercise the cap", st.Size())
	}
	got, rerr := replayAll(t, path)
	if rerr != nil {
		t.Fatalf("Replay: %v", rerr)
	}
	if len(got) != 2 || len(got[0].Sightings) != len(batch) || got[1].OID != "obj-000001" {
		t.Fatalf("replayed %d records (first batch %d sightings)", len(got), len(got[0].Sightings))
	}
}

// A crash between Compact's temp-file write and the rename leaves a stray
// temporary next to the log; recovery must keep the original log
// authoritative and never read the temporary.
func TestCompactCrashBeforeRenameKeepsOriginal(t *testing.T) {
	path, _ := writeVisitorLog(t, 4)
	// The "crashed compaction": a fully written, never-renamed temp file
	// with different (older) contents.
	stray := filepath.Join(filepath.Dir(path), ".wal-compact-12345")
	if err := os.WriteFile(stray, []byte(`{"op":"put","visitor":{"oid":"ghost"}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, rerr := replayAll(t, path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(got) != 4 {
		t.Fatalf("replayed %d records, want the original 4", len(got))
	}
	for _, rec := range got {
		if rec.Visitor.OID == "ghost" {
			t.Fatal("recovery read the abandoned compaction temporary")
		}
	}
}

// Any Compact failure before the rename must leave the original log open
// and usable: later Appends and Close must succeed and the appended record
// must be durable.
func TestCompactFailureLeavesWALUsable(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "wals")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(sub, "log.wal")
	w, err := OpenFileWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(WALRecord{Op: WALPut, Visitor: &VisitorRecord{OID: "a"}}); err != nil {
		t.Fatal(err)
	}
	// Force CreateTemp (and any rename) to fail: replace the directory
	// with a plain file. The already-open log handle stays valid.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(sub); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sub, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if cerr := w.Compact([]VisitorRecord{{OID: "a"}}); cerr == nil {
		t.Fatal("Compact succeeded without its directory")
	}
	// The failure path must not have closed the log out from under us.
	if err := w.Append(WALRecord{Op: WALPut, Visitor: &VisitorRecord{OID: "b"}}); err != nil {
		t.Fatalf("Append after failed Compact: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close after failed Compact: %v", err)
	}
}

// Reopening a sharded log with a different shard count adopts the count
// persisted in the log once any segment holds history (the id→segment
// mapping is a property of the persistent log; changing it takes a resize,
// which stamps a new epoch) — while all-empty segments, as left by a
// crashed first open or an idle run, must not pin the count.
func TestShardedWALShardCountMismatch(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenShardedWAL(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRemove(2, 4, "x"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w, err = OpenShardedWAL(dir, 8)
	if err != nil {
		t.Fatalf("reopening a 4-segment log with history with 8 shards: %v", err)
	}
	if w.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want the persisted 4 (the log remembers its layout)", w.NumShards())
	}
	w.Close()
	w, err = OpenShardedWAL(dir, 4)
	if err != nil {
		t.Fatalf("reopening with matching count: %v", err)
	}
	w.Close()

	// Negative counts are rejected by the central validation.
	if _, err := OpenShardedWAL(t.TempDir(), -3); err == nil {
		t.Fatal("negative shard count accepted")
	}

	// Empty segments adopt the requested count instead.
	empty := t.TempDir()
	w, err = OpenShardedWAL(empty, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w, err = OpenShardedWAL(empty, 2)
	if err != nil {
		t.Fatalf("reopening all-empty segments with a new count: %v", err)
	}
	if w.NumShards() != 2 {
		t.Fatalf("NumShards = %d", w.NumShards())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(segmentPath(empty, 2, 0)); err == nil {
		t.Fatal("stale empty segment survived the count change")
	}
}

// sightingOracle mirrors the intended live set of a store.
type sightingOracle map[core.OID]core.Sighting

// expectRecovered compares a recovered store against the oracle on every
// query surface: Len, Get, a full-area range search and nearest-neighbor
// order.
func expectRecovered(t *testing.T, db *ShardedSightingDB, oracle sightingOracle) {
	t.Helper()
	if db.Len() != len(oracle) {
		t.Errorf("recovered Len = %d, oracle %d", db.Len(), len(oracle))
	}
	for id, want := range oracle {
		got, ok := db.Get(id)
		if !ok {
			t.Errorf("recovered store lost %s", id)
			continue
		}
		if got.Pos != want.Pos || !got.T.Equal(want.T) || got.SensAcc != want.SensAcc {
			t.Errorf("recovered %s = %+v, want %+v", id, got, want)
		}
	}
	// Range: everything inside the full area, no extras, positions intact.
	seen := map[core.OID]geo.Point{}
	db.SearchArea(geo.R(-1e9, -1e9, 1e9, 1e9), func(s core.Sighting) bool {
		seen[s.OID] = s.Pos
		return true
	})
	if len(seen) != len(oracle) {
		t.Errorf("range search found %d records, oracle %d", len(seen), len(oracle))
	}
	for id, pos := range seen {
		if want, ok := oracle[id]; !ok || want.Pos != pos {
			t.Errorf("range search saw %s at %v, oracle %+v (present %v)", id, pos, oracle[id], ok)
		}
	}
	// Nearest: distances must be non-decreasing and match the oracle's
	// sorted distance multiset.
	origin := geo.Pt(0, 0)
	var gotDists, wantDists []float64
	db.NearestFunc(origin, func(s core.Sighting, d float64) bool {
		gotDists = append(gotDists, d)
		return true
	})
	for _, s := range oracle {
		wantDists = append(wantDists, origin.Dist(s.Pos))
	}
	sort.Float64s(wantDists)
	if len(gotDists) != len(wantDists) {
		t.Fatalf("nearest enumerated %d records, oracle %d", len(gotDists), len(wantDists))
	}
	for i := range gotDists {
		if diff := gotDists[i] - wantDists[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("nearest distance %d = %v, oracle %v", i, gotDists[i], wantDists[i])
		}
	}
}

// The full put/remove/expire lifecycle must replay to exactly the oracle's
// state after a simulated crash (the WAL is never Closed — every append is
// flushed, as a killed process would leave it).
func TestShardedWALReplayEqualsOracle(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	now := time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	ttl := time.Minute

	w, err := OpenShardedWAL(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	db := NewShardedSightingDB(WithSightingWAL(w), WithTTL(ttl), WithClock(clock))
	if db.NumShards() != shards {
		t.Fatalf("store did not adopt WAL shard count: %d", db.NumShards())
	}
	oracle := sightingOracle{}

	rng := rand.New(rand.NewSource(7))
	ids := make([]core.OID, 64)
	for i := range ids {
		ids[i] = core.OID(fmt.Sprintf("obj-%d", i))
	}
	for step := 0; step < 1500; step++ {
		id := ids[rng.Intn(len(ids))]
		switch op := rng.Intn(10); {
		case op < 6: // single put
			s := core.Sighting{OID: id, T: now, Pos: geo.Pt(rng.Float64()*1000, rng.Float64()*1000), SensAcc: 5}
			db.Put(s)
			oracle[id] = s
		case op < 8: // batch put (the pipeline's group-commit shape)
			batch := make([]core.Sighting, 1+rng.Intn(8))
			for i := range batch {
				bid := ids[rng.Intn(len(ids))]
				batch[i] = core.Sighting{OID: bid, T: now, Pos: geo.Pt(rng.Float64()*1000, rng.Float64()*1000), SensAcc: 5}
			}
			db.PutBatch(batch)
			for _, s := range batch {
				oracle[s.OID] = s
			}
		case op < 9: // remove
			if db.Remove(id) {
				delete(oracle, id)
			}
		default: // expire: age the record's lease out, then sweep it
			if _, ok := oracle[id]; ok {
				now = now.Add(2 * ttl)
				if !db.RemoveExpired(id) {
					t.Fatalf("step %d: %s did not expire", step, id)
				}
				delete(oracle, id)
				// Refresh every survivor so only id expired.
				for oid, s := range oracle {
					s.T = now
					db.Put(s)
					oracle[oid] = s
				}
			}
		}
	}
	if err := db.WALErr(); err != nil {
		t.Fatalf("WAL went down during the run: %v", err)
	}
	// The durability barrier: everything enqueued reaches the OS. The
	// "crash" below then models a killed process whose writes the OS kept.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Crash: no Close. Reopen the directory and recover.
	w2, err := OpenShardedWAL(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	db2 := NewShardedSightingDB(WithSightingWAL(w2), WithTTL(ttl), WithClock(clock))
	if err := db2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	expectRecovered(t, db2, oracle)

	// Recovered records carry a fresh lease: nothing is expired now, and
	// everything expires once the TTL passes un-refreshed.
	if ids := db2.Expired(); len(ids) != 0 {
		t.Errorf("%d records expired immediately after recovery", len(ids))
	}
	now = now.Add(2 * ttl)
	if got := len(db2.Expired()); got != len(oracle) {
		t.Errorf("after TTL: %d expired, want all %d", got, len(oracle))
	}
}

// The acceptance scenario: kill after N batched updates through the
// pipeline, recover in parallel, and compare every query surface against a
// never-crashed oracle store. Also exercises recovery into non-quadtree
// indexes (no Rebuild bulk-load path) for the same result.
func TestShardedWALCrashAfterBatchedUpdates(t *testing.T) {
	for _, kind := range []spatial.Kind{spatial.KindQuadtree, spatial.KindRTree} {
		t.Run(kind.String(), func(t *testing.T) {
			const shards = 8
			dir := t.TempDir()
			w, err := OpenShardedWAL(dir, shards)
			if err != nil {
				t.Fatal(err)
			}
			db := NewShardedSightingDB(WithSightingWAL(w), WithIndex(kind))
			pipe := NewUpdatePipeline(db)
			oracle := sightingOracle{}
			rng := rand.New(rand.NewSource(9))
			now := time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)
			for i := 0; i < 4000; i++ {
				id := core.OID(fmt.Sprintf("obj-%d", rng.Intn(500)))
				s := core.Sighting{OID: id, T: now, Pos: geo.Pt(rng.Float64()*1000, rng.Float64()*1000), SensAcc: 5}
				pipe.Put(s)
				oracle[id] = s
			}
			if err := db.WALErr(); err != nil {
				t.Fatal(err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}

			// Kill; recover from disk.
			w2, err := OpenShardedWAL(dir, shards)
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			db2 := NewShardedSightingDB(WithSightingWAL(w2), WithIndex(kind))
			if err := db2.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			expectRecovered(t, db2, oracle)
		})
	}
}

// Compaction shrinks segments to the live set, and a recover after
// compaction (plus further appends) still matches the oracle.
func TestShardedWALCompactThenRecover(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	w, err := OpenShardedWAL(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	db := NewShardedSightingDB(WithSightingWAL(w))
	oracle := sightingOracle{}
	now := time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			id := core.OID(fmt.Sprintf("obj-%d", i))
			s := core.Sighting{OID: id, T: now, Pos: geo.Pt(float64(round), float64(i)), SensAcc: 5}
			db.Put(s)
			oracle[id] = s
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	sizeBefore := dirSize(t, dir)
	if err := db.CompactWAL(); err != nil {
		t.Fatalf("CompactWAL: %v", err)
	}
	if sizeAfter := dirSize(t, dir); sizeAfter >= sizeBefore {
		t.Errorf("compaction did not shrink the log: %d -> %d", sizeBefore, sizeAfter)
	}
	// Post-compaction appends land after the snapshot.
	s := core.Sighting{OID: "late", T: now, Pos: geo.Pt(500, 500), SensAcc: 5}
	db.Put(s)
	oracle["late"] = s
	if db.Remove("obj-3") {
		delete(oracle, "obj-3")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenShardedWAL(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	db2 := NewShardedSightingDB(WithSightingWAL(w2))
	if err := db2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	expectRecovered(t, db2, oracle)
}

// Grow-triggered compaction rewrites only churned shards, and recovery on
// a churn-heavy log auto-compacts so the next restart replays the live set.
func TestCompactWALIfGrown(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	w, err := OpenShardedWAL(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	db := NewShardedSightingDB(WithSightingWAL(w))
	oracle := sightingOracle{}
	now := time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)
	// Heavy churn on few objects: history >> live set. Half the rounds go
	// through PutBatch so the growth counter's batch-length accounting
	// (one batch record, len(batch) sightings) is exercised too.
	for round := 0; round < 600; round++ {
		batch := make([]core.Sighting, 0, 4)
		for i := 0; i < 4; i++ {
			id := core.OID(fmt.Sprintf("obj-%d", i))
			s := core.Sighting{OID: id, T: now, Pos: geo.Pt(float64(round), float64(i)), SensAcc: 5}
			if round%2 == 0 {
				db.Put(s)
			} else {
				batch = append(batch, s)
			}
			oracle[id] = s
		}
		db.PutBatch(batch)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	before := dirSize(t, dir)
	if err := db.CompactWALIfGrown(); err != nil {
		t.Fatal(err)
	}
	after := dirSize(t, dir)
	if after >= before {
		t.Errorf("grown segments not compacted: %d -> %d", before, after)
	}
	for i := 0; i < shards; i++ {
		if n := w.AppendedSince(i); n != 0 {
			t.Errorf("shard %d appended counter = %d after compaction", i, n)
		}
	}
	// No further growth: a second call must be a no-op (sizes unchanged).
	if err := db.CompactWALIfGrown(); err != nil {
		t.Fatal(err)
	}
	if again := dirSize(t, dir); again != after {
		t.Errorf("idle compaction rewrote segments: %d -> %d", after, again)
	}
	// State must survive the compaction.
	w2, err := OpenShardedWAL(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	db2 := NewShardedSightingDB(WithSightingWAL(w2))
	if err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	expectRecovered(t, db2, oracle)
}

// Recover on a churn-heavy log compacts the segments as a side effect, so
// restart cost does not accumulate across crashes.
func TestRecoverAutoCompactsChurnedLog(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenShardedWAL(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	db := NewShardedSightingDB(WithSightingWAL(w))
	for round := 0; round < 2000; round++ {
		db.Put(core.Sighting{OID: "only", Pos: geo.Pt(float64(round), 0), SensAcc: 5})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	before := dirSize(t, dir)
	w2, err := OpenShardedWAL(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	db2 := NewShardedSightingDB(WithSightingWAL(w2))
	if err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	if after := dirSize(t, dir); after >= before/10 {
		t.Errorf("recovery did not compact the churned log: %d -> %d", before, after)
	}
	if got, ok := db2.Get("only"); !ok || got.Pos != geo.Pt(1999, 0) {
		t.Errorf("recovered record = %+v, %v", got, ok)
	}
}

// Low-stall compaction interleaved with live writers must lose nothing:
// records appended during a rewrite wait in the buffer and land after the
// snapshot, so recovery still equals the oracle.
func TestCompactWALConcurrentWithAppends(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	w, err := OpenShardedWAL(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	db := NewShardedSightingDB(WithSightingWAL(w))
	now := time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)
	const writers = 4
	const perWriter = 2000
	var writerWG sync.WaitGroup
	stopCompact := make(chan struct{})
	compactorDone := make(chan struct{})
	go func() {
		defer close(compactorDone)
		for {
			select {
			case <-stopCompact:
				return
			default:
			}
			if err := db.CompactWALIfGrown(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				// Disjoint ids per writer; heavy per-id churn.
				id := core.OID(fmt.Sprintf("w%d-obj-%d", g, i%50))
				db.Put(core.Sighting{OID: id, T: now, Pos: geo.Pt(float64(i), float64(g)), SensAcc: 5})
			}
		}(g)
	}
	writerWG.Wait()
	close(stopCompact)
	select {
	case <-compactorDone:
	case <-time.After(30 * time.Second):
		t.Fatal("compactor did not stop")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Oracle: last put per id wins.
	oracle := sightingOracle{}
	for g := 0; g < writers; g++ {
		for i := perWriter - 50; i < perWriter; i++ {
			id := core.OID(fmt.Sprintf("w%d-obj-%d", g, i%50))
			oracle[id] = core.Sighting{OID: id, T: now, Pos: geo.Pt(float64(i), float64(g)), SensAcc: 5}
		}
	}
	w2, err := OpenShardedWAL(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	db2 := NewShardedSightingDB(WithSightingWAL(w2))
	if err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	expectRecovered(t, db2, oracle)
}

// Recover must refuse to run over live records rather than double-load.
func TestRecoverRequiresEmptyStore(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenShardedWAL(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	db := NewShardedSightingDB(WithSightingWAL(w))
	db.Put(core.Sighting{OID: "a", Pos: geo.Pt(1, 1)})
	if err := db.Recover(); err == nil {
		t.Fatal("Recover over a non-empty store succeeded")
	}
}

// A corrupted middle record in one shard fails that shard's recovery (with
// the offset surfaced) while the other shards still replay.
func TestRecoverSurfacesShardCorruption(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	w, err := OpenShardedWAL(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	db := NewShardedSightingDB(WithSightingWAL(w))
	for i := 0; i < 40; i++ {
		db.Put(core.Sighting{OID: core.OID(fmt.Sprintf("obj-%d", i)), Pos: geo.Pt(float64(i), 0)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the middle of shard 0's segment.
	seg := segmentPath(dir, 0, 0)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] = 0x00
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenShardedWAL(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	db2 := NewShardedSightingDB(WithSightingWAL(w2))
	rerr := db2.Recover()
	if !errors.Is(rerr, ErrCorruptWAL) {
		t.Fatalf("Recover error = %v, want ErrCorruptWAL", rerr)
	}
}

func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}
