package spatial

import (
	"sync"
)

// Cursor is a paused nearest-neighbor enumeration around a fixed query
// point. Each Next call advances the underlying traversal exactly far
// enough to produce one more neighbor, so a consumer that stops after k
// neighbors pays for k heap pops — not for a re-traversal of the prefix, as
// the earlier fetch-with-doubled-k protocol did.
//
// Contract:
//
//   - On a quiescent index, Next yields exactly the sequence NearestFunc
//     visits: every entry once, in non-decreasing distance order (ordering
//     between equidistant entries is unspecified).
//   - If the index is modified between Next calls, the stream degrades to a
//     best-effort snapshot — entries may be missed or reported twice — but
//     reported distances still never decrease: an entry that moved closer
//     than the cursor's frontier is reported at the frontier distance.
//   - Close releases the cursor's traversal state for reuse. A cursor must
//     not be used after Close; Close is idempotent.
//   - A cursor is only as concurrency-safe as the index it traverses:
//     callers synchronize Next/Close against writers exactly as they would
//     synchronize NearestFunc (Sharded and the stores wrap each advance in
//     the owning shard's read lock).
type Cursor interface {
	Next() (Neighbor, bool)
	Close()
}

// CursorSource describes one distance-ordered stream before it is opened:
// a lower bound on every distance the stream can yield (for a shard, the
// minimum distance from the query point to the shard's bounding rectangle)
// and a constructor the merge invokes lazily. Open is called at most once —
// only when the merge frontier reaches MinDist — so shards whose bounding
// rectangle lies beyond the consumer's stopping distance are never
// traversed, or even locked, at all.
type CursorSource struct {
	MinDist float64
	Open    func() Cursor
}

// mref is one merge-heap slot: an unopened source (cur == nil) keyed by its
// MinDist, or an opened cursor keyed by the distance of its buffered head.
type mref struct {
	cur  Cursor
	open func() Cursor
	head Neighbor
}

// mergeCursor merges several distance-ordered sources into one globally
// distance-ordered stream — the k-way merge behind sharded nearest-neighbor
// queries, now advancing each source one neighbor at a time.
type mergeCursor struct {
	h      heapOf[mref]
	last   float64
	closed bool
}

var mergeCursorPool = sync.Pool{New: func() any { return new(mergeCursor) }}

// MergeSources returns a cursor over the union of the given sources in
// global order of increasing distance. Sources are opened lazily: a source
// whose MinDist exceeds the distance at which the consumer stops is never
// opened. Closing the merge cursor closes every source it opened.
func MergeSources(srcs []CursorSource) Cursor {
	c := mergeCursorPool.Get().(*mergeCursor)
	c.h.reset()
	c.last = 0
	c.closed = false
	for _, s := range srcs {
		c.h.push(s.MinDist, mref{open: s.Open})
	}
	return c
}

// Next implements Cursor.
func (c *mergeCursor) Next() (Neighbor, bool) {
	for c.h.len() > 0 {
		top := c.h.es[0]
		if top.val.cur == nil {
			// The frontier reached an unopened source: open it and
			// slot its first neighbor back into the heap.
			cur := top.val.open()
			if n, ok := cur.Next(); ok {
				c.h.replaceTop(n.Dist, mref{cur: cur, head: n})
			} else {
				cur.Close()
				c.h.pop()
			}
			continue
		}
		out := top.val.head
		if n, ok := top.val.cur.Next(); ok {
			c.h.replaceTop(n.Dist, mref{cur: top.val.cur, head: n})
		} else {
			top.val.cur.Close()
			c.h.pop()
		}
		// Sub-streams are individually monotone, but a source opened
		// late can start below the frontier when entries were inserted
		// after its MinDist was computed; clamp so the merged stream
		// keeps the cursor contract.
		if out.Dist < c.last {
			out.Dist = c.last
		}
		c.last = out.Dist
		return out, true
	}
	return Neighbor{}, false
}

// Close implements Cursor, closing every source the merge opened.
func (c *mergeCursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for i := range c.h.es {
		if cur := c.h.es[i].val.cur; cur != nil {
			cur.Close()
		}
	}
	c.h.reset()
	mergeCursorPool.Put(c)
}

// lockedCursor guards every advance of an inner cursor with a read lock, so
// a long-lived cursor over one shard of a concurrent index never holds the
// shard lock between neighbors and cannot starve writers.
type lockedCursor struct {
	mu *sync.RWMutex
	c  Cursor
}

// LockCursor wraps c so that each Next and the final Close run under
// mu.RLock. The inner cursor must have been created under the same lock.
func LockCursor(mu *sync.RWMutex, c Cursor) Cursor {
	return &lockedCursor{mu: mu, c: c}
}

// Next implements Cursor.
func (lc *lockedCursor) Next() (Neighbor, bool) {
	lc.mu.RLock()
	n, ok := lc.c.Next()
	lc.mu.RUnlock()
	return n, ok
}

// Close implements Cursor.
func (lc *lockedCursor) Close() {
	lc.mu.RLock()
	lc.c.Close()
	lc.mu.RUnlock()
}
