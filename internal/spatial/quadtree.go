package spatial

import (
	"sort"
	"sync"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// qBucket is the leaf capacity of the bucketed point quadtree: a leaf
// absorbs up to this many entries before it splits. Buckets keep the tree
// shallow — depth is O(log4(n/qBucket)) instead of O(log4 n) — which is the
// multiplier a sharded store pays on every query probe, and a bucket scan
// is a branch-free sweep over contiguous items, far cheaper per entry than
// a pointer-chasing descent. A leaf whose entries all share one position
// cannot be split and simply stays oversized, which keeps duplicate-heavy
// workloads correct.
const qBucket = 16

// Quadtree is a Point Quadtree after Samet [17], the spatial index the
// paper's prototype uses for its sightingDB, refined with leaf buckets:
// internal nodes store one distinct dividing position (plus all object ids
// sighted exactly there) and split the plane into four quadrants at that
// position, while leaves hold a small bucket of entries until they are
// worth dividing.
//
// Deletion is O(depth): removing a bucket entry edits the bucket in place,
// and removing a dividing position's last id leaves the divider behind as a
// position-only tombstone ("ghost") that no longer reports anything. Ghosts
// are swept by rebuilding the tree balanced once they outnumber a quarter
// of the live entries — amortized O(log n) per removal, and the rebuild is
// also where ghost nodes and stale rectangles disappear.
//
// Every node caches the bounding rectangle of its subtree's actual
// positions (sub), maintained with the same lazily-tightened invariant as
// the shard rectangles: inserts grow the rectangles along the descent path
// immediately, removals leave ancestors' rectangles conservatively large,
// and a subtree rebuild recomputes its rectangles exactly. Searches and the
// nearest-neighbor cursor prune on sub instead of the unbounded quadrant
// regions, which skips subtrees whose data lies nowhere near the query —
// the dominant cost once the database is split into per-shard trees.
type Quadtree struct {
	root *qnode
	size int
	// ghosts counts internal nodes whose dividing position holds no
	// resident entries anymore; the tree is rebuilt once they outnumber
	// size/4.
	ghosts int
}

var (
	_ Index     = (*Quadtree)(nil)
	_ ItemIndex = (*Quadtree)(nil)
)

// NewQuadtree returns an empty point quadtree.
func NewQuadtree() *Quadtree { return &Quadtree{} }

type qnode struct {
	// sub conservatively bounds every position in this subtree. It grows
	// immediately on insert and is recomputed exactly on subtree rebuild;
	// between rebuilds removals may leave it larger than the live extent,
	// never smaller.
	sub geo.Rect
	// Internal nodes: pos is the dividing position, res the entries
	// resident exactly there, kids the four quadrants. Leaves: items is
	// the bucket; pos/res/kids are unused.
	pos   geo.Point
	res   []Item
	items []Item
	kids  [4]*qnode
	leaf  bool
}

func newLeaf(it Item) *qnode {
	n := &qnode{leaf: true, sub: geo.Rect{Min: it.Pos, Max: it.Pos}}
	n.items = append(n.items, it)
	return n
}

// growSub widens n.sub to cover p.
func (n *qnode) growSub(p geo.Point) { n.sub.GrowToInclude(p) }

// quadrant indexes: 0 = NE, 1 = NW, 2 = SW, 3 = SE relative to node point.
// Points on the dividing lines go east/north, making placement unique.
func quadrantOf(center, p geo.Point) int {
	if p.X >= center.X {
		if p.Y >= center.Y {
			return 0
		}
		return 3
	}
	if p.Y >= center.Y {
		return 1
	}
	return 2
}

// Len implements Index.
func (t *Quadtree) Len() int { return t.size }

// Insert implements Index.
func (t *Quadtree) Insert(id core.OID, p geo.Point) {
	t.InsertItem(Item{ID: id, Pos: p})
}

// InsertItem implements ItemIndex, carrying it.Ref alongside the entry.
func (t *Quadtree) InsertItem(it Item) {
	t.size++
	if t.root == nil {
		t.root = newLeaf(it)
		return
	}
	n := t.root
	for {
		n.growSub(it.Pos)
		if n.leaf {
			n.items = append(n.items, it)
			if len(n.items) > qBucket {
				n.split()
			}
			return
		}
		if n.pos == it.Pos {
			if len(n.res) == 0 {
				t.ghosts-- // a ghost divider comes back to life
			}
			n.res = append(n.res, it)
			return
		}
		q := quadrantOf(n.pos, it.Pos)
		if n.kids[q] == nil {
			n.kids[q] = newLeaf(it)
			return
		}
		n = n.kids[q]
	}
}

// split turns an over-full leaf into an internal node: the bucket entry
// nearest the bucket centroid becomes the dividing position (a balanced
// pick on any distribution), entries sighted exactly there become the
// node's resident entries and the rest drop into fresh leaf kids. A bucket
// whose entries all share one position cannot be divided and stays an
// oversized leaf.
func (n *qnode) split() {
	var cx, cy float64
	for _, it := range n.items {
		cx += it.Pos.X
		cy += it.Pos.Y
	}
	c := geo.Pt(cx/float64(len(n.items)), cy/float64(len(n.items)))
	best, bestD := -1, 0.0
	distinct := false
	first := n.items[0].Pos
	for i, it := range n.items {
		if it.Pos != first {
			distinct = true
		}
		if d := it.Pos.Dist(c); best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	if !distinct {
		return
	}
	items := n.items
	n.leaf = false
	n.items = nil
	n.pos = items[best].Pos
	for _, it := range items {
		if it.Pos == n.pos {
			n.res = append(n.res, it)
			continue
		}
		q := quadrantOf(n.pos, it.Pos)
		if k := n.kids[q]; k != nil {
			k.growSub(it.Pos)
			k.items = append(k.items, it)
		} else {
			n.kids[q] = newLeaf(it)
		}
	}
}

// Remove implements Index.
func (t *Quadtree) Remove(id core.OID, p geo.Point) bool {
	n, parent, pq := t.root, (*qnode)(nil), -1
	for n != nil {
		if n.leaf {
			for i, it := range n.items {
				if it.ID == id && it.Pos == p {
					n.items = append(n.items[:i], n.items[i+1:]...)
					t.size--
					if len(n.items) == 0 {
						if parent == nil {
							t.root = nil
						} else {
							parent.kids[pq] = nil
						}
					}
					return true
				}
			}
			return false
		}
		if n.pos == p {
			break
		}
		q := quadrantOf(n.pos, p)
		parent, pq, n = n, q, n.kids[q]
	}
	if n == nil {
		return false
	}
	idx := -1
	for i, v := range n.res {
		if v.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	n.res = append(n.res[:idx], n.res[idx+1:]...)
	t.size--
	if len(n.res) > 0 {
		return true
	}
	// The dividing position holds no more objects. A childless divider is
	// simply unlinked; one with live subtrees becomes a ghost, swept by
	// the amortized rebuild below.
	dead := true
	for _, k := range n.kids {
		if k != nil {
			dead = false
			break
		}
	}
	if dead {
		if parent == nil {
			t.root = nil
		} else {
			parent.kids[pq] = nil
		}
		return true
	}
	t.ghosts++
	if t.ghosts*4 > t.size {
		t.rebuild()
	}
	return true
}

// rebuild replaces the tree with a balanced ghost-free copy of its live
// entries, tightening every cached rectangle exactly.
func (t *Quadtree) rebuild() {
	var items []Item
	collect(t.root, &items)
	t.root = buildSubtree(items, true)
	t.ghosts = 0
}

// collect appends every item in the subtree rooted at n.
func collect(n *qnode, out *[]Item) {
	if n == nil {
		return
	}
	if n.leaf {
		*out = append(*out, n.items...)
		return
	}
	*out = append(*out, n.res...)
	for _, k := range n.kids {
		collect(k, out)
	}
}

// buildSubtree constructs a balanced subtree: batches small enough for one
// bucket become leaves, larger ones are divided at the true median along
// alternating axes (BulkLoad and deletion rebuilds share it, so a rebuild
// is also where stale rectangles are tightened). It may reorder items.
func buildSubtree(items []Item, byX bool) *qnode {
	if len(items) == 0 {
		return nil
	}
	n := &qnode{sub: geo.Rect{Min: items[0].Pos, Max: items[0].Pos}}
	for _, it := range items[1:] {
		n.growSub(it.Pos)
	}
	if len(items) <= qBucket {
		n.leaf = true
		n.items = append(n.items, items...)
		return n
	}
	sort.Slice(items, func(i, j int) bool {
		if byX {
			if items[i].Pos.X != items[j].Pos.X {
				return items[i].Pos.X < items[j].Pos.X
			}
			return items[i].Pos.Y < items[j].Pos.Y
		}
		if items[i].Pos.Y != items[j].Pos.Y {
			return items[i].Pos.Y < items[j].Pos.Y
		}
		return items[i].Pos.X < items[j].Pos.X
	})
	n.pos = items[len(items)/2].Pos
	var quads [4][]Item
	for _, it := range items {
		if it.Pos == n.pos {
			n.res = append(n.res, it)
			continue
		}
		q := quadrantOf(n.pos, it.Pos)
		quads[q] = append(quads[q], it)
	}
	for q := range quads {
		n.kids[q] = buildSubtree(quads[q], !byX)
	}
	return n
}

// Search implements Index with an iterative descent over an explicit
// worklist (no call frame per node — range probes repeat once per shard,
// so per-node overhead is the multiplier the sharded store pays). Descent
// prunes twice: the classic quadrant half-plane tests, which never touch a
// child node's memory, then each visited node's cached subtree rectangle —
// so a subtree whose actual data lies nowhere near r is abandoned on entry
// even when its quadrant region intersects r.
func (t *Quadtree) Search(r geo.Rect, visit func(id core.OID, p geo.Point) bool) {
	t.SearchItems(r, func(it Item) bool { return visit(it.ID, it.Pos) })
}

// SearchItems implements ItemIndex: the same pruned descent, handing the
// stored Item (payload included) to the visitor.
func (t *Quadtree) SearchItems(r geo.Rect, visit func(it Item) bool) {
	if t.root == nil {
		return
	}
	// The worklist holds pending siblings: at most three per level, so a
	// fixed array covers any sanely balanced tree without allocating and
	// append spills to the heap for degenerate ones.
	var arr [32]*qnode
	stack := append(arr[:0], t.root)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !intersectsClosed(n.sub, r) {
			continue
		}
		if n.leaf {
			if r.ContainsRect(n.sub) {
				// The whole bucket lies inside r: emit without
				// per-item containment tests.
				for _, it := range n.items {
					if !visit(it) {
						return
					}
				}
				continue
			}
			for _, it := range n.items {
				if r.ContainsClosed(it.Pos) && !visit(it) {
					return
				}
			}
			continue
		}
		if r.ContainsClosed(n.pos) {
			for _, it := range n.res {
				if !visit(it) {
					return
				}
			}
		}
		// Push quadrants that can intersect r.
		// Quadrant 0 (NE): x >= pos.X, y >= pos.Y, etc.
		east, north := r.Max.X >= n.pos.X, r.Max.Y >= n.pos.Y
		west, south := r.Min.X < n.pos.X, r.Min.Y < n.pos.Y
		if k := n.kids[0]; k != nil && east && north {
			stack = append(stack, k)
		}
		if k := n.kids[1]; k != nil && west && north {
			stack = append(stack, k)
		}
		if k := n.kids[2]; k != nil && west && south {
			stack = append(stack, k)
		}
		if k := n.kids[3]; k != nil && east && south {
			stack = append(stack, k)
		}
	}
}

// qref is one pending step of a paused best-first traversal: a subtree
// still to be expanded (node != nil), or a single entry ready to be
// reported. Subtrees are keyed by the minimum distance to their cached
// subtree rectangle, which is tighter than the quadrant region and keeps
// the heap free of region bookkeeping.
type qref struct {
	node *qnode // nil for point entries
	item Item   // set for point entries
}

// quadCursor is the quadtree's resumable nearest-neighbor cursor: the
// best-first priority queue, paused between neighbors.
type quadCursor struct {
	p      geo.Point
	h      heapOf[qref]
	closed bool
}

var quadCursorPool = sync.Pool{New: func() any { return new(quadCursor) }}

// NearestCursor implements Index. The cursor shares the tree's nodes, so it
// obeys the same synchronization rules as every other read.
func (t *Quadtree) NearestCursor(p geo.Point) Cursor {
	c := quadCursorPool.Get().(*quadCursor)
	c.p = p
	c.closed = false
	c.h.reset()
	if t.root != nil {
		c.h.push(t.root.sub.DistToPoint(p), qref{node: t.root})
	}
	return c
}

// Next implements Cursor: pop pending steps until a point entry surfaces,
// expanding subtree steps into their quadrants and resident entries. Child
// keys are clamped to the popped key so the stream stays monotone even when
// the tree is modified between calls (on a quiescent tree the clamp is a
// no-op: a subtree's minimum distance never undercuts its parent's).
func (c *quadCursor) Next() (Neighbor, bool) {
	for c.h.len() > 0 {
		e := c.h.pop()
		if e.val.node == nil {
			it := e.val.item
			return Neighbor{ID: it.ID, Pos: it.Pos, Dist: e.key}, true
		}
		n := e.val.node
		floor := e.key
		if n.leaf {
			for _, it := range n.items {
				d := it.Pos.Dist(c.p)
				if d < floor {
					d = floor
				}
				c.h.push(d, qref{item: it})
			}
			continue
		}
		d := n.pos.Dist(c.p)
		if d < floor {
			d = floor
		}
		for _, it := range n.res {
			c.h.push(d, qref{item: it})
		}
		for _, k := range n.kids {
			if k == nil {
				continue
			}
			kd := k.sub.DistToPoint(c.p)
			if kd < floor {
				kd = floor
			}
			c.h.push(kd, qref{node: k})
		}
	}
	return Neighbor{}, false
}

// Close implements Cursor, returning the traversal state to a pool.
func (c *quadCursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.h.reset()
	quadCursorPool.Put(c)
}

// NearestFunc implements Index by draining a cursor: best-first search over
// subtree rectangles reports entries in exact increasing-distance order.
func (t *Quadtree) NearestFunc(p geo.Point, visit func(id core.OID, q geo.Point, dist float64) bool) {
	c := t.NearestCursor(p)
	defer c.Close()
	for {
		n, ok := c.Next()
		if !ok || !visit(n.ID, n.Pos, n.Dist) {
			return
		}
	}
}

// Depth returns the height of the tree; exposed for tests and diagnostics.
func (t *Quadtree) Depth() int { return depthQ(t.root) }

func depthQ(n *qnode) int {
	if n == nil {
		return 0
	}
	max := 0
	for _, k := range n.kids {
		if d := depthQ(k); d > max {
			max = d
		}
	}
	return max + 1
}
