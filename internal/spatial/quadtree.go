package spatial

import (
	"container/heap"
	"math"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// Quadtree is a Point Quadtree after Samet [17], the spatial index the
// paper's prototype uses for its sightingDB. Every tree node stores one
// distinct position (plus all object ids sighted exactly there) and splits
// the plane into four quadrants at that position.
//
// Deletion uses subtree re-insertion: when an internal node's last id is
// removed, the node's subtree is rebuilt without it. On the uniformly
// distributed positions a location server sees, subtrees are small and this
// keeps updates cheap (see BenchmarkTable1 for measured rates).
type Quadtree struct {
	root *qnode
	size int
}

var _ Index = (*Quadtree)(nil)

// NewQuadtree returns an empty point quadtree.
func NewQuadtree() *Quadtree { return &Quadtree{} }

type qnode struct {
	pos  geo.Point
	ids  []core.OID
	kids [4]*qnode
}

// quadrant indexes: 0 = NE, 1 = NW, 2 = SW, 3 = SE relative to node point.
// Points on the dividing lines go east/north, making placement unique.
func quadrantOf(center, p geo.Point) int {
	if p.X >= center.X {
		if p.Y >= center.Y {
			return 0
		}
		return 3
	}
	if p.Y >= center.Y {
		return 1
	}
	return 2
}

// quadrantRect returns the sub-rectangle of region corresponding to
// quadrant q around center.
func quadrantRect(region geo.Rect, center geo.Point, q int) geo.Rect {
	r := region
	switch q {
	case 0: // NE
		r.Min = geo.Point{X: center.X, Y: center.Y}
	case 1: // NW
		r.Max.X = center.X
		r.Min.Y = center.Y
	case 2: // SW
		r.Max = geo.Point{X: center.X, Y: center.Y}
	case 3: // SE
		r.Min.X = center.X
		r.Max.Y = center.Y
	}
	return r
}

// Len implements Index.
func (t *Quadtree) Len() int { return t.size }

// Insert implements Index.
func (t *Quadtree) Insert(id core.OID, p geo.Point) {
	t.size++
	if t.root == nil {
		t.root = &qnode{pos: p, ids: []core.OID{id}}
		return
	}
	n := t.root
	for {
		if n.pos == p {
			n.ids = append(n.ids, id)
			return
		}
		q := quadrantOf(n.pos, p)
		if n.kids[q] == nil {
			n.kids[q] = &qnode{pos: p, ids: []core.OID{id}}
			return
		}
		n = n.kids[q]
	}
}

// Remove implements Index.
func (t *Quadtree) Remove(id core.OID, p geo.Point) bool {
	n, parent, pq := t.root, (*qnode)(nil), -1
	for n != nil && n.pos != p {
		q := quadrantOf(n.pos, p)
		parent, pq, n = n, q, n.kids[q]
	}
	if n == nil {
		return false
	}
	idx := -1
	for i, v := range n.ids {
		if v == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	n.ids = append(n.ids[:idx], n.ids[idx+1:]...)
	t.size--
	if len(n.ids) > 0 {
		return true
	}
	// Node holds no more objects: rebuild its subtree without it.
	var items []Item
	for _, k := range n.kids {
		collect(k, &items)
	}
	rebuilt := buildSubtree(items)
	if parent == nil {
		t.root = rebuilt
	} else {
		parent.kids[pq] = rebuilt
	}
	return true
}

// collect appends every item in the subtree rooted at n.
func collect(n *qnode, out *[]Item) {
	if n == nil {
		return
	}
	for _, id := range n.ids {
		*out = append(*out, Item{ID: id, Pos: n.pos})
	}
	for _, k := range n.kids {
		collect(k, out)
	}
}

// buildSubtree constructs a subtree from items by repeated insertion,
// choosing a middle element first to keep the subtree balanced-ish.
func buildSubtree(items []Item) *qnode {
	if len(items) == 0 {
		return nil
	}
	// Start from the median-ish element to avoid degenerate chains when
	// items came out of an ordered traversal.
	mid := len(items) / 2
	root := &qnode{pos: items[mid].Pos, ids: []core.OID{items[mid].ID}}
	for i, it := range items {
		if i == mid {
			continue
		}
		n := root
		for {
			if n.pos == it.Pos {
				n.ids = append(n.ids, it.ID)
				break
			}
			q := quadrantOf(n.pos, it.Pos)
			if n.kids[q] == nil {
				n.kids[q] = &qnode{pos: it.Pos, ids: []core.OID{it.ID}}
				break
			}
			n = n.kids[q]
		}
	}
	return root
}

// Search implements Index.
func (t *Quadtree) Search(r geo.Rect, visit func(id core.OID, p geo.Point) bool) {
	searchQ(t.root, r, visit)
}

func searchQ(n *qnode, r geo.Rect, visit func(core.OID, geo.Point) bool) bool {
	if n == nil {
		return true
	}
	if r.ContainsClosed(n.pos) {
		for _, id := range n.ids {
			if !visit(id, n.pos) {
				return false
			}
		}
	}
	// Prune quadrants that cannot intersect r.
	// Quadrant 0 (NE): x >= pos.X, y >= pos.Y, etc.
	if r.Max.X >= n.pos.X && r.Max.Y >= n.pos.Y {
		if !searchQ(n.kids[0], r, visit) {
			return false
		}
	}
	if r.Min.X < n.pos.X && r.Max.Y >= n.pos.Y {
		if !searchQ(n.kids[1], r, visit) {
			return false
		}
	}
	if r.Min.X < n.pos.X && r.Min.Y < n.pos.Y {
		if !searchQ(n.kids[2], r, visit) {
			return false
		}
	}
	if r.Max.X >= n.pos.X && r.Min.Y < n.pos.Y {
		if !searchQ(n.kids[3], r, visit) {
			return false
		}
	}
	return true
}

// qheapEntry is either a tree node with its enclosing region or a concrete
// point ready to be reported.
type qheapEntry struct {
	dist   float64
	node   *qnode   // nil for point entries
	region geo.Rect // region for node entries
	item   Item     // set for point entries
}

type qheap []qheapEntry

func (h qheap) Len() int            { return len(h) }
func (h qheap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h qheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *qheap) Push(x interface{}) { *h = append(*h, x.(qheapEntry)) }
func (h *qheap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NearestFunc implements Index using best-first search: a priority queue
// orders pending quadrants by their minimum possible distance, so entries
// are reported in exact increasing-distance order.
func (t *Quadtree) NearestFunc(p geo.Point, visit func(id core.OID, q geo.Point, dist float64) bool) {
	if t.root == nil {
		return
	}
	inf := math.Inf(1)
	all := geo.Rect{Min: geo.Point{X: -inf, Y: -inf}, Max: geo.Point{X: inf, Y: inf}}
	h := &qheap{{dist: 0, node: t.root, region: all}}
	for h.Len() > 0 {
		e := heap.Pop(h).(qheapEntry)
		if e.node == nil {
			if !visit(e.item.ID, e.item.Pos, e.dist) {
				return
			}
			continue
		}
		n := e.node
		d := n.pos.Dist(p)
		for _, id := range n.ids {
			heap.Push(h, qheapEntry{dist: d, item: Item{ID: id, Pos: n.pos}})
		}
		for q, k := range n.kids {
			if k == nil {
				continue
			}
			reg := quadrantRect(e.region, n.pos, q)
			heap.Push(h, qheapEntry{dist: reg.DistToPoint(p), node: k, region: reg})
		}
	}
}

// Depth returns the height of the tree; exposed for tests and diagnostics.
func (t *Quadtree) Depth() int { return depthQ(t.root) }

func depthQ(n *qnode) int {
	if n == nil {
		return 0
	}
	max := 0
	for _, k := range n.kids {
		if d := depthQ(k); d > max {
			max = d
		}
	}
	return max + 1
}
