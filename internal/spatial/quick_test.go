package spatial

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// pointSet is a generated batch of insert positions for property tests.
type pointSet []geo.Point

// Generate implements quick.Generator with coordinates on a coarse grid so
// duplicate positions occur regularly (the hard case for tree indexes).
func (pointSet) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(size*4 + 1)
	ps := make(pointSet, n)
	for i := range ps {
		ps[i] = geo.Pt(float64(rng.Intn(50)), float64(rng.Intn(50)))
	}
	return reflect.ValueOf(ps)
}

// newShardedQuadtree builds the sharded wrapper covered by the property
// tests alongside the plain indexes.
func newShardedQuadtree() Index {
	return NewSharded(4, func() Index { return NewQuadtree() })
}

// TestQuickSearchMatchesLinear: for any generated point set and query
// rectangle, tree and sharded searches return exactly what the linear
// reference does.
func TestQuickSearchMatchesLinear(t *testing.T) {
	prop := func(ps pointSet, qx0, qy0, qx1, qy1 int8) bool {
		ref := NewLinear()
		qt := NewQuadtree()
		rt := NewRTree()
		sh := newShardedQuadtree()
		for i, p := range ps {
			id := core.OID(fmt.Sprintf("o%d", i))
			ref.Insert(id, p)
			qt.Insert(id, p)
			rt.Insert(id, p)
			sh.Insert(id, p)
		}
		r := geo.R(float64(qx0), float64(qy0), float64(qx1), float64(qy1))
		want := idsIn(ref, r)
		return equalIDs(idsIn(qt, r), want) && equalIDs(idsIn(rt, r), want) &&
			equalIDs(idsIn(sh, r), want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeleteHalfMatchesLinear: deleting an arbitrary half of the
// entries leaves all implementations agreeing.
func TestQuickDeleteHalfMatchesLinear(t *testing.T) {
	prop := func(ps pointSet) bool {
		ref := NewLinear()
		qt := NewQuadtree()
		rt := NewRTree()
		sh := newShardedQuadtree()
		for i, p := range ps {
			id := core.OID(fmt.Sprintf("o%d", i))
			ref.Insert(id, p)
			qt.Insert(id, p)
			rt.Insert(id, p)
			sh.Insert(id, p)
		}
		for i, p := range ps {
			if i%2 == 1 {
				continue
			}
			id := core.OID(fmt.Sprintf("o%d", i))
			if !ref.Remove(id, p) || !qt.Remove(id, p) || !rt.Remove(id, p) || !sh.Remove(id, p) {
				return false
			}
		}
		if qt.Len() != ref.Len() || rt.Len() != ref.Len() || sh.Len() != ref.Len() {
			return false
		}
		all := geo.R(-1, -1, 51, 51)
		want := idsIn(ref, all)
		return equalIDs(idsIn(qt, all), want) && equalIDs(idsIn(rt, all), want) &&
			equalIDs(idsIn(sh, all), want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickNearestStreamMatchesLinear: the sharded merged nearest-neighbor
// stream yields exactly the linear reference's distance sequence, for the
// whole population.
func TestQuickNearestStreamMatchesLinear(t *testing.T) {
	prop := func(ps pointSet, qx, qy int8) bool {
		ref := NewLinear()
		sh := newShardedQuadtree()
		for i, p := range ps {
			id := core.OID(fmt.Sprintf("o%d", i))
			ref.Insert(id, p)
			sh.Insert(id, p)
		}
		q := geo.Pt(float64(qx), float64(qy))
		var want, got []float64
		ref.NearestFunc(q, func(_ core.OID, _ geo.Point, d float64) bool {
			want = append(want, d)
			return true
		})
		sh.NearestFunc(q, func(_ core.OID, _ geo.Point, d float64) bool {
			got = append(got, d)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickNearestIsGlobalMinimum: the first entry NearestFunc reports is
// always a global distance minimum.
func TestQuickNearestIsGlobalMinimum(t *testing.T) {
	prop := func(ps pointSet, qx, qy int8) bool {
		if len(ps) == 0 {
			return true
		}
		q := geo.Pt(float64(qx), float64(qy))
		best := ps[0].Dist(q)
		for _, p := range ps[1:] {
			if d := p.Dist(q); d < best {
				best = d
			}
		}
		for _, mk := range []func() Index{
			func() Index { return NewQuadtree() },
			func() Index { return NewRTree() },
			newShardedQuadtree,
		} {
			ix := mk()
			for i, p := range ps {
				ix.Insert(core.OID(fmt.Sprintf("o%d", i)), p)
			}
			var got float64
			found := false
			ix.NearestFunc(q, func(_ core.OID, _ geo.Point, d float64) bool {
				got, found = d, true
				return false
			})
			if !found || got != best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
