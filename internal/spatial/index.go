// Package spatial provides the point indexes used by a location server's
// main-memory sighting database (paper Section 5): a Point Quadtree (the
// index the paper's prototype uses, after Samet [17]), an R-tree (the
// alternative the paper cites, after Guttman [6]) and a linear scan used as
// a correctness reference and ablation baseline.
//
// All indexes store (object id, position) pairs, answer rectangle searches
// for range queries and stream neighbors in increasing distance order for
// nearest-neighbor queries. Nearest-neighbor enumeration is exposed two
// ways: push-style (NearestFunc) and as a resumable pull-style Cursor
// (NearestCursor) whose best-first traversal pauses between neighbors — the
// building block that lets the sharded wrappers merge per-shard streams
// without re-traversing each shard's prefix (see Cursor for the contract).
//
// The concurrent wrappers (Sharded here, store.ShardedSightingDB) maintain
// a conservative per-shard bounding rectangle over live entries: it always
// contains every live position (inserts grow it immediately; removals only
// mark it stale and it is recomputed once stale removals outnumber live
// entries), so skipping a shard whose rectangle misses a query rectangle,
// or ordering unopened shard streams by the rectangle's minimum distance,
// can never change a query result.
package spatial

import (
	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// Item is one indexed object. Ref is an optional opaque payload carried
// alongside the entry by indexes that implement ItemIndex: a store can
// stash its record pointer there and get it back from a search, sparing a
// hash-map lookup per match on the hot read path. Indexes never inspect
// Ref; id-keyed callers may leave it nil.
type Item struct {
	ID  core.OID
	Pos geo.Point
	Ref any
}

// Index is the interface shared by all spatial index implementations.
// Implementations are not safe for concurrent use; the owning store
// serializes access (see internal/store).
type Index interface {
	// Insert adds an object at position p. Inserting an id twice without
	// removing it first leaves two entries; callers are expected to
	// Remove before re-inserting (the store's update path does).
	Insert(id core.OID, p geo.Point)
	// Remove deletes the entry for id at position p, which must be the
	// position it was inserted with. It reports whether an entry was
	// removed.
	Remove(id core.OID, p geo.Point) bool
	// Len returns the number of indexed entries.
	Len() int
	// Search visits every entry whose position lies in the closed
	// rectangle r. Returning false from visit stops the search early.
	Search(r geo.Rect, visit func(id core.OID, p geo.Point) bool)
	// NearestFunc visits entries in order of increasing distance from p.
	// Returning false from visit stops the enumeration. Ordering between
	// equidistant entries is unspecified.
	NearestFunc(p geo.Point, visit func(id core.OID, q geo.Point, dist float64) bool)
	// NearestCursor returns a paused nearest-neighbor enumeration around
	// p that yields the same stream as NearestFunc one neighbor per Next
	// call; see Cursor for the full contract.
	NearestCursor(p geo.Point) Cursor
}

// ItemIndex is an optional capability an Index may implement: inserting
// whole Items (including the opaque Ref payload) and searching with the
// stored Item handed back to the visitor. Entries inserted through either
// Insert or InsertItem are removed through the same Remove — the payload
// plays no part in matching. The stores type-assert for this capability and
// fall back to the id-keyed API, so it stays invisible to plain callers.
type ItemIndex interface {
	Index
	// InsertItem adds it, carrying its Ref payload alongside the entry.
	InsertItem(it Item)
	// SearchItems is Search handing back the stored Item per match.
	SearchItems(r geo.Rect, visit func(it Item) bool)
}

// Kind selects an index implementation by name; it is used by server
// configuration and the index ablation benchmarks.
type Kind int

// Supported index kinds.
const (
	KindQuadtree Kind = iota + 1
	KindRTree
	KindLinear
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindQuadtree:
		return "quadtree"
	case KindRTree:
		return "rtree"
	case KindLinear:
		return "linear"
	default:
		return "unknown"
	}
}

// New constructs an index of the given kind. Unknown kinds fall back to the
// quadtree, the paper's default.
func New(k Kind) Index {
	switch k {
	case KindRTree:
		return NewRTree()
	case KindLinear:
		return NewLinear()
	default:
		return NewQuadtree()
	}
}

// SearchAll collects every entry inside r. It is a convenience wrapper
// around Search for callers that want a slice.
func SearchAll(ix Index, r geo.Rect) []Item {
	var out []Item
	ix.Search(r, func(id core.OID, p geo.Point) bool {
		out = append(out, Item{ID: id, Pos: p})
		return true
	})
	return out
}

// KNearest returns up to k entries closest to p, nearest first. It pulls
// exactly k neighbors off a cursor, so no implementation over-fetches.
func KNearest(ix Index, p geo.Point, k int) []Item {
	if k <= 0 {
		return nil
	}
	c := ix.NearestCursor(p)
	defer c.Close()
	out := make([]Item, 0, k)
	for len(out) < k {
		n, ok := c.Next()
		if !ok {
			break
		}
		out = append(out, Item{ID: n.ID, Pos: n.Pos})
	}
	return out
}
