// Package spatial provides the point indexes used by a location server's
// main-memory sighting database (paper Section 5): a Point Quadtree (the
// index the paper's prototype uses, after Samet [17]), an R-tree (the
// alternative the paper cites, after Guttman [6]) and a linear scan used as
// a correctness reference and ablation baseline.
//
// All indexes store (object id, position) pairs, answer rectangle searches
// for range queries and stream neighbors in increasing distance order for
// nearest-neighbor queries.
package spatial

import (
	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// Item is one indexed object.
type Item struct {
	ID  core.OID
	Pos geo.Point
}

// Index is the interface shared by all spatial index implementations.
// Implementations are not safe for concurrent use; the owning store
// serializes access (see internal/store).
type Index interface {
	// Insert adds an object at position p. Inserting an id twice without
	// removing it first leaves two entries; callers are expected to
	// Remove before re-inserting (the store's update path does).
	Insert(id core.OID, p geo.Point)
	// Remove deletes the entry for id at position p, which must be the
	// position it was inserted with. It reports whether an entry was
	// removed.
	Remove(id core.OID, p geo.Point) bool
	// Len returns the number of indexed entries.
	Len() int
	// Search visits every entry whose position lies in the closed
	// rectangle r. Returning false from visit stops the search early.
	Search(r geo.Rect, visit func(id core.OID, p geo.Point) bool)
	// NearestFunc visits entries in order of increasing distance from p.
	// Returning false from visit stops the enumeration. Ordering between
	// equidistant entries is unspecified.
	NearestFunc(p geo.Point, visit func(id core.OID, q geo.Point, dist float64) bool)
}

// Kind selects an index implementation by name; it is used by server
// configuration and the index ablation benchmarks.
type Kind int

// Supported index kinds.
const (
	KindQuadtree Kind = iota + 1
	KindRTree
	KindLinear
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindQuadtree:
		return "quadtree"
	case KindRTree:
		return "rtree"
	case KindLinear:
		return "linear"
	default:
		return "unknown"
	}
}

// New constructs an index of the given kind. Unknown kinds fall back to the
// quadtree, the paper's default.
func New(k Kind) Index {
	switch k {
	case KindRTree:
		return NewRTree()
	case KindLinear:
		return NewLinear()
	default:
		return NewQuadtree()
	}
}

// SearchAll collects every entry inside r. It is a convenience wrapper
// around Search for callers that want a slice.
func SearchAll(ix Index, r geo.Rect) []Item {
	var out []Item
	ix.Search(r, func(id core.OID, p geo.Point) bool {
		out = append(out, Item{ID: id, Pos: p})
		return true
	})
	return out
}

// KNearest returns up to k entries closest to p, nearest first.
func KNearest(ix Index, p geo.Point, k int) []Item {
	if k <= 0 {
		return nil
	}
	out := make([]Item, 0, k)
	ix.NearestFunc(p, func(id core.OID, q geo.Point, _ float64) bool {
		out = append(out, Item{ID: id, Pos: q})
		return len(out) < k
	})
	return out
}
