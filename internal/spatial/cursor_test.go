package spatial

import (
	"fmt"
	"math/rand"
	"testing"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// cursorTestIndexes enumerates every Index implementation under the cursor
// contract, including the sharded wrapper (whose cursor is the lazy merge).
func cursorTestIndexes() []struct {
	name string
	mk   func() Index
} {
	return []struct {
		name string
		mk   func() Index
	}{
		{"quadtree", func() Index { return NewQuadtree() }},
		{"rtree", func() Index { return NewRTree() }},
		{"linear", func() Index { return NewLinear() }},
		{"sharded", func() Index { return NewSharded(4, func() Index { return NewQuadtree() }) }},
	}
}

// TestCursorMatchesNearestFunc: on a quiescent snapshot, the cursor stream
// is exactly the NearestFunc stream — same entries, same order, same
// distances — for every index kind, with duplicate positions present.
func TestCursorMatchesNearestFunc(t *testing.T) {
	for _, tc := range cursorTestIndexes() {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			ix := tc.mk()
			for i := 0; i < 400; i++ {
				// Coarse grid so duplicate positions occur regularly.
				p := geo.Pt(float64(rng.Intn(40)), float64(rng.Intn(40)))
				ix.Insert(core.OID(fmt.Sprintf("o%d", i)), p)
			}
			for trial := 0; trial < 5; trial++ {
				q := geo.Pt(rng.Float64()*40, rng.Float64()*40)
				type rec struct {
					id   core.OID
					dist float64
				}
				var want []rec
				ix.NearestFunc(q, func(id core.OID, _ geo.Point, d float64) bool {
					want = append(want, rec{id, d})
					return true
				})
				c := ix.NearestCursor(q)
				var got []rec
				for {
					n, ok := c.Next()
					if !ok {
						break
					}
					got = append(got, rec{n.ID, n.Dist})
				}
				c.Close()
				if len(got) != len(want) {
					t.Fatalf("cursor yielded %d entries, NearestFunc %d", len(got), len(want))
				}
				for i := range got {
					if got[i].dist != want[i].dist {
						t.Fatalf("dist[%d] = %v, want %v", i, got[i].dist, want[i].dist)
					}
					// Ordering between equidistant entries is
					// unspecified, so ids are only compared when the
					// distance is unique on both sides.
					uniq := (i == 0 || want[i-1].dist != want[i].dist) &&
						(i == len(want)-1 || want[i+1].dist != want[i].dist)
					if uniq && got[i].id != want[i].id {
						t.Fatalf("id[%d] = %s, want %s", i, got[i].id, want[i].id)
					}
				}
			}
		})
	}
}

// TestCursorMonotoneAcrossMutation: a cursor resumed across interleaved
// inserts and removes still yields non-decreasing distances, for every
// index kind.
func TestCursorMonotoneAcrossMutation(t *testing.T) {
	for _, tc := range cursorTestIndexes() {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(23))
			ix := tc.mk()
			pos := map[core.OID]geo.Point{}
			insert := func(i int) {
				id := core.OID(fmt.Sprintf("m%d", i))
				if p, ok := pos[id]; ok {
					ix.Remove(id, p)
				}
				p := geo.Pt(rng.Float64()*100, rng.Float64()*100)
				ix.Insert(id, p)
				pos[id] = p
			}
			for i := 0; i < 300; i++ {
				insert(i)
			}
			q := geo.Pt(50, 50)
			c := ix.NearestCursor(q)
			defer c.Close()
			last := -1.0
			yielded := 0
			for step := 0; step < 40; step++ {
				// Pull a few neighbors...
				for k := 0; k < 3; k++ {
					n, ok := c.Next()
					if !ok {
						return
					}
					if n.Dist < last {
						t.Fatalf("step %d: dist %v after %v (decreasing)", step, n.Dist, last)
					}
					last = n.Dist
					yielded++
				}
				// ... then churn the index, including points closer than
				// the cursor frontier.
				for k := 0; k < 10; k++ {
					insert(rng.Intn(300))
				}
				id := core.OID(fmt.Sprintf("new%d", step))
				ix.Insert(id, geo.Pt(50+rng.Float64(), 50+rng.Float64()))
			}
			if yielded == 0 {
				t.Fatal("cursor yielded nothing")
			}
		})
	}
}

// TestShardedPruningMatchesOracle: after a heavy interleaving of inserts
// and removes (staling and re-tightening the shard rectangles), pruned
// Search and NearestFunc agree exactly with the linear reference.
func TestShardedPruningMatchesOracle(t *testing.T) {
	for _, mk := range []struct {
		name string
		sub  func() Index
	}{
		{"quadtree", func() Index { return NewQuadtree() }},
		{"rtree", func() Index { return NewRTree() }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(37))
			ref := NewLinear()
			sh := NewSharded(4, mk.sub)
			pos := map[core.OID]geo.Point{}
			var ids []core.OID
			for step := 0; step < 4000; step++ {
				switch {
				case len(ids) == 0 || rng.Intn(3) > 0:
					id := core.OID(fmt.Sprintf("o%d", step))
					p := geo.Pt(float64(rng.Intn(200)), float64(rng.Intn(200)))
					ref.Insert(id, p)
					sh.Insert(id, p)
					pos[id] = p
					ids = append(ids, id)
				default:
					i := rng.Intn(len(ids))
					id := ids[i]
					ids[i] = ids[len(ids)-1]
					ids = ids[:len(ids)-1]
					if !sh.Remove(id, pos[id]) || !ref.Remove(id, pos[id]) {
						t.Fatalf("remove %s failed", id)
					}
					delete(pos, id)
				}
			}
			if sh.Len() != ref.Len() {
				t.Fatalf("Len = %d, want %d", sh.Len(), ref.Len())
			}
			// Search oracle over random rectangles (some clustered in
			// corners, where stale bounds would over- or under-prune).
			for trial := 0; trial < 50; trial++ {
				x, y := rng.Float64()*200, rng.Float64()*200
				w, h := rng.Float64()*60, rng.Float64()*60
				r := geo.R(x, y, x+w, y+h)
				want := idsIn(ref, r)
				if got := idsIn(sh, r); !equalIDs(got, want) {
					t.Fatalf("Search(%v): got %d ids, want %d", r, len(got), len(want))
				}
			}
			// Nearest oracle: full-stream distance equality.
			for trial := 0; trial < 10; trial++ {
				q := geo.Pt(rng.Float64()*200, rng.Float64()*200)
				var want, got []float64
				ref.NearestFunc(q, func(_ core.OID, _ geo.Point, d float64) bool {
					want = append(want, d)
					return true
				})
				sh.NearestFunc(q, func(_ core.OID, _ geo.Point, d float64) bool {
					got = append(got, d)
					return true
				})
				if len(got) != len(want) {
					t.Fatalf("nearest stream %d entries, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("nearest dist[%d] = %v, want %v", i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestMergeSourcesLazyOpen: sources beyond the consumer's stopping distance
// are never opened, and closing the merge closes every opened source.
func TestMergeSourcesLazyOpen(t *testing.T) {
	mkSource := func(minDist float64, dists ...float64) (CursorSource, *int) {
		opened := new(int)
		l := NewLinear()
		for i, d := range dists {
			l.Insert(core.OID(fmt.Sprintf("s%v-%d", minDist, i)), geo.Pt(d, 0))
		}
		return CursorSource{MinDist: minDist, Open: func() Cursor {
			*opened++
			return l.NearestCursor(geo.Pt(0, 0))
		}}, opened
	}
	near, nearOpened := mkSource(0, 1, 2, 3)
	far, farOpened := mkSource(100, 100, 101)
	c := MergeSources([]CursorSource{far, near})
	for i := 0; i < 3; i++ {
		n, ok := c.Next()
		if !ok {
			t.Fatalf("Next %d: stream ended early", i)
		}
		if n.Dist != float64(i+1) {
			t.Fatalf("Next %d: dist %v, want %d", i, n.Dist, i+1)
		}
	}
	c.Close()
	if *nearOpened != 1 {
		t.Errorf("near source opened %d times, want 1", *nearOpened)
	}
	if *farOpened != 0 {
		t.Errorf("far source opened %d times, want 0 (beyond stopping distance)", *farOpened)
	}
	// Draining past the far source's bound must open it.
	near2, _ := mkSource(0, 1, 2, 3)
	far2, far2Opened := mkSource(100, 100, 101)
	c = MergeSources([]CursorSource{near2, far2})
	count := 0
	for {
		if _, ok := c.Next(); !ok {
			break
		}
		count++
	}
	c.Close()
	if count != 5 {
		t.Errorf("full drain yielded %d, want 5", count)
	}
	if *far2Opened != 1 {
		t.Errorf("far source opened %d times on full drain, want 1", *far2Opened)
	}
}
