package spatial

import (
	"sort"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// Linear is a brute-force index used as a correctness reference for the
// tree indexes and as the baseline in the index ablation (DESIGN.md, A1).
// Insert and Remove are O(1); Search and NearestFunc scan all entries.
type Linear struct {
	items map[core.OID][]geo.Point
	size  int
}

var _ Index = (*Linear)(nil)

// NewLinear returns an empty linear index.
func NewLinear() *Linear {
	return &Linear{items: make(map[core.OID][]geo.Point)}
}

// Len implements Index.
func (l *Linear) Len() int { return l.size }

// Insert implements Index.
func (l *Linear) Insert(id core.OID, p geo.Point) {
	l.items[id] = append(l.items[id], p)
	l.size++
}

// Remove implements Index.
func (l *Linear) Remove(id core.OID, p geo.Point) bool {
	ps := l.items[id]
	for i, q := range ps {
		if q == p {
			ps[i] = ps[len(ps)-1]
			ps = ps[:len(ps)-1]
			if len(ps) == 0 {
				delete(l.items, id)
			} else {
				l.items[id] = ps
			}
			l.size--
			return true
		}
	}
	return false
}

// Search implements Index.
func (l *Linear) Search(r geo.Rect, visit func(id core.OID, p geo.Point) bool) {
	for id, ps := range l.items {
		for _, p := range ps {
			if r.ContainsClosed(p) && !visit(id, p) {
				return
			}
		}
	}
}

// NearestFunc implements Index by sorting all entries by distance.
func (l *Linear) NearestFunc(p geo.Point, visit func(id core.OID, q geo.Point, dist float64) bool) {
	type distItem struct {
		it   Item
		dist float64
	}
	all := make([]distItem, 0, l.size)
	for id, ps := range l.items {
		for _, q := range ps {
			all = append(all, distItem{it: Item{ID: id, Pos: q}, dist: q.Dist(p)})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].dist < all[j].dist })
	for _, di := range all {
		if !visit(di.it.ID, di.it.Pos, di.dist) {
			return
		}
	}
}
