package spatial

import (
	"sort"
	"sync"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// Linear is a brute-force index used as a correctness reference for the
// tree indexes and as the baseline in the index ablation (DESIGN.md, A1).
// Insert and Remove are O(1); Search and NearestFunc scan all entries.
type Linear struct {
	items map[core.OID][]geo.Point
	size  int
}

var _ Index = (*Linear)(nil)

// NewLinear returns an empty linear index.
func NewLinear() *Linear {
	return &Linear{items: make(map[core.OID][]geo.Point)}
}

// Len implements Index.
func (l *Linear) Len() int { return l.size }

// Insert implements Index.
func (l *Linear) Insert(id core.OID, p geo.Point) {
	l.items[id] = append(l.items[id], p)
	l.size++
}

// Remove implements Index.
func (l *Linear) Remove(id core.OID, p geo.Point) bool {
	ps := l.items[id]
	for i, q := range ps {
		if q == p {
			ps[i] = ps[len(ps)-1]
			ps = ps[:len(ps)-1]
			if len(ps) == 0 {
				delete(l.items, id)
			} else {
				l.items[id] = ps
			}
			l.size--
			return true
		}
	}
	return false
}

// Search implements Index.
func (l *Linear) Search(r geo.Rect, visit func(id core.OID, p geo.Point) bool) {
	for id, ps := range l.items {
		for _, p := range ps {
			if r.ContainsClosed(p) && !visit(id, p) {
				return
			}
		}
	}
}

// linearCursor is the linear scan's nearest-neighbor cursor: a sorted
// snapshot buffer, advanced one entry per Next. The snapshot is taken at
// creation, so a cursor resumed across modifications simply replays the
// state it saw — trivially monotone.
type linearCursor struct {
	buf    []Neighbor
	pos    int
	closed bool
}

var linearCursorPool = sync.Pool{New: func() any { return new(linearCursor) }}

// NearestCursor implements Index by snapshotting all entries sorted by
// distance from p.
func (l *Linear) NearestCursor(p geo.Point) Cursor {
	c := linearCursorPool.Get().(*linearCursor)
	c.pos = 0
	c.closed = false
	c.buf = c.buf[:0]
	for id, ps := range l.items {
		for _, q := range ps {
			c.buf = append(c.buf, Neighbor{ID: id, Pos: q, Dist: q.Dist(p)})
		}
	}
	sort.Slice(c.buf, func(i, j int) bool { return c.buf[i].Dist < c.buf[j].Dist })
	return c
}

// Next implements Cursor.
func (c *linearCursor) Next() (Neighbor, bool) {
	if c.pos >= len(c.buf) {
		return Neighbor{}, false
	}
	n := c.buf[c.pos]
	c.pos++
	return n, true
}

// Close implements Cursor, returning the snapshot buffer to a pool.
func (c *linearCursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	clear(c.buf)
	c.buf = c.buf[:0]
	linearCursorPool.Put(c)
}

// NearestFunc implements Index by draining a sorted-snapshot cursor.
func (l *Linear) NearestFunc(p geo.Point, visit func(id core.OID, q geo.Point, dist float64) bool) {
	c := l.NearestCursor(p)
	defer c.Close()
	for {
		n, ok := c.Next()
		if !ok || !visit(n.ID, n.Pos, n.Dist) {
			return
		}
	}
}
