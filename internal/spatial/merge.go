package spatial

import (
	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// Neighbor is one entry of a nearest-neighbor stream: an indexed object
// together with its distance from the query point.
type Neighbor struct {
	ID   core.OID
	Pos  geo.Point
	Dist float64
}

// NearestFetch returns up to k entries nearest to a fixed query point,
// nearest first. It is kept for callers that want a batch interface; the
// streaming paths use Cursor directly, which avoids re-traversing the
// prefix when a consumer needs to look deeper.
type NearestFetch func(k int) []Neighbor

// FetchFromIndex adapts an Index to a NearestFetch around p: each call
// opens a fresh cursor and drains its first k neighbors. The returned fetch
// is only as concurrency-safe as the index it wraps.
func FetchFromIndex(ix Index, p geo.Point) NearestFetch {
	return func(k int) []Neighbor {
		if k <= 0 {
			return nil
		}
		c := ix.NearestCursor(p)
		defer c.Close()
		out := make([]Neighbor, 0, k)
		for len(out) < k {
			n, ok := c.Next()
			if !ok {
				break
			}
			out = append(out, n)
		}
		return out
	}
}

// MergeNearest visits the union of several distance-ordered cursors in
// global order of increasing distance — the k-way merge behind sharded
// nearest-neighbor queries. Each cursor is advanced exactly one neighbor at
// a time, so stopping after k results costs k advances plus one buffered
// head per cursor. Returning false from visit stops the enumeration;
// ordering between equidistant entries is unspecified. The caller retains
// ownership of the cursors and closes them.
func MergeNearest(cursors []Cursor, visit func(n Neighbor) bool) {
	var h heapOf[mref]
	for _, c := range cursors {
		if n, ok := c.Next(); ok {
			h.push(n.Dist, mref{cur: c, head: n})
		}
	}
	for h.len() > 0 {
		top := h.es[0]
		if !visit(top.val.head) {
			return
		}
		if n, ok := top.val.cur.Next(); ok {
			h.replaceTop(n.Dist, mref{cur: top.val.cur, head: n})
		} else {
			h.pop()
		}
	}
}
