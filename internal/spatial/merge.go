package spatial

import (
	"container/heap"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// Neighbor is one entry of a nearest-neighbor stream: an indexed object
// together with its distance from the query point.
type Neighbor struct {
	ID   core.OID
	Pos  geo.Point
	Dist float64
}

// NearestFetch returns up to k entries nearest to a fixed query point,
// nearest first. Successive calls with growing k must extend the previous
// answer (same prefix when the underlying data is unchanged); MergeNearest
// re-fetches with doubled k to pull deeper into a stream.
type NearestFetch func(k int) []Neighbor

// FetchFromIndex adapts an Index to a NearestFetch around p. The returned
// fetch is only as concurrency-safe as the index it wraps.
func FetchFromIndex(ix Index, p geo.Point) NearestFetch {
	return func(k int) []Neighbor {
		out := make([]Neighbor, 0, k)
		ix.NearestFunc(p, func(id core.OID, q geo.Point, dist float64) bool {
			out = append(out, Neighbor{ID: id, Pos: q, Dist: dist})
			return len(out) < k
		})
		return out
	}
}

// nnStream pulls one source's neighbors in distance order. Sources expose a
// push-style NearestFunc, so the stream buffers a prefix and re-fetches with
// doubled depth when the merge needs to see further — each shard is queried
// only as deeply as the merged consumer actually advances into it.
type nnStream struct {
	fetch NearestFetch
	buf   []Neighbor
	pos   int
	k     int
	done  bool // the last fetch returned fewer than k entries
}

// next returns the stream's next neighbor in distance order.
func (st *nnStream) next() (Neighbor, bool) {
	for {
		if st.pos < len(st.buf) {
			n := st.buf[st.pos]
			st.pos++
			return n, true
		}
		if st.done {
			return Neighbor{}, false
		}
		st.k *= 2
		st.buf = st.fetch(st.k)
		if len(st.buf) < st.k {
			st.done = true
		}
		if st.pos >= len(st.buf) && st.done {
			return Neighbor{}, false
		}
	}
}

// streamHeap orders streams by the distance of their current head.
type streamHead struct {
	head Neighbor
	st   *nnStream
}

type streamHeap []streamHead

func (h streamHeap) Len() int            { return len(h) }
func (h streamHeap) Less(i, j int) bool  { return h[i].head.Dist < h[j].head.Dist }
func (h streamHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *streamHeap) Push(x interface{}) { *h = append(*h, x.(streamHead)) }
func (h *streamHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// MergeNearest visits the union of several distance-ordered neighbor
// streams in global order of increasing distance — the k-way merge behind
// sharded nearest-neighbor queries. Returning false from visit stops the
// enumeration; ordering between equidistant entries is unspecified.
func MergeNearest(fetches []NearestFetch, visit func(n Neighbor) bool) {
	h := make(streamHeap, 0, len(fetches))
	for _, f := range fetches {
		st := &nnStream{fetch: f, k: 2} // first next() fetches 4
		if n, ok := st.next(); ok {
			h = append(h, streamHead{head: n, st: st})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		top := h[0]
		if !visit(top.head) {
			return
		}
		if n, ok := top.st.next(); ok {
			h[0].head = n
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
}
