package spatial

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

func TestShardedIndexBasic(t *testing.T) {
	s := NewSharded(4, func() Index { return NewQuadtree() })
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	for i := 0; i < 32; i++ {
		s.Insert(core.OID(fmt.Sprintf("o%d", i)), geo.Pt(float64(i), float64(i)))
	}
	if s.Len() != 32 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Remove("o5", geo.Pt(5, 5)) {
		t.Error("Remove existing returned false")
	}
	if s.Remove("o5", geo.Pt(5, 5)) {
		t.Error("double Remove returned true")
	}
	n := 0
	s.Search(geo.R(0, 0, 10, 10), func(core.OID, geo.Point) bool { n++; return true })
	if n != 10 { // o0..o10 minus o5
		t.Errorf("Search found %d, want 10", n)
	}
	// Early stop must propagate across shard boundaries.
	n = 0
	s.Search(geo.R(0, 0, 31, 31), func(core.OID, geo.Point) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early-stopped Search visited %d, want 3", n)
	}
}

func TestMergeNearestGlobalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sources := make([]*Linear, 3)
	var all []float64
	q := geo.Pt(50, 50)
	for i := range sources {
		sources[i] = NewLinear()
		for j := 0; j < 20; j++ {
			p := geo.Pt(rng.Float64()*100, rng.Float64()*100)
			sources[i].Insert(core.OID(fmt.Sprintf("s%d-o%d", i, j)), p)
			all = append(all, p.Dist(q))
		}
	}
	sort.Float64s(all)
	openAll := func() []Cursor {
		cs := make([]Cursor, len(sources))
		for i, src := range sources {
			cs[i] = src.NearestCursor(q)
		}
		return cs
	}
	closeAll := func(cs []Cursor) {
		for _, c := range cs {
			c.Close()
		}
	}
	cs := openAll()
	var got []float64
	MergeNearest(cs, func(n Neighbor) bool {
		got = append(got, n.Dist)
		return true
	})
	closeAll(cs)
	if len(got) != len(all) {
		t.Fatalf("merge yielded %d entries, want %d", len(got), len(all))
	}
	for i := range got {
		if got[i] != all[i] {
			t.Fatalf("merge dist[%d] = %v, want %v", i, got[i], all[i])
		}
	}
	// Early stop.
	got = got[:0]
	cs = openAll()
	MergeNearest(cs, func(n Neighbor) bool {
		got = append(got, n.Dist)
		return len(got) < 5
	})
	closeAll(cs)
	if len(got) != 5 {
		t.Errorf("early-stopped merge yielded %d, want 5", len(got))
	}
	// The batch compatibility adapter still extends its prefix as k grows.
	fetch := FetchFromIndex(sources[0], q)
	four, eight := fetch(4), fetch(8)
	if len(four) != 4 || len(eight) != 8 {
		t.Fatalf("fetch sizes = %d, %d; want 4, 8", len(four), len(eight))
	}
	for i := range four {
		if four[i] != eight[i] {
			t.Errorf("fetch prefix diverged at %d: %v vs %v", i, four[i], eight[i])
		}
	}
}

func TestMergeNearestEmptySources(t *testing.T) {
	called := false
	MergeNearest(nil, func(Neighbor) bool { called = true; return true })
	empty := NewLinear().NearestCursor(geo.Pt(0, 0))
	MergeNearest([]Cursor{empty}, func(Neighbor) bool { called = true; return true })
	empty.Close()
	if called {
		t.Error("visit called on empty sources")
	}
}

// TestShardedIndexConcurrent exercises the shard-safe wrapper from many
// goroutines; its value is running clean under `go test -race`.
func TestShardedIndexConcurrent(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 50
	}
	s := NewSharded(8, func() Index { return NewQuadtree() })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			pos := map[core.OID]geo.Point{}
			for i := 0; i < iters; i++ {
				id := core.OID(fmt.Sprintf("w%d-o%d", w, i%30))
				switch i % 4 {
				case 0, 1:
					if p, ok := pos[id]; ok {
						s.Remove(id, p)
					}
					p := geo.Pt(rng.Float64()*100, rng.Float64()*100)
					s.Insert(id, p)
					pos[id] = p
				case 2:
					s.Search(geo.R(0, 0, 50, 50), func(core.OID, geo.Point) bool { return true })
				case 3:
					n := 0
					s.NearestFunc(geo.Pt(50, 50), func(core.OID, geo.Point, float64) bool {
						n++
						return n < 5
					})
				}
			}
		}(w)
	}
	wg.Wait()
}
