package spatial

import (
	"locsvc/internal/geo"
)

// RectIndex is an MX-CIF-style quadtree over axis-aligned rectangles keyed
// by string ids: every rectangle is stored at the smallest tree node whose
// region fully contains it, so a point-stabbing query visits only the nodes
// on the single root-to-leaf path containing the point — O(depth + matches)
// instead of a scan over all rectangles. The event layer keeps subscription
// regions in one; a sighting delta then touches only the subscriptions
// whose areas contain its old or new position.
//
// Inserting an existing id replaces its rectangle. Rectangles need not lie
// inside the world rectangle: placement uses the world-clipped rectangle
// (a rectangle outside the world entirely sits at the root), while matching
// always tests the original rectangle, and a stab point outside the world
// falls back to scanning all entries — correct, just not sublinear, and
// impossible when stab points come from positions inside the world.
//
// Like the other indexes in this package, a RectIndex is not safe for
// concurrent use; the owning layer serializes access.
type RectIndex struct {
	world geo.Rect
	root  *rectNode
	byID  map[string]*rectNode
}

// rectMaxDepth bounds the tree height: at depth 24 a node's side is the
// world side / 2^24 — far below any meaningful subscription size.
const rectMaxDepth = 24

type rectNode struct {
	bounds  geo.Rect
	parent  *rectNode
	slot    int // index of this node in parent.kids
	entries map[string]geo.Rect
	kids    [4]*rectNode
	nkids   int
}

// NewRectIndex returns an empty index over the given world rectangle
// (typically the owning server's service area bounds).
func NewRectIndex(world geo.Rect) *RectIndex {
	return &RectIndex{
		world: world,
		root:  &rectNode{bounds: world},
		byID:  make(map[string]*rectNode),
	}
}

// Len returns the number of indexed rectangles.
func (ix *RectIndex) Len() int { return len(ix.byID) }

// quadrant returns child quadrant i of r (0: SW, 1: SE, 2: NW, 3: NE).
func quadrant(r geo.Rect, i int) geo.Rect {
	c := r.Center()
	switch i {
	case 0:
		return geo.Rect{Min: r.Min, Max: c}
	case 1:
		return geo.Rect{Min: geo.Point{X: c.X, Y: r.Min.Y}, Max: geo.Point{X: r.Max.X, Y: c.Y}}
	case 2:
		return geo.Rect{Min: geo.Point{X: r.Min.X, Y: c.Y}, Max: geo.Point{X: c.X, Y: r.Max.Y}}
	default:
		return geo.Rect{Min: c, Max: r.Max}
	}
}

// Insert adds (or replaces) the rectangle for id.
func (ix *RectIndex) Insert(id string, r geo.Rect) {
	if _, ok := ix.byID[id]; ok {
		ix.Remove(id)
	}
	place := r.Intersect(ix.world)
	n := ix.root
	if !place.Empty() {
		for depth := 0; depth < rectMaxDepth; depth++ {
			descended := false
			for i := 0; i < 4; i++ {
				q := quadrant(n.bounds, i)
				if q.ContainsRect(place) {
					if n.kids[i] == nil {
						n.kids[i] = &rectNode{bounds: q, parent: n, slot: i}
						n.nkids++
					}
					n = n.kids[i]
					descended = true
					break
				}
			}
			if !descended {
				break
			}
		}
	}
	if n.entries == nil {
		n.entries = make(map[string]geo.Rect)
	}
	n.entries[id] = r
	ix.byID[id] = n
}

// Remove deletes the rectangle for id, reporting whether it existed. Nodes
// left without entries and children are pruned so churn cannot grow the
// tree without bound.
func (ix *RectIndex) Remove(id string) bool {
	n, ok := ix.byID[id]
	if !ok {
		return false
	}
	delete(n.entries, id)
	delete(ix.byID, id)
	for n != ix.root && len(n.entries) == 0 && n.nkids == 0 {
		p := n.parent
		p.kids[n.slot] = nil
		p.nkids--
		n = p
	}
	return true
}

// Stab visits every rectangle containing p (closed-boundary semantics,
// matching the store's SearchArea). Returning false from visit stops the
// enumeration.
func (ix *RectIndex) Stab(p geo.Point, visit func(id string, r geo.Rect) bool) {
	if !ix.world.ContainsClosed(p) {
		// Off-world point: placement clipping no longer guides the
		// descent, so check every entry.
		for id, n := range ix.byID {
			if n.entries[id].ContainsClosed(p) && !visit(id, n.entries[id]) {
				return
			}
		}
		return
	}
	ix.stab(ix.root, p, visit)
}

// stab recurses into every child whose region contains p: quadrants share
// their closed boundaries, so a point on a split line can have matching
// entries in more than one subtree.
func (ix *RectIndex) stab(n *rectNode, p geo.Point, visit func(id string, r geo.Rect) bool) bool {
	for id, r := range n.entries {
		if r.ContainsClosed(p) && !visit(id, r) {
			return false
		}
	}
	for i := 0; i < 4; i++ {
		if k := n.kids[i]; k != nil && k.bounds.ContainsClosed(p) {
			if !ix.stab(k, p, visit) {
				return false
			}
		}
	}
	return true
}
