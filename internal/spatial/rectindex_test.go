package spatial

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"locsvc/internal/geo"
)

// TestRectIndexOracle drives random insert/replace/remove/stab traffic
// against a linear-scan oracle: every stab must return exactly the
// rectangles containing the point, regardless of where they sit relative
// to the world rectangle and its quadrant boundaries.
func TestRectIndexOracle(t *testing.T) {
	const side = 1000.0
	world := geo.R(0, 0, side, side)
	rng := rand.New(rand.NewSource(7))

	ix := NewRectIndex(world)
	oracle := make(map[string]geo.Rect)

	randRect := func() geo.Rect {
		// Mix generic rectangles with degenerate and boundary-hugging
		// ones: points on quadrant split lines, rects crossing the world
		// edge, zero-area rects.
		switch rng.Intn(4) {
		case 0: // generic
			x, y := rng.Float64()*side, rng.Float64()*side
			return geo.R(x, y, x+rng.Float64()*200, y+rng.Float64()*200)
		case 1: // snapped to power-of-two split lines
			x := float64(rng.Intn(8)) * side / 8
			y := float64(rng.Intn(8)) * side / 8
			return geo.R(x, y, x+side/8, y+side/8)
		case 2: // sticking out of the world
			x, y := rng.Float64()*side, rng.Float64()*side
			return geo.R(x-300, y, x+300, y+100)
		default: // degenerate
			x, y := rng.Float64()*side, rng.Float64()*side
			return geo.R(x, y, x, y)
		}
	}

	stabAll := func(p geo.Point) []string {
		var got []string
		ix.Stab(p, func(id string, _ geo.Rect) bool {
			got = append(got, id)
			return true
		})
		sort.Strings(got)
		return got
	}

	for step := 0; step < 20_000; step++ {
		id := fmt.Sprintf("r%d", rng.Intn(400))
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			r := randRect()
			ix.Insert(id, r)
			oracle[id] = r
		case 4:
			removed := ix.Remove(id)
			if _, ok := oracle[id]; ok != removed {
				t.Fatalf("step %d: Remove(%s) = %v, oracle has it: %v", step, id, removed, ok)
			}
			delete(oracle, id)
		default:
			p := geo.Pt(rng.Float64()*side*1.2-side*0.1, rng.Float64()*side*1.2-side*0.1)
			if rng.Intn(3) == 0 {
				// Points exactly on split lines exercise the
				// multi-quadrant descent.
				p = geo.Pt(float64(rng.Intn(9))*side/8, float64(rng.Intn(9))*side/8)
			}
			var want []string
			for oid, r := range oracle {
				if r.ContainsClosed(p) {
					want = append(want, oid)
				}
			}
			sort.Strings(want)
			got := stabAll(p)
			if len(got) != len(want) {
				t.Fatalf("step %d: Stab(%v) = %v, want %v", step, p, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: Stab(%v) = %v, want %v", step, p, got, want)
				}
			}
		}
		if ix.Len() != len(oracle) {
			t.Fatalf("step %d: Len() = %d, oracle %d", step, ix.Len(), len(oracle))
		}
	}
}

// TestRectIndexStabStops verifies early termination from the visitor.
func TestRectIndexStabStops(t *testing.T) {
	ix := NewRectIndex(geo.R(0, 0, 100, 100))
	for i := 0; i < 10; i++ {
		ix.Insert(fmt.Sprintf("x%d", i), geo.R(0, 0, 100, 100))
	}
	n := 0
	ix.Stab(geo.Pt(50, 50), func(string, geo.Rect) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("visited %d entries after stop at 3", n)
	}
}

// TestRectIndexReplace pins replace semantics: re-inserting an id moves its
// rectangle.
func TestRectIndexReplace(t *testing.T) {
	ix := NewRectIndex(geo.R(0, 0, 100, 100))
	ix.Insert("a", geo.R(0, 0, 10, 10))
	ix.Insert("a", geo.R(90, 90, 100, 100))
	if ix.Len() != 1 {
		t.Fatalf("Len() = %d after replace", ix.Len())
	}
	hit := false
	ix.Stab(geo.Pt(5, 5), func(string, geo.Rect) bool { hit = true; return true })
	if hit {
		t.Fatal("old rectangle still matched after replace")
	}
	ix.Stab(geo.Pt(95, 95), func(string, geo.Rect) bool { hit = true; return true })
	if !hit {
		t.Fatal("new rectangle not matched after replace")
	}
}
