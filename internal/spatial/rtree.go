package spatial

import (
	"sync"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// R-tree parameters: maximum and minimum entries per node (Guttman [6]).
const (
	rtreeMax = 16
	rtreeMin = 4
)

// RTree is a dynamic R-tree with quadratic split, the alternative spatial
// index the paper cites for the sightingDB. Entries are points, stored as
// degenerate rectangles.
type RTree struct {
	root *rnode
	size int
}

var _ Index = (*RTree)(nil)

// NewRTree returns an empty R-tree.
func NewRTree() *RTree {
	return &RTree{root: &rnode{leaf: true}}
}

type rentry struct {
	rect  geo.Rect
	child *rnode // nil in leaf entries
	item  Item   // set in leaf entries
}

type rnode struct {
	leaf    bool
	entries []rentry
	parent  *rnode
}

func pointRect(p geo.Point) geo.Rect { return geo.Rect{Min: p, Max: p} }

// mbr returns the minimum bounding rectangle of a node's entries.
func (n *rnode) mbr() geo.Rect {
	var r geo.Rect
	first := true
	for _, e := range n.entries {
		if first {
			r = e.rect
			first = false
		} else {
			r = unionRect(r, e.rect)
		}
	}
	return r
}

// unionRect is like geo.Rect.Union but treats degenerate (zero-area) point
// rectangles as non-empty.
func unionRect(a, b geo.Rect) geo.Rect {
	out := a
	if b.Min.X < out.Min.X {
		out.Min.X = b.Min.X
	}
	if b.Min.Y < out.Min.Y {
		out.Min.Y = b.Min.Y
	}
	if b.Max.X > out.Max.X {
		out.Max.X = b.Max.X
	}
	if b.Max.Y > out.Max.Y {
		out.Max.Y = b.Max.Y
	}
	return out
}

func rectArea(r geo.Rect) float64 { return (r.Max.X - r.Min.X) * (r.Max.Y - r.Min.Y) }

// intersectsClosed reports rectangle overlap including shared boundaries,
// needed because point entries are degenerate rectangles.
func intersectsClosed(a, b geo.Rect) bool { return a.IntersectsClosed(b) }

// Len implements Index.
func (t *RTree) Len() int { return t.size }

// Insert implements Index.
func (t *RTree) Insert(id core.OID, p geo.Point) {
	t.size++
	leaf := t.chooseLeaf(t.root, pointRect(p))
	leaf.entries = append(leaf.entries, rentry{rect: pointRect(p), item: Item{ID: id, Pos: p}})
	t.adjustTree(leaf)
}

// chooseLeaf descends to the leaf whose MBR needs the least enlargement to
// include r (Guttman's ChooseLeaf).
func (t *RTree) chooseLeaf(n *rnode, r geo.Rect) *rnode {
	for !n.leaf {
		best := -1
		var bestEnlarge, bestArea float64
		for i, e := range n.entries {
			area := rectArea(e.rect)
			enlarged := rectArea(unionRect(e.rect, r)) - area
			if best < 0 || enlarged < bestEnlarge ||
				(enlarged == bestEnlarge && area < bestArea) {
				best, bestEnlarge, bestArea = i, enlarged, area
			}
		}
		n = n.entries[best].child
	}
	return n
}

// adjustTree propagates MBR updates and splits from n up to the root.
func (t *RTree) adjustTree(n *rnode) {
	for {
		var split *rnode
		if len(n.entries) > rtreeMax {
			split = t.splitNode(n)
		}
		if n.parent == nil {
			if split != nil {
				// Grow the tree: new root with two children.
				newRoot := &rnode{leaf: false}
				newRoot.entries = []rentry{
					{rect: n.mbr(), child: n},
					{rect: split.mbr(), child: split},
				}
				n.parent = newRoot
				split.parent = newRoot
				t.root = newRoot
			}
			return
		}
		parent := n.parent
		// Refresh this node's rectangle in the parent.
		for i := range parent.entries {
			if parent.entries[i].child == n {
				parent.entries[i].rect = n.mbr()
				break
			}
		}
		if split != nil {
			split.parent = parent
			parent.entries = append(parent.entries, rentry{rect: split.mbr(), child: split})
		}
		n = parent
	}
}

// splitNode performs Guttman's quadratic split, moving roughly half of n's
// entries into a returned sibling.
func (t *RTree) splitNode(n *rnode) *rnode {
	entries := n.entries
	// Pick the two seeds wasting the most area if grouped together.
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			waste := rectArea(unionRect(entries[i].rect, entries[j].rect)) -
				rectArea(entries[i].rect) - rectArea(entries[j].rect)
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	g1 := []rentry{entries[s1]}
	g2 := []rentry{entries[s2]}
	r1, r2 := entries[s1].rect, entries[s2].rect
	rest := make([]rentry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// If one group must take all remaining entries to reach the
		// minimum, assign them wholesale.
		if len(g1)+len(rest) == rtreeMin {
			g1 = append(g1, rest...)
			for _, e := range rest {
				r1 = unionRect(r1, e.rect)
			}
			break
		}
		if len(g2)+len(rest) == rtreeMin {
			g2 = append(g2, rest...)
			for _, e := range rest {
				r2 = unionRect(r2, e.rect)
			}
			break
		}
		// PickNext: entry with the greatest preference for one group.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			d1 := rectArea(unionRect(r1, e.rect)) - rectArea(r1)
			d2 := rectArea(unionRect(r2, e.rect)) - rectArea(r2)
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx = diff, i
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		d1 := rectArea(unionRect(r1, e.rect)) - rectArea(r1)
		d2 := rectArea(unionRect(r2, e.rect)) - rectArea(r2)
		if d1 < d2 || (d1 == d2 && len(g1) < len(g2)) {
			g1 = append(g1, e)
			r1 = unionRect(r1, e.rect)
		} else {
			g2 = append(g2, e)
			r2 = unionRect(r2, e.rect)
		}
	}
	n.entries = g1
	sibling := &rnode{leaf: n.leaf, entries: g2}
	for _, e := range g2 {
		if e.child != nil {
			e.child.parent = sibling
		}
	}
	return sibling
}

// Remove implements Index.
func (t *RTree) Remove(id core.OID, p geo.Point) bool {
	leaf, idx := t.findLeaf(t.root, id, p)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condenseTree(leaf)
	// Shrink the tree if the root has a single non-leaf child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.root.parent = nil
	}
	return true
}

// findLeaf locates the leaf and entry index holding (id, p).
func (t *RTree) findLeaf(n *rnode, id core.OID, p geo.Point) (*rnode, int) {
	if n.leaf {
		for i, e := range n.entries {
			if e.item.ID == id && e.item.Pos == p {
				return n, i
			}
		}
		return nil, -1
	}
	pr := pointRect(p)
	for _, e := range n.entries {
		if intersectsClosed(e.rect, pr) {
			if leaf, i := t.findLeaf(e.child, id, p); leaf != nil {
				return leaf, i
			}
		}
	}
	return nil, -1
}

// condenseTree removes underfull nodes along the path from n to the root
// and reinserts their orphaned entries (Guttman's CondenseTree).
func (t *RTree) condenseTree(n *rnode) {
	var orphans []rentry
	for n.parent != nil {
		parent := n.parent
		if len(n.entries) < rtreeMin {
			// Unhook n from its parent and stash its entries.
			for i := range parent.entries {
				if parent.entries[i].child == n {
					parent.entries = append(parent.entries[:i], parent.entries[i+1:]...)
					break
				}
			}
			orphans = append(orphans, n.entries...)
		} else {
			for i := range parent.entries {
				if parent.entries[i].child == n {
					parent.entries[i].rect = n.mbr()
					break
				}
			}
		}
		n = parent
	}
	for _, e := range orphans {
		if e.child != nil {
			// Reinsert a whole subtree's leaf items.
			var items []Item
			collectR(e.child, &items)
			for _, it := range items {
				t.size--
				t.Insert(it.ID, it.Pos)
			}
		} else {
			t.size--
			t.Insert(e.item.ID, e.item.Pos)
		}
	}
}

func collectR(n *rnode, out *[]Item) {
	if n.leaf {
		for _, e := range n.entries {
			*out = append(*out, e.item)
		}
		return
	}
	for _, e := range n.entries {
		collectR(e.child, out)
	}
}

// Search implements Index.
func (t *RTree) Search(r geo.Rect, visit func(id core.OID, p geo.Point) bool) {
	searchR(t.root, r, visit)
}

func searchR(n *rnode, r geo.Rect, visit func(core.OID, geo.Point) bool) bool {
	for _, e := range n.entries {
		if !intersectsClosed(e.rect, r) {
			continue
		}
		if n.leaf {
			if r.ContainsClosed(e.item.Pos) && !visit(e.item.ID, e.item.Pos) {
				return false
			}
		} else if !searchR(e.child, r, visit) {
			return false
		}
	}
	return true
}

// rref is one pending step of a paused best-first traversal: a node still
// to be expanded, or a leaf entry ready to be reported.
type rref struct {
	node *rnode // nil for item entries
	item Item
}

// rtreeCursor is the R-tree's resumable nearest-neighbor cursor: the
// best-first priority queue over node MBRs, paused between neighbors.
type rtreeCursor struct {
	p      geo.Point
	h      heapOf[rref]
	closed bool
}

var rtreeCursorPool = sync.Pool{New: func() any { return new(rtreeCursor) }}

// NearestCursor implements Index. The cursor shares the tree's nodes, so it
// obeys the same synchronization rules as every other read.
func (t *RTree) NearestCursor(p geo.Point) Cursor {
	c := rtreeCursorPool.Get().(*rtreeCursor)
	c.p = p
	c.closed = false
	c.h.reset()
	c.h.push(0, rref{node: t.root})
	return c
}

// Next implements Cursor. Keys are clamped to the popped key so the stream
// stays monotone when the tree is modified between calls (a no-op on a
// quiescent tree, where a child MBR's minimum distance never undercuts its
// parent's).
func (c *rtreeCursor) Next() (Neighbor, bool) {
	for c.h.len() > 0 {
		e := c.h.pop()
		if e.val.node == nil {
			it := e.val.item
			return Neighbor{ID: it.ID, Pos: it.Pos, Dist: e.key}, true
		}
		n := e.val.node
		floor := e.key
		if n.leaf {
			for _, en := range n.entries {
				d := en.item.Pos.Dist(c.p)
				if d < floor {
					d = floor
				}
				c.h.push(d, rref{item: en.item})
			}
		} else {
			for _, en := range n.entries {
				d := en.rect.DistToPoint(c.p)
				if d < floor {
					d = floor
				}
				c.h.push(d, rref{node: en.child})
			}
		}
	}
	return Neighbor{}, false
}

// Close implements Cursor, returning the traversal state to a pool.
func (c *rtreeCursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.h.reset()
	rtreeCursorPool.Put(c)
}

// NearestFunc implements Index by draining a cursor: best-first search over
// node MBRs reports entries in exact increasing-distance order.
func (t *RTree) NearestFunc(p geo.Point, visit func(id core.OID, q geo.Point, dist float64) bool) {
	c := t.NearestCursor(p)
	defer c.Close()
	for {
		n, ok := c.Next()
		if !ok || !visit(n.ID, n.Pos, n.Dist) {
			return
		}
	}
}
