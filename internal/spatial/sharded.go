package spatial

import (
	"sync"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// Sharded partitions an index into n independently locked shards keyed by
// object id, making it safe for concurrent use: inserts and removes of
// different objects proceed in parallel on a multi-core machine instead of
// serializing behind one lock. Range searches fan out across all shards;
// nearest-neighbor enumeration merges the per-shard streams in global
// distance order via MergeNearest.
//
// Sharding by object id (not by space) keeps update cost independent of an
// object's position — the hot path of the paper's update-heavy workloads —
// at the price of touching every shard on queries, which are the rarer
// operation in those workloads.
//
// Sharded is the Index-level building block for callers that only need a
// concurrent spatial index. store.ShardedSightingDB deliberately applies
// the same pattern inline rather than embedding this type: its shard lock
// must also cover the co-located object-id hash map, so an update's
// Remove+Insert and map write commit atomically under one acquisition.
type Sharded struct {
	shards []indexShard
}

type indexShard struct {
	mu  sync.RWMutex
	idx Index
}

var _ Index = (*Sharded)(nil)

// ShardFor maps an object id onto one of n shards. The hash is FNV-1a
// (like the partition routing in internal/server) inlined over the string,
// so the per-operation shard pick allocates nothing.
func ShardFor(id core.OID, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// NewSharded builds a sharded index with n shards (at least one), each
// backed by a fresh sub-index from mk.
func NewSharded(n int, mk func() Index) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{shards: make([]indexShard, n)}
	for i := range s.shards {
		s.shards[i].idx = mk()
	}
	return s
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

func (s *Sharded) shardFor(id core.OID) *indexShard {
	return &s.shards[ShardFor(id, len(s.shards))]
}

// Insert implements Index.
func (s *Sharded) Insert(id core.OID, p geo.Point) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	sh.idx.Insert(id, p)
	sh.mu.Unlock()
}

// Remove implements Index.
func (s *Sharded) Remove(id core.OID, p geo.Point) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	ok := sh.idx.Remove(id, p)
	sh.mu.Unlock()
	return ok
}

// Len implements Index.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.idx.Len()
		sh.mu.RUnlock()
	}
	return n
}

// Search implements Index by fanning the rectangle across every shard.
func (s *Sharded) Search(r geo.Rect, visit func(id core.OID, p geo.Point) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		stopped := false
		sh.mu.RLock()
		sh.idx.Search(r, func(id core.OID, p geo.Point) bool {
			if !visit(id, p) {
				stopped = true
				return false
			}
			return true
		})
		sh.mu.RUnlock()
		if stopped {
			return
		}
	}
}

// NearestFunc implements Index by merging the per-shard nearest streams in
// increasing distance order. Each shard is locked only for the duration of
// one buffered fetch, so a long enumeration does not starve writers; under
// concurrent modification the stream is a best-effort snapshot, like every
// query against a live store.
func (s *Sharded) NearestFunc(p geo.Point, visit func(id core.OID, q geo.Point, dist float64) bool) {
	if len(s.shards) == 1 {
		// Nothing to merge: stream straight off the sub-index.
		sh := &s.shards[0]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		sh.idx.NearestFunc(p, visit)
		return
	}
	fetches := make([]NearestFetch, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		fetch := FetchFromIndex(sh.idx, p)
		fetches[i] = func(k int) []Neighbor {
			sh.mu.RLock()
			defer sh.mu.RUnlock()
			return fetch(k)
		}
	}
	MergeNearest(fetches, func(n Neighbor) bool {
		return visit(n.ID, n.Pos, n.Dist)
	})
}
