package spatial

import (
	"math"
	"sync"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// Sharded partitions an index into n independently locked shards keyed by
// object id, making it safe for concurrent use: inserts and removes of
// different objects proceed in parallel on a multi-core machine instead of
// serializing behind one lock. Range searches fan out across the shards
// whose bounding rectangle intersects the query; nearest-neighbor
// enumeration merges the per-shard cursors in global distance order,
// advancing each shard exactly one neighbor at a time (MergeSources).
//
// Sharding by object id (not by space) keeps update cost independent of an
// object's position — the hot path of the paper's update-heavy workloads —
// at the price of touching every shard on queries, which are the rarer
// operation in those workloads. Each shard therefore maintains a
// conservative bounding rectangle over its live entries (see the package
// documentation for the staleness invariant) so queries can skip shards
// that cannot contribute.
//
// Sharded is the Index-level building block for callers that only need a
// concurrent spatial index. store.ShardedSightingDB deliberately applies
// the same pattern inline rather than embedding this type: its shard lock
// must also cover the co-located object-id hash map, so an update's
// Remove+Insert and map write commit atomically under one acquisition.
type Sharded struct {
	shards []indexShard
}

type indexShard struct {
	mu  sync.RWMutex
	idx Index

	// bound conservatively contains every live position: inserts grow it
	// immediately, removals only bump stale, and the rectangle is
	// recomputed exactly once stale removals outnumber live entries —
	// amortized O(1) per removal. Meaningless while the shard is empty
	// (nonempty == false).
	bound    geo.Rect
	nonempty bool
	stale    int
}

var _ Index = (*Sharded)(nil)

// ShardFor maps an object id onto one of n shards. The hash is FNV-1a
// (like the partition routing in internal/server) inlined over the string,
// so the per-operation shard pick allocates nothing.
func ShardFor(id core.OID, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// NewSharded builds a sharded index with n shards (at least one), each
// backed by a fresh sub-index from mk.
func NewSharded(n int, mk func() Index) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{shards: make([]indexShard, n)}
	for i := range s.shards {
		s.shards[i].idx = mk()
	}
	return s
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

func (s *Sharded) shardFor(id core.OID) *indexShard {
	return &s.shards[ShardFor(id, len(s.shards))]
}

// noteInsert grows the shard's bounding rectangle to cover p. Caller holds
// the shard's write lock.
func (sh *indexShard) noteInsert(p geo.Point) {
	if !sh.nonempty {
		sh.bound = geo.Rect{Min: p, Max: p}
		sh.nonempty = true
		sh.stale = 0
		return
	}
	sh.bound.GrowToInclude(p)
}

// noteRemove records a removal against the bounding rectangle, tightening
// it lazily. Caller holds the shard's write lock.
func (sh *indexShard) noteRemove() {
	n := sh.idx.Len()
	if n == 0 {
		sh.nonempty = false
		sh.stale = 0
		return
	}
	sh.stale++
	if sh.stale > n {
		sh.tighten()
	}
}

// tighten recomputes the exact bounding rectangle with a full scan.
func (sh *indexShard) tighten() {
	inf := math.Inf(1)
	all := geo.Rect{Min: geo.Point{X: -inf, Y: -inf}, Max: geo.Point{X: inf, Y: inf}}
	first := true
	var b geo.Rect
	sh.idx.Search(all, func(_ core.OID, p geo.Point) bool {
		if first {
			b = geo.Rect{Min: p, Max: p}
			first = false
			return true
		}
		b.GrowToInclude(p)
		return true
	})
	sh.bound = b
	sh.nonempty = !first
	sh.stale = 0
}

// Insert implements Index.
func (s *Sharded) Insert(id core.OID, p geo.Point) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	sh.idx.Insert(id, p)
	sh.noteInsert(p)
	sh.mu.Unlock()
}

// Remove implements Index.
func (s *Sharded) Remove(id core.OID, p geo.Point) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	ok := sh.idx.Remove(id, p)
	if ok {
		sh.noteRemove()
	}
	sh.mu.Unlock()
	return ok
}

// Len implements Index.
func (s *Sharded) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.idx.Len()
		sh.mu.RUnlock()
	}
	return n
}

// Search implements Index by fanning the rectangle across every shard
// whose bounding rectangle intersects it.
func (s *Sharded) Search(r geo.Rect, visit func(id core.OID, p geo.Point) bool) {
	stopped := false
	inner := func(id core.OID, p geo.Point) bool {
		if !visit(id, p) {
			stopped = true
			return false
		}
		return true
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		if sh.nonempty && intersectsClosed(sh.bound, r) {
			sh.idx.Search(r, inner)
		}
		sh.mu.RUnlock()
		if stopped {
			return
		}
	}
}

// NearestCursor implements Index: per-shard cursors are merged in global
// distance order, each shard opened lazily only when the merge frontier
// reaches its bounding rectangle and locked only for the duration of one
// advance, so a long enumeration does not starve writers. Under concurrent
// modification the stream is a best-effort snapshot, like every query
// against a live store.
func (s *Sharded) NearestCursor(p geo.Point) Cursor {
	srcs := make([]CursorSource, 0, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		nonempty := sh.nonempty
		minDist := 0.0
		if nonempty {
			minDist = sh.bound.DistToPoint(p)
		}
		sh.mu.RUnlock()
		if !nonempty {
			continue
		}
		srcs = append(srcs, CursorSource{MinDist: minDist, Open: func() Cursor {
			sh.mu.RLock()
			inner := sh.idx.NearestCursor(p)
			sh.mu.RUnlock()
			return LockCursor(&sh.mu, inner)
		}})
	}
	return MergeSources(srcs)
}

// NearestFunc implements Index by draining a merged cursor.
func (s *Sharded) NearestFunc(p geo.Point, visit func(id core.OID, q geo.Point, dist float64) bool) {
	if len(s.shards) == 1 {
		// Nothing to merge: stream straight off the sub-index under one
		// read-lock acquisition.
		sh := &s.shards[0]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		sh.idx.NearestFunc(p, visit)
		return
	}
	c := s.NearestCursor(p)
	defer c.Close()
	for {
		n, ok := c.Next()
		if !ok || !visit(n.ID, n.Pos, n.Dist) {
			return
		}
	}
}
