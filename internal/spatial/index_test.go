package spatial

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

// allKinds enumerates the implementations under test.
var allKinds = []Kind{KindQuadtree, KindRTree, KindLinear}

func TestKindString(t *testing.T) {
	if KindQuadtree.String() != "quadtree" || KindRTree.String() != "rtree" ||
		KindLinear.String() != "linear" || Kind(0).String() != "unknown" {
		t.Error("Kind.String mismatch")
	}
}

func TestNewFallsBackToQuadtree(t *testing.T) {
	if _, ok := New(Kind(99)).(*Quadtree); !ok {
		t.Error("unknown kind did not fall back to quadtree")
	}
	if _, ok := New(KindRTree).(*RTree); !ok {
		t.Error("KindRTree mismatched")
	}
	if _, ok := New(KindLinear).(*Linear); !ok {
		t.Error("KindLinear mismatched")
	}
}

func TestInsertSearchBasic(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			ix := New(kind)
			ix.Insert("a", geo.Pt(1, 1))
			ix.Insert("b", geo.Pt(5, 5))
			ix.Insert("c", geo.Pt(9, 9))
			if ix.Len() != 3 {
				t.Fatalf("Len = %d", ix.Len())
			}
			got := idsIn(ix, geo.R(0, 0, 6, 6))
			want := []core.OID{"a", "b"}
			if !equalIDs(got, want) {
				t.Errorf("Search = %v, want %v", got, want)
			}
			// Boundary point included (closed search).
			got = idsIn(ix, geo.R(9, 9, 10, 10))
			if !equalIDs(got, []core.OID{"c"}) {
				t.Errorf("boundary search = %v", got)
			}
		})
	}
}

func TestRemove(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			ix := New(kind)
			ix.Insert("a", geo.Pt(1, 1))
			ix.Insert("b", geo.Pt(2, 2))
			if !ix.Remove("a", geo.Pt(1, 1)) {
				t.Fatal("Remove existing returned false")
			}
			if ix.Remove("a", geo.Pt(1, 1)) {
				t.Error("Remove twice returned true")
			}
			if ix.Remove("b", geo.Pt(9, 9)) {
				t.Error("Remove with wrong position returned true")
			}
			if ix.Len() != 1 {
				t.Errorf("Len = %d, want 1", ix.Len())
			}
			if got := idsIn(ix, geo.R(0, 0, 10, 10)); !equalIDs(got, []core.OID{"b"}) {
				t.Errorf("after remove: %v", got)
			}
		})
	}
}

func TestDuplicatePositions(t *testing.T) {
	// Multiple objects sighted at exactly the same coordinates.
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			ix := New(kind)
			p := geo.Pt(3, 3)
			ix.Insert("a", p)
			ix.Insert("b", p)
			ix.Insert("c", p)
			if got := idsIn(ix, geo.R(2, 2, 4, 4)); !equalIDs(got, []core.OID{"a", "b", "c"}) {
				t.Errorf("duplicate search = %v", got)
			}
			if !ix.Remove("b", p) {
				t.Fatal("remove middle duplicate failed")
			}
			if got := idsIn(ix, geo.R(2, 2, 4, 4)); !equalIDs(got, []core.OID{"a", "c"}) {
				t.Errorf("after removing duplicate = %v", got)
			}
		})
	}
}

func TestSearchEarlyStop(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			ix := New(kind)
			for i := 0; i < 100; i++ {
				ix.Insert(core.OID(fmt.Sprintf("o%d", i)), geo.Pt(float64(i%10), float64(i/10)))
			}
			count := 0
			ix.Search(geo.R(0, 0, 10, 10), func(core.OID, geo.Point) bool {
				count++
				return count < 5
			})
			if count != 5 {
				t.Errorf("early stop visited %d", count)
			}
		})
	}
}

func TestNearestOrdering(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			ix := New(kind)
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 300; i++ {
				ix.Insert(core.OID(fmt.Sprintf("o%d", i)), geo.Pt(rng.Float64()*1000, rng.Float64()*1000))
			}
			q := geo.Pt(500, 500)
			prev := -1.0
			n := 0
			ix.NearestFunc(q, func(_ core.OID, p geo.Point, dist float64) bool {
				if dist < prev-1e-9 {
					t.Fatalf("distance went backwards: %v after %v", dist, prev)
				}
				if d := p.Dist(q); d != dist {
					t.Fatalf("reported dist %v != actual %v", dist, d)
				}
				prev = dist
				n++
				return true
			})
			if n != 300 {
				t.Errorf("visited %d entries, want 300", n)
			}
		})
	}
}

func TestKNearestAgainstLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ref := NewLinear()
	indexes := map[string]Index{"quadtree": NewQuadtree(), "rtree": NewRTree()}
	for i := 0; i < 500; i++ {
		p := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		id := core.OID(fmt.Sprintf("o%d", i))
		ref.Insert(id, p)
		for _, ix := range indexes {
			ix.Insert(id, p)
		}
	}
	for trial := 0; trial < 25; trial++ {
		q := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		want := KNearest(ref, q, 10)
		for name, ix := range indexes {
			got := KNearest(ix, q, 10)
			if len(got) != len(want) {
				t.Fatalf("%s: got %d results, want %d", name, len(got), len(want))
			}
			for i := range got {
				// Compare distances (ids may differ on exact ties).
				if dg, dw := got[i].Pos.Dist(q), want[i].Pos.Dist(q); dg != dw {
					t.Errorf("%s trial %d rank %d: dist %v, want %v", name, trial, i, dg, dw)
				}
			}
		}
	}
}

func TestRandomizedOpsAgainstLinearReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ref := NewLinear()
	indexes := map[string]Index{"quadtree": NewQuadtree(), "rtree": NewRTree()}
	type entry struct {
		id core.OID
		p  geo.Point
	}
	var live []entry

	for op := 0; op < 5000; op++ {
		switch {
		case len(live) == 0 || rng.Float64() < 0.55:
			id := core.OID(fmt.Sprintf("o%d", op))
			p := geo.Pt(rng.Float64()*200, rng.Float64()*200)
			live = append(live, entry{id, p})
			ref.Insert(id, p)
			for _, ix := range indexes {
				ix.Insert(id, p)
			}
		default:
			i := rng.Intn(len(live))
			e := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if !ref.Remove(e.id, e.p) {
				t.Fatal("reference remove failed")
			}
			for name, ix := range indexes {
				if !ix.Remove(e.id, e.p) {
					t.Fatalf("%s: remove %v failed at op %d", name, e.id, op)
				}
			}
		}
		if op%250 == 0 {
			r := geo.R(rng.Float64()*200, rng.Float64()*200, rng.Float64()*200, rng.Float64()*200)
			want := idsIn(ref, r)
			for name, ix := range indexes {
				if ix.Len() != ref.Len() {
					t.Fatalf("%s: Len %d, want %d", name, ix.Len(), ref.Len())
				}
				got := idsIn(ix, r)
				if !equalIDs(got, want) {
					t.Fatalf("%s: search mismatch at op %d: got %d ids, want %d", name, op, len(got), len(want))
				}
			}
		}
	}
}

func TestQuadtreeDepthReasonable(t *testing.T) {
	qt := NewQuadtree()
	rng := rand.New(rand.NewSource(1))
	n := 10_000
	for i := 0; i < n; i++ {
		qt.Insert(core.OID(fmt.Sprintf("o%d", i)), geo.Pt(rng.Float64()*10_000, rng.Float64()*10_000))
	}
	// Random insertion order gives expected depth O(log n); allow slack.
	if d := qt.Depth(); d > 60 {
		t.Errorf("quadtree depth %d for %d random points", d, n)
	}
}

func TestKNearestZeroAndEmpty(t *testing.T) {
	ix := NewQuadtree()
	if got := KNearest(ix, geo.Pt(0, 0), 5); len(got) != 0 {
		t.Errorf("KNearest on empty = %v", got)
	}
	ix.Insert("a", geo.Pt(1, 1))
	if got := KNearest(ix, geo.Pt(0, 0), 0); got != nil {
		t.Errorf("KNearest k=0 = %v", got)
	}
	if got := KNearest(ix, geo.Pt(0, 0), 10); len(got) != 1 {
		t.Errorf("KNearest k>len = %v", got)
	}
}

func TestSearchAll(t *testing.T) {
	ix := NewRTree()
	ix.Insert("a", geo.Pt(1, 1))
	ix.Insert("b", geo.Pt(3, 3))
	items := SearchAll(ix, geo.R(0, 0, 2, 2))
	if len(items) != 1 || items[0].ID != "a" {
		t.Errorf("SearchAll = %v", items)
	}
}

// idsIn returns the sorted ids inside r.
func idsIn(ix Index, r geo.Rect) []core.OID {
	var ids []core.OID
	ix.Search(r, func(id core.OID, _ geo.Point) bool {
		ids = append(ids, id)
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []core.OID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
