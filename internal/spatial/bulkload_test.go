package spatial

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"locsvc/internal/core"
	"locsvc/internal/geo"
)

func randomItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			ID:  core.OID(fmt.Sprintf("o%d", i)),
			Pos: geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
		}
	}
	return items
}

func TestBulkLoadMatchesIncremental(t *testing.T) {
	items := randomItems(2000, 31)
	bulk := BulkLoad(items)
	inc := NewQuadtree()
	for _, it := range items {
		inc.Insert(it.ID, it.Pos)
	}
	if bulk.Len() != inc.Len() {
		t.Fatalf("Len %d vs %d", bulk.Len(), inc.Len())
	}
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 30; trial++ {
		r := geo.R(rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*1000)
		if !equalIDs(idsIn(bulk, r), idsIn(inc, r)) {
			t.Fatalf("trial %d: search mismatch on %v", trial, r)
		}
	}
	// Nearest streaming agrees with incremental build.
	q := geo.Pt(500, 500)
	want := KNearest(inc, q, 10)
	got := KNearest(bulk, q, 10)
	for i := range want {
		if want[i].Pos.Dist(q) != got[i].Pos.Dist(q) {
			t.Fatalf("knn rank %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestBulkLoadBalanced(t *testing.T) {
	// Sorted input is the worst case for incremental insertion; bulk
	// load must stay logarithmic.
	n := 4096
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: core.OID(fmt.Sprintf("o%d", i)), Pos: geo.Pt(float64(i), float64(i))}
	}
	bulk := BulkLoad(items)
	maxDepth := 4 * int(math.Ceil(math.Log2(float64(n+1))))
	if d := bulk.Depth(); d > maxDepth {
		t.Errorf("bulk depth %d for sorted input, want <= %d", d, maxDepth)
	}
	// Incremental insertion of the same sorted diagonal degenerates into
	// a chain — the case bulk loading exists for.
	inc := NewQuadtree()
	for _, it := range items {
		inc.Insert(it.ID, it.Pos)
	}
	if inc.Depth() <= bulk.Depth() {
		t.Skipf("incremental tree unexpectedly shallow (%d)", inc.Depth())
	}
}

func TestBulkLoadDuplicatesAndEmpty(t *testing.T) {
	if got := BulkLoad(nil); got.Len() != 0 {
		t.Errorf("empty bulk load Len = %d", got.Len())
	}
	p := geo.Pt(5, 5)
	items := []Item{{ID: "a", Pos: p}, {ID: "b", Pos: p}, {ID: "c", Pos: geo.Pt(1, 1)}}
	bulk := BulkLoad(items)
	if bulk.Len() != 3 {
		t.Fatalf("Len = %d", bulk.Len())
	}
	got := idsIn(bulk, geo.R(4, 4, 6, 6))
	if len(got) != 2 {
		t.Errorf("duplicate-position search = %v", got)
	}
	if !bulk.Remove("b", p) {
		t.Error("remove from bulk-loaded tree failed")
	}
	if bulk.Len() != 2 {
		t.Errorf("Len after remove = %d", bulk.Len())
	}
}

func TestRebuildAndBounds(t *testing.T) {
	t1 := NewQuadtree()
	t1.Insert("x", geo.Pt(0, 0))
	t1.Rebuild(randomItems(100, 33))
	if t1.Len() != 100 {
		t.Fatalf("Len after rebuild = %d", t1.Len())
	}
	b := t1.Bounds()
	if b.Empty() || b.Min.X < 0 || b.Max.X > 1000 {
		t.Errorf("Bounds = %v", b)
	}
	if got := NewQuadtree().Bounds(); !got.Empty() {
		t.Errorf("empty tree bounds = %v", got)
	}
}
