package spatial

import (
	"locsvc/internal/geo"
)

// BulkLoad builds a balanced point quadtree from a batch of items: batches
// that fit one leaf bucket stay a bucket, larger ones divide at the true
// median point (alternating between x- and y-order per level), giving
// logarithmic depth regardless of input order.
//
// Its value is the worst case, not the average: on randomly ordered input,
// incremental insertion already yields a balanced tree and is considerably
// faster (BenchmarkIndexBulkLoad), but on sorted or clustered replay input
// — exactly what a recovering server may receive when visitors re-report in
// a systematic order — incremental insertion degenerates into a chain while
// BulkLoad guarantees logarithmic depth.
func BulkLoad(items []Item) *Quadtree {
	t := NewQuadtree()
	if len(items) == 0 {
		return t
	}
	work := make([]Item, len(items))
	copy(work, items)
	t.root = buildSubtree(work, true)
	t.size = len(items)
	return t
}

// Rebuild replaces the tree's contents with a balanced bulk load of the
// given items.
func (t *Quadtree) Rebuild(items []Item) {
	nt := BulkLoad(items)
	t.root = nt.root
	t.size = nt.size
	t.ghosts = 0
}

// Bounds returns the bounding rectangle of all indexed points (zero Rect
// when empty); a convenience for diagnostics.
func (t *Quadtree) Bounds() geo.Rect {
	var out geo.Rect
	first := true
	var walk func(n *qnode)
	walk = func(n *qnode) {
		if n == nil {
			return
		}
		pr := geo.Rect{Min: n.pos, Max: n.pos}
		if first {
			out = pr
			first = false
		} else {
			out = geo.Rect{
				Min: geo.Point{X: minF(out.Min.X, n.pos.X), Y: minF(out.Min.Y, n.pos.Y)},
				Max: geo.Point{X: maxF(out.Max.X, n.pos.X), Y: maxF(out.Max.Y, n.pos.Y)},
			}
		}
		for _, k := range n.kids {
			walk(k)
		}
	}
	walk(t.root)
	return out
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
