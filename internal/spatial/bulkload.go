package spatial

import (
	"sort"

	"locsvc/internal/geo"
)

// BulkLoad builds a balanced point quadtree from a batch of items: the
// median point (alternating between x- and y-order per level) becomes each
// subtree's root, giving logarithmic depth regardless of input order.
//
// Its value is the worst case, not the average: on randomly ordered input,
// incremental insertion already yields a balanced tree and is considerably
// faster (BenchmarkIndexBulkLoad), but on sorted or clustered replay input
// — exactly what a recovering server may receive when visitors re-report in
// a systematic order — incremental insertion degenerates into a chain while
// BulkLoad guarantees logarithmic depth.
func BulkLoad(items []Item) *Quadtree {
	t := NewQuadtree()
	if len(items) == 0 {
		return t
	}
	work := make([]Item, len(items))
	copy(work, items)
	t.root = buildBalanced(work, true)
	t.size = len(items)
	return t
}

// buildBalanced recursively picks the median along the alternating axis.
func buildBalanced(items []Item, byX bool) *qnode {
	if len(items) == 0 {
		return nil
	}
	sort.Slice(items, func(i, j int) bool {
		if byX {
			if items[i].Pos.X != items[j].Pos.X {
				return items[i].Pos.X < items[j].Pos.X
			}
			return items[i].Pos.Y < items[j].Pos.Y
		}
		if items[i].Pos.Y != items[j].Pos.Y {
			return items[i].Pos.Y < items[j].Pos.Y
		}
		return items[i].Pos.X < items[j].Pos.X
	})
	mid := len(items) / 2
	// Pull every duplicate of the median position into this node.
	pivot := items[mid].Pos
	node := &qnode{pos: pivot}
	var rest []Item
	for _, it := range items {
		if it.Pos == pivot {
			node.ids = append(node.ids, it.ID)
		} else {
			rest = append(rest, it)
		}
	}
	// Partition the remainder into the four quadrants around the pivot.
	var quads [4][]Item
	for _, it := range rest {
		quads[quadrantOf(pivot, it.Pos)] = append(quads[quadrantOf(pivot, it.Pos)], it)
	}
	for q := range quads {
		node.kids[q] = buildBalanced(quads[q], !byX)
	}
	return node
}

// Rebuild replaces the tree's contents with a balanced bulk load of the
// given items.
func (t *Quadtree) Rebuild(items []Item) {
	nt := BulkLoad(items)
	t.root = nt.root
	t.size = nt.size
}

// Bounds returns the bounding rectangle of all indexed points (zero Rect
// when empty); a convenience for diagnostics.
func (t *Quadtree) Bounds() geo.Rect {
	var out geo.Rect
	first := true
	var walk func(n *qnode)
	walk = func(n *qnode) {
		if n == nil {
			return
		}
		pr := geo.Rect{Min: n.pos, Max: n.pos}
		if first {
			out = pr
			first = false
		} else {
			out = geo.Rect{
				Min: geo.Point{X: minF(out.Min.X, n.pos.X), Y: minF(out.Min.Y, n.pos.Y)},
				Max: geo.Point{X: maxF(out.Max.X, n.pos.X), Y: maxF(out.Max.Y, n.pos.Y)},
			}
		}
		for _, k := range n.kids {
			walk(k)
		}
	}
	walk(t.root)
	return out
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
