package spatial

// heapOf is a flat binary min-heap ordered by a float64 key, shared by the
// best-first traversals of the tree indexes, the nearest-neighbor cursors
// and the multi-shard merge. It replaces the earlier container/heap users:
// entries live inline in one slice, so pushing never boxes a value into an
// interface and a drained heap can be reused without reallocating.
type heapOf[T any] struct {
	es []heapEntry[T]
}

type heapEntry[T any] struct {
	key float64
	val T
}

func (h *heapOf[T]) len() int { return len(h.es) }

// reset empties the heap, keeping its backing array for reuse. Entries
// beyond the new length are zeroed so pooled heaps do not pin tree nodes or
// object ids across uses.
func (h *heapOf[T]) reset() {
	clear(h.es)
	h.es = h.es[:0]
}

func (h *heapOf[T]) push(key float64, val T) {
	h.es = append(h.es, heapEntry[T]{key: key, val: val})
	i := len(h.es) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.es[parent].key <= h.es[i].key {
			break
		}
		h.es[parent], h.es[i] = h.es[i], h.es[parent]
		i = parent
	}
}

// pop removes and returns the minimum entry. The heap must not be empty.
func (h *heapOf[T]) pop() heapEntry[T] {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	var zero heapEntry[T]
	h.es[last] = zero
	h.es = h.es[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

// replaceTop overwrites the minimum entry and restores heap order — the
// advance step of a k-way merge, cheaper than pop followed by push.
func (h *heapOf[T]) replaceTop(key float64, val T) {
	h.es[0] = heapEntry[T]{key: key, val: val}
	h.siftDown(0)
}

func (h *heapOf[T]) siftDown(i int) {
	n := len(h.es)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.es[r].key < h.es[l].key {
			m = r
		}
		if h.es[i].key <= h.es[m].key {
			return
		}
		h.es[i], h.es[m] = h.es[m], h.es[i]
		i = m
	}
}
