// Package client implements the client side of the location service: the
// operations of the service interface (Section 3.1 and 3.2) against an
// entry server, and the tracked-object role with its agent tracking across
// handovers.
//
// A mobile device may — and often will — hold both roles (paper, Fig. 1):
// one Client can register itself (or other objects) for tracking and issue
// queries at the same time.
package client

import (
	"context"
	"fmt"
	"sync"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
	"locsvc/internal/transport"
)

// Options configure a Client.
type Options struct {
	// Timeout bounds every operation; default 5 s.
	Timeout time.Duration
	// OnAccChange is invoked when the service notifies that the offered
	// accuracy for a registered object changed (notifyAvailAcc,
	// Section 3.1).
	OnAccChange func(oid core.OID, offeredAcc float64)
	// OnRequestUpdate is invoked when a (recovering) leaf server asks
	// for a fresh position update for an object this client registered.
	OnRequestUpdate func(oid core.OID)
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	return o
}

// Client is one node using the location service through an entry server.
type Client struct {
	node  transport.Node
	entry msg.NodeID
	opts  Options

	mu      sync.Mutex
	waiters map[uint64]chan msg.Message
	nextOp  uint64

	events eventSubs
	cache  clientCache
}

// New attaches a client node to the network. entry is the client's entry
// server: the nearby leaf server it directs all requests to (found through
// a lookup service in the paper; hierarchy.Deployment.LeafFor here).
func New(network transport.Network, id msg.NodeID, entry msg.NodeID, opts Options) (*Client, error) {
	c := &Client{
		entry:   entry,
		opts:    opts.withDefaults(),
		waiters: make(map[uint64]chan msg.Message),
	}
	node, err := network.Attach(id, c.handle)
	if err != nil {
		return nil, fmt.Errorf("client: attaching %s: %w", id, err)
	}
	c.node = node
	return c, nil
}

// ID returns the client's node id.
func (c *Client) ID() msg.NodeID { return c.node.ID() }

// Entry returns the entry server the client uses.
func (c *Client) Entry() msg.NodeID { return c.entry }

// SetEntry switches the client to a different entry server (e.g. after
// moving; remote-query experiments use it to force non-local entries).
func (c *Client) SetEntry(entry msg.NodeID) { c.entry = entry }

// Close detaches the client from the network.
func (c *Client) Close() error { return c.node.Close() }

// handle processes asynchronous messages addressed to this client.
func (c *Client) handle(_ context.Context, _ msg.NodeID, m msg.Message) (msg.Message, error) {
	switch req := m.(type) {
	case msg.RegisterRes:
		c.deliver(req.OpID, m)
	case msg.RegisterFailed:
		c.deliver(req.OpID, m)
	case msg.NotifyAvailAcc:
		if c.opts.OnAccChange != nil {
			c.opts.OnAccChange(req.OID, req.OfferedAcc)
		}
	case msg.RequestUpdate:
		if c.opts.OnRequestUpdate != nil {
			c.opts.OnRequestUpdate(req.OID)
		}
	case msg.EventNotify:
		c.dispatchEvent(req)
	}
	return nil, nil
}

// openOp allocates a waiter for a direct (non-call) response.
func (c *Client) openOp() (uint64, chan msg.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextOp++
	id := c.nextOp
	ch := make(chan msg.Message, 1)
	c.waiters[id] = ch
	return id, ch
}

// closeOp discards a waiter.
func (c *Client) closeOp(id uint64) {
	c.mu.Lock()
	delete(c.waiters, id)
	c.mu.Unlock()
}

// deliver hands a response to its waiter.
func (c *Client) deliver(id uint64, m msg.Message) {
	c.mu.Lock()
	ch, ok := c.waiters[id]
	if ok {
		delete(c.waiters, id)
	}
	c.mu.Unlock()
	if ok {
		ch <- m
	}
}

// TrackedObject is the client-side handle for one registered object: it
// knows the object's current agent (updated transparently on handover) and
// the currently offered accuracy.
type TrackedObject struct {
	c *Client

	oid core.OID

	mu         sync.Mutex
	agent      msg.NodeID
	offeredAcc float64
	lastSent   core.Sighting
}

// Register registers a new tracked object with the LS (Section 3.1):
// the initial sighting s plus the requested accuracy range [desAcc,
// minAcc]. On success the returned handle is bound to the object's agent.
func (c *Client) Register(ctx context.Context, s core.Sighting, desAcc, minAcc, maxSpeed float64) (*TrackedObject, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadRequest, err)
	}
	ri := core.RegInfo{
		Registrant: string(c.ID()),
		DesAcc:     desAcc,
		MinAcc:     minAcc,
		MaxSpeed:   maxSpeed,
	}
	if err := ri.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadRequest, err)
	}
	opID, ch := c.openOp()
	defer c.closeOp(opID)
	err := c.node.Send(c.entry, msg.RegisterReq{
		S:       s,
		RegInfo: ri,
		Origin:  msg.Origin{Node: c.ID(), OpID: opID},
	})
	if err != nil {
		return nil, fmt.Errorf("client: sending registration: %w", err)
	}
	select {
	case m := <-ch:
		switch res := m.(type) {
		case msg.RegisterRes:
			return &TrackedObject{
				c:          c,
				oid:        s.OID,
				agent:      res.Agent,
				offeredAcc: res.OfferedAcc,
				lastSent:   s,
			}, nil
		case msg.RegisterFailed:
			return nil, fmt.Errorf("%w: best achievable %.1f m at %s",
				core.ErrAccuracy, res.Achievable, res.Server)
		default:
			if err := msg.AsError(m); err != nil {
				return nil, err
			}
			return nil, core.ErrBadRequest
		}
	case <-time.After(c.opts.Timeout):
		return nil, fmt.Errorf("client: registration timed out: %w", context.DeadlineExceeded)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// OID returns the tracked object's identifier.
func (t *TrackedObject) OID() core.OID { return t.oid }

// Agent returns the current agent server.
func (t *TrackedObject) Agent() msg.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.agent
}

// OfferedAcc returns the currently offered accuracy.
func (t *TrackedObject) OfferedAcc() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.offeredAcc
}

// LastSent returns the sighting most recently accepted by the service.
func (t *TrackedObject) LastSent() core.Sighting {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastSent
}

// Update sends a position update to the object's agent (Section 3.1). On a
// handover the handle rebinds to the new agent transparently, as the paper's
// old agent "informs the tracked object of its new agent". It is the
// lockstep form of UpdateAsync: issue, then wait — the request still rides
// the transport's in-flight tracker, whose timeout sweeper resolves it if
// the reply is lost.
func (t *TrackedObject) Update(ctx context.Context, s core.Sighting) error {
	u, err := t.UpdateAsync(ctx, s)
	if err != nil {
		return err
	}
	return u.Wait(ctx)
}

// MaybeUpdate implements the paper's distance-based update protocol
// (Section 6.2): the update is only transmitted if the new position
// deviates from the last reported one by more than the offered accuracy.
// It reports whether an update was sent.
func (t *TrackedObject) MaybeUpdate(ctx context.Context, s core.Sighting) (bool, error) {
	t.mu.Lock()
	moved := s.Pos.Dist(t.lastSent.Pos) > t.offeredAcc
	t.mu.Unlock()
	if !moved {
		return false, nil
	}
	return true, t.Update(ctx, s)
}

// ChangeAcc renegotiates the accuracy range (Section 3.1). On success the
// newly offered accuracy is returned.
func (t *TrackedObject) ChangeAcc(ctx context.Context, desAcc, minAcc float64) (float64, error) {
	cctx, cancel := context.WithTimeout(ctx, t.c.opts.Timeout)
	defer cancel()
	resp, err := t.c.node.Call(cctx, t.Agent(), msg.ChangeAccReq{OID: t.oid, DesAcc: desAcc, MinAcc: minAcc})
	if err != nil {
		return 0, err
	}
	res, ok := resp.(msg.ChangeAccRes)
	if !ok {
		return 0, core.ErrBadRequest
	}
	if !res.OK {
		return res.OfferedAcc, core.ErrAccuracy
	}
	t.mu.Lock()
	t.offeredAcc = res.OfferedAcc
	t.mu.Unlock()
	return res.OfferedAcc, nil
}

// Deregister removes the object from the service (Section 3.1).
func (t *TrackedObject) Deregister(ctx context.Context) error {
	cctx, cancel := context.WithTimeout(ctx, t.c.opts.Timeout)
	defer cancel()
	_, err := t.c.node.Call(cctx, t.Agent(), msg.DeregisterReq{OID: t.oid})
	return err
}

// PosQuery retrieves the location descriptor of a tracked object
// (Section 3.2, posQuery).
func (c *Client) PosQuery(ctx context.Context, oid core.OID) (core.LocationDescriptor, error) {
	return c.PosQueryBounded(ctx, oid, 0)
}

// PosQueryBounded is PosQuery with an accuracy bound that permits the entry
// server to answer from its position cache when the cached descriptor, aged
// to now, is still at least accBound accurate (Section 6.5).
func (c *Client) PosQueryBounded(ctx context.Context, oid core.OID, accBound float64) (core.LocationDescriptor, error) {
	// Client-side caches first (Section 6.5; enable with EnableCache).
	if ld, ok := c.posQueryViaCache(ctx, oid, accBound); ok {
		return ld, nil
	}
	cctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	resp, err := c.node.Call(cctx, c.entry, msg.PosQueryReq{OID: oid, AccBound: accBound})
	if err != nil {
		return core.LocationDescriptor{}, err
	}
	res, ok := resp.(msg.PosQueryRes)
	if !ok || !res.Found {
		return core.LocationDescriptor{}, core.ErrNotFound
	}
	c.cache.remember(oid, res)
	return res.LD, nil
}

// RangeQuery returns all tracked objects inside the area whose location
// areas overlap it by at least reqOverlap and whose accuracy is at least
// reqAcc (Section 3.2, rangeQuery).
func (c *Client) RangeQuery(ctx context.Context, area core.Area, reqAcc, reqOverlap float64) ([]core.Entry, error) {
	cctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	resp, err := c.node.Call(cctx, c.entry, msg.RangeQueryReq{Area: area, ReqAcc: reqAcc, ReqOverlap: reqOverlap})
	if err != nil {
		return nil, err
	}
	res, ok := resp.(msg.RangeQueryRes)
	if !ok {
		return nil, core.ErrBadRequest
	}
	return res.Objs, nil
}

// RangeQueryRect is RangeQuery for a rectangular area.
func (c *Client) RangeQueryRect(ctx context.Context, r geo.Rect, reqAcc, reqOverlap float64) ([]core.Entry, error) {
	return c.RangeQuery(ctx, core.AreaFromRect(r), reqAcc, reqOverlap)
}

// Diag fetches the entry server's diagnostic snapshot: store occupancy,
// sighting-shard layout (occupancy and contention per shard, resize
// epoch) and the metrics registry. Operator tooling (lsctl stats) uses it
// to observe what the AutoShard policy observes.
func (c *Client) Diag(ctx context.Context) (msg.DiagRes, error) {
	cctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	resp, err := c.node.Call(cctx, c.entry, msg.DiagReq{})
	if err != nil {
		return msg.DiagRes{}, err
	}
	res, ok := resp.(msg.DiagRes)
	if !ok {
		return msg.DiagRes{}, core.ErrBadRequest
	}
	return res, nil
}

// NeighborResult is the client-side result of a nearest-neighbor query.
type NeighborResult struct {
	Nearest           core.Entry
	Near              []core.Entry
	GuaranteedMinDist float64
}

// NeighborQuery returns the tracked object nearest to p together with the
// nearObjSet within nearQual of its distance (Section 3.2, neighborQuery).
func (c *Client) NeighborQuery(ctx context.Context, p geo.Point, reqAcc, nearQual float64) (NeighborResult, error) {
	cctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	resp, err := c.node.Call(cctx, c.entry, msg.NeighborQueryReq{P: p, ReqAcc: reqAcc, NearQual: nearQual})
	if err != nil {
		return NeighborResult{}, err
	}
	res, ok := resp.(msg.NeighborQueryRes)
	if !ok {
		return NeighborResult{}, core.ErrBadRequest
	}
	if !res.Found {
		return NeighborResult{}, core.ErrNotFound
	}
	return NeighborResult{
		Nearest:           res.Nearest,
		Near:              res.Near,
		GuaranteedMinDist: res.GuaranteedMinDist,
	}, nil
}
