// Package client implements the client side of the location service: the
// operations of the service interface (Section 3.1 and 3.2) against an
// entry server, and the tracked-object role with its agent tracking across
// handovers.
//
// A mobile device may — and often will — hold both roles (paper, Fig. 1):
// one Client can register itself (or other objects) for tracking and issue
// queries at the same time.
package client

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
	"locsvc/internal/transport"
)

// Options configure a Client.
type Options struct {
	// Timeout bounds every operation; default 5 s.
	Timeout time.Duration
	// Retry is the retry budget for idempotent operations (registration,
	// updates, queries): lost datagrams surface as timeouts, and under a
	// budget the client simply asks again with exponential backoff and
	// full jitter. Registrations and updates are stamped with a
	// per-client sequence number so a retried request is applied exactly
	// once by the receiving leaf (see the wire package's retry-idempotency
	// rules). The zero value disables retries — every operation gets one
	// attempt, the pre-existing behavior.
	Retry transport.RetryPolicy
	// OnAccChange is invoked when the service notifies that the offered
	// accuracy for a registered object changed (notifyAvailAcc,
	// Section 3.1).
	OnAccChange func(oid core.OID, offeredAcc float64)
	// OnRequestUpdate is invoked when a (recovering) leaf server asks
	// for a fresh position update for an object this client registered.
	OnRequestUpdate func(oid core.OID)
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	return o
}

// Client is one node using the location service through an entry server.
type Client struct {
	node transport.Node
	opts Options

	// seq stamps side-effecting requests (RegisterReq, UpdateReq) with
	// one monotonic per-client counter, the dedupe key for retries.
	seq atomic.Uint64

	mu      sync.Mutex
	entry   msg.NodeID // guarded: SetEntry may race concurrent operations
	waiters map[uint64]chan msg.Message
	nextOp  uint64

	events eventSubs
	cache  clientCache
}

// New attaches a client node to the network. entry is the client's entry
// server: the nearby leaf server it directs all requests to (found through
// a lookup service in the paper; hierarchy.Deployment.LeafFor here).
func New(network transport.Network, id msg.NodeID, entry msg.NodeID, opts Options) (*Client, error) {
	c := &Client{
		entry:   entry,
		opts:    opts.withDefaults(),
		waiters: make(map[uint64]chan msg.Message),
	}
	node, err := network.Attach(id, c.handle)
	if err != nil {
		return nil, fmt.Errorf("client: attaching %s: %w", id, err)
	}
	c.node = node
	return c, nil
}

// ID returns the client's node id.
func (c *Client) ID() msg.NodeID { return c.node.ID() }

// Entry returns the entry server the client uses.
func (c *Client) Entry() msg.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entry
}

// SetEntry switches the client to a different entry server (e.g. after
// moving; remote-query experiments use it to force non-local entries).
// Safe against concurrent operations: each in-flight request reads the
// entry once and completes against the server it started with.
func (c *Client) SetEntry(entry msg.NodeID) {
	c.mu.Lock()
	c.entry = entry
	c.mu.Unlock()
}

// nextSeq draws the next request sequence number (never 0 — 0 means
// unstamped on the wire).
func (c *Client) nextSeq() uint64 { return c.seq.Add(1) }

// Close detaches the client from the network.
func (c *Client) Close() error { return c.node.Close() }

// handle processes asynchronous messages addressed to this client.
func (c *Client) handle(_ context.Context, _ msg.NodeID, m msg.Message) (msg.Message, error) {
	switch req := m.(type) {
	case msg.RegisterRes:
		c.deliver(req.OpID, m)
	case msg.RegisterFailed:
		c.deliver(req.OpID, m)
	case msg.NotifyAvailAcc:
		if c.opts.OnAccChange != nil {
			c.opts.OnAccChange(req.OID, req.OfferedAcc)
		}
	case msg.RequestUpdate:
		if c.opts.OnRequestUpdate != nil {
			c.opts.OnRequestUpdate(req.OID)
		}
	case msg.EventNotify:
		c.dispatchEvent(req)
	}
	return nil, nil
}

// openOp allocates a waiter for a direct (non-call) response.
func (c *Client) openOp() (uint64, chan msg.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextOp++
	id := c.nextOp
	ch := make(chan msg.Message, 1)
	c.waiters[id] = ch
	return id, ch
}

// closeOp discards a waiter.
func (c *Client) closeOp(id uint64) {
	c.mu.Lock()
	delete(c.waiters, id)
	c.mu.Unlock()
}

// deliver hands a response to its waiter.
func (c *Client) deliver(id uint64, m msg.Message) {
	c.mu.Lock()
	ch, ok := c.waiters[id]
	if ok {
		delete(c.waiters, id)
	}
	c.mu.Unlock()
	if ok {
		ch <- m
	}
}

// TrackedObject is the client-side handle for one registered object: it
// knows the object's current agent (updated transparently on handover) and
// the currently offered accuracy.
type TrackedObject struct {
	c *Client

	oid core.OID

	mu         sync.Mutex
	agent      msg.NodeID
	offeredAcc float64
	lastSent   core.Sighting
}

// Register registers a new tracked object with the LS (Section 3.1):
// the initial sighting s plus the requested accuracy range [desAcc,
// minAcc]. On success the returned handle is bound to the object's agent.
func (c *Client) Register(ctx context.Context, s core.Sighting, desAcc, minAcc, maxSpeed float64) (*TrackedObject, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadRequest, err)
	}
	ri := core.RegInfo{
		Registrant: string(c.ID()),
		DesAcc:     desAcc,
		MinAcc:     minAcc,
		MaxSpeed:   maxSpeed,
	}
	if err := ri.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrBadRequest, err)
	}
	opID, ch := c.openOp()
	defer c.closeOp(opID)
	// One OpID and one Seq for every attempt: a duplicate delivery makes
	// the leaf re-send its remembered outcome instead of re-applying, and
	// a late first reply resolves the same waiter a re-send is parked on.
	req := msg.RegisterReq{
		S:       s,
		RegInfo: ri,
		Origin:  msg.Origin{Node: c.ID(), OpID: opID},
		Seq:     c.nextSeq(),
	}
	attempts := c.opts.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	perTry := c.opts.Retry.PerTryTimeout
	if perTry <= 0 {
		perTry = c.opts.Timeout
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			transport.CountRetry(c.node)
			select {
			case <-time.After(c.opts.Retry.Backoff(i)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if err := c.node.Send(c.Entry(), req); err != nil {
			lastErr = fmt.Errorf("client: sending registration: %w", err)
			if !transport.Retryable(err) {
				return nil, lastErr
			}
			continue
		}
		select {
		case m := <-ch:
			switch res := m.(type) {
			case msg.RegisterRes:
				return &TrackedObject{
					c:          c,
					oid:        s.OID,
					agent:      res.Agent,
					offeredAcc: res.OfferedAcc,
					lastSent:   s,
				}, nil
			case msg.RegisterFailed:
				return nil, fmt.Errorf("%w: best achievable %.1f m at %s",
					core.ErrAccuracy, res.Achievable, res.Server)
			default:
				if err := msg.AsError(m); err != nil {
					return nil, err
				}
				return nil, core.ErrBadRequest
			}
		case <-time.After(perTry):
			lastErr = fmt.Errorf("client: registration timed out: %w", context.DeadlineExceeded)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// OID returns the tracked object's identifier.
func (t *TrackedObject) OID() core.OID { return t.oid }

// Agent returns the current agent server.
func (t *TrackedObject) Agent() msg.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.agent
}

// OfferedAcc returns the currently offered accuracy.
func (t *TrackedObject) OfferedAcc() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.offeredAcc
}

// LastSent returns the sighting most recently accepted by the service.
func (t *TrackedObject) LastSent() core.Sighting {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastSent
}

// Update sends a position update to the object's agent (Section 3.1). On a
// handover the handle rebinds to the new agent transparently, as the paper's
// old agent "informs the tracked object of its new agent". With a retry
// budget configured, a timed-out update is re-sent with the same sequence
// number — the agent applies it exactly once — against the handle's current
// agent, re-read before every attempt so a rebinding applied in between is
// honored.
func (t *TrackedObject) Update(ctx context.Context, s core.Sighting) error {
	if !t.c.opts.Retry.Enabled() {
		u, err := t.UpdateAsync(ctx, s)
		if err != nil {
			return err
		}
		return u.Wait(ctx)
	}
	if s.OID != t.oid {
		return fmt.Errorf("%w: sighting for %s on handle of %s", core.ErrBadRequest, s.OID, t.oid)
	}
	cctx, cancel := context.WithTimeout(ctx, t.c.opts.Timeout)
	defer cancel()
	resp, err := transport.CallWithRetry(cctx, t.c.node, t.Agent,
		msg.UpdateReq{S: s, Seq: t.c.nextSeq()}, t.c.opts.Retry)
	if err != nil {
		return err
	}
	res, ok := resp.(msg.UpdateRes)
	if !ok {
		return core.ErrBadRequest
	}
	t.applyUpdateRes(s, res)
	return nil
}

// applyUpdateRes folds an accepted update's response into the handle:
// remember the sighting, adopt the offered accuracy, rebind on handover.
func (t *TrackedObject) applyUpdateRes(s core.Sighting, res msg.UpdateRes) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lastSent = s
	t.offeredAcc = res.OfferedAcc
	if res.Moved {
		t.agent = res.NewAgent
	}
}

// MaybeUpdate implements the paper's distance-based update protocol
// (Section 6.2): the update is only transmitted if the new position
// deviates from the last reported one by more than the offered accuracy.
// It reports whether an update was sent.
func (t *TrackedObject) MaybeUpdate(ctx context.Context, s core.Sighting) (bool, error) {
	t.mu.Lock()
	moved := s.Pos.Dist(t.lastSent.Pos) > t.offeredAcc
	t.mu.Unlock()
	if !moved {
		return false, nil
	}
	return true, t.Update(ctx, s)
}

// ChangeAcc renegotiates the accuracy range (Section 3.1). On success the
// newly offered accuracy is returned.
func (t *TrackedObject) ChangeAcc(ctx context.Context, desAcc, minAcc float64) (float64, error) {
	cctx, cancel := context.WithTimeout(ctx, t.c.opts.Timeout)
	defer cancel()
	resp, err := t.c.node.Call(cctx, t.Agent(), msg.ChangeAccReq{OID: t.oid, DesAcc: desAcc, MinAcc: minAcc})
	if err != nil {
		return 0, err
	}
	res, ok := resp.(msg.ChangeAccRes)
	if !ok {
		return 0, core.ErrBadRequest
	}
	if !res.OK {
		return res.OfferedAcc, core.ErrAccuracy
	}
	t.mu.Lock()
	t.offeredAcc = res.OfferedAcc
	t.mu.Unlock()
	return res.OfferedAcc, nil
}

// Deregister removes the object from the service (Section 3.1).
func (t *TrackedObject) Deregister(ctx context.Context) error {
	cctx, cancel := context.WithTimeout(ctx, t.c.opts.Timeout)
	defer cancel()
	_, err := t.c.node.Call(cctx, t.Agent(), msg.DeregisterReq{OID: t.oid})
	return err
}

// PosQuery retrieves the location descriptor of a tracked object
// (Section 3.2, posQuery).
func (c *Client) PosQuery(ctx context.Context, oid core.OID) (core.LocationDescriptor, error) {
	return c.PosQueryBounded(ctx, oid, 0)
}

// PosQueryBounded is PosQuery with an accuracy bound that permits the entry
// server to answer from its position cache when the cached descriptor, aged
// to now, is still at least accBound accurate (Section 6.5).
//
// A degraded miss — the entry server could not reach the part of the
// hierarchy that would know the object — returns core.ErrUnavailable, not
// core.ErrNotFound: the object may well be tracked behind the dark servers.
func (c *Client) PosQueryBounded(ctx context.Context, oid core.OID, accBound float64) (core.LocationDescriptor, error) {
	// Client-side caches first (Section 6.5; enable with EnableCache).
	if ld, ok := c.posQueryViaCache(ctx, oid, accBound); ok {
		return ld, nil
	}
	resp, err := c.callEntry(ctx, msg.PosQueryReq{OID: oid, AccBound: accBound})
	if err != nil {
		return core.LocationDescriptor{}, err
	}
	res, ok := resp.(msg.PosQueryRes)
	if !ok {
		return core.LocationDescriptor{}, core.ErrNotFound
	}
	if !res.Found {
		if res.Partial {
			return core.LocationDescriptor{}, core.ErrUnavailable
		}
		return core.LocationDescriptor{}, core.ErrNotFound
	}
	c.cache.remember(oid, res)
	return res.LD, nil
}

// callEntry performs one request/response operation against the entry
// server under the client's timeout and retry budget. The entry is re-read
// before every attempt so a concurrent SetEntry redirects retries.
func (c *Client) callEntry(ctx context.Context, m msg.Message) (msg.Message, error) {
	cctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	return transport.CallWithRetry(cctx, c.node, c.Entry, m, c.opts.Retry)
}

// RangeResult is the client-side result of a range query. Partial marks a
// degraded answer: Objs covers only the part of the hierarchy that was
// reachable (Unreachable names the dark servers the entry server saw), so
// an empty Objs means "nothing found among the live servers", not "nothing
// there".
type RangeResult struct {
	Objs        []core.Entry
	Servers     int
	Hops        int
	Partial     bool
	Unreachable []msg.NodeID
}

// RangeQuery returns all tracked objects inside the area whose location
// areas overlap it by at least reqOverlap and whose accuracy is at least
// reqAcc (Section 3.2, rangeQuery). Degraded answers are returned as is;
// use RangeQueryFull to distinguish them.
func (c *Client) RangeQuery(ctx context.Context, area core.Area, reqAcc, reqOverlap float64) ([]core.Entry, error) {
	res, err := c.RangeQueryFull(ctx, area, reqAcc, reqOverlap)
	return res.Objs, err
}

// RangeQueryFull is RangeQuery with the full response: contributing-server
// and hop counts, plus the degraded-answer marking.
func (c *Client) RangeQueryFull(ctx context.Context, area core.Area, reqAcc, reqOverlap float64) (RangeResult, error) {
	resp, err := c.callEntry(ctx, msg.RangeQueryReq{Area: area, ReqAcc: reqAcc, ReqOverlap: reqOverlap})
	if err != nil {
		return RangeResult{}, err
	}
	res, ok := resp.(msg.RangeQueryRes)
	if !ok {
		return RangeResult{}, core.ErrBadRequest
	}
	return RangeResult{
		Objs:        res.Objs,
		Servers:     res.Servers,
		Hops:        res.Hops,
		Partial:     res.Partial,
		Unreachable: res.Unreachable,
	}, nil
}

// RangeQueryRect is RangeQuery for a rectangular area.
func (c *Client) RangeQueryRect(ctx context.Context, r geo.Rect, reqAcc, reqOverlap float64) ([]core.Entry, error) {
	return c.RangeQuery(ctx, core.AreaFromRect(r), reqAcc, reqOverlap)
}

// Diag fetches the entry server's diagnostic snapshot: store occupancy,
// sighting-shard layout (occupancy and contention per shard, resize
// epoch) and the metrics registry. Operator tooling (lsctl stats) uses it
// to observe what the AutoShard policy observes.
func (c *Client) Diag(ctx context.Context) (msg.DiagRes, error) {
	resp, err := c.callEntry(ctx, msg.DiagReq{})
	if err != nil {
		return msg.DiagRes{}, err
	}
	res, ok := resp.(msg.DiagRes)
	if !ok {
		return msg.DiagRes{}, core.ErrBadRequest
	}
	return res, nil
}

// NeighborResult is the client-side result of a nearest-neighbor query.
// Partial marks a degraded answer: the true nearest object could be agented
// behind one of the Unreachable servers.
type NeighborResult struct {
	Nearest           core.Entry
	Near              []core.Entry
	GuaranteedMinDist float64
	Partial           bool
	Unreachable       []msg.NodeID
}

// NeighborQuery returns the tracked object nearest to p together with the
// nearObjSet within nearQual of its distance (Section 3.2, neighborQuery).
// A degraded "nothing found" returns core.ErrUnavailable instead of
// core.ErrNotFound — dark servers may hold the answer.
func (c *Client) NeighborQuery(ctx context.Context, p geo.Point, reqAcc, nearQual float64) (NeighborResult, error) {
	resp, err := c.callEntry(ctx, msg.NeighborQueryReq{P: p, ReqAcc: reqAcc, NearQual: nearQual})
	if err != nil {
		return NeighborResult{}, err
	}
	res, ok := resp.(msg.NeighborQueryRes)
	if !ok {
		return NeighborResult{}, core.ErrBadRequest
	}
	if !res.Found {
		if res.Partial {
			return NeighborResult{Partial: true, Unreachable: res.Unreachable}, core.ErrUnavailable
		}
		return NeighborResult{}, core.ErrNotFound
	}
	return NeighborResult{
		Nearest:           res.Nearest,
		Near:              res.Near,
		GuaranteedMinDist: res.GuaranteedMinDist,
		Partial:           res.Partial,
		Unreachable:       res.Unreachable,
	}, nil
}
