// Async operation surface. Every blocking operation on Client and
// TrackedObject is the lockstep special case of these: issue the request
// through the transport's in-flight tracker (transport.CallAsync), get a
// pending handle back, resolve it later. Fan-out callers — lsbench's
// update storm, a UI prefetching many positions — keep hundreds of
// requests riding one socket concurrently; each request still carries its
// own deadline, swept by the transport's timeout goroutine, so an
// unanswered request resolves as a timeout error instead of leaking.

package client

import (
	"context"
	"fmt"

	"locsvc/internal/core"
	"locsvc/internal/msg"
	"locsvc/internal/transport"
)

// PendingUpdate is one in-flight position update. Resolve it with Wait.
type PendingUpdate struct {
	t *TrackedObject
	s core.Sighting
	p *transport.PendingCall
}

// UpdateAsync sends a position update to the object's agent and returns
// without waiting for the response. The request deadline is ctx's, capped
// by the client's operation timeout. The handle's agent rebinds on
// handover when the result is waited on, exactly like Update.
func (t *TrackedObject) UpdateAsync(ctx context.Context, s core.Sighting) (*PendingUpdate, error) {
	if s.OID != t.oid {
		return nil, fmt.Errorf("%w: sighting for %s on handle of %s", core.ErrBadRequest, s.OID, t.oid)
	}
	cctx, cancel := context.WithTimeout(ctx, t.c.opts.Timeout)
	defer cancel()
	p, err := t.c.node.CallAsync(cctx, t.Agent(), msg.UpdateReq{S: s, Seq: t.c.nextSeq()})
	if err != nil {
		return nil, err
	}
	return &PendingUpdate{t: t, s: s, p: p}, nil
}

// Wait blocks until the update resolves: with the agent's response, with a
// timeout error once the request deadline passes, or with ctx's error.
func (u *PendingUpdate) Wait(ctx context.Context) error {
	resp, err := u.p.Wait(ctx)
	if err != nil {
		return err
	}
	res, ok := resp.(msg.UpdateRes)
	if !ok {
		return core.ErrBadRequest
	}
	u.t.applyUpdateRes(u.s, res)
	return nil
}

// PendingPosQuery is one in-flight position query. Resolve it with Wait.
type PendingPosQuery struct {
	c   *Client
	oid core.OID
	p   *transport.PendingCall
}

// PosQueryAsync issues a position query to the entry server and returns
// without waiting for the response. It bypasses the client-side cache —
// fan-out callers batch many distinct objects, where the cache check
// belongs on the caller's side if wanted.
func (c *Client) PosQueryAsync(ctx context.Context, oid core.OID, accBound float64) (*PendingPosQuery, error) {
	cctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	p, err := c.node.CallAsync(cctx, c.Entry(), msg.PosQueryReq{OID: oid, AccBound: accBound})
	if err != nil {
		return nil, err
	}
	return &PendingPosQuery{c: c, oid: oid, p: p}, nil
}

// Wait blocks until the query resolves and feeds the client cache like
// PosQueryBounded.
func (q *PendingPosQuery) Wait(ctx context.Context) (core.LocationDescriptor, error) {
	resp, err := q.p.Wait(ctx)
	if err != nil {
		return core.LocationDescriptor{}, err
	}
	res, ok := resp.(msg.PosQueryRes)
	if !ok || !res.Found {
		return core.LocationDescriptor{}, core.ErrNotFound
	}
	q.c.cache.remember(q.oid, res)
	return res.LD, nil
}
