package client

import (
	"fmt"
	"sync"

	"locsvc/internal/core"
	"locsvc/internal/msg"
)

// EventHandler receives asynchronous predicate notifications.
type EventHandler func(n msg.EventNotify)

// eventSubs tracks this client's active subscriptions.
type eventSubs struct {
	mu       sync.Mutex
	handlers map[string]EventHandler
	// seen remembers recently delivered notification sequences per
	// subscription: the server retries notifications over the lossy
	// transport, so duplicates are expected and dropped here.
	seen map[string]*seqRing
}

// seqRing is a small ring of recently seen sequence numbers.
type seqRing struct {
	buf  [64]uint64
	next int
}

func (r *seqRing) remember(seq uint64) bool {
	for _, s := range r.buf {
		if s == seq {
			return false
		}
	}
	r.buf[r.next] = seq
	r.next = (r.next + 1) % len(r.buf)
	return true
}

// SubscribeCountAbove registers the predicate "at least threshold objects
// are inside area" (paper Section 1). Notifications fire on transitions in
// both directions (Fired reports the new state).
func (c *Client) SubscribeCountAbove(subID string, area core.Area, reqAcc float64, threshold int, h EventHandler) error {
	if threshold <= 0 || area.Empty() {
		return fmt.Errorf("%w: invalid count subscription", core.ErrBadRequest)
	}
	c.registerHandler(subID, h)
	entry := c.Entry()
	return c.node.Send(entry, msg.EventSubscribe{
		SubID:       subID,
		Kind:        msg.EventCountAbove,
		Area:        area,
		ReqAcc:      reqAcc,
		Threshold:   threshold,
		Coordinator: entry,
		Subscriber:  c.ID(),
	})
}

// SubscribeMeeting registers the predicate "two tracked objects inside area
// come within distance of each other" (paper Section 1, "two users of the
// system meet"). Each new meeting pair triggers one notification naming the
// objects.
func (c *Client) SubscribeMeeting(subID string, area core.Area, distance float64, h EventHandler) error {
	if distance <= 0 || area.Empty() {
		return fmt.Errorf("%w: invalid meeting subscription", core.ErrBadRequest)
	}
	c.registerHandler(subID, h)
	entry := c.Entry()
	return c.node.Send(entry, msg.EventSubscribe{
		SubID:       subID,
		Kind:        msg.EventMeeting,
		Area:        area,
		Distance:    distance,
		Coordinator: entry,
		Subscriber:  c.ID(),
	})
}

// Unsubscribe removes a subscription everywhere it was installed. The area
// must match the one used at subscription time (it drives the routing).
func (c *Client) Unsubscribe(subID string, area core.Area) error {
	c.events.mu.Lock()
	delete(c.events.handlers, subID)
	delete(c.events.seen, subID)
	c.events.mu.Unlock()
	return c.node.Send(c.Entry(), msg.EventUnsubscribe{SubID: subID, Area: area})
}

func (c *Client) registerHandler(subID string, h EventHandler) {
	c.events.mu.Lock()
	defer c.events.mu.Unlock()
	if c.events.handlers == nil {
		c.events.handlers = make(map[string]EventHandler)
	}
	c.events.handlers[subID] = h
}

// dispatchEvent routes an EventNotify to its handler, dropping retry
// duplicates by sequence number. Seq zero marks an unsequenced
// notification and is always delivered.
func (c *Client) dispatchEvent(n msg.EventNotify) {
	c.events.mu.Lock()
	h := c.events.handlers[n.SubID]
	if h != nil && n.Seq != 0 {
		if c.events.seen == nil {
			c.events.seen = make(map[string]*seqRing)
		}
		r := c.events.seen[n.SubID]
		if r == nil {
			r = &seqRing{}
			c.events.seen[n.SubID] = r
		}
		if !r.remember(n.Seq) {
			h = nil
		}
	}
	c.events.mu.Unlock()
	if h != nil {
		h(n)
	}
}
