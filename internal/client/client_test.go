package client_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/hierarchy"
	"locsvc/internal/msg"
	"locsvc/internal/server"
	"locsvc/internal/transport"
)

func deploy(t *testing.T, opts server.Options) (*transport.Inproc, *hierarchy.Deployment) {
	t.Helper()
	net := transport.NewInproc(transport.InprocOptions{})
	dep, err := hierarchy.Deploy(net, hierarchy.Spec{
		RootArea: geo.R(0, 0, 1000, 1000),
		Levels:   []hierarchy.Level{{Rows: 2, Cols: 2}},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close(); net.Close() })
	return net, dep
}

func TestRegisterValidation(t *testing.T) {
	net, _ := deploy(t, server.Options{})
	c, err := client.New(net, "c", "r.0", client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Inverted accuracy range.
	_, err = c.Register(ctx, core.Sighting{OID: "o", T: time.Now(), Pos: geo.Pt(1, 1), SensAcc: 5}, 50, 10, 3)
	if !errors.Is(err, core.ErrBadRequest) {
		t.Errorf("inverted range err = %v", err)
	}
	// Empty object id.
	_, err = c.Register(ctx, core.Sighting{T: time.Now(), Pos: geo.Pt(1, 1), SensAcc: 5}, 10, 50, 3)
	if !errors.Is(err, core.ErrBadRequest) {
		t.Errorf("empty oid err = %v", err)
	}
}

func TestUpdateWrongHandle(t *testing.T) {
	net, _ := deploy(t, server.Options{})
	c, err := client.New(net, "c", "r.0", client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	obj, err := c.Register(ctx, core.Sighting{OID: "mine", T: time.Now(), Pos: geo.Pt(1, 1), SensAcc: 5}, 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	err = obj.Update(ctx, core.Sighting{OID: "other", T: time.Now(), Pos: geo.Pt(2, 2), SensAcc: 5})
	if !errors.Is(err, core.ErrBadRequest) {
		t.Errorf("cross-handle update err = %v", err)
	}
}

func TestSetEntry(t *testing.T) {
	net, _ := deploy(t, server.Options{})
	c, err := client.New(net, "c", "r.0", client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Entry() != "r.0" {
		t.Errorf("Entry = %s", c.Entry())
	}
	c.SetEntry("r.3")
	if c.Entry() != "r.3" {
		t.Errorf("Entry after SetEntry = %s", c.Entry())
	}
	// Queries still work through the new entry.
	ctx := context.Background()
	owner, err := client.New(net, "owner", "r.0", client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	if _, err := owner.Register(ctx, core.Sighting{OID: "o", T: time.Now(), Pos: geo.Pt(10, 10), SensAcc: 5}, 10, 50, 3); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.PosQuery(ctx, "o"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query through new entry never succeeded")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAccChangeNotification(t *testing.T) {
	// Handover to a leaf with a different achievable accuracy triggers
	// notifyAvailAcc at the registrant.
	net := transport.NewInproc(transport.InprocOptions{})
	t.Cleanup(func() { net.Close() })

	spec := hierarchy.Spec{RootArea: geo.R(0, 0, 1000, 1000), Levels: []hierarchy.Level{{Rows: 1, Cols: 2}}}
	configs, err := hierarchy.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	rootArea := core.AreaFromRect(spec.RootArea)
	// Left leaf achieves 10 m, right leaf only 40 m.
	accFor := map[string]float64{"r": 10, "r.0": 10, "r.1": 40}
	var servers []*server.Server
	for _, cfg := range configs {
		srv, serr := server.New(cfg, rootArea, net, server.Options{AchievableAcc: accFor[cfg.ID]})
		if serr != nil {
			t.Fatal(serr)
		}
		servers = append(servers, srv)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})

	var mu sync.Mutex
	var notified []float64
	c, err := client.New(net, "c", "r.0", client.Options{
		OnAccChange: func(_ core.OID, acc float64) {
			mu.Lock()
			notified = append(notified, acc)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	obj, err := c.Register(ctx, core.Sighting{OID: "o", T: time.Now(), Pos: geo.Pt(100, 500), SensAcc: 5}, 10, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if obj.OfferedAcc() != 10 {
		t.Fatalf("initial acc = %v", obj.OfferedAcc())
	}
	// Cross into the coarse leaf.
	if err := obj.Update(ctx, core.Sighting{OID: "o", T: time.Now(), Pos: geo.Pt(900, 500), SensAcc: 5}); err != nil {
		t.Fatal(err)
	}
	if obj.OfferedAcc() != 40 {
		t.Errorf("acc after handover = %v, want 40", obj.OfferedAcc())
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(notified)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("notifyAvailAcc never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	if notified[0] != 40 {
		t.Errorf("notified acc = %v, want 40", notified[0])
	}
	mu.Unlock()
}

func TestClientTimeoutOnDeadEntry(t *testing.T) {
	net := transport.NewInproc(transport.InprocOptions{})
	release := make(chan struct{})
	t.Cleanup(func() {
		close(release) // unblock the handler so Close does not wait
		net.Close()
	})
	// Attach a "black hole" entry server that never answers in time.
	if _, err := net.Attach("r.0", func(context.Context, msg.NodeID, msg.Message) (msg.Message, error) {
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	c, err := client.New(net, "c", "r.0", client.Options{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.PosQuery(context.Background(), "o")
	if err == nil {
		t.Fatal("query to dead entry succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestClientSideCache(t *testing.T) {
	net, dep := deploy(t, server.Options{})
	owner, err := client.New(net, "owner", "r.0", client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	ctx := context.Background()
	obj, err := owner.Register(ctx, core.Sighting{OID: "o", T: time.Now(), Pos: geo.Pt(10, 10), SensAcc: 5}, 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}

	c, err := client.New(net, "cached-client", "r.3", client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.EnableCache()

	// First query fills the cache (retry until createPath settles).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.PosQuery(ctx, "o"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first query never succeeded")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Second query with a generous bound is served from the client's own
	// position cache — kill the entry server to prove no server is asked.
	srv, _ := dep.Server("r.3")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ld, err := c.PosQueryBounded(ctx, "o", 10_000)
	if err != nil {
		t.Fatalf("cached query failed after entry death: %v", err)
	}
	if ld.Pos != geo.Pt(10, 10) {
		t.Errorf("cached ld = %+v", ld)
	}
	// Without a bound the pos cache is skipped, but the agent cache still
	// answers with a direct call to r.0 — no entry server involved.
	ld, err = c.PosQuery(ctx, "o")
	if err != nil {
		t.Fatalf("agent-cache query failed: %v", err)
	}
	if ld.Pos != geo.Pt(10, 10) {
		t.Errorf("agent-cached ld = %+v", ld)
	}

	// After a handover the cached agent is stale; with the entry dead the
	// fallback also fails — the client must return an error, not a stale
	// success, once the direct probe misses.
	if err := obj.Update(ctx, core.Sighting{OID: "o", T: time.Now(), Pos: geo.Pt(900, 10), SensAcc: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PosQuery(ctx, "o"); err == nil {
		t.Error("stale agent cache produced an answer with dead entry")
	}
}
