package client_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"locsvc/internal/client"
	"locsvc/internal/core"
	"locsvc/internal/geo"
	"locsvc/internal/msg"
	"locsvc/internal/server"
)

// TestSetEntryConcurrentWithOperations pins the SetEntry data race fixed by
// guarding the entry field: one goroutine rotates the entry server through
// all four leaves while others run every entry-routed operation. Run under
// -race, any unsynchronized read of the entry field fails the test.
func TestSetEntryConcurrentWithOperations(t *testing.T) {
	net, _ := deploy(t, server.Options{})
	c, err := client.New(net, "c", "r.0", client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	obj, err := c.Register(ctx, core.Sighting{OID: "o1", T: time.Now(), Pos: geo.Pt(100, 100), SensAcc: 5}, 10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// The rotator: every entry read racing below must observe either the
	// old or the new value, never a torn one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaves := []string{"r.0", "r.1", "r.2", "r.3"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.SetEntry(msg.NodeID(leaves[i%len(leaves)]))
		}
	}()

	ops := []func(){
		func() { _, _ = c.PosQuery(ctx, "o1") },
		func() { _, _ = c.RangeQuery(ctx, core.AreaFromRect(geo.R(0, 0, 500, 500)), 100, 0.5) },
		func() { _, _ = c.Diag(ctx) },
		func() {
			_ = obj.Update(ctx, core.Sighting{OID: "o1", T: time.Now(), Pos: geo.Pt(110, 100), SensAcc: 5})
		},
	}
	for _, op := range ops {
		op := op
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				op()
			}
		}()
	}

	// Let the operation goroutines finish, then stop the rotator.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("operations never finished")
	}
}
