package client

import (
	"context"
	"sync"
	"time"

	"locsvc/internal/core"
	"locsvc/internal/msg"
)

// Client-side caching (Section 6.5: "similar caching mechanisms can be used
// on the clients of the LS"): a client can remember each queried object's
// agent — turning repeat position queries into a single direct call that
// bypasses even the entry server — and the returned position descriptors,
// aged with the object's maximum speed before reuse.

// clientCache holds the client-side caches; zero value is disabled.
type clientCache struct {
	enabled bool

	mu     sync.Mutex
	agents map[core.OID]msg.NodeID
	pos    map[core.OID]clientPosEntry
}

type clientPosEntry struct {
	ld       core.LocationDescriptor
	storedAt time.Time
	maxSpeed float64
}

// EnableCache turns on the client-side agent and position caches.
func (c *Client) EnableCache() {
	c.cache.mu.Lock()
	defer c.cache.mu.Unlock()
	c.cache.enabled = true
	if c.cache.agents == nil {
		c.cache.agents = make(map[core.OID]msg.NodeID)
		c.cache.pos = make(map[core.OID]clientPosEntry)
	}
}

// remember stores a query response in the caches.
func (c *clientCache) remember(oid core.OID, res msg.PosQueryRes) {
	if !c.enabled {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if res.Agent != "" {
		c.agents[oid] = res.Agent
	}
	c.pos[oid] = clientPosEntry{ld: res.LD, storedAt: time.Now(), maxSpeed: res.MaxSpeed}
}

// cachedPos returns a cached descriptor aged to now if it still meets
// accBound.
func (c *clientCache) cachedPos(oid core.OID, accBound float64) (core.LocationDescriptor, bool) {
	if !c.enabled || accBound <= 0 {
		return core.LocationDescriptor{}, false
	}
	c.mu.Lock()
	e, ok := c.pos[oid]
	c.mu.Unlock()
	if !ok {
		return core.LocationDescriptor{}, false
	}
	now := time.Now()
	if e.maxSpeed <= 0 && now.After(e.storedAt) {
		return core.LocationDescriptor{}, false
	}
	aged := e.ld.Aged(e.storedAt, now, e.maxSpeed)
	if aged.Acc > accBound {
		return core.LocationDescriptor{}, false
	}
	return aged, true
}

// cachedAgent returns the cached agent for oid.
func (c *clientCache) cachedAgent(oid core.OID) (msg.NodeID, bool) {
	if !c.enabled {
		return "", false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.agents[oid]
	return id, ok
}

// invalidate drops the cached agent for oid.
func (c *clientCache) invalidate(oid core.OID) {
	if !c.enabled {
		return
	}
	c.mu.Lock()
	delete(c.agents, oid)
	c.mu.Unlock()
}

// posQueryViaCache resolves a position query with the client caches: first
// the aged descriptor, then a direct call to the cached agent. It reports
// whether it produced an answer.
func (c *Client) posQueryViaCache(ctx context.Context, oid core.OID, accBound float64) (core.LocationDescriptor, bool) {
	if ld, ok := c.cache.cachedPos(oid, accBound); ok {
		return ld, true
	}
	agent, ok := c.cache.cachedAgent(oid)
	if !ok {
		return core.LocationDescriptor{}, false
	}
	cctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	resp, err := c.node.Call(cctx, agent, msg.PosQueryDirect{OID: oid})
	if err != nil {
		c.cache.invalidate(oid)
		return core.LocationDescriptor{}, false
	}
	res, ok := resp.(msg.PosQueryRes)
	if !ok || !res.Found {
		c.cache.invalidate(oid)
		return core.LocationDescriptor{}, false
	}
	c.cache.remember(oid, res)
	return res.LD, true
}
