// Package metrics provides the counters and latency histograms used by the
// location servers, the simulation harness and the benchmark tables. It is
// intentionally small: atomic counters, reservoir-sampled histograms with
// percentiles, and a registry with stable snapshot output.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value — occupancy, shard counts,
// queue depths. Unlike a Counter it moves in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// reservoirSize bounds histogram memory; large enough for stable p99 on the
// workloads in this repository.
const reservoirSize = 8192

// Histogram records value samples (typically latencies in seconds) with
// reservoir sampling, retaining exact count, sum, min and max.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	count   int64
	sum     float64
	min     float64
	max     float64
	rng     *rand.Rand
}

// histSeed distinguishes the reservoir RNG of every histogram created in
// the process. A shared fixed seed would make all histograms sample the
// same observation indices, so correlated input streams (the same latency
// measured at two points, say) would retain identically biased reservoirs
// and their percentile estimates would share, rather than average out,
// the sampling error.
var histSeed atomic.Uint64

// NewHistogram returns an empty histogram with an independently seeded
// reservoir.
func NewHistogram() *Histogram {
	seed := histSeed.Add(0x9E3779B97F4A7C15) ^ uint64(time.Now().UnixNano())
	return &Histogram{
		samples: make([]float64, 0, reservoirSize),
		min:     math.Inf(1),
		max:     math.Inf(-1),
		rng:     rand.New(rand.NewSource(int64(seed))),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.samples) < reservoirSize {
		h.samples = append(h.samples, v)
		return
	}
	// Vitter's algorithm R.
	if i := h.rng.Int63n(h.count); i < reservoirSize {
		h.samples[i] = v
	}
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the exact mean of all observations (not just the reservoir).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the p-quantile (p in [0,1]) estimated from the
// reservoir.
func (h *Histogram) Percentile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(h.samples))
	copy(sorted, h.samples)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := p * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Registry is a named collection of counters, gauges and histograms.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the counter with the given name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with the given name.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// DropGauge removes a gauge from the registry — used when the entity it
// described disappears (a shard after a shrink, say), so snapshots do not
// keep reporting a stale series.
func (r *Registry) DropGauge(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.gauges, name)
}

// Histogram returns (creating if needed) the histogram with the given name.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot renders all metrics sorted by name, one per line.
func (r *Registry) Snapshot() string {
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, "c:"+n)
	}
	for n := range r.gauges {
		names = append(names, "g:"+n)
	}
	for n := range r.hists {
		names = append(names, "h:"+n)
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		kind, name := n[:1], n[2:]
		switch kind {
		case "c":
			fmt.Fprintf(&b, "%s = %d\n", name, r.Counter(name).Value())
		case "g":
			fmt.Fprintf(&b, "%s = %d\n", name, r.Gauge(name).Value())
		case "h":
			h := r.Histogram(name)
			fmt.Fprintf(&b, "%s: n=%d mean=%.6f p50=%.6f p99=%.6f max=%.6f\n",
				name, h.Count(), h.Mean(), h.Percentile(0.5), h.Percentile(0.99), h.Max())
		}
	}
	return b.String()
}
