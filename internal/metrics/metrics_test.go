package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16_000 {
		t.Errorf("Value = %d, want 16000", got)
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != 100 {
		t.Errorf("Count = %d", got)
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
	if got := h.Min(); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := h.Max(); got != 100 {
		t.Errorf("Max = %v", got)
	}
	if got := h.Percentile(0.5); math.Abs(got-50.5) > 1 {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := h.Percentile(1); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if got := h.Percentile(0.99); got < 95 || got > 100 {
		t.Errorf("p99 = %v", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(0.5) != 0 {
		t.Error("empty histogram returned nonzero stats")
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100_000; i++ {
		h.Observe(float64(i % 1000))
	}
	if got := h.Count(); got != 100_000 {
		t.Errorf("Count = %d", got)
	}
	if len(h.samples) > reservoirSize {
		t.Errorf("reservoir grew to %d", len(h.samples))
	}
	// p50 of a uniform 0..999 stream should be near 500.
	if got := h.Percentile(0.5); got < 400 || got > 600 {
		t.Errorf("p50 = %v, want ~500", got)
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(250 * time.Millisecond)
	if got := h.Mean(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("updates").Add(3)
	if got := r.Counter("updates").Value(); got != 3 {
		t.Errorf("counter reuse broken: %d", got)
	}
	r.Histogram("latency").Observe(0.001)
	snap := r.Snapshot()
	if !strings.Contains(snap, "updates = 3") {
		t.Errorf("snapshot missing counter: %q", snap)
	}
	if !strings.Contains(snap, "latency: n=1") {
		t.Errorf("snapshot missing histogram: %q", snap)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 1600 {
		t.Errorf("counter = %d", got)
	}
	if got := r.Histogram("h").Count(); got != 1600 {
		t.Errorf("histogram count = %d", got)
	}
}

// TestHistogramReservoirsIndependent: two histograms fed the identical
// over-capacity stream must not retain identical reservoirs — a shared
// fixed RNG seed would make every histogram sample the same observation
// indices, so correlated streams would share their sampling bias instead
// of averaging it out.
func TestHistogramReservoirsIndependent(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	const n = 4 * reservoirSize
	for i := 0; i < n; i++ {
		v := float64(i)
		a.Observe(v)
		b.Observe(v)
	}
	a.mu.Lock()
	sa := append([]float64(nil), a.samples...)
	a.mu.Unlock()
	b.mu.Lock()
	sb := append([]float64(nil), b.samples...)
	b.mu.Unlock()
	if len(sa) != reservoirSize || len(sb) != reservoirSize {
		t.Fatalf("reservoir sizes %d / %d, want %d", len(sa), len(sb), reservoirSize)
	}
	same := true
	for i := range sa {
		if sa[i] != sb[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two histograms sampled the identical reservoir from the same stream (shared RNG seed)")
	}
	// Exact aggregate statistics are unaffected by the reservoir.
	if a.Count() != n || a.Mean() != b.Mean() || a.Min() != b.Min() || a.Max() != b.Max() {
		t.Errorf("aggregate stats diverged: count %d mean %g/%g", a.Count(), a.Mean(), b.Mean())
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("shards")
	g.Set(8)
	g.Add(-2)
	if got := r.Gauge("shards").Value(); got != 6 {
		t.Errorf("gauge = %d, want 6", got)
	}
	snap := r.Snapshot()
	if !strings.Contains(snap, "shards = 6") {
		t.Errorf("snapshot missing gauge: %q", snap)
	}
	r.DropGauge("shards")
	if snap := r.Snapshot(); strings.Contains(snap, "shards") {
		t.Errorf("dropped gauge still in snapshot: %q", snap)
	}
}
