package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"locsvc/internal/geo"
)

func TestSightingValidate(t *testing.T) {
	good := Sighting{OID: "o1", T: time.Now(), Pos: geo.Pt(1, 2), SensAcc: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid sighting rejected: %v", err)
	}
	if err := (Sighting{SensAcc: 5}).Validate(); err == nil {
		t.Error("empty oid accepted")
	}
	if err := (Sighting{OID: "o", SensAcc: -1}).Validate(); err == nil {
		t.Error("negative sensor accuracy accepted")
	}
}

func TestLocationDescriptorArea(t *testing.T) {
	ld := LocationDescriptor{Pos: geo.Pt(10, 20), Acc: 30}
	c := ld.Area()
	if c.C != geo.Pt(10, 20) || c.R != 30 {
		t.Errorf("Area = %+v", c)
	}
}

func TestLocationDescriptorAged(t *testing.T) {
	t0 := time.Date(2026, 6, 12, 12, 0, 0, 0, time.UTC)
	ld := LocationDescriptor{Pos: geo.Pt(0, 0), Acc: 10}

	aged := ld.Aged(t0, t0.Add(10*time.Second), 2) // 2 m/s for 10 s
	if math.Abs(aged.Acc-30) > 1e-12 {
		t.Errorf("aged acc = %v, want 30", aged.Acc)
	}
	// No aging backwards in time or with zero speed.
	if got := ld.Aged(t0, t0.Add(-time.Second), 2); got.Acc != 10 {
		t.Errorf("backwards aging changed acc to %v", got.Acc)
	}
	if got := ld.Aged(t0, t0.Add(time.Hour), 0); got.Acc != 10 {
		t.Errorf("zero-speed aging changed acc to %v", got.Acc)
	}
}

func TestRegInfoValidate(t *testing.T) {
	tests := []struct {
		name string
		ri   RegInfo
		ok   bool
	}{
		{"valid range", RegInfo{DesAcc: 10, MinAcc: 50}, true},
		{"equal bounds", RegInfo{DesAcc: 25, MinAcc: 25}, true},
		{"inverted", RegInfo{DesAcc: 50, MinAcc: 10}, false},
		{"negative", RegInfo{DesAcc: -1, MinAcc: 10}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.ri.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestOfferedAcc(t *testing.T) {
	ri := RegInfo{DesAcc: 10, MinAcc: 50}
	tests := []struct {
		achievable float64
		want       float64
		ok         bool
	}{
		// Server better than desired: offer the desired accuracy
		// (max(acc, desAcc), Algorithm 6-1 line 8).
		{5, 10, true},
		// Server within the range: offer what it achieves.
		{25, 25, true},
		{50, 50, true},
		// Server worse than the minimum: registration fails.
		{51, 51, false},
	}
	for _, tt := range tests {
		got, ok := ri.OfferedAcc(tt.achievable)
		if got != tt.want || ok != tt.ok {
			t.Errorf("OfferedAcc(%v) = (%v, %v), want (%v, %v)",
				tt.achievable, got, ok, tt.want, tt.ok)
		}
	}
}

func TestErrorsAreDistinct(t *testing.T) {
	errs := []error{ErrNotFound, ErrAccuracy, ErrOutOfArea, ErrBadRequest}
	for i, a := range errs {
		for j, b := range errs {
			if (i == j) != errors.Is(a, b) {
				t.Errorf("error identity mismatch between %v and %v", a, b)
			}
		}
	}
}
