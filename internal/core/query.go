package core

import (
	"sort"

	"locsvc/internal/geo"
)

// Area is a query or service area: a convex polygon in the service plane.
// The paper allows areas to be arbitrary connected polygons; this
// implementation supports convex polygons (rectangles being the common
// case), which is sufficient for all of the paper's workloads and keeps
// the exact clipping arithmetic simple.
type Area struct {
	Vertices geo.Polygon
}

// AreaFromRect converts an axis-aligned rectangle into an Area.
func AreaFromRect(r geo.Rect) Area { return Area{Vertices: r.Poly()} }

// AreaFromPoints builds the convex query area spanned by arbitrary corner
// points (their convex hull). It is the bridge between the paper's
// "arbitrary connected polygon given by the geographic coordinates of its
// corners" and the convex areas the exact overlap arithmetic supports:
// non-convex corner sets are widened to their hull.
func AreaFromPoints(points []geo.Point) Area {
	return Area{Vertices: geo.ConvexHull(points)}
}

// Valid reports whether the area is usable for queries: at least a
// triangle, and convex.
func (a Area) Valid() bool {
	return len(a.Vertices) >= 3 && a.Vertices.IsConvex()
}

// Bounds returns the bounding rectangle of the area.
func (a Area) Bounds() geo.Rect { return a.Vertices.Bounds() }

// Size returns the area measure (the paper's SIZE function).
func (a Area) Size() float64 { return a.Vertices.Area() }

// Empty reports whether the area encloses nothing.
func (a Area) Empty() bool { return a.Size() <= 0 }

// Contains reports whether p lies inside the area.
func (a Area) Contains(p geo.Point) bool { return a.Vertices.Contains(p) }

// Overlap computes the paper's overlap degree (Section 3.2):
//
//	Overlap(a, o) = SIZE(a ∩ ld(o)) / SIZE(ld(o))
//
// where ld(o) is interpreted as the circular location area of the object.
// For a perfectly accurate descriptor (Acc == 0) the location area is a
// point and the overlap degree is 1 if the point lies in the area and 0
// otherwise; this is the natural limit of the ratio and means exact
// positions always qualify when inside.
func (a Area) Overlap(ld LocationDescriptor) float64 {
	if ld.Acc <= 0 {
		if a.Contains(ld.Pos) {
			return 1
		}
		return 0
	}
	circ := ld.Area()
	inter := circ.IntersectPolyArea(a.Vertices)
	ov := inter / circ.Area()
	if ov > 1 {
		ov = 1
	}
	return ov
}

// RangeQualifies applies the full range-query predicate of Section 3.2:
// the object qualifies iff Overlap(a, o) ≥ reqOverlap > 0 and
// ld(o).acc ≤ reqAcc.
func (a Area) RangeQualifies(ld LocationDescriptor, reqAcc, reqOverlap float64) bool {
	if reqOverlap <= 0 || reqOverlap > 1 {
		return false
	}
	if ld.Acc > reqAcc {
		return false
	}
	return a.Overlap(ld) >= reqOverlap
}

// NearestResult is the outcome of the nearest-neighbor selection rule.
type NearestResult struct {
	// Nearest is the object whose recorded position minimizes the
	// distance to the query position among objects meeting the accuracy
	// threshold.
	Nearest Entry
	// Near contains the other objects within nearQual of the nearest
	// object's distance (the paper's nearObjSet).
	Near []Entry
	// GuaranteedMinDist is a lower bound for the distance from the query
	// position to any qualifying object's true position:
	// DISTANCE(ld(o).pos, p) − reqAcc, clamped at zero.
	GuaranteedMinDist float64
	// Found reports whether any object met the accuracy threshold.
	Found bool
}

// SelectNearest applies the nearest-neighbor semantics of Section 3.2 to a
// candidate set: objects whose accuracy is worse than reqAcc are discarded;
// the remaining object with minimal recorded distance to p is returned,
// together with nearObjSet — every other candidate o' with
// DISTANCE(ld(o').pos, p) ≤ DISTANCE(ld(o).pos, p) + nearQual.
//
// Ties on distance are broken by object id so the result is deterministic
// across servers and runs.
func SelectNearest(candidates []Entry, p geo.Point, reqAcc, nearQual float64) NearestResult {
	qual := make([]Entry, 0, len(candidates))
	for _, e := range candidates {
		if e.LD.Acc <= reqAcc {
			qual = append(qual, e)
		}
	}
	if len(qual) == 0 {
		return NearestResult{}
	}
	sort.Slice(qual, func(i, j int) bool {
		di, dj := qual[i].LD.Pos.Dist2(p), qual[j].LD.Pos.Dist2(p)
		if di != dj {
			return di < dj
		}
		return qual[i].OID < qual[j].OID
	})
	nearest := qual[0]
	dist := nearest.LD.Pos.Dist(p)
	res := NearestResult{
		Nearest: nearest,
		Found:   true,
	}
	if g := dist - reqAcc; g > 0 {
		res.GuaranteedMinDist = g
	}
	limit := dist + nearQual
	for _, e := range qual[1:] {
		if e.LD.Pos.Dist(p) <= limit {
			res.Near = append(res.Near, e)
		}
	}
	return res
}
